//! MAUPITI: HW-SW optimisation of DNNs for privacy-preserving people
//! counting on low-resolution infrared arrays.
//!
//! This umbrella crate re-exports the whole reproduction stack of the
//! DATE 2024 paper so applications can depend on a single crate:
//!
//! * [`runtime`] — the persistent worker-pool runtime (`POOL_THREADS`).
//! * [`tensor`] — dense `f32` tensors.
//! * [`dataset`] — synthetic LINAIGE-like IR dataset, sessions, CV splits.
//! * [`nn`] — CPU training stack and the seed CNN.
//! * [`nas`] — PIT mask-based differentiable architecture search.
//! * [`quant`] — BN folding, mixed-precision INT4/INT8 QAT, integer model.
//! * [`postproc`] — majority-voting temporal smoothing.
//! * [`isa`] — RV32IM + SDOTP instruction-set simulator.
//! * [`kernels`] — RISC-V kernel code generation and deployment.
//! * [`platform`] — MAUPITI / IBEX / STM32 cost models (Table I).
//! * [`resilience`] — deterministic fault injection and the supervised
//!   streaming deployment (retry/backoff, circuit breaker, hold-last-good).
//! * [`fleet`] — deterministic multi-node serving layer: node actors,
//!   sharded fusion, admission control, backpressure and quarantine.
//! * [`flow`] — the end-to-end optimisation flow (Figs. 5–7).
//! * [`telemetry`] — tracing, metrics and profiling (`PCOUNT_TRACE`).
//!
//! # Quickstart
//!
//! ```
//! use maupiti::dataset::{DatasetConfig, IrDataset};
//!
//! let data = IrDataset::generate(&DatasetConfig::tiny(), 42);
//! assert_eq!(data.num_sessions(), 5);
//! ```
//!
//! See `examples/` for end-to-end scenarios (training, search,
//! quantisation and deployment on the simulated smart sensor).

pub use pcount_core as flow;
pub use pcount_dataset as dataset;
pub use pcount_fleet as fleet;
pub use pcount_isa as isa;
pub use pcount_kernels as kernels;
pub use pcount_nas as nas;
pub use pcount_nn as nn;
pub use pcount_platform as platform;
pub use pcount_postproc as postproc;
pub use pcount_quant as quant;
pub use pcount_resilience as resilience;
pub use pcount_runtime as runtime;
pub use pcount_telemetry as telemetry;
pub use pcount_tensor as tensor;
