/root/repo/target/debug/deps/pcount_kernels-6d151dac92216280.d: crates/kernels/src/lib.rs crates/kernels/src/asm.rs crates/kernels/src/deploy.rs crates/kernels/src/kernels.rs crates/kernels/src/layout.rs

/root/repo/target/debug/deps/libpcount_kernels-6d151dac92216280.rlib: crates/kernels/src/lib.rs crates/kernels/src/asm.rs crates/kernels/src/deploy.rs crates/kernels/src/kernels.rs crates/kernels/src/layout.rs

/root/repo/target/debug/deps/libpcount_kernels-6d151dac92216280.rmeta: crates/kernels/src/lib.rs crates/kernels/src/asm.rs crates/kernels/src/deploy.rs crates/kernels/src/kernels.rs crates/kernels/src/layout.rs

crates/kernels/src/lib.rs:
crates/kernels/src/asm.rs:
crates/kernels/src/deploy.rs:
crates/kernels/src/kernels.rs:
crates/kernels/src/layout.rs:
