/root/repo/target/debug/deps/table1-9a570279ec6a4d15.d: crates/bench/src/bin/table1.rs Cargo.toml

/root/repo/target/debug/deps/libtable1-9a570279ec6a4d15.rmeta: crates/bench/src/bin/table1.rs Cargo.toml

crates/bench/src/bin/table1.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
