/root/repo/target/debug/deps/pcount_nas-c2f59cc2d4052c09.d: crates/nas/src/lib.rs crates/nas/src/cost.rs crates/nas/src/mask.rs crates/nas/src/model.rs crates/nas/src/search.rs

/root/repo/target/debug/deps/libpcount_nas-c2f59cc2d4052c09.rlib: crates/nas/src/lib.rs crates/nas/src/cost.rs crates/nas/src/mask.rs crates/nas/src/model.rs crates/nas/src/search.rs

/root/repo/target/debug/deps/libpcount_nas-c2f59cc2d4052c09.rmeta: crates/nas/src/lib.rs crates/nas/src/cost.rs crates/nas/src/mask.rs crates/nas/src/model.rs crates/nas/src/search.rs

crates/nas/src/lib.rs:
crates/nas/src/cost.rs:
crates/nas/src/mask.rs:
crates/nas/src/model.rs:
crates/nas/src/search.rs:
