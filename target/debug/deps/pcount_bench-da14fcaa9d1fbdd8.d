/root/repo/target/debug/deps/pcount_bench-da14fcaa9d1fbdd8.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libpcount_bench-da14fcaa9d1fbdd8.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
