/root/repo/target/debug/deps/pcount_postproc-48ac3106d36130be.d: crates/postproc/src/lib.rs

/root/repo/target/debug/deps/pcount_postproc-48ac3106d36130be: crates/postproc/src/lib.rs

crates/postproc/src/lib.rs:
