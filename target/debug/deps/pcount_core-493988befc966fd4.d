/root/repo/target/debug/deps/pcount_core-493988befc966fd4.d: crates/core/src/lib.rs crates/core/src/baseline.rs crates/core/src/flow.rs crates/core/src/pareto.rs

/root/repo/target/debug/deps/libpcount_core-493988befc966fd4.rlib: crates/core/src/lib.rs crates/core/src/baseline.rs crates/core/src/flow.rs crates/core/src/pareto.rs

/root/repo/target/debug/deps/libpcount_core-493988befc966fd4.rmeta: crates/core/src/lib.rs crates/core/src/baseline.rs crates/core/src/flow.rs crates/core/src/pareto.rs

crates/core/src/lib.rs:
crates/core/src/baseline.rs:
crates/core/src/flow.rs:
crates/core/src/pareto.rs:
