/root/repo/target/debug/deps/pcount_tensor-ffd78d41ff784c7e.d: crates/tensor/src/lib.rs crates/tensor/src/shape.rs crates/tensor/src/tensor.rs

/root/repo/target/debug/deps/libpcount_tensor-ffd78d41ff784c7e.rlib: crates/tensor/src/lib.rs crates/tensor/src/shape.rs crates/tensor/src/tensor.rs

/root/repo/target/debug/deps/libpcount_tensor-ffd78d41ff784c7e.rmeta: crates/tensor/src/lib.rs crates/tensor/src/shape.rs crates/tensor/src/tensor.rs

crates/tensor/src/lib.rs:
crates/tensor/src/shape.rs:
crates/tensor/src/tensor.rs:
