/root/repo/target/debug/deps/pcount_tensor-eb4fef5220adfd15.d: crates/tensor/src/lib.rs crates/tensor/src/shape.rs crates/tensor/src/tensor.rs

/root/repo/target/debug/deps/pcount_tensor-eb4fef5220adfd15: crates/tensor/src/lib.rs crates/tensor/src/shape.rs crates/tensor/src/tensor.rs

crates/tensor/src/lib.rs:
crates/tensor/src/shape.rs:
crates/tensor/src/tensor.rs:
