/root/repo/target/debug/deps/fig5-8b8026e0f0b56d22.d: crates/bench/src/bin/fig5.rs Cargo.toml

/root/repo/target/debug/deps/libfig5-8b8026e0f0b56d22.rmeta: crates/bench/src/bin/fig5.rs Cargo.toml

crates/bench/src/bin/fig5.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
