/root/repo/target/debug/deps/pcount_core-ff5b20d1c47d7f5e.d: crates/core/src/lib.rs crates/core/src/baseline.rs crates/core/src/flow.rs crates/core/src/pareto.rs

/root/repo/target/debug/deps/pcount_core-ff5b20d1c47d7f5e: crates/core/src/lib.rs crates/core/src/baseline.rs crates/core/src/flow.rs crates/core/src/pareto.rs

crates/core/src/lib.rs:
crates/core/src/baseline.rs:
crates/core/src/flow.rs:
crates/core/src/pareto.rs:
