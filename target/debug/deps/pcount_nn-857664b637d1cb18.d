/root/repo/target/debug/deps/pcount_nn-857664b637d1cb18.d: crates/nn/src/lib.rs crates/nn/src/batchnorm.rs crates/nn/src/conv.rs crates/nn/src/layer.rs crates/nn/src/linear.rs crates/nn/src/loss.rs crates/nn/src/metrics.rs crates/nn/src/model.rs crates/nn/src/optim.rs crates/nn/src/train.rs

/root/repo/target/debug/deps/libpcount_nn-857664b637d1cb18.rlib: crates/nn/src/lib.rs crates/nn/src/batchnorm.rs crates/nn/src/conv.rs crates/nn/src/layer.rs crates/nn/src/linear.rs crates/nn/src/loss.rs crates/nn/src/metrics.rs crates/nn/src/model.rs crates/nn/src/optim.rs crates/nn/src/train.rs

/root/repo/target/debug/deps/libpcount_nn-857664b637d1cb18.rmeta: crates/nn/src/lib.rs crates/nn/src/batchnorm.rs crates/nn/src/conv.rs crates/nn/src/layer.rs crates/nn/src/linear.rs crates/nn/src/loss.rs crates/nn/src/metrics.rs crates/nn/src/model.rs crates/nn/src/optim.rs crates/nn/src/train.rs

crates/nn/src/lib.rs:
crates/nn/src/batchnorm.rs:
crates/nn/src/conv.rs:
crates/nn/src/layer.rs:
crates/nn/src/linear.rs:
crates/nn/src/loss.rs:
crates/nn/src/metrics.rs:
crates/nn/src/model.rs:
crates/nn/src/optim.rs:
crates/nn/src/train.rs:
