/root/repo/target/debug/deps/quantization-e8d2cca2ac8b3fd1.d: crates/bench/benches/quantization.rs Cargo.toml

/root/repo/target/debug/deps/libquantization-e8d2cca2ac8b3fd1.rmeta: crates/bench/benches/quantization.rs Cargo.toml

crates/bench/benches/quantization.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
