/root/repo/target/debug/deps/isa_throughput-f677a081d54882f3.d: crates/bench/benches/isa_throughput.rs Cargo.toml

/root/repo/target/debug/deps/libisa_throughput-f677a081d54882f3.rmeta: crates/bench/benches/isa_throughput.rs Cargo.toml

crates/bench/benches/isa_throughput.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
