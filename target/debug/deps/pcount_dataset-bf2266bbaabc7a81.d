/root/repo/target/debug/deps/pcount_dataset-bf2266bbaabc7a81.d: crates/dataset/src/lib.rs crates/dataset/src/cv.rs crates/dataset/src/scene.rs Cargo.toml

/root/repo/target/debug/deps/libpcount_dataset-bf2266bbaabc7a81.rmeta: crates/dataset/src/lib.rs crates/dataset/src/cv.rs crates/dataset/src/scene.rs Cargo.toml

crates/dataset/src/lib.rs:
crates/dataset/src/cv.rs:
crates/dataset/src/scene.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
