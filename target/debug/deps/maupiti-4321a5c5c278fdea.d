/root/repo/target/debug/deps/maupiti-4321a5c5c278fdea.d: src/lib.rs

/root/repo/target/debug/deps/libmaupiti-4321a5c5c278fdea.rlib: src/lib.rs

/root/repo/target/debug/deps/libmaupiti-4321a5c5c278fdea.rmeta: src/lib.rs

src/lib.rs:
