/root/repo/target/debug/deps/pcount_platform-1ebbaeeb9a895d0e.d: crates/platform/src/lib.rs

/root/repo/target/debug/deps/pcount_platform-1ebbaeeb9a895d0e: crates/platform/src/lib.rs

crates/platform/src/lib.rs:
