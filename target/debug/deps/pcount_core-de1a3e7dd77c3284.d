/root/repo/target/debug/deps/pcount_core-de1a3e7dd77c3284.d: crates/core/src/lib.rs crates/core/src/baseline.rs crates/core/src/flow.rs crates/core/src/pareto.rs Cargo.toml

/root/repo/target/debug/deps/libpcount_core-de1a3e7dd77c3284.rmeta: crates/core/src/lib.rs crates/core/src/baseline.rs crates/core/src/flow.rs crates/core/src/pareto.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/baseline.rs:
crates/core/src/flow.rs:
crates/core/src/pareto.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
