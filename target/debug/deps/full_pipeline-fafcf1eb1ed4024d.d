/root/repo/target/debug/deps/full_pipeline-fafcf1eb1ed4024d.d: tests/full_pipeline.rs Cargo.toml

/root/repo/target/debug/deps/libfull_pipeline-fafcf1eb1ed4024d.rmeta: tests/full_pipeline.rs Cargo.toml

tests/full_pipeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
