/root/repo/target/debug/deps/pcount_isa-1ee9dae7503aafdd.d: crates/isa/src/lib.rs crates/isa/src/block.rs crates/isa/src/cpu.rs crates/isa/src/engine.rs crates/isa/src/instr.rs crates/isa/src/memory.rs crates/isa/src/pipeline.rs Cargo.toml

/root/repo/target/debug/deps/libpcount_isa-1ee9dae7503aafdd.rmeta: crates/isa/src/lib.rs crates/isa/src/block.rs crates/isa/src/cpu.rs crates/isa/src/engine.rs crates/isa/src/instr.rs crates/isa/src/memory.rs crates/isa/src/pipeline.rs Cargo.toml

crates/isa/src/lib.rs:
crates/isa/src/block.rs:
crates/isa/src/cpu.rs:
crates/isa/src/engine.rs:
crates/isa/src/instr.rs:
crates/isa/src/memory.rs:
crates/isa/src/pipeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
