/root/repo/target/debug/deps/pcount_nn-ea35f6ce454010b3.d: crates/nn/src/lib.rs crates/nn/src/batchnorm.rs crates/nn/src/conv.rs crates/nn/src/layer.rs crates/nn/src/linear.rs crates/nn/src/loss.rs crates/nn/src/metrics.rs crates/nn/src/model.rs crates/nn/src/optim.rs crates/nn/src/train.rs Cargo.toml

/root/repo/target/debug/deps/libpcount_nn-ea35f6ce454010b3.rmeta: crates/nn/src/lib.rs crates/nn/src/batchnorm.rs crates/nn/src/conv.rs crates/nn/src/layer.rs crates/nn/src/linear.rs crates/nn/src/loss.rs crates/nn/src/metrics.rs crates/nn/src/model.rs crates/nn/src/optim.rs crates/nn/src/train.rs Cargo.toml

crates/nn/src/lib.rs:
crates/nn/src/batchnorm.rs:
crates/nn/src/conv.rs:
crates/nn/src/layer.rs:
crates/nn/src/linear.rs:
crates/nn/src/loss.rs:
crates/nn/src/metrics.rs:
crates/nn/src/model.rs:
crates/nn/src/optim.rs:
crates/nn/src/train.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
