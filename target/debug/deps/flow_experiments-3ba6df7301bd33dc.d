/root/repo/target/debug/deps/flow_experiments-3ba6df7301bd33dc.d: tests/flow_experiments.rs

/root/repo/target/debug/deps/flow_experiments-3ba6df7301bd33dc: tests/flow_experiments.rs

tests/flow_experiments.rs:
