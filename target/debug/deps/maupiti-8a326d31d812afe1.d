/root/repo/target/debug/deps/maupiti-8a326d31d812afe1.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libmaupiti-8a326d31d812afe1.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
