/root/repo/target/debug/deps/pcount_nas-8e3ac40267fac6ac.d: crates/nas/src/lib.rs crates/nas/src/cost.rs crates/nas/src/mask.rs crates/nas/src/model.rs crates/nas/src/search.rs

/root/repo/target/debug/deps/pcount_nas-8e3ac40267fac6ac: crates/nas/src/lib.rs crates/nas/src/cost.rs crates/nas/src/mask.rs crates/nas/src/model.rs crates/nas/src/search.rs

crates/nas/src/lib.rs:
crates/nas/src/cost.rs:
crates/nas/src/mask.rs:
crates/nas/src/model.rs:
crates/nas/src/search.rs:
