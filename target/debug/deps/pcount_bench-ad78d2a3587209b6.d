/root/repo/target/debug/deps/pcount_bench-ad78d2a3587209b6.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libpcount_bench-ad78d2a3587209b6.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
