/root/repo/target/debug/deps/pcount_dataset-8b2de9a14da7fa08.d: crates/dataset/src/lib.rs crates/dataset/src/cv.rs crates/dataset/src/scene.rs

/root/repo/target/debug/deps/libpcount_dataset-8b2de9a14da7fa08.rlib: crates/dataset/src/lib.rs crates/dataset/src/cv.rs crates/dataset/src/scene.rs

/root/repo/target/debug/deps/libpcount_dataset-8b2de9a14da7fa08.rmeta: crates/dataset/src/lib.rs crates/dataset/src/cv.rs crates/dataset/src/scene.rs

crates/dataset/src/lib.rs:
crates/dataset/src/cv.rs:
crates/dataset/src/scene.rs:
