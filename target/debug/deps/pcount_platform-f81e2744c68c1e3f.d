/root/repo/target/debug/deps/pcount_platform-f81e2744c68c1e3f.d: crates/platform/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libpcount_platform-f81e2744c68c1e3f.rmeta: crates/platform/src/lib.rs Cargo.toml

crates/platform/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
