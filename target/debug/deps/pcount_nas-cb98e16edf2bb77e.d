/root/repo/target/debug/deps/pcount_nas-cb98e16edf2bb77e.d: crates/nas/src/lib.rs crates/nas/src/cost.rs crates/nas/src/mask.rs crates/nas/src/model.rs crates/nas/src/search.rs Cargo.toml

/root/repo/target/debug/deps/libpcount_nas-cb98e16edf2bb77e.rmeta: crates/nas/src/lib.rs crates/nas/src/cost.rs crates/nas/src/mask.rs crates/nas/src/model.rs crates/nas/src/search.rs Cargo.toml

crates/nas/src/lib.rs:
crates/nas/src/cost.rs:
crates/nas/src/mask.rs:
crates/nas/src/model.rs:
crates/nas/src/search.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
