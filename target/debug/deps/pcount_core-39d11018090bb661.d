/root/repo/target/debug/deps/pcount_core-39d11018090bb661.d: crates/core/src/lib.rs crates/core/src/baseline.rs crates/core/src/flow.rs crates/core/src/pareto.rs Cargo.toml

/root/repo/target/debug/deps/libpcount_core-39d11018090bb661.rmeta: crates/core/src/lib.rs crates/core/src/baseline.rs crates/core/src/flow.rs crates/core/src/pareto.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/baseline.rs:
crates/core/src/flow.rs:
crates/core/src/pareto.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
