/root/repo/target/debug/deps/fig5-5dca519b668ce349.d: crates/bench/src/bin/fig5.rs Cargo.toml

/root/repo/target/debug/deps/libfig5-5dca519b668ce349.rmeta: crates/bench/src/bin/fig5.rs Cargo.toml

crates/bench/src/bin/fig5.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
