/root/repo/target/debug/deps/kernels-8a5a326d9320cdc2.d: crates/bench/benches/kernels.rs Cargo.toml

/root/repo/target/debug/deps/libkernels-8a5a326d9320cdc2.rmeta: crates/bench/benches/kernels.rs Cargo.toml

crates/bench/benches/kernels.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
