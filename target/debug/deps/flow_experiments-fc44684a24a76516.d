/root/repo/target/debug/deps/flow_experiments-fc44684a24a76516.d: tests/flow_experiments.rs Cargo.toml

/root/repo/target/debug/deps/libflow_experiments-fc44684a24a76516.rmeta: tests/flow_experiments.rs Cargo.toml

tests/flow_experiments.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
