/root/repo/target/debug/deps/fig6-605314e48e3be301.d: crates/bench/src/bin/fig6.rs

/root/repo/target/debug/deps/fig6-605314e48e3be301: crates/bench/src/bin/fig6.rs

crates/bench/src/bin/fig6.rs:
