/root/repo/target/debug/deps/postproc-cd386c98be33bb63.d: crates/bench/benches/postproc.rs Cargo.toml

/root/repo/target/debug/deps/libpostproc-cd386c98be33bb63.rmeta: crates/bench/benches/postproc.rs Cargo.toml

crates/bench/benches/postproc.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
