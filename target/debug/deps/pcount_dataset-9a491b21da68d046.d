/root/repo/target/debug/deps/pcount_dataset-9a491b21da68d046.d: crates/dataset/src/lib.rs crates/dataset/src/cv.rs crates/dataset/src/scene.rs

/root/repo/target/debug/deps/pcount_dataset-9a491b21da68d046: crates/dataset/src/lib.rs crates/dataset/src/cv.rs crates/dataset/src/scene.rs

crates/dataset/src/lib.rs:
crates/dataset/src/cv.rs:
crates/dataset/src/scene.rs:
