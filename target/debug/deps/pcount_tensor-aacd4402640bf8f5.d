/root/repo/target/debug/deps/pcount_tensor-aacd4402640bf8f5.d: crates/tensor/src/lib.rs crates/tensor/src/shape.rs crates/tensor/src/tensor.rs Cargo.toml

/root/repo/target/debug/deps/libpcount_tensor-aacd4402640bf8f5.rmeta: crates/tensor/src/lib.rs crates/tensor/src/shape.rs crates/tensor/src/tensor.rs Cargo.toml

crates/tensor/src/lib.rs:
crates/tensor/src/shape.rs:
crates/tensor/src/tensor.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
