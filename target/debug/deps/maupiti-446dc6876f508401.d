/root/repo/target/debug/deps/maupiti-446dc6876f508401.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libmaupiti-446dc6876f508401.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
