/root/repo/target/debug/deps/pcount_postproc-066c3b0ac579e4d3.d: crates/postproc/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libpcount_postproc-066c3b0ac579e4d3.rmeta: crates/postproc/src/lib.rs Cargo.toml

crates/postproc/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
