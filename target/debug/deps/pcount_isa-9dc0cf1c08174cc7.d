/root/repo/target/debug/deps/pcount_isa-9dc0cf1c08174cc7.d: crates/isa/src/lib.rs crates/isa/src/block.rs crates/isa/src/cpu.rs crates/isa/src/engine.rs crates/isa/src/instr.rs crates/isa/src/memory.rs crates/isa/src/pipeline.rs

/root/repo/target/debug/deps/pcount_isa-9dc0cf1c08174cc7: crates/isa/src/lib.rs crates/isa/src/block.rs crates/isa/src/cpu.rs crates/isa/src/engine.rs crates/isa/src/instr.rs crates/isa/src/memory.rs crates/isa/src/pipeline.rs

crates/isa/src/lib.rs:
crates/isa/src/block.rs:
crates/isa/src/cpu.rs:
crates/isa/src/engine.rs:
crates/isa/src/instr.rs:
crates/isa/src/memory.rs:
crates/isa/src/pipeline.rs:
