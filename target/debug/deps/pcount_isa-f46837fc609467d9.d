/root/repo/target/debug/deps/pcount_isa-f46837fc609467d9.d: crates/isa/src/lib.rs crates/isa/src/block.rs crates/isa/src/cpu.rs crates/isa/src/engine.rs crates/isa/src/instr.rs crates/isa/src/memory.rs crates/isa/src/pipeline.rs Cargo.toml

/root/repo/target/debug/deps/libpcount_isa-f46837fc609467d9.rmeta: crates/isa/src/lib.rs crates/isa/src/block.rs crates/isa/src/cpu.rs crates/isa/src/engine.rs crates/isa/src/instr.rs crates/isa/src/memory.rs crates/isa/src/pipeline.rs Cargo.toml

crates/isa/src/lib.rs:
crates/isa/src/block.rs:
crates/isa/src/cpu.rs:
crates/isa/src/engine.rs:
crates/isa/src/instr.rs:
crates/isa/src/memory.rs:
crates/isa/src/pipeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
