/root/repo/target/debug/deps/pcount_kernels-6d80a8ac3a029370.d: crates/kernels/src/lib.rs crates/kernels/src/asm.rs crates/kernels/src/deploy.rs crates/kernels/src/kernels.rs crates/kernels/src/layout.rs

/root/repo/target/debug/deps/pcount_kernels-6d80a8ac3a029370: crates/kernels/src/lib.rs crates/kernels/src/asm.rs crates/kernels/src/deploy.rs crates/kernels/src/kernels.rs crates/kernels/src/layout.rs

crates/kernels/src/lib.rs:
crates/kernels/src/asm.rs:
crates/kernels/src/deploy.rs:
crates/kernels/src/kernels.rs:
crates/kernels/src/layout.rs:
