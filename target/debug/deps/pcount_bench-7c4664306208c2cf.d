/root/repo/target/debug/deps/pcount_bench-7c4664306208c2cf.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libpcount_bench-7c4664306208c2cf.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libpcount_bench-7c4664306208c2cf.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
