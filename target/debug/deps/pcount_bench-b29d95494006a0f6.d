/root/repo/target/debug/deps/pcount_bench-b29d95494006a0f6.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/pcount_bench-b29d95494006a0f6: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
