/root/repo/target/debug/deps/pcount_postproc-9adfac6f34a40b10.d: crates/postproc/src/lib.rs

/root/repo/target/debug/deps/libpcount_postproc-9adfac6f34a40b10.rlib: crates/postproc/src/lib.rs

/root/repo/target/debug/deps/libpcount_postproc-9adfac6f34a40b10.rmeta: crates/postproc/src/lib.rs

crates/postproc/src/lib.rs:
