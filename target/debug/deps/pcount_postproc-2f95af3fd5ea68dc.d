/root/repo/target/debug/deps/pcount_postproc-2f95af3fd5ea68dc.d: crates/postproc/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libpcount_postproc-2f95af3fd5ea68dc.rmeta: crates/postproc/src/lib.rs Cargo.toml

crates/postproc/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
