/root/repo/target/debug/deps/pcount_quant-588b2d5e00433f07.d: crates/quant/src/lib.rs crates/quant/src/fake.rs crates/quant/src/fold.rs crates/quant/src/int.rs crates/quant/src/mixed.rs crates/quant/src/qat.rs crates/quant/src/qparams.rs Cargo.toml

/root/repo/target/debug/deps/libpcount_quant-588b2d5e00433f07.rmeta: crates/quant/src/lib.rs crates/quant/src/fake.rs crates/quant/src/fold.rs crates/quant/src/int.rs crates/quant/src/mixed.rs crates/quant/src/qat.rs crates/quant/src/qparams.rs Cargo.toml

crates/quant/src/lib.rs:
crates/quant/src/fake.rs:
crates/quant/src/fold.rs:
crates/quant/src/int.rs:
crates/quant/src/mixed.rs:
crates/quant/src/qat.rs:
crates/quant/src/qparams.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
