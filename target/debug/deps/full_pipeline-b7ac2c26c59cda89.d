/root/repo/target/debug/deps/full_pipeline-b7ac2c26c59cda89.d: tests/full_pipeline.rs

/root/repo/target/debug/deps/full_pipeline-b7ac2c26c59cda89: tests/full_pipeline.rs

tests/full_pipeline.rs:
