/root/repo/target/debug/deps/pcount_dataset-e70c95fe8080791b.d: crates/dataset/src/lib.rs crates/dataset/src/cv.rs crates/dataset/src/scene.rs Cargo.toml

/root/repo/target/debug/deps/libpcount_dataset-e70c95fe8080791b.rmeta: crates/dataset/src/lib.rs crates/dataset/src/cv.rs crates/dataset/src/scene.rs Cargo.toml

crates/dataset/src/lib.rs:
crates/dataset/src/cv.rs:
crates/dataset/src/scene.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
