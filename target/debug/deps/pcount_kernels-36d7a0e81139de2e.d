/root/repo/target/debug/deps/pcount_kernels-36d7a0e81139de2e.d: crates/kernels/src/lib.rs crates/kernels/src/asm.rs crates/kernels/src/deploy.rs crates/kernels/src/kernels.rs crates/kernels/src/layout.rs Cargo.toml

/root/repo/target/debug/deps/libpcount_kernels-36d7a0e81139de2e.rmeta: crates/kernels/src/lib.rs crates/kernels/src/asm.rs crates/kernels/src/deploy.rs crates/kernels/src/kernels.rs crates/kernels/src/layout.rs Cargo.toml

crates/kernels/src/lib.rs:
crates/kernels/src/asm.rs:
crates/kernels/src/deploy.rs:
crates/kernels/src/kernels.rs:
crates/kernels/src/layout.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
