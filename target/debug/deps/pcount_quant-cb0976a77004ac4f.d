/root/repo/target/debug/deps/pcount_quant-cb0976a77004ac4f.d: crates/quant/src/lib.rs crates/quant/src/fake.rs crates/quant/src/fold.rs crates/quant/src/int.rs crates/quant/src/mixed.rs crates/quant/src/qat.rs crates/quant/src/qparams.rs

/root/repo/target/debug/deps/pcount_quant-cb0976a77004ac4f: crates/quant/src/lib.rs crates/quant/src/fake.rs crates/quant/src/fold.rs crates/quant/src/int.rs crates/quant/src/mixed.rs crates/quant/src/qat.rs crates/quant/src/qparams.rs

crates/quant/src/lib.rs:
crates/quant/src/fake.rs:
crates/quant/src/fold.rs:
crates/quant/src/int.rs:
crates/quant/src/mixed.rs:
crates/quant/src/qat.rs:
crates/quant/src/qparams.rs:
