/root/repo/target/debug/deps/fig5-dd75c9c1dc4451de.d: crates/bench/src/bin/fig5.rs

/root/repo/target/debug/deps/fig5-dd75c9c1dc4451de: crates/bench/src/bin/fig5.rs

crates/bench/src/bin/fig5.rs:
