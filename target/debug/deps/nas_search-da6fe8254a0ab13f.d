/root/repo/target/debug/deps/nas_search-da6fe8254a0ab13f.d: crates/bench/benches/nas_search.rs Cargo.toml

/root/repo/target/debug/deps/libnas_search-da6fe8254a0ab13f.rmeta: crates/bench/benches/nas_search.rs Cargo.toml

crates/bench/benches/nas_search.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
