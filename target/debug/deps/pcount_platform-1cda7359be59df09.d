/root/repo/target/debug/deps/pcount_platform-1cda7359be59df09.d: crates/platform/src/lib.rs

/root/repo/target/debug/deps/libpcount_platform-1cda7359be59df09.rlib: crates/platform/src/lib.rs

/root/repo/target/debug/deps/libpcount_platform-1cda7359be59df09.rmeta: crates/platform/src/lib.rs

crates/platform/src/lib.rs:
