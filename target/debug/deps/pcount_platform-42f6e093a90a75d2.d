/root/repo/target/debug/deps/pcount_platform-42f6e093a90a75d2.d: crates/platform/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libpcount_platform-42f6e093a90a75d2.rmeta: crates/platform/src/lib.rs Cargo.toml

crates/platform/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
