/root/repo/target/debug/deps/table1-dd0faa9a5ddfed2b.d: crates/bench/src/bin/table1.rs Cargo.toml

/root/repo/target/debug/deps/libtable1-dd0faa9a5ddfed2b.rmeta: crates/bench/src/bin/table1.rs Cargo.toml

crates/bench/src/bin/table1.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
