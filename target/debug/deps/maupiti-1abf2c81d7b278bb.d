/root/repo/target/debug/deps/maupiti-1abf2c81d7b278bb.d: src/lib.rs

/root/repo/target/debug/deps/maupiti-1abf2c81d7b278bb: src/lib.rs

src/lib.rs:
