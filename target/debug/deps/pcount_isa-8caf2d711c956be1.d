/root/repo/target/debug/deps/pcount_isa-8caf2d711c956be1.d: crates/isa/src/lib.rs crates/isa/src/block.rs crates/isa/src/cpu.rs crates/isa/src/engine.rs crates/isa/src/instr.rs crates/isa/src/memory.rs crates/isa/src/pipeline.rs

/root/repo/target/debug/deps/libpcount_isa-8caf2d711c956be1.rlib: crates/isa/src/lib.rs crates/isa/src/block.rs crates/isa/src/cpu.rs crates/isa/src/engine.rs crates/isa/src/instr.rs crates/isa/src/memory.rs crates/isa/src/pipeline.rs

/root/repo/target/debug/deps/libpcount_isa-8caf2d711c956be1.rmeta: crates/isa/src/lib.rs crates/isa/src/block.rs crates/isa/src/cpu.rs crates/isa/src/engine.rs crates/isa/src/instr.rs crates/isa/src/memory.rs crates/isa/src/pipeline.rs

crates/isa/src/lib.rs:
crates/isa/src/block.rs:
crates/isa/src/cpu.rs:
crates/isa/src/engine.rs:
crates/isa/src/instr.rs:
crates/isa/src/memory.rs:
crates/isa/src/pipeline.rs:
