/root/repo/target/debug/deps/table1-2e2e5e5dd0988c90.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/table1-2e2e5e5dd0988c90: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
