/root/repo/target/debug/deps/pcount_tensor-23951768410487ba.d: crates/tensor/src/lib.rs crates/tensor/src/shape.rs crates/tensor/src/tensor.rs Cargo.toml

/root/repo/target/debug/deps/libpcount_tensor-23951768410487ba.rmeta: crates/tensor/src/lib.rs crates/tensor/src/shape.rs crates/tensor/src/tensor.rs Cargo.toml

crates/tensor/src/lib.rs:
crates/tensor/src/shape.rs:
crates/tensor/src/tensor.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
