/root/repo/target/debug/deps/pcount_kernels-34feb5f663c11146.d: crates/kernels/src/lib.rs crates/kernels/src/asm.rs crates/kernels/src/deploy.rs crates/kernels/src/kernels.rs crates/kernels/src/layout.rs Cargo.toml

/root/repo/target/debug/deps/libpcount_kernels-34feb5f663c11146.rmeta: crates/kernels/src/lib.rs crates/kernels/src/asm.rs crates/kernels/src/deploy.rs crates/kernels/src/kernels.rs crates/kernels/src/layout.rs Cargo.toml

crates/kernels/src/lib.rs:
crates/kernels/src/asm.rs:
crates/kernels/src/deploy.rs:
crates/kernels/src/kernels.rs:
crates/kernels/src/layout.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
