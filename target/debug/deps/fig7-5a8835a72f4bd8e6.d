/root/repo/target/debug/deps/fig7-5a8835a72f4bd8e6.d: crates/bench/src/bin/fig7.rs

/root/repo/target/debug/deps/fig7-5a8835a72f4bd8e6: crates/bench/src/bin/fig7.rs

crates/bench/src/bin/fig7.rs:
