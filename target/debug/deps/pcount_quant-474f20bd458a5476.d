/root/repo/target/debug/deps/pcount_quant-474f20bd458a5476.d: crates/quant/src/lib.rs crates/quant/src/fake.rs crates/quant/src/fold.rs crates/quant/src/int.rs crates/quant/src/mixed.rs crates/quant/src/qat.rs crates/quant/src/qparams.rs

/root/repo/target/debug/deps/libpcount_quant-474f20bd458a5476.rlib: crates/quant/src/lib.rs crates/quant/src/fake.rs crates/quant/src/fold.rs crates/quant/src/int.rs crates/quant/src/mixed.rs crates/quant/src/qat.rs crates/quant/src/qparams.rs

/root/repo/target/debug/deps/libpcount_quant-474f20bd458a5476.rmeta: crates/quant/src/lib.rs crates/quant/src/fake.rs crates/quant/src/fold.rs crates/quant/src/int.rs crates/quant/src/mixed.rs crates/quant/src/qat.rs crates/quant/src/qparams.rs

crates/quant/src/lib.rs:
crates/quant/src/fake.rs:
crates/quant/src/fold.rs:
crates/quant/src/int.rs:
crates/quant/src/mixed.rs:
crates/quant/src/qat.rs:
crates/quant/src/qparams.rs:
