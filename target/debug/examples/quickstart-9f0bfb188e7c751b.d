/root/repo/target/debug/examples/quickstart-9f0bfb188e7c751b.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-9f0bfb188e7c751b: examples/quickstart.rs

examples/quickstart.rs:
