/root/repo/target/debug/examples/people_flow_monitor-2519db86eed3d763.d: examples/people_flow_monitor.rs

/root/repo/target/debug/examples/people_flow_monitor-2519db86eed3d763: examples/people_flow_monitor.rs

examples/people_flow_monitor.rs:
