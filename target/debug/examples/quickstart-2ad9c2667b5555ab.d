/root/repo/target/debug/examples/quickstart-2ad9c2667b5555ab.d: examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-2ad9c2667b5555ab.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
