/root/repo/target/debug/examples/edge_deployment-9f1d32559c1aa4cb.d: examples/edge_deployment.rs Cargo.toml

/root/repo/target/debug/examples/libedge_deployment-9f1d32559c1aa4cb.rmeta: examples/edge_deployment.rs Cargo.toml

examples/edge_deployment.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
