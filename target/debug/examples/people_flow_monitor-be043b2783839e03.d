/root/repo/target/debug/examples/people_flow_monitor-be043b2783839e03.d: examples/people_flow_monitor.rs Cargo.toml

/root/repo/target/debug/examples/libpeople_flow_monitor-be043b2783839e03.rmeta: examples/people_flow_monitor.rs Cargo.toml

examples/people_flow_monitor.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
