/root/repo/target/debug/examples/smart_building_occupancy-1fb317d1c3cf55af.d: examples/smart_building_occupancy.rs Cargo.toml

/root/repo/target/debug/examples/libsmart_building_occupancy-1fb317d1c3cf55af.rmeta: examples/smart_building_occupancy.rs Cargo.toml

examples/smart_building_occupancy.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
