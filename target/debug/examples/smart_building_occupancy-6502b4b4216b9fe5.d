/root/repo/target/debug/examples/smart_building_occupancy-6502b4b4216b9fe5.d: examples/smart_building_occupancy.rs

/root/repo/target/debug/examples/smart_building_occupancy-6502b4b4216b9fe5: examples/smart_building_occupancy.rs

examples/smart_building_occupancy.rs:
