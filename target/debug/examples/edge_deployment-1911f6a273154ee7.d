/root/repo/target/debug/examples/edge_deployment-1911f6a273154ee7.d: examples/edge_deployment.rs

/root/repo/target/debug/examples/edge_deployment-1911f6a273154ee7: examples/edge_deployment.rs

examples/edge_deployment.rs:
