/root/repo/target/release/deps/table1-ab67a1efe7a87ac0.d: crates/bench/src/bin/table1.rs

/root/repo/target/release/deps/table1-ab67a1efe7a87ac0: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
