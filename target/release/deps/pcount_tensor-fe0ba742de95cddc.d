/root/repo/target/release/deps/pcount_tensor-fe0ba742de95cddc.d: crates/tensor/src/lib.rs crates/tensor/src/shape.rs crates/tensor/src/tensor.rs

/root/repo/target/release/deps/libpcount_tensor-fe0ba742de95cddc.rlib: crates/tensor/src/lib.rs crates/tensor/src/shape.rs crates/tensor/src/tensor.rs

/root/repo/target/release/deps/libpcount_tensor-fe0ba742de95cddc.rmeta: crates/tensor/src/lib.rs crates/tensor/src/shape.rs crates/tensor/src/tensor.rs

crates/tensor/src/lib.rs:
crates/tensor/src/shape.rs:
crates/tensor/src/tensor.rs:
