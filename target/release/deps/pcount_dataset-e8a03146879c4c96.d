/root/repo/target/release/deps/pcount_dataset-e8a03146879c4c96.d: crates/dataset/src/lib.rs crates/dataset/src/cv.rs crates/dataset/src/scene.rs

/root/repo/target/release/deps/libpcount_dataset-e8a03146879c4c96.rlib: crates/dataset/src/lib.rs crates/dataset/src/cv.rs crates/dataset/src/scene.rs

/root/repo/target/release/deps/libpcount_dataset-e8a03146879c4c96.rmeta: crates/dataset/src/lib.rs crates/dataset/src/cv.rs crates/dataset/src/scene.rs

crates/dataset/src/lib.rs:
crates/dataset/src/cv.rs:
crates/dataset/src/scene.rs:
