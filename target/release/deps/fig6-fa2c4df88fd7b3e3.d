/root/repo/target/release/deps/fig6-fa2c4df88fd7b3e3.d: crates/bench/src/bin/fig6.rs

/root/repo/target/release/deps/fig6-fa2c4df88fd7b3e3: crates/bench/src/bin/fig6.rs

crates/bench/src/bin/fig6.rs:
