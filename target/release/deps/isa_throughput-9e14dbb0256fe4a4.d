/root/repo/target/release/deps/isa_throughput-9e14dbb0256fe4a4.d: crates/bench/benches/isa_throughput.rs

/root/repo/target/release/deps/isa_throughput-9e14dbb0256fe4a4: crates/bench/benches/isa_throughput.rs

crates/bench/benches/isa_throughput.rs:
