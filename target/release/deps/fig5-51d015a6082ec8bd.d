/root/repo/target/release/deps/fig5-51d015a6082ec8bd.d: crates/bench/src/bin/fig5.rs

/root/repo/target/release/deps/fig5-51d015a6082ec8bd: crates/bench/src/bin/fig5.rs

crates/bench/src/bin/fig5.rs:
