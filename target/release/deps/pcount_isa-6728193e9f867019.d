/root/repo/target/release/deps/pcount_isa-6728193e9f867019.d: crates/isa/src/lib.rs crates/isa/src/block.rs crates/isa/src/cpu.rs crates/isa/src/engine.rs crates/isa/src/instr.rs crates/isa/src/memory.rs crates/isa/src/pipeline.rs

/root/repo/target/release/deps/libpcount_isa-6728193e9f867019.rlib: crates/isa/src/lib.rs crates/isa/src/block.rs crates/isa/src/cpu.rs crates/isa/src/engine.rs crates/isa/src/instr.rs crates/isa/src/memory.rs crates/isa/src/pipeline.rs

/root/repo/target/release/deps/libpcount_isa-6728193e9f867019.rmeta: crates/isa/src/lib.rs crates/isa/src/block.rs crates/isa/src/cpu.rs crates/isa/src/engine.rs crates/isa/src/instr.rs crates/isa/src/memory.rs crates/isa/src/pipeline.rs

crates/isa/src/lib.rs:
crates/isa/src/block.rs:
crates/isa/src/cpu.rs:
crates/isa/src/engine.rs:
crates/isa/src/instr.rs:
crates/isa/src/memory.rs:
crates/isa/src/pipeline.rs:
