/root/repo/target/release/deps/pcount_kernels-9bf79e7aaf808cae.d: crates/kernels/src/lib.rs crates/kernels/src/asm.rs crates/kernels/src/deploy.rs crates/kernels/src/kernels.rs crates/kernels/src/layout.rs

/root/repo/target/release/deps/libpcount_kernels-9bf79e7aaf808cae.rlib: crates/kernels/src/lib.rs crates/kernels/src/asm.rs crates/kernels/src/deploy.rs crates/kernels/src/kernels.rs crates/kernels/src/layout.rs

/root/repo/target/release/deps/libpcount_kernels-9bf79e7aaf808cae.rmeta: crates/kernels/src/lib.rs crates/kernels/src/asm.rs crates/kernels/src/deploy.rs crates/kernels/src/kernels.rs crates/kernels/src/layout.rs

crates/kernels/src/lib.rs:
crates/kernels/src/asm.rs:
crates/kernels/src/deploy.rs:
crates/kernels/src/kernels.rs:
crates/kernels/src/layout.rs:
