/root/repo/target/release/deps/maupiti-d57ea105a5e28b1a.d: src/lib.rs

/root/repo/target/release/deps/libmaupiti-d57ea105a5e28b1a.rlib: src/lib.rs

/root/repo/target/release/deps/libmaupiti-d57ea105a5e28b1a.rmeta: src/lib.rs

src/lib.rs:
