/root/repo/target/release/deps/pcount_nas-3d3a588ace6cb2c3.d: crates/nas/src/lib.rs crates/nas/src/cost.rs crates/nas/src/mask.rs crates/nas/src/model.rs crates/nas/src/search.rs

/root/repo/target/release/deps/libpcount_nas-3d3a588ace6cb2c3.rlib: crates/nas/src/lib.rs crates/nas/src/cost.rs crates/nas/src/mask.rs crates/nas/src/model.rs crates/nas/src/search.rs

/root/repo/target/release/deps/libpcount_nas-3d3a588ace6cb2c3.rmeta: crates/nas/src/lib.rs crates/nas/src/cost.rs crates/nas/src/mask.rs crates/nas/src/model.rs crates/nas/src/search.rs

crates/nas/src/lib.rs:
crates/nas/src/cost.rs:
crates/nas/src/mask.rs:
crates/nas/src/model.rs:
crates/nas/src/search.rs:
