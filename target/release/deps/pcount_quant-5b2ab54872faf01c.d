/root/repo/target/release/deps/pcount_quant-5b2ab54872faf01c.d: crates/quant/src/lib.rs crates/quant/src/fake.rs crates/quant/src/fold.rs crates/quant/src/int.rs crates/quant/src/mixed.rs crates/quant/src/qat.rs crates/quant/src/qparams.rs

/root/repo/target/release/deps/libpcount_quant-5b2ab54872faf01c.rlib: crates/quant/src/lib.rs crates/quant/src/fake.rs crates/quant/src/fold.rs crates/quant/src/int.rs crates/quant/src/mixed.rs crates/quant/src/qat.rs crates/quant/src/qparams.rs

/root/repo/target/release/deps/libpcount_quant-5b2ab54872faf01c.rmeta: crates/quant/src/lib.rs crates/quant/src/fake.rs crates/quant/src/fold.rs crates/quant/src/int.rs crates/quant/src/mixed.rs crates/quant/src/qat.rs crates/quant/src/qparams.rs

crates/quant/src/lib.rs:
crates/quant/src/fake.rs:
crates/quant/src/fold.rs:
crates/quant/src/int.rs:
crates/quant/src/mixed.rs:
crates/quant/src/qat.rs:
crates/quant/src/qparams.rs:
