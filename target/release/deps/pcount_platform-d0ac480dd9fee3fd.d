/root/repo/target/release/deps/pcount_platform-d0ac480dd9fee3fd.d: crates/platform/src/lib.rs

/root/repo/target/release/deps/libpcount_platform-d0ac480dd9fee3fd.rlib: crates/platform/src/lib.rs

/root/repo/target/release/deps/libpcount_platform-d0ac480dd9fee3fd.rmeta: crates/platform/src/lib.rs

crates/platform/src/lib.rs:
