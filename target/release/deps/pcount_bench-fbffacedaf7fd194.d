/root/repo/target/release/deps/pcount_bench-fbffacedaf7fd194.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libpcount_bench-fbffacedaf7fd194.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libpcount_bench-fbffacedaf7fd194.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
