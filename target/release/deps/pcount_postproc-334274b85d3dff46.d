/root/repo/target/release/deps/pcount_postproc-334274b85d3dff46.d: crates/postproc/src/lib.rs

/root/repo/target/release/deps/libpcount_postproc-334274b85d3dff46.rlib: crates/postproc/src/lib.rs

/root/repo/target/release/deps/libpcount_postproc-334274b85d3dff46.rmeta: crates/postproc/src/lib.rs

crates/postproc/src/lib.rs:
