/root/repo/target/release/deps/fig7-882df822e9986198.d: crates/bench/src/bin/fig7.rs

/root/repo/target/release/deps/fig7-882df822e9986198: crates/bench/src/bin/fig7.rs

crates/bench/src/bin/fig7.rs:
