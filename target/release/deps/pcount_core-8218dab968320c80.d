/root/repo/target/release/deps/pcount_core-8218dab968320c80.d: crates/core/src/lib.rs crates/core/src/baseline.rs crates/core/src/flow.rs crates/core/src/pareto.rs

/root/repo/target/release/deps/libpcount_core-8218dab968320c80.rlib: crates/core/src/lib.rs crates/core/src/baseline.rs crates/core/src/flow.rs crates/core/src/pareto.rs

/root/repo/target/release/deps/libpcount_core-8218dab968320c80.rmeta: crates/core/src/lib.rs crates/core/src/baseline.rs crates/core/src/flow.rs crates/core/src/pareto.rs

crates/core/src/lib.rs:
crates/core/src/baseline.rs:
crates/core/src/flow.rs:
crates/core/src/pareto.rs:
