/root/repo/target/release/deps/pcount_nn-8b33758234a39740.d: crates/nn/src/lib.rs crates/nn/src/batchnorm.rs crates/nn/src/conv.rs crates/nn/src/layer.rs crates/nn/src/linear.rs crates/nn/src/loss.rs crates/nn/src/metrics.rs crates/nn/src/model.rs crates/nn/src/optim.rs crates/nn/src/train.rs

/root/repo/target/release/deps/libpcount_nn-8b33758234a39740.rlib: crates/nn/src/lib.rs crates/nn/src/batchnorm.rs crates/nn/src/conv.rs crates/nn/src/layer.rs crates/nn/src/linear.rs crates/nn/src/loss.rs crates/nn/src/metrics.rs crates/nn/src/model.rs crates/nn/src/optim.rs crates/nn/src/train.rs

/root/repo/target/release/deps/libpcount_nn-8b33758234a39740.rmeta: crates/nn/src/lib.rs crates/nn/src/batchnorm.rs crates/nn/src/conv.rs crates/nn/src/layer.rs crates/nn/src/linear.rs crates/nn/src/loss.rs crates/nn/src/metrics.rs crates/nn/src/model.rs crates/nn/src/optim.rs crates/nn/src/train.rs

crates/nn/src/lib.rs:
crates/nn/src/batchnorm.rs:
crates/nn/src/conv.rs:
crates/nn/src/layer.rs:
crates/nn/src/linear.rs:
crates/nn/src/loss.rs:
crates/nn/src/metrics.rs:
crates/nn/src/model.rs:
crates/nn/src/optim.rs:
crates/nn/src/train.rs:
