/root/repo/target/release/examples/edge_deployment-ed4512ee31cb7b29.d: examples/edge_deployment.rs

/root/repo/target/release/examples/edge_deployment-ed4512ee31cb7b29: examples/edge_deployment.rs

examples/edge_deployment.rs:
