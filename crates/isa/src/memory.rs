//! Harvard-style instruction/data memories of the MAUPITI digital block.

/// Base address of the instruction memory.
pub const IMEM_BASE: u32 = 0x0000_0000;
/// Base address of the data memory.
pub const DMEM_BASE: u32 = 0x0010_0000;

/// Byte-addressed instruction and data memories.
///
/// MAUPITI provides 16 KB of instruction memory and 16 KB of data memory;
/// both sizes are configurable so that experiments can also check whether a
/// model would overflow the chip's memories.
#[derive(Debug, Clone)]
pub struct Memory {
    imem: Vec<u8>,
    dmem: Vec<u8>,
}

impl Memory {
    /// Creates memories of the given sizes (in bytes).
    pub fn new(imem_size: usize, dmem_size: usize) -> Self {
        Self {
            imem: vec![0; imem_size],
            dmem: vec![0; dmem_size],
        }
    }

    /// MAUPITI's memory configuration: 16 KB + 16 KB.
    pub fn maupiti() -> Self {
        Self::new(16 * 1024, 16 * 1024)
    }

    /// Instruction memory size in bytes.
    pub fn imem_size(&self) -> usize {
        self.imem.len()
    }

    /// Data memory size in bytes.
    pub fn dmem_size(&self) -> usize {
        self.dmem.len()
    }

    /// Writes `bytes` into instruction memory starting at offset 0.
    ///
    /// # Errors
    ///
    /// Returns `Err` with the number of available bytes if the program does
    /// not fit.
    pub fn load_imem(&mut self, bytes: &[u8]) -> Result<(), usize> {
        if bytes.len() > self.imem.len() {
            return Err(self.imem.len());
        }
        self.imem[..bytes.len()].copy_from_slice(bytes);
        Ok(())
    }

    /// Reads the 32-bit instruction word at `addr`.
    pub fn fetch(&self, addr: u32) -> Option<u32> {
        let off = addr.checked_sub(IMEM_BASE)? as usize;
        if off + 4 > self.imem.len() || !off.is_multiple_of(4) {
            return None;
        }
        Some(u32::from_le_bytes([
            self.imem[off],
            self.imem[off + 1],
            self.imem[off + 2],
            self.imem[off + 3],
        ]))
    }

    fn dmem_offset(&self, addr: u32, len: usize) -> Option<usize> {
        let off = addr.checked_sub(DMEM_BASE)? as usize;
        if off + len > self.dmem.len() {
            return None;
        }
        Some(off)
    }

    /// Loads `len` (1, 2 or 4) bytes from data memory, little-endian.
    pub fn load(&self, addr: u32, len: usize) -> Option<u32> {
        let off = self.dmem_offset(addr, len)?;
        let mut value = 0u32;
        for i in 0..len {
            value |= (self.dmem[off + i] as u32) << (8 * i);
        }
        Some(value)
    }

    /// Stores the low `len` (1, 2 or 4) bytes of `value`, little-endian.
    pub fn store(&mut self, addr: u32, value: u32, len: usize) -> Option<()> {
        let off = self.dmem_offset(addr, len)?;
        for i in 0..len {
            self.dmem[off + i] = (value >> (8 * i)) as u8;
        }
        Some(())
    }

    /// Loads one byte of data memory (fast fixed-width path).
    #[inline]
    pub fn load_byte(&self, addr: u32) -> Option<u8> {
        self.dmem
            .get(addr.wrapping_sub(DMEM_BASE) as usize)
            .copied()
    }

    /// Loads a little-endian half-word (fast fixed-width path).
    #[inline]
    pub fn load_half(&self, addr: u32) -> Option<u16> {
        let off = addr.wrapping_sub(DMEM_BASE) as usize;
        let bytes = self.dmem.get(off..off.wrapping_add(2))?;
        Some(u16::from_le_bytes([bytes[0], bytes[1]]))
    }

    /// Loads a little-endian word (fast fixed-width path).
    #[inline]
    pub fn load_word(&self, addr: u32) -> Option<u32> {
        let off = addr.wrapping_sub(DMEM_BASE) as usize;
        let bytes = self.dmem.get(off..off.wrapping_add(4))?;
        Some(u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]))
    }

    /// Stores one byte of data memory (fast fixed-width path).
    #[inline]
    pub fn store_byte(&mut self, addr: u32, value: u8) -> Option<()> {
        *self.dmem.get_mut(addr.wrapping_sub(DMEM_BASE) as usize)? = value;
        Some(())
    }

    /// Stores a little-endian half-word (fast fixed-width path).
    #[inline]
    pub fn store_half(&mut self, addr: u32, value: u16) -> Option<()> {
        let off = addr.wrapping_sub(DMEM_BASE) as usize;
        self.dmem
            .get_mut(off..off.wrapping_add(2))?
            .copy_from_slice(&value.to_le_bytes());
        Some(())
    }

    /// Stores a little-endian word (fast fixed-width path).
    #[inline]
    pub fn store_word(&mut self, addr: u32, value: u32) -> Option<()> {
        let off = addr.wrapping_sub(DMEM_BASE) as usize;
        self.dmem
            .get_mut(off..off.wrapping_add(4))?
            .copy_from_slice(&value.to_le_bytes());
        Some(())
    }

    /// Copies a byte slice into data memory at `addr`.
    ///
    /// # Panics
    ///
    /// Panics if the destination range is out of bounds.
    pub fn write_dmem(&mut self, addr: u32, bytes: &[u8]) {
        let off = self
            .dmem_offset(addr, bytes.len())
            .expect("dmem write out of bounds");
        self.dmem[off..off + bytes.len()].copy_from_slice(bytes);
    }

    /// Reads `len` bytes of data memory at `addr`.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn read_dmem(&self, addr: u32, len: usize) -> &[u8] {
        let off = self
            .dmem_offset(addr, len)
            .expect("dmem read out of bounds");
        &self.dmem[off..off + len]
    }

    /// Data memory as a raw byte slice, for fused-loop execution whose
    /// addresses have already been bounds-checked.
    #[inline]
    pub(crate) fn dmem(&self) -> &[u8] {
        &self.dmem
    }

    /// Mutable data memory as a raw byte slice, for fused-loop execution
    /// whose addresses have already been bounds-checked.
    #[inline]
    pub(crate) fn dmem_mut(&mut self) -> &mut [u8] {
        &mut self.dmem
    }

    /// Overwrites both memory images with `other`'s, in place (no
    /// reallocation). Used by [`crate::Cpu::restore_from`] to re-warm a
    /// faulted CPU from a pristine base without cloning fresh buffers.
    ///
    /// # Panics
    ///
    /// Panics if the memory geometries differ.
    pub fn copy_state_from(&mut self, other: &Memory) {
        assert_eq!(
            (self.imem.len(), self.dmem.len()),
            (other.imem.len(), other.dmem.len()),
            "cannot restore memory state across different memory geometries"
        );
        self.imem.copy_from_slice(&other.imem);
        self.dmem.copy_from_slice(&other.dmem);
    }
}

impl Default for Memory {
    fn default() -> Self {
        Self::maupiti()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_sizes_match_maupiti() {
        let m = Memory::default();
        assert_eq!(m.imem_size(), 16 * 1024);
        assert_eq!(m.dmem_size(), 16 * 1024);
    }

    #[test]
    fn program_larger_than_imem_is_rejected() {
        let mut m = Memory::new(8, 8);
        assert!(m.load_imem(&[0u8; 12]).is_err());
        assert!(m.load_imem(&[0u8; 8]).is_ok());
    }

    #[test]
    fn fetch_requires_alignment_and_bounds() {
        let mut m = Memory::new(16, 16);
        m.load_imem(&0xDEADBEEFu32.to_le_bytes()).unwrap();
        assert_eq!(m.fetch(IMEM_BASE), Some(0xDEADBEEF));
        assert_eq!(m.fetch(IMEM_BASE + 2), None);
        assert_eq!(m.fetch(IMEM_BASE + 16), None);
    }

    #[test]
    fn data_memory_round_trips_little_endian() {
        let mut m = Memory::new(16, 64);
        m.store(DMEM_BASE + 4, 0x1122_3344, 4).unwrap();
        assert_eq!(m.load(DMEM_BASE + 4, 4), Some(0x1122_3344));
        assert_eq!(m.load(DMEM_BASE + 4, 1), Some(0x44));
        assert_eq!(m.load(DMEM_BASE + 5, 1), Some(0x33));
        assert_eq!(m.load(DMEM_BASE + 100, 4), None);
    }

    #[test]
    fn bulk_dmem_access_round_trips() {
        let mut m = Memory::new(16, 64);
        m.write_dmem(DMEM_BASE + 8, &[1, 2, 3, 4, 5]);
        assert_eq!(m.read_dmem(DMEM_BASE + 8, 5), &[1, 2, 3, 4, 5]);
    }

    #[test]
    fn addresses_outside_dmem_fail() {
        let m = Memory::new(16, 16);
        assert_eq!(m.load(0x42, 4), None); // below DMEM_BASE
        assert_eq!(m.load(DMEM_BASE + 14, 4), None); // straddles the end
    }
}
