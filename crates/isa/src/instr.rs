//! Instruction definitions, binary encoding and decoding.

/// Conditional branch comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BranchOp {
    /// Branch if equal.
    Beq,
    /// Branch if not equal.
    Bne,
    /// Branch if less than (signed).
    Blt,
    /// Branch if greater or equal (signed).
    Bge,
    /// Branch if less than (unsigned).
    Bltu,
    /// Branch if greater or equal (unsigned).
    Bgeu,
}

/// Memory load widths / sign behaviours.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LoadOp {
    /// Load signed byte.
    Lb,
    /// Load signed half-word.
    Lh,
    /// Load word.
    Lw,
    /// Load unsigned byte.
    Lbu,
    /// Load unsigned half-word.
    Lhu,
}

/// Memory store widths.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StoreOp {
    /// Store byte.
    Sb,
    /// Store half-word.
    Sh,
    /// Store word.
    Sw,
}

/// One RV32IM (+ MAUPITI SDOTP) instruction.
///
/// Immediates are stored sign-extended; `Lui`/`Auipc` store the 20-bit
/// upper-immediate value (the architectural effect is `imm << 12`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum Instr {
    Lui {
        rd: u8,
        imm: i32,
    },
    Auipc {
        rd: u8,
        imm: i32,
    },
    Jal {
        rd: u8,
        offset: i32,
    },
    Jalr {
        rd: u8,
        rs1: u8,
        offset: i32,
    },
    Branch {
        op: BranchOp,
        rs1: u8,
        rs2: u8,
        offset: i32,
    },
    Load {
        op: LoadOp,
        rd: u8,
        rs1: u8,
        offset: i32,
    },
    Store {
        op: StoreOp,
        rs1: u8,
        rs2: u8,
        offset: i32,
    },
    Addi {
        rd: u8,
        rs1: u8,
        imm: i32,
    },
    Slti {
        rd: u8,
        rs1: u8,
        imm: i32,
    },
    Sltiu {
        rd: u8,
        rs1: u8,
        imm: i32,
    },
    Xori {
        rd: u8,
        rs1: u8,
        imm: i32,
    },
    Ori {
        rd: u8,
        rs1: u8,
        imm: i32,
    },
    Andi {
        rd: u8,
        rs1: u8,
        imm: i32,
    },
    Slli {
        rd: u8,
        rs1: u8,
        shamt: u8,
    },
    Srli {
        rd: u8,
        rs1: u8,
        shamt: u8,
    },
    Srai {
        rd: u8,
        rs1: u8,
        shamt: u8,
    },
    Add {
        rd: u8,
        rs1: u8,
        rs2: u8,
    },
    Sub {
        rd: u8,
        rs1: u8,
        rs2: u8,
    },
    Sll {
        rd: u8,
        rs1: u8,
        rs2: u8,
    },
    Slt {
        rd: u8,
        rs1: u8,
        rs2: u8,
    },
    Sltu {
        rd: u8,
        rs1: u8,
        rs2: u8,
    },
    Xor {
        rd: u8,
        rs1: u8,
        rs2: u8,
    },
    Srl {
        rd: u8,
        rs1: u8,
        rs2: u8,
    },
    Sra {
        rd: u8,
        rs1: u8,
        rs2: u8,
    },
    Or {
        rd: u8,
        rs1: u8,
        rs2: u8,
    },
    And {
        rd: u8,
        rs1: u8,
        rs2: u8,
    },
    Mul {
        rd: u8,
        rs1: u8,
        rs2: u8,
    },
    Mulh {
        rd: u8,
        rs1: u8,
        rs2: u8,
    },
    Mulhsu {
        rd: u8,
        rs1: u8,
        rs2: u8,
    },
    Mulhu {
        rd: u8,
        rs1: u8,
        rs2: u8,
    },
    Div {
        rd: u8,
        rs1: u8,
        rs2: u8,
    },
    Divu {
        rd: u8,
        rs1: u8,
        rs2: u8,
    },
    Rem {
        rd: u8,
        rs1: u8,
        rs2: u8,
    },
    Remu {
        rd: u8,
        rs1: u8,
        rs2: u8,
    },
    /// MAUPITI SDOTP on four signed 8-bit lanes:
    /// `rd += Σ_i sext8(rs1[i]) * sext8(rs2[i])`.
    Sdotp8 {
        rd: u8,
        rs1: u8,
        rs2: u8,
    },
    /// MAUPITI SDOTP on eight signed 4-bit lanes:
    /// `rd += Σ_i sext4(rs1[i]) * sext4(rs2[i])`.
    Sdotp4 {
        rd: u8,
        rs1: u8,
        rs2: u8,
    },
    Ecall,
    Ebreak,
}

const OPC_LUI: u32 = 0x37;
const OPC_AUIPC: u32 = 0x17;
const OPC_JAL: u32 = 0x6F;
const OPC_JALR: u32 = 0x67;
const OPC_BRANCH: u32 = 0x63;
const OPC_LOAD: u32 = 0x03;
const OPC_STORE: u32 = 0x23;
const OPC_OP_IMM: u32 = 0x13;
const OPC_OP: u32 = 0x33;
const OPC_SYSTEM: u32 = 0x73;
/// `custom-0` opcode used by the MAUPITI SDOTP extension.
const OPC_CUSTOM0: u32 = 0x0B;

fn enc_r(funct7: u32, rs2: u8, rs1: u8, funct3: u32, rd: u8, opcode: u32) -> u32 {
    (funct7 << 25)
        | ((rs2 as u32) << 20)
        | ((rs1 as u32) << 15)
        | (funct3 << 12)
        | ((rd as u32) << 7)
        | opcode
}

fn enc_i(imm: i32, rs1: u8, funct3: u32, rd: u8, opcode: u32) -> u32 {
    ((imm as u32 & 0xFFF) << 20)
        | ((rs1 as u32) << 15)
        | (funct3 << 12)
        | ((rd as u32) << 7)
        | opcode
}

fn enc_s(imm: i32, rs2: u8, rs1: u8, funct3: u32, opcode: u32) -> u32 {
    let imm = imm as u32;
    ((imm >> 5 & 0x7F) << 25)
        | ((rs2 as u32) << 20)
        | ((rs1 as u32) << 15)
        | (funct3 << 12)
        | ((imm & 0x1F) << 7)
        | opcode
}

fn enc_b(imm: i32, rs2: u8, rs1: u8, funct3: u32, opcode: u32) -> u32 {
    let imm = imm as u32;
    ((imm >> 12 & 1) << 31)
        | ((imm >> 5 & 0x3F) << 25)
        | ((rs2 as u32) << 20)
        | ((rs1 as u32) << 15)
        | (funct3 << 12)
        | ((imm >> 1 & 0xF) << 8)
        | ((imm >> 11 & 1) << 7)
        | opcode
}

fn enc_u(imm20: i32, rd: u8, opcode: u32) -> u32 {
    ((imm20 as u32 & 0xF_FFFF) << 12) | ((rd as u32) << 7) | opcode
}

fn enc_j(imm: i32, rd: u8, opcode: u32) -> u32 {
    let imm = imm as u32;
    ((imm >> 20 & 1) << 31)
        | ((imm >> 1 & 0x3FF) << 21)
        | ((imm >> 11 & 1) << 20)
        | ((imm >> 12 & 0xFF) << 12)
        | ((rd as u32) << 7)
        | opcode
}

fn sext(value: u32, bits: u32) -> i32 {
    let shift = 32 - bits;
    ((value << shift) as i32) >> shift
}

impl Instr {
    /// Encodes the instruction as a 32-bit RISC-V word.
    pub fn encode(self) -> u32 {
        use Instr::*;
        match self {
            Lui { rd, imm } => enc_u(imm, rd, OPC_LUI),
            Auipc { rd, imm } => enc_u(imm, rd, OPC_AUIPC),
            Jal { rd, offset } => enc_j(offset, rd, OPC_JAL),
            Jalr { rd, rs1, offset } => enc_i(offset, rs1, 0, rd, OPC_JALR),
            Branch {
                op,
                rs1,
                rs2,
                offset,
            } => {
                let f3 = match op {
                    BranchOp::Beq => 0,
                    BranchOp::Bne => 1,
                    BranchOp::Blt => 4,
                    BranchOp::Bge => 5,
                    BranchOp::Bltu => 6,
                    BranchOp::Bgeu => 7,
                };
                enc_b(offset, rs2, rs1, f3, OPC_BRANCH)
            }
            Load {
                op,
                rd,
                rs1,
                offset,
            } => {
                let f3 = match op {
                    LoadOp::Lb => 0,
                    LoadOp::Lh => 1,
                    LoadOp::Lw => 2,
                    LoadOp::Lbu => 4,
                    LoadOp::Lhu => 5,
                };
                enc_i(offset, rs1, f3, rd, OPC_LOAD)
            }
            Store {
                op,
                rs1,
                rs2,
                offset,
            } => {
                let f3 = match op {
                    StoreOp::Sb => 0,
                    StoreOp::Sh => 1,
                    StoreOp::Sw => 2,
                };
                enc_s(offset, rs2, rs1, f3, OPC_STORE)
            }
            Addi { rd, rs1, imm } => enc_i(imm, rs1, 0, rd, OPC_OP_IMM),
            Slti { rd, rs1, imm } => enc_i(imm, rs1, 2, rd, OPC_OP_IMM),
            Sltiu { rd, rs1, imm } => enc_i(imm, rs1, 3, rd, OPC_OP_IMM),
            Xori { rd, rs1, imm } => enc_i(imm, rs1, 4, rd, OPC_OP_IMM),
            Ori { rd, rs1, imm } => enc_i(imm, rs1, 6, rd, OPC_OP_IMM),
            Andi { rd, rs1, imm } => enc_i(imm, rs1, 7, rd, OPC_OP_IMM),
            Slli { rd, rs1, shamt } => enc_r(0, shamt, rs1, 1, rd, OPC_OP_IMM),
            Srli { rd, rs1, shamt } => enc_r(0, shamt, rs1, 5, rd, OPC_OP_IMM),
            Srai { rd, rs1, shamt } => enc_r(0x20, shamt, rs1, 5, rd, OPC_OP_IMM),
            Add { rd, rs1, rs2 } => enc_r(0, rs2, rs1, 0, rd, OPC_OP),
            Sub { rd, rs1, rs2 } => enc_r(0x20, rs2, rs1, 0, rd, OPC_OP),
            Sll { rd, rs1, rs2 } => enc_r(0, rs2, rs1, 1, rd, OPC_OP),
            Slt { rd, rs1, rs2 } => enc_r(0, rs2, rs1, 2, rd, OPC_OP),
            Sltu { rd, rs1, rs2 } => enc_r(0, rs2, rs1, 3, rd, OPC_OP),
            Xor { rd, rs1, rs2 } => enc_r(0, rs2, rs1, 4, rd, OPC_OP),
            Srl { rd, rs1, rs2 } => enc_r(0, rs2, rs1, 5, rd, OPC_OP),
            Sra { rd, rs1, rs2 } => enc_r(0x20, rs2, rs1, 5, rd, OPC_OP),
            Or { rd, rs1, rs2 } => enc_r(0, rs2, rs1, 6, rd, OPC_OP),
            And { rd, rs1, rs2 } => enc_r(0, rs2, rs1, 7, rd, OPC_OP),
            Mul { rd, rs1, rs2 } => enc_r(1, rs2, rs1, 0, rd, OPC_OP),
            Mulh { rd, rs1, rs2 } => enc_r(1, rs2, rs1, 1, rd, OPC_OP),
            Mulhsu { rd, rs1, rs2 } => enc_r(1, rs2, rs1, 2, rd, OPC_OP),
            Mulhu { rd, rs1, rs2 } => enc_r(1, rs2, rs1, 3, rd, OPC_OP),
            Div { rd, rs1, rs2 } => enc_r(1, rs2, rs1, 4, rd, OPC_OP),
            Divu { rd, rs1, rs2 } => enc_r(1, rs2, rs1, 5, rd, OPC_OP),
            Rem { rd, rs1, rs2 } => enc_r(1, rs2, rs1, 6, rd, OPC_OP),
            Remu { rd, rs1, rs2 } => enc_r(1, rs2, rs1, 7, rd, OPC_OP),
            Sdotp8 { rd, rs1, rs2 } => enc_r(0, rs2, rs1, 0, rd, OPC_CUSTOM0),
            Sdotp4 { rd, rs1, rs2 } => enc_r(0, rs2, rs1, 1, rd, OPC_CUSTOM0),
            Ecall => 0x0000_0073,
            Ebreak => 0x0010_0073,
        }
    }

    /// Returns `true` for the SDOTP extension instructions.
    pub fn is_sdotp(self) -> bool {
        matches!(self, Instr::Sdotp8 { .. } | Instr::Sdotp4 { .. })
    }

    /// Short mnemonic for tracing.
    pub fn mnemonic(self) -> &'static str {
        use Instr::*;
        match self {
            Lui { .. } => "lui",
            Auipc { .. } => "auipc",
            Jal { .. } => "jal",
            Jalr { .. } => "jalr",
            Branch { .. } => "branch",
            Load { .. } => "load",
            Store { .. } => "store",
            Addi { .. }
            | Slti { .. }
            | Sltiu { .. }
            | Xori { .. }
            | Ori { .. }
            | Andi { .. }
            | Slli { .. }
            | Srli { .. }
            | Srai { .. } => "alu-imm",
            Add { .. }
            | Sub { .. }
            | Sll { .. }
            | Slt { .. }
            | Sltu { .. }
            | Xor { .. }
            | Srl { .. }
            | Sra { .. }
            | Or { .. }
            | And { .. } => "alu",
            Mul { .. } | Mulh { .. } | Mulhsu { .. } | Mulhu { .. } => "mul",
            Div { .. } | Divu { .. } | Rem { .. } | Remu { .. } => "div",
            Sdotp8 { .. } => "sdotp8",
            Sdotp4 { .. } => "sdotp4",
            Ecall => "ecall",
            Ebreak => "ebreak",
        }
    }
}

/// A fully lowered micro-operation: instruction semantics with every
/// immediate, shift amount, memory width and control-flow target resolved
/// at decode time, so the block-cached engine's dispatch loop is a single
/// flat match with no nested decoding or address arithmetic beyond the
/// register file and data memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Op {
    /// `rd = value` (LUI, value pre-shifted).
    Lui(u32),
    /// `rd = value` (AUIPC, `pc + (imm << 12)` pre-computed).
    Auipc(u32),
    /// `rd = pc + 4` (pre-computed link), jump to `target` (pre-computed).
    Jal {
        link: u32,
        target: u32,
    },
    /// A JAL whose target the trace builder inlined: the next trace
    /// element IS the target instruction, so execution just continues.
    /// Costs and flush accounting are unchanged.
    JalFollowed {
        link: u32,
    },
    /// `rd = link`, jump to `(rs1 + offset) & !1`.
    Jalr {
        link: u32,
        offset: u32,
    },
    /// Conditional branches; `target` pre-computed from pc + offset.
    Beq {
        target: u32,
    },
    Bne {
        target: u32,
    },
    Blt {
        target: u32,
    },
    Bge {
        target: u32,
    },
    Bltu {
        target: u32,
    },
    Bgeu {
        target: u32,
    },
    /// Loads at `rs1 + offset` (width/sign in the opcode).
    Lb(u32),
    Lh(u32),
    Lw(u32),
    Lbu(u32),
    Lhu(u32),
    /// Stores of `rs2` at `rs1 + offset`.
    Sb(u32),
    Sh(u32),
    Sw(u32),
    Addi(u32),
    Slti(i32),
    Sltiu(u32),
    Xori(u32),
    Ori(u32),
    Andi(u32),
    /// Shift-immediates with the shift amount pre-masked to 0..32.
    Slli(u32),
    Srli(u32),
    Srai(u32),
    Add,
    Sub,
    Sll,
    Slt,
    Sltu,
    Xor,
    Srl,
    Sra,
    Or,
    And,
    Mul,
    Mulh,
    Mulhsu,
    Mulhu,
    Div,
    Divu,
    Rem,
    Remu,
    Sdotp8,
    Sdotp4,
    /// ECALL / EBREAK.
    Halt,
}

/// A pre-decoded instruction: the architectural [`Instr`] plus the static
/// metadata the block-cached engine and the pipelined timing model need,
/// extracted once at decode time instead of on every execution.
///
/// `rs1`/`rs2` are the registers the instruction *reads* (0 when a port is
/// unused — x0 never participates in hazards), `rd` is the written
/// register. The SDOTP instructions additionally read their destination as
/// an accumulator through the third register-file read port, flagged by
/// `reads_rd`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Decoded {
    /// The architectural instruction.
    pub instr: Instr,
    /// Address of this instruction.
    pub pc: u32,
    /// Destination register (0 when the instruction writes no register).
    pub rd: u8,
    /// First read port (0 when unused).
    pub rs1: u8,
    /// Second read port (0 when unused).
    pub rs2: u8,
    /// Whether `rd` is also read (SDOTP accumulation).
    pub reads_rd: bool,
    /// Whether this is a data-memory load (source of load-use hazards).
    pub is_load: bool,
    /// Whether this is a data-memory store (loads and stores together are
    /// the accesses charged through the memory-hierarchy model).
    pub is_store: bool,
    /// Whether this instruction ends a basic block (control flow or halt).
    pub is_terminator: bool,
    /// Fetch-flush cycles charged when this instruction redirects the PC
    /// (1 for jumps resolved in decode, 2 for branches resolved in
    /// execute, 0 otherwise).
    pub flush_on_take: u8,
    /// Bitmask of registers read (bit r set when register r is read; bit 0
    /// is meaningless since x0 never participates in hazards).
    pub reads_mask: u32,
    /// Flat stage-occupancy cycles (IBEX reference numbers; taken-branch
    /// redirect cycles are added at run time).
    pub base_cycles: u8,
    /// The lowered micro-operation executed by the block-cached engine.
    pub(crate) op: Op,
    /// For conditional branches inside a trace: index of this instruction's
    /// side exit in the owning block's exit table (set by the trace
    /// builder; 0 otherwise).
    pub(crate) exit_ordinal: u16,
}

impl Decoded {
    /// Pre-decodes `instr` located at `pc`.
    pub fn new(instr: Instr, pc: u32) -> Self {
        use Instr::*;
        let (rd, rs1, rs2, reads_rd) = match instr {
            Lui { rd, .. } | Auipc { rd, .. } | Jal { rd, .. } => (rd, 0, 0, false),
            Jalr { rd, rs1, .. } => (rd, rs1, 0, false),
            Branch { rs1, rs2, .. } => (0, rs1, rs2, false),
            Load { rd, rs1, .. } => (rd, rs1, 0, false),
            Store { rs1, rs2, .. } => (0, rs1, rs2, false),
            Addi { rd, rs1, .. }
            | Slti { rd, rs1, .. }
            | Sltiu { rd, rs1, .. }
            | Xori { rd, rs1, .. }
            | Ori { rd, rs1, .. }
            | Andi { rd, rs1, .. }
            | Slli { rd, rs1, .. }
            | Srli { rd, rs1, .. }
            | Srai { rd, rs1, .. } => (rd, rs1, 0, false),
            Add { rd, rs1, rs2 }
            | Sub { rd, rs1, rs2 }
            | Sll { rd, rs1, rs2 }
            | Slt { rd, rs1, rs2 }
            | Sltu { rd, rs1, rs2 }
            | Xor { rd, rs1, rs2 }
            | Srl { rd, rs1, rs2 }
            | Sra { rd, rs1, rs2 }
            | Or { rd, rs1, rs2 }
            | And { rd, rs1, rs2 }
            | Mul { rd, rs1, rs2 }
            | Mulh { rd, rs1, rs2 }
            | Mulhsu { rd, rs1, rs2 }
            | Mulhu { rd, rs1, rs2 }
            | Div { rd, rs1, rs2 }
            | Divu { rd, rs1, rs2 }
            | Rem { rd, rs1, rs2 }
            | Remu { rd, rs1, rs2 } => (rd, rs1, rs2, false),
            Sdotp8 { rd, rs1, rs2 } | Sdotp4 { rd, rs1, rs2 } => (rd, rs1, rs2, true),
            Ecall | Ebreak => (0, 0, 0, false),
        };
        let is_load = matches!(instr, Load { .. });
        let is_store = matches!(instr, Store { .. });
        let is_terminator = matches!(
            instr,
            Jal { .. } | Jalr { .. } | Branch { .. } | Ecall | Ebreak
        );
        let flush_on_take = match instr {
            Jal { .. } | Jalr { .. } => 1,
            Branch { .. } => 2,
            _ => 0,
        };
        let base_cycles = crate::pipeline::stage_cycles(&instr);
        let mut reads_mask = 0u32;
        reads_mask |= 1 << rs1;
        reads_mask |= 1 << rs2;
        if reads_rd {
            reads_mask |= 1 << rd;
        }
        let op = match instr {
            Lui { imm, .. } => Op::Lui((imm as u32) << 12),
            Auipc { imm, .. } => Op::Auipc(pc.wrapping_add((imm as u32) << 12)),
            Jal { offset, .. } => Op::Jal {
                link: pc.wrapping_add(4),
                target: pc.wrapping_add(offset as u32),
            },
            Jalr { offset, .. } => Op::Jalr {
                link: pc.wrapping_add(4),
                offset: offset as u32,
            },
            Branch { op, offset, .. } => {
                let target = pc.wrapping_add(offset as u32);
                match op {
                    BranchOp::Beq => Op::Beq { target },
                    BranchOp::Bne => Op::Bne { target },
                    BranchOp::Blt => Op::Blt { target },
                    BranchOp::Bge => Op::Bge { target },
                    BranchOp::Bltu => Op::Bltu { target },
                    BranchOp::Bgeu => Op::Bgeu { target },
                }
            }
            Load { op, offset, .. } => match op {
                LoadOp::Lb => Op::Lb(offset as u32),
                LoadOp::Lh => Op::Lh(offset as u32),
                LoadOp::Lw => Op::Lw(offset as u32),
                LoadOp::Lbu => Op::Lbu(offset as u32),
                LoadOp::Lhu => Op::Lhu(offset as u32),
            },
            Store { op, offset, .. } => match op {
                StoreOp::Sb => Op::Sb(offset as u32),
                StoreOp::Sh => Op::Sh(offset as u32),
                StoreOp::Sw => Op::Sw(offset as u32),
            },
            Addi { imm, .. } => Op::Addi(imm as u32),
            Slti { imm, .. } => Op::Slti(imm),
            Sltiu { imm, .. } => Op::Sltiu(imm as u32),
            Xori { imm, .. } => Op::Xori(imm as u32),
            Ori { imm, .. } => Op::Ori(imm as u32),
            Andi { imm, .. } => Op::Andi(imm as u32),
            Slli { shamt, .. } => Op::Slli((shamt & 31) as u32),
            Srli { shamt, .. } => Op::Srli((shamt & 31) as u32),
            Srai { shamt, .. } => Op::Srai((shamt & 31) as u32),
            Add { .. } => Op::Add,
            Sub { .. } => Op::Sub,
            Sll { .. } => Op::Sll,
            Slt { .. } => Op::Slt,
            Sltu { .. } => Op::Sltu,
            Xor { .. } => Op::Xor,
            Srl { .. } => Op::Srl,
            Sra { .. } => Op::Sra,
            Or { .. } => Op::Or,
            And { .. } => Op::And,
            Mul { .. } => Op::Mul,
            Mulh { .. } => Op::Mulh,
            Mulhsu { .. } => Op::Mulhsu,
            Mulhu { .. } => Op::Mulhu,
            Div { .. } => Op::Div,
            Divu { .. } => Op::Divu,
            Rem { .. } => Op::Rem,
            Remu { .. } => Op::Remu,
            Sdotp8 { .. } => Op::Sdotp8,
            Sdotp4 { .. } => Op::Sdotp4,
            Ecall | Ebreak => Op::Halt,
        };
        Self {
            instr,
            pc,
            rd,
            rs1,
            rs2,
            reads_rd,
            is_load,
            is_store,
            is_terminator,
            flush_on_take,
            reads_mask,
            base_cycles,
            op,
            exit_ordinal: 0,
        }
    }

    /// Trace mnemonic of the underlying instruction.
    pub fn mnemonic(&self) -> &'static str {
        self.instr.mnemonic()
    }

    /// Whether the instruction reads register `r` (always false for x0).
    pub fn uses(&self, r: u8) -> bool {
        r != 0 && (self.reads_mask >> r) & 1 != 0
    }
}

/// Decodes a 32-bit RISC-V word into an [`Instr`].
///
/// # Errors
///
/// Returns the raw word if it is not a supported RV32IM / SDOTP encoding.
pub fn decode(word: u32) -> Result<Instr, u32> {
    let opcode = word & 0x7F;
    let rd = ((word >> 7) & 0x1F) as u8;
    let funct3 = (word >> 12) & 7;
    let rs1 = ((word >> 15) & 0x1F) as u8;
    let rs2 = ((word >> 20) & 0x1F) as u8;
    let funct7 = word >> 25;
    let imm_i = sext(word >> 20, 12);
    let imm_s = sext(((word >> 25) << 5) | ((word >> 7) & 0x1F), 12);
    let imm_b = sext(
        ((word >> 31) << 12)
            | (((word >> 7) & 1) << 11)
            | (((word >> 25) & 0x3F) << 5)
            | (((word >> 8) & 0xF) << 1),
        13,
    );
    let imm_u = ((word >> 12) & 0xF_FFFF) as i32;
    let imm_j = sext(
        ((word >> 31) << 20)
            | (((word >> 12) & 0xFF) << 12)
            | (((word >> 20) & 1) << 11)
            | (((word >> 21) & 0x3FF) << 1),
        21,
    );
    let instr = match opcode {
        OPC_LUI => Instr::Lui { rd, imm: imm_u },
        OPC_AUIPC => Instr::Auipc { rd, imm: imm_u },
        OPC_JAL => Instr::Jal { rd, offset: imm_j },
        OPC_JALR if funct3 == 0 => Instr::Jalr {
            rd,
            rs1,
            offset: imm_i,
        },
        OPC_BRANCH => {
            let op = match funct3 {
                0 => BranchOp::Beq,
                1 => BranchOp::Bne,
                4 => BranchOp::Blt,
                5 => BranchOp::Bge,
                6 => BranchOp::Bltu,
                7 => BranchOp::Bgeu,
                _ => return Err(word),
            };
            Instr::Branch {
                op,
                rs1,
                rs2,
                offset: imm_b,
            }
        }
        OPC_LOAD => {
            let op = match funct3 {
                0 => LoadOp::Lb,
                1 => LoadOp::Lh,
                2 => LoadOp::Lw,
                4 => LoadOp::Lbu,
                5 => LoadOp::Lhu,
                _ => return Err(word),
            };
            Instr::Load {
                op,
                rd,
                rs1,
                offset: imm_i,
            }
        }
        OPC_STORE => {
            let op = match funct3 {
                0 => StoreOp::Sb,
                1 => StoreOp::Sh,
                2 => StoreOp::Sw,
                _ => return Err(word),
            };
            Instr::Store {
                op,
                rs1,
                rs2,
                offset: imm_s,
            }
        }
        OPC_OP_IMM => match funct3 {
            0 => Instr::Addi {
                rd,
                rs1,
                imm: imm_i,
            },
            2 => Instr::Slti {
                rd,
                rs1,
                imm: imm_i,
            },
            3 => Instr::Sltiu {
                rd,
                rs1,
                imm: imm_i,
            },
            4 => Instr::Xori {
                rd,
                rs1,
                imm: imm_i,
            },
            6 => Instr::Ori {
                rd,
                rs1,
                imm: imm_i,
            },
            7 => Instr::Andi {
                rd,
                rs1,
                imm: imm_i,
            },
            1 => Instr::Slli {
                rd,
                rs1,
                shamt: rs2,
            },
            5 if funct7 == 0 => Instr::Srli {
                rd,
                rs1,
                shamt: rs2,
            },
            5 if funct7 == 0x20 => Instr::Srai {
                rd,
                rs1,
                shamt: rs2,
            },
            _ => return Err(word),
        },
        OPC_OP => match (funct7, funct3) {
            (0, 0) => Instr::Add { rd, rs1, rs2 },
            (0x20, 0) => Instr::Sub { rd, rs1, rs2 },
            (0, 1) => Instr::Sll { rd, rs1, rs2 },
            (0, 2) => Instr::Slt { rd, rs1, rs2 },
            (0, 3) => Instr::Sltu { rd, rs1, rs2 },
            (0, 4) => Instr::Xor { rd, rs1, rs2 },
            (0, 5) => Instr::Srl { rd, rs1, rs2 },
            (0x20, 5) => Instr::Sra { rd, rs1, rs2 },
            (0, 6) => Instr::Or { rd, rs1, rs2 },
            (0, 7) => Instr::And { rd, rs1, rs2 },
            (1, 0) => Instr::Mul { rd, rs1, rs2 },
            (1, 1) => Instr::Mulh { rd, rs1, rs2 },
            (1, 2) => Instr::Mulhsu { rd, rs1, rs2 },
            (1, 3) => Instr::Mulhu { rd, rs1, rs2 },
            (1, 4) => Instr::Div { rd, rs1, rs2 },
            (1, 5) => Instr::Divu { rd, rs1, rs2 },
            (1, 6) => Instr::Rem { rd, rs1, rs2 },
            (1, 7) => Instr::Remu { rd, rs1, rs2 },
            _ => return Err(word),
        },
        OPC_CUSTOM0 => match (funct7, funct3) {
            (0, 0) => Instr::Sdotp8 { rd, rs1, rs2 },
            (0, 1) => Instr::Sdotp4 { rd, rs1, rs2 },
            _ => return Err(word),
        },
        OPC_SYSTEM => match word {
            0x0000_0073 => Instr::Ecall,
            0x0010_0073 => Instr::Ebreak,
            _ => return Err(word),
        },
        _ => return Err(word),
    };
    Ok(instr)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn known_encodings_match_the_spec() {
        // addi a0, zero, 5  ->  0x00500513
        assert_eq!(
            Instr::Addi {
                rd: 10,
                rs1: 0,
                imm: 5
            }
            .encode(),
            0x0050_0513
        );
        // add a0, a1, a2 -> 0x00C58533
        assert_eq!(
            Instr::Add {
                rd: 10,
                rs1: 11,
                rs2: 12
            }
            .encode(),
            0x00C5_8533
        );
        // lw a0, 8(sp) -> 0x00812503
        assert_eq!(
            Instr::Load {
                op: LoadOp::Lw,
                rd: 10,
                rs1: 2,
                offset: 8
            }
            .encode(),
            0x0081_2503
        );
        // sw a0, 8(sp) -> 0x00A12423
        assert_eq!(
            Instr::Store {
                op: StoreOp::Sw,
                rs1: 2,
                rs2: 10,
                offset: 8
            }
            .encode(),
            0x00A1_2423
        );
        assert_eq!(Instr::Ecall.encode(), 0x0000_0073);
        assert_eq!(Instr::Ebreak.encode(), 0x0010_0073);
    }

    #[test]
    fn negative_immediates_round_trip() {
        for imm in [-1, -5, -2048, 2047] {
            let i = Instr::Addi { rd: 3, rs1: 4, imm };
            assert_eq!(decode(i.encode()), Ok(i));
        }
        for offset in [-4096, -2, 0, 2, 4094] {
            let b = Instr::Branch {
                op: BranchOp::Bne,
                rs1: 5,
                rs2: 6,
                offset,
            };
            assert_eq!(decode(b.encode()), Ok(b));
        }
        for offset in [-1048576, -4, 0, 4, 1048574] {
            let j = Instr::Jal { rd: 1, offset };
            assert_eq!(decode(j.encode()), Ok(j));
        }
    }

    #[test]
    fn sdotp_uses_custom0_opcode() {
        let w = Instr::Sdotp8 {
            rd: 10,
            rs1: 11,
            rs2: 12,
        }
        .encode();
        assert_eq!(w & 0x7F, 0x0B);
        assert_eq!(
            decode(w),
            Ok(Instr::Sdotp8 {
                rd: 10,
                rs1: 11,
                rs2: 12
            })
        );
        let w4 = Instr::Sdotp4 {
            rd: 5,
            rs1: 6,
            rs2: 7,
        }
        .encode();
        assert_eq!(decode(w4).unwrap().mnemonic(), "sdotp4");
    }

    #[test]
    fn unknown_words_are_rejected() {
        assert!(decode(0xFFFF_FFFF).is_err());
        assert!(decode(0x0000_0000).is_err());
    }

    /// One exemplar of every `Instr` variant (all fields non-trivial where
    /// the encoding allows, negative immediates where legal).
    fn every_variant() -> Vec<Instr> {
        let mut all = vec![
            Instr::Lui {
                rd: 7,
                imm: 0xF_F0F0,
            },
            Instr::Auipc {
                rd: 8,
                imm: 0x0_1234,
            },
            Instr::Jal {
                rd: 1,
                offset: -1048576,
            },
            Instr::Jalr {
                rd: 2,
                rs1: 3,
                offset: -2048,
            },
            Instr::Addi {
                rd: 4,
                rs1: 5,
                imm: -1,
            },
            Instr::Slti {
                rd: 6,
                rs1: 7,
                imm: 2047,
            },
            Instr::Sltiu {
                rd: 8,
                rs1: 9,
                imm: -2048,
            },
            Instr::Xori {
                rd: 10,
                rs1: 11,
                imm: 0x555,
            },
            Instr::Ori {
                rd: 12,
                rs1: 13,
                imm: -86,
            },
            Instr::Andi {
                rd: 14,
                rs1: 15,
                imm: 0x0F0,
            },
            Instr::Slli {
                rd: 16,
                rs1: 17,
                shamt: 31,
            },
            Instr::Srli {
                rd: 18,
                rs1: 19,
                shamt: 1,
            },
            Instr::Srai {
                rd: 20,
                rs1: 21,
                shamt: 15,
            },
            Instr::Add {
                rd: 22,
                rs1: 23,
                rs2: 24,
            },
            Instr::Sub {
                rd: 25,
                rs1: 26,
                rs2: 27,
            },
            Instr::Sll {
                rd: 28,
                rs1: 29,
                rs2: 30,
            },
            Instr::Slt {
                rd: 31,
                rs1: 0,
                rs2: 1,
            },
            Instr::Sltu {
                rd: 2,
                rs1: 3,
                rs2: 4,
            },
            Instr::Xor {
                rd: 5,
                rs1: 6,
                rs2: 7,
            },
            Instr::Srl {
                rd: 8,
                rs1: 9,
                rs2: 10,
            },
            Instr::Sra {
                rd: 11,
                rs1: 12,
                rs2: 13,
            },
            Instr::Or {
                rd: 14,
                rs1: 15,
                rs2: 16,
            },
            Instr::And {
                rd: 17,
                rs1: 18,
                rs2: 19,
            },
            Instr::Mul {
                rd: 20,
                rs1: 21,
                rs2: 22,
            },
            Instr::Mulh {
                rd: 23,
                rs1: 24,
                rs2: 25,
            },
            Instr::Mulhsu {
                rd: 26,
                rs1: 27,
                rs2: 28,
            },
            Instr::Mulhu {
                rd: 29,
                rs1: 30,
                rs2: 31,
            },
            Instr::Div {
                rd: 1,
                rs1: 2,
                rs2: 3,
            },
            Instr::Divu {
                rd: 4,
                rs1: 5,
                rs2: 6,
            },
            Instr::Rem {
                rd: 7,
                rs1: 8,
                rs2: 9,
            },
            Instr::Remu {
                rd: 10,
                rs1: 11,
                rs2: 12,
            },
            Instr::Sdotp8 {
                rd: 13,
                rs1: 14,
                rs2: 15,
            },
            Instr::Sdotp4 {
                rd: 16,
                rs1: 17,
                rs2: 18,
            },
            Instr::Ecall,
            Instr::Ebreak,
        ];
        for op in [
            BranchOp::Beq,
            BranchOp::Bne,
            BranchOp::Blt,
            BranchOp::Bge,
            BranchOp::Bltu,
            BranchOp::Bgeu,
        ] {
            all.push(Instr::Branch {
                op,
                rs1: 20,
                rs2: 21,
                offset: -4096,
            });
        }
        for op in [LoadOp::Lb, LoadOp::Lh, LoadOp::Lw, LoadOp::Lbu, LoadOp::Lhu] {
            all.push(Instr::Load {
                op,
                rd: 22,
                rs1: 23,
                offset: 2047,
            });
        }
        for op in [StoreOp::Sb, StoreOp::Sh, StoreOp::Sw] {
            all.push(Instr::Store {
                op,
                rs1: 24,
                rs2: 25,
                offset: -2048,
            });
        }
        all
    }

    /// The new `Decoded` IR rides on `decode`, so every `Instr` variant —
    /// including both SDOTP widths — must survive an encode→decode round
    /// trip bit-exactly or the block-cached engine would silently diverge
    /// from the reference interpreter.
    #[test]
    fn encode_decode_is_identity_for_every_variant() {
        let all = every_variant();
        // Defensive: adding an `Instr` variant must extend `every_variant`.
        let distinct: std::collections::HashSet<&'static str> =
            all.iter().map(|i| i.mnemonic()).collect();
        assert!(distinct.len() >= 8, "variant exemplar list looks truncated");
        for instr in all {
            assert_eq!(decode(instr.encode()), Ok(instr), "{instr:?}");
        }
    }

    /// The lowered micro-op of a decoded word matches the micro-op lowered
    /// straight from the in-memory instruction: the `Decoded` IR cannot
    /// diverge between the assembler path and the binary path.
    #[test]
    fn decoded_ir_is_stable_across_the_binary_round_trip() {
        for (k, instr) in every_variant().into_iter().enumerate() {
            let pc = 4 * k as u32;
            let direct = Decoded::new(instr, pc);
            let via_binary = Decoded::new(decode(instr.encode()).unwrap(), pc);
            assert_eq!(direct, via_binary, "{instr:?}");
        }
    }

    fn arb_reg() -> impl Strategy<Value = u8> {
        0u8..32
    }

    fn arb_instr() -> impl Strategy<Value = Instr> {
        prop_oneof![
            (arb_reg(), arb_reg(), -2048i32..2048).prop_map(|(rd, rs1, imm)| Instr::Addi {
                rd,
                rs1,
                imm
            }),
            (arb_reg(), arb_reg(), arb_reg()).prop_map(|(rd, rs1, rs2)| Instr::Add {
                rd,
                rs1,
                rs2
            }),
            (arb_reg(), arb_reg(), arb_reg()).prop_map(|(rd, rs1, rs2)| Instr::Mulh {
                rd,
                rs1,
                rs2
            }),
            (arb_reg(), arb_reg(), arb_reg()).prop_map(|(rd, rs1, rs2)| Instr::Sdotp8 {
                rd,
                rs1,
                rs2
            }),
            (arb_reg(), arb_reg(), arb_reg()).prop_map(|(rd, rs1, rs2)| Instr::Sdotp4 {
                rd,
                rs1,
                rs2
            }),
            (arb_reg(), arb_reg(), -2048i32..2048).prop_map(|(rd, rs1, offset)| Instr::Load {
                op: LoadOp::Lb,
                rd,
                rs1,
                offset
            }),
            (arb_reg(), arb_reg(), -2048i32..2048).prop_map(|(rs1, rs2, offset)| Instr::Store {
                op: StoreOp::Sw,
                rs1,
                rs2,
                offset
            }),
            (arb_reg(), arb_reg(), -2048i32..2047, 0u8..6).prop_map(|(rs1, rs2, raw, opsel)| {
                let op = [
                    BranchOp::Beq,
                    BranchOp::Bne,
                    BranchOp::Blt,
                    BranchOp::Bge,
                    BranchOp::Bltu,
                    BranchOp::Bgeu,
                ][opsel as usize];
                Instr::Branch {
                    op,
                    rs1,
                    rs2,
                    offset: raw * 2,
                }
            }),
            (arb_reg(), 0i32..0xF_FFFF).prop_map(|(rd, imm)| Instr::Lui { rd, imm }),
            (arb_reg(), arb_reg(), 0u8..32).prop_map(|(rd, rs1, shamt)| Instr::Srai {
                rd,
                rs1,
                shamt
            }),
        ]
    }

    proptest! {
        #[test]
        fn encode_decode_round_trip(instr in arb_instr()) {
            prop_assert_eq!(decode(instr.encode()), Ok(instr));
        }
    }
}
