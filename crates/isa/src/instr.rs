//! Instruction definitions, binary encoding and decoding.

/// Conditional branch comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BranchOp {
    /// Branch if equal.
    Beq,
    /// Branch if not equal.
    Bne,
    /// Branch if less than (signed).
    Blt,
    /// Branch if greater or equal (signed).
    Bge,
    /// Branch if less than (unsigned).
    Bltu,
    /// Branch if greater or equal (unsigned).
    Bgeu,
}

/// Memory load widths / sign behaviours.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LoadOp {
    /// Load signed byte.
    Lb,
    /// Load signed half-word.
    Lh,
    /// Load word.
    Lw,
    /// Load unsigned byte.
    Lbu,
    /// Load unsigned half-word.
    Lhu,
}

/// Memory store widths.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StoreOp {
    /// Store byte.
    Sb,
    /// Store half-word.
    Sh,
    /// Store word.
    Sw,
}

/// One RV32IM (+ MAUPITI SDOTP) instruction.
///
/// Immediates are stored sign-extended; `Lui`/`Auipc` store the 20-bit
/// upper-immediate value (the architectural effect is `imm << 12`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum Instr {
    Lui { rd: u8, imm: i32 },
    Auipc { rd: u8, imm: i32 },
    Jal { rd: u8, offset: i32 },
    Jalr { rd: u8, rs1: u8, offset: i32 },
    Branch { op: BranchOp, rs1: u8, rs2: u8, offset: i32 },
    Load { op: LoadOp, rd: u8, rs1: u8, offset: i32 },
    Store { op: StoreOp, rs1: u8, rs2: u8, offset: i32 },
    Addi { rd: u8, rs1: u8, imm: i32 },
    Slti { rd: u8, rs1: u8, imm: i32 },
    Sltiu { rd: u8, rs1: u8, imm: i32 },
    Xori { rd: u8, rs1: u8, imm: i32 },
    Ori { rd: u8, rs1: u8, imm: i32 },
    Andi { rd: u8, rs1: u8, imm: i32 },
    Slli { rd: u8, rs1: u8, shamt: u8 },
    Srli { rd: u8, rs1: u8, shamt: u8 },
    Srai { rd: u8, rs1: u8, shamt: u8 },
    Add { rd: u8, rs1: u8, rs2: u8 },
    Sub { rd: u8, rs1: u8, rs2: u8 },
    Sll { rd: u8, rs1: u8, rs2: u8 },
    Slt { rd: u8, rs1: u8, rs2: u8 },
    Sltu { rd: u8, rs1: u8, rs2: u8 },
    Xor { rd: u8, rs1: u8, rs2: u8 },
    Srl { rd: u8, rs1: u8, rs2: u8 },
    Sra { rd: u8, rs1: u8, rs2: u8 },
    Or { rd: u8, rs1: u8, rs2: u8 },
    And { rd: u8, rs1: u8, rs2: u8 },
    Mul { rd: u8, rs1: u8, rs2: u8 },
    Mulh { rd: u8, rs1: u8, rs2: u8 },
    Mulhsu { rd: u8, rs1: u8, rs2: u8 },
    Mulhu { rd: u8, rs1: u8, rs2: u8 },
    Div { rd: u8, rs1: u8, rs2: u8 },
    Divu { rd: u8, rs1: u8, rs2: u8 },
    Rem { rd: u8, rs1: u8, rs2: u8 },
    Remu { rd: u8, rs1: u8, rs2: u8 },
    /// MAUPITI SDOTP on four signed 8-bit lanes:
    /// `rd += Σ_i sext8(rs1[i]) * sext8(rs2[i])`.
    Sdotp8 { rd: u8, rs1: u8, rs2: u8 },
    /// MAUPITI SDOTP on eight signed 4-bit lanes:
    /// `rd += Σ_i sext4(rs1[i]) * sext4(rs2[i])`.
    Sdotp4 { rd: u8, rs1: u8, rs2: u8 },
    Ecall,
    Ebreak,
}

const OPC_LUI: u32 = 0x37;
const OPC_AUIPC: u32 = 0x17;
const OPC_JAL: u32 = 0x6F;
const OPC_JALR: u32 = 0x67;
const OPC_BRANCH: u32 = 0x63;
const OPC_LOAD: u32 = 0x03;
const OPC_STORE: u32 = 0x23;
const OPC_OP_IMM: u32 = 0x13;
const OPC_OP: u32 = 0x33;
const OPC_SYSTEM: u32 = 0x73;
/// `custom-0` opcode used by the MAUPITI SDOTP extension.
const OPC_CUSTOM0: u32 = 0x0B;

fn enc_r(funct7: u32, rs2: u8, rs1: u8, funct3: u32, rd: u8, opcode: u32) -> u32 {
    (funct7 << 25)
        | ((rs2 as u32) << 20)
        | ((rs1 as u32) << 15)
        | (funct3 << 12)
        | ((rd as u32) << 7)
        | opcode
}

fn enc_i(imm: i32, rs1: u8, funct3: u32, rd: u8, opcode: u32) -> u32 {
    ((imm as u32 & 0xFFF) << 20)
        | ((rs1 as u32) << 15)
        | (funct3 << 12)
        | ((rd as u32) << 7)
        | opcode
}

fn enc_s(imm: i32, rs2: u8, rs1: u8, funct3: u32, opcode: u32) -> u32 {
    let imm = imm as u32;
    ((imm >> 5 & 0x7F) << 25)
        | ((rs2 as u32) << 20)
        | ((rs1 as u32) << 15)
        | (funct3 << 12)
        | ((imm & 0x1F) << 7)
        | opcode
}

fn enc_b(imm: i32, rs2: u8, rs1: u8, funct3: u32, opcode: u32) -> u32 {
    let imm = imm as u32;
    ((imm >> 12 & 1) << 31)
        | ((imm >> 5 & 0x3F) << 25)
        | ((rs2 as u32) << 20)
        | ((rs1 as u32) << 15)
        | (funct3 << 12)
        | ((imm >> 1 & 0xF) << 8)
        | ((imm >> 11 & 1) << 7)
        | opcode
}

fn enc_u(imm20: i32, rd: u8, opcode: u32) -> u32 {
    ((imm20 as u32 & 0xF_FFFF) << 12) | ((rd as u32) << 7) | opcode
}

fn enc_j(imm: i32, rd: u8, opcode: u32) -> u32 {
    let imm = imm as u32;
    ((imm >> 20 & 1) << 31)
        | ((imm >> 1 & 0x3FF) << 21)
        | ((imm >> 11 & 1) << 20)
        | ((imm >> 12 & 0xFF) << 12)
        | ((rd as u32) << 7)
        | opcode
}

fn sext(value: u32, bits: u32) -> i32 {
    let shift = 32 - bits;
    ((value << shift) as i32) >> shift
}

impl Instr {
    /// Encodes the instruction as a 32-bit RISC-V word.
    pub fn encode(self) -> u32 {
        use Instr::*;
        match self {
            Lui { rd, imm } => enc_u(imm, rd, OPC_LUI),
            Auipc { rd, imm } => enc_u(imm, rd, OPC_AUIPC),
            Jal { rd, offset } => enc_j(offset, rd, OPC_JAL),
            Jalr { rd, rs1, offset } => enc_i(offset, rs1, 0, rd, OPC_JALR),
            Branch {
                op,
                rs1,
                rs2,
                offset,
            } => {
                let f3 = match op {
                    BranchOp::Beq => 0,
                    BranchOp::Bne => 1,
                    BranchOp::Blt => 4,
                    BranchOp::Bge => 5,
                    BranchOp::Bltu => 6,
                    BranchOp::Bgeu => 7,
                };
                enc_b(offset, rs2, rs1, f3, OPC_BRANCH)
            }
            Load {
                op,
                rd,
                rs1,
                offset,
            } => {
                let f3 = match op {
                    LoadOp::Lb => 0,
                    LoadOp::Lh => 1,
                    LoadOp::Lw => 2,
                    LoadOp::Lbu => 4,
                    LoadOp::Lhu => 5,
                };
                enc_i(offset, rs1, f3, rd, OPC_LOAD)
            }
            Store {
                op,
                rs1,
                rs2,
                offset,
            } => {
                let f3 = match op {
                    StoreOp::Sb => 0,
                    StoreOp::Sh => 1,
                    StoreOp::Sw => 2,
                };
                enc_s(offset, rs2, rs1, f3, OPC_STORE)
            }
            Addi { rd, rs1, imm } => enc_i(imm, rs1, 0, rd, OPC_OP_IMM),
            Slti { rd, rs1, imm } => enc_i(imm, rs1, 2, rd, OPC_OP_IMM),
            Sltiu { rd, rs1, imm } => enc_i(imm, rs1, 3, rd, OPC_OP_IMM),
            Xori { rd, rs1, imm } => enc_i(imm, rs1, 4, rd, OPC_OP_IMM),
            Ori { rd, rs1, imm } => enc_i(imm, rs1, 6, rd, OPC_OP_IMM),
            Andi { rd, rs1, imm } => enc_i(imm, rs1, 7, rd, OPC_OP_IMM),
            Slli { rd, rs1, shamt } => enc_r(0, shamt, rs1, 1, rd, OPC_OP_IMM),
            Srli { rd, rs1, shamt } => enc_r(0, shamt, rs1, 5, rd, OPC_OP_IMM),
            Srai { rd, rs1, shamt } => enc_r(0x20, shamt, rs1, 5, rd, OPC_OP_IMM),
            Add { rd, rs1, rs2 } => enc_r(0, rs2, rs1, 0, rd, OPC_OP),
            Sub { rd, rs1, rs2 } => enc_r(0x20, rs2, rs1, 0, rd, OPC_OP),
            Sll { rd, rs1, rs2 } => enc_r(0, rs2, rs1, 1, rd, OPC_OP),
            Slt { rd, rs1, rs2 } => enc_r(0, rs2, rs1, 2, rd, OPC_OP),
            Sltu { rd, rs1, rs2 } => enc_r(0, rs2, rs1, 3, rd, OPC_OP),
            Xor { rd, rs1, rs2 } => enc_r(0, rs2, rs1, 4, rd, OPC_OP),
            Srl { rd, rs1, rs2 } => enc_r(0, rs2, rs1, 5, rd, OPC_OP),
            Sra { rd, rs1, rs2 } => enc_r(0x20, rs2, rs1, 5, rd, OPC_OP),
            Or { rd, rs1, rs2 } => enc_r(0, rs2, rs1, 6, rd, OPC_OP),
            And { rd, rs1, rs2 } => enc_r(0, rs2, rs1, 7, rd, OPC_OP),
            Mul { rd, rs1, rs2 } => enc_r(1, rs2, rs1, 0, rd, OPC_OP),
            Mulh { rd, rs1, rs2 } => enc_r(1, rs2, rs1, 1, rd, OPC_OP),
            Mulhsu { rd, rs1, rs2 } => enc_r(1, rs2, rs1, 2, rd, OPC_OP),
            Mulhu { rd, rs1, rs2 } => enc_r(1, rs2, rs1, 3, rd, OPC_OP),
            Div { rd, rs1, rs2 } => enc_r(1, rs2, rs1, 4, rd, OPC_OP),
            Divu { rd, rs1, rs2 } => enc_r(1, rs2, rs1, 5, rd, OPC_OP),
            Rem { rd, rs1, rs2 } => enc_r(1, rs2, rs1, 6, rd, OPC_OP),
            Remu { rd, rs1, rs2 } => enc_r(1, rs2, rs1, 7, rd, OPC_OP),
            Sdotp8 { rd, rs1, rs2 } => enc_r(0, rs2, rs1, 0, rd, OPC_CUSTOM0),
            Sdotp4 { rd, rs1, rs2 } => enc_r(0, rs2, rs1, 1, rd, OPC_CUSTOM0),
            Ecall => 0x0000_0073,
            Ebreak => 0x0010_0073,
        }
    }

    /// Returns `true` for the SDOTP extension instructions.
    pub fn is_sdotp(self) -> bool {
        matches!(self, Instr::Sdotp8 { .. } | Instr::Sdotp4 { .. })
    }

    /// Short mnemonic for tracing.
    pub fn mnemonic(self) -> &'static str {
        use Instr::*;
        match self {
            Lui { .. } => "lui",
            Auipc { .. } => "auipc",
            Jal { .. } => "jal",
            Jalr { .. } => "jalr",
            Branch { .. } => "branch",
            Load { .. } => "load",
            Store { .. } => "store",
            Addi { .. } | Slti { .. } | Sltiu { .. } | Xori { .. } | Ori { .. } | Andi { .. }
            | Slli { .. } | Srli { .. } | Srai { .. } => "alu-imm",
            Add { .. } | Sub { .. } | Sll { .. } | Slt { .. } | Sltu { .. } | Xor { .. }
            | Srl { .. } | Sra { .. } | Or { .. } | And { .. } => "alu",
            Mul { .. } | Mulh { .. } | Mulhsu { .. } | Mulhu { .. } => "mul",
            Div { .. } | Divu { .. } | Rem { .. } | Remu { .. } => "div",
            Sdotp8 { .. } => "sdotp8",
            Sdotp4 { .. } => "sdotp4",
            Ecall => "ecall",
            Ebreak => "ebreak",
        }
    }
}

/// Decodes a 32-bit RISC-V word into an [`Instr`].
///
/// # Errors
///
/// Returns the raw word if it is not a supported RV32IM / SDOTP encoding.
pub fn decode(word: u32) -> Result<Instr, u32> {
    let opcode = word & 0x7F;
    let rd = ((word >> 7) & 0x1F) as u8;
    let funct3 = (word >> 12) & 7;
    let rs1 = ((word >> 15) & 0x1F) as u8;
    let rs2 = ((word >> 20) & 0x1F) as u8;
    let funct7 = word >> 25;
    let imm_i = sext(word >> 20, 12);
    let imm_s = sext(((word >> 25) << 5) | ((word >> 7) & 0x1F), 12);
    let imm_b = sext(
        ((word >> 31) << 12) | (((word >> 7) & 1) << 11) | (((word >> 25) & 0x3F) << 5)
            | (((word >> 8) & 0xF) << 1),
        13,
    );
    let imm_u = ((word >> 12) & 0xF_FFFF) as i32;
    let imm_j = sext(
        ((word >> 31) << 20) | (((word >> 12) & 0xFF) << 12) | (((word >> 20) & 1) << 11)
            | (((word >> 21) & 0x3FF) << 1),
        21,
    );
    let instr = match opcode {
        OPC_LUI => Instr::Lui { rd, imm: imm_u },
        OPC_AUIPC => Instr::Auipc { rd, imm: imm_u },
        OPC_JAL => Instr::Jal { rd, offset: imm_j },
        OPC_JALR if funct3 == 0 => Instr::Jalr {
            rd,
            rs1,
            offset: imm_i,
        },
        OPC_BRANCH => {
            let op = match funct3 {
                0 => BranchOp::Beq,
                1 => BranchOp::Bne,
                4 => BranchOp::Blt,
                5 => BranchOp::Bge,
                6 => BranchOp::Bltu,
                7 => BranchOp::Bgeu,
                _ => return Err(word),
            };
            Instr::Branch {
                op,
                rs1,
                rs2,
                offset: imm_b,
            }
        }
        OPC_LOAD => {
            let op = match funct3 {
                0 => LoadOp::Lb,
                1 => LoadOp::Lh,
                2 => LoadOp::Lw,
                4 => LoadOp::Lbu,
                5 => LoadOp::Lhu,
                _ => return Err(word),
            };
            Instr::Load {
                op,
                rd,
                rs1,
                offset: imm_i,
            }
        }
        OPC_STORE => {
            let op = match funct3 {
                0 => StoreOp::Sb,
                1 => StoreOp::Sh,
                2 => StoreOp::Sw,
                _ => return Err(word),
            };
            Instr::Store {
                op,
                rs1,
                rs2,
                offset: imm_s,
            }
        }
        OPC_OP_IMM => match funct3 {
            0 => Instr::Addi { rd, rs1, imm: imm_i },
            2 => Instr::Slti { rd, rs1, imm: imm_i },
            3 => Instr::Sltiu { rd, rs1, imm: imm_i },
            4 => Instr::Xori { rd, rs1, imm: imm_i },
            6 => Instr::Ori { rd, rs1, imm: imm_i },
            7 => Instr::Andi { rd, rs1, imm: imm_i },
            1 => Instr::Slli { rd, rs1, shamt: rs2 },
            5 if funct7 == 0 => Instr::Srli { rd, rs1, shamt: rs2 },
            5 if funct7 == 0x20 => Instr::Srai { rd, rs1, shamt: rs2 },
            _ => return Err(word),
        },
        OPC_OP => match (funct7, funct3) {
            (0, 0) => Instr::Add { rd, rs1, rs2 },
            (0x20, 0) => Instr::Sub { rd, rs1, rs2 },
            (0, 1) => Instr::Sll { rd, rs1, rs2 },
            (0, 2) => Instr::Slt { rd, rs1, rs2 },
            (0, 3) => Instr::Sltu { rd, rs1, rs2 },
            (0, 4) => Instr::Xor { rd, rs1, rs2 },
            (0, 5) => Instr::Srl { rd, rs1, rs2 },
            (0x20, 5) => Instr::Sra { rd, rs1, rs2 },
            (0, 6) => Instr::Or { rd, rs1, rs2 },
            (0, 7) => Instr::And { rd, rs1, rs2 },
            (1, 0) => Instr::Mul { rd, rs1, rs2 },
            (1, 1) => Instr::Mulh { rd, rs1, rs2 },
            (1, 2) => Instr::Mulhsu { rd, rs1, rs2 },
            (1, 3) => Instr::Mulhu { rd, rs1, rs2 },
            (1, 4) => Instr::Div { rd, rs1, rs2 },
            (1, 5) => Instr::Divu { rd, rs1, rs2 },
            (1, 6) => Instr::Rem { rd, rs1, rs2 },
            (1, 7) => Instr::Remu { rd, rs1, rs2 },
            _ => return Err(word),
        },
        OPC_CUSTOM0 => match (funct7, funct3) {
            (0, 0) => Instr::Sdotp8 { rd, rs1, rs2 },
            (0, 1) => Instr::Sdotp4 { rd, rs1, rs2 },
            _ => return Err(word),
        },
        OPC_SYSTEM => match word {
            0x0000_0073 => Instr::Ecall,
            0x0010_0073 => Instr::Ebreak,
            _ => return Err(word),
        },
        _ => return Err(word),
    };
    Ok(instr)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn known_encodings_match_the_spec() {
        // addi a0, zero, 5  ->  0x00500513
        assert_eq!(
            Instr::Addi {
                rd: 10,
                rs1: 0,
                imm: 5
            }
            .encode(),
            0x0050_0513
        );
        // add a0, a1, a2 -> 0x00C58533
        assert_eq!(
            Instr::Add {
                rd: 10,
                rs1: 11,
                rs2: 12
            }
            .encode(),
            0x00C5_8533
        );
        // lw a0, 8(sp) -> 0x00812503
        assert_eq!(
            Instr::Load {
                op: LoadOp::Lw,
                rd: 10,
                rs1: 2,
                offset: 8
            }
            .encode(),
            0x0081_2503
        );
        // sw a0, 8(sp) -> 0x00A12423
        assert_eq!(
            Instr::Store {
                op: StoreOp::Sw,
                rs1: 2,
                rs2: 10,
                offset: 8
            }
            .encode(),
            0x00A1_2423
        );
        assert_eq!(Instr::Ecall.encode(), 0x0000_0073);
        assert_eq!(Instr::Ebreak.encode(), 0x0010_0073);
    }

    #[test]
    fn negative_immediates_round_trip() {
        for imm in [-1, -5, -2048, 2047] {
            let i = Instr::Addi {
                rd: 3,
                rs1: 4,
                imm,
            };
            assert_eq!(decode(i.encode()), Ok(i));
        }
        for offset in [-4096, -2, 0, 2, 4094] {
            let b = Instr::Branch {
                op: BranchOp::Bne,
                rs1: 5,
                rs2: 6,
                offset,
            };
            assert_eq!(decode(b.encode()), Ok(b));
        }
        for offset in [-1048576, -4, 0, 4, 1048574] {
            let j = Instr::Jal { rd: 1, offset };
            assert_eq!(decode(j.encode()), Ok(j));
        }
    }

    #[test]
    fn sdotp_uses_custom0_opcode() {
        let w = Instr::Sdotp8 {
            rd: 10,
            rs1: 11,
            rs2: 12,
        }
        .encode();
        assert_eq!(w & 0x7F, 0x0B);
        assert_eq!(
            decode(w),
            Ok(Instr::Sdotp8 {
                rd: 10,
                rs1: 11,
                rs2: 12
            })
        );
        let w4 = Instr::Sdotp4 {
            rd: 5,
            rs1: 6,
            rs2: 7,
        }
        .encode();
        assert_eq!(decode(w4).unwrap().mnemonic(), "sdotp4");
    }

    #[test]
    fn unknown_words_are_rejected() {
        assert!(decode(0xFFFF_FFFF).is_err());
        assert!(decode(0x0000_0000).is_err());
    }

    fn arb_reg() -> impl Strategy<Value = u8> {
        0u8..32
    }

    fn arb_instr() -> impl Strategy<Value = Instr> {
        prop_oneof![
            (arb_reg(), arb_reg(), -2048i32..2048).prop_map(|(rd, rs1, imm)| Instr::Addi {
                rd,
                rs1,
                imm
            }),
            (arb_reg(), arb_reg(), arb_reg()).prop_map(|(rd, rs1, rs2)| Instr::Add {
                rd,
                rs1,
                rs2
            }),
            (arb_reg(), arb_reg(), arb_reg()).prop_map(|(rd, rs1, rs2)| Instr::Mulh {
                rd,
                rs1,
                rs2
            }),
            (arb_reg(), arb_reg(), arb_reg()).prop_map(|(rd, rs1, rs2)| Instr::Sdotp8 {
                rd,
                rs1,
                rs2
            }),
            (arb_reg(), arb_reg(), arb_reg()).prop_map(|(rd, rs1, rs2)| Instr::Sdotp4 {
                rd,
                rs1,
                rs2
            }),
            (arb_reg(), arb_reg(), -2048i32..2048).prop_map(|(rd, rs1, offset)| Instr::Load {
                op: LoadOp::Lb,
                rd,
                rs1,
                offset
            }),
            (arb_reg(), arb_reg(), -2048i32..2048).prop_map(|(rs1, rs2, offset)| Instr::Store {
                op: StoreOp::Sw,
                rs1,
                rs2,
                offset
            }),
            (arb_reg(), arb_reg(), -2048i32..2047, 0u8..6).prop_map(
                |(rs1, rs2, raw, opsel)| {
                    let op = [
                        BranchOp::Beq,
                        BranchOp::Bne,
                        BranchOp::Blt,
                        BranchOp::Bge,
                        BranchOp::Bltu,
                        BranchOp::Bgeu
                    ][opsel as usize];
                    Instr::Branch {
                        op,
                        rs1,
                        rs2,
                        offset: raw * 2,
                    }
                }
            ),
            (arb_reg(), 0i32..0xF_FFFF).prop_map(|(rd, imm)| Instr::Lui { rd, imm }),
            (arb_reg(), arb_reg(), 0u8..32).prop_map(|(rd, rs1, shamt)| Instr::Srai {
                rd,
                rs1,
                shamt
            }),
        ]
    }

    proptest! {
        #[test]
        fn encode_decode_round_trip(instr in arb_instr()) {
            prop_assert_eq!(decode(instr.encode()), Ok(instr));
        }
    }
}
