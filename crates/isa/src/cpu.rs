//! The CPU model: architectural state, the reference interpreter and its
//! flat IBEX-style cycle model.
//!
//! The faster block-cached engine lives in [`crate::engine`]; its
//! micro-op dispatch loop mirrors the semantics of [`Cpu::exec_instr`]
//! exactly, and the differential tests in `crate::engine` plus the
//! bit-exact deployment tests in `pcount-kernels` hold the two to the
//! same architectural results.

use crate::engine::{self, BlockCache, ExecMode};
use crate::fusion::FusedKind;
use crate::instr::{decode, BranchOp, Instr, LoadOp, StoreOp};
use crate::mem_model::{MemModelState, MemStats, MemoryModel};
use crate::memory::{Memory, IMEM_BASE};
use crate::pipeline::{
    Pipeline, PipelineStats, CYCLES_BRANCH_TAKEN, CYCLES_DIV, CYCLES_JUMP, CYCLES_MEM,
};
use std::collections::BTreeMap;
use std::fmt;

/// Simulation error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The PC left the instruction memory or was misaligned.
    BadFetch {
        /// Offending program counter.
        pc: u32,
    },
    /// The fetched word is not a supported instruction.
    IllegalInstruction {
        /// Offending program counter.
        pc: u32,
        /// Raw instruction word.
        word: u32,
    },
    /// A load or store touched an invalid data address.
    BadMemoryAccess {
        /// Offending program counter.
        pc: u32,
        /// Offending data address.
        addr: u32,
    },
    /// The program did not halt within the instruction budget.
    Timeout {
        /// The instruction budget that was exhausted.
        max_instructions: u64,
    },
    /// The program image does not fit in instruction memory.
    ProgramTooLarge {
        /// Program size in bytes.
        program_bytes: usize,
        /// Instruction memory size in bytes.
        imem_bytes: usize,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::BadFetch { pc } => write!(f, "instruction fetch failed at pc {pc:#x}"),
            SimError::IllegalInstruction { pc, word } => {
                write!(f, "illegal instruction {word:#010x} at pc {pc:#x}")
            }
            SimError::BadMemoryAccess { pc, addr } => {
                write!(f, "invalid data access to {addr:#x} at pc {pc:#x}")
            }
            SimError::Timeout { max_instructions } => {
                write!(f, "program did not halt within {max_instructions} instructions")
            }
            SimError::ProgramTooLarge {
                program_bytes,
                imem_bytes,
            } => write!(
                f,
                "program of {program_bytes} bytes does not fit in {imem_bytes} bytes of instruction memory"
            ),
        }
    }
}

impl std::error::Error for SimError {}

/// Per-mnemonic instruction counts collected during execution.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Trace {
    counts: BTreeMap<&'static str, u64>,
}

impl Trace {
    /// Number of executed instructions with the given mnemonic class.
    pub fn count(&self, mnemonic: &str) -> u64 {
        self.counts.get(mnemonic).copied().unwrap_or(0)
    }

    /// All (mnemonic, count) pairs in alphabetical order.
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.counts.iter().map(|(&k, &v)| (k, v))
    }

    /// Total SDOTP instructions (both widths).
    pub fn sdotp_count(&self) -> u64 {
        self.count("sdotp8") + self.count("sdotp4")
    }

    pub(crate) fn record(&mut self, mnemonic: &'static str) {
        *self.counts.entry(mnemonic).or_insert(0) += 1;
    }

    pub(crate) fn record_many(&mut self, mnemonic: &'static str, count: u64) {
        *self.counts.entry(mnemonic).or_insert(0) += count;
    }
}

/// Summary of a completed run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunSummary {
    /// Retired instructions.
    pub instructions: u64,
    /// Consumed clock cycles under the IBEX-style timing model.
    pub cycles: u64,
}

/// A single-hart RV32IM + SDOTP processor model.
///
/// The cycle model follows the public IBEX documentation: single-issue,
/// in-order, most instructions retire in 1 cycle, loads/stores take 2,
/// taken branches 3, jumps 2 and divisions 37. The SDOTP unit is
/// single-cycle by construction (the paper replicates multipliers instead
/// of sharing them).
#[derive(Debug, Clone)]
pub struct Cpu {
    pub(crate) regs: [u32; 32],
    /// Program counter.
    pub pc: u32,
    /// Instruction and data memories.
    pub mem: Memory,
    /// Total cycles consumed so far.
    pub cycles: u64,
    /// Total instructions retired so far.
    pub instret: u64,
    /// Per-mnemonic execution counts.
    pub trace: Trace,
    pub(crate) halted: bool,
    mode: ExecMode,
    pub(crate) cache: BlockCache,
    pub(crate) pipeline: Pipeline,
    /// Per-slot, per-exit execution counters (see `crate::block`), folded
    /// into the trace when a block-cached run returns.
    pub(crate) block_exit_counts: Vec<Vec<u64>>,
    /// Whether a slot is on `touched_slots` (so folding is O(touched)).
    pub(crate) touched_flags: Vec<bool>,
    /// Slots with live execution counters.
    pub(crate) touched_slots: Vec<usize>,
    /// Persistent per-block trace-cache profile: completed executions per
    /// slot, accumulated across block-cached runs.
    pub(crate) block_exec_counts: Vec<u64>,
    /// Instructions retired through each slot's exits (see
    /// [`Cpu::hottest_blocks`]).
    pub(crate) block_instr_counts: Vec<u64>,
    /// Whether side exits chain to their successor trace (see
    /// [`Cpu::set_superblock_chaining`]).
    pub(crate) chain_enabled: bool,
    /// The memory-hierarchy model fetches and data accesses are charged
    /// through (see [`Cpu::set_memory_model`]).
    mem_model: MemoryModel,
    /// Persistent run-time state of the memory model (refill window).
    pub(crate) mem_state: MemModelState,
    /// Per-cause memory stall counters (see [`Cpu::mem_stats`]).
    pub(crate) mem_stats: MemStats,
    /// Memory-model stall cycles attributed to each block slot,
    /// accumulated across block-cached runs (see [`Cpu::hottest_blocks`]).
    pub(crate) block_mem_stall_counts: Vec<u64>,
    /// Whether the block-cached engine executes recognised loop idioms as
    /// fused host loops (see [`Cpu::set_macro_fusion`]).
    pub(crate) fusion_enabled: bool,
    /// Fused-loop entries per block slot (one per trace entry that ran the
    /// fused executor), accumulated across block-cached runs.
    pub(crate) block_fused_entries: Vec<u64>,
    /// Loop iterations executed through the fused path per block slot.
    pub(crate) block_fused_iters: Vec<u64>,
    /// Pipeline cycles (base + flush + stalls, memory-model stalls
    /// excluded) charged by the fused path per block slot.
    pub(crate) block_fused_cycles: Vec<u64>,
    /// The fused pattern recognised at each block slot, if any.
    pub(crate) block_fused_kind: Vec<Option<FusedKind>>,
    /// Bulk-executed fused iterations not yet folded into the
    /// per-mnemonic trace (drained by `engine::fold_exec_counts` at the
    /// end of every run, so the hot loop never touches the trace map).
    pub(crate) block_fused_bulk: Vec<FusedBulk>,
}

/// Per-slot bulk iteration counters a fused loop accumulates during a
/// run, folded into the per-mnemonic trace by `engine::fold_exec_counts`
/// once the run ends. Plain counted loops use `plain` (taken back-edge
/// iterations); convolution nests count each architectural path
/// separately so the fold can reconstruct the exact per-mnemonic
/// multiset.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct FusedBulk {
    /// Taken back-edge iterations of a plain fused loop.
    pub plain: u64,
    /// Nest iterations skipped through the left-padding guard.
    pub nest_skip_lo: u64,
    /// Nest iterations skipped through the right-padding guard.
    pub nest_skip_hi: u64,
    /// Full nest iterations.
    pub nest_full: u64,
    /// Extra channel-loop passes inside full nest iterations.
    pub nest_extra: u64,
}

/// One entry of the [`Cpu::hottest_blocks`] trace-cache profile.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HotBlock {
    /// Entry address of the superblock trace.
    pub entry_pc: u32,
    /// Completed executions of the trace (any exit).
    pub executions: u64,
    /// Instructions retired through the trace's exits.
    pub instructions: u64,
    /// Memory-hierarchy stall cycles charged while executing the trace
    /// (zero under [`MemoryModel::Flat`]) — the "why is this block
    /// expensive" column of the hot-trace report.
    pub mem_stall_cycles: u64,
    /// Name of the fused loop idiom recognised at this trace
    /// (`"mac_sdotp8"`, `"mac_sdotp4"`, `"memset"`, `"memcpy"`,
    /// `"strided_copy"`), or `None` when the trace was never executed
    /// through the fused path.
    pub fused_kind: Option<&'static str>,
    /// Trace entries that ran the fused loop executor.
    pub fused_entries: u64,
    /// Loop iterations executed through the fused path.
    pub fused_iterations: u64,
    /// Pipeline cycles (base + flush + stall) the fused path charged for
    /// those iterations; memory-model stalls stay in
    /// [`HotBlock::mem_stall_cycles`].
    pub fused_cycles: u64,
}

/// Serialises a [`Cpu::hottest_blocks`] profile as a JSON array (one
/// object per block, hex `entry_pc`), for machine-readable export from
/// the examples and the bench emitters.
pub fn hot_blocks_json(blocks: &[HotBlock]) -> String {
    let mut out = String::from("[");
    for (i, b) in blocks.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let fused_kind = match b.fused_kind {
            Some(kind) => format!("\"{kind}\""),
            None => String::from("null"),
        };
        out.push_str(&format!(
            "{{\"entry_pc\":\"{:#010x}\",\"executions\":{},\"instructions\":{},\"mem_stall_cycles\":{},\"fused_kind\":{},\"fused_entries\":{},\"fused_iterations\":{},\"fused_cycles\":{}}}",
            b.entry_pc,
            b.executions,
            b.instructions,
            b.mem_stall_cycles,
            fused_kind,
            b.fused_entries,
            b.fused_iterations,
            b.fused_cycles
        ));
    }
    out.push(']');
    out
}

/// Result of executing one instruction in the reference interpreter.
#[derive(Debug, Clone, Copy)]
pub(crate) struct ExecOutcome {
    /// Address of the next instruction.
    pub next_pc: u32,
    /// Flat stage-occupancy cycles (IBEX reference numbers, shared per-op
    /// cost table in [`crate::pipeline`]).
    pub cycles: u64,
    /// Whether the instruction redirected the PC (jump or taken branch) —
    /// a prefetch-buffer miss in the memory-hierarchy model.
    pub redirect: bool,
}

impl Cpu {
    /// Creates a CPU with the given memory sizes.
    pub fn new(imem_size: usize, dmem_size: usize) -> Self {
        Self {
            regs: [0; 32],
            pc: IMEM_BASE,
            mem: Memory::new(imem_size, dmem_size),
            cycles: 0,
            instret: 0,
            trace: Trace::default(),
            halted: false,
            mode: ExecMode::Simple,
            cache: BlockCache::new(imem_size),
            pipeline: Pipeline::default(),
            block_exit_counts: Vec::new(),
            touched_flags: Vec::new(),
            touched_slots: Vec::new(),
            block_exec_counts: Vec::new(),
            block_instr_counts: Vec::new(),
            chain_enabled: true,
            mem_model: MemoryModel::Flat,
            mem_state: MemModelState::default(),
            mem_stats: MemStats::default(),
            block_mem_stall_counts: Vec::new(),
            fusion_enabled: true,
            block_fused_entries: Vec::new(),
            block_fused_iters: Vec::new(),
            block_fused_cycles: Vec::new(),
            block_fused_kind: Vec::new(),
            block_fused_bulk: Vec::new(),
        }
    }

    /// Creates a CPU with MAUPITI's 16 KB + 16 KB memories.
    pub fn new_default() -> Self {
        Self::new(16 * 1024, 16 * 1024)
    }

    /// Reads a register (x0 always reads 0).
    pub fn reg(&self, index: u8) -> u32 {
        self.regs[index as usize]
    }

    /// Writes a register (writes to x0 are ignored).
    pub fn set_reg(&mut self, index: u8, value: u32) {
        if index != 0 {
            self.regs[index as usize] = value;
        }
    }

    /// Whether the core has executed an `ecall`/`ebreak`.
    pub fn halted(&self) -> bool {
        self.halted
    }

    /// The execution engine used by [`Cpu::run`].
    pub fn exec_mode(&self) -> ExecMode {
        self.mode
    }

    /// Selects the execution engine used by [`Cpu::run`].
    ///
    /// Architectural results are identical in both modes; the block-cached
    /// engine's pipelined timing model additionally charges load-use
    /// interlock stalls, so its cycle counts can be slightly higher.
    pub fn set_exec_mode(&mut self, mode: ExecMode) {
        if self.mode != mode {
            self.mode = mode;
            self.pipeline.reset();
        }
    }

    /// Builder-style variant of [`Cpu::set_exec_mode`].
    pub fn with_exec_mode(mut self, mode: ExecMode) -> Self {
        self.set_exec_mode(mode);
        self
    }

    /// Stall/flush counters of the pipelined timing model (all zero while
    /// running in [`ExecMode::Simple`]).
    pub fn pipeline_stats(&self) -> PipelineStats {
        self.pipeline.stats()
    }

    /// The memory-hierarchy model fetches and data accesses are charged
    /// through ([`MemoryModel::Flat`] by default).
    pub fn memory_model(&self) -> MemoryModel {
        self.mem_model
    }

    /// Selects the memory-hierarchy model. Architectural results are
    /// identical under every model — only cycle counts and the
    /// [`Cpu::mem_stats`] breakdown change. Switching models clears the
    /// model's run-time state and stall counters.
    pub fn set_memory_model(&mut self, model: MemoryModel) {
        if self.mem_model != model {
            self.mem_model = model;
            self.mem_state.reset();
            self.mem_stats = MemStats::default();
        }
    }

    /// Builder-style variant of [`Cpu::set_memory_model`].
    pub fn with_memory_model(mut self, model: MemoryModel) -> Self {
        self.set_memory_model(model);
        self
    }

    /// Per-cause stall counters of the memory-hierarchy model, identical
    /// for both execution engines (all zero under [`MemoryModel::Flat`]).
    pub fn mem_stats(&self) -> MemStats {
        self.mem_stats
    }

    /// Number of decoded basic blocks currently cached.
    pub fn cached_blocks(&self) -> usize {
        self.cache.len()
    }

    /// Whether block-cached side exits chain to their successor trace
    /// (enabled by default).
    pub fn superblock_chaining(&self) -> bool {
        self.chain_enabled
    }

    /// Enables or disables superblock chaining. Architectural results are
    /// identical either way — chaining only removes dispatch-table probes
    /// on branchy code; the throughput bench flips this to measure the
    /// chaining delta.
    pub fn set_superblock_chaining(&mut self, enabled: bool) {
        self.chain_enabled = enabled;
    }

    /// Whether the block-cached engine executes recognised loop idioms
    /// (SDOTP MAC reductions, memset, memcpy, strided copies) as fused
    /// host loops (enabled by default).
    pub fn macro_fusion(&self) -> bool {
        self.fusion_enabled
    }

    /// Enables or disables macro-op fusion. Architectural results —
    /// registers, memory, instret, cycles, stall breakdowns, traces and
    /// faults — are bit-identical either way; fusion only replaces
    /// per-instruction dispatch of recognised loops with one bulk host
    /// loop per trace entry. The throughput bench flips this to measure
    /// the fusion speedup.
    pub fn set_macro_fusion(&mut self, enabled: bool) {
        self.fusion_enabled = enabled;
    }

    /// Builder-style variant of [`Cpu::set_macro_fusion`].
    pub fn with_macro_fusion(mut self, enabled: bool) -> Self {
        self.set_macro_fusion(enabled);
        self
    }

    /// The `n` hottest superblock traces executed by this CPU under
    /// [`ExecMode::BlockCached`], ordered by retired instructions
    /// (descending, then by entry address). Counts accumulate across runs
    /// and reset on [`Cpu::load_program`]; runs cut short mid-trace by a
    /// budget or fault only count their completed trace executions.
    pub fn hottest_blocks(&self, n: usize) -> Vec<HotBlock> {
        let mut hot: Vec<HotBlock> = (0..self.block_exec_counts.len())
            .filter(|&slot| self.block_exec_counts[slot] > 0)
            .map(|slot| HotBlock {
                entry_pc: IMEM_BASE + 4 * slot as u32,
                executions: self.block_exec_counts[slot],
                instructions: self.block_instr_counts[slot],
                mem_stall_cycles: self.block_mem_stall_counts[slot],
                fused_kind: self.block_fused_kind[slot].map(FusedKind::name),
                fused_entries: self.block_fused_entries[slot],
                fused_iterations: self.block_fused_iters[slot],
                fused_cycles: self.block_fused_cycles[slot],
            })
            .collect();
        hot.sort_by(|a, b| {
            b.instructions
                .cmp(&a.instructions)
                .then(a.entry_pc.cmp(&b.entry_pc))
        });
        hot.truncate(n);
        hot
    }

    /// Aggregated macro-op fusion hit counts, one `(pattern name,
    /// fused trace entries, fused loop iterations)` triple per fused
    /// loop idiom observed since the last [`Cpu::load_program`], sorted
    /// by pattern name. Empty when fusion never fired (fusion disabled,
    /// `Simple` engine, or no recognisable loops).
    pub fn fusion_profile(&self) -> Vec<(&'static str, u64, u64)> {
        let mut agg: Vec<(&'static str, u64, u64)> = Vec::new();
        for slot in 0..self.block_fused_kind.len() {
            let Some(kind) = self.block_fused_kind[slot] else {
                continue;
            };
            let name = kind.name();
            let entries = self.block_fused_entries[slot];
            let iters = self.block_fused_iters[slot];
            match agg.iter_mut().find(|(n, _, _)| *n == name) {
                Some(row) => {
                    row.1 += entries;
                    row.2 += iters;
                }
                None => agg.push((name, entries, iters)),
            }
        }
        agg.sort_by_key(|&(name, _, _)| name);
        agg
    }

    /// Encodes `program` and loads it at the start of instruction memory,
    /// resetting the PC.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::ProgramTooLarge`] if the image does not fit.
    pub fn load_program(&mut self, program: &[Instr]) -> Result<(), SimError> {
        let mut bytes = Vec::with_capacity(program.len() * 4);
        for instr in program {
            bytes.extend_from_slice(&instr.encode().to_le_bytes());
        }
        self.load_program_bytes(&bytes)
    }

    /// Loads an already-encoded program image.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::ProgramTooLarge`] if the image does not fit.
    pub fn load_program_bytes(&mut self, bytes: &[u8]) -> Result<(), SimError> {
        self.mem
            .load_imem(bytes)
            .map_err(|imem_bytes| SimError::ProgramTooLarge {
                program_bytes: bytes.len(),
                imem_bytes,
            })?;
        self.pc = IMEM_BASE;
        self.halted = false;
        // The old image's decoded blocks are stale; clones that still run
        // the old image keep their (shared) cache untouched.
        self.cache.invalidate(self.mem.imem_size());
        // Counter tables are re-allocated lazily on the next block-cached
        // run (see `engine::run_inner`).
        self.block_exit_counts = Vec::new();
        self.touched_flags = Vec::new();
        self.touched_slots.clear();
        self.block_exec_counts = Vec::new();
        self.block_instr_counts = Vec::new();
        self.block_mem_stall_counts = Vec::new();
        self.block_fused_entries = Vec::new();
        self.block_fused_iters = Vec::new();
        self.block_fused_cycles = Vec::new();
        self.block_fused_kind = Vec::new();
        self.block_fused_bulk = Vec::new();
        self.pipeline.reset();
        self.mem_state.reset();
        self.mem_stats = MemStats::default();
        Ok(())
    }

    /// Restores this CPU's architectural and accounting state from a
    /// pristine `base`: registers, PC, halt flag, cycle/instret counters,
    /// the per-mnemonic trace, both memory images, the pipeline model and
    /// the memory-hierarchy model state all become `base`'s, in place —
    /// the large buffers are overwritten rather than reallocated, so this
    /// is cheaper than `*self = base.clone()` on a hot streaming path.
    ///
    /// The shared block cache is re-pointed at `base`'s (an `Arc` copy),
    /// so warmed decoded traces survive the restore. The persistent
    /// trace-cache *profile* ([`Cpu::hottest_blocks`]) keeps accumulating
    /// across restores — it is observational and never feeds back into
    /// architectural results.
    ///
    /// This is the supported way to re-warm a pooled CPU after a fault
    /// (timeout mid-inference, bad memory access) left it with a torn
    /// memory image and a mid-program PC: a subsequent run is
    /// bit-identical to one on a fresh `base.clone()`.
    ///
    /// # Panics
    ///
    /// Panics if the two CPUs have different memory geometries.
    pub fn restore_from(&mut self, base: &Cpu) {
        self.regs = base.regs;
        self.pc = base.pc;
        self.halted = base.halted;
        self.cycles = base.cycles;
        self.instret = base.instret;
        self.trace = base.trace.clone();
        self.mode = base.mode;
        self.chain_enabled = base.chain_enabled;
        self.fusion_enabled = base.fusion_enabled;
        self.mem_model = base.mem_model;
        self.mem_state = base.mem_state;
        self.mem_stats = base.mem_stats;
        self.pipeline = base.pipeline.clone();
        self.mem.copy_state_from(&base.mem);
        self.cache = base.cache.clone();
    }

    /// Executes a single instruction with the reference interpreter
    /// (fetch + decode + execute, flat cycle costs).
    ///
    /// # Errors
    ///
    /// Returns a [`SimError`] on fetch, decode or memory faults.
    pub fn step(&mut self) -> Result<(), SimError> {
        if self.halted {
            return Ok(());
        }
        let pc = self.pc;
        let word = self.mem.fetch(pc).ok_or(SimError::BadFetch { pc })?;
        let instr = decode(word).map_err(|word| SimError::IllegalInstruction { pc, word })?;
        self.trace.record(instr.mnemonic());
        self.instret += 1;
        let out = self.exec_instr(instr, pc)?;
        self.pc = out.next_pc;
        self.cycles += out.cycles;
        if let MemoryModel::Maupiti(cfg) = self.mem_model {
            let is_mem = matches!(instr, Instr::Load { .. } | Instr::Store { .. });
            self.cycles += self
                .mem_state
                .step(&cfg, is_mem, out.redirect, &mut self.mem_stats);
        }
        Ok(())
    }

    /// Executes the semantics of one instruction located at `pc`, without
    /// touching the PC, the retired-instruction counter, the trace or the
    /// cycle counter — bookkeeping differs between the two engines and is
    /// done by the caller from the returned [`ExecOutcome`].
    #[inline]
    pub(crate) fn exec_instr(&mut self, instr: Instr, pc: u32) -> Result<ExecOutcome, SimError> {
        let mut next_pc = pc.wrapping_add(4);
        let mut cost = 1u64;
        let mut redirect = false;
        match instr {
            Instr::Lui { rd, imm } => self.set_reg(rd, (imm as u32) << 12),
            Instr::Auipc { rd, imm } => self.set_reg(rd, pc.wrapping_add((imm as u32) << 12)),
            Instr::Jal { rd, offset } => {
                self.set_reg(rd, next_pc);
                next_pc = pc.wrapping_add(offset as u32);
                cost = CYCLES_JUMP;
                redirect = true;
            }
            Instr::Jalr { rd, rs1, offset } => {
                let target = self.reg(rs1).wrapping_add(offset as u32) & !1;
                self.set_reg(rd, next_pc);
                next_pc = target;
                cost = CYCLES_JUMP;
                redirect = true;
            }
            Instr::Branch {
                op,
                rs1,
                rs2,
                offset,
            } => {
                let a = self.reg(rs1);
                let b = self.reg(rs2);
                let branch_taken = match op {
                    BranchOp::Beq => a == b,
                    BranchOp::Bne => a != b,
                    BranchOp::Blt => (a as i32) < (b as i32),
                    BranchOp::Bge => (a as i32) >= (b as i32),
                    BranchOp::Bltu => a < b,
                    BranchOp::Bgeu => a >= b,
                };
                if branch_taken {
                    next_pc = pc.wrapping_add(offset as u32);
                    cost = CYCLES_BRANCH_TAKEN;
                    redirect = true;
                }
            }
            Instr::Load {
                op,
                rd,
                rs1,
                offset,
            } => {
                let addr = self.reg(rs1).wrapping_add(offset as u32);
                let (len, signed) = match op {
                    LoadOp::Lb => (1, true),
                    LoadOp::Lh => (2, true),
                    LoadOp::Lw => (4, false),
                    LoadOp::Lbu => (1, false),
                    LoadOp::Lhu => (2, false),
                };
                let raw = self
                    .mem
                    .load(addr, len)
                    .ok_or(SimError::BadMemoryAccess { pc, addr })?;
                let value = if signed {
                    let bits = 8 * len as u32;
                    (((raw << (32 - bits)) as i32) >> (32 - bits)) as u32
                } else {
                    raw
                };
                self.set_reg(rd, value);
                cost = CYCLES_MEM;
            }
            Instr::Store {
                op,
                rs1,
                rs2,
                offset,
            } => {
                let addr = self.reg(rs1).wrapping_add(offset as u32);
                let len = match op {
                    StoreOp::Sb => 1,
                    StoreOp::Sh => 2,
                    StoreOp::Sw => 4,
                };
                self.mem
                    .store(addr, self.reg(rs2), len)
                    .ok_or(SimError::BadMemoryAccess { pc, addr })?;
                cost = CYCLES_MEM;
            }
            Instr::Addi { rd, rs1, imm } => {
                self.set_reg(rd, self.reg(rs1).wrapping_add(imm as u32));
            }
            Instr::Slti { rd, rs1, imm } => {
                self.set_reg(rd, ((self.reg(rs1) as i32) < imm) as u32);
            }
            Instr::Sltiu { rd, rs1, imm } => {
                self.set_reg(rd, (self.reg(rs1) < imm as u32) as u32);
            }
            Instr::Xori { rd, rs1, imm } => self.set_reg(rd, self.reg(rs1) ^ imm as u32),
            Instr::Ori { rd, rs1, imm } => self.set_reg(rd, self.reg(rs1) | imm as u32),
            Instr::Andi { rd, rs1, imm } => self.set_reg(rd, self.reg(rs1) & imm as u32),
            Instr::Slli { rd, rs1, shamt } => self.set_reg(rd, self.reg(rs1) << (shamt & 31)),
            Instr::Srli { rd, rs1, shamt } => self.set_reg(rd, self.reg(rs1) >> (shamt & 31)),
            Instr::Srai { rd, rs1, shamt } => {
                self.set_reg(rd, ((self.reg(rs1) as i32) >> (shamt & 31)) as u32);
            }
            Instr::Add { rd, rs1, rs2 } => {
                self.set_reg(rd, self.reg(rs1).wrapping_add(self.reg(rs2)));
            }
            Instr::Sub { rd, rs1, rs2 } => {
                self.set_reg(rd, self.reg(rs1).wrapping_sub(self.reg(rs2)));
            }
            Instr::Sll { rd, rs1, rs2 } => {
                self.set_reg(rd, self.reg(rs1) << (self.reg(rs2) & 31));
            }
            Instr::Slt { rd, rs1, rs2 } => {
                self.set_reg(rd, ((self.reg(rs1) as i32) < (self.reg(rs2) as i32)) as u32);
            }
            Instr::Sltu { rd, rs1, rs2 } => {
                self.set_reg(rd, (self.reg(rs1) < self.reg(rs2)) as u32);
            }
            Instr::Xor { rd, rs1, rs2 } => self.set_reg(rd, self.reg(rs1) ^ self.reg(rs2)),
            Instr::Srl { rd, rs1, rs2 } => {
                self.set_reg(rd, self.reg(rs1) >> (self.reg(rs2) & 31));
            }
            Instr::Sra { rd, rs1, rs2 } => {
                self.set_reg(rd, ((self.reg(rs1) as i32) >> (self.reg(rs2) & 31)) as u32);
            }
            Instr::Or { rd, rs1, rs2 } => self.set_reg(rd, self.reg(rs1) | self.reg(rs2)),
            Instr::And { rd, rs1, rs2 } => self.set_reg(rd, self.reg(rs1) & self.reg(rs2)),
            Instr::Mul { rd, rs1, rs2 } => {
                self.set_reg(rd, self.reg(rs1).wrapping_mul(self.reg(rs2)));
            }
            Instr::Mulh { rd, rs1, rs2 } => {
                let prod = (self.reg(rs1) as i32 as i64) * (self.reg(rs2) as i32 as i64);
                self.set_reg(rd, (prod >> 32) as u32);
            }
            Instr::Mulhsu { rd, rs1, rs2 } => {
                let prod = (self.reg(rs1) as i32 as i64) * (self.reg(rs2) as u64 as i64);
                self.set_reg(rd, (prod >> 32) as u32);
            }
            Instr::Mulhu { rd, rs1, rs2 } => {
                let prod = (self.reg(rs1) as u64) * (self.reg(rs2) as u64);
                self.set_reg(rd, (prod >> 32) as u32);
            }
            Instr::Div { rd, rs1, rs2 } => {
                let a = self.reg(rs1) as i32;
                let b = self.reg(rs2) as i32;
                let q = if b == 0 {
                    -1
                } else if a == i32::MIN && b == -1 {
                    a
                } else {
                    a / b
                };
                self.set_reg(rd, q as u32);
                cost = CYCLES_DIV;
            }
            Instr::Divu { rd, rs1, rs2 } => {
                let q = self.reg(rs1).checked_div(self.reg(rs2)).unwrap_or(u32::MAX);
                self.set_reg(rd, q);
                cost = CYCLES_DIV;
            }
            Instr::Rem { rd, rs1, rs2 } => {
                let a = self.reg(rs1) as i32;
                let b = self.reg(rs2) as i32;
                let r = if b == 0 {
                    a
                } else if a == i32::MIN && b == -1 {
                    0
                } else {
                    a % b
                };
                self.set_reg(rd, r as u32);
                cost = CYCLES_DIV;
            }
            Instr::Remu { rd, rs1, rs2 } => {
                let b = self.reg(rs2);
                let r = if b == 0 {
                    self.reg(rs1)
                } else {
                    self.reg(rs1) % b
                };
                self.set_reg(rd, r);
                cost = CYCLES_DIV;
            }
            Instr::Sdotp8 { rd, rs1, rs2 } => {
                let acc = self.reg(rd) as i32;
                self.set_reg(rd, (acc + sdotp8(self.reg(rs1), self.reg(rs2))) as u32);
            }
            Instr::Sdotp4 { rd, rs1, rs2 } => {
                let acc = self.reg(rd) as i32;
                self.set_reg(rd, (acc + sdotp4(self.reg(rs1), self.reg(rs2))) as u32);
            }
            Instr::Ecall | Instr::Ebreak => {
                self.halted = true;
            }
        }
        Ok(ExecOutcome {
            next_pc,
            cycles: cost,
            redirect,
        })
    }

    /// Runs until the program halts (via `ecall`/`ebreak`) or the budget of
    /// `max_instructions` is exhausted, using the engine selected by
    /// [`Cpu::set_exec_mode`].
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Timeout`] when the budget is exhausted, or any
    /// fault raised by the executed instructions.
    pub fn run(&mut self, max_instructions: u64) -> Result<RunSummary, SimError> {
        match self.mode {
            ExecMode::Simple => self.run_simple(max_instructions),
            ExecMode::BlockCached => engine::run(self, max_instructions),
        }
    }

    fn run_simple(&mut self, max_instructions: u64) -> Result<RunSummary, SimError> {
        let start_instret = self.instret;
        let start_cycles = self.cycles;
        while !self.halted {
            if self.instret - start_instret >= max_instructions {
                return Err(SimError::Timeout { max_instructions });
            }
            self.step()?;
        }
        Ok(RunSummary {
            instructions: self.instret - start_instret,
            cycles: self.cycles - start_cycles,
        })
    }
}

/// Reference semantics of the 8-bit SDOTP: sum of four signed byte products.
pub(crate) fn sdotp8(a: u32, b: u32) -> i32 {
    let mut acc = 0i32;
    for i in 0..4 {
        let x = ((a >> (8 * i)) & 0xFF) as u8 as i8 as i32;
        let y = ((b >> (8 * i)) & 0xFF) as u8 as i8 as i32;
        acc += x * y;
    }
    acc
}

/// Reference semantics of the 4-bit SDOTP: sum of eight signed nibble
/// products.
pub(crate) fn sdotp4(a: u32, b: u32) -> i32 {
    let mut acc = 0i32;
    for i in 0..8 {
        let x = ((a >> (4 * i)) & 0xF) as i32;
        let y = ((b >> (4 * i)) & 0xF) as i32;
        let xs = if x >= 8 { x - 16 } else { x };
        let ys = if y >= 8 { y - 16 } else { y };
        acc += xs * ys;
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::DMEM_BASE;
    use crate::reg;
    use proptest::prelude::*;

    fn run_program(program: &[Instr]) -> Cpu {
        let mut cpu = Cpu::new_default();
        cpu.load_program(program).unwrap();
        cpu.run(100_000).unwrap();
        cpu
    }

    #[test]
    fn arithmetic_and_immediates_work() {
        let cpu = run_program(&[
            Instr::Addi {
                rd: reg::A0,
                rs1: reg::ZERO,
                imm: 100,
            },
            Instr::Addi {
                rd: reg::A1,
                rs1: reg::ZERO,
                imm: -3,
            },
            Instr::Add {
                rd: reg::A2,
                rs1: reg::A0,
                rs2: reg::A1,
            },
            Instr::Sub {
                rd: reg::A3,
                rs1: reg::A0,
                rs2: reg::A1,
            },
            Instr::Mul {
                rd: reg::A4,
                rs1: reg::A0,
                rs2: reg::A1,
            },
            Instr::Ebreak,
        ]);
        assert_eq!(cpu.reg(reg::A2) as i32, 97);
        assert_eq!(cpu.reg(reg::A3) as i32, 103);
        assert_eq!(cpu.reg(reg::A4) as i32, -300);
    }

    #[test]
    fn x0_is_hardwired_to_zero() {
        let cpu = run_program(&[
            Instr::Addi {
                rd: reg::ZERO,
                rs1: reg::ZERO,
                imm: 55,
            },
            Instr::Ebreak,
        ]);
        assert_eq!(cpu.reg(reg::ZERO), 0);
    }

    #[test]
    fn loads_and_stores_round_trip() {
        let mut cpu = Cpu::new_default();
        cpu.load_program(&[
            Instr::Lui {
                rd: reg::A0,
                imm: (DMEM_BASE >> 12) as i32,
            },
            Instr::Addi {
                rd: reg::A1,
                rs1: reg::ZERO,
                imm: -77,
            },
            Instr::Store {
                op: StoreOp::Sw,
                rs1: reg::A0,
                rs2: reg::A1,
                offset: 16,
            },
            Instr::Load {
                op: LoadOp::Lw,
                rd: reg::A2,
                rs1: reg::A0,
                offset: 16,
            },
            Instr::Store {
                op: StoreOp::Sb,
                rs1: reg::A0,
                rs2: reg::A1,
                offset: 20,
            },
            Instr::Load {
                op: LoadOp::Lb,
                rd: reg::A3,
                rs1: reg::A0,
                offset: 20,
            },
            Instr::Load {
                op: LoadOp::Lbu,
                rd: reg::A4,
                rs1: reg::A0,
                offset: 20,
            },
            Instr::Ebreak,
        ])
        .unwrap();
        cpu.run(100).unwrap();
        assert_eq!(cpu.reg(reg::A2) as i32, -77);
        assert_eq!(cpu.reg(reg::A3) as i32, -77);
        assert_eq!(cpu.reg(reg::A4), 0xB3); // low byte of -77, zero-extended
    }

    #[test]
    fn branches_and_loops_count_correctly() {
        // Sum 1..=10 with a loop.
        let cpu = run_program(&[
            Instr::Addi {
                rd: reg::T0,
                rs1: reg::ZERO,
                imm: 10,
            }, // counter
            Instr::Addi {
                rd: reg::A0,
                rs1: reg::ZERO,
                imm: 0,
            }, // acc
            // loop:
            Instr::Add {
                rd: reg::A0,
                rs1: reg::A0,
                rs2: reg::T0,
            },
            Instr::Addi {
                rd: reg::T0,
                rs1: reg::T0,
                imm: -1,
            },
            Instr::Branch {
                op: BranchOp::Bne,
                rs1: reg::T0,
                rs2: reg::ZERO,
                offset: -8,
            },
            Instr::Ebreak,
        ]);
        assert_eq!(cpu.reg(reg::A0), 55);
    }

    #[test]
    fn jal_and_jalr_link_and_jump() {
        let cpu = run_program(&[
            Instr::Jal {
                rd: reg::RA,
                offset: 12,
            }, // skip the next two instrs
            Instr::Addi {
                rd: reg::A0,
                rs1: reg::ZERO,
                imm: 1,
            }, // skipped
            Instr::Ebreak, // skipped
            Instr::Addi {
                rd: reg::A1,
                rs1: reg::ZERO,
                imm: 7,
            },
            Instr::Jalr {
                rd: reg::ZERO,
                rs1: reg::RA,
                offset: 4,
            }, // return past the first addi
            Instr::Ebreak,
        ]);
        assert_eq!(cpu.reg(reg::A0), 0);
        assert_eq!(cpu.reg(reg::A1), 7);
        assert_eq!(cpu.reg(reg::RA), 4);
    }

    #[test]
    fn division_semantics_follow_the_spec() {
        let cpu = run_program(&[
            Instr::Addi {
                rd: reg::A0,
                rs1: reg::ZERO,
                imm: -7,
            },
            Instr::Addi {
                rd: reg::A1,
                rs1: reg::ZERO,
                imm: 2,
            },
            Instr::Div {
                rd: reg::A2,
                rs1: reg::A0,
                rs2: reg::A1,
            },
            Instr::Rem {
                rd: reg::A3,
                rs1: reg::A0,
                rs2: reg::A1,
            },
            Instr::Div {
                rd: reg::A4,
                rs1: reg::A0,
                rs2: reg::ZERO,
            },
            Instr::Ebreak,
        ]);
        assert_eq!(cpu.reg(reg::A2) as i32, -3);
        assert_eq!(cpu.reg(reg::A3) as i32, -1);
        assert_eq!(cpu.reg(reg::A4) as i32, -1); // divide by zero => -1
    }

    #[test]
    fn sdotp8_matches_scalar_reference() {
        // a = [1, -2, 3, -4], b = [5, 6, -7, 8] packed little-endian.
        let a = u32::from_le_bytes([1i8 as u8, (-2i8) as u8, 3i8 as u8, (-4i8) as u8]);
        let b = u32::from_le_bytes([5i8 as u8, 6i8 as u8, (-7i8) as u8, 8i8 as u8]);
        assert_eq!(sdotp8(a, b), 5 - 2 * 6 - 3 * 7 - 4 * 8);
        let mut cpu = Cpu::new_default();
        cpu.load_program(&[
            Instr::Sdotp8 {
                rd: reg::A2,
                rs1: reg::A0,
                rs2: reg::A1,
            },
            Instr::Sdotp8 {
                rd: reg::A2,
                rs1: reg::A0,
                rs2: reg::A1,
            },
            Instr::Ebreak,
        ])
        .unwrap();
        cpu.set_reg(reg::A0, a);
        cpu.set_reg(reg::A1, b);
        cpu.set_reg(reg::A2, 100);
        cpu.run(10).unwrap();
        assert_eq!(cpu.reg(reg::A2) as i32, 100 + 2 * sdotp8(a, b));
        assert_eq!(cpu.trace.sdotp_count(), 2);
    }

    #[test]
    fn sdotp4_handles_signed_nibbles() {
        // Nibbles: [7, -8, 1, -1, 0, 3, -3, 2] (little-endian nibble order).
        let lanes: [i32; 8] = [7, -8, 1, -1, 0, 3, -3, 2];
        let mut a = 0u32;
        for (i, &v) in lanes.iter().enumerate() {
            a |= ((v & 0xF) as u32) << (4 * i);
        }
        let b = a; // dot product with itself = sum of squares
        let expected: i32 = lanes.iter().map(|&v| v * v).sum();
        assert_eq!(sdotp4(a, b), expected);
    }

    #[test]
    fn cycle_model_charges_more_for_memory_and_branches() {
        let mut cpu = Cpu::new_default();
        cpu.load_program(&[
            Instr::Addi {
                rd: reg::A0,
                rs1: reg::ZERO,
                imm: 1,
            },
            Instr::Ebreak,
        ])
        .unwrap();
        let alu_only = cpu.run(10).unwrap();
        assert_eq!(alu_only.instructions, 2);
        assert_eq!(alu_only.cycles, 2);

        let mut cpu = Cpu::new_default();
        cpu.load_program(&[
            Instr::Lui {
                rd: reg::A0,
                imm: (DMEM_BASE >> 12) as i32,
            },
            Instr::Store {
                op: StoreOp::Sw,
                rs1: reg::A0,
                rs2: reg::ZERO,
                offset: 0,
            },
            Instr::Load {
                op: LoadOp::Lw,
                rd: reg::A1,
                rs1: reg::A0,
                offset: 0,
            },
            Instr::Ebreak,
        ])
        .unwrap();
        let with_mem = cpu.run(10).unwrap();
        assert_eq!(with_mem.instructions, 4);
        assert_eq!(with_mem.cycles, 1 + 2 + 2 + 1);
    }

    #[test]
    fn runaway_programs_time_out() {
        let mut cpu = Cpu::new_default();
        cpu.load_program(&[Instr::Jal {
            rd: reg::ZERO,
            offset: 0,
        }])
        .unwrap();
        assert!(matches!(cpu.run(100), Err(SimError::Timeout { .. })));
    }

    #[test]
    fn illegal_instruction_is_reported() {
        let mut cpu = Cpu::new_default();
        cpu.load_program_bytes(&0xFFFF_FFFFu32.to_le_bytes())
            .unwrap();
        assert!(matches!(
            cpu.run(10),
            Err(SimError::IllegalInstruction { .. })
        ));
    }

    #[test]
    fn out_of_bounds_store_is_reported() {
        let mut cpu = Cpu::new_default();
        cpu.load_program(&[
            Instr::Store {
                op: StoreOp::Sw,
                rs1: reg::ZERO,
                rs2: reg::ZERO,
                offset: 0,
            },
            Instr::Ebreak,
        ])
        .unwrap();
        assert!(matches!(cpu.run(10), Err(SimError::BadMemoryAccess { .. })));
    }

    #[test]
    fn program_too_large_is_rejected() {
        let mut cpu = Cpu::new(16, 16);
        let program = vec![Instr::Ebreak; 5];
        assert!(matches!(
            cpu.load_program(&program),
            Err(SimError::ProgramTooLarge { .. })
        ));
    }

    proptest! {
        #[test]
        fn sdotp8_equals_scalar_loop(a in any::<u32>(), b in any::<u32>()) {
            let mut expected = 0i64;
            for i in 0..4 {
                let x = ((a >> (8 * i)) & 0xFF) as u8 as i8 as i64;
                let y = ((b >> (8 * i)) & 0xFF) as u8 as i8 as i64;
                expected += x * y;
            }
            prop_assert_eq!(sdotp8(a, b) as i64, expected);
        }

        #[test]
        fn sdotp4_equals_scalar_loop(a in any::<u32>(), b in any::<u32>()) {
            let mut expected = 0i64;
            for i in 0..8 {
                let xs = ((a >> (4 * i)) & 0xF) as i64;
                let ys = ((b >> (4 * i)) & 0xF) as i64;
                let xs = if xs >= 8 { xs - 16 } else { xs };
                let ys = if ys >= 8 { ys - 16 } else { ys };
                expected += xs * ys;
            }
            prop_assert_eq!(sdotp4(a, b) as i64, expected);
        }
    }
}
