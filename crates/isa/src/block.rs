//! Superblock (trace) extraction: straight-line regions decoded once,
//! extended through conditional branches and unconditional jumps.
//!
//! A trace starts at an entry PC and grows instruction by instruction:
//!
//! * ordinary instructions are appended;
//! * **conditional branches** become *side exits*: the trace continues on
//!   the fall-through path, and a taken branch leaves the trace mid-way
//!   (bounds-check branches in the generated kernels are almost never
//!   taken, so the hot path stays inside one trace);
//! * **unconditional jumps (JAL)** are *followed*: the jump stays in the
//!   trace (it retires, links and is charged its flush cycles) and decoding
//!   continues at its target, so loop tails like `addi; j loop_head` no
//!   longer split the loop body;
//! * JALR (dynamic target), ECALL/EBREAK, a JAL to an address already in
//!   the trace (a cycle), the [`MAX_BLOCK_LEN`] cap, and undecodable or
//!   unfetchable words end the trace.
//!
//! Decode problems do **not** fail extraction: the trace ends early and
//! remembers the fault, which the engine raises only if execution actually
//! reaches that address — exactly matching the lazily-faulting reference
//! interpreter.
//!
//! Every possible way out of a trace (each side exit plus "ran to the
//! end") has an [`exit`](Block::exits) entry carrying the pre-aggregated
//! per-mnemonic counts of the instructions retired on that path, so the
//! engine can account a whole trace execution with a single counter
//! increment.

use crate::instr::{decode, Decoded, Op};
use crate::memory::Memory;
use std::collections::HashSet;
use std::sync::{OnceLock, Weak};

/// Upper bound on decoded instructions per trace, so pathological images
/// (e.g. instruction memory full of straight-line code) still produce
/// bounded traces. Execution falls through to the next trace seamlessly.
pub(crate) const MAX_BLOCK_LEN: usize = 1024;

/// Why extraction of a trace stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum BlockEnd {
    /// The last instruction decides the next PC at run time (JALR, an
    /// unfollowed JAL) or halts the core (ECALL/EBREAK).
    Terminator,
    /// The trace hit [`MAX_BLOCK_LEN`]; execution falls through to
    /// [`Block::cont_pc`].
    Fallthrough,
    /// The next fetch would fail; raise `SimError::BadFetch` if reached.
    BadFetch {
        /// The unfetchable address.
        pc: u32,
    },
    /// The next word does not decode; raise `SimError::IllegalInstruction`
    /// if reached.
    Illegal {
        /// Address of the undecodable word.
        pc: u32,
        /// The raw word.
        word: u32,
    },
}

/// One way out of a trace, with the trace-prefix instruction counts
/// retired when leaving through it.
#[derive(Debug, Clone)]
pub(crate) struct ExitPoint {
    /// Number of instructions retired when exiting here (`idx + 1` for a
    /// side exit at instruction `idx`; `instrs.len()` for the end exit).
    pub retired: usize,
    /// Per-mnemonic counts of those `retired` instructions.
    pub counts: Vec<(&'static str, u64)>,
}

/// A decoded superblock of the program.
#[derive(Debug, Clone)]
pub(crate) struct Block {
    /// Address of the first instruction.
    pub entry_pc: u32,
    /// The pre-decoded instructions, in trace order. PCs are NOT
    /// necessarily contiguous: followed jumps splice their target stream
    /// into the trace.
    pub instrs: Vec<Decoded>,
    /// Why the trace ends.
    pub end: BlockEnd,
    /// Where execution continues when the trace runs to its end without a
    /// run-time redirect (fall-through / deferred-fault address).
    pub cont_pc: u32,
    /// All ways out of the trace; the last entry is always the end exit.
    /// Conditional branches hold their exit's index in
    /// [`Decoded::exit_ordinal`].
    pub exits: Vec<ExitPoint>,
    /// Superblock chaining: the successor trace of each exit, cached the
    /// first time the exit is taken. Side-exit targets are static, so the
    /// link never changes once set; later executions of the exit re-enter
    /// the engine's dispatch memo directly, skipping the dispatch-table
    /// probe. Links are weak so that mutually-branching traces do not form
    /// `Arc` cycles — the cache's published snapshot keeps every block
    /// alive, and a failed upgrade simply falls back to the table probe.
    /// The last entry serves the end exit when [`Block::end_chainable`]
    /// says its target is static.
    pub chain: Vec<OnceLock<Weak<Block>>>,
    /// Per-trace access summary for the memory-hierarchy model:
    /// `mem_prefix[i]` counts the data accesses (loads + stores) among
    /// the trace's first `i` instructions, so any retired prefix's access
    /// count is one subtraction.
    pub mem_prefix: Vec<u32>,
    /// Ascending trace positions of instructions that *always* redirect
    /// the PC when executed — followed JALs mid-trace plus a terminator
    /// JAL/JALR. Together with [`Block::mem_prefix`] this lets the engine
    /// charge the memory model once per trace execution
    /// (`MemModelState::charge_prefix`) instead of once per instruction.
    pub redirects: Vec<u32>,
    /// Whether the end exit leaves for a *static* successor address and may
    /// therefore use the last [`Block::chain`] link: true for
    /// [`BlockEnd::Fallthrough`] (the `MAX_BLOCK_LEN` split) and for traces
    /// ending in an unfollowed static JAL. False when the last instruction
    /// decides the target at run time (JALR), halts the core, or the end
    /// defers a fault.
    pub end_chainable: bool,
    /// Macro-op fusion: a recognised loop idiom at the head of the trace
    /// (SDOTP MAC reduction, memset, memcpy, strided copy, convolution
    /// kernel-x nest) that the engine may execute as one bulk host loop
    /// per entry. `None` when the trace matches no pattern.
    pub fused: Option<crate::fusion::FusedOp>,
    /// When [`Block::fused`] is a convolution nest, the nest's embedded
    /// channel loop as a standalone plain MAC op; the engine substitutes
    /// it under the Maupiti memory model, whose order-sensitive charges
    /// the nest executor does not reproduce.
    pub fused_inner: Option<crate::fusion::FusedOp>,
}

fn prefix_counts(instrs: &[Decoded]) -> Vec<(&'static str, u64)> {
    let mut counts: Vec<(&'static str, u64)> = Vec::new();
    for d in instrs {
        let mnemonic = d.mnemonic();
        match counts.iter_mut().find(|(m, _)| *m == mnemonic) {
            Some((_, n)) => *n += 1,
            None => counts.push((mnemonic, 1)),
        }
    }
    counts
}

/// Decodes the superblock starting at `entry_pc`.
pub(crate) fn build_block(mem: &Memory, entry_pc: u32) -> Block {
    let mut instrs: Vec<Decoded> = Vec::new();
    let mut exits: Vec<ExitPoint> = Vec::new();
    let mut visited: HashSet<u32> = HashSet::new();
    let mut pc = entry_pc;
    let end = loop {
        if instrs.len() >= MAX_BLOCK_LEN {
            break BlockEnd::Fallthrough;
        }
        let Some(word) = mem.fetch(pc) else {
            break BlockEnd::BadFetch { pc };
        };
        let Ok(instr) = decode(word) else {
            break BlockEnd::Illegal { pc, word };
        };
        let mut d = Decoded::new(instr, pc);
        visited.insert(pc);
        match d.op {
            // Conditional branch: side exit, keep decoding the
            // fall-through path.
            Op::Beq { .. }
            | Op::Bne { .. }
            | Op::Blt { .. }
            | Op::Bge { .. }
            | Op::Bltu { .. }
            | Op::Bgeu { .. } => {
                d.exit_ordinal = exits.len() as u16;
                exits.push(ExitPoint {
                    retired: instrs.len() + 1,
                    counts: Vec::new(), // filled below
                });
                instrs.push(d);
                pc = pc.wrapping_add(4);
            }
            // Unconditional jump: follow the target when it is new,
            // otherwise end the trace (loops back into itself).
            Op::Jal { link, target } => {
                if visited.contains(&target) {
                    instrs.push(d);
                    // cont_pc is unused (the jump always redirects).
                    pc = pc.wrapping_add(4);
                    break BlockEnd::Terminator;
                }
                d.op = Op::JalFollowed { link };
                instrs.push(d);
                pc = target;
            }
            // Dynamic target or halt: hard trace end. After a halt the PC
            // architecturally advances past the instruction, so `cont_pc`
            // must point behind it.
            Op::Jalr { .. } | Op::Halt => {
                instrs.push(d);
                pc = pc.wrapping_add(4);
                break BlockEnd::Terminator;
            }
            _ => {
                instrs.push(d);
                pc = pc.wrapping_add(4);
            }
        }
    };
    for exit in &mut exits {
        exit.counts = prefix_counts(&instrs[..exit.retired]);
    }
    // The end exit: ran through every instruction of the trace.
    exits.push(ExitPoint {
        retired: instrs.len(),
        counts: prefix_counts(&instrs),
    });
    let chain = (0..exits.len()).map(|_| OnceLock::new()).collect();
    let mut mem_prefix = Vec::with_capacity(instrs.len() + 1);
    mem_prefix.push(0u32);
    let mut redirects = Vec::new();
    for (i, d) in instrs.iter().enumerate() {
        mem_prefix.push(mem_prefix[i] + (d.is_load || d.is_store) as u32);
        if matches!(
            d.op,
            Op::JalFollowed { .. } | Op::Jal { .. } | Op::Jalr { .. }
        ) {
            redirects.push(i as u32);
        }
    }
    let end_chainable = match end {
        BlockEnd::Fallthrough => true,
        BlockEnd::Terminator => matches!(instrs.last().map(|d| &d.op), Some(Op::Jal { .. })),
        BlockEnd::BadFetch { .. } | BlockEnd::Illegal { .. } => false,
    };
    let (fused, fused_inner) = crate::fusion::recognize(&instrs);
    Block {
        entry_pc,
        instrs,
        end,
        cont_pc: pc,
        exits,
        chain,
        mem_prefix,
        redirects,
        end_chainable,
        fused,
        fused_inner,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::{BranchOp, Instr};
    use crate::memory::IMEM_BASE;
    use crate::reg;

    fn load(mem: &mut Memory, program: &[Instr]) {
        let mut bytes = Vec::new();
        for i in program {
            bytes.extend_from_slice(&i.encode().to_le_bytes());
        }
        mem.load_imem(&bytes).unwrap();
    }

    #[test]
    fn trace_ends_at_backward_jump_into_itself() {
        let mut mem = Memory::maupiti();
        load(
            &mut mem,
            &[
                Instr::Addi {
                    rd: reg::A0,
                    rs1: reg::ZERO,
                    imm: 1,
                },
                Instr::Addi {
                    rd: reg::A1,
                    rs1: reg::ZERO,
                    imm: 2,
                },
                Instr::Jal {
                    rd: reg::ZERO,
                    offset: -8,
                },
                Instr::Addi {
                    rd: reg::A2,
                    rs1: reg::ZERO,
                    imm: 3,
                },
            ],
        );
        let b = build_block(&mem, IMEM_BASE);
        assert_eq!(b.instrs.len(), 3);
        assert_eq!(b.end, BlockEnd::Terminator);
        // A trace can start in the middle of a region another trace covers;
        // from +4 the backward jump targets a *fresh* address (0), so the
        // builder follows it and the cycle closes one lap later:
        // [addi@4, jal@8 (followed), addi@0, addi@4, jal@8 (unfollowed)].
        let b2 = build_block(&mem, IMEM_BASE + 4);
        assert_eq!(b2.instrs.len(), 5);
        assert_eq!(b2.end, BlockEnd::Terminator);
        assert_eq!(b2.instrs[2].pc, IMEM_BASE);
    }

    #[test]
    fn forward_jumps_are_followed_into_one_trace() {
        let mut mem = Memory::maupiti();
        load(
            &mut mem,
            &[
                Instr::Addi {
                    rd: reg::A0,
                    rs1: reg::ZERO,
                    imm: 1,
                },
                Instr::Jal {
                    rd: reg::ZERO,
                    offset: 8,
                },
                Instr::Ebreak, // skipped by the jump
                Instr::Addi {
                    rd: reg::A1,
                    rs1: reg::ZERO,
                    imm: 2,
                },
                Instr::Ebreak,
            ],
        );
        let b = build_block(&mem, IMEM_BASE);
        // addi, jal (followed), addi@12, ebreak@16 — the skipped ebreak@8
        // is not part of the trace.
        assert_eq!(b.instrs.len(), 4);
        assert_eq!(b.end, BlockEnd::Terminator);
        assert!(matches!(b.instrs[1].op, Op::JalFollowed { .. }));
        assert_eq!(b.instrs[2].pc, IMEM_BASE + 12);
    }

    #[test]
    fn conditional_branches_become_side_exits() {
        let mut mem = Memory::maupiti();
        load(
            &mut mem,
            &[
                Instr::Addi {
                    rd: reg::A0,
                    rs1: reg::ZERO,
                    imm: 1,
                },
                Instr::Branch {
                    op: BranchOp::Beq,
                    rs1: reg::A0,
                    rs2: reg::ZERO,
                    offset: 8,
                },
                Instr::Addi {
                    rd: reg::A1,
                    rs1: reg::ZERO,
                    imm: 2,
                },
                Instr::Ebreak,
            ],
        );
        let b = build_block(&mem, IMEM_BASE);
        assert_eq!(b.instrs.len(), 4, "trace continues past the branch");
        assert_eq!(b.exits.len(), 2, "one side exit plus the end exit");
        assert_eq!(b.instrs[1].exit_ordinal, 0);
        assert_eq!(b.exits[0].retired, 2);
        let end = b.exits.last().unwrap();
        assert_eq!(end.retired, 4);
        let get =
            |counts: &[(&str, u64)], m: &str| counts.iter().find(|(k, _)| *k == m).map(|&(_, n)| n);
        assert_eq!(get(&b.exits[0].counts, "alu-imm"), Some(1));
        assert_eq!(get(&b.exits[0].counts, "branch"), Some(1));
        assert_eq!(get(&end.counts, "alu-imm"), Some(2));
        assert_eq!(get(&end.counts, "ebreak"), Some(1));
    }

    #[test]
    fn halt_terminates_a_trace() {
        let mut mem = Memory::maupiti();
        load(
            &mut mem,
            &[
                Instr::Addi {
                    rd: reg::A0,
                    rs1: reg::ZERO,
                    imm: 1,
                },
                Instr::Ebreak,
            ],
        );
        let b = build_block(&mem, IMEM_BASE);
        assert_eq!(b.instrs.len(), 2);
        assert_eq!(b.end, BlockEnd::Terminator);
    }

    #[test]
    fn illegal_word_defers_the_fault() {
        let mut mem = Memory::maupiti();
        let mut bytes = Instr::Addi {
            rd: reg::A0,
            rs1: reg::ZERO,
            imm: 1,
        }
        .encode()
        .to_le_bytes()
        .to_vec();
        bytes.extend_from_slice(&0xFFFF_FFFFu32.to_le_bytes());
        mem.load_imem(&bytes).unwrap();
        let b = build_block(&mem, IMEM_BASE);
        assert_eq!(b.instrs.len(), 1);
        assert_eq!(
            b.end,
            BlockEnd::Illegal {
                pc: IMEM_BASE + 4,
                word: 0xFFFF_FFFF
            }
        );
        assert_eq!(b.cont_pc, IMEM_BASE + 4);
    }

    #[test]
    fn empty_imem_yields_an_empty_faulting_trace() {
        let mem = Memory::new(0, 16);
        let b = build_block(&mem, IMEM_BASE);
        assert!(b.instrs.is_empty());
        assert_eq!(b.end, BlockEnd::BadFetch { pc: IMEM_BASE });
        assert_eq!(b.exits.len(), 1);
        assert_eq!(b.exits[0].retired, 0);
    }
}
