//! Pipelined IBEX-style timing model: state and stall accounting.
//!
//! The block-cached engine charges cycles through this model instead of the
//! flat per-instruction costs of the reference interpreter. The model
//! follows the IBEX micro-architecture: an in-order, single-issue core with
//! an instruction-fetch stage feeding a combined decode/execute stage.
//!
//! Per-instruction occupancy of the decode/execute stage:
//!
//! * 1 cycle for ALU, multiply and SDOTP operations (the MAUPITI SDOTP unit
//!   is single-cycle by construction — the paper replicates multipliers
//!   instead of sharing them);
//! * 2 cycles for loads and stores (one extra data-interface cycle);
//! * 37 cycles for divisions and remainders (iterative divider);
//! * jumps spend 1 extra cycle refilling the fetch stage (target known in
//!   decode), taken branches 2 (target resolved in execute).
//!
//! On top of the stage occupancy the model accounts two hazards the flat
//! model cannot see:
//!
//! * **load-use interlock** — an instruction reading the destination of the
//!   immediately preceding load stalls [`LOAD_USE_STALL`] cycle while the
//!   data returns;
//! * **branch flush** — a taken control transfer squashes the prefetched
//!   instruction; the refill cycles are recorded in
//!   [`PipelineStats::flush_cycles`] and any pending load-use forwarding
//!   state is cleared.
//!
//! The hazard logic itself is inlined in the engine's dispatch loop
//! (`crate::engine`); this module owns the per-op cost table shared by
//! both engines ([`stage_cycles`] and the `CYCLES_*` constants — the
//! reference interpreter and the pre-decoder both read it from here
//! instead of keeping private copies), plus the state that persists
//! across basic blocks and the observable counters. Memory-hierarchy
//! stalls on top of these stage costs are charged separately through
//! [`crate::MemoryModel`].

use crate::instr::Instr;

/// Extra cycle charged when an instruction consumes the result of the
/// immediately preceding load.
pub const LOAD_USE_STALL: u64 = 1;

/// Stage-occupancy cycles of ALU, multiply and SDOTP instructions (the
/// MAUPITI SDOTP unit is single-cycle by construction).
pub const CYCLES_ALU: u64 = 1;
/// Stage-occupancy cycles of a load or store (IBEX data interface).
pub const CYCLES_MEM: u64 = 2;
/// Total cycles of a taken branch (target resolved in execute:
/// [`CYCLES_ALU`] plus a 2-cycle fetch flush).
pub const CYCLES_BRANCH_TAKEN: u64 = 3;
/// Total cycles of a jump (target known in decode: [`CYCLES_ALU`] plus a
/// 1-cycle fetch flush).
pub const CYCLES_JUMP: u64 = 2;
/// Stage-occupancy cycles of a division / remainder (iterative divider).
pub const CYCLES_DIV: u64 = 37;

// `Decoded` stores per-op costs in a `u8`; a recalibration past 255 must
// fail to compile instead of silently truncating every cycle count.
const _: () = assert!(CYCLES_ALU <= u8::MAX as u64);
const _: () = assert!(CYCLES_MEM <= u8::MAX as u64);
const _: () = assert!(CYCLES_JUMP <= u8::MAX as u64);
const _: () = assert!(CYCLES_DIV <= u8::MAX as u64);

/// Flat stage-occupancy cycles of one instruction — the single source of
/// the per-op cost table used by both execution engines. Jumps include
/// their always-paid fetch flush; the extra redirect cycles of a *taken*
/// branch ([`CYCLES_BRANCH_TAKEN`]) are charged at run time because an
/// untaken branch retires in one cycle.
pub fn stage_cycles(instr: &Instr) -> u8 {
    match instr {
        Instr::Load { .. } | Instr::Store { .. } => CYCLES_MEM as u8,
        Instr::Div { .. } | Instr::Divu { .. } | Instr::Rem { .. } | Instr::Remu { .. } => {
            CYCLES_DIV as u8
        }
        Instr::Jal { .. } | Instr::Jalr { .. } => CYCLES_JUMP as u8,
        _ => CYCLES_ALU as u8,
    }
}

/// Cycles lost to stalls and flushes, broken out by cause.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PipelineStats {
    /// Instructions timed by the pipeline model.
    pub instructions: u64,
    /// Cycles lost to load-use interlock stalls.
    pub load_use_stalls: u64,
    /// Cycles lost re-filling fetch after taken control transfers.
    pub flush_cycles: u64,
}

/// Hazard-tracking state of the fetch/decode/execute pipeline.
#[derive(Debug, Clone, Default)]
pub(crate) struct Pipeline {
    /// Destination register of the load currently in its memory cycle
    /// (0 = none; x0 loads never interlock).
    pub(crate) load_dest: u8,
    /// Observable stall/flush counters.
    pub(crate) stats: PipelineStats,
}

impl Pipeline {
    /// Clears hazard state and counters (new program image).
    pub(crate) fn reset(&mut self) {
        *self = Self::default();
    }

    /// Stall/flush counters accumulated so far.
    pub(crate) fn stats(&self) -> PipelineStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use crate::instr::{BranchOp, Instr, LoadOp, StoreOp};
    use crate::memory::DMEM_BASE;
    use crate::{reg, Cpu, ExecMode};

    /// Runs `program` on the block-cached engine and returns the CPU.
    fn run_cached(program: &[Instr]) -> Cpu {
        let mut cpu = Cpu::new_default().with_exec_mode(ExecMode::BlockCached);
        cpu.load_program(program).unwrap();
        cpu.run(100_000).unwrap();
        cpu
    }

    fn prologue() -> Vec<Instr> {
        vec![
            Instr::Lui {
                rd: reg::A0,
                imm: (DMEM_BASE >> 12) as i32,
            },
            Instr::Store {
                op: StoreOp::Sw,
                rs1: reg::A0,
                rs2: reg::A0,
                offset: 0,
            },
        ]
    }

    #[test]
    fn load_use_stalls_one_cycle() {
        let mut program = prologue();
        program.extend([
            Instr::Load {
                op: LoadOp::Lw,
                rd: reg::A1,
                rs1: reg::A0,
                offset: 0,
            },
            Instr::Add {
                rd: reg::A2,
                rs1: reg::A1,
                rs2: reg::ZERO,
            },
            Instr::Ebreak,
        ]);
        let cpu = run_cached(&program);
        assert_eq!(cpu.pipeline_stats().load_use_stalls, 1);
        // lui(1) + sw(2) + lw(2) + stalled add(2) + ebreak(1)
        assert_eq!(cpu.cycles, 8);
    }

    #[test]
    fn independent_instruction_after_load_does_not_stall() {
        let mut program = prologue();
        program.extend([
            Instr::Load {
                op: LoadOp::Lw,
                rd: reg::A1,
                rs1: reg::A0,
                offset: 0,
            },
            Instr::Add {
                rd: reg::A2,
                rs1: reg::A3,
                rs2: reg::A4,
            },
            Instr::Ebreak,
        ]);
        let cpu = run_cached(&program);
        assert_eq!(cpu.pipeline_stats().load_use_stalls, 0);
    }

    #[test]
    fn hazard_window_is_a_single_instruction() {
        let mut program = prologue();
        program.extend([
            Instr::Load {
                op: LoadOp::Lw,
                rd: reg::A1,
                rs1: reg::A0,
                offset: 0,
            },
            Instr::Addi {
                rd: reg::T0,
                rs1: reg::ZERO,
                imm: 1,
            },
            Instr::Add {
                rd: reg::A2,
                rs1: reg::A1,
                rs2: reg::ZERO,
            },
            Instr::Ebreak,
        ]);
        let cpu = run_cached(&program);
        assert_eq!(cpu.pipeline_stats().load_use_stalls, 0);
    }

    #[test]
    fn sdotp_accumulator_read_participates_in_hazards() {
        let mut program = prologue();
        program.extend([
            Instr::Load {
                op: LoadOp::Lw,
                rd: reg::A2,
                rs1: reg::A0,
                offset: 0,
            },
            Instr::Sdotp8 {
                rd: reg::A2,
                rs1: reg::A3,
                rs2: reg::A4,
            },
            Instr::Ebreak,
        ]);
        let cpu = run_cached(&program);
        assert_eq!(
            cpu.pipeline_stats().load_use_stalls,
            1,
            "rd is a third read port on SDOTP"
        );
    }

    #[test]
    fn taken_branch_flushes_hazard_state_and_counts_flush_cycles() {
        // The load feeding a consumer across a taken branch does not stall:
        // the flush re-fills the pipe and hides the load latency.
        let mut program = prologue();
        program.extend([
            Instr::Load {
                op: LoadOp::Lw,
                rd: reg::A1,
                rs1: reg::A0,
                offset: 0,
            },
            Instr::Branch {
                op: BranchOp::Beq,
                rs1: reg::ZERO,
                rs2: reg::ZERO,
                offset: 8,
            },
            Instr::Ebreak, // skipped
            Instr::Add {
                rd: reg::A2,
                rs1: reg::A1,
                rs2: reg::ZERO,
            },
            Instr::Ebreak,
        ]);
        let cpu = run_cached(&program);
        assert_eq!(cpu.pipeline_stats().load_use_stalls, 0);
        assert_eq!(cpu.pipeline_stats().flush_cycles, 2);
    }

    #[test]
    fn jumps_account_one_flush_cycle() {
        let program = [
            Instr::Jal {
                rd: reg::ZERO,
                offset: 8,
            },
            Instr::Ebreak, // skipped
            Instr::Ebreak,
        ];
        let cpu = run_cached(&program);
        assert_eq!(cpu.pipeline_stats().flush_cycles, 1);
        assert_eq!(cpu.cycles, 3); // jal(2) + ebreak(1)
    }

    #[test]
    fn loads_to_x0_never_interlock() {
        let mut program = prologue();
        program.extend([
            Instr::Load {
                op: LoadOp::Lw,
                rd: reg::ZERO,
                rs1: reg::A0,
                offset: 0,
            },
            Instr::Add {
                rd: reg::A2,
                rs1: reg::ZERO,
                rs2: reg::ZERO,
            },
            Instr::Ebreak,
        ]);
        let cpu = run_cached(&program);
        assert_eq!(cpu.pipeline_stats().load_use_stalls, 0);
    }

    #[test]
    fn stats_count_all_instructions() {
        let program = [
            Instr::Addi {
                rd: reg::A0,
                rs1: reg::ZERO,
                imm: 3,
            },
            Instr::Addi {
                rd: reg::A0,
                rs1: reg::A0,
                imm: -1,
            },
            Instr::Branch {
                op: BranchOp::Bne,
                rs1: reg::A0,
                rs2: reg::ZERO,
                offset: -4,
            },
            Instr::Ebreak,
        ];
        let cpu = run_cached(&program);
        assert_eq!(cpu.pipeline_stats().instructions, cpu.instret);
    }
}
