//! The block-cached execution engine.
//!
//! Instead of fetching and decoding one word per [`Cpu::step`], the engine
//! decodes each superblock trace once into a dense `Vec<Decoded>`
//! ([`crate::block`]) whose elements carry fully lowered micro-ops (every
//! immediate, width and control-flow target pre-resolved), caches it keyed
//! by entry PC, and dispatches cached traces in a tight threaded loop that
//! never touches `Memory::fetch`, re-decodes a word, or updates the trace
//! map per instruction. Cycle accounting follows the pipelined IBEX timing
//! model ([`crate::pipeline`]), inlined in the dispatch loop.
//!
//! Three levels keep the dispatch overhead off the hot path:
//!
//! 1. superblocks extend through conditional branches (side exits) and
//!    unconditional jumps, so kernel loop bodies split across labels
//!    execute as one trace;
//! 2. an exit that targets its own trace entry (every tight loop)
//!    re-enters the execution loop locally, with no dispatch at all;
//! 3. a one-entry dispatch memo catches the remaining repeated entries.
//!
//! Instruction-mix accounting is O(1) per trace execution: every exit
//! carries its pre-aggregated per-mnemonic prefix counts and the CPU
//! counts (slot, exit) pairs; the counters are folded into the
//! [`crate::Trace`] when [`run`] returns (on success *and* on error), so
//! observable state is indistinguishable from the reference interpreter.
//!
//! The cache is shared (copy-on-`load_program`) between clones of a `Cpu`,
//! including clones running on other threads: decoded blocks live behind
//! `Arc` in an immutable published snapshot, each CPU probes its own
//! lock-free snapshot handle, and a mutex-guarded publish step (taken only
//! when a block is *built*) makes new blocks visible to every clone. A
//! deployment that clones a pristine CPU per inference therefore warms the
//! cache once and every later frame — on any thread — dispatches fully
//! pre-decoded code. Loading a new program image swaps in a fresh cache,
//! so clones diverging by program never see each other's blocks.
//!
//! Side exits additionally *chain*: the first taken execution of a side
//! exit resolves its (static) target trace and caches the link on the
//! block ([`Block::chain`]), so branchy code that ping-pongs between
//! traces re-enters the dispatch memo directly instead of probing the
//! cache table. [`Cpu::set_superblock_chaining`] disables this (used by
//! the throughput bench to measure the chaining delta).
//!
//! Architectural results (registers, memory, instruction counts, trace,
//! faults) are identical to [`ExecMode::Simple`] — the differential tests
//! below and the deployment tests in `pcount-kernels` hold both engines to
//! bit-exactness; only the cycle model is finer-grained (it adds load-use
//! interlock stalls the flat model cannot see). When touching instruction
//! semantics, change BOTH [`Cpu::exec_instr`] and [`run_inner`] here.

use crate::block::{build_block, Block, BlockEnd};
use crate::cpu::{sdotp4, sdotp8, Cpu, RunSummary, SimError};
use crate::instr::Op;
use crate::mem_model::{MemStats, MemoryModel};
use crate::memory::{Memory, IMEM_BASE};
use crate::pipeline::LOAD_USE_STALL;
use std::sync::{Arc, Mutex, Weak};

/// Which execution engine a [`Cpu`] uses in [`Cpu::run`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum ExecMode {
    /// Reference interpreter: fetch + decode every instruction, flat
    /// per-instruction cycle costs.
    #[default]
    Simple,
    /// Pre-decoded basic-block cache with the pipelined IBEX timing model.
    BlockCached,
}

/// One decoded-block table: direct-mapped by word index, immutable once
/// published.
type Slots = Vec<Option<Arc<Block>>>;

/// Lazily populated cache of decoded blocks, shared between CPU clones
/// across threads (see module docs).
///
/// Reads go through `local`, a lock-free snapshot handle owned by this
/// CPU. Building a block takes the `published` mutex, re-checks the latest
/// snapshot (another thread may have built the same block), publishes a
/// copy-on-write successor snapshot and refreshes `local`. The copy is
/// O(slots) but happens at most once per distinct block per program image
/// — never on the dispatch hot path. Everything here is `Send + Sync`, so
/// `Cpu` can move across threads and a warmed deployment CPU can be cloned
/// into a thread pool.
#[derive(Debug, Clone)]
pub(crate) struct BlockCache {
    /// Latest published snapshot, shared by every clone of this image.
    published: Arc<Mutex<Arc<Slots>>>,
    /// This CPU's read-only snapshot.
    local: Arc<Slots>,
}

impl BlockCache {
    /// An empty cache with one slot per instruction word.
    pub(crate) fn new(imem_bytes: usize) -> Self {
        let slots: Arc<Slots> = Arc::new(vec![None; imem_bytes / 4]);
        Self {
            published: Arc::new(Mutex::new(Arc::clone(&slots))),
            local: slots,
        }
    }

    /// Replaces the slot table with a fresh one (new program image). Other
    /// clones keep the old table.
    pub(crate) fn invalidate(&mut self, imem_bytes: usize) {
        *self = Self::new(imem_bytes);
    }

    /// Number of blocks currently published.
    pub(crate) fn len(&self) -> usize {
        self.published
            .lock()
            .expect("block cache lock")
            .iter()
            .filter(|s| s.is_some())
            .count()
    }

    /// Probes this CPU's local snapshot for the block entered at `pc`
    /// without building or touching the publish lock: a bounds-checked
    /// direct index, the cheapest possible dispatch. `None` means the
    /// local snapshot does not know the block (unmapped pc, or published
    /// only by a sibling since the last refresh).
    #[inline]
    fn get_local(&self, pc: u32) -> Option<(usize, Arc<Block>)> {
        let off = pc.checked_sub(IMEM_BASE)? as usize;
        if !off.is_multiple_of(4) {
            return None;
        }
        let index = off / 4;
        self.local
            .get(index)?
            .as_ref()
            .map(|block| (index, Arc::clone(block)))
    }

    /// Returns the slot index and block entered at `pc`, building and
    /// publishing the block on miss. `None` means `pc` cannot index
    /// instruction memory at all.
    #[inline]
    fn get_or_build(&mut self, mem: &Memory, pc: u32) -> Option<(usize, Arc<Block>)> {
        let off = pc.checked_sub(IMEM_BASE)? as usize;
        if !off.is_multiple_of(4) {
            return None;
        }
        let index = off / 4;
        match self.local.get(index)? {
            Some(block) => Some((index, Arc::clone(block))),
            None => self.build_and_publish(mem, pc, index),
        }
    }

    /// Cold path of [`BlockCache::get_or_build`]: builds the block under
    /// the publish lock (unless a sibling already did) and makes it
    /// visible to every clone.
    #[cold]
    fn build_and_publish(
        &mut self,
        mem: &Memory,
        pc: u32,
        index: usize,
    ) -> Option<(usize, Arc<Block>)> {
        let mut published = self.published.lock().expect("block cache lock");
        if let Some(block) = &published[index] {
            let block = Arc::clone(block);
            self.local = Arc::clone(&published);
            return Some((index, block));
        }
        let block = Arc::new(build_block(mem, pc));
        let mut next: Slots = (**published).clone();
        next[index] = Some(Arc::clone(&block));
        let next = Arc::new(next);
        *published = Arc::clone(&next);
        self.local = next;
        Some((index, block))
    }

    /// The block cached in `slot`, if any, refreshing the local snapshot
    /// when the slot was published by a sibling (e.g. a block only ever
    /// reached through a chained side exit set by another thread).
    fn cached(&mut self, slot: usize) -> Option<Arc<Block>> {
        if let Some(block) = self.local.get(slot)?.as_ref() {
            return Some(Arc::clone(block));
        }
        let published = self.published.lock().expect("block cache lock");
        if !Arc::ptr_eq(&published, &self.local) {
            self.local = Arc::clone(&published);
        }
        self.local.get(slot)?.as_ref().map(Arc::clone)
    }
}

/// Runs `cpu` until halt or budget exhaustion using the block cache.
pub(crate) fn run(cpu: &mut Cpu, max_instructions: u64) -> Result<RunSummary, SimError> {
    let start_instret = cpu.instret;
    let start_cycles = cpu.cycles;
    let result = run_inner(cpu, start_instret, max_instructions);
    fold_exec_counts(cpu);
    result?;
    Ok(RunSummary {
        instructions: cpu.instret - start_instret,
        cycles: cpu.cycles - start_cycles,
    })
}

fn run_inner(cpu: &mut Cpu, _start_instret: u64, max_instructions: u64) -> Result<(), SimError> {
    // All per-instruction accounting lives in locals for the whole run and
    // is committed to the CPU exactly once on exit (including error exits),
    // so the dispatch loop does no redundant memory traffic.
    let mut executed = 0u64;
    let mut cycles = 0u64;
    let mut load_dest = cpu.pipeline.load_dest;
    let mut stalls = 0u64;
    let mut flushes = 0u64;
    // One-entry dispatch memo: loop back-edges re-enter the same trace and
    // chained side exits pre-fill it, so the common case is a single PC
    // compare instead of a cache probe.
    let mut memo: Option<(u32, usize, Arc<Block>)> = None;
    let mut fault: Option<SimError> = None;
    let chaining = cpu.chain_enabled;
    // Memory-hierarchy model: `None` for the flat (free) model, so the
    // dispatch loop pays one branch per trace execution. Under the
    // Maupiti model, every retired prefix is charged in one
    // `charge_prefix` call against the block's precomputed access
    // summary — never per instruction.
    let maupiti = match cpu.memory_model() {
        MemoryModel::Flat => None,
        MemoryModel::Maupiti(cfg) => Some(cfg),
    };
    let mut mem_state = cpu.mem_state;
    let mut mem_stats = MemStats::default();
    // Accounting state is allocated on first block-cached use, so CPUs that
    // only ever run the reference interpreter (and the pristine CPU a
    // deployment clones per inference) carry nothing to copy.
    let slots = cpu.mem.imem_size() / 4;
    if cpu.block_exit_counts.len() != slots {
        cpu.block_exit_counts = vec![Vec::new(); slots];
        cpu.touched_flags = vec![false; slots];
        cpu.block_exec_counts = vec![0; slots];
        cpu.block_instr_counts = vec![0; slots];
        cpu.block_mem_stall_counts = vec![0; slots];
    }

    // Charges the memory model for the retired prefix of the current
    // trace ([0, $n)) and attributes the stall cycles to the trace's
    // profile slot. `$exit_redirect` marks a taken side exit ending the
    // prefix. A no-op under the flat model.
    macro_rules! charge_mem {
        ($block:expr, $slot:expr, $n:expr, $exit_redirect:expr) => {
            if let Some(cfg) = &maupiti {
                let stall = mem_state.charge_prefix(
                    cfg,
                    &$block.mem_prefix,
                    &$block.redirects,
                    $n,
                    $exit_redirect,
                    &mut mem_stats,
                );
                cycles += stall;
                cpu.block_mem_stall_counts[$slot] += stall;
            }
        };
    }

    // Writes `rd`, keeping x0 hard-wired to zero without a branch.
    macro_rules! wr {
        ($d:expr, $v:expr) => {{
            // The mask elides the bounds check (register fields are < 32
            // by construction).
            cpu.regs[$d.rd as usize & 31] = $v;
            cpu.regs[0] = 0;
        }};
    }

    // Superblock chaining: resolve the (static) exit target, cache the
    // link on the exit's `Block::chain` slot, and pre-fill the dispatch
    // memo so the next iteration skips the cache probe. The hot path
    // probes the local snapshot first — a bounds-checked direct index,
    // the same cost as the unchained dispatch probe; `Weak::upgrade`
    // (a CAS loop on the refcounts) used to run on *every* chained
    // transition and measurably cost single-thread throughput
    // (`chaining_delta` 0.970 in BENCH_isa.json before this reorder).
    // The cached link now only pays its upgrade when the local snapshot
    // is stale, i.e. the target was published by a sibling CPU on
    // another thread — the case chaining exists for. A dead link (cache
    // generation gone) falls back to the ordinary build path. Shared by
    // side exits and chainable end exits (fall-through and static-JAL
    // ends).
    macro_rules! chain_to {
        ($block:expr, $ordinal:expr, $target:expr) => {{
            if let Some((next_slot, next)) = cpu.cache.get_local($target) {
                memo = Some(($target, next_slot, next));
            } else {
                let link = &$block.chain[$ordinal];
                if let Some(next) = link.get().and_then(Weak::upgrade) {
                    let next_slot = (next.entry_pc - IMEM_BASE) as usize / 4;
                    memo = Some(($target, next_slot, next));
                } else if let Some((next_slot, next)) = cpu.cache.get_or_build(&cpu.mem, $target) {
                    let _ = link.set(Arc::downgrade(&next));
                    memo = Some(($target, next_slot, next));
                }
            }
        }};
    }

    'dispatch: while !cpu.halted {
        if executed >= max_instructions {
            fault = Some(SimError::Timeout { max_instructions });
            break;
        }
        let pc = cpu.pc;
        let (slot, block) = match &memo {
            Some((memo_pc, slot, block)) if *memo_pc == pc => (*slot, Arc::clone(block)),
            _ => {
                let Some((slot, block)) = cpu.cache.get_or_build(&cpu.mem, pc) else {
                    fault = Some(SimError::BadFetch { pc });
                    break;
                };
                memo = Some((pc, slot, Arc::clone(&block)));
                (slot, block)
            }
        };
        let block = &block;
        if !cpu.touched_flags[slot] {
            cpu.touched_flags[slot] = true;
            cpu.touched_slots.push(slot);
            if cpu.block_exit_counts[slot].len() != block.exits.len() {
                cpu.block_exit_counts[slot] = vec![0; block.exits.len()];
            }
        }
        let len = block.instrs.len();
        let entry = block.entry_pc;
        let end_exit = block.exits.len() - 1;
        // Tight loops (side or end exits back to the trace entry) re-enter
        // here without another dispatch.
        loop {
            let remaining = max_instructions - executed;
            let n = if remaining < len as u64 {
                remaining as usize
            } else {
                len
            };
            let full = n == len;
            let mut ctrl_next = block.cont_pc;
            let mut mem_fault: Option<(usize, u32)> = None;
            let mut side_exit: Option<(usize, u16)> = None;
            for (i, d) in block.instrs[..n].iter().enumerate() {
                let mut cost = d.base_cycles as u64;
                let prev_load_dest = load_dest;
                let mut stall = 0u64;
                if load_dest != 0 && (d.reads_mask >> load_dest) & 1 != 0 {
                    cost += LOAD_USE_STALL;
                    stall = LOAD_USE_STALL;
                }
                load_dest = if d.is_load { d.rd } else { 0 };
                let rs1v = cpu.regs[d.rs1 as usize & 31];
                let rs2v = cpu.regs[d.rs2 as usize & 31];
                // A faulting instruction does not retire: it consumes no
                // cycles and leaves the pipeline hazard state untouched,
                // exactly like the reference interpreter.
                macro_rules! bad_addr {
                    ($addr:expr) => {{
                        load_dest = prev_load_dest;
                        mem_fault = Some((i, $addr));
                        break;
                    }};
                }
                // A taken conditional branch leaves the trace through its
                // side exit.
                macro_rules! take_exit {
                    ($target:expr) => {{
                        ctrl_next = $target;
                        cost += d.flush_on_take as u64;
                        flushes += d.flush_on_take as u64;
                        cycles += cost;
                        stalls += stall;
                        side_exit = Some((i, d.exit_ordinal));
                        break;
                    }};
                }
                match d.op {
                    Op::Addi(imm) => wr!(d, rs1v.wrapping_add(imm)),
                    Op::Add => wr!(d, rs1v.wrapping_add(rs2v)),
                    Op::Lw(off) => {
                        let addr = rs1v.wrapping_add(off);
                        match cpu.mem.load_word(addr) {
                            Some(v) => wr!(d, v),
                            None => bad_addr!(addr),
                        }
                    }
                    Op::Sw(off) => {
                        let addr = rs1v.wrapping_add(off);
                        if cpu.mem.store_word(addr, rs2v).is_none() {
                            bad_addr!(addr);
                        }
                    }
                    Op::Sdotp8 => {
                        let acc = cpu.regs[d.rd as usize & 31] as i32;
                        wr!(d, (acc + sdotp8(rs1v, rs2v)) as u32);
                    }
                    Op::Sdotp4 => {
                        let acc = cpu.regs[d.rd as usize & 31] as i32;
                        wr!(d, (acc + sdotp4(rs1v, rs2v)) as u32);
                    }
                    Op::Lui(value) => wr!(d, value),
                    Op::Auipc(value) => wr!(d, value),
                    Op::Slti(imm) => wr!(d, ((rs1v as i32) < imm) as u32),
                    Op::Sltiu(imm) => wr!(d, (rs1v < imm) as u32),
                    Op::Xori(imm) => wr!(d, rs1v ^ imm),
                    Op::Ori(imm) => wr!(d, rs1v | imm),
                    Op::Andi(imm) => wr!(d, rs1v & imm),
                    Op::Slli(sh) => wr!(d, rs1v << sh),
                    Op::Srli(sh) => wr!(d, rs1v >> sh),
                    Op::Srai(sh) => wr!(d, ((rs1v as i32) >> sh) as u32),
                    Op::Sub => wr!(d, rs1v.wrapping_sub(rs2v)),
                    Op::Sll => wr!(d, rs1v << (rs2v & 31)),
                    Op::Slt => wr!(d, ((rs1v as i32) < (rs2v as i32)) as u32),
                    Op::Sltu => wr!(d, (rs1v < rs2v) as u32),
                    Op::Xor => wr!(d, rs1v ^ rs2v),
                    Op::Srl => wr!(d, rs1v >> (rs2v & 31)),
                    Op::Sra => wr!(d, ((rs1v as i32) >> (rs2v & 31)) as u32),
                    Op::Or => wr!(d, rs1v | rs2v),
                    Op::And => wr!(d, rs1v & rs2v),
                    Op::Mul => wr!(d, rs1v.wrapping_mul(rs2v)),
                    Op::Mulh => {
                        wr!(
                            d,
                            (((rs1v as i32 as i64) * (rs2v as i32 as i64)) >> 32) as u32
                        )
                    }
                    Op::Mulhsu => {
                        wr!(
                            d,
                            (((rs1v as i32 as i64) * (rs2v as u64 as i64)) >> 32) as u32
                        )
                    }
                    Op::Mulhu => wr!(d, (((rs1v as u64) * (rs2v as u64)) >> 32) as u32),
                    Op::Div => {
                        let a = rs1v as i32;
                        let b = rs2v as i32;
                        let q = if b == 0 {
                            -1
                        } else if a == i32::MIN && b == -1 {
                            a
                        } else {
                            a / b
                        };
                        wr!(d, q as u32);
                    }
                    Op::Divu => wr!(d, rs1v.checked_div(rs2v).unwrap_or(u32::MAX)),
                    Op::Rem => {
                        let a = rs1v as i32;
                        let b = rs2v as i32;
                        let r = if b == 0 {
                            a
                        } else if a == i32::MIN && b == -1 {
                            0
                        } else {
                            a % b
                        };
                        wr!(d, r as u32);
                    }
                    Op::Remu => wr!(d, if rs2v == 0 { rs1v } else { rs1v % rs2v }),
                    Op::Lb(off) => {
                        let addr = rs1v.wrapping_add(off);
                        match cpu.mem.load_byte(addr) {
                            Some(v) => wr!(d, v as i8 as i32 as u32),
                            None => bad_addr!(addr),
                        }
                    }
                    Op::Lh(off) => {
                        let addr = rs1v.wrapping_add(off);
                        match cpu.mem.load_half(addr) {
                            Some(v) => wr!(d, v as i16 as i32 as u32),
                            None => bad_addr!(addr),
                        }
                    }
                    Op::Lbu(off) => {
                        let addr = rs1v.wrapping_add(off);
                        match cpu.mem.load_byte(addr) {
                            Some(v) => wr!(d, v as u32),
                            None => bad_addr!(addr),
                        }
                    }
                    Op::Lhu(off) => {
                        let addr = rs1v.wrapping_add(off);
                        match cpu.mem.load_half(addr) {
                            Some(v) => wr!(d, v as u32),
                            None => bad_addr!(addr),
                        }
                    }
                    Op::Sb(off) => {
                        let addr = rs1v.wrapping_add(off);
                        if cpu.mem.store_byte(addr, rs2v as u8).is_none() {
                            bad_addr!(addr);
                        }
                    }
                    Op::Sh(off) => {
                        let addr = rs1v.wrapping_add(off);
                        if cpu.mem.store_half(addr, rs2v as u16).is_none() {
                            bad_addr!(addr);
                        }
                    }
                    Op::Beq { target } => {
                        if rs1v == rs2v {
                            take_exit!(target);
                        }
                    }
                    Op::Bne { target } => {
                        if rs1v != rs2v {
                            take_exit!(target);
                        }
                    }
                    Op::Blt { target } => {
                        if (rs1v as i32) < (rs2v as i32) {
                            take_exit!(target);
                        }
                    }
                    Op::Bge { target } => {
                        if (rs1v as i32) >= (rs2v as i32) {
                            take_exit!(target);
                        }
                    }
                    Op::Bltu { target } => {
                        if rs1v < rs2v {
                            take_exit!(target);
                        }
                    }
                    Op::Bgeu { target } => {
                        if rs1v >= rs2v {
                            take_exit!(target);
                        }
                    }
                    Op::Jal { link, target } => {
                        // Unfollowed jump: always the last trace element.
                        wr!(d, link);
                        ctrl_next = target;
                        flushes += d.flush_on_take as u64;
                    }
                    Op::JalFollowed { link } => {
                        // Followed jump: the next trace element is the
                        // target instruction; only link and pay the flush.
                        wr!(d, link);
                        flushes += d.flush_on_take as u64;
                    }
                    Op::Jalr { link, offset } => {
                        let target = rs1v.wrapping_add(offset) & !1;
                        wr!(d, link);
                        ctrl_next = target;
                        flushes += d.flush_on_take as u64;
                    }
                    Op::Halt => {
                        cpu.halted = true;
                    }
                }
                cycles += cost;
                stalls += stall;
            }

            if let Some((i, addr)) = mem_fault {
                // The faulting instruction counts as issued (it was traced
                // and counted before the fault in the reference
                // interpreter) but consumes no cycles, and the PC stays on
                // it. The memory model charges only the retired prefix —
                // a faulting access never reaches the SRAM port.
                charge_mem!(block, slot, i, false);
                executed += i as u64 + 1;
                for d in &block.instrs[..=i] {
                    cpu.trace.record(d.mnemonic());
                }
                let pc = block.instrs[i].pc;
                cpu.pc = pc;
                fault = Some(SimError::BadMemoryAccess { pc, addr });
                break 'dispatch;
            }

            if let Some((i, ordinal)) = side_exit {
                executed += i as u64 + 1;
                cpu.block_exit_counts[slot][ordinal as usize] += 1;
                // The taken branch ending the prefix is itself a
                // prefetch-buffer miss.
                charge_mem!(block, slot, i + 1, true);
                // Self-loop fast path: the exit jumped back to this trace's
                // entry, so re-enter without another dispatch.
                if ctrl_next == entry && executed < max_instructions && !cpu.halted {
                    continue;
                }
                cpu.pc = ctrl_next;
                // Side-exit targets are always static.
                if chaining {
                    chain_to!(block, ordinal as usize, ctrl_next);
                }
                continue 'dispatch;
            }

            if !full {
                // Budget-capped mid-trace: the next dispatch iteration
                // raises the timeout. The retired prefix is traced directly
                // (it is not a counted exit).
                charge_mem!(block, slot, n, false);
                executed += n as u64;
                for d in &block.instrs[..n] {
                    cpu.trace.record(d.mnemonic());
                }
                cpu.pc = block.instrs[n].pc;
                continue 'dispatch;
            }

            executed += len as u64;
            cpu.block_exit_counts[slot][end_exit] += 1;
            // End-exit redirects (terminator JAL/JALR) sit in the block's
            // `redirects` summary, so no explicit exit redirect here.
            charge_mem!(block, slot, len, false);
            if ctrl_next == entry
                && executed < max_instructions
                && !cpu.halted
                && block.end == BlockEnd::Terminator
            {
                continue;
            }
            cpu.pc = ctrl_next;
            match block.end {
                BlockEnd::Terminator | BlockEnd::Fallthrough => {}
                // Deferred faults: execution reached the end of the
                // decodable region, so raise exactly what the reference
                // interpreter would raise at this PC (which `ctrl_next`
                // already points at).
                BlockEnd::BadFetch { pc } => {
                    fault = Some(SimError::BadFetch { pc });
                    break 'dispatch;
                }
                BlockEnd::Illegal { pc, word } => {
                    fault = Some(SimError::IllegalInstruction { pc, word });
                    break 'dispatch;
                }
            }
            // End-exit chaining: fall-through and static-JAL ends leave
            // for a fixed successor, so they carry a cached link exactly
            // like side exits; dynamic ends (JALR) and halts do not.
            if chaining && block.end_chainable && !cpu.halted {
                chain_to!(block, end_exit, ctrl_next);
            }
            continue 'dispatch;
        }
    }

    cpu.instret += executed;
    cpu.pipeline.stats.instructions += executed;
    cpu.cycles += cycles;
    cpu.pipeline.load_dest = load_dest;
    cpu.pipeline.stats.load_use_stalls += stalls;
    cpu.pipeline.stats.flush_cycles += flushes;
    cpu.mem_state = mem_state;
    cpu.mem_stats.accumulate(&mem_stats);
    match fault {
        None => Ok(()),
        Some(error) => Err(error),
    }
}

/// Folds per-slot, per-exit execution counts into the trace and the
/// persistent per-block profiling totals behind [`Cpu::hottest_blocks`].
fn fold_exec_counts(cpu: &mut Cpu) {
    while let Some(slot) = cpu.touched_slots.pop() {
        cpu.touched_flags[slot] = false;
        if let Some(block) = cpu.cache.cached(slot) {
            let mut execs = 0u64;
            let mut instrs = 0u64;
            for (exit, count) in block
                .exits
                .iter()
                .zip(cpu.block_exit_counts[slot].iter_mut())
            {
                if *count > 0 {
                    execs += *count;
                    instrs += *count * exit.retired as u64;
                    for &(mnemonic, per_exec) in &exit.counts {
                        cpu.trace.record_many(mnemonic, per_exec * *count);
                    }
                    *count = 0;
                }
            }
            cpu.block_exec_counts[slot] += execs;
            cpu.block_instr_counts[slot] += instrs;
        } else {
            for count in cpu.block_exit_counts[slot].iter_mut() {
                *count = 0;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::{BranchOp, Instr, LoadOp, StoreOp};
    use crate::memory::DMEM_BASE;
    use crate::reg;

    fn cpu_pair(program: &[Instr]) -> (Cpu, Cpu) {
        let mut simple = Cpu::new_default();
        simple.load_program(program).unwrap();
        let mut cached = Cpu::new_default();
        cached.set_exec_mode(ExecMode::BlockCached);
        cached.load_program(program).unwrap();
        (simple, cached)
    }

    fn assert_same_architectural_state(simple: &Cpu, cached: &Cpu) {
        for r in 0..32 {
            assert_eq!(simple.reg(r), cached.reg(r), "register x{r} diverged");
        }
        assert_eq!(simple.pc, cached.pc, "pc diverged");
        assert_eq!(simple.instret, cached.instret, "instret diverged");
        assert_eq!(simple.trace, cached.trace, "trace diverged");
        assert_eq!(simple.halted(), cached.halted(), "halt state diverged");
    }

    #[test]
    fn loop_program_matches_simple_mode_exactly() {
        let program = [
            Instr::Addi {
                rd: reg::T0,
                rs1: reg::ZERO,
                imm: 50,
            },
            Instr::Addi {
                rd: reg::A0,
                rs1: reg::ZERO,
                imm: 0,
            },
            Instr::Add {
                rd: reg::A0,
                rs1: reg::A0,
                rs2: reg::T0,
            },
            Instr::Addi {
                rd: reg::T0,
                rs1: reg::T0,
                imm: -1,
            },
            Instr::Branch {
                op: BranchOp::Bne,
                rs1: reg::T0,
                rs2: reg::ZERO,
                offset: -8,
            },
            Instr::Ebreak,
        ];
        let (mut simple, mut cached) = cpu_pair(&program);
        let rs = simple.run(100_000).unwrap();
        let rc = cached.run(100_000).unwrap();
        assert_eq!(rs.instructions, rc.instructions);
        assert_same_architectural_state(&simple, &cached);
        assert_eq!(cached.reg(reg::A0), 50 * 51 / 2);
    }

    #[test]
    fn every_alu_op_matches_simple_mode() {
        let mut program = vec![
            Instr::Addi {
                rd: reg::A0,
                rs1: reg::ZERO,
                imm: -1234,
            },
            Instr::Addi {
                rd: reg::A1,
                rs1: reg::ZERO,
                imm: 77,
            },
            Instr::Lui {
                rd: reg::A2,
                imm: 0x12345,
            },
            Instr::Auipc {
                rd: reg::A3,
                imm: 0x700,
            },
        ];
        for (rd, instr) in [
            Instr::Slti {
                rd: 0,
                rs1: reg::A0,
                imm: 5,
            },
            Instr::Sltiu {
                rd: 0,
                rs1: reg::A0,
                imm: 5,
            },
            Instr::Xori {
                rd: 0,
                rs1: reg::A0,
                imm: -3,
            },
            Instr::Ori {
                rd: 0,
                rs1: reg::A0,
                imm: 0x55,
            },
            Instr::Andi {
                rd: 0,
                rs1: reg::A0,
                imm: 0x3C,
            },
            Instr::Slli {
                rd: 0,
                rs1: reg::A0,
                shamt: 3,
            },
            Instr::Srli {
                rd: 0,
                rs1: reg::A0,
                shamt: 5,
            },
            Instr::Srai {
                rd: 0,
                rs1: reg::A0,
                shamt: 5,
            },
            Instr::Add {
                rd: 0,
                rs1: reg::A0,
                rs2: reg::A1,
            },
            Instr::Sub {
                rd: 0,
                rs1: reg::A0,
                rs2: reg::A1,
            },
            Instr::Sll {
                rd: 0,
                rs1: reg::A0,
                rs2: reg::A1,
            },
            Instr::Slt {
                rd: 0,
                rs1: reg::A0,
                rs2: reg::A1,
            },
            Instr::Sltu {
                rd: 0,
                rs1: reg::A0,
                rs2: reg::A1,
            },
            Instr::Xor {
                rd: 0,
                rs1: reg::A0,
                rs2: reg::A1,
            },
            Instr::Srl {
                rd: 0,
                rs1: reg::A0,
                rs2: reg::A1,
            },
            Instr::Sra {
                rd: 0,
                rs1: reg::A0,
                rs2: reg::A1,
            },
            Instr::Or {
                rd: 0,
                rs1: reg::A0,
                rs2: reg::A1,
            },
            Instr::And {
                rd: 0,
                rs1: reg::A0,
                rs2: reg::A1,
            },
            Instr::Mul {
                rd: 0,
                rs1: reg::A0,
                rs2: reg::A1,
            },
            Instr::Mulh {
                rd: 0,
                rs1: reg::A0,
                rs2: reg::A1,
            },
            Instr::Mulhsu {
                rd: 0,
                rs1: reg::A0,
                rs2: reg::A1,
            },
            Instr::Mulhu {
                rd: 0,
                rs1: reg::A0,
                rs2: reg::A1,
            },
            Instr::Div {
                rd: 0,
                rs1: reg::A0,
                rs2: reg::A1,
            },
            Instr::Divu {
                rd: 0,
                rs1: reg::A0,
                rs2: reg::A1,
            },
            Instr::Rem {
                rd: 0,
                rs1: reg::A0,
                rs2: reg::A1,
            },
            Instr::Remu {
                rd: 0,
                rs1: reg::A0,
                rs2: reg::A1,
            },
            Instr::Div {
                rd: 0,
                rs1: reg::A0,
                rs2: reg::ZERO,
            },
            Instr::Rem {
                rd: 0,
                rs1: reg::A0,
                rs2: reg::ZERO,
            },
            Instr::Sdotp8 {
                rd: 0,
                rs1: reg::A0,
                rs2: reg::A1,
            },
            Instr::Sdotp4 {
                rd: 0,
                rs1: reg::A0,
                rs2: reg::A1,
            },
        ]
        .into_iter()
        .enumerate()
        .map(|(i, instr)| ((8 + (i % 20)) as u8, instr))
        {
            // Rotate destinations through s/t registers so results feed
            // later inputs and divergence cannot cancel out.
            let fixed = match instr {
                Instr::Slti { rs1, imm, .. } => Instr::Slti { rd, rs1, imm },
                Instr::Sltiu { rs1, imm, .. } => Instr::Sltiu { rd, rs1, imm },
                Instr::Xori { rs1, imm, .. } => Instr::Xori { rd, rs1, imm },
                Instr::Ori { rs1, imm, .. } => Instr::Ori { rd, rs1, imm },
                Instr::Andi { rs1, imm, .. } => Instr::Andi { rd, rs1, imm },
                Instr::Slli { rs1, shamt, .. } => Instr::Slli { rd, rs1, shamt },
                Instr::Srli { rs1, shamt, .. } => Instr::Srli { rd, rs1, shamt },
                Instr::Srai { rs1, shamt, .. } => Instr::Srai { rd, rs1, shamt },
                Instr::Add { rs1, rs2, .. } => Instr::Add { rd, rs1, rs2 },
                Instr::Sub { rs1, rs2, .. } => Instr::Sub { rd, rs1, rs2 },
                Instr::Sll { rs1, rs2, .. } => Instr::Sll { rd, rs1, rs2 },
                Instr::Slt { rs1, rs2, .. } => Instr::Slt { rd, rs1, rs2 },
                Instr::Sltu { rs1, rs2, .. } => Instr::Sltu { rd, rs1, rs2 },
                Instr::Xor { rs1, rs2, .. } => Instr::Xor { rd, rs1, rs2 },
                Instr::Srl { rs1, rs2, .. } => Instr::Srl { rd, rs1, rs2 },
                Instr::Sra { rs1, rs2, .. } => Instr::Sra { rd, rs1, rs2 },
                Instr::Or { rs1, rs2, .. } => Instr::Or { rd, rs1, rs2 },
                Instr::And { rs1, rs2, .. } => Instr::And { rd, rs1, rs2 },
                Instr::Mul { rs1, rs2, .. } => Instr::Mul { rd, rs1, rs2 },
                Instr::Mulh { rs1, rs2, .. } => Instr::Mulh { rd, rs1, rs2 },
                Instr::Mulhsu { rs1, rs2, .. } => Instr::Mulhsu { rd, rs1, rs2 },
                Instr::Mulhu { rs1, rs2, .. } => Instr::Mulhu { rd, rs1, rs2 },
                Instr::Div { rs1, rs2, .. } => Instr::Div { rd, rs1, rs2 },
                Instr::Divu { rs1, rs2, .. } => Instr::Divu { rd, rs1, rs2 },
                Instr::Rem { rs1, rs2, .. } => Instr::Rem { rd, rs1, rs2 },
                Instr::Remu { rs1, rs2, .. } => Instr::Remu { rd, rs1, rs2 },
                Instr::Sdotp8 { rs1, rs2, .. } => Instr::Sdotp8 { rd, rs1, rs2 },
                Instr::Sdotp4 { rs1, rs2, .. } => Instr::Sdotp4 { rd, rs1, rs2 },
                other => other,
            };
            program.push(fixed);
        }
        program.push(Instr::Ebreak);
        let (mut simple, mut cached) = cpu_pair(&program);
        simple.run(1_000).unwrap();
        cached.run(1_000).unwrap();
        assert_same_architectural_state(&simple, &cached);
    }

    #[test]
    fn loads_and_stores_of_every_width_match_simple_mode() {
        let program = [
            Instr::Lui {
                rd: reg::A0,
                imm: (DMEM_BASE >> 12) as i32,
            },
            Instr::Addi {
                rd: reg::A1,
                rs1: reg::ZERO,
                imm: -259,
            },
            Instr::Store {
                op: StoreOp::Sw,
                rs1: reg::A0,
                rs2: reg::A1,
                offset: 0,
            },
            Instr::Store {
                op: StoreOp::Sh,
                rs1: reg::A0,
                rs2: reg::A1,
                offset: 4,
            },
            Instr::Store {
                op: StoreOp::Sb,
                rs1: reg::A0,
                rs2: reg::A1,
                offset: 6,
            },
            Instr::Load {
                op: LoadOp::Lw,
                rd: reg::A2,
                rs1: reg::A0,
                offset: 0,
            },
            Instr::Load {
                op: LoadOp::Lh,
                rd: reg::A3,
                rs1: reg::A0,
                offset: 4,
            },
            Instr::Load {
                op: LoadOp::Lhu,
                rd: reg::A4,
                rs1: reg::A0,
                offset: 4,
            },
            Instr::Load {
                op: LoadOp::Lb,
                rd: reg::A5,
                rs1: reg::A0,
                offset: 6,
            },
            Instr::Load {
                op: LoadOp::Lbu,
                rd: reg::A6,
                rs1: reg::A0,
                offset: 6,
            },
            Instr::Ebreak,
        ];
        let (mut simple, mut cached) = cpu_pair(&program);
        simple.run(100).unwrap();
        cached.run(100).unwrap();
        assert_same_architectural_state(&simple, &cached);
        assert_eq!(cached.reg(reg::A2) as i32, -259);
        assert_eq!(cached.reg(reg::A5) as i32, -3); // low byte of -259
    }

    #[test]
    fn memory_faults_match_simple_mode() {
        let program = [
            Instr::Addi {
                rd: reg::A0,
                rs1: reg::ZERO,
                imm: 5,
            },
            Instr::Store {
                op: StoreOp::Sw,
                rs1: reg::ZERO,
                rs2: reg::A0,
                offset: 0,
            },
            Instr::Ebreak,
        ];
        let (mut simple, mut cached) = cpu_pair(&program);
        let es = simple.run(10).unwrap_err();
        let ec = cached.run(10).unwrap_err();
        assert_eq!(es, ec);
        assert_same_architectural_state(&simple, &cached);
    }

    #[test]
    fn illegal_instruction_faults_match_simple_mode() {
        let mut bytes = Vec::new();
        for i in [
            Instr::Addi {
                rd: reg::A0,
                rs1: reg::ZERO,
                imm: 1,
            },
            Instr::Addi {
                rd: reg::A1,
                rs1: reg::ZERO,
                imm: 2,
            },
        ] {
            bytes.extend_from_slice(&i.encode().to_le_bytes());
        }
        bytes.extend_from_slice(&0xFFFF_FFFFu32.to_le_bytes());
        let mut simple = Cpu::new_default();
        simple.load_program_bytes(&bytes).unwrap();
        let mut cached = Cpu::new_default();
        cached.set_exec_mode(ExecMode::BlockCached);
        cached.load_program_bytes(&bytes).unwrap();
        let es = simple.run(10).unwrap_err();
        let ec = cached.run(10).unwrap_err();
        assert_eq!(es, ec);
        assert_same_architectural_state(&simple, &cached);
    }

    #[test]
    fn timeouts_match_simple_mode() {
        let program = [Instr::Jal {
            rd: reg::ZERO,
            offset: 0,
        }];
        let (mut simple, mut cached) = cpu_pair(&program);
        let es = simple.run(100).unwrap_err();
        let ec = cached.run(100).unwrap_err();
        assert_eq!(es, ec);
        assert_same_architectural_state(&simple, &cached);
    }

    #[test]
    fn mid_block_timeout_counts_instructions_exactly() {
        // A long straight-line block; the budget cuts it mid-way.
        let mut program = vec![];
        for _ in 0..20 {
            program.push(Instr::Addi {
                rd: reg::A0,
                rs1: reg::A0,
                imm: 1,
            });
        }
        program.push(Instr::Ebreak);
        let (mut simple, mut cached) = cpu_pair(&program);
        let es = simple.run(7).unwrap_err();
        let ec = cached.run(7).unwrap_err();
        assert_eq!(es, ec);
        assert_same_architectural_state(&simple, &cached);
        assert_eq!(cached.reg(reg::A0), 7);
    }

    #[test]
    fn jalr_with_rd_equal_rs1_matches_simple_mode() {
        let program = [
            Instr::Addi {
                rd: reg::T0,
                rs1: reg::ZERO,
                imm: 12,
            },
            Instr::Jalr {
                rd: reg::T0,
                rs1: reg::T0,
                offset: 0,
            },
            Instr::Ebreak, // skipped
            Instr::Ebreak,
        ];
        let (mut simple, mut cached) = cpu_pair(&program);
        simple.run(10).unwrap();
        cached.run(10).unwrap();
        assert_same_architectural_state(&simple, &cached);
        // The target (old t0 = 12) was read before the link overwrote t0.
        assert_eq!(cached.reg(reg::T0), 8);
        assert_eq!(cached.pc, 16, "jumped to old t0 = 12, then past ebreak");
    }

    #[test]
    fn load_use_hazards_add_stall_cycles_over_the_flat_model() {
        let program = [
            Instr::Lui {
                rd: reg::A0,
                imm: (DMEM_BASE >> 12) as i32,
            },
            Instr::Store {
                op: StoreOp::Sw,
                rs1: reg::A0,
                rs2: reg::A0,
                offset: 0,
            },
            Instr::Load {
                op: LoadOp::Lw,
                rd: reg::A1,
                rs1: reg::A0,
                offset: 0,
            },
            // Immediately consumes the loaded value: one interlock stall.
            Instr::Add {
                rd: reg::A2,
                rs1: reg::A1,
                rs2: reg::ZERO,
            },
            Instr::Ebreak,
        ];
        let (mut simple, mut cached) = cpu_pair(&program);
        let rs = simple.run(10).unwrap();
        let rc = cached.run(10).unwrap();
        assert_eq!(rs.instructions, rc.instructions);
        assert_eq!(rc.cycles, rs.cycles + 1, "exactly the load-use stall");
        assert_eq!(cached.pipeline_stats().load_use_stalls, 1);
        assert_same_architectural_state(&simple, &cached);
    }

    #[test]
    fn faulting_instruction_leaves_no_pipeline_residue() {
        // lw a1 <- valid; lw a2 <- *a1 where a1 holds an invalid address.
        // The second load both consumes the first load's destination (a
        // would-be stall) and faults; a faulting instruction must charge
        // no cycles, record no stall and leave the hazard state untouched.
        let program = [
            Instr::Lui {
                rd: reg::A0,
                imm: (DMEM_BASE >> 12) as i32,
            },
            Instr::Store {
                op: StoreOp::Sw,
                rs1: reg::A0,
                rs2: reg::ZERO,
                offset: 0,
            },
            Instr::Load {
                op: LoadOp::Lw,
                rd: reg::A1,
                rs1: reg::A0,
                offset: 0,
            },
            Instr::Load {
                op: LoadOp::Lw,
                rd: reg::A2,
                rs1: reg::A1,
                offset: 0,
            },
            Instr::Ebreak,
        ];
        let (mut simple, mut cached) = cpu_pair(&program);
        let es = simple.run(10).unwrap_err();
        let ec = cached.run(10).unwrap_err();
        assert_eq!(es, ec);
        assert_same_architectural_state(&simple, &cached);
        assert_eq!(
            simple.cycles, cached.cycles,
            "faulting stall must not be charged"
        );
        let stats = cached.pipeline_stats();
        assert_eq!(
            stats.load_use_stalls, 0,
            "unretired stall must not be counted"
        );
    }

    #[test]
    fn cache_is_reused_across_clones_and_invalidated_on_load() {
        let program = [
            Instr::Addi {
                rd: reg::A0,
                rs1: reg::ZERO,
                imm: 1,
            },
            Instr::Ebreak,
        ];
        let mut cpu = Cpu::new_default();
        cpu.set_exec_mode(ExecMode::BlockCached);
        cpu.load_program(&program).unwrap();
        let mut warm = cpu.clone();
        warm.run(10).unwrap();
        // The clone warmed the shared cache.
        assert_eq!(cpu.cached_blocks(), 1);
        // Loading a new image detaches and clears this CPU's cache only.
        cpu.load_program(&[Instr::Ebreak]).unwrap();
        assert_eq!(cpu.cached_blocks(), 0);
        assert_eq!(warm.cached_blocks(), 1);
    }

    #[test]
    fn run_can_resume_after_timeout() {
        let mut program = vec![];
        for _ in 0..10 {
            program.push(Instr::Addi {
                rd: reg::A0,
                rs1: reg::A0,
                imm: 1,
            });
        }
        program.push(Instr::Ebreak);
        let mut cpu = Cpu::new_default();
        cpu.set_exec_mode(ExecMode::BlockCached);
        cpu.load_program(&program).unwrap();
        assert!(cpu.run(4).is_err());
        let summary = cpu.run(100).unwrap();
        assert_eq!(cpu.reg(reg::A0), 10);
        assert_eq!(summary.instructions, 7); // 6 remaining addis + ebreak
    }

    #[test]
    fn cpu_is_send_and_sync() {
        // Compile-time property: parallel frame evaluation moves warmed
        // CPU clones across threads. The shared block cache must therefore
        // never reintroduce `Rc`/`RefCell`.
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Cpu>();
        assert_send_sync::<BlockCache>();
        assert_send_sync::<Block>();
    }

    #[test]
    fn warmed_cpu_clone_runs_on_another_thread_with_identical_results() {
        let program = [
            Instr::Addi {
                rd: reg::T0,
                rs1: reg::ZERO,
                imm: 30,
            },
            Instr::Add {
                rd: reg::A0,
                rs1: reg::A0,
                rs2: reg::T0,
            },
            Instr::Addi {
                rd: reg::T0,
                rs1: reg::T0,
                imm: -1,
            },
            Instr::Branch {
                op: BranchOp::Bne,
                rs1: reg::T0,
                rs2: reg::ZERO,
                offset: -8,
            },
            Instr::Ebreak,
        ];
        let mut base = Cpu::new_default().with_exec_mode(ExecMode::BlockCached);
        base.load_program(&program).unwrap();
        // Warm the shared cache on this thread.
        let mut warm = base.clone();
        warm.run(100_000).unwrap();
        assert!(base.cached_blocks() > 0, "warming published the blocks");
        let results: Vec<Cpu> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let mut cpu = base.clone();
                    s.spawn(move || {
                        cpu.run(100_000).unwrap();
                        cpu
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for cpu in &results {
            assert_same_architectural_state(&warm, cpu);
        }
    }

    #[test]
    fn chaining_disabled_matches_chaining_enabled_exactly() {
        // Nested loops with multiple traces, so side exits chain between
        // distinct blocks in the chained run.
        let program = [
            Instr::Addi {
                rd: reg::T0,
                rs1: reg::ZERO,
                imm: 15,
            },
            Instr::Addi {
                rd: reg::T1,
                rs1: reg::ZERO,
                imm: 9,
            },
            Instr::Addi {
                rd: reg::A0,
                rs1: reg::A0,
                imm: 1,
            },
            Instr::Addi {
                rd: reg::T1,
                rs1: reg::T1,
                imm: -1,
            },
            Instr::Branch {
                op: BranchOp::Bne,
                rs1: reg::T1,
                rs2: reg::ZERO,
                offset: -8,
            },
            Instr::Addi {
                rd: reg::T0,
                rs1: reg::T0,
                imm: -1,
            },
            Instr::Branch {
                op: BranchOp::Bne,
                rs1: reg::T0,
                rs2: reg::ZERO,
                offset: -20,
            },
            Instr::Ebreak,
        ];
        let mut chained = Cpu::new_default().with_exec_mode(ExecMode::BlockCached);
        chained.load_program(&program).unwrap();
        assert!(chained.superblock_chaining(), "chaining defaults on");
        let mut unchained = Cpu::new_default().with_exec_mode(ExecMode::BlockCached);
        unchained.set_superblock_chaining(false);
        unchained.load_program(&program).unwrap();
        let rc = chained.run(100_000).unwrap();
        let ru = unchained.run(100_000).unwrap();
        assert_eq!(rc, ru, "summaries must be identical");
        assert_same_architectural_state(&chained, &unchained);
        assert_eq!(chained.cycles, unchained.cycles);
    }

    #[test]
    fn end_exit_chaining_is_bit_identical_to_unchained_execution() {
        // One program exercising both chainable end-exit kinds:
        //  * a straight-line run longer than MAX_BLOCK_LEN, so the first
        //    trace ends with BlockEnd::Fallthrough and chains to its
        //    continuation;
        //  * a backward JAL into the trace's own entry, which ends the
        //    trace with a static unfollowed JAL that chains to the loop
        //    head.
        use crate::block::MAX_BLOCK_LEN;
        let body = MAX_BLOCK_LEN + 40; // splits into two traces
        let mut program = vec![Instr::Addi {
            rd: reg::T0,
            rs1: reg::ZERO,
            imm: 25,
        }];
        let loop_head = program.len(); // trace entry of the loop
        for _ in 0..body {
            program.push(Instr::Addi {
                rd: reg::A0,
                rs1: reg::A0,
                imm: 1,
            });
        }
        program.push(Instr::Addi {
            rd: reg::T0,
            rs1: reg::T0,
            imm: -1,
        });
        // Loop exit: skip the backward jump once t0 hits zero.
        program.push(Instr::Branch {
            op: BranchOp::Beq,
            rs1: reg::T0,
            rs2: reg::ZERO,
            offset: 8,
        });
        let jal_at = program.len();
        program.push(Instr::Jal {
            rd: reg::ZERO,
            offset: ((loop_head as i64 - jal_at as i64) * 4) as i32,
        });
        program.push(Instr::Ebreak);

        let mut simple = Cpu::new_default();
        simple.load_program(&program).unwrap();
        let mut chained = Cpu::new_default().with_exec_mode(ExecMode::BlockCached);
        chained.load_program(&program).unwrap();
        let mut unchained = Cpu::new_default().with_exec_mode(ExecMode::BlockCached);
        unchained.set_superblock_chaining(false);
        unchained.load_program(&program).unwrap();

        let budget = 200_000;
        let rs = simple.run(budget).unwrap();
        let rc = chained.run(budget).unwrap();
        let ru = unchained.run(budget).unwrap();
        assert_eq!(rc, ru, "summaries must be identical");
        assert_same_architectural_state(&chained, &unchained);
        assert_same_architectural_state(&simple, &chained);
        assert_eq!(chained.cycles, unchained.cycles, "cycles must not move");
        assert_eq!(rs.instructions, rc.instructions);
        assert_eq!(chained.reg(reg::A0), 25 * body as u32);
        // The straight-line body really did split: more than one trace.
        assert!(chained.cached_blocks() >= 2, "fallthrough split expected");
    }

    #[test]
    fn static_jal_end_exit_chains_between_distinct_traces() {
        // The entry trace runs into the loop and ends with an *unfollowed*
        // static JAL (its target is already inside the trace), whose end
        // exit chains to the loop-head trace — a distinct block, so the
        // self-loop fast path does not swallow the link. Results must be
        // bit-identical with chaining off and against the reference
        // interpreter.
        let program = [
            Instr::Addi {
                rd: reg::T0,
                rs1: reg::ZERO,
                imm: 25,
            },
            // loop head (idx 1)
            Instr::Addi {
                rd: reg::A0,
                rs1: reg::A0,
                imm: 1,
            },
            Instr::Addi {
                rd: reg::T0,
                rs1: reg::T0,
                imm: -1,
            },
            Instr::Branch {
                op: BranchOp::Beq,
                rs1: reg::T0,
                rs2: reg::ZERO,
                offset: 12,
            },
            Instr::Addi {
                rd: reg::A1,
                rs1: reg::A1,
                imm: 1,
            },
            // idx 5: backward jump to the loop head (idx 1).
            Instr::Jal {
                rd: reg::ZERO,
                offset: -16,
            },
            Instr::Ebreak,
        ];
        let (mut simple, mut chained) = cpu_pair(&program);
        let mut unchained = Cpu::new_default().with_exec_mode(ExecMode::BlockCached);
        unchained.set_superblock_chaining(false);
        unchained.load_program(&program).unwrap();
        let rs = simple.run(10_000).unwrap();
        let rc = chained.run(10_000).unwrap();
        let ru = unchained.run(10_000).unwrap();
        assert_eq!(rc, ru, "summaries must be identical");
        assert_same_architectural_state(&simple, &chained);
        assert_same_architectural_state(&chained, &unchained);
        assert_eq!(chained.cycles, unchained.cycles);
        assert_eq!(rs.instructions, rc.instructions);
        assert_eq!(chained.reg(reg::A0), 25);
        assert_eq!(chained.reg(reg::A1), 24);
        assert!(chained.cached_blocks() >= 2, "two distinct traces expected");
    }

    #[test]
    fn hottest_blocks_ranks_the_inner_loop_first() {
        let program = [
            Instr::Addi {
                rd: reg::T0,
                rs1: reg::ZERO,
                imm: 20,
            },
            Instr::Addi {
                rd: reg::T1,
                rs1: reg::ZERO,
                imm: 10,
            },
            // inner loop body at +8
            Instr::Addi {
                rd: reg::T1,
                rs1: reg::T1,
                imm: -1,
            },
            Instr::Branch {
                op: BranchOp::Bne,
                rs1: reg::T1,
                rs2: reg::ZERO,
                offset: -4,
            },
            Instr::Addi {
                rd: reg::T0,
                rs1: reg::T0,
                imm: -1,
            },
            Instr::Branch {
                op: BranchOp::Bne,
                rs1: reg::T0,
                rs2: reg::ZERO,
                offset: -16,
            },
            Instr::Ebreak,
        ];
        let mut cpu = Cpu::new_default().with_exec_mode(ExecMode::BlockCached);
        cpu.load_program(&program).unwrap();
        cpu.run(100_000).unwrap();
        let hot = cpu.hottest_blocks(10);
        assert!(!hot.is_empty());
        let total: u64 = hot.iter().map(|h| h.instructions).sum();
        assert_eq!(total, cpu.instret, "profile accounts every instruction");
        assert!(
            hot[0].executions >= 20,
            "the hottest trace is executed once per outer iteration at least"
        );
        for pair in hot.windows(2) {
            assert!(pair[0].instructions >= pair[1].instructions);
        }
        // The profile resets with the program image.
        cpu.load_program(&[Instr::Ebreak]).unwrap();
        assert!(cpu.hottest_blocks(10).is_empty());
    }

    #[test]
    fn branch_heavy_program_traces_match_simple_mode() {
        // Nested loops: inner blocks execute thousands of times, so the
        // fold-based trace accounting is exercised hard.
        let program = [
            Instr::Addi {
                rd: reg::T0,
                rs1: reg::ZERO,
                imm: 40,
            }, // outer
            Instr::Addi {
                rd: reg::T1,
                rs1: reg::ZERO,
                imm: 25,
            }, // inner
            Instr::Addi {
                rd: reg::A0,
                rs1: reg::A0,
                imm: 1,
            },
            Instr::Addi {
                rd: reg::T1,
                rs1: reg::T1,
                imm: -1,
            },
            Instr::Branch {
                op: BranchOp::Bne,
                rs1: reg::T1,
                rs2: reg::ZERO,
                offset: -8,
            },
            Instr::Addi {
                rd: reg::T0,
                rs1: reg::T0,
                imm: -1,
            },
            Instr::Branch {
                op: BranchOp::Bne,
                rs1: reg::T0,
                rs2: reg::ZERO,
                offset: -20,
            },
            Instr::Ebreak,
        ];
        let (mut simple, mut cached) = cpu_pair(&program);
        simple.run(100_000).unwrap();
        cached.run(100_000).unwrap();
        assert_same_architectural_state(&simple, &cached);
        assert_eq!(cached.reg(reg::A0), 40 * 25);
    }
}
