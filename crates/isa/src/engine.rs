//! The block-cached execution engine.
//!
//! Instead of fetching and decoding one word per [`Cpu::step`], the engine
//! decodes each superblock trace once into a dense `Vec<Decoded>`
//! ([`crate::block`]) whose elements carry fully lowered micro-ops (every
//! immediate, width and control-flow target pre-resolved), caches it keyed
//! by entry PC, and dispatches cached traces in a tight threaded loop that
//! never touches `Memory::fetch`, re-decodes a word, or updates the trace
//! map per instruction. Cycle accounting follows the pipelined IBEX timing
//! model ([`crate::pipeline`]), inlined in the dispatch loop.
//!
//! Three levels keep the dispatch overhead off the hot path:
//!
//! 1. superblocks extend through conditional branches (side exits) and
//!    unconditional jumps, so kernel loop bodies split across labels
//!    execute as one trace;
//! 2. an exit that targets its own trace entry (every tight loop)
//!    re-enters the execution loop locally, with no dispatch at all;
//! 3. a one-entry dispatch memo catches the remaining repeated entries.
//!
//! Instruction-mix accounting is O(1) per trace execution: every exit
//! carries its pre-aggregated per-mnemonic prefix counts and the CPU
//! counts (slot, exit) pairs; the counters are folded into the
//! [`crate::Trace`] when [`run`] returns (on success *and* on error), so
//! observable state is indistinguishable from the reference interpreter.
//!
//! The cache is shared (copy-on-`load_program`) between clones of a `Cpu`,
//! including clones running on other threads: decoded blocks live behind
//! `Arc` in an immutable published snapshot, each CPU probes its own
//! lock-free snapshot handle, and a mutex-guarded publish step (taken only
//! when a block is *built*) makes new blocks visible to every clone. A
//! deployment that clones a pristine CPU per inference therefore warms the
//! cache once and every later frame — on any thread — dispatches fully
//! pre-decoded code. Loading a new program image swaps in a fresh cache,
//! so clones diverging by program never see each other's blocks.
//!
//! Side exits additionally *chain*: the first taken execution of a side
//! exit resolves its (static) target trace and caches the link on the
//! block ([`Block::chain`]), so branchy code that ping-pongs between
//! traces re-enters the dispatch memo directly instead of probing the
//! cache table. [`Cpu::set_superblock_chaining`] disables this (used by
//! the throughput bench to measure the chaining delta).
//!
//! Architectural results (registers, memory, instruction counts, trace,
//! faults) are identical to [`ExecMode::Simple`] — the differential tests
//! below and the deployment tests in `pcount-kernels` hold both engines to
//! bit-exactness; only the cycle model is finer-grained (it adds load-use
//! interlock stalls the flat model cannot see). When touching instruction
//! semantics, change BOTH [`Cpu::exec_instr`] and [`run_inner`] here.

use crate::block::{build_block, Block, BlockEnd};
use crate::cpu::{sdotp4, sdotp8, Cpu, RunSummary, SimError};
use crate::instr::Op;
use crate::mem_model::{MemStats, MemoryModel};
use crate::memory::{Memory, IMEM_BASE};
use crate::pipeline::LOAD_USE_STALL;
use std::sync::{Arc, Mutex, Weak};

/// Which execution engine a [`Cpu`] uses in [`Cpu::run`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum ExecMode {
    /// Reference interpreter: fetch + decode every instruction, flat
    /// per-instruction cycle costs.
    #[default]
    Simple,
    /// Pre-decoded basic-block cache with the pipelined IBEX timing model.
    BlockCached,
}

/// One decoded-block table: direct-mapped by word index, immutable once
/// published.
type Slots = Vec<Option<Arc<Block>>>;

/// Lazily populated cache of decoded blocks, shared between CPU clones
/// across threads (see module docs).
///
/// Reads go through `local`, a lock-free snapshot handle owned by this
/// CPU. Building a block takes the `published` mutex, re-checks the latest
/// snapshot (another thread may have built the same block), publishes a
/// copy-on-write successor snapshot and refreshes `local`. The copy is
/// O(slots) but happens at most once per distinct block per program image
/// — never on the dispatch hot path. Everything here is `Send + Sync`, so
/// `Cpu` can move across threads and a warmed deployment CPU can be cloned
/// into a thread pool.
#[derive(Debug, Clone)]
pub(crate) struct BlockCache {
    /// Latest published snapshot, shared by every clone of this image.
    published: Arc<Mutex<Arc<Slots>>>,
    /// This CPU's read-only snapshot.
    local: Arc<Slots>,
}

impl BlockCache {
    /// An empty cache with one slot per instruction word.
    pub(crate) fn new(imem_bytes: usize) -> Self {
        let slots: Arc<Slots> = Arc::new(vec![None; imem_bytes / 4]);
        Self {
            published: Arc::new(Mutex::new(Arc::clone(&slots))),
            local: slots,
        }
    }

    /// Replaces the slot table with a fresh one (new program image). Other
    /// clones keep the old table.
    pub(crate) fn invalidate(&mut self, imem_bytes: usize) {
        *self = Self::new(imem_bytes);
    }

    /// Number of blocks currently published.
    pub(crate) fn len(&self) -> usize {
        self.published
            .lock()
            .expect("block cache lock")
            .iter()
            .filter(|s| s.is_some())
            .count()
    }

    /// Probes this CPU's local snapshot for the block entered at `pc`
    /// without building or touching the publish lock: a bounds-checked
    /// direct index, the cheapest possible dispatch. `None` means the
    /// local snapshot does not know the block (unmapped pc, or published
    /// only by a sibling since the last refresh).
    #[inline]
    fn get_local(&self, pc: u32) -> Option<(usize, Arc<Block>)> {
        let off = pc.checked_sub(IMEM_BASE)? as usize;
        if !off.is_multiple_of(4) {
            return None;
        }
        let index = off / 4;
        self.local
            .get(index)?
            .as_ref()
            .map(|block| (index, Arc::clone(block)))
    }

    /// Returns the slot index and block entered at `pc`, building and
    /// publishing the block on miss. `None` means `pc` cannot index
    /// instruction memory at all.
    #[inline]
    fn get_or_build(&mut self, mem: &Memory, pc: u32) -> Option<(usize, Arc<Block>)> {
        let off = pc.checked_sub(IMEM_BASE)? as usize;
        if !off.is_multiple_of(4) {
            return None;
        }
        let index = off / 4;
        match self.local.get(index)? {
            Some(block) => Some((index, Arc::clone(block))),
            None => self.build_and_publish(mem, pc, index),
        }
    }

    /// Cold path of [`BlockCache::get_or_build`]: builds the block under
    /// the publish lock (unless a sibling already did) and makes it
    /// visible to every clone.
    #[cold]
    fn build_and_publish(
        &mut self,
        mem: &Memory,
        pc: u32,
        index: usize,
    ) -> Option<(usize, Arc<Block>)> {
        let mut published = self.published.lock().expect("block cache lock");
        if let Some(block) = &published[index] {
            let block = Arc::clone(block);
            self.local = Arc::clone(&published);
            return Some((index, block));
        }
        let block = Arc::new(build_block(mem, pc));
        let mut next: Slots = (**published).clone();
        next[index] = Some(Arc::clone(&block));
        let next = Arc::new(next);
        *published = Arc::clone(&next);
        self.local = next;
        Some((index, block))
    }

    /// The block cached in `slot`, if any, refreshing the local snapshot
    /// when the slot was published by a sibling (e.g. a block only ever
    /// reached through a chained side exit set by another thread).
    fn cached(&mut self, slot: usize) -> Option<Arc<Block>> {
        if let Some(block) = self.local.get(slot)?.as_ref() {
            return Some(Arc::clone(block));
        }
        let published = self.published.lock().expect("block cache lock");
        if !Arc::ptr_eq(&published, &self.local) {
            self.local = Arc::clone(&published);
        }
        self.local.get(slot)?.as_ref().map(Arc::clone)
    }
}

/// Runs `cpu` until halt or budget exhaustion using the block cache.
pub(crate) fn run(cpu: &mut Cpu, max_instructions: u64) -> Result<RunSummary, SimError> {
    let start_instret = cpu.instret;
    let start_cycles = cpu.cycles;
    let result = run_inner(cpu, start_instret, max_instructions);
    fold_exec_counts(cpu);
    result?;
    Ok(RunSummary {
        instructions: cpu.instret - start_instret,
        cycles: cpu.cycles - start_cycles,
    })
}

fn run_inner(cpu: &mut Cpu, _start_instret: u64, max_instructions: u64) -> Result<(), SimError> {
    // All per-instruction accounting lives in locals for the whole run and
    // is committed to the CPU exactly once on exit (including error exits),
    // so the dispatch loop does no redundant memory traffic.
    let mut executed = 0u64;
    let mut cycles = 0u64;
    let mut load_dest = cpu.pipeline.load_dest;
    let mut stalls = 0u64;
    let mut flushes = 0u64;
    // One-entry dispatch memo: loop back-edges re-enter the same trace and
    // chained side exits pre-fill it, so the common case is a single PC
    // compare instead of a cache probe.
    let mut memo: Option<(u32, usize, Arc<Block>)> = None;
    let mut fault: Option<SimError> = None;
    let chaining = cpu.chain_enabled;
    let fusion = cpu.fusion_enabled;
    // Memory-hierarchy model: `None` for the flat (free) model, so the
    // dispatch loop pays one branch per trace execution. Under the
    // Maupiti model, every retired prefix is charged in one
    // `charge_prefix` call against the block's precomputed access
    // summary — never per instruction.
    let maupiti = match cpu.memory_model() {
        MemoryModel::Flat => None,
        MemoryModel::Maupiti(cfg) => Some(cfg),
    };
    let mut mem_state = cpu.mem_state;
    let mut mem_stats = MemStats::default();
    // Memory-model charge base for the current trace execution:
    // positions [0, mem_base) were already charged in bulk by a
    // mid-trace fused loop, so the segment-convention handlers charge
    // [mem_base, exit) instead of the whole prefix. Reset per dispatch
    // and per self-loop re-entry. Declared here so `charge_mem!` can see
    // it across macro hygiene.
    let mut mem_base;
    // Accounting state is allocated on first block-cached use, so CPUs that
    // only ever run the reference interpreter (and the pristine CPU a
    // deployment clones per inference) carry nothing to copy.
    let slots = cpu.mem.imem_size() / 4;
    if cpu.block_exit_counts.len() != slots {
        cpu.block_exit_counts = vec![Vec::new(); slots];
        cpu.touched_flags = vec![false; slots];
        cpu.block_exec_counts = vec![0; slots];
        cpu.block_instr_counts = vec![0; slots];
        cpu.block_mem_stall_counts = vec![0; slots];
        cpu.block_fused_entries = vec![0; slots];
        cpu.block_fused_iters = vec![0; slots];
        cpu.block_fused_cycles = vec![0; slots];
        cpu.block_fused_kind = vec![None; slots];
        cpu.block_fused_bulk = vec![crate::cpu::FusedBulk::default(); slots];
    }

    // Charges the memory model for the retired segment [mem_base, $n) of
    // the current trace execution and attributes the stall cycles to the
    // trace's profile slot. `mem_base` is 0 except after a mid-trace
    // fused loop ran, which charges everything before its final
    // iteration in bulk. `$exit_redirect` marks a taken side exit ending
    // the segment. A no-op under the flat model.
    macro_rules! charge_mem {
        ($block:expr, $slot:expr, $n:expr, $exit_redirect:expr) => {
            if let Some(cfg) = &maupiti {
                let stall = mem_state.charge_prefix(
                    cfg,
                    &$block.mem_prefix,
                    &$block.redirects,
                    mem_base,
                    $n,
                    $exit_redirect,
                    &mut mem_stats,
                );
                cycles += stall;
                cpu.block_mem_stall_counts[$slot] += stall;
            }
        };
    }

    // Writes `rd`, keeping x0 hard-wired to zero without a branch.
    macro_rules! wr {
        ($d:expr, $v:expr) => {{
            // The mask elides the bounds check (register fields are < 32
            // by construction).
            cpu.regs[$d.rd as usize & 31] = $v;
            cpu.regs[0] = 0;
        }};
    }

    // Superblock chaining: resolve the (static) exit target, cache the
    // link on the exit's `Block::chain` slot, and pre-fill the dispatch
    // memo so the next iteration skips the cache probe. The hot path
    // probes the local snapshot first — a bounds-checked direct index,
    // the same cost as the unchained dispatch probe; `Weak::upgrade`
    // (a CAS loop on the refcounts) used to run on *every* chained
    // transition and measurably cost single-thread throughput
    // (`chaining_delta` 0.970 in BENCH_isa.json before this reorder).
    // The cached link now only pays its upgrade when the local snapshot
    // is stale, i.e. the target was published by a sibling CPU on
    // another thread — the case chaining exists for. A dead link (cache
    // generation gone) falls back to the ordinary build path. Shared by
    // side exits and chainable end exits (fall-through and static-JAL
    // ends).
    macro_rules! chain_to {
        ($block:expr, $ordinal:expr, $target:expr) => {{
            if let Some((next_slot, next)) = cpu.cache.get_local($target) {
                memo = Some(($target, next_slot, next));
            } else {
                let link = &$block.chain[$ordinal];
                if let Some(next) = link.get().and_then(Weak::upgrade) {
                    let next_slot = (next.entry_pc - IMEM_BASE) as usize / 4;
                    memo = Some(($target, next_slot, next));
                } else if let Some((next_slot, next)) = cpu.cache.get_or_build(&cpu.mem, $target) {
                    let _ = link.set(Arc::downgrade(&next));
                    memo = Some(($target, next_slot, next));
                }
            }
        }};
    }

    'dispatch: while !cpu.halted {
        if executed >= max_instructions {
            fault = Some(SimError::Timeout { max_instructions });
            break;
        }
        let pc = cpu.pc;
        let (slot, block) = match &memo {
            Some((memo_pc, slot, block)) if *memo_pc == pc => (*slot, Arc::clone(block)),
            _ => {
                let Some((slot, block)) = cpu.cache.get_or_build(&cpu.mem, pc) else {
                    fault = Some(SimError::BadFetch { pc });
                    break;
                };
                memo = Some((pc, slot, Arc::clone(&block)));
                (slot, block)
            }
        };
        let block = &block;
        if !cpu.touched_flags[slot] {
            cpu.touched_flags[slot] = true;
            cpu.touched_slots.push(slot);
            if cpu.block_exit_counts[slot].len() != block.exits.len() {
                cpu.block_exit_counts[slot] = vec![0; block.exits.len()];
            }
        }
        let len = block.instrs.len();
        let entry = block.entry_pc;
        let end_exit = block.exits.len() - 1;
        // Trace position the per-instruction pass resumes from: nonzero
        // only right after a fused loop ran, so the pass continues past
        // (or, on a declined/partial run, from) the loop head.
        let mut start = 0usize;
        mem_base = 0;
        // The fused op this trace execution may run: the recognised op,
        // except that a convolution nest is swapped for its embedded
        // channel loop under the Maupiti model — the nest's bulk
        // accounting cannot reproduce the model's order-sensitive
        // per-iteration charges, while the plain loop's `charge_loop`
        // path can.
        let active_fused: Option<&crate::fusion::FusedOp> = match &block.fused {
            Some(f) if fusion => {
                if f.kind == crate::fusion::FusedKind::ConvNest && maupiti.is_some() {
                    block.fused_inner.as_ref()
                } else {
                    Some(f)
                }
            }
            _ => None,
        };
        // Macro-op fusion gets one shot per trace execution: the pass
        // pauses when it reaches the recognised loop head, the fused
        // executor runs the whole loop, and the pass resumes past it.
        let mut fused_armed = active_fused.is_some();
        // Tight loops (side or end exits back to the trace entry) re-enter
        // here without another dispatch.
        loop {
            let remaining = max_instructions - executed;
            let n = if remaining < len as u64 {
                remaining as usize
            } else {
                len
            };
            let full = n == len;
            // Pause point for macro-op fusion: stop the pass at the loop
            // head so the recognised loop can run fused.
            let stop = match active_fused {
                Some(f) if fused_armed && f.start < n => f.start,
                _ => n,
            };
            let mut ctrl_next = block.cont_pc;
            let mut mem_fault: Option<(usize, u32)> = None;
            let mut side_exit: Option<(usize, u16)> = None;
            for (i, d) in block.instrs[start..stop].iter().enumerate() {
                let i = i + start;
                let mut cost = d.base_cycles as u64;
                let prev_load_dest = load_dest;
                let mut stall = 0u64;
                if load_dest != 0 && (d.reads_mask >> load_dest) & 1 != 0 {
                    cost += LOAD_USE_STALL;
                    stall = LOAD_USE_STALL;
                }
                load_dest = if d.is_load { d.rd } else { 0 };
                let rs1v = cpu.regs[d.rs1 as usize & 31];
                let rs2v = cpu.regs[d.rs2 as usize & 31];
                // A faulting instruction does not retire: it consumes no
                // cycles and leaves the pipeline hazard state untouched,
                // exactly like the reference interpreter.
                macro_rules! bad_addr {
                    ($addr:expr) => {{
                        load_dest = prev_load_dest;
                        mem_fault = Some((i, $addr));
                        break;
                    }};
                }
                // A taken conditional branch leaves the trace through its
                // side exit.
                macro_rules! take_exit {
                    ($target:expr) => {{
                        ctrl_next = $target;
                        cost += d.flush_on_take as u64;
                        flushes += d.flush_on_take as u64;
                        cycles += cost;
                        stalls += stall;
                        side_exit = Some((i, d.exit_ordinal));
                        break;
                    }};
                }
                match d.op {
                    Op::Addi(imm) => wr!(d, rs1v.wrapping_add(imm)),
                    Op::Add => wr!(d, rs1v.wrapping_add(rs2v)),
                    Op::Lw(off) => {
                        let addr = rs1v.wrapping_add(off);
                        match cpu.mem.load_word(addr) {
                            Some(v) => wr!(d, v),
                            None => bad_addr!(addr),
                        }
                    }
                    Op::Sw(off) => {
                        let addr = rs1v.wrapping_add(off);
                        if cpu.mem.store_word(addr, rs2v).is_none() {
                            bad_addr!(addr);
                        }
                    }
                    Op::Sdotp8 => {
                        let acc = cpu.regs[d.rd as usize & 31] as i32;
                        wr!(d, (acc + sdotp8(rs1v, rs2v)) as u32);
                    }
                    Op::Sdotp4 => {
                        let acc = cpu.regs[d.rd as usize & 31] as i32;
                        wr!(d, (acc + sdotp4(rs1v, rs2v)) as u32);
                    }
                    Op::Lui(value) => wr!(d, value),
                    Op::Auipc(value) => wr!(d, value),
                    Op::Slti(imm) => wr!(d, ((rs1v as i32) < imm) as u32),
                    Op::Sltiu(imm) => wr!(d, (rs1v < imm) as u32),
                    Op::Xori(imm) => wr!(d, rs1v ^ imm),
                    Op::Ori(imm) => wr!(d, rs1v | imm),
                    Op::Andi(imm) => wr!(d, rs1v & imm),
                    Op::Slli(sh) => wr!(d, rs1v << sh),
                    Op::Srli(sh) => wr!(d, rs1v >> sh),
                    Op::Srai(sh) => wr!(d, ((rs1v as i32) >> sh) as u32),
                    Op::Sub => wr!(d, rs1v.wrapping_sub(rs2v)),
                    Op::Sll => wr!(d, rs1v << (rs2v & 31)),
                    Op::Slt => wr!(d, ((rs1v as i32) < (rs2v as i32)) as u32),
                    Op::Sltu => wr!(d, (rs1v < rs2v) as u32),
                    Op::Xor => wr!(d, rs1v ^ rs2v),
                    Op::Srl => wr!(d, rs1v >> (rs2v & 31)),
                    Op::Sra => wr!(d, ((rs1v as i32) >> (rs2v & 31)) as u32),
                    Op::Or => wr!(d, rs1v | rs2v),
                    Op::And => wr!(d, rs1v & rs2v),
                    Op::Mul => wr!(d, rs1v.wrapping_mul(rs2v)),
                    Op::Mulh => {
                        wr!(
                            d,
                            (((rs1v as i32 as i64) * (rs2v as i32 as i64)) >> 32) as u32
                        )
                    }
                    Op::Mulhsu => {
                        wr!(
                            d,
                            (((rs1v as i32 as i64) * (rs2v as u64 as i64)) >> 32) as u32
                        )
                    }
                    Op::Mulhu => wr!(d, (((rs1v as u64) * (rs2v as u64)) >> 32) as u32),
                    Op::Div => {
                        let a = rs1v as i32;
                        let b = rs2v as i32;
                        let q = if b == 0 {
                            -1
                        } else if a == i32::MIN && b == -1 {
                            a
                        } else {
                            a / b
                        };
                        wr!(d, q as u32);
                    }
                    Op::Divu => wr!(d, rs1v.checked_div(rs2v).unwrap_or(u32::MAX)),
                    Op::Rem => {
                        let a = rs1v as i32;
                        let b = rs2v as i32;
                        let r = if b == 0 {
                            a
                        } else if a == i32::MIN && b == -1 {
                            0
                        } else {
                            a % b
                        };
                        wr!(d, r as u32);
                    }
                    Op::Remu => wr!(d, if rs2v == 0 { rs1v } else { rs1v % rs2v }),
                    Op::Lb(off) => {
                        let addr = rs1v.wrapping_add(off);
                        match cpu.mem.load_byte(addr) {
                            Some(v) => wr!(d, v as i8 as i32 as u32),
                            None => bad_addr!(addr),
                        }
                    }
                    Op::Lh(off) => {
                        let addr = rs1v.wrapping_add(off);
                        match cpu.mem.load_half(addr) {
                            Some(v) => wr!(d, v as i16 as i32 as u32),
                            None => bad_addr!(addr),
                        }
                    }
                    Op::Lbu(off) => {
                        let addr = rs1v.wrapping_add(off);
                        match cpu.mem.load_byte(addr) {
                            Some(v) => wr!(d, v as u32),
                            None => bad_addr!(addr),
                        }
                    }
                    Op::Lhu(off) => {
                        let addr = rs1v.wrapping_add(off);
                        match cpu.mem.load_half(addr) {
                            Some(v) => wr!(d, v as u32),
                            None => bad_addr!(addr),
                        }
                    }
                    Op::Sb(off) => {
                        let addr = rs1v.wrapping_add(off);
                        if cpu.mem.store_byte(addr, rs2v as u8).is_none() {
                            bad_addr!(addr);
                        }
                    }
                    Op::Sh(off) => {
                        let addr = rs1v.wrapping_add(off);
                        if cpu.mem.store_half(addr, rs2v as u16).is_none() {
                            bad_addr!(addr);
                        }
                    }
                    Op::Beq { target } => {
                        if rs1v == rs2v {
                            take_exit!(target);
                        }
                    }
                    Op::Bne { target } => {
                        if rs1v != rs2v {
                            take_exit!(target);
                        }
                    }
                    Op::Blt { target } => {
                        if (rs1v as i32) < (rs2v as i32) {
                            take_exit!(target);
                        }
                    }
                    Op::Bge { target } => {
                        if (rs1v as i32) >= (rs2v as i32) {
                            take_exit!(target);
                        }
                    }
                    Op::Bltu { target } => {
                        if rs1v < rs2v {
                            take_exit!(target);
                        }
                    }
                    Op::Bgeu { target } => {
                        if rs1v >= rs2v {
                            take_exit!(target);
                        }
                    }
                    Op::Jal { link, target } => {
                        // Unfollowed jump: always the last trace element.
                        wr!(d, link);
                        ctrl_next = target;
                        flushes += d.flush_on_take as u64;
                    }
                    Op::JalFollowed { link } => {
                        // Followed jump: the next trace element is the
                        // target instruction; only link and pay the flush.
                        wr!(d, link);
                        flushes += d.flush_on_take as u64;
                    }
                    Op::Jalr { link, offset } => {
                        let target = rs1v.wrapping_add(offset) & !1;
                        wr!(d, link);
                        ctrl_next = target;
                        flushes += d.flush_on_take as u64;
                    }
                    Op::Halt => {
                        cpu.halted = true;
                    }
                }
                cycles += cost;
                stalls += stall;
            }
            // Resume offsets apply to exactly one pass; the handlers below
            // account whole prefixes from 0 by convention.
            start = 0;

            if let Some((i, addr)) = mem_fault {
                // The faulting instruction counts as issued (it was traced
                // and counted before the fault in the reference
                // interpreter) but consumes no cycles, and the PC stays on
                // it. The memory model charges only the retired prefix —
                // a faulting access never reaches the SRAM port.
                charge_mem!(block, slot, i, false);
                executed += i as u64 + 1;
                for d in &block.instrs[..=i] {
                    cpu.trace.record(d.mnemonic());
                }
                let pc = block.instrs[i].pc;
                cpu.pc = pc;
                fault = Some(SimError::BadMemoryAccess { pc, addr });
                break 'dispatch;
            }

            if let Some((i, ordinal)) = side_exit {
                executed += i as u64 + 1;
                cpu.block_exit_counts[slot][ordinal as usize] += 1;
                // The taken branch ending the prefix is itself a
                // prefetch-buffer miss.
                charge_mem!(block, slot, i + 1, true);
                // Self-loop fast path: the exit jumped back to this trace's
                // entry, so re-enter without another dispatch. The re-entry
                // is a fresh trace execution: re-arm the fused loop and
                // restart the memory-model charge range.
                if ctrl_next == entry && executed < max_instructions && !cpu.halted {
                    fused_armed = active_fused.is_some();
                    mem_base = 0;
                    continue;
                }
                cpu.pc = ctrl_next;
                // Side-exit targets are always static.
                if chaining {
                    chain_to!(block, ordinal as usize, ctrl_next);
                }
                continue 'dispatch;
            }

            // The pass paused at the head of the recognised loop: execute
            // the whole loop as one host loop and bulk-charge every cost
            // stream. The fused executor advances registers and memory
            // for `iters` iterations; taken back-edges (`taken`) are
            // accounted directly here — instret, per-mnemonic trace,
            // per-block attribution, pipeline and memory-model costs —
            // while the final fall-through iteration only has its
            // *cycles* charged here: its instret/trace/memory accounting
            // flows through the ordinary segment-convention handlers when
            // the pass resumes past the back edge. A `None` from
            // `execute` (an access would leave data memory, or no budget
            // for even one iteration) falls back to the per-instruction
            // path, which reproduces the exact fault or timeout.
            if stop < n {
                fused_armed = false;
                let f = active_fused.expect("paused only at a fused loop");
                // The convolution nest runs whole kernel-x iterations and
                // bulk-charges each one's precomputed path costs. Stopping
                // is always at an iteration boundary with the head's
                // budget share (`f.start` instructions) reserved, so the
                // per-instruction pass resumed at the head reproduces the
                // final guard exit, a mid-iteration timeout or a faulting
                // access exactly. Never reached under Maupiti (the nest
                // is swapped for its inner loop there).
                if f.kind == crate::fusion::FusedKind::ConvNest {
                    let budget = (max_instructions - executed).saturating_sub(f.start as u64);
                    let out = f.execute_nest(&mut cpu.regs, &mut cpu.mem, budget);
                    let iters = out.iters();
                    if iters > 0 {
                        let crate::fusion::FusedDetail::ConvNest(nd) = &f.detail else {
                            unreachable!("nest kind implies nest detail");
                        };
                        let instret = nd.skip_lo.instret * out.skip_lo
                            + nd.skip_hi.instret * out.skip_hi
                            + nd.full1.instret * out.full
                            + nd.extra.instret * out.inner_extra;
                        let arch_cycles = nd.skip_lo.cycles * out.skip_lo
                            + nd.skip_hi.cycles * out.skip_hi
                            + nd.full1.cycles * out.full
                            + nd.extra.cycles * out.inner_extra;
                        let stall = nd.skip_lo.stalls * out.skip_lo
                            + nd.skip_hi.stalls * out.skip_hi
                            + nd.full1.stalls * out.full
                            + nd.extra.stalls * out.inner_extra;
                        let flush = nd.skip_lo.flushes * out.skip_lo
                            + nd.skip_hi.flushes * out.skip_hi
                            + nd.full1.flushes * out.full
                            + nd.extra.flushes * out.inner_extra;
                        cycles += arch_cycles;
                        stalls += stall;
                        flushes += flush;
                        executed += instret;
                        // Every iteration ends in the closing jump, which
                        // clears the pending-load hazard state.
                        load_dest = 0;
                        cpu.block_instr_counts[slot] += instret;
                        cpu.block_exec_counts[slot] += iters;
                        let bulk = &mut cpu.block_fused_bulk[slot];
                        bulk.nest_skip_lo += out.skip_lo;
                        bulk.nest_skip_hi += out.skip_hi;
                        bulk.nest_full += out.full;
                        bulk.nest_extra += out.inner_extra;
                        cpu.block_fused_entries[slot] += 1;
                        cpu.block_fused_iters[slot] += iters;
                        cpu.block_fused_cycles[slot] += arch_cycles;
                        cpu.block_fused_kind[slot] = Some(f.kind);
                    }
                    start = f.start;
                    continue;
                }
                let avail = (max_instructions - executed).saturating_sub(f.start as u64);
                let max_iters = avail / f.body_len as u64;
                let mut resume = f.start;
                if max_iters > 0 {
                    if let Some(out) = f.execute(&mut cpu.regs, &mut cpu.mem, max_iters) {
                        let taken = if out.fell_through {
                            out.iters - 1
                        } else {
                            out.iters
                        };
                        let mut stall = f.steady_stalls * out.iters;
                        if load_dest != 0 && (f.entry_reads_mask >> load_dest) & 1 != 0 {
                            stall += LOAD_USE_STALL;
                        }
                        let arch_cycles =
                            f.base_cycles * out.iters + f.flush_on_take * taken + stall;
                        cycles += arch_cycles;
                        stalls += stall;
                        flushes += f.flush_on_take * taken;
                        // The body ends in a branch, which clears the
                        // pending-load hazard state.
                        load_dest = 0;
                        if taken > 0 {
                            executed += taken * f.body_len as u64;
                            cpu.block_instr_counts[slot] += taken * f.body_len as u64;
                            if f.start == 0 {
                                // Whole-trace self-loop: every taken back
                                // edge is one completed execution of this
                                // trace, exactly as the unfused engine
                                // counts them.
                                cpu.block_exec_counts[slot] += taken;
                            }
                            // Per-mnemonic trace counts fold lazily in
                            // `fold_exec_counts`, keeping the map out of
                            // the hot loop.
                            cpu.block_fused_bulk[slot].plain += taken;
                            if let Some(cfg) = &maupiti {
                                // Arch order: the setup segment before the
                                // loop head, then the taken iterations. The
                                // final iteration and the tail are charged
                                // by the eventual exit over [mem_base, ·).
                                charge_mem!(block, slot, f.start, false);
                                let mstall = mem_state.charge_loop(
                                    cfg,
                                    &block.mem_prefix,
                                    &block.redirects,
                                    f.start,
                                    f.start + f.body_len,
                                    taken,
                                    &mut mem_stats,
                                );
                                cycles += mstall;
                                cpu.block_mem_stall_counts[slot] += mstall;
                            }
                            mem_base = f.start;
                        }
                        cpu.block_fused_entries[slot] += 1;
                        cpu.block_fused_iters[slot] += out.iters;
                        cpu.block_fused_cycles[slot] += arch_cycles;
                        cpu.block_fused_kind[slot] = Some(f.kind);
                        if out.fell_through {
                            resume = f.start + f.body_len;
                        }
                    }
                }
                start = resume;
                continue;
            }

            if !full {
                // Budget-capped mid-trace: the next dispatch iteration
                // raises the timeout. The retired prefix is traced directly
                // (it is not a counted exit).
                charge_mem!(block, slot, n, false);
                executed += n as u64;
                for d in &block.instrs[..n] {
                    cpu.trace.record(d.mnemonic());
                }
                cpu.pc = block.instrs[n].pc;
                continue 'dispatch;
            }

            executed += len as u64;
            cpu.block_exit_counts[slot][end_exit] += 1;
            // End-exit redirects (terminator JAL/JALR) sit in the block's
            // `redirects` summary, so no explicit exit redirect here.
            charge_mem!(block, slot, len, false);
            if ctrl_next == entry
                && executed < max_instructions
                && !cpu.halted
                && block.end == BlockEnd::Terminator
            {
                // Terminator self-loop re-entry: a fresh trace execution,
                // so re-arm the fused loop and restart the charge range.
                fused_armed = active_fused.is_some();
                mem_base = 0;
                continue;
            }
            cpu.pc = ctrl_next;
            match block.end {
                BlockEnd::Terminator | BlockEnd::Fallthrough => {}
                // Deferred faults: execution reached the end of the
                // decodable region, so raise exactly what the reference
                // interpreter would raise at this PC (which `ctrl_next`
                // already points at).
                BlockEnd::BadFetch { pc } => {
                    fault = Some(SimError::BadFetch { pc });
                    break 'dispatch;
                }
                BlockEnd::Illegal { pc, word } => {
                    fault = Some(SimError::IllegalInstruction { pc, word });
                    break 'dispatch;
                }
            }
            // End-exit chaining: fall-through and static-JAL ends leave
            // for a fixed successor, so they carry a cached link exactly
            // like side exits; dynamic ends (JALR) and halts do not.
            if chaining && block.end_chainable && !cpu.halted {
                chain_to!(block, end_exit, ctrl_next);
            }
            continue 'dispatch;
        }
    }

    cpu.instret += executed;
    cpu.pipeline.stats.instructions += executed;
    cpu.cycles += cycles;
    cpu.pipeline.load_dest = load_dest;
    cpu.pipeline.stats.load_use_stalls += stalls;
    cpu.pipeline.stats.flush_cycles += flushes;
    cpu.mem_state = mem_state;
    cpu.mem_stats.accumulate(&mem_stats);
    match fault {
        None => Ok(()),
        Some(error) => Err(error),
    }
}

/// Folds per-slot, per-exit execution counts into the trace and the
/// persistent per-block profiling totals behind [`Cpu::hottest_blocks`].
fn fold_exec_counts(cpu: &mut Cpu) {
    while let Some(slot) = cpu.touched_slots.pop() {
        cpu.touched_flags[slot] = false;
        if let Some(block) = cpu.cache.cached(slot) {
            let mut execs = 0u64;
            let mut instrs = 0u64;
            for (exit, count) in block
                .exits
                .iter()
                .zip(cpu.block_exit_counts[slot].iter_mut())
            {
                if *count > 0 {
                    execs += *count;
                    instrs += *count * exit.retired as u64;
                    for &(mnemonic, per_exec) in &exit.counts {
                        cpu.trace.record_many(mnemonic, per_exec * *count);
                    }
                    *count = 0;
                }
            }
            cpu.block_exec_counts[slot] += execs;
            cpu.block_instr_counts[slot] += instrs;
            let bulk = std::mem::take(&mut cpu.block_fused_bulk[slot]);
            if bulk.plain > 0 {
                // The plain op is either the recognised op itself or, on
                // a nest block that ran under Maupiti, the nest's
                // embedded channel loop.
                let f = block
                    .fused
                    .as_ref()
                    .filter(|f| f.kind != crate::fusion::FusedKind::ConvNest)
                    .or(block.fused_inner.as_ref())
                    .expect("bulk iterations imply a fused loop");
                for d in &block.instrs[f.start..f.start + f.body_len] {
                    cpu.trace.record_many(d.mnemonic(), bulk.plain);
                }
            }
            let iters = bulk.nest_skip_lo + bulk.nest_skip_hi + bulk.nest_full;
            if iters > 0 {
                let f = block.fused.as_ref().expect("nest counts imply a nest");
                let s = f.start;
                for (j, d) in block.instrs[s..s + crate::fusion::NEST_LEN]
                    .iter()
                    .enumerate()
                {
                    // Per-position multiset of the executed paths: guards
                    // and tail run every iteration, the right guard also
                    // on full and right-skip paths, pointer setup only on
                    // full iterations, the channel loop once per full
                    // iteration plus the extra passes.
                    let count = match j {
                        0..=4 => iters,
                        5 => bulk.nest_skip_hi + bulk.nest_full,
                        6..=15 => bulk.nest_full,
                        16..=22 => bulk.nest_full + bulk.nest_extra,
                        _ => iters,
                    };
                    if count > 0 {
                        cpu.trace.record_many(d.mnemonic(), count);
                    }
                }
            }
        } else {
            for count in cpu.block_exit_counts[slot].iter_mut() {
                *count = 0;
            }
            cpu.block_fused_bulk[slot] = crate::cpu::FusedBulk::default();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::{BranchOp, Instr, LoadOp, StoreOp};
    use crate::memory::DMEM_BASE;
    use crate::reg;

    fn cpu_pair(program: &[Instr]) -> (Cpu, Cpu) {
        let mut simple = Cpu::new_default();
        simple.load_program(program).unwrap();
        let mut cached = Cpu::new_default();
        cached.set_exec_mode(ExecMode::BlockCached);
        cached.load_program(program).unwrap();
        (simple, cached)
    }

    fn assert_same_architectural_state(simple: &Cpu, cached: &Cpu) {
        for r in 0..32 {
            assert_eq!(simple.reg(r), cached.reg(r), "register x{r} diverged");
        }
        assert_eq!(simple.pc, cached.pc, "pc diverged");
        assert_eq!(simple.instret, cached.instret, "instret diverged");
        assert_eq!(simple.trace, cached.trace, "trace diverged");
        assert_eq!(simple.halted(), cached.halted(), "halt state diverged");
    }

    #[test]
    fn loop_program_matches_simple_mode_exactly() {
        let program = [
            Instr::Addi {
                rd: reg::T0,
                rs1: reg::ZERO,
                imm: 50,
            },
            Instr::Addi {
                rd: reg::A0,
                rs1: reg::ZERO,
                imm: 0,
            },
            Instr::Add {
                rd: reg::A0,
                rs1: reg::A0,
                rs2: reg::T0,
            },
            Instr::Addi {
                rd: reg::T0,
                rs1: reg::T0,
                imm: -1,
            },
            Instr::Branch {
                op: BranchOp::Bne,
                rs1: reg::T0,
                rs2: reg::ZERO,
                offset: -8,
            },
            Instr::Ebreak,
        ];
        let (mut simple, mut cached) = cpu_pair(&program);
        let rs = simple.run(100_000).unwrap();
        let rc = cached.run(100_000).unwrap();
        assert_eq!(rs.instructions, rc.instructions);
        assert_same_architectural_state(&simple, &cached);
        assert_eq!(cached.reg(reg::A0), 50 * 51 / 2);
    }

    #[test]
    fn every_alu_op_matches_simple_mode() {
        let mut program = vec![
            Instr::Addi {
                rd: reg::A0,
                rs1: reg::ZERO,
                imm: -1234,
            },
            Instr::Addi {
                rd: reg::A1,
                rs1: reg::ZERO,
                imm: 77,
            },
            Instr::Lui {
                rd: reg::A2,
                imm: 0x12345,
            },
            Instr::Auipc {
                rd: reg::A3,
                imm: 0x700,
            },
        ];
        for (rd, instr) in [
            Instr::Slti {
                rd: 0,
                rs1: reg::A0,
                imm: 5,
            },
            Instr::Sltiu {
                rd: 0,
                rs1: reg::A0,
                imm: 5,
            },
            Instr::Xori {
                rd: 0,
                rs1: reg::A0,
                imm: -3,
            },
            Instr::Ori {
                rd: 0,
                rs1: reg::A0,
                imm: 0x55,
            },
            Instr::Andi {
                rd: 0,
                rs1: reg::A0,
                imm: 0x3C,
            },
            Instr::Slli {
                rd: 0,
                rs1: reg::A0,
                shamt: 3,
            },
            Instr::Srli {
                rd: 0,
                rs1: reg::A0,
                shamt: 5,
            },
            Instr::Srai {
                rd: 0,
                rs1: reg::A0,
                shamt: 5,
            },
            Instr::Add {
                rd: 0,
                rs1: reg::A0,
                rs2: reg::A1,
            },
            Instr::Sub {
                rd: 0,
                rs1: reg::A0,
                rs2: reg::A1,
            },
            Instr::Sll {
                rd: 0,
                rs1: reg::A0,
                rs2: reg::A1,
            },
            Instr::Slt {
                rd: 0,
                rs1: reg::A0,
                rs2: reg::A1,
            },
            Instr::Sltu {
                rd: 0,
                rs1: reg::A0,
                rs2: reg::A1,
            },
            Instr::Xor {
                rd: 0,
                rs1: reg::A0,
                rs2: reg::A1,
            },
            Instr::Srl {
                rd: 0,
                rs1: reg::A0,
                rs2: reg::A1,
            },
            Instr::Sra {
                rd: 0,
                rs1: reg::A0,
                rs2: reg::A1,
            },
            Instr::Or {
                rd: 0,
                rs1: reg::A0,
                rs2: reg::A1,
            },
            Instr::And {
                rd: 0,
                rs1: reg::A0,
                rs2: reg::A1,
            },
            Instr::Mul {
                rd: 0,
                rs1: reg::A0,
                rs2: reg::A1,
            },
            Instr::Mulh {
                rd: 0,
                rs1: reg::A0,
                rs2: reg::A1,
            },
            Instr::Mulhsu {
                rd: 0,
                rs1: reg::A0,
                rs2: reg::A1,
            },
            Instr::Mulhu {
                rd: 0,
                rs1: reg::A0,
                rs2: reg::A1,
            },
            Instr::Div {
                rd: 0,
                rs1: reg::A0,
                rs2: reg::A1,
            },
            Instr::Divu {
                rd: 0,
                rs1: reg::A0,
                rs2: reg::A1,
            },
            Instr::Rem {
                rd: 0,
                rs1: reg::A0,
                rs2: reg::A1,
            },
            Instr::Remu {
                rd: 0,
                rs1: reg::A0,
                rs2: reg::A1,
            },
            Instr::Div {
                rd: 0,
                rs1: reg::A0,
                rs2: reg::ZERO,
            },
            Instr::Rem {
                rd: 0,
                rs1: reg::A0,
                rs2: reg::ZERO,
            },
            Instr::Sdotp8 {
                rd: 0,
                rs1: reg::A0,
                rs2: reg::A1,
            },
            Instr::Sdotp4 {
                rd: 0,
                rs1: reg::A0,
                rs2: reg::A1,
            },
        ]
        .into_iter()
        .enumerate()
        .map(|(i, instr)| ((8 + (i % 20)) as u8, instr))
        {
            // Rotate destinations through s/t registers so results feed
            // later inputs and divergence cannot cancel out.
            let fixed = match instr {
                Instr::Slti { rs1, imm, .. } => Instr::Slti { rd, rs1, imm },
                Instr::Sltiu { rs1, imm, .. } => Instr::Sltiu { rd, rs1, imm },
                Instr::Xori { rs1, imm, .. } => Instr::Xori { rd, rs1, imm },
                Instr::Ori { rs1, imm, .. } => Instr::Ori { rd, rs1, imm },
                Instr::Andi { rs1, imm, .. } => Instr::Andi { rd, rs1, imm },
                Instr::Slli { rs1, shamt, .. } => Instr::Slli { rd, rs1, shamt },
                Instr::Srli { rs1, shamt, .. } => Instr::Srli { rd, rs1, shamt },
                Instr::Srai { rs1, shamt, .. } => Instr::Srai { rd, rs1, shamt },
                Instr::Add { rs1, rs2, .. } => Instr::Add { rd, rs1, rs2 },
                Instr::Sub { rs1, rs2, .. } => Instr::Sub { rd, rs1, rs2 },
                Instr::Sll { rs1, rs2, .. } => Instr::Sll { rd, rs1, rs2 },
                Instr::Slt { rs1, rs2, .. } => Instr::Slt { rd, rs1, rs2 },
                Instr::Sltu { rs1, rs2, .. } => Instr::Sltu { rd, rs1, rs2 },
                Instr::Xor { rs1, rs2, .. } => Instr::Xor { rd, rs1, rs2 },
                Instr::Srl { rs1, rs2, .. } => Instr::Srl { rd, rs1, rs2 },
                Instr::Sra { rs1, rs2, .. } => Instr::Sra { rd, rs1, rs2 },
                Instr::Or { rs1, rs2, .. } => Instr::Or { rd, rs1, rs2 },
                Instr::And { rs1, rs2, .. } => Instr::And { rd, rs1, rs2 },
                Instr::Mul { rs1, rs2, .. } => Instr::Mul { rd, rs1, rs2 },
                Instr::Mulh { rs1, rs2, .. } => Instr::Mulh { rd, rs1, rs2 },
                Instr::Mulhsu { rs1, rs2, .. } => Instr::Mulhsu { rd, rs1, rs2 },
                Instr::Mulhu { rs1, rs2, .. } => Instr::Mulhu { rd, rs1, rs2 },
                Instr::Div { rs1, rs2, .. } => Instr::Div { rd, rs1, rs2 },
                Instr::Divu { rs1, rs2, .. } => Instr::Divu { rd, rs1, rs2 },
                Instr::Rem { rs1, rs2, .. } => Instr::Rem { rd, rs1, rs2 },
                Instr::Remu { rs1, rs2, .. } => Instr::Remu { rd, rs1, rs2 },
                Instr::Sdotp8 { rs1, rs2, .. } => Instr::Sdotp8 { rd, rs1, rs2 },
                Instr::Sdotp4 { rs1, rs2, .. } => Instr::Sdotp4 { rd, rs1, rs2 },
                other => other,
            };
            program.push(fixed);
        }
        program.push(Instr::Ebreak);
        let (mut simple, mut cached) = cpu_pair(&program);
        simple.run(1_000).unwrap();
        cached.run(1_000).unwrap();
        assert_same_architectural_state(&simple, &cached);
    }

    #[test]
    fn loads_and_stores_of_every_width_match_simple_mode() {
        let program = [
            Instr::Lui {
                rd: reg::A0,
                imm: (DMEM_BASE >> 12) as i32,
            },
            Instr::Addi {
                rd: reg::A1,
                rs1: reg::ZERO,
                imm: -259,
            },
            Instr::Store {
                op: StoreOp::Sw,
                rs1: reg::A0,
                rs2: reg::A1,
                offset: 0,
            },
            Instr::Store {
                op: StoreOp::Sh,
                rs1: reg::A0,
                rs2: reg::A1,
                offset: 4,
            },
            Instr::Store {
                op: StoreOp::Sb,
                rs1: reg::A0,
                rs2: reg::A1,
                offset: 6,
            },
            Instr::Load {
                op: LoadOp::Lw,
                rd: reg::A2,
                rs1: reg::A0,
                offset: 0,
            },
            Instr::Load {
                op: LoadOp::Lh,
                rd: reg::A3,
                rs1: reg::A0,
                offset: 4,
            },
            Instr::Load {
                op: LoadOp::Lhu,
                rd: reg::A4,
                rs1: reg::A0,
                offset: 4,
            },
            Instr::Load {
                op: LoadOp::Lb,
                rd: reg::A5,
                rs1: reg::A0,
                offset: 6,
            },
            Instr::Load {
                op: LoadOp::Lbu,
                rd: reg::A6,
                rs1: reg::A0,
                offset: 6,
            },
            Instr::Ebreak,
        ];
        let (mut simple, mut cached) = cpu_pair(&program);
        simple.run(100).unwrap();
        cached.run(100).unwrap();
        assert_same_architectural_state(&simple, &cached);
        assert_eq!(cached.reg(reg::A2) as i32, -259);
        assert_eq!(cached.reg(reg::A5) as i32, -3); // low byte of -259
    }

    #[test]
    fn memory_faults_match_simple_mode() {
        let program = [
            Instr::Addi {
                rd: reg::A0,
                rs1: reg::ZERO,
                imm: 5,
            },
            Instr::Store {
                op: StoreOp::Sw,
                rs1: reg::ZERO,
                rs2: reg::A0,
                offset: 0,
            },
            Instr::Ebreak,
        ];
        let (mut simple, mut cached) = cpu_pair(&program);
        let es = simple.run(10).unwrap_err();
        let ec = cached.run(10).unwrap_err();
        assert_eq!(es, ec);
        assert_same_architectural_state(&simple, &cached);
    }

    #[test]
    fn illegal_instruction_faults_match_simple_mode() {
        let mut bytes = Vec::new();
        for i in [
            Instr::Addi {
                rd: reg::A0,
                rs1: reg::ZERO,
                imm: 1,
            },
            Instr::Addi {
                rd: reg::A1,
                rs1: reg::ZERO,
                imm: 2,
            },
        ] {
            bytes.extend_from_slice(&i.encode().to_le_bytes());
        }
        bytes.extend_from_slice(&0xFFFF_FFFFu32.to_le_bytes());
        let mut simple = Cpu::new_default();
        simple.load_program_bytes(&bytes).unwrap();
        let mut cached = Cpu::new_default();
        cached.set_exec_mode(ExecMode::BlockCached);
        cached.load_program_bytes(&bytes).unwrap();
        let es = simple.run(10).unwrap_err();
        let ec = cached.run(10).unwrap_err();
        assert_eq!(es, ec);
        assert_same_architectural_state(&simple, &cached);
    }

    #[test]
    fn timeouts_match_simple_mode() {
        let program = [Instr::Jal {
            rd: reg::ZERO,
            offset: 0,
        }];
        let (mut simple, mut cached) = cpu_pair(&program);
        let es = simple.run(100).unwrap_err();
        let ec = cached.run(100).unwrap_err();
        assert_eq!(es, ec);
        assert_same_architectural_state(&simple, &cached);
    }

    #[test]
    fn mid_block_timeout_counts_instructions_exactly() {
        // A long straight-line block; the budget cuts it mid-way.
        let mut program = vec![];
        for _ in 0..20 {
            program.push(Instr::Addi {
                rd: reg::A0,
                rs1: reg::A0,
                imm: 1,
            });
        }
        program.push(Instr::Ebreak);
        let (mut simple, mut cached) = cpu_pair(&program);
        let es = simple.run(7).unwrap_err();
        let ec = cached.run(7).unwrap_err();
        assert_eq!(es, ec);
        assert_same_architectural_state(&simple, &cached);
        assert_eq!(cached.reg(reg::A0), 7);
    }

    #[test]
    fn jalr_with_rd_equal_rs1_matches_simple_mode() {
        let program = [
            Instr::Addi {
                rd: reg::T0,
                rs1: reg::ZERO,
                imm: 12,
            },
            Instr::Jalr {
                rd: reg::T0,
                rs1: reg::T0,
                offset: 0,
            },
            Instr::Ebreak, // skipped
            Instr::Ebreak,
        ];
        let (mut simple, mut cached) = cpu_pair(&program);
        simple.run(10).unwrap();
        cached.run(10).unwrap();
        assert_same_architectural_state(&simple, &cached);
        // The target (old t0 = 12) was read before the link overwrote t0.
        assert_eq!(cached.reg(reg::T0), 8);
        assert_eq!(cached.pc, 16, "jumped to old t0 = 12, then past ebreak");
    }

    #[test]
    fn load_use_hazards_add_stall_cycles_over_the_flat_model() {
        let program = [
            Instr::Lui {
                rd: reg::A0,
                imm: (DMEM_BASE >> 12) as i32,
            },
            Instr::Store {
                op: StoreOp::Sw,
                rs1: reg::A0,
                rs2: reg::A0,
                offset: 0,
            },
            Instr::Load {
                op: LoadOp::Lw,
                rd: reg::A1,
                rs1: reg::A0,
                offset: 0,
            },
            // Immediately consumes the loaded value: one interlock stall.
            Instr::Add {
                rd: reg::A2,
                rs1: reg::A1,
                rs2: reg::ZERO,
            },
            Instr::Ebreak,
        ];
        let (mut simple, mut cached) = cpu_pair(&program);
        let rs = simple.run(10).unwrap();
        let rc = cached.run(10).unwrap();
        assert_eq!(rs.instructions, rc.instructions);
        assert_eq!(rc.cycles, rs.cycles + 1, "exactly the load-use stall");
        assert_eq!(cached.pipeline_stats().load_use_stalls, 1);
        assert_same_architectural_state(&simple, &cached);
    }

    #[test]
    fn faulting_instruction_leaves_no_pipeline_residue() {
        // lw a1 <- valid; lw a2 <- *a1 where a1 holds an invalid address.
        // The second load both consumes the first load's destination (a
        // would-be stall) and faults; a faulting instruction must charge
        // no cycles, record no stall and leave the hazard state untouched.
        let program = [
            Instr::Lui {
                rd: reg::A0,
                imm: (DMEM_BASE >> 12) as i32,
            },
            Instr::Store {
                op: StoreOp::Sw,
                rs1: reg::A0,
                rs2: reg::ZERO,
                offset: 0,
            },
            Instr::Load {
                op: LoadOp::Lw,
                rd: reg::A1,
                rs1: reg::A0,
                offset: 0,
            },
            Instr::Load {
                op: LoadOp::Lw,
                rd: reg::A2,
                rs1: reg::A1,
                offset: 0,
            },
            Instr::Ebreak,
        ];
        let (mut simple, mut cached) = cpu_pair(&program);
        let es = simple.run(10).unwrap_err();
        let ec = cached.run(10).unwrap_err();
        assert_eq!(es, ec);
        assert_same_architectural_state(&simple, &cached);
        assert_eq!(
            simple.cycles, cached.cycles,
            "faulting stall must not be charged"
        );
        let stats = cached.pipeline_stats();
        assert_eq!(
            stats.load_use_stalls, 0,
            "unretired stall must not be counted"
        );
    }

    #[test]
    fn cache_is_reused_across_clones_and_invalidated_on_load() {
        let program = [
            Instr::Addi {
                rd: reg::A0,
                rs1: reg::ZERO,
                imm: 1,
            },
            Instr::Ebreak,
        ];
        let mut cpu = Cpu::new_default();
        cpu.set_exec_mode(ExecMode::BlockCached);
        cpu.load_program(&program).unwrap();
        let mut warm = cpu.clone();
        warm.run(10).unwrap();
        // The clone warmed the shared cache.
        assert_eq!(cpu.cached_blocks(), 1);
        // Loading a new image detaches and clears this CPU's cache only.
        cpu.load_program(&[Instr::Ebreak]).unwrap();
        assert_eq!(cpu.cached_blocks(), 0);
        assert_eq!(warm.cached_blocks(), 1);
    }

    #[test]
    fn run_can_resume_after_timeout() {
        let mut program = vec![];
        for _ in 0..10 {
            program.push(Instr::Addi {
                rd: reg::A0,
                rs1: reg::A0,
                imm: 1,
            });
        }
        program.push(Instr::Ebreak);
        let mut cpu = Cpu::new_default();
        cpu.set_exec_mode(ExecMode::BlockCached);
        cpu.load_program(&program).unwrap();
        assert!(cpu.run(4).is_err());
        let summary = cpu.run(100).unwrap();
        assert_eq!(cpu.reg(reg::A0), 10);
        assert_eq!(summary.instructions, 7); // 6 remaining addis + ebreak
    }

    #[test]
    fn cpu_is_send_and_sync() {
        // Compile-time property: parallel frame evaluation moves warmed
        // CPU clones across threads. The shared block cache must therefore
        // never reintroduce `Rc`/`RefCell`.
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Cpu>();
        assert_send_sync::<BlockCache>();
        assert_send_sync::<Block>();
    }

    #[test]
    fn warmed_cpu_clone_runs_on_another_thread_with_identical_results() {
        let program = [
            Instr::Addi {
                rd: reg::T0,
                rs1: reg::ZERO,
                imm: 30,
            },
            Instr::Add {
                rd: reg::A0,
                rs1: reg::A0,
                rs2: reg::T0,
            },
            Instr::Addi {
                rd: reg::T0,
                rs1: reg::T0,
                imm: -1,
            },
            Instr::Branch {
                op: BranchOp::Bne,
                rs1: reg::T0,
                rs2: reg::ZERO,
                offset: -8,
            },
            Instr::Ebreak,
        ];
        let mut base = Cpu::new_default().with_exec_mode(ExecMode::BlockCached);
        base.load_program(&program).unwrap();
        // Warm the shared cache on this thread.
        let mut warm = base.clone();
        warm.run(100_000).unwrap();
        assert!(base.cached_blocks() > 0, "warming published the blocks");
        let results: Vec<Cpu> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let mut cpu = base.clone();
                    s.spawn(move || {
                        cpu.run(100_000).unwrap();
                        cpu
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for cpu in &results {
            assert_same_architectural_state(&warm, cpu);
        }
    }

    #[test]
    fn chaining_disabled_matches_chaining_enabled_exactly() {
        // Nested loops with multiple traces, so side exits chain between
        // distinct blocks in the chained run.
        let program = [
            Instr::Addi {
                rd: reg::T0,
                rs1: reg::ZERO,
                imm: 15,
            },
            Instr::Addi {
                rd: reg::T1,
                rs1: reg::ZERO,
                imm: 9,
            },
            Instr::Addi {
                rd: reg::A0,
                rs1: reg::A0,
                imm: 1,
            },
            Instr::Addi {
                rd: reg::T1,
                rs1: reg::T1,
                imm: -1,
            },
            Instr::Branch {
                op: BranchOp::Bne,
                rs1: reg::T1,
                rs2: reg::ZERO,
                offset: -8,
            },
            Instr::Addi {
                rd: reg::T0,
                rs1: reg::T0,
                imm: -1,
            },
            Instr::Branch {
                op: BranchOp::Bne,
                rs1: reg::T0,
                rs2: reg::ZERO,
                offset: -20,
            },
            Instr::Ebreak,
        ];
        let mut chained = Cpu::new_default().with_exec_mode(ExecMode::BlockCached);
        chained.load_program(&program).unwrap();
        assert!(chained.superblock_chaining(), "chaining defaults on");
        let mut unchained = Cpu::new_default().with_exec_mode(ExecMode::BlockCached);
        unchained.set_superblock_chaining(false);
        unchained.load_program(&program).unwrap();
        let rc = chained.run(100_000).unwrap();
        let ru = unchained.run(100_000).unwrap();
        assert_eq!(rc, ru, "summaries must be identical");
        assert_same_architectural_state(&chained, &unchained);
        assert_eq!(chained.cycles, unchained.cycles);
    }

    #[test]
    fn end_exit_chaining_is_bit_identical_to_unchained_execution() {
        // One program exercising both chainable end-exit kinds:
        //  * a straight-line run longer than MAX_BLOCK_LEN, so the first
        //    trace ends with BlockEnd::Fallthrough and chains to its
        //    continuation;
        //  * a backward JAL into the trace's own entry, which ends the
        //    trace with a static unfollowed JAL that chains to the loop
        //    head.
        use crate::block::MAX_BLOCK_LEN;
        let body = MAX_BLOCK_LEN + 40; // splits into two traces
        let mut program = vec![Instr::Addi {
            rd: reg::T0,
            rs1: reg::ZERO,
            imm: 25,
        }];
        let loop_head = program.len(); // trace entry of the loop
        for _ in 0..body {
            program.push(Instr::Addi {
                rd: reg::A0,
                rs1: reg::A0,
                imm: 1,
            });
        }
        program.push(Instr::Addi {
            rd: reg::T0,
            rs1: reg::T0,
            imm: -1,
        });
        // Loop exit: skip the backward jump once t0 hits zero.
        program.push(Instr::Branch {
            op: BranchOp::Beq,
            rs1: reg::T0,
            rs2: reg::ZERO,
            offset: 8,
        });
        let jal_at = program.len();
        program.push(Instr::Jal {
            rd: reg::ZERO,
            offset: ((loop_head as i64 - jal_at as i64) * 4) as i32,
        });
        program.push(Instr::Ebreak);

        let mut simple = Cpu::new_default();
        simple.load_program(&program).unwrap();
        let mut chained = Cpu::new_default().with_exec_mode(ExecMode::BlockCached);
        chained.load_program(&program).unwrap();
        let mut unchained = Cpu::new_default().with_exec_mode(ExecMode::BlockCached);
        unchained.set_superblock_chaining(false);
        unchained.load_program(&program).unwrap();

        let budget = 200_000;
        let rs = simple.run(budget).unwrap();
        let rc = chained.run(budget).unwrap();
        let ru = unchained.run(budget).unwrap();
        assert_eq!(rc, ru, "summaries must be identical");
        assert_same_architectural_state(&chained, &unchained);
        assert_same_architectural_state(&simple, &chained);
        assert_eq!(chained.cycles, unchained.cycles, "cycles must not move");
        assert_eq!(rs.instructions, rc.instructions);
        assert_eq!(chained.reg(reg::A0), 25 * body as u32);
        // The straight-line body really did split: more than one trace.
        assert!(chained.cached_blocks() >= 2, "fallthrough split expected");
    }

    #[test]
    fn static_jal_end_exit_chains_between_distinct_traces() {
        // The entry trace runs into the loop and ends with an *unfollowed*
        // static JAL (its target is already inside the trace), whose end
        // exit chains to the loop-head trace — a distinct block, so the
        // self-loop fast path does not swallow the link. Results must be
        // bit-identical with chaining off and against the reference
        // interpreter.
        let program = [
            Instr::Addi {
                rd: reg::T0,
                rs1: reg::ZERO,
                imm: 25,
            },
            // loop head (idx 1)
            Instr::Addi {
                rd: reg::A0,
                rs1: reg::A0,
                imm: 1,
            },
            Instr::Addi {
                rd: reg::T0,
                rs1: reg::T0,
                imm: -1,
            },
            Instr::Branch {
                op: BranchOp::Beq,
                rs1: reg::T0,
                rs2: reg::ZERO,
                offset: 12,
            },
            Instr::Addi {
                rd: reg::A1,
                rs1: reg::A1,
                imm: 1,
            },
            // idx 5: backward jump to the loop head (idx 1).
            Instr::Jal {
                rd: reg::ZERO,
                offset: -16,
            },
            Instr::Ebreak,
        ];
        let (mut simple, mut chained) = cpu_pair(&program);
        let mut unchained = Cpu::new_default().with_exec_mode(ExecMode::BlockCached);
        unchained.set_superblock_chaining(false);
        unchained.load_program(&program).unwrap();
        let rs = simple.run(10_000).unwrap();
        let rc = chained.run(10_000).unwrap();
        let ru = unchained.run(10_000).unwrap();
        assert_eq!(rc, ru, "summaries must be identical");
        assert_same_architectural_state(&simple, &chained);
        assert_same_architectural_state(&chained, &unchained);
        assert_eq!(chained.cycles, unchained.cycles);
        assert_eq!(rs.instructions, rc.instructions);
        assert_eq!(chained.reg(reg::A0), 25);
        assert_eq!(chained.reg(reg::A1), 24);
        assert!(chained.cached_blocks() >= 2, "two distinct traces expected");
    }

    #[test]
    fn hottest_blocks_ranks_the_inner_loop_first() {
        let program = [
            Instr::Addi {
                rd: reg::T0,
                rs1: reg::ZERO,
                imm: 20,
            },
            Instr::Addi {
                rd: reg::T1,
                rs1: reg::ZERO,
                imm: 10,
            },
            // inner loop body at +8
            Instr::Addi {
                rd: reg::T1,
                rs1: reg::T1,
                imm: -1,
            },
            Instr::Branch {
                op: BranchOp::Bne,
                rs1: reg::T1,
                rs2: reg::ZERO,
                offset: -4,
            },
            Instr::Addi {
                rd: reg::T0,
                rs1: reg::T0,
                imm: -1,
            },
            Instr::Branch {
                op: BranchOp::Bne,
                rs1: reg::T0,
                rs2: reg::ZERO,
                offset: -16,
            },
            Instr::Ebreak,
        ];
        let mut cpu = Cpu::new_default().with_exec_mode(ExecMode::BlockCached);
        cpu.load_program(&program).unwrap();
        cpu.run(100_000).unwrap();
        let hot = cpu.hottest_blocks(10);
        assert!(!hot.is_empty());
        let total: u64 = hot.iter().map(|h| h.instructions).sum();
        assert_eq!(total, cpu.instret, "profile accounts every instruction");
        assert!(
            hot[0].executions >= 20,
            "the hottest trace is executed once per outer iteration at least"
        );
        for pair in hot.windows(2) {
            assert!(pair[0].instructions >= pair[1].instructions);
        }
        // The profile resets with the program image.
        cpu.load_program(&[Instr::Ebreak]).unwrap();
        assert!(cpu.hottest_blocks(10).is_empty());
    }

    #[test]
    fn branch_heavy_program_traces_match_simple_mode() {
        // Nested loops: inner blocks execute thousands of times, so the
        // fold-based trace accounting is exercised hard.
        let program = [
            Instr::Addi {
                rd: reg::T0,
                rs1: reg::ZERO,
                imm: 40,
            }, // outer
            Instr::Addi {
                rd: reg::T1,
                rs1: reg::ZERO,
                imm: 25,
            }, // inner
            Instr::Addi {
                rd: reg::A0,
                rs1: reg::A0,
                imm: 1,
            },
            Instr::Addi {
                rd: reg::T1,
                rs1: reg::T1,
                imm: -1,
            },
            Instr::Branch {
                op: BranchOp::Bne,
                rs1: reg::T1,
                rs2: reg::ZERO,
                offset: -8,
            },
            Instr::Addi {
                rd: reg::T0,
                rs1: reg::T0,
                imm: -1,
            },
            Instr::Branch {
                op: BranchOp::Bne,
                rs1: reg::T0,
                rs2: reg::ZERO,
                offset: -20,
            },
            Instr::Ebreak,
        ];
        let (mut simple, mut cached) = cpu_pair(&program);
        simple.run(100_000).unwrap();
        cached.run(100_000).unwrap();
        assert_same_architectural_state(&simple, &cached);
        assert_eq!(cached.reg(reg::A0), 40 * 25);
    }

    // ---- macro-op fusion differential tests -------------------------

    use crate::mem_model::MemoryModel;

    /// Runs `program` on three CPUs — the Simple reference, BlockCached
    /// with fusion off and BlockCached with fusion on — under the same
    /// instruction budget and memory model, and asserts that the fused
    /// engine is bit-identical to both: architectural state and instret
    /// against Simple, plus cycles, stall breakdowns, memory-model stats
    /// and the full data image against the unfused block engine. Returns
    /// `(unfused, fused)` for extra per-test assertions.
    fn assert_fusion_parity(
        program: &[Instr],
        budget: u64,
        model: MemoryModel,
        setup: &dyn Fn(&mut Cpu),
    ) -> (Cpu, Cpu) {
        let mut simple = Cpu::new_default();
        simple.set_memory_model(model);
        simple.load_program(program).unwrap();
        setup(&mut simple);
        let rs = simple.run(budget);

        let run_cached = |fusion: bool| {
            let mut cpu = Cpu::new_default();
            cpu.set_exec_mode(ExecMode::BlockCached);
            cpu.set_macro_fusion(fusion);
            cpu.set_memory_model(model);
            cpu.load_program(program).unwrap();
            setup(&mut cpu);
            let r = cpu.run(budget);
            (cpu, r)
        };
        let (unfused, ru) = run_cached(false);
        let (fused, rf) = run_cached(true);

        assert_eq!(ru, rf, "run outcome diverged fused vs unfused");
        assert_eq!(
            rs.as_ref().err(),
            rf.as_ref().err(),
            "fault behaviour diverged fused vs Simple"
        );
        if let (Ok(s), Ok(f)) = (&rs, &rf) {
            assert_eq!(s.instructions, f.instructions);
        }
        assert_same_architectural_state(&simple, &fused);
        for r in 0..32 {
            assert_eq!(unfused.reg(r), fused.reg(r), "register x{r} diverged");
        }
        assert_eq!(unfused.pc, fused.pc, "pc diverged");
        assert_eq!(unfused.instret, fused.instret, "instret diverged");
        assert_eq!(unfused.cycles, fused.cycles, "cycles diverged");
        assert_eq!(unfused.trace, fused.trace, "trace diverged");
        assert_eq!(unfused.halted(), fused.halted());
        assert_eq!(
            unfused.pipeline.stats, fused.pipeline.stats,
            "pipeline stall breakdown diverged"
        );
        assert_eq!(unfused.mem_stats, fused.mem_stats, "memory stats diverged");
        let len = fused.mem.dmem_size();
        assert_eq!(
            simple.mem.read_dmem(DMEM_BASE, len),
            fused.mem.read_dmem(DMEM_BASE, len),
            "data memory diverged fused vs Simple"
        );
        assert_eq!(
            unfused.mem.read_dmem(DMEM_BASE, len),
            fused.mem.read_dmem(DMEM_BASE, len),
            "data memory diverged fused vs unfused"
        );
        (unfused, fused)
    }

    /// `lui rd, 0x100` materialises `DMEM_BASE`; adding `extra` offsets
    /// into the data image.
    fn li_dmem(rd: u8, extra: i32) -> [Instr; 2] {
        [
            Instr::Lui { rd, imm: 0x100 },
            Instr::Addi {
                rd,
                rs1: rd,
                imm: extra,
            },
        ]
    }

    /// The SDOTP channel-loop idiom emitted by the kernel code
    /// generator, preceded by pointer/counter setup.
    fn mac_program(four_bit: bool, count: i32) -> Vec<Instr> {
        let sdotp = if four_bit {
            Instr::Sdotp4 {
                rd: reg::S7,
                rs1: reg::T4,
                rs2: reg::T5,
            }
        } else {
            Instr::Sdotp8 {
                rd: reg::S7,
                rs1: reg::T4,
                rs2: reg::T5,
            }
        };
        let mut p = Vec::new();
        p.extend(li_dmem(reg::T1, 0));
        p.extend(li_dmem(reg::T2, 512));
        p.push(Instr::Addi {
            rd: reg::T3,
            rs1: reg::ZERO,
            imm: count,
        });
        p.push(Instr::Addi {
            rd: reg::S7,
            rs1: reg::ZERO,
            imm: 7,
        });
        p.extend([
            Instr::Load {
                op: LoadOp::Lw,
                rd: reg::T4,
                rs1: reg::T1,
                offset: 0,
            },
            Instr::Load {
                op: LoadOp::Lw,
                rd: reg::T5,
                rs1: reg::T2,
                offset: 0,
            },
            sdotp,
            Instr::Addi {
                rd: reg::T1,
                rs1: reg::T1,
                imm: 4,
            },
            Instr::Addi {
                rd: reg::T2,
                rs1: reg::T2,
                imm: 4,
            },
            Instr::Addi {
                rd: reg::T3,
                rs1: reg::T3,
                imm: -1,
            },
            Instr::Branch {
                op: BranchOp::Bne,
                rs1: reg::T3,
                rs2: reg::ZERO,
                offset: -24,
            },
            Instr::Ebreak,
        ]);
        p
    }

    fn fill_dmem(cpu: &mut Cpu) {
        let bytes: Vec<u8> = (0..1024u32)
            .map(|i| (i.wrapping_mul(37) >> 2) as u8)
            .collect();
        cpu.mem.write_dmem(DMEM_BASE, &bytes);
    }

    #[test]
    fn fused_mac_loops_match_unfused_and_simple_bit_for_bit() {
        for four_bit in [false, true] {
            for model in [MemoryModel::Flat, MemoryModel::maupiti()] {
                let (unfused, fused) =
                    assert_fusion_parity(&mac_program(four_bit, 60), 100_000, model, &fill_dmem);
                assert_eq!(unfused.fusion_profile(), &[]);
                let profile = fused.fusion_profile();
                let want = if four_bit { "mac_sdotp4" } else { "mac_sdotp8" };
                assert_eq!(profile.len(), 1);
                assert_eq!(profile[0].0, want);
                // The loop body sits behind the setup code inside the
                // prologue trace; mid-trace recognition fuses it there,
                // so every iteration executes through the fused path.
                assert_eq!(profile[0].2, 60);
            }
        }
    }

    #[test]
    fn fused_memset_variants_match_bit_for_bit() {
        for (store, stride, count) in [
            (StoreOp::Sb, 1, 100),
            (StoreOp::Sh, 2, 50),
            (StoreOp::Sw, 4, 25),
            (StoreOp::Sb, 5, 30),  // strided fill
            (StoreOp::Sw, -4, 20), // descending fill
        ] {
            let mut p = Vec::new();
            p.extend(li_dmem(reg::T1, 256));
            p.push(Instr::Addi {
                rd: reg::T3,
                rs1: reg::ZERO,
                imm: count,
            });
            p.push(Instr::Addi {
                rd: reg::A0,
                rs1: reg::ZERO,
                imm: 0x5A,
            });
            p.extend([
                Instr::Store {
                    op: store,
                    rs1: reg::T1,
                    rs2: reg::A0,
                    offset: 0,
                },
                Instr::Addi {
                    rd: reg::T1,
                    rs1: reg::T1,
                    imm: stride,
                },
                Instr::Addi {
                    rd: reg::T3,
                    rs1: reg::T3,
                    imm: -1,
                },
                Instr::Branch {
                    op: BranchOp::Bne,
                    rs1: reg::T3,
                    rs2: reg::ZERO,
                    offset: -12,
                },
                Instr::Ebreak,
            ]);
            let (_, fused) = assert_fusion_parity(&p, 100_000, MemoryModel::Flat, &fill_dmem);
            assert_eq!(fused.fusion_profile()[0].0, "memset");
        }
    }

    fn copy_program(load: LoadOp, store: StoreOp, ss: i32, ds: i32, count: i32) -> Vec<Instr> {
        let mut p = Vec::new();
        p.extend(li_dmem(reg::T1, 0));
        p.extend(li_dmem(reg::T2, 600));
        p.push(Instr::Addi {
            rd: reg::T3,
            rs1: reg::ZERO,
            imm: count,
        });
        p.extend([
            Instr::Load {
                op: load,
                rd: reg::T4,
                rs1: reg::T1,
                offset: 0,
            },
            Instr::Store {
                op: store,
                rs1: reg::T2,
                rs2: reg::T4,
                offset: 0,
            },
            Instr::Addi {
                rd: reg::T1,
                rs1: reg::T1,
                imm: ss,
            },
            Instr::Addi {
                rd: reg::T2,
                rs1: reg::T2,
                imm: ds,
            },
            Instr::Addi {
                rd: reg::T3,
                rs1: reg::T3,
                imm: -1,
            },
            Instr::Branch {
                op: BranchOp::Bne,
                rs1: reg::T3,
                rs2: reg::ZERO,
                offset: -20,
            },
            Instr::Ebreak,
        ]);
        p
    }

    #[test]
    fn fused_copy_variants_match_bit_for_bit() {
        for (load, store, ss, ds, count, kind) in [
            (LoadOp::Lw, StoreOp::Sw, 4, 4, 64, "memcpy"),
            (LoadOp::Lbu, StoreOp::Sb, 1, 1, 200, "memcpy"),
            (LoadOp::Lb, StoreOp::Sb, 9, 1, 40, "strided_copy"), // im2col gather
            (LoadOp::Lh, StoreOp::Sh, 16, 2, 30, "strided_copy"),
            (LoadOp::Lhu, StoreOp::Sw, 2, 4, 30, "strided_copy"), // widening copy
        ] {
            let p = copy_program(load, store, ss, ds, count);
            for model in [MemoryModel::Flat, MemoryModel::maupiti()] {
                let (_, fused) = assert_fusion_parity(&p, 100_000, model, &fill_dmem);
                assert_eq!(fused.fusion_profile()[0].0, kind);
            }
        }
    }

    #[test]
    fn overlapping_fused_copy_matches_bit_for_bit() {
        // dst inside the source stream: element-order semantics matter.
        let p = copy_program(LoadOp::Lbu, StoreOp::Sb, 1, 1, 64);
        let mut p = p;
        p[3] = Instr::Addi {
            rd: reg::T2,
            rs1: reg::T2,
            imm: -597, // dst = src + 3
        };
        assert_fusion_parity(&p, 100_000, MemoryModel::Flat, &fill_dmem);
    }

    #[test]
    fn single_iteration_and_fallthrough_entry_match() {
        // cnt0 == 1: one iteration, back-edge never taken.
        assert_fusion_parity(
            &mac_program(false, 1),
            100_000,
            MemoryModel::Flat,
            &fill_dmem,
        );
        // cnt0 == 2: exactly one taken back-edge.
        assert_fusion_parity(
            &mac_program(false, 2),
            100_000,
            MemoryModel::Flat,
            &fill_dmem,
        );
    }

    #[test]
    fn zero_trip_count_wraps_and_times_out_identically() {
        // A do-while loop entered with cnt == 0 runs 2^32 iterations;
        // with a small budget both engines must time out at the same
        // instruction, with identical partial memory effects.
        let mut p = Vec::new();
        p.extend(li_dmem(reg::T1, 0));
        p.push(Instr::Addi {
            rd: reg::T3,
            rs1: reg::ZERO,
            imm: 0,
        });
        p.extend([
            Instr::Store {
                op: StoreOp::Sb,
                rs1: reg::T1,
                rs2: reg::ZERO,
                offset: 0,
            },
            Instr::Addi {
                rd: reg::T1,
                rs1: reg::T1,
                imm: 1,
            },
            Instr::Addi {
                rd: reg::T3,
                rs1: reg::T3,
                imm: -1,
            },
            Instr::Branch {
                op: BranchOp::Bne,
                rs1: reg::T3,
                rs2: reg::ZERO,
                offset: -12,
            },
            Instr::Ebreak,
        ]);
        // Budgets hitting the loop at every phase: mid-iteration, on an
        // iteration boundary and right at the back-edge.
        for budget in [100, 101, 102, 103, 104, 4003] {
            assert_fusion_parity(&p, budget, MemoryModel::Flat, &fill_dmem);
        }
    }

    #[test]
    fn budget_expiry_mid_fused_loop_matches() {
        // 60 MAC iterations * 7 instructions after a 6-instruction
        // prologue; sweep budgets across iteration boundaries.
        for budget in [
            6,
            7,
            12,
            13,
            14,
            6 + 7 * 30,
            6 + 7 * 30 + 3,
            6 + 7 * 60,
            6 + 7 * 60 + 1,
        ] {
            assert_fusion_parity(
                &mac_program(false, 60),
                budget,
                MemoryModel::Flat,
                &fill_dmem,
            );
            assert_fusion_parity(
                &mac_program(false, 60),
                budget,
                MemoryModel::maupiti(),
                &fill_dmem,
            );
        }
    }

    #[test]
    fn out_of_bounds_stream_falls_back_and_faults_identically() {
        // The copy runs off the end of data memory; the fused path must
        // decline and the unfused trace must reproduce the exact fault.
        let mut p = copy_program(LoadOp::Lw, StoreOp::Sw, 4, 4, 64);
        p[2] = Instr::Lui {
            rd: reg::T2,
            imm: 0x100,
        };
        p[3] = Instr::Addi {
            rd: reg::T2,
            rs1: reg::T2,
            imm: 16 * 1024 - 32, // 8 words of headroom for a 64-word copy
        };
        let (_, fused) = assert_fusion_parity(&p, 100_000, MemoryModel::Flat, &fill_dmem);
        assert!(
            fused.fusion_profile().is_empty(),
            "a declined stream must not count as a fusion hit"
        );
    }

    #[test]
    fn reloading_a_program_resets_the_fusion_profile() {
        let mut cpu = Cpu::new_default();
        cpu.set_exec_mode(ExecMode::BlockCached);
        cpu.load_program(&mac_program(false, 60)).unwrap();
        fill_dmem(&mut cpu);
        cpu.run(100_000).unwrap();
        assert!(!cpu.fusion_profile().is_empty());
        // Loading a new image invalidates the decoded blocks and the
        // fusion counters; the copy loop then fuses from scratch.
        cpu.load_program(&copy_program(LoadOp::Lw, StoreOp::Sw, 4, 4, 8))
            .unwrap();
        fill_dmem(&mut cpu);
        cpu.run(100_000).unwrap();
        let profile = cpu.fusion_profile();
        assert_eq!(profile.len(), 1);
        assert_eq!(profile[0].0, "memcpy");
    }

    #[test]
    fn hottest_blocks_attribution_still_sums_to_instret_with_fusion() {
        let mut cpu = Cpu::new_default();
        cpu.set_exec_mode(ExecMode::BlockCached);
        cpu.load_program(&mac_program(false, 60)).unwrap();
        fill_dmem(&mut cpu);
        cpu.run(100_000).unwrap();
        let blocks = cpu.hottest_blocks(16);
        let total: u64 = blocks.iter().map(|b| b.instructions).sum();
        assert_eq!(
            total, cpu.instret,
            "per-block attribution must sum to instret"
        );
        let hot = &blocks[0];
        assert_eq!(hot.fused_kind, Some("mac_sdotp8"));
        assert!(hot.fused_entries >= 1);
        // Mid-trace recognition fuses the loop inside the prologue
        // trace, so all 60 iterations are attributed to one block.
        assert_eq!(hot.fused_iterations, 60);
        assert!(hot.fused_cycles > 0);
        let json = crate::cpu::hot_blocks_json(&blocks);
        assert!(json.contains("\"fused_kind\":\"mac_sdotp8\""));
        assert!(json.contains("\"fused_iterations\":60"));
    }

    #[test]
    fn toggling_fusion_off_disables_the_fused_path() {
        let mut cpu = Cpu::new_default();
        cpu.set_exec_mode(ExecMode::BlockCached);
        assert!(cpu.macro_fusion());
        cpu.set_macro_fusion(false);
        cpu.load_program(&mac_program(false, 60)).unwrap();
        fill_dmem(&mut cpu);
        cpu.run(100_000).unwrap();
        assert!(cpu.fusion_profile().is_empty());
        assert!(cpu
            .hottest_blocks(16)
            .iter()
            .all(|b| b.fused_kind.is_none()));
    }

    /// An output-row sweep over the conv3x3 kernel-x guard nest, exactly
    /// as `emit_conv3x3` lays it out: for each `ox` in `0..w`, reset the
    /// accumulator, run kx in `0..3` with left/right padding guards
    /// around an SDOTP channel loop, then consume the accumulator. The
    /// first trace (entry 0) carries the nest as a suffix at start 12;
    /// the re-entry trace at the loop head carries it at start 0.
    fn conv_nest_program(w: i32, ch: i32) -> Vec<Instr> {
        let mut p = Vec::new();
        p.extend(li_dmem(reg::A0, 0)); // xbase
        p.extend(li_dmem(reg::S10, 512)); // wbase
        for (rd, imm) in [
            (reg::A4, w),
            (reg::A5, ch),
            (reg::S8, 1),  // ky
            (reg::S11, 2), // iy
            (reg::S6, 0),  // ox
            (reg::S5, 0),  // checksum
        ] {
            p.push(Instr::Addi {
                rd,
                rs1: reg::ZERO,
                imm,
            });
        }
        // ox loop head (index 10): reset acc, kx = 0.
        p.push(Instr::Addi {
            rd: reg::S7,
            rs1: reg::ZERO,
            imm: 7,
        });
        p.push(Instr::Addi {
            rd: reg::T6,
            rs1: reg::ZERO,
            imm: 0,
        });
        // kx nest, indices 12..=36.
        p.push(Instr::Addi {
            rd: reg::T0,
            rs1: reg::ZERO,
            imm: 3,
        });
        p.push(Instr::Branch {
            op: BranchOp::Bge,
            rs1: reg::T6,
            rs2: reg::T0,
            offset: 24 * 4,
        });
        p.push(Instr::Add {
            rd: reg::T0,
            rs1: reg::S6,
            rs2: reg::T6,
        });
        p.push(Instr::Addi {
            rd: reg::T0,
            rs1: reg::T0,
            imm: -1,
        });
        p.push(Instr::Branch {
            op: BranchOp::Blt,
            rs1: reg::T0,
            rs2: reg::ZERO,
            offset: (23 - 4) * 4,
        });
        p.push(Instr::Branch {
            op: BranchOp::Bge,
            rs1: reg::T0,
            rs2: reg::A4,
            offset: (23 - 5) * 4,
        });
        p.push(Instr::Mul {
            rd: reg::T1,
            rs1: reg::S11,
            rs2: reg::A4,
        });
        p.push(Instr::Add {
            rd: reg::T1,
            rs1: reg::T1,
            rs2: reg::T0,
        });
        p.push(Instr::Mul {
            rd: reg::T1,
            rs1: reg::T1,
            rs2: reg::A5,
        });
        p.push(Instr::Add {
            rd: reg::T1,
            rs1: reg::T1,
            rs2: reg::A0,
        });
        p.push(Instr::Addi {
            rd: reg::T2,
            rs1: reg::ZERO,
            imm: 3,
        });
        p.push(Instr::Mul {
            rd: reg::T2,
            rs1: reg::T2,
            rs2: reg::S8,
        });
        p.push(Instr::Add {
            rd: reg::T2,
            rs1: reg::T2,
            rs2: reg::T6,
        });
        p.push(Instr::Mul {
            rd: reg::T2,
            rs1: reg::T2,
            rs2: reg::A5,
        });
        p.push(Instr::Add {
            rd: reg::T2,
            rs1: reg::T2,
            rs2: reg::S10,
        });
        p.push(Instr::Srli {
            rd: reg::T3,
            rs1: reg::A5,
            shamt: 2,
        });
        p.extend([
            Instr::Load {
                op: LoadOp::Lw,
                rd: reg::T4,
                rs1: reg::T1,
                offset: 0,
            },
            Instr::Load {
                op: LoadOp::Lw,
                rd: reg::T5,
                rs1: reg::T2,
                offset: 0,
            },
            Instr::Sdotp8 {
                rd: reg::S7,
                rs1: reg::T4,
                rs2: reg::T5,
            },
            Instr::Addi {
                rd: reg::T1,
                rs1: reg::T1,
                imm: 4,
            },
            Instr::Addi {
                rd: reg::T2,
                rs1: reg::T2,
                imm: 4,
            },
            Instr::Addi {
                rd: reg::T3,
                rs1: reg::T3,
                imm: -1,
            },
            Instr::Branch {
                op: BranchOp::Bne,
                rs1: reg::T3,
                rs2: reg::ZERO,
                offset: -24,
            },
        ]);
        p.push(Instr::Addi {
            rd: reg::T6,
            rs1: reg::T6,
            imm: 1,
        });
        p.push(Instr::Jal {
            rd: reg::ZERO,
            offset: -24 * 4,
        });
        // kx_end (index 37): fold the accumulator, advance ox.
        p.push(Instr::Add {
            rd: reg::S5,
            rs1: reg::S5,
            rs2: reg::S7,
        });
        p.push(Instr::Addi {
            rd: reg::S6,
            rs1: reg::S6,
            imm: 1,
        });
        p.push(Instr::Branch {
            op: BranchOp::Blt,
            rs1: reg::S6,
            rs2: reg::A4,
            offset: (10 - 39) * 4,
        });
        p.push(Instr::Ebreak);
        p
    }

    #[test]
    fn fused_conv_nest_matches_unfused_and_simple_bit_for_bit() {
        // W = 6, ch = 8 bytes (trip 2): ox = 0 takes the left-padding
        // guard, ox = 5 the right-padding guard, everything else runs
        // three full kernel taps. A full budget sweep crosses every
        // phase: prologue, guard skips, mid-channel-loop expiry and the
        // iteration boundaries of the fused nest.
        let p = conv_nest_program(6, 8);
        for budget in 1..=600u64 {
            assert_fusion_parity(&p, budget, MemoryModel::Flat, &fill_dmem);
        }
        let (_, fused) = assert_fusion_parity(&p, 100_000, MemoryModel::Flat, &fill_dmem);
        let profile = fused.fusion_profile();
        assert!(
            profile.iter().any(|(name, entries, iters)| {
                *name == "conv3x3_nest" && *entries >= 6 && *iters >= 18
            }),
            "nest should dominate the profile, got {profile:?}"
        );
        assert!(fused
            .hottest_blocks(16)
            .iter()
            .any(|b| b.fused_kind == Some("conv3x3_nest")));

        // trip 1 (ch = 4): the channel loop collapses to a single pass.
        let p1 = conv_nest_program(6, 4);
        for budget in [1, 17, 40, 41, 42, 100, 253, 254, 255, 100_000] {
            assert_fusion_parity(&p1, budget, MemoryModel::Flat, &fill_dmem);
        }

        // Maupiti declines the nest and substitutes the embedded channel
        // loop; spot-check budgets including expiry inside that loop.
        for budget in [50, 137, 290, 421, 579, 100_000] {
            let (_, fused) = assert_fusion_parity(&p, budget, MemoryModel::maupiti(), &fill_dmem);
            assert!(
                fused
                    .fusion_profile()
                    .iter()
                    .all(|(name, ..)| *name != "conv3x3_nest"),
                "the nest must not run under Maupiti"
            );
        }
    }

    #[test]
    fn conv_nest_zero_trip_channel_loop_times_out_identically() {
        // ch = 2 makes `srli` produce a zero trip count: the do-while
        // channel loop wraps through 2^32 iterations. The nest must
        // decline at the iteration boundary and both engines time out on
        // the same instruction with identical partial state.
        let p = conv_nest_program(6, 2);
        for budget in [40, 41, 50, 100, 200] {
            assert_fusion_parity(&p, budget, MemoryModel::Flat, &fill_dmem);
        }
    }

    #[test]
    fn conv_nest_out_of_bounds_stream_faults_identically() {
        // iy = 2000 pushes xptr far past data memory: the fused nest
        // must decline the iteration untouched and the unfused replay
        // reproduces the exact access fault.
        let mut p = conv_nest_program(6, 8);
        p[7] = Instr::Addi {
            rd: reg::S11,
            rs1: reg::ZERO,
            imm: 2000,
        };
        assert_fusion_parity(&p, 100_000, MemoryModel::Flat, &fill_dmem);
        assert_fusion_parity(&p, 100_000, MemoryModel::maupiti(), &fill_dmem);
    }

    mod fusion_props {
        use super::*;
        use proptest::prelude::*;

        /// Seeds data memory with a deterministic byte pattern.
        fn seeded_fill(seed: u64) -> impl Fn(&mut Cpu) {
            move |cpu: &mut Cpu| {
                let mut state = seed | 1;
                let bytes: Vec<u8> = (0..cpu.mem.dmem_size())
                    .map(|_| {
                        state = state
                            .wrapping_mul(6364136223846793005)
                            .wrapping_add(1442695040888963407);
                        (state >> 33) as u8
                    })
                    .collect();
                cpu.mem.write_dmem(DMEM_BASE, &bytes);
            }
        }

        /// Materialises `DMEM_BASE + extra` (or `DMEM_BASE + 16K - back`
        /// when probing the end of data memory) without exceeding the
        /// 12-bit `addi` immediate.
        fn li_addr(rd: u8, near_end: bool, extra: i32) -> [Instr; 2] {
            if near_end {
                [
                    Instr::Lui { rd, imm: 0x104 }, // DMEM_BASE + 16 KiB
                    Instr::Addi {
                        rd,
                        rs1: rd,
                        imm: -extra,
                    },
                ]
            } else {
                [
                    Instr::Lui { rd, imm: 0x100 },
                    Instr::Addi {
                        rd,
                        rs1: rd,
                        imm: extra,
                    },
                ]
            }
        }

        proptest! {
            /// Random copy loops — all five load widths, signed and
            /// unsigned, random strides (including zero and negative),
            /// random overlap, random budgets and occasional streams that
            /// run off the end of data memory — are bit-identical between
            /// the fused and unfused engines, faults and timeouts
            /// included.
            #[test]
            fn random_copy_loops_are_bit_identical(
                which in 0..5usize,
                ss in -8i32..9,
                ds in -8i32..9,
                count in 0i32..70,
                src_extra in 600i32..1800,
                dst_extra in 600i32..1800,
                near_end_sel in 0u32..5,
                budget in 1u64..1200,
                seed in any::<u64>(),
            ) {
                let (load, store) = [
                    (LoadOp::Lb, StoreOp::Sb),
                    (LoadOp::Lbu, StoreOp::Sb),
                    (LoadOp::Lh, StoreOp::Sh),
                    (LoadOp::Lhu, StoreOp::Sw),
                    (LoadOp::Lw, StoreOp::Sw),
                ][which];
                let near_end = near_end_sel == 0;
                let mut p = Vec::new();
                p.extend(li_addr(reg::T1, near_end, src_extra));
                p.extend(li_addr(reg::T2, false, dst_extra));
                p.push(Instr::Addi { rd: reg::T3, rs1: reg::ZERO, imm: count });
                p.extend([
                    Instr::Load { op: load, rd: reg::T4, rs1: reg::T1, offset: 0 },
                    Instr::Store { op: store, rs1: reg::T2, rs2: reg::T4, offset: 0 },
                    Instr::Addi { rd: reg::T1, rs1: reg::T1, imm: ss },
                    Instr::Addi { rd: reg::T2, rs1: reg::T2, imm: ds },
                    Instr::Addi { rd: reg::T3, rs1: reg::T3, imm: -1 },
                    Instr::Branch { op: BranchOp::Bne, rs1: reg::T3, rs2: reg::ZERO, offset: -20 },
                    Instr::Ebreak,
                ]);
                assert_fusion_parity(&p, budget, MemoryModel::Flat, &seeded_fill(seed));
                assert_fusion_parity(&p, budget, MemoryModel::maupiti(), &seeded_fill(seed));
            }

            /// Random memset loops with every store width, random stride
            /// and fill value (x0 included) are bit-identical.
            #[test]
            fn random_memset_loops_are_bit_identical(
                which in 0..3usize,
                stride in -8i32..9,
                count in 0i32..70,
                extra in 600i32..1800,
                near_end_sel in 0u32..5,
                zero_val in any::<bool>(),
                fill in -2048i32..2048,
                budget in 1u64..1200,
                seed in any::<u64>(),
            ) {
                let store = [StoreOp::Sb, StoreOp::Sh, StoreOp::Sw][which];
                let near_end = near_end_sel == 0;
                let val = if zero_val { reg::ZERO } else { reg::A0 };
                let mut p = Vec::new();
                p.extend(li_addr(reg::T1, near_end, extra));
                p.push(Instr::Addi { rd: reg::T3, rs1: reg::ZERO, imm: count });
                p.push(Instr::Addi { rd: reg::A0, rs1: reg::ZERO, imm: fill });
                p.extend([
                    Instr::Store { op: store, rs1: reg::T1, rs2: val, offset: 0 },
                    Instr::Addi { rd: reg::T1, rs1: reg::T1, imm: stride },
                    Instr::Addi { rd: reg::T3, rs1: reg::T3, imm: -1 },
                    Instr::Branch { op: BranchOp::Bne, rs1: reg::T3, rs2: reg::ZERO, offset: -12 },
                    Instr::Ebreak,
                ]);
                assert_fusion_parity(&p, budget, MemoryModel::Flat, &seeded_fill(seed));
            }

            /// Random SDOTP MAC reductions — both lane widths, random
            /// word strides (unaligned included: data memory has no
            /// alignment requirement), random budgets — are
            /// bit-identical.
            #[test]
            fn random_mac_loops_are_bit_identical(
                four_bit in any::<bool>(),
                s1 in -8i32..9,
                s2 in -8i32..9,
                count in 0i32..70,
                e1 in 600i32..1800,
                e2 in 600i32..1800,
                near_end_sel in 0u32..5,
                budget in 1u64..1200,
                seed in any::<u64>(),
            ) {
                let sdotp = if four_bit {
                    Instr::Sdotp4 { rd: reg::S7, rs1: reg::T4, rs2: reg::T5 }
                } else {
                    Instr::Sdotp8 { rd: reg::S7, rs1: reg::T4, rs2: reg::T5 }
                };
                let near_end = near_end_sel == 0;
                let mut p = Vec::new();
                p.extend(li_addr(reg::T1, near_end, e1));
                p.extend(li_addr(reg::T2, false, e2));
                p.push(Instr::Addi { rd: reg::T3, rs1: reg::ZERO, imm: count });
                p.extend([
                    Instr::Load { op: LoadOp::Lw, rd: reg::T4, rs1: reg::T1, offset: 0 },
                    Instr::Load { op: LoadOp::Lw, rd: reg::T5, rs1: reg::T2, offset: 0 },
                    sdotp,
                    Instr::Addi { rd: reg::T1, rs1: reg::T1, imm: s1 },
                    Instr::Addi { rd: reg::T2, rs1: reg::T2, imm: s2 },
                    Instr::Addi { rd: reg::T3, rs1: reg::T3, imm: -1 },
                    Instr::Branch { op: BranchOp::Bne, rs1: reg::T3, rs2: reg::ZERO, offset: -24 },
                    Instr::Ebreak,
                ]);
                assert_fusion_parity(&p, budget, MemoryModel::Flat, &seeded_fill(seed));
                assert_fusion_parity(&p, budget, MemoryModel::maupiti(), &seeded_fill(seed));
            }
        }
    }
}
