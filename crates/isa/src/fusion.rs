//! Macro-op fusion: idiom recognition over decoded superblock traces.
//!
//! The deployed CNN spends nearly all of its simulated time in a handful
//! of idiomatic self-loops — SDOTP MAC reductions, constant-store memset
//! fills, load/store copies and im2col-style strided copies. This module
//! recognises those shapes once, at trace-build time, and lowers each to
//! a [`FusedOp`] attached to the block. The engine then executes the
//! whole loop as **one host-level loop per trace entry**: the trip count
//! comes from the live loop-carried registers, the body runs with direct
//! slice access on [`Memory`], and cycles / instret / pipeline stalls /
//! memory-model costs are bulk-charged from the per-iteration summaries
//! precomputed here — bit-identical to per-instruction dispatch.
//!
//! All patterns are do-while counted loops ending in
//! `addi cnt, cnt, -1; bne cnt, x0, entry`, exactly what the kernel code
//! generator in `pcount-kernels` emits. Recognition is conservative: the
//! loop-carried registers must be pairwise distinct (no aliasing
//! surprises) and every fused entry re-validates that **all** memory
//! accesses of the planned iterations stay inside data memory — any trip
//! count that would fault, wrap an address or touch instruction memory
//! falls back to the unfused trace, which reproduces the exact
//! architectural behaviour (including the faulting instruction).

use crate::cpu::{sdotp4, sdotp8};
use crate::instr::{Decoded, Op};
use crate::memory::{Memory, DMEM_BASE};
use crate::pipeline::LOAD_USE_STALL;

/// The loop idiom a [`FusedOp`] lowers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum FusedKind {
    /// 8-bit SDOTP multiply-accumulate reduction loop.
    MacSdotp8,
    /// 4-bit SDOTP multiply-accumulate reduction loop.
    MacSdotp4,
    /// Constant-store fill loop (memset).
    Memset,
    /// Load/store copy with stride equal to the element width (memcpy).
    Memcpy,
    /// Load/store copy with independent source/destination strides
    /// (im2col-style gather/scatter).
    StridedCopy,
    /// The whole 3-wide convolution kernel-x guard loop: padding guards,
    /// input/weight pointer setup and the embedded SDOTP channel loop,
    /// executed as one host loop per kernel-x iteration.
    ConvNest,
}

impl FusedKind {
    /// Stable machine-readable name (used by `hot_blocks_json` and the
    /// bench emitters).
    pub(crate) fn name(self) -> &'static str {
        match self {
            FusedKind::MacSdotp8 => "mac_sdotp8",
            FusedKind::MacSdotp4 => "mac_sdotp4",
            FusedKind::Memset => "memset",
            FusedKind::Memcpy => "memcpy",
            FusedKind::StridedCopy => "strided_copy",
            FusedKind::ConvNest => "conv3x3_nest",
        }
    }
}

/// Pattern-specific operands of a fused loop, registers by index and
/// immediates pre-extracted from the decoded body.
#[derive(Debug, Clone)]
pub(crate) enum FusedDetail {
    /// `lw ld1, off1(p1); lw ld2, off2(p2); sdotp acc, ld1, ld2;
    /// addi p1, p1, s1; addi p2, p2, s2; addi cnt, cnt, -1; bne`.
    Mac {
        four_bit: bool,
        p1: u8,
        off1: u32,
        s1: u32,
        p2: u8,
        off2: u32,
        s2: u32,
        ld1: u8,
        ld2: u8,
        acc: u8,
        /// The SDOTP reads `(ld2, ld1)` instead of `(ld1, ld2)`.
        swap: bool,
    },
    /// `s[bhw] val, off(p); addi p, p, stride; addi cnt, cnt, -1; bne`.
    Memset {
        p: u8,
        off: u32,
        stride: u32,
        width: u8,
        val: u8,
    },
    /// `l* tmp, loff(src); s* tmp, soff(dst); addi src, src, ss;
    /// addi dst, dst, ds; addi cnt, cnt, -1; bne`.
    Copy {
        src: u8,
        loff: u32,
        ss: u32,
        dst: u8,
        soff: u32,
        ds: u32,
        tmp: u8,
        lwidth: u8,
        lsigned: bool,
        swidth: u8,
    },
    /// The 25-instruction convolution kernel-x guard loop (see
    /// [`NestDetail`]), boxed to keep `FusedOp` small for the common
    /// patterns.
    ConvNest(Box<NestDetail>),
}

/// Pipeline summary of one architectural path through the nest: what the
/// per-instruction engine would have charged for exactly that
/// instruction sequence.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct PathCost {
    /// Instructions retired on the path.
    pub instret: u64,
    /// Cycles charged, load-use stalls and taken-branch flushes
    /// included (unconditional-jump flushes are tracked in `flushes`
    /// only, exactly like the engine's per-instruction accounting).
    pub cycles: u64,
    /// Load-use stall cycles within `cycles`.
    pub stalls: u64,
    /// Flush cycles (taken branches and unconditional jumps).
    pub flushes: u64,
}

/// Operands and per-path costs of a fused convolution kernel-x loop —
/// the exact 25-instruction shape `emit_conv3x3` generates:
///
/// ```text
///  0  li    scratch, kmax          ; loop bound
///  1  bge   kx, scratch, kx_end    ; side exit: nest finished
///  2  add   scratch, ox, kx        ; ix = ox + kx
///  3  addi  scratch, scratch, bias ; ix -= pad
///  4  blt   scratch, x0,  skip     ; left-padding guard
///  5  bge   scratch, w,   skip     ; right-padding guard
///  6..9    xptr = ((iy*w)+ix)*ch + xbase
/// 10..14   wptr = ((ky_mul*ky)+kx)*ch + wbase
/// 15  srli  cnt, ch, trip_sh       ; channel-loop trip count
/// 16..22   SDOTP MAC channel loop (the `Mac` pattern)
/// 23  addi  kx, kx, 1              ; skip: guards land here
/// 24  jal   x0, head
/// ```
///
/// A skip iteration executes `{0..4, 23, 24}` (left) or `{0..5, 23, 24}`
/// (right) — the very same pc sequence the unfused engine retires when
/// a guard side-exits into the `kx_next` tail block — so bulk-charging
/// the precomputed [`PathCost`] per path keeps every counter
/// bit-identical.
#[derive(Debug, Clone)]
pub(crate) struct NestDetail {
    /// Kernel-x loop counter register.
    pub kx: u8,
    /// Loop bound (`li scratch, kmax`), compared signed.
    pub kmax: u32,
    /// Scratch register: holds the bound for the exit check, then `ix`.
    pub scratch: u8,
    /// Output-x register (`ix = ox + kx + bias`).
    pub ox: u8,
    /// Signed bias added to `ix` (the negated padding).
    pub ix_bias: u32,
    /// Spatial-size register the right-padding guard compares against.
    pub w: u8,
    /// Input-row register (`iy`, precomputed by the enclosing loop).
    pub iy: u8,
    /// Bytes-per-pixel register (also sourcing the trip count).
    pub ch: u8,
    /// Input tensor base-address register.
    pub xbase: u8,
    /// Kernel-y register.
    pub ky: u8,
    /// Immediate multiplying `ky` in the weight index (kernel width).
    pub ky_mul: u32,
    /// Weight base-address register (per output channel).
    pub wbase: u8,
    /// Input pointer register the channel loop walks.
    pub xptr: u8,
    /// Weight pointer register the channel loop walks.
    pub wptr: u8,
    /// Shift turning the byte count into the channel-loop trip count.
    pub trip_sh: u32,
    /// The embedded channel loop (always a `Mac` pattern), with `start`
    /// relative to its own head.
    pub inner: FusedOp,
    /// Costs of a left-padding skip iteration (7 instructions).
    pub skip_lo: PathCost,
    /// Costs of a right-padding skip iteration (8 instructions).
    pub skip_hi: PathCost,
    /// Costs of a full iteration with a single channel-loop pass
    /// (25 instructions).
    pub full1: PathCost,
    /// Costs of each extra channel-loop pass (7 instructions, taken
    /// back-edge).
    pub extra: PathCost,
}

/// What one fused nest execution did, counted per architectural path so
/// the engine can bulk-charge instret, cycles, stalls, flushes and the
/// per-mnemonic trace exactly.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct NestOutcome {
    /// Iterations skipped through the left-padding (`blt`) guard.
    pub skip_lo: u64,
    /// Iterations skipped through the right-padding (`bge`) guard.
    pub skip_hi: u64,
    /// Full iterations (pointer setup plus the whole channel loop).
    pub full: u64,
    /// Extra channel-loop passes beyond the first, summed over all full
    /// iterations.
    pub inner_extra: u64,
}

impl NestOutcome {
    /// Kernel-x iterations executed.
    pub fn iters(&self) -> u64 {
        self.skip_lo + self.skip_hi + self.full
    }
}

/// A recognised loop idiom attached to a `Block`, with everything the
/// engine needs to bulk-charge one iteration precomputed at build time.
#[derive(Debug, Clone)]
pub(crate) struct FusedOp {
    /// Which idiom this is.
    pub kind: FusedKind,
    /// Trace position of the loop head: the body occupies
    /// `instrs[start..start + body_len]` and its back-edge branch
    /// targets `instrs[start]`. Zero when the whole trace is the loop
    /// (a self-loop block); nonzero when the loop sits behind setup
    /// code inside a longer trace, which the engine executes
    /// per-instruction before entering the fused loop.
    pub start: usize,
    /// Instructions per iteration, back-edge branch included.
    pub body_len: usize,
    /// Loop counter register (`addi cnt, cnt, -1; bne cnt, x0, entry`).
    pub cnt: u8,
    /// Pipeline base cycles of one iteration, branch flush excluded.
    pub base_cycles: u64,
    /// Flush cycles charged per taken back-edge.
    pub flush_on_take: u64,
    /// Load-use interlock stalls inside one steady-state iteration
    /// (entered with no pending load, as after the back-edge branch).
    pub steady_stalls: u64,
    /// Read mask of the body's first instruction, for the incoming
    /// load-use hazard of the very first iteration.
    pub entry_reads_mask: u32,
    /// The idiom's operands.
    pub detail: FusedDetail,
}

/// What one fused execution did.
#[derive(Debug, Clone, Copy)]
pub(crate) struct FusedOutcome {
    /// Iterations executed architecturally (registers and memory are
    /// advanced past all of them).
    pub iters: u64,
    /// The last iteration did not take the back-edge: the counter
    /// reached zero and execution continues past the branch.
    pub fell_through: bool,
}

/// `addi rd, rd, imm` with `rd != x0`, the loop-carried update shape.
fn addi_self(d: &Decoded) -> Option<(u8, u32)> {
    match d.op {
        Op::Addi(imm) if d.rd != 0 && d.rd == d.rs1 => Some((d.rd, imm)),
        _ => None,
    }
}

/// The back-edge `bne cnt, x0, entry` closing a counted self-loop at
/// trace position `i`; returns the counter register.
fn back_edge(entry_pc: u32, instrs: &[Decoded], i: usize) -> Option<u8> {
    let d = instrs.get(i)?;
    match d.op {
        Op::Bne { target } if target == entry_pc && d.rs2 == 0 && d.rs1 != 0 => Some(d.rs1),
        _ => None,
    }
}

/// Checks that `addi cnt, cnt, -1` immediately precedes the back-edge.
fn decrements(instrs: &[Decoded], i: usize, cnt: u8) -> bool {
    addi_self(&instrs[i]) == Some((cnt, u32::MAX))
}

/// All registers pairwise distinct and none of them x0.
fn distinct_nonzero(regs: &[u8]) -> bool {
    let mut mask = 1u32; // x0 pre-set, so any zero register collides
    for &r in regs {
        let bit = 1u32 << (r & 31);
        if mask & bit != 0 {
            return false;
        }
        mask |= bit;
    }
    true
}

/// Per-iteration pipeline summary of `instrs[..body_len]`: base cycles
/// without the branch flush, the flush charged per taken back-edge, and
/// the steady-state load-use stalls (simulated with no incoming load).
fn body_costs(instrs: &[Decoded], body_len: usize) -> (u64, u64, u64) {
    let body = &instrs[..body_len];
    let base: u64 = body.iter().map(|d| d.base_cycles as u64).sum();
    let flush = body[body_len - 1].flush_on_take as u64;
    let mut load_dest = 0u8;
    let mut stalls = 0u64;
    for d in body {
        if load_dest != 0 && (d.reads_mask >> load_dest) & 1 != 0 {
            stalls += LOAD_USE_STALL;
        }
        load_dest = if d.is_load { d.rd } else { 0 };
    }
    (base, flush, stalls)
}

fn fused(
    kind: FusedKind,
    instrs: &[Decoded],
    body_len: usize,
    cnt: u8,
    detail: FusedDetail,
) -> FusedOp {
    let (base_cycles, flush_on_take, steady_stalls) = body_costs(instrs, body_len);
    FusedOp {
        kind,
        start: 0,
        body_len,
        cnt,
        base_cycles,
        flush_on_take,
        steady_stalls,
        entry_reads_mask: instrs[0].reads_mask,
        detail,
    }
}

/// Recognises a fusible loop idiom anywhere inside a freshly decoded
/// trace. Called once per block by the trace builder.
///
/// Each candidate position is taken as a loop head: the window starting
/// there must match an idiom body whose back-edge branch targets the
/// window's first instruction. Position 0 covers pure self-loop blocks
/// (the back-edge is a side exit to `entry_pc`); later positions cover
/// loops embedded behind setup code — the dominant shape in convolution
/// traces, where pointer arithmetic precedes each channel loop. The
/// first (earliest) match wins; the convolution nest is preferred over
/// the plain patterns because it subsumes the channel loop it embeds.
///
/// Returns `(primary, inner)`: when the primary is a
/// [`FusedKind::ConvNest`], `inner` carries the nest's embedded channel
/// loop as a standalone plain MAC op, which the engine uses instead of
/// the nest under the Maupiti memory model (whose order-sensitive
/// per-iteration charges the nest does not reproduce).
pub(crate) fn recognize(instrs: &[Decoded]) -> (Option<FusedOp>, Option<FusedOp>) {
    for start in 0..instrs.len() {
        let w = &instrs[start..];
        let head_pc = w[0].pc;
        if let Some(mut f) = try_nest(w) {
            f.start = start;
            let mut inner = match &f.detail {
                FusedDetail::ConvNest(n) => n.inner.clone(),
                _ => unreachable!("try_nest yields a ConvNest detail"),
            };
            inner.start = start + NEST_INNER_OFF;
            return (Some(f), Some(inner));
        }
        if let Some(mut f) = try_mac(head_pc, w)
            .or_else(|| try_copy(head_pc, w))
            .or_else(|| try_memset(head_pc, w))
        {
            f.start = start;
            return (Some(f), None);
        }
    }
    (None, None)
}

/// Length of the nest window in instructions.
pub(crate) const NEST_LEN: usize = 25;
/// Offset of the embedded channel loop inside the nest window.
pub(crate) const NEST_INNER_OFF: usize = 16;
/// Offset of the `addi kx, kx, 1` tail the padding guards skip to.
const NEST_SKIP_OFF: usize = 23;

/// The operand of `d` that is not `r`, for commutative two-register ops.
fn other_operand(d: &Decoded, r: u8) -> Option<u8> {
    if d.rs1 == r {
        Some(d.rs2)
    } else if d.rs2 == r {
        Some(d.rs1)
    } else {
        None
    }
}

/// Pipeline costs of one architectural path through the nest window
/// `w`, mirroring the engine's per-instruction rules exactly: base
/// cycles, load-use interlocks (the path is always entered with no
/// pending load — every path starts at the `li`, which reads only x0),
/// flush cycles added to `cycles` for taken conditional branches, and
/// flush cycles tracked in `flushes` only for unconditional jumps.
fn nest_path_cost(w: &[Decoded], path: &[(usize, bool)]) -> PathCost {
    let mut c = PathCost {
        instret: path.len() as u64,
        ..PathCost::default()
    };
    let mut load_dest = 0u8;
    for &(i, taken) in path {
        let d = &w[i];
        let mut cost = d.base_cycles as u64;
        if load_dest != 0 && (d.reads_mask >> load_dest) & 1 != 0 {
            cost += LOAD_USE_STALL;
            c.stalls += LOAD_USE_STALL;
        }
        load_dest = if d.is_load { d.rd } else { 0 };
        match d.op {
            Op::Beq { .. }
            | Op::Bne { .. }
            | Op::Blt { .. }
            | Op::Bge { .. }
            | Op::Bltu { .. }
            | Op::Bgeu { .. }
                if taken =>
            {
                cost += d.flush_on_take as u64;
                c.flushes += d.flush_on_take as u64;
            }
            Op::Jal { .. } | Op::JalFollowed { .. } => {
                c.flushes += d.flush_on_take as u64;
            }
            _ => {}
        }
        c.cycles += cost;
    }
    c
}

/// Matches the convolution kernel-x guard loop (see [`NestDetail`] for
/// the shape). The window must be exactly [`NEST_LEN`] instructions and
/// end the trace: its closing `jal` targets the window head, which the
/// trace builder never follows (the head is already in the trace), so a
/// matching window is always a trace suffix.
fn try_nest(w: &[Decoded]) -> Option<FusedOp> {
    if w.len() != NEST_LEN {
        return None;
    }
    // 0: li scratch, kmax
    let (scratch, kmax) = match w[0].op {
        Op::Addi(imm) if w[0].rs1 == 0 && w[0].rd != 0 => (w[0].rd, imm),
        _ => return None,
    };
    // 1: bge kx, scratch -> nest finished (side exit)
    let kx = match w[1].op {
        Op::Bge { .. } if w[1].rs2 == scratch && w[1].rs1 != 0 => w[1].rs1,
        _ => return None,
    };
    // 2: add scratch, ox, kx
    let ox = match w[2].op {
        Op::Add if w[2].rd == scratch => other_operand(&w[2], kx)?,
        _ => return None,
    };
    // 3: addi scratch, scratch, bias
    let (r3, ix_bias) = addi_self(&w[3])?;
    if r3 != scratch {
        return None;
    }
    // 4: blt scratch, x0 -> skip; 5: bge scratch, w -> skip
    let t_skip = match w[4].op {
        Op::Blt { target } if w[4].rs1 == scratch && w[4].rs2 == 0 => target,
        _ => return None,
    };
    let w_reg = match w[5].op {
        Op::Bge { target } if target == t_skip && w[5].rs1 == scratch && w[5].rs2 != 0 => w[5].rs2,
        _ => return None,
    };
    if t_skip != w[NEST_SKIP_OFF].pc {
        return None;
    }
    // 6..9: xptr = ((iy * w) + ix) * ch + xbase
    let xptr = w[6].rd;
    let iy = match w[6].op {
        Op::Mul if xptr != 0 => other_operand(&w[6], w_reg)?,
        _ => return None,
    };
    if !matches!(w[7].op, Op::Add if w[7].rd == xptr && other_operand(&w[7], xptr) == Some(scratch))
    {
        return None;
    }
    let ch = match w[8].op {
        Op::Mul if w[8].rd == xptr => other_operand(&w[8], xptr)?,
        _ => return None,
    };
    let xbase = match w[9].op {
        Op::Add if w[9].rd == xptr => other_operand(&w[9], xptr)?,
        _ => return None,
    };
    // 10..14: wptr = ((ky_mul * ky) + kx) * ch + wbase
    let (wptr, ky_mul) = match w[10].op {
        Op::Addi(imm) if w[10].rs1 == 0 && w[10].rd != 0 => (w[10].rd, imm),
        _ => return None,
    };
    let ky = match w[11].op {
        Op::Mul if w[11].rd == wptr => other_operand(&w[11], wptr)?,
        _ => return None,
    };
    if !matches!(w[12].op, Op::Add if w[12].rd == wptr && other_operand(&w[12], wptr) == Some(kx)) {
        return None;
    }
    if !matches!(w[13].op, Op::Mul if w[13].rd == wptr && other_operand(&w[13], wptr) == Some(ch)) {
        return None;
    }
    let wbase = match w[14].op {
        Op::Add if w[14].rd == wptr => other_operand(&w[14], wptr)?,
        _ => return None,
    };
    // 15: srli cnt, ch, trip_sh
    let (cnt, trip_sh) = match w[15].op {
        Op::Srli(sh) if w[15].rs1 == ch && w[15].rd != 0 => (w[15].rd, sh),
        _ => return None,
    };
    // 16..22: the embedded SDOTP channel loop.
    let inner = try_mac(w[NEST_INNER_OFF].pc, &w[NEST_INNER_OFF..])?;
    if inner.cnt != cnt {
        return None;
    }
    let (p1, p2, ld1, ld2, acc) = match inner.detail {
        FusedDetail::Mac {
            p1,
            p2,
            ld1,
            ld2,
            acc,
            ..
        } => (p1, p2, ld1, ld2, acc),
        _ => return None,
    };
    if (p1, p2) != (xptr, wptr) && (p1, p2) != (wptr, xptr) {
        return None;
    }
    // 23: addi kx, kx, 1; 24: jal x0, head
    if addi_self(&w[NEST_SKIP_OFF]) != Some((kx, 1)) {
        return None;
    }
    if !matches!(w[24].op, Op::Jal { target, .. } if target == w[0].pc && w[24].rd == 0) {
        return None;
    }
    if !distinct_nonzero(&[
        kx, scratch, ox, w_reg, iy, ch, xbase, ky, wbase, xptr, wptr, cnt, ld1, ld2, acc,
    ]) {
        return None;
    }
    let skip_lo = nest_path_cost(
        w,
        &[
            (0, false),
            (1, false),
            (2, false),
            (3, false),
            (4, true),
            (23, false),
            (24, false),
        ],
    );
    let skip_hi = nest_path_cost(
        w,
        &[
            (0, false),
            (1, false),
            (2, false),
            (3, false),
            (4, false),
            (5, true),
            (23, false),
            (24, false),
        ],
    );
    let full_path: Vec<(usize, bool)> = (0..NEST_LEN).map(|i| (i, false)).collect();
    let full1 = nest_path_cost(w, &full_path);
    let extra_path: Vec<(usize, bool)> = (NEST_INNER_OFF..NEST_SKIP_OFF)
        .map(|i| (i, i == NEST_SKIP_OFF - 1))
        .collect();
    let extra = nest_path_cost(w, &extra_path);
    let detail = NestDetail {
        kx,
        kmax,
        scratch,
        ox,
        ix_bias,
        w: w_reg,
        iy,
        ch,
        xbase,
        ky,
        ky_mul,
        wbase,
        xptr,
        wptr,
        trip_sh,
        inner,
        skip_lo,
        skip_hi,
        full1,
        extra,
    };
    Some(FusedOp {
        kind: FusedKind::ConvNest,
        start: 0,
        body_len: NEST_LEN,
        cnt: kx,
        base_cycles: detail.full1.cycles,
        flush_on_take: w[24].flush_on_take as u64,
        steady_stalls: detail.full1.stalls,
        entry_reads_mask: w[0].reads_mask,
        detail: FusedDetail::ConvNest(Box::new(detail)),
    })
}

fn try_mac(entry_pc: u32, instrs: &[Decoded]) -> Option<FusedOp> {
    let cnt = back_edge(entry_pc, instrs, 6)?;
    if !decrements(instrs, 5, cnt) {
        return None;
    }
    let (ld1, p1, off1) = match instrs[0].op {
        Op::Lw(off) if instrs[0].rd != 0 => (instrs[0].rd, instrs[0].rs1, off),
        _ => return None,
    };
    let (ld2, p2, off2) = match instrs[1].op {
        Op::Lw(off) if instrs[1].rd != 0 => (instrs[1].rd, instrs[1].rs1, off),
        _ => return None,
    };
    let four_bit = match instrs[2].op {
        Op::Sdotp8 => false,
        Op::Sdotp4 => true,
        _ => return None,
    };
    let acc = instrs[2].rd;
    let swap = if (instrs[2].rs1, instrs[2].rs2) == (ld1, ld2) {
        false
    } else if (instrs[2].rs1, instrs[2].rs2) == (ld2, ld1) {
        true
    } else {
        return None;
    };
    let (ra, sa) = addi_self(&instrs[3])?;
    let (rb, sb) = addi_self(&instrs[4])?;
    let (s1, s2) = if (ra, rb) == (p1, p2) {
        (sa, sb)
    } else if (ra, rb) == (p2, p1) {
        (sb, sa)
    } else {
        return None;
    };
    if !distinct_nonzero(&[p1, p2, ld1, ld2, acc, cnt]) {
        return None;
    }
    let kind = if four_bit {
        FusedKind::MacSdotp4
    } else {
        FusedKind::MacSdotp8
    };
    let detail = FusedDetail::Mac {
        four_bit,
        p1,
        off1,
        s1,
        p2,
        off2,
        s2,
        ld1,
        ld2,
        acc,
        swap,
    };
    Some(fused(kind, instrs, 7, cnt, detail))
}

fn try_copy(entry_pc: u32, instrs: &[Decoded]) -> Option<FusedOp> {
    let cnt = back_edge(entry_pc, instrs, 5)?;
    if !decrements(instrs, 4, cnt) {
        return None;
    }
    let (tmp, src, loff, lwidth, lsigned) = match instrs[0].op {
        Op::Lb(off) => (instrs[0].rd, instrs[0].rs1, off, 1u8, true),
        Op::Lbu(off) => (instrs[0].rd, instrs[0].rs1, off, 1, false),
        Op::Lh(off) => (instrs[0].rd, instrs[0].rs1, off, 2, true),
        Op::Lhu(off) => (instrs[0].rd, instrs[0].rs1, off, 2, false),
        Op::Lw(off) => (instrs[0].rd, instrs[0].rs1, off, 4, false),
        _ => return None,
    };
    if tmp == 0 {
        return None;
    }
    let (dst, soff, swidth) = match instrs[1].op {
        Op::Sb(off) => (instrs[1].rs1, off, 1u8),
        Op::Sh(off) => (instrs[1].rs1, off, 2),
        Op::Sw(off) => (instrs[1].rs1, off, 4),
        _ => return None,
    };
    if instrs[1].rs2 != tmp {
        return None;
    }
    let (ra, sa) = addi_self(&instrs[2])?;
    let (rb, sb) = addi_self(&instrs[3])?;
    let (ss, ds) = if (ra, rb) == (src, dst) {
        (sa, sb)
    } else if (ra, rb) == (dst, src) {
        (sb, sa)
    } else {
        return None;
    };
    if !distinct_nonzero(&[src, dst, tmp, cnt]) {
        return None;
    }
    let kind = if lwidth == swidth && ss == lwidth as u32 && ds == swidth as u32 {
        FusedKind::Memcpy
    } else {
        FusedKind::StridedCopy
    };
    let detail = FusedDetail::Copy {
        src,
        loff,
        ss,
        dst,
        soff,
        ds,
        tmp,
        lwidth,
        lsigned,
        swidth,
    };
    Some(fused(kind, instrs, 6, cnt, detail))
}

fn try_memset(entry_pc: u32, instrs: &[Decoded]) -> Option<FusedOp> {
    let cnt = back_edge(entry_pc, instrs, 3)?;
    if !decrements(instrs, 2, cnt) {
        return None;
    }
    let (p, off, width) = match instrs[0].op {
        Op::Sb(off) => (instrs[0].rs1, off, 1u8),
        Op::Sh(off) => (instrs[0].rs1, off, 2),
        Op::Sw(off) => (instrs[0].rs1, off, 4),
        _ => return None,
    };
    let val = instrs[0].rs2;
    let (pr, stride) = addi_self(&instrs[1])?;
    if pr != p {
        return None;
    }
    // `val` may be x0 (zero fill) but must be loop-invariant, i.e. not
    // the pointer or the counter.
    if !distinct_nonzero(&[p, cnt]) || val == p || val == cnt {
        return None;
    }
    let detail = FusedDetail::Memset {
        p,
        off,
        stride,
        width,
        val,
    };
    Some(fused(FusedKind::Memset, instrs, 4, cnt, detail))
}

/// Whether every access of the affine stream `base + off + j*stride`
/// (`j in 0..iters`, `width` bytes each) stays inside data memory
/// *without wrapping the 32-bit address space*. Checked in wide
/// arithmetic over the two endpoints; a failed check only means "run
/// unfused", never a wrong result.
fn stream_ok(dmem_len: usize, base: u32, off: u32, stride: u32, width: u8, iters: u64) -> bool {
    let a0 = base.wrapping_add(off) as i128;
    let s = stride as i32 as i128;
    let last = a0 + s * (iters as i128 - 1);
    let (lo, hi) = if s >= 0 { (a0, last) } else { (last, a0) };
    lo >= DMEM_BASE as i128 && hi + width as i128 <= DMEM_BASE as i128 + dmem_len as i128
}

#[inline]
fn load_elem(dmem: &[u8], at: usize, width: u8, signed: bool) -> u32 {
    match (width, signed) {
        (1, false) => dmem[at] as u32,
        (1, true) => dmem[at] as i8 as i32 as u32,
        (2, false) => u16::from_le_bytes([dmem[at], dmem[at + 1]]) as u32,
        (2, true) => u16::from_le_bytes([dmem[at], dmem[at + 1]]) as i16 as i32 as u32,
        _ => u32::from_le_bytes([dmem[at], dmem[at + 1], dmem[at + 2], dmem[at + 3]]),
    }
}

#[inline]
fn store_elem(dmem: &mut [u8], at: usize, value: u32, width: u8) {
    match width {
        1 => dmem[at] = value as u8,
        2 => dmem[at..at + 2].copy_from_slice(&(value as u16).to_le_bytes()),
        _ => dmem[at..at + 4].copy_from_slice(&value.to_le_bytes()),
    }
}

impl FusedOp {
    /// Executes up to `max_iters` iterations of the fused loop directly
    /// against the register file and data memory.
    ///
    /// Reads the live trip count from the counter register (a zero
    /// counter wraps: these are do-while loops, so it means 2^32
    /// iterations), executes `min(trip, max_iters)` iterations and
    /// writes back every loop-carried register exactly as the unfused
    /// body would have left it. Returns `None` — with **no** state
    /// touched — when any planned access would leave data memory, so the
    /// caller falls back to per-instruction dispatch and reproduces the
    /// exact fault.
    pub(crate) fn execute(
        &self,
        regs: &mut [u32; 32],
        mem: &mut Memory,
        max_iters: u64,
    ) -> Option<FusedOutcome> {
        let cnt0 = regs[self.cnt as usize];
        let total = if cnt0 == 0 { 1u64 << 32 } else { cnt0 as u64 };
        let iters = total.min(max_iters);
        if iters == 0 {
            return None;
        }
        match &self.detail {
            // The nest has its own executor with per-path accounting.
            FusedDetail::ConvNest(_) => return None,
            FusedDetail::Mac {
                four_bit,
                p1,
                off1,
                s1,
                p2,
                off2,
                s2,
                ld1,
                ld2,
                acc,
                swap,
            } => {
                let b1 = regs[*p1 as usize];
                let b2 = regs[*p2 as usize];
                let dmem = mem.dmem();
                if !stream_ok(dmem.len(), b1, *off1, *s1, 4, iters)
                    || !stream_ok(dmem.len(), b2, *off2, *s2, 4, iters)
                {
                    return None;
                }
                let mut a1 = b1.wrapping_add(*off1).wrapping_sub(DMEM_BASE) as usize;
                let mut a2 = b2.wrapping_add(*off2).wrapping_sub(DMEM_BASE) as usize;
                let s1i = *s1 as i32 as isize;
                let s2i = *s2 as i32 as isize;
                let mut accv = regs[*acc as usize] as i32;
                let (mut w1, mut w2) = (0u32, 0u32);
                for _ in 0..iters {
                    w1 = u32::from_le_bytes([dmem[a1], dmem[a1 + 1], dmem[a1 + 2], dmem[a1 + 3]]);
                    w2 = u32::from_le_bytes([dmem[a2], dmem[a2 + 1], dmem[a2 + 2], dmem[a2 + 3]]);
                    let (x, y) = if *swap { (w2, w1) } else { (w1, w2) };
                    // Same accumulation expression as the engines, so
                    // overflow behaviour is identical too.
                    accv += if *four_bit {
                        sdotp4(x, y)
                    } else {
                        sdotp8(x, y)
                    };
                    a1 = a1.wrapping_add_signed(s1i);
                    a2 = a2.wrapping_add_signed(s2i);
                }
                regs[*ld1 as usize] = w1;
                regs[*ld2 as usize] = w2;
                regs[*acc as usize] = accv as u32;
                regs[*p1 as usize] = b1.wrapping_add((iters as u32).wrapping_mul(*s1));
                regs[*p2 as usize] = b2.wrapping_add((iters as u32).wrapping_mul(*s2));
            }
            FusedDetail::Memset {
                p,
                off,
                stride,
                width,
                val,
            } => {
                let base = regs[*p as usize];
                let value = regs[*val as usize];
                let dmem = mem.dmem_mut();
                if !stream_ok(dmem.len(), base, *off, *stride, *width, iters) {
                    return None;
                }
                let mut a = base.wrapping_add(*off).wrapping_sub(DMEM_BASE) as usize;
                let si = *stride as i32 as isize;
                if *width == 1 && si == 1 {
                    dmem[a..a + iters as usize].fill(value as u8);
                } else {
                    for _ in 0..iters {
                        store_elem(dmem, a, value, *width);
                        a = a.wrapping_add_signed(si);
                    }
                }
                regs[*p as usize] = base.wrapping_add((iters as u32).wrapping_mul(*stride));
            }
            FusedDetail::Copy {
                src,
                loff,
                ss,
                dst,
                soff,
                ds,
                tmp,
                lwidth,
                lsigned,
                swidth,
            } => {
                let sbase = regs[*src as usize];
                let dbase = regs[*dst as usize];
                let dmem = mem.dmem_mut();
                if !stream_ok(dmem.len(), sbase, *loff, *ss, *lwidth, iters)
                    || !stream_ok(dmem.len(), dbase, *soff, *ds, *swidth, iters)
                {
                    return None;
                }
                let mut sa = sbase.wrapping_add(*loff).wrapping_sub(DMEM_BASE) as usize;
                let mut da = dbase.wrapping_add(*soff).wrapping_sub(DMEM_BASE) as usize;
                let ssi = *ss as i32 as isize;
                let dsi = *ds as i32 as isize;
                let w = *lwidth as usize;
                let span = w as u64 * iters;
                let contiguous = lwidth == swidth && ssi == w as isize && dsi == w as isize;
                let disjoint = (sa as u64 + span <= da as u64) || (da as u64 + span <= sa as u64);
                let last;
                if contiguous && disjoint {
                    let n = span as usize;
                    dmem.copy_within(sa..sa + n, da);
                    last = load_elem(dmem, sa + n - w, *lwidth, *lsigned);
                } else {
                    let mut v = 0u32;
                    for _ in 0..iters {
                        v = load_elem(dmem, sa, *lwidth, *lsigned);
                        store_elem(dmem, da, v, *swidth);
                        sa = sa.wrapping_add_signed(ssi);
                        da = da.wrapping_add_signed(dsi);
                    }
                    last = v;
                }
                regs[*tmp as usize] = last;
                regs[*src as usize] = sbase.wrapping_add((iters as u32).wrapping_mul(*ss));
                regs[*dst as usize] = dbase.wrapping_add((iters as u32).wrapping_mul(*ds));
            }
        }
        regs[self.cnt as usize] = cnt0.wrapping_sub(iters as u32);
        Some(FusedOutcome {
            iters,
            fell_through: iters == total,
        })
    }

    /// Executes whole kernel-x iterations of a [`FusedKind::ConvNest`]
    /// loop, stopping only at iteration boundaries.
    ///
    /// Each iteration replays the exact register effects of its
    /// architectural path: the guards are evaluated on the live
    /// registers, pointer setup uses the same wrapping arithmetic as the
    /// instruction sequence, and the embedded channel loop runs through
    /// the plain MAC executor. The loop stops — leaving the registers at
    /// a clean iteration boundary, so the per-instruction pass resumed
    /// at the nest head reproduces the exact fault, timeout or loop exit
    /// — when the counter reaches the bound, when `budget` cannot cover
    /// the next iteration in full, when the channel-loop trip count is
    /// zero (the do-while underflow pathology) or when a channel-loop
    /// access would leave data memory.
    pub(crate) fn execute_nest(
        &self,
        regs: &mut [u32; 32],
        mem: &mut Memory,
        budget: u64,
    ) -> NestOutcome {
        let FusedDetail::ConvNest(d) = &self.detail else {
            unreachable!("execute_nest on a non-nest op");
        };
        let (off1, s1, off2, s2, swap_ptrs) = match d.inner.detail {
            FusedDetail::Mac {
                p1,
                off1,
                s1,
                off2,
                s2,
                ..
            } => (off1, s1, off2, s2, p1 != d.xptr),
            _ => unreachable!("nest inner is always a MAC loop"),
        };
        let mut out = NestOutcome::default();
        let mut budget = budget;
        loop {
            let kx = regs[d.kx as usize];
            if (kx as i32) >= (d.kmax as i32) {
                break;
            }
            let ix = regs[d.ox as usize].wrapping_add(kx).wrapping_add(d.ix_bias);
            let skip_lo = (ix as i32) < 0;
            let skip_hi = !skip_lo && (ix as i32) >= (regs[d.w as usize] as i32);
            if skip_lo || skip_hi {
                let cost = if skip_lo {
                    d.skip_lo.instret
                } else {
                    d.skip_hi.instret
                };
                if budget < cost {
                    break;
                }
                budget -= cost;
                regs[d.scratch as usize] = ix;
                regs[d.kx as usize] = kx.wrapping_add(1);
                if skip_lo {
                    out.skip_lo += 1;
                } else {
                    out.skip_hi += 1;
                }
                continue;
            }
            let ch = regs[d.ch as usize];
            let trip0 = ch >> d.trip_sh;
            if trip0 == 0 {
                break;
            }
            let trip = trip0 as u64;
            let cost = d.full1.instret + (trip - 1) * d.extra.instret;
            if budget < cost {
                break;
            }
            let xptr = regs[d.iy as usize]
                .wrapping_mul(regs[d.w as usize])
                .wrapping_add(ix)
                .wrapping_mul(ch)
                .wrapping_add(regs[d.xbase as usize]);
            let wptr = d
                .ky_mul
                .wrapping_mul(regs[d.ky as usize])
                .wrapping_add(kx)
                .wrapping_mul(ch)
                .wrapping_add(regs[d.wbase as usize]);
            // Validate both channel-loop streams *before* touching any
            // register, so a declined iteration leaves the boundary
            // state untouched.
            let (b1, b2) = if swap_ptrs {
                (wptr, xptr)
            } else {
                (xptr, wptr)
            };
            let dlen = mem.dmem().len();
            if !stream_ok(dlen, b1, off1, s1, 4, trip) || !stream_ok(dlen, b2, off2, s2, 4, trip) {
                break;
            }
            budget -= cost;
            regs[d.scratch as usize] = ix;
            regs[d.xptr as usize] = xptr;
            regs[d.wptr as usize] = wptr;
            regs[d.inner.cnt as usize] = trip0;
            d.inner
                .execute(regs, mem, trip)
                .expect("pre-validated channel-loop streams");
            regs[d.kx as usize] = kx.wrapping_add(1);
            out.full += 1;
            out.inner_extra += trip - 1;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::Instr;
    use crate::reg;

    const ENTRY: u32 = 0x40;

    fn dec(program: &[Instr]) -> Vec<Decoded> {
        program
            .iter()
            .enumerate()
            .map(|(i, &instr)| Decoded::new(instr, ENTRY + 4 * i as u32))
            .collect()
    }

    /// The exact 7-instruction MAC reduction loop the kernel code
    /// generator emits for SDOTP channel loops.
    fn mac_loop(four_bit: bool) -> Vec<Instr> {
        let sdotp = if four_bit {
            Instr::Sdotp4 {
                rd: reg::S7,
                rs1: reg::T4,
                rs2: reg::T5,
            }
        } else {
            Instr::Sdotp8 {
                rd: reg::S7,
                rs1: reg::T4,
                rs2: reg::T5,
            }
        };
        vec![
            Instr::Load {
                op: crate::LoadOp::Lw,
                rd: reg::T4,
                rs1: reg::T1,
                offset: 0,
            },
            Instr::Load {
                op: crate::LoadOp::Lw,
                rd: reg::T5,
                rs1: reg::T2,
                offset: 0,
            },
            sdotp,
            Instr::Addi {
                rd: reg::T1,
                rs1: reg::T1,
                imm: 4,
            },
            Instr::Addi {
                rd: reg::T2,
                rs1: reg::T2,
                imm: 4,
            },
            Instr::Addi {
                rd: reg::T3,
                rs1: reg::T3,
                imm: -1,
            },
            Instr::Branch {
                op: crate::BranchOp::Bne,
                rs1: reg::T3,
                rs2: reg::ZERO,
                offset: -24,
            },
        ]
    }

    fn copy_loop(load: crate::LoadOp, store: crate::StoreOp, ss: i32, ds: i32) -> Vec<Instr> {
        vec![
            Instr::Load {
                op: load,
                rd: reg::T4,
                rs1: reg::T1,
                offset: 0,
            },
            Instr::Store {
                op: store,
                rs1: reg::T2,
                rs2: reg::T4,
                offset: 0,
            },
            Instr::Addi {
                rd: reg::T1,
                rs1: reg::T1,
                imm: ss,
            },
            Instr::Addi {
                rd: reg::T2,
                rs1: reg::T2,
                imm: ds,
            },
            Instr::Addi {
                rd: reg::T3,
                rs1: reg::T3,
                imm: -1,
            },
            Instr::Branch {
                op: crate::BranchOp::Bne,
                rs1: reg::T3,
                rs2: reg::ZERO,
                offset: -20,
            },
        ]
    }

    fn memset_loop(store: crate::StoreOp, stride: i32, val: u8) -> Vec<Instr> {
        vec![
            Instr::Store {
                op: store,
                rs1: reg::T1,
                rs2: val,
                offset: 0,
            },
            Instr::Addi {
                rd: reg::T1,
                rs1: reg::T1,
                imm: stride,
            },
            Instr::Addi {
                rd: reg::T3,
                rs1: reg::T3,
                imm: -1,
            },
            Instr::Branch {
                op: crate::BranchOp::Bne,
                rs1: reg::T3,
                rs2: reg::ZERO,
                offset: -12,
            },
        ]
    }

    /// The primary recognised op, as most tests only care about it.
    fn recognize1(instrs: &[Decoded]) -> Option<FusedOp> {
        recognize(instrs).0
    }

    #[test]
    fn recognizes_the_kernel_mac_loops() {
        for (four_bit, kind) in [(false, FusedKind::MacSdotp8), (true, FusedKind::MacSdotp4)] {
            let f = recognize1(&dec(&mac_loop(four_bit))).expect("mac loop should fuse");
            assert_eq!(f.kind, kind);
            assert_eq!(f.body_len, 7);
            assert_eq!(f.cnt, reg::T3);
            // The sdotp reads t5 one instruction after its lw: exactly one
            // steady-state load-use stall per iteration.
            assert_eq!(f.steady_stalls, LOAD_USE_STALL);
            assert!(f.flush_on_take > 0);
        }
    }

    #[test]
    fn classifies_copy_loops_by_stride() {
        use crate::{LoadOp, StoreOp};
        let unit = |f: FusedOp| f.kind;
        assert_eq!(
            unit(recognize1(&dec(&copy_loop(LoadOp::Lw, StoreOp::Sw, 4, 4))).unwrap()),
            FusedKind::Memcpy
        );
        assert_eq!(
            unit(recognize1(&dec(&copy_loop(LoadOp::Lbu, StoreOp::Sb, 1, 1))).unwrap()),
            FusedKind::Memcpy
        );
        // im2col-style gather: byte copy walking the source by a row pitch.
        assert_eq!(
            unit(recognize1(&dec(&copy_loop(LoadOp::Lb, StoreOp::Sb, 9, 1))).unwrap()),
            FusedKind::StridedCopy
        );
        // Width-changing copies never qualify as memcpy.
        assert_eq!(
            unit(recognize1(&dec(&copy_loop(LoadOp::Lh, StoreOp::Sb, 2, 1))).unwrap()),
            FusedKind::StridedCopy
        );
    }

    #[test]
    fn recognizes_memset_including_zero_fill() {
        use crate::StoreOp;
        for (store, stride) in [
            (StoreOp::Sb, 1),
            (StoreOp::Sh, 2),
            (StoreOp::Sw, 4),
            (StoreOp::Sb, 3),
        ] {
            let f = recognize1(&dec(&memset_loop(store, stride, reg::ZERO)))
                .expect("memset loop should fuse");
            assert_eq!(f.kind, FusedKind::Memset);
            assert_eq!(f.body_len, 4);
        }
        // Non-zero fill value is fine too.
        assert!(recognize1(&dec(&memset_loop(StoreOp::Sb, 1, reg::A0))).is_some());
    }

    #[test]
    fn rejects_aliased_or_malformed_loops() {
        use crate::{BranchOp, LoadOp, StoreOp};
        // Counter aliases a pointer.
        let mut p = copy_loop(LoadOp::Lw, StoreOp::Sw, 4, 4);
        if let Instr::Addi { rd, rs1, .. } = &mut p[4] {
            *rd = reg::T1;
            *rs1 = reg::T1;
        }
        if let Instr::Branch { rs1, .. } = &mut p[5] {
            *rs1 = reg::T1;
        }
        assert!(recognize1(&dec(&p)).is_none());

        // Memset whose "value" register is the walked pointer.
        assert!(recognize1(&dec(&memset_loop(StoreOp::Sb, 1, reg::T1))).is_none());

        // Back edge to somewhere other than the trace entry.
        let p = mac_loop(false);
        assert!(recognize1(&dec(&p)[1..]).is_none());

        // Decrement by something other than -1.
        let mut p = mac_loop(false);
        if let Instr::Addi { imm, .. } = &mut p[5] {
            *imm = -2;
        }
        assert!(recognize1(&dec(&p)).is_none());

        // `bne` against a non-zero register is not a counted loop.
        let mut p = mac_loop(false);
        if let Instr::Branch { rs2, .. } = &mut p[6] {
            *rs2 = reg::A0;
        }
        assert!(recognize1(&dec(&p)).is_none());

        // `beq` back edges never fuse.
        let mut p = mac_loop(false);
        if let Instr::Branch { op, .. } = &mut p[6] {
            *op = BranchOp::Beq;
        }
        assert!(recognize1(&dec(&p)).is_none());
    }

    #[test]
    fn executor_runs_a_memcpy_and_writes_back_loop_registers() {
        use crate::{LoadOp, StoreOp};
        let f = recognize1(&dec(&copy_loop(LoadOp::Lw, StoreOp::Sw, 4, 4))).unwrap();
        let mut mem = Memory::new(1024, 1024);
        let src: Vec<u8> = (0u8..64).collect();
        mem.write_dmem(DMEM_BASE, &src);
        let mut regs = [0u32; 32];
        regs[reg::T1 as usize] = DMEM_BASE;
        regs[reg::T2 as usize] = DMEM_BASE + 256;
        regs[reg::T3 as usize] = 16;
        let out = f.execute(&mut regs, &mut mem, u64::MAX).unwrap();
        assert_eq!(out.iters, 16);
        assert!(out.fell_through);
        assert_eq!(mem.read_dmem(DMEM_BASE + 256, 64), &src[..]);
        assert_eq!(regs[reg::T1 as usize], DMEM_BASE + 64);
        assert_eq!(regs[reg::T2 as usize], DMEM_BASE + 256 + 64);
        assert_eq!(regs[reg::T3 as usize], 0);
        // tmp holds the last word copied.
        assert_eq!(regs[reg::T4 as usize], u32::from_le_bytes([60, 61, 62, 63]));
    }

    #[test]
    fn executor_caps_iterations_at_the_budget() {
        use crate::StoreOp;
        let f = recognize1(&dec(&memset_loop(StoreOp::Sb, 1, reg::A0))).unwrap();
        let mut mem = Memory::new(1024, 1024);
        let mut regs = [0u32; 32];
        regs[reg::T1 as usize] = DMEM_BASE;
        regs[reg::T3 as usize] = 100;
        regs[reg::A0 as usize] = 0xAB;
        let out = f.execute(&mut regs, &mut mem, 40).unwrap();
        assert_eq!(out.iters, 40);
        assert!(!out.fell_through);
        assert_eq!(regs[reg::T3 as usize], 60);
        let mut want = vec![0xABu8; 40];
        want.push(0);
        assert_eq!(mem.read_dmem(DMEM_BASE, 41), &want[..]);
    }

    #[test]
    fn executor_declines_out_of_bounds_streams_and_zero_budgets() {
        use crate::StoreOp;
        let f = recognize1(&dec(&memset_loop(StoreOp::Sw, 4, reg::ZERO))).unwrap();
        let mut mem = Memory::new(1024, 1024);
        let mut regs = [0u32; 32];
        // Trip count runs 4 bytes past the 1 KiB data memory.
        regs[reg::T1 as usize] = DMEM_BASE + 1024 - 16;
        regs[reg::T3 as usize] = 5;
        let saved = regs;
        assert!(f.execute(&mut regs, &mut mem, u64::MAX).is_none());
        assert_eq!(regs, saved, "a declined execute must not touch state");
        // An address below data memory declines too.
        regs[reg::T1 as usize] = DMEM_BASE - 4;
        regs[reg::T3 as usize] = 2;
        assert!(f.execute(&mut regs, &mut mem, u64::MAX).is_none());
        // Zero budget declines regardless of the counter.
        regs[reg::T1 as usize] = DMEM_BASE;
        assert!(f.execute(&mut regs, &mut mem, 0).is_none());
    }

    #[test]
    fn executor_treats_zero_counter_as_a_full_wrap() {
        use crate::StoreOp;
        let f = recognize1(&dec(&memset_loop(StoreOp::Sb, 1, reg::ZERO))).unwrap();
        let mut mem = Memory::new(1024, 1024);
        mem.write_dmem(DMEM_BASE, &[0xFF; 16]);
        let mut regs = [0u32; 32];
        regs[reg::T1 as usize] = DMEM_BASE;
        regs[reg::T3 as usize] = 0;
        // A do-while loop entered with cnt == 0 runs 2^32 iterations; a
        // 10-iteration budget caps it and leaves the counter wrapped.
        let out = f.execute(&mut regs, &mut mem, 10).unwrap();
        assert_eq!(out.iters, 10);
        assert!(!out.fell_through);
        assert_eq!(regs[reg::T3 as usize], 0u32.wrapping_sub(10));
        assert_eq!(
            mem.read_dmem(DMEM_BASE, 11),
            [[0u8; 10].as_slice(), &[0xFF]].concat()
        );
    }

    /// The exact 25-instruction kernel-x guard loop `emit_conv3x3`
    /// generates: kx in t6, ix scratch t0, output-x s6, spatial size a4,
    /// input row s11, bytes-per-pixel a5, input base a0, kernel-y s8,
    /// weight base s10, pointers t1/t2, counter t3, accumulator s7.
    fn nest_loop() -> Vec<Instr> {
        let mut p = vec![
            Instr::Addi {
                rd: reg::T0,
                rs1: reg::ZERO,
                imm: 3,
            },
            Instr::Branch {
                op: crate::BranchOp::Bge,
                rs1: reg::T6,
                rs2: reg::T0,
                offset: 24 * 4, // kx_end, past the closing jal
            },
            Instr::Add {
                rd: reg::T0,
                rs1: reg::S6,
                rs2: reg::T6,
            },
            Instr::Addi {
                rd: reg::T0,
                rs1: reg::T0,
                imm: -1,
            },
            Instr::Branch {
                op: crate::BranchOp::Blt,
                rs1: reg::T0,
                rs2: reg::ZERO,
                offset: (23 - 4) * 4,
            },
            Instr::Branch {
                op: crate::BranchOp::Bge,
                rs1: reg::T0,
                rs2: reg::A4,
                offset: (23 - 5) * 4,
            },
            Instr::Mul {
                rd: reg::T1,
                rs1: reg::S11,
                rs2: reg::A4,
            },
            Instr::Add {
                rd: reg::T1,
                rs1: reg::T1,
                rs2: reg::T0,
            },
            Instr::Mul {
                rd: reg::T1,
                rs1: reg::T1,
                rs2: reg::A5,
            },
            Instr::Add {
                rd: reg::T1,
                rs1: reg::T1,
                rs2: reg::A0,
            },
            Instr::Addi {
                rd: reg::T2,
                rs1: reg::ZERO,
                imm: 3,
            },
            Instr::Mul {
                rd: reg::T2,
                rs1: reg::T2,
                rs2: reg::S8,
            },
            Instr::Add {
                rd: reg::T2,
                rs1: reg::T2,
                rs2: reg::T6,
            },
            Instr::Mul {
                rd: reg::T2,
                rs1: reg::T2,
                rs2: reg::A5,
            },
            Instr::Add {
                rd: reg::T2,
                rs1: reg::T2,
                rs2: reg::S10,
            },
            Instr::Srli {
                rd: reg::T3,
                rs1: reg::A5,
                shamt: 2,
            },
        ];
        p.extend(mac_loop(false));
        p.push(Instr::Addi {
            rd: reg::T6,
            rs1: reg::T6,
            imm: 1,
        });
        p.push(Instr::Jal {
            rd: reg::ZERO,
            offset: -24 * 4,
        });
        p
    }

    #[test]
    fn recognizes_the_conv_kx_nest() {
        let (primary, inner) = recognize(&dec(&nest_loop()));
        let f = primary.expect("nest should fuse");
        assert_eq!(f.kind, FusedKind::ConvNest);
        assert_eq!(f.start, 0);
        assert_eq!(f.body_len, NEST_LEN);
        let FusedDetail::ConvNest(d) = &f.detail else {
            panic!("nest kind without nest detail");
        };
        assert_eq!(
            (d.kx, d.scratch, d.ox, d.w, d.iy, d.ch, d.xbase),
            (
                reg::T6,
                reg::T0,
                reg::S6,
                reg::A4,
                reg::S11,
                reg::A5,
                reg::A0
            )
        );
        assert_eq!(
            (d.ky, d.wbase, d.xptr, d.wptr),
            (reg::S8, reg::S10, reg::T1, reg::T2)
        );
        assert_eq!(
            (d.kmax, d.ky_mul, d.trip_sh, d.ix_bias),
            (3, 3, 2, u32::MAX)
        );
        // Path shapes: 7-instruction left skip, 8-instruction right skip,
        // 25-instruction full iteration, 7-instruction extra channel pass.
        assert_eq!(
            [
                d.skip_lo.instret,
                d.skip_hi.instret,
                d.full1.instret,
                d.extra.instret
            ],
            [7, 8, 25, 7]
        );
        // Only the channel loop has the lw->sdotp interlock.
        assert_eq!(d.skip_lo.stalls, 0);
        assert_eq!(d.full1.stalls, LOAD_USE_STALL);
        assert_eq!(d.extra.stalls, LOAD_USE_STALL);
        // Every path flushes at least once (guard or jump).
        assert!(d.skip_lo.flushes > 0 && d.full1.flushes > 0 && d.extra.flushes > 0);
        // The embedded channel loop rides along for the Maupiti fallback.
        let inner = inner.expect("nest carries its inner loop");
        assert_eq!(inner.kind, FusedKind::MacSdotp8);
        assert_eq!(inner.start, NEST_INNER_OFF);
    }

    #[test]
    fn rejects_malformed_nests() {
        // A truncated window (no closing jal) is not a nest; the embedded
        // channel loop at offset 16 still fuses on its own.
        let mut p = nest_loop();
        p.pop();
        let (f, inner) = recognize(&dec(&p));
        assert_eq!(
            f.expect("inner mac should still fuse").kind,
            FusedKind::MacSdotp8
        );
        assert!(inner.is_none());

        // Guards skipping anywhere but the `addi kx` tail are not a nest
        // (the channel loop may still fuse on its own).
        let mut p = nest_loop();
        if let Instr::Branch { offset, .. } = &mut p[4] {
            *offset += 4;
        }
        assert!(recognize(&dec(&p))
            .0
            .is_none_or(|f| f.kind != FusedKind::ConvNest));

        // A counter register aliasing the kernel-x register is rejected.
        let mut p = nest_loop();
        if let Instr::Srli { rd, .. } = &mut p[15] {
            *rd = reg::T6;
        }
        assert!(recognize(&dec(&p))
            .0
            .is_none_or(|f| f.kind != FusedKind::ConvNest));
    }

    #[test]
    fn nest_executor_walks_guards_and_full_iterations() {
        let f = recognize(&dec(&nest_loop())).0.unwrap();
        let mut mem = Memory::new(1024, 4096);
        let bytes: Vec<u8> = (0..2048u32)
            .map(|i| (i.wrapping_mul(23) >> 3) as u8)
            .collect();
        mem.write_dmem(DMEM_BASE, &bytes);
        // W = 4, ch = 4 bytes (trip 1), iy = 1, ky = 1, ox = 0:
        // kx 0 -> ix -1 (left skip), kx 1/2 -> full iterations.
        let mut regs = [0u32; 32];
        regs[reg::A4 as usize] = 4;
        regs[reg::A5 as usize] = 4;
        regs[reg::S11 as usize] = 1;
        regs[reg::S8 as usize] = 1;
        regs[reg::A0 as usize] = DMEM_BASE;
        regs[reg::S10 as usize] = DMEM_BASE + 512;
        let mut full_budget = regs;
        let out = f.execute_nest(&mut full_budget, &mut mem, u64::MAX);
        assert_eq!(
            (out.skip_lo, out.skip_hi, out.full, out.inner_extra),
            (1, 0, 2, 0)
        );
        assert_eq!(out.iters(), 3);
        assert_eq!(full_budget[reg::T6 as usize], 3, "kx ran to the bound");
        assert_eq!(full_budget[reg::T3 as usize], 0, "channel counter spent");
        // A budget covering only the skip and one full iteration stops at
        // the iteration boundary.
        let mut capped = regs;
        let out = f.execute_nest(&mut capped, &mut mem, 7 + 25);
        assert_eq!((out.skip_lo, out.full), (1, 1));
        assert_eq!(capped[reg::T6 as usize], 2);
        // ox = W - 1 exercises the right-padding guard on the last kx.
        let mut right = regs;
        right[reg::S6 as usize] = 3;
        let out = f.execute_nest(&mut right, &mut mem, u64::MAX);
        assert_eq!((out.skip_lo, out.skip_hi, out.full), (0, 1, 2));
        // An out-of-bounds channel stream declines at the iteration
        // boundary without touching the counter.
        let mut oob = regs;
        oob[reg::S11 as usize] = 100_000;
        let before = oob;
        let out = f.execute_nest(&mut oob, &mut mem, u64::MAX);
        assert_eq!(
            (out.iters(), out.skip_lo),
            (1, 1),
            "only the guard skip ran"
        );
        assert_eq!(oob[reg::T6 as usize], 1);
        assert_eq!(oob[reg::T1 as usize], before[reg::T1 as usize]);
    }

    #[test]
    fn overlapping_copy_matches_element_by_element_semantics() {
        use crate::{LoadOp, StoreOp};
        let f = recognize1(&dec(&copy_loop(LoadOp::Lbu, StoreOp::Sb, 1, 1))).unwrap();
        let mut mem = Memory::new(1024, 1024);
        mem.write_dmem(DMEM_BASE, &[1, 2, 3, 4, 5, 6, 7, 8]);
        let mut regs = [0u32; 32];
        // dst = src + 1 with forward element order smears the first byte.
        regs[reg::T1 as usize] = DMEM_BASE;
        regs[reg::T2 as usize] = DMEM_BASE + 1;
        regs[reg::T3 as usize] = 4;
        f.execute(&mut regs, &mut mem, u64::MAX).unwrap();
        assert_eq!(mem.read_dmem(DMEM_BASE, 8), &[1, 1, 1, 1, 1, 6, 7, 8]);
    }
}
