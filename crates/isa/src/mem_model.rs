//! Pluggable memory-hierarchy cost models: the seam every instruction
//! fetch and data access is charged through.
//!
//! The flat IBEX cycle table ([`crate::pipeline`]) assumes an ideal
//! memory system: fetch always hits and a load/store always completes in
//! its two-cycle data-interface slot. Real silicon does not work that way
//! — on the MAUPITI chip the instruction stream is fed by a small
//! *prefetch buffer* that must refill through the memory after every
//! taken control transfer, and data accesses go to a *single-port* SRAM
//! whose port is shared with that refill path. [`MemoryModel`] makes the
//! difference explicit:
//!
//! * [`MemoryModel::Flat`] — the ideal memory system. Charges nothing on
//!   top of the flat per-op cycle table, reproducing the historical cycle
//!   counts **bit-identically** in every execution mode. This is the
//!   default.
//! * [`MemoryModel::Maupiti`] — the modelled hierarchy, parameterised by
//!   [`MaupitiMemConfig`]. Every PC redirect (taken branch, jump) flushes
//!   the prefetch buffer and pays [`MaupitiMemConfig::refill_cycles`] of
//!   fetch stall; while the buffer catches back up (the next
//!   [`MaupitiMemConfig::prefetch_entries`] instructions), each data
//!   access steals the SRAM port from the refill stream and pays
//!   [`MaupitiMemConfig::contention_cycles`] of structural stall.
//!   Straight-line code that never redirects the PC therefore runs at
//!   exactly the flat-model speed — the prefetch buffer never misses —
//!   and the extra cycles are strictly monotone in the refill latency.
//!
//! The model is defined over the stream of *retired* instructions, so
//! both engines can implement it exactly: the reference interpreter steps
//! [`MemModelState::step`] once per instruction, while the block-cached
//! engine charges a whole trace execution in one call to
//! [`MemModelState::charge_prefix`] using the per-trace access summaries
//! precomputed on each decoded block (`Block::mem_prefix` /
//! `Block::redirects`). The two bookkeeping paths are held to identical
//! stall counters by the differential tests in this crate.
//!
//! Stalls are broken out by cause in [`MemStats`], which downstream
//! consumers (`pcount-platform`, `pcount-core`) use to split per-inference
//! energy into core, instruction-memory and data-memory components.

/// Per-cause stall counters of the memory-hierarchy model.
///
/// All counters are zero under [`MemoryModel::Flat`]. Total extra cycles
/// charged on top of the flat per-op table are
/// [`MemStats::stall_cycles`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemStats {
    /// Prefetch-buffer misses: taken control transfers that forced a
    /// refill of the fetch path.
    pub fetch_misses: u64,
    /// Cycles stalled refilling the prefetch buffer after fetch misses.
    pub imem_stall_cycles: u64,
    /// Data accesses that collided with a prefetch refill on the
    /// single-port SRAM.
    pub contended_accesses: u64,
    /// Cycles lost to those structural port collisions.
    pub dmem_stall_cycles: u64,
}

impl MemStats {
    /// Total stall cycles charged by the memory model (instruction-side
    /// plus data-side).
    pub fn stall_cycles(&self) -> u64 {
        self.imem_stall_cycles + self.dmem_stall_cycles
    }

    /// Adds `other`'s counters into `self`.
    pub fn accumulate(&mut self, other: &MemStats) {
        self.fetch_misses += other.fetch_misses;
        self.imem_stall_cycles += other.imem_stall_cycles;
        self.contended_accesses += other.contended_accesses;
        self.dmem_stall_cycles += other.dmem_stall_cycles;
    }
}

/// Parameters of the MAUPITI memory hierarchy model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MaupitiMemConfig {
    /// Prefetch-buffer depth in instruction words: how many instructions
    /// after a redirect the fetch stream and the data port still contend
    /// while the buffer catches back up.
    pub prefetch_entries: u32,
    /// Fetch-stall cycles charged for every prefetch-buffer miss (taken
    /// control transfer), on top of the pipeline's architectural flush
    /// cycles.
    pub refill_cycles: u32,
    /// Stall cycles charged for every data access that steals the
    /// single SRAM port from an in-flight prefetch refill.
    pub contention_cycles: u32,
}

impl Default for MaupitiMemConfig {
    /// The MAUPITI silicon defaults: a 4-entry prefetch buffer, 2-cycle
    /// refill latency and 1-cycle port-contention penalty.
    fn default() -> Self {
        Self {
            prefetch_entries: 4,
            refill_cycles: 2,
            contention_cycles: 1,
        }
    }
}

/// The memory-hierarchy cost model a [`crate::Cpu`] charges fetches and
/// data accesses through.
///
/// [`MemoryModel::Flat`] assumes ideal memories and charges nothing
/// beyond the flat per-op cycle table, reproducing the historical cycle
/// counts bit-identically; [`MemoryModel::Maupiti`] models an N-entry
/// prefetch buffer that refills after every taken control transfer and a
/// single-port data SRAM whose port contends with that refill stream,
/// with per-cause stall counters in [`MemStats`]. Both execution engines
/// implement the model exactly (it is defined over the retired
/// instruction stream), so the stall breakdown is engine-independent.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum MemoryModel {
    /// Ideal memories: no charge beyond the flat per-op cycle table.
    /// Cycle counts are bit-identical to the historical (pre-seam)
    /// accounting in every execution mode.
    #[default]
    Flat,
    /// Prefetch buffer + single-port SRAM hierarchy.
    Maupiti(MaupitiMemConfig),
}

impl MemoryModel {
    /// The Maupiti hierarchy with its silicon-default parameters.
    pub fn maupiti() -> Self {
        MemoryModel::Maupiti(MaupitiMemConfig::default())
    }

    /// Whether this is the ideal flat model.
    pub fn is_flat(&self) -> bool {
        matches!(self, MemoryModel::Flat)
    }
}

/// Run-time state of the memory model, persisted on the CPU across
/// blocks, runs and engine switches.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub(crate) struct MemModelState {
    /// Instructions left in the current post-redirect refill window
    /// (0 = the prefetch buffer is full and nothing contends).
    pub(crate) window_left: u32,
}

impl MemModelState {
    /// Clears the refill window (new program image).
    pub(crate) fn reset(&mut self) {
        *self = Self::default();
    }

    /// Advances the model by one retired instruction (reference
    /// interpreter path) and returns the extra stall cycles to charge.
    ///
    /// `is_mem` flags a data-memory access, `redirect` a taken control
    /// transfer (jump or taken branch).
    #[inline]
    pub(crate) fn step(
        &mut self,
        cfg: &MaupitiMemConfig,
        is_mem: bool,
        redirect: bool,
        stats: &mut MemStats,
    ) -> u64 {
        let mut extra = 0u64;
        if self.window_left > 0 {
            if is_mem {
                stats.contended_accesses += 1;
                stats.dmem_stall_cycles += cfg.contention_cycles as u64;
                extra += cfg.contention_cycles as u64;
            }
            self.window_left -= 1;
        }
        if redirect {
            stats.fetch_misses += 1;
            stats.imem_stall_cycles += cfg.refill_cycles as u64;
            extra += cfg.refill_cycles as u64;
            self.window_left = cfg.prefetch_entries;
        }
        extra
    }

    /// Charges the retired trace segment `[start, n)` of one trace
    /// execution in a single call (block-cached engine path), equivalent
    /// to [`MemModelState::step`] applied to each of the segment's
    /// instructions. `start` is 0 for a whole retired prefix; it is
    /// nonzero only when the engine resumes a trace past a fused loop
    /// whose earlier positions were already charged in bulk.
    ///
    /// `mem_prefix[i]` counts the data accesses among the trace's first
    /// `i` instructions and `redirects` holds the ascending trace
    /// positions of instructions that unconditionally redirect the PC
    /// (followed and terminator jumps) — both precomputed per block.
    /// `exit_redirect` is set when the segment leaves through a taken
    /// side exit (its final instruction is a taken conditional branch).
    /// Returns the extra stall cycles to charge.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn charge_prefix(
        &mut self,
        cfg: &MaupitiMemConfig,
        mem_prefix: &[u32],
        redirects: &[u32],
        start: usize,
        n: usize,
        exit_redirect: bool,
        stats: &mut MemStats,
    ) -> u64 {
        let mut contended = 0u64;
        let mut misses = 0u64;
        let mut pos = start;
        let mut w = self.window_left as usize;
        for &r in redirects {
            let r = r as usize;
            if r < start {
                continue;
            }
            if r >= n {
                break;
            }
            // Window coverage of the segment before this redirect. The
            // redirect instruction itself is never a data access, so the
            // exact boundary does not affect the contention count.
            let wend = (pos + w).min(r);
            if wend > pos {
                contended += (mem_prefix[wend] - mem_prefix[pos]) as u64;
            }
            misses += 1;
            w = cfg.prefetch_entries as usize;
            pos = r + 1;
        }
        let wend = (pos + w).min(n);
        if wend > pos {
            contended += (mem_prefix[wend] - mem_prefix[pos]) as u64;
        }
        w = w.saturating_sub(n - pos);
        if exit_redirect {
            misses += 1;
            w = cfg.prefetch_entries as usize;
        }
        self.window_left = w as u32;
        let imem = misses * cfg.refill_cycles as u64;
        let dmem = contended * cfg.contention_cycles as u64;
        stats.fetch_misses += misses;
        stats.imem_stall_cycles += imem;
        stats.contended_accesses += contended;
        stats.dmem_stall_cycles += dmem;
        imem + dmem
    }

    /// Charges `iters` back-to-back taken-back-edge executions of the
    /// same loop body occupying trace positions `[start, n)` (a fused
    /// loop), equivalent to calling [`MemModelState::charge_prefix`]
    /// over that segment with `exit_redirect = true` that many times.
    /// The first iteration is charged from the live carry-in window;
    /// every taken exit then resets the window to
    /// [`MaupitiMemConfig::prefetch_entries`], so all later iterations
    /// charge identically and can be costed once and multiplied. Returns
    /// the total extra stall cycles.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn charge_loop(
        &mut self,
        cfg: &MaupitiMemConfig,
        mem_prefix: &[u32],
        redirects: &[u32],
        start: usize,
        n: usize,
        iters: u64,
        stats: &mut MemStats,
    ) -> u64 {
        if iters == 0 {
            return 0;
        }
        let mut total = self.charge_prefix(cfg, mem_prefix, redirects, start, n, true, stats);
        if iters > 1 {
            let mut steady = MemStats::default();
            let per = self.charge_prefix(cfg, mem_prefix, redirects, start, n, true, &mut steady);
            let k = iters - 1;
            total += per * k;
            stats.fetch_misses += steady.fetch_misses * k;
            stats.imem_stall_cycles += steady.imem_stall_cycles * k;
            stats.contended_accesses += steady.contended_accesses * k;
            stats.dmem_stall_cycles += steady.dmem_stall_cycles * k;
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Replays `charge_prefix`'s inputs through the per-instruction
    /// `step` machine and checks both paths agree exactly.
    fn assert_paths_agree(
        cfg: &MaupitiMemConfig,
        is_mem: &[bool],
        redirect_at: &[usize],
        seg_start: usize,
        start_window: u32,
        exit_redirect: bool,
    ) {
        let n = is_mem.len();
        let mut mem_prefix = vec![0u32; n + 1];
        for i in 0..n {
            mem_prefix[i + 1] = mem_prefix[i] + is_mem[i] as u32;
        }
        let redirects: Vec<u32> = redirect_at.iter().map(|&r| r as u32).collect();

        let mut fast = MemModelState {
            window_left: start_window,
        };
        let mut fast_stats = MemStats::default();
        let fast_cycles = fast.charge_prefix(
            cfg,
            &mem_prefix,
            &redirects,
            seg_start,
            n,
            exit_redirect,
            &mut fast_stats,
        );

        let mut slow = MemModelState {
            window_left: start_window,
        };
        let mut slow_stats = MemStats::default();
        let mut slow_cycles = 0u64;
        for (i, &mem) in is_mem.iter().enumerate().skip(seg_start) {
            let is_redirect = redirect_at.contains(&i) || (exit_redirect && i == n - 1);
            slow_cycles += slow.step(cfg, mem, is_redirect, &mut slow_stats);
        }
        assert_eq!(fast_cycles, slow_cycles, "cycle charge diverged");
        assert_eq!(fast_stats, slow_stats, "stall counters diverged");
        assert_eq!(fast.window_left, slow.window_left, "carry state diverged");
    }

    #[test]
    fn prefix_charge_matches_per_instruction_stepping() {
        let cfg = MaupitiMemConfig::default();
        // No redirects, cold start: nothing charged.
        assert_paths_agree(&cfg, &[true, true, false, true], &[], 0, 0, false);
        // Carry-in window covers the first accesses only.
        assert_paths_agree(
            &cfg,
            &[true, true, false, true, true, true],
            &[],
            0,
            3,
            false,
        );
        // Mid-prefix redirect opens a fresh window.
        assert_paths_agree(
            &cfg,
            &[true, false, false, true, true, false],
            &[2],
            0,
            0,
            false,
        );
        // Redirect as the last instruction carries a full window out.
        assert_paths_agree(&cfg, &[false, true, false], &[2], 0, 2, false);
        // Taken side exit redirects at the end of the prefix.
        assert_paths_agree(&cfg, &[true, true, false], &[], 0, 4, true);
        // Back-to-back redirects.
        assert_paths_agree(&cfg, &[false, false, true, true], &[0, 1], 0, 1, false);
        // Mid-trace segments (resume past a fused loop): redirects before
        // the segment are out of range and must be ignored.
        assert_paths_agree(&cfg, &[true, true, true, true, true], &[], 2, 4, false);
        assert_paths_agree(&cfg, &[true, false, true, true, false], &[1], 3, 2, true);
        assert_paths_agree(
            &cfg,
            &[true, true, false, true, false, true],
            &[1, 4],
            2,
            3,
            false,
        );
    }

    /// `charge_loop` must equal `iters` sequential taken-exit
    /// `charge_prefix` calls — cycles, counters and carry state.
    fn assert_loop_agrees(
        cfg: &MaupitiMemConfig,
        is_mem: &[bool],
        redirect_at: &[usize],
        seg_start: usize,
        start_window: u32,
        iters: u64,
    ) {
        let n = is_mem.len();
        let mut mem_prefix = vec![0u32; n + 1];
        for i in 0..n {
            mem_prefix[i + 1] = mem_prefix[i] + is_mem[i] as u32;
        }
        let redirects: Vec<u32> = redirect_at.iter().map(|&r| r as u32).collect();

        let mut fast = MemModelState {
            window_left: start_window,
        };
        let mut fast_stats = MemStats::default();
        let fast_cycles = fast.charge_loop(
            cfg,
            &mem_prefix,
            &redirects,
            seg_start,
            n,
            iters,
            &mut fast_stats,
        );

        let mut slow = MemModelState {
            window_left: start_window,
        };
        let mut slow_stats = MemStats::default();
        let mut slow_cycles = 0u64;
        for _ in 0..iters {
            slow_cycles += slow.charge_prefix(
                cfg,
                &mem_prefix,
                &redirects,
                seg_start,
                n,
                true,
                &mut slow_stats,
            );
        }
        assert_eq!(fast_cycles, slow_cycles, "loop cycle charge diverged");
        assert_eq!(fast_stats, slow_stats, "loop stall counters diverged");
        assert_eq!(fast.window_left, slow.window_left, "loop carry diverged");
    }

    #[test]
    fn loop_charge_matches_repeated_prefix_charges() {
        let cfg = MaupitiMemConfig::default();
        // The CNN MAC body shape: two loads early, then ALU + branch.
        let mac = [true, true, false, false, false, false, false];
        for iters in [0, 1, 2, 3, 17, 1000] {
            assert_loop_agrees(&cfg, &mac, &[], 0, 0, iters);
            // Warm carry-in window (mid-run entry).
            assert_loop_agrees(&cfg, &mac, &[], 0, 4, iters);
            assert_loop_agrees(&cfg, &mac, &[], 0, 2, iters);
        }
        // Short memset body, and a deep window that outlives the body.
        assert_loop_agrees(&cfg, &[true, false, false, false], &[], 0, 3, 5);
        let deep = MaupitiMemConfig {
            prefetch_entries: 16,
            refill_cycles: 7,
            contention_cycles: 3,
        };
        assert_loop_agrees(
            &deep,
            &[true, true, false, false, false, false],
            &[],
            0,
            9,
            12,
        );
        // A loop body embedded mid-trace: only positions past `start`
        // belong to an iteration.
        let embedded = [false, true, false, true, true, false, false, false, false];
        for iters in [1, 2, 5, 40] {
            assert_loop_agrees(&cfg, &embedded, &[], 2, 3, iters);
            assert_loop_agrees(&cfg, &embedded, &[1], 2, 0, iters);
        }
    }

    #[test]
    fn flat_is_the_default_and_maupiti_defaults_are_nonzero() {
        assert!(MemoryModel::default().is_flat());
        let MemoryModel::Maupiti(cfg) = MemoryModel::maupiti() else {
            panic!("maupiti() must select the hierarchy model");
        };
        assert!(cfg.refill_cycles > 0);
        assert!(cfg.contention_cycles > 0);
        assert!(cfg.prefetch_entries > 0);
    }

    #[test]
    fn stats_accumulate_per_cause() {
        let mut a = MemStats {
            fetch_misses: 1,
            imem_stall_cycles: 2,
            contended_accesses: 3,
            dmem_stall_cycles: 4,
        };
        let b = a;
        a.accumulate(&b);
        assert_eq!(a.fetch_misses, 2);
        assert_eq!(a.contended_accesses, 6);
        assert_eq!(a.stall_cycles(), 12);
    }
}
