//! RV32IM instruction-set simulator with the MAUPITI SDOTP extension.
//!
//! The MAUPITI smart sensor extends an IBEX-class RV32IMC core with a
//! single-cycle SIMD *sum-of-dot-products* (SDOTP) unit: one instruction
//! multiplies four 8-bit (or eight 4-bit) signed lanes of two source
//! registers and accumulates the partial products into the destination
//! register, which is read as a third source operand through an extra
//! register-file read port.
//!
//! This crate provides:
//!
//! * the [`Instr`] enum with RISC-V binary [`Instr::encode`]/[`decode`]
//!   support (the SDOTP instructions use the `custom-0` opcode), plus the
//!   pre-decoded [`Decoded`] IR consumed by the block-cached engine;
//! * a [`Cpu`] executing from byte-addressed instruction/data memories
//!   with an instruction [`Trace`] and two engines selected by
//!   [`ExecMode`]: the `Simple` reference interpreter with flat IBEX
//!   cycle costs, and the `BlockCached` superblock-trace engine with
//!   side-exit chaining, a pipelined IBEX timing model (load-use
//!   interlock and branch-flush stall accounting via [`PipelineStats`])
//!   and a per-block execution profile ([`Cpu::hottest_blocks`]) that
//!   runs the deployed CNN workloads several times faster. The decoded
//!   blocks are shared `Arc` snapshots, so `Cpu` is `Send` and a warmed
//!   CPU clones across threads for parallel frame evaluation;
//! * a pluggable memory-hierarchy cost seam ([`MemoryModel`]): the
//!   default [`MemoryModel::Flat`] reproduces the ideal-memory cycle
//!   counts bit-identically, while [`MemoryModel::Maupiti`] models a
//!   prefetch buffer refilling after taken control transfers plus a
//!   single-port data SRAM contending with the refill path, with
//!   per-cause stall counters in [`MemStats`] (see [`MemoryModel`] and
//!   [`Cpu::set_memory_model`]);
//! * register ABI-name constants in [`reg`] used by the kernel code
//!   generator in `pcount-kernels`.
//!
//! # Example
//!
//! ```
//! use pcount_isa::{reg, Cpu, Instr};
//!
//! let program = vec![
//!     Instr::Addi { rd: reg::A0, rs1: reg::ZERO, imm: 21 },
//!     Instr::Add { rd: reg::A0, rs1: reg::A0, rs2: reg::A0 },
//!     Instr::Ebreak,
//! ];
//! let mut cpu = Cpu::new_default();
//! cpu.load_program(&program).unwrap();
//! cpu.run(1_000).unwrap();
//! assert_eq!(cpu.reg(reg::A0), 42);
//! ```

mod block;
mod cpu;
mod engine;
mod fusion;
mod instr;
mod mem_model;
mod memory;
mod pipeline;

pub use cpu::{hot_blocks_json, Cpu, HotBlock, RunSummary, SimError, Trace};
pub use engine::ExecMode;
pub use instr::{decode, BranchOp, Decoded, Instr, LoadOp, StoreOp};
pub use mem_model::{MaupitiMemConfig, MemStats, MemoryModel};
pub use memory::{Memory, DMEM_BASE, IMEM_BASE};
pub use pipeline::{
    stage_cycles, PipelineStats, CYCLES_ALU, CYCLES_BRANCH_TAKEN, CYCLES_DIV, CYCLES_JUMP,
    CYCLES_MEM, LOAD_USE_STALL,
};

/// Register indices by RISC-V ABI name.
pub mod reg {
    /// Hard-wired zero.
    pub const ZERO: u8 = 0;
    /// Return address.
    pub const RA: u8 = 1;
    /// Stack pointer.
    pub const SP: u8 = 2;
    /// Global pointer.
    pub const GP: u8 = 3;
    /// Thread pointer.
    pub const TP: u8 = 4;
    /// Temporary 0.
    pub const T0: u8 = 5;
    /// Temporary 1.
    pub const T1: u8 = 6;
    /// Temporary 2.
    pub const T2: u8 = 7;
    /// Saved register 0 / frame pointer.
    pub const S0: u8 = 8;
    /// Saved register 1.
    pub const S1: u8 = 9;
    /// Argument/return 0.
    pub const A0: u8 = 10;
    /// Argument/return 1.
    pub const A1: u8 = 11;
    /// Argument 2.
    pub const A2: u8 = 12;
    /// Argument 3.
    pub const A3: u8 = 13;
    /// Argument 4.
    pub const A4: u8 = 14;
    /// Argument 5.
    pub const A5: u8 = 15;
    /// Argument 6.
    pub const A6: u8 = 16;
    /// Argument 7.
    pub const A7: u8 = 17;
    /// Saved register 2.
    pub const S2: u8 = 18;
    /// Saved register 3.
    pub const S3: u8 = 19;
    /// Saved register 4.
    pub const S4: u8 = 20;
    /// Saved register 5.
    pub const S5: u8 = 21;
    /// Saved register 6.
    pub const S6: u8 = 22;
    /// Saved register 7.
    pub const S7: u8 = 23;
    /// Saved register 8.
    pub const S8: u8 = 24;
    /// Saved register 9.
    pub const S9: u8 = 25;
    /// Saved register 10.
    pub const S10: u8 = 26;
    /// Saved register 11.
    pub const S11: u8 = 27;
    /// Temporary 3.
    pub const T3: u8 = 28;
    /// Temporary 4.
    pub const T4: u8 = 29;
    /// Temporary 5.
    pub const T5: u8 = 30;
    /// Temporary 6.
    pub const T6: u8 = 31;
}
