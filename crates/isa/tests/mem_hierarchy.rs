//! Differential and property tests of the memory-hierarchy cost seam.
//!
//! * `MemoryModel::Flat` must reproduce the ideal-memory cycle counts
//!   bit-identically (it charges nothing), in every engine / chaining
//!   combination.
//! * `MemoryModel::Maupiti` is defined over the retired instruction
//!   stream, so the reference interpreter's per-instruction stepping and
//!   the block-cached engine's per-trace summaries must produce identical
//!   stall counters — on any program, including ones that branch, jump,
//!   fault or run out of budget.
//! * Maupiti invariants: total cycles decompose exactly into flat cycles
//!   plus the stall breakdown, the cycle delta is monotone (linear) in
//!   the refill latency, and programs whose prefetch buffer never misses
//!   (no taken control transfers) stall zero extra cycles.

use pcount_isa::{
    reg, BranchOp, Cpu, ExecMode, Instr, LoadOp, MaupitiMemConfig, MemoryModel, StoreOp, DMEM_BASE,
};
use proptest::prelude::*;

/// Builds a CPU in the given mode/model, loads `program` and runs it.
fn run(program: &[Instr], mode: ExecMode, model: MemoryModel, chaining: bool) -> Cpu {
    let mut cpu = Cpu::new_default()
        .with_exec_mode(mode)
        .with_memory_model(model);
    cpu.set_superblock_chaining(chaining);
    cpu.load_program(program).unwrap();
    cpu.run(100_000).unwrap();
    cpu
}

/// Decodes one generated tuple into a forward-flowing instruction at body
/// index `i` of `len` total body instructions. All control transfers jump
/// forward, so every generated program halts at the trailing `Ebreak`.
fn lower(choice: (u8, u8, u8, u8), i: usize, len: usize, mem_ops: bool) -> Instr {
    let (kind, a, b, c) = choice;
    let regs = [reg::A1, reg::A2, reg::A3, reg::A4];
    let ra = regs[a as usize % 4];
    let rb = regs[b as usize % 4];
    let skip = 1 + c as usize % (len - i);
    let kind = if mem_ops { kind % 6 } else { kind % 2 };
    match kind {
        0 => Instr::Addi {
            rd: ra,
            rs1: rb,
            imm: c as i32 - 4,
        },
        1 => Instr::Add {
            rd: ra,
            rs1: rb,
            rs2: regs[(a + b) as usize % 4],
        },
        2 => Instr::Load {
            op: LoadOp::Lw,
            rd: ra,
            rs1: reg::A0,
            offset: 4 * (c as i32 % 8),
        },
        3 => Instr::Store {
            op: StoreOp::Sw,
            rs1: reg::A0,
            rs2: rb,
            offset: 4 * (c as i32 % 8),
        },
        4 => Instr::Branch {
            op: if a % 2 == 0 {
                BranchOp::Beq
            } else {
                BranchOp::Bne
            },
            rs1: ra,
            rs2: rb,
            offset: 4 * skip as i32,
        },
        _ => Instr::Jal {
            rd: reg::ZERO,
            offset: 4 * skip as i32,
        },
    }
}

/// A random halting program: data-pointer prologue, a mixed body of ALU /
/// load / store / forward-branch / forward-jump instructions, and an
/// `Ebreak`. With `branchy = false` the body is pure ALU + memory, so the
/// prefetch buffer can never miss.
fn program(choices: &[(u8, u8, u8, u8)], branchy: bool) -> Vec<Instr> {
    let mut prog = vec![
        Instr::Lui {
            rd: reg::A0,
            imm: (DMEM_BASE >> 12) as i32,
        },
        Instr::Addi {
            rd: reg::A1,
            rs1: reg::ZERO,
            imm: 1,
        },
    ];
    let len = choices.len();
    for (i, &choice) in choices.iter().enumerate() {
        let instr = lower(choice, i, len, true);
        let keep_branches = branchy;
        let instr = match instr {
            Instr::Branch { .. } | Instr::Jal { .. } if !keep_branches => {
                lower(choice, i, len, false)
            }
            other => other,
        };
        prog.push(instr);
    }
    prog.push(Instr::Ebreak);
    prog
}

fn choices_strategy() -> impl Strategy<Value = Vec<(u8, u8, u8, u8)>> {
    collection::vec((0u8..6, 0u8..8, 0u8..8, 0u8..8), 1..40)
}

proptest! {
    #[test]
    fn maupiti_stats_are_identical_across_engines_and_chaining(
        choices in choices_strategy(),
    ) {
        let prog = program(&choices, true);
        let model = MemoryModel::maupiti();
        let simple = run(&prog, ExecMode::Simple, model, true);
        let chained = run(&prog, ExecMode::BlockCached, model, true);
        let unchained = run(&prog, ExecMode::BlockCached, model, false);
        prop_assert_eq!(simple.mem_stats(), chained.mem_stats());
        prop_assert_eq!(simple.mem_stats(), unchained.mem_stats());
        prop_assert_eq!(chained.cycles, unchained.cycles);
        prop_assert_eq!(simple.instret, chained.instret);
        // The engines differ by exactly the load-use interlock stalls the
        // flat reference interpreter cannot see.
        prop_assert_eq!(
            chained.cycles,
            simple.cycles + chained.pipeline_stats().load_use_stalls
        );
    }

    #[test]
    fn maupiti_cycles_decompose_into_flat_cycles_plus_stalls(
        choices in choices_strategy(),
    ) {
        let prog = program(&choices, true);
        for mode in [ExecMode::Simple, ExecMode::BlockCached] {
            let flat = run(&prog, mode, MemoryModel::Flat, true);
            let maupiti = run(&prog, mode, MemoryModel::maupiti(), true);
            prop_assert_eq!(flat.mem_stats(), Default::default());
            prop_assert_eq!(flat.instret, maupiti.instret);
            prop_assert_eq!(
                maupiti.cycles,
                flat.cycles + maupiti.mem_stats().stall_cycles()
            );
        }
    }

    #[test]
    fn maupiti_cycles_are_monotone_and_linear_in_the_latencies(
        choices in choices_strategy(),
        refill in 1u32..6,
        contention in 1u32..4,
    ) {
        let prog = program(&choices, true);
        let cfg = MaupitiMemConfig {
            prefetch_entries: 4,
            refill_cycles: refill,
            contention_cycles: contention,
        };
        let base = run(&prog, ExecMode::BlockCached, MemoryModel::Maupiti(cfg), true);
        let slower_refill = run(
            &prog,
            ExecMode::BlockCached,
            MemoryModel::Maupiti(MaupitiMemConfig {
                refill_cycles: refill + 1,
                ..cfg
            }),
            true,
        );
        let slower_port = run(
            &prog,
            ExecMode::BlockCached,
            MemoryModel::Maupiti(MaupitiMemConfig {
                contention_cycles: contention + 1,
                ..cfg
            }),
            true,
        );
        // The event counts depend only on the prefetch depth, so raising a
        // latency scales its stall component exactly linearly (and hence
        // monotonically).
        let stats = base.mem_stats();
        prop_assert_eq!(slower_refill.mem_stats().fetch_misses, stats.fetch_misses);
        prop_assert_eq!(
            slower_refill.cycles,
            base.cycles + stats.fetch_misses,
            "one extra refill cycle per miss"
        );
        prop_assert_eq!(
            slower_port.mem_stats().contended_accesses,
            stats.contended_accesses
        );
        prop_assert_eq!(
            slower_port.cycles,
            base.cycles + stats.contended_accesses,
            "one extra contention cycle per collided access"
        );
    }

    #[test]
    fn programs_whose_prefetch_never_misses_stall_zero_cycles(
        choices in choices_strategy(),
    ) {
        // No branches or jumps: the prefetch buffer streams sequentially
        // and never misses, so Maupiti must charge nothing at all.
        let prog = program(&choices, false);
        for mode in [ExecMode::Simple, ExecMode::BlockCached] {
            let flat = run(&prog, mode, MemoryModel::Flat, true);
            let maupiti = run(&prog, mode, MemoryModel::maupiti(), true);
            prop_assert_eq!(maupiti.mem_stats(), Default::default());
            prop_assert_eq!(maupiti.cycles, flat.cycles);
        }
    }
}

#[test]
fn a_jump_charges_exactly_the_refill_latency() {
    let prog = [
        Instr::Jal {
            rd: reg::ZERO,
            offset: 8,
        },
        Instr::Ebreak, // skipped
        Instr::Ebreak,
    ];
    for mode in [ExecMode::Simple, ExecMode::BlockCached] {
        let flat = run(&prog, mode, MemoryModel::Flat, true);
        let maupiti = run(&prog, mode, MemoryModel::maupiti(), true);
        assert_eq!(flat.cycles, 3, "jal (2) + ebreak (1)");
        let stats = maupiti.mem_stats();
        assert_eq!(stats.fetch_misses, 1);
        assert_eq!(stats.imem_stall_cycles, 2, "default refill latency");
        assert_eq!(stats.dmem_stall_cycles, 0);
        assert_eq!(maupiti.cycles, 5);
    }
}

#[test]
fn data_accesses_contend_only_inside_the_refill_window() {
    // After the jump the 2-entry prefetch buffer refills; the first two
    // loads steal the SRAM port from the refill, the third is free. The
    // store before the jump runs with a full buffer and never contends.
    let cfg = MaupitiMemConfig {
        prefetch_entries: 2,
        refill_cycles: 2,
        contention_cycles: 1,
    };
    let prog = [
        Instr::Lui {
            rd: reg::A0,
            imm: (DMEM_BASE >> 12) as i32,
        },
        Instr::Store {
            op: StoreOp::Sw,
            rs1: reg::A0,
            rs2: reg::ZERO,
            offset: 0,
        },
        Instr::Jal {
            rd: reg::ZERO,
            offset: 8,
        },
        Instr::Ebreak, // skipped
        Instr::Load {
            op: LoadOp::Lw,
            rd: reg::A1,
            rs1: reg::A0,
            offset: 0,
        },
        Instr::Load {
            op: LoadOp::Lw,
            rd: reg::A2,
            rs1: reg::A0,
            offset: 4,
        },
        Instr::Load {
            op: LoadOp::Lw,
            rd: reg::A3,
            rs1: reg::A0,
            offset: 8,
        },
        Instr::Ebreak,
    ];
    for mode in [ExecMode::Simple, ExecMode::BlockCached] {
        let cpu = run(&prog, mode, MemoryModel::Maupiti(cfg), true);
        let stats = cpu.mem_stats();
        assert_eq!(stats.fetch_misses, 1, "{mode:?}");
        assert_eq!(stats.imem_stall_cycles, 2, "{mode:?}");
        assert_eq!(stats.contended_accesses, 2, "{mode:?}");
        assert_eq!(stats.dmem_stall_cycles, 2, "{mode:?}");
    }
}

#[test]
fn every_taken_backward_branch_misses_the_prefetch_buffer() {
    let prog = [
        Instr::Addi {
            rd: reg::T0,
            rs1: reg::ZERO,
            imm: 10,
        },
        Instr::Addi {
            rd: reg::T0,
            rs1: reg::T0,
            imm: -1,
        },
        Instr::Branch {
            op: BranchOp::Bne,
            rs1: reg::T0,
            rs2: reg::ZERO,
            offset: -4,
        },
        Instr::Ebreak,
    ];
    for mode in [ExecMode::Simple, ExecMode::BlockCached] {
        let cpu = run(&prog, mode, MemoryModel::maupiti(), true);
        assert_eq!(cpu.mem_stats().fetch_misses, 9, "{mode:?}");
    }
}

#[test]
fn stats_survive_timeout_and_resume_identically_in_both_engines() {
    let mut prog = vec![Instr::Addi {
        rd: reg::T0,
        rs1: reg::ZERO,
        imm: 6,
    }];
    for _ in 0..4 {
        prog.push(Instr::Addi {
            rd: reg::A1,
            rs1: reg::A1,
            imm: 1,
        });
    }
    prog.extend([
        Instr::Addi {
            rd: reg::T0,
            rs1: reg::T0,
            imm: -1,
        },
        Instr::Branch {
            op: BranchOp::Bne,
            rs1: reg::T0,
            rs2: reg::ZERO,
            offset: -20,
        },
        Instr::Ebreak,
    ]);
    let run_sliced = |mode: ExecMode| {
        let mut cpu = Cpu::new_default()
            .with_exec_mode(mode)
            .with_memory_model(MemoryModel::maupiti());
        cpu.load_program(&prog).unwrap();
        // Cut the run mid-trace repeatedly, then let it finish.
        while cpu.run(7).is_err() {}
        cpu
    };
    let simple = run_sliced(ExecMode::Simple);
    let cached = run_sliced(ExecMode::BlockCached);
    assert_eq!(simple.instret, cached.instret);
    assert_eq!(simple.mem_stats(), cached.mem_stats());
    assert!(simple.mem_stats().fetch_misses > 0);
}

#[test]
fn memory_faults_charge_only_the_retired_prefix() {
    // The faulting store never reaches the SRAM port: stall counters must
    // agree between engines and with the no-fault prefix.
    let prog = [
        Instr::Jal {
            rd: reg::ZERO,
            offset: 8,
        },
        Instr::Ebreak, // skipped
        Instr::Store {
            op: StoreOp::Sw,
            rs1: reg::ZERO,
            rs2: reg::ZERO,
            offset: 0,
        },
        Instr::Ebreak,
    ];
    let mut results = Vec::new();
    for mode in [ExecMode::Simple, ExecMode::BlockCached] {
        let mut cpu = Cpu::new_default()
            .with_exec_mode(mode)
            .with_memory_model(MemoryModel::maupiti());
        cpu.load_program(&prog).unwrap();
        assert!(cpu.run(100).is_err());
        results.push((cpu.instret, cpu.mem_stats()));
    }
    assert_eq!(results[0], results[1]);
    let (_, stats) = results[0];
    assert_eq!(stats.fetch_misses, 1, "only the jump missed");
    assert_eq!(stats.contended_accesses, 0, "the fault retired no access");
}

#[test]
fn hottest_blocks_attribute_memory_stalls_per_trace() {
    let prog = [
        Instr::Lui {
            rd: reg::A0,
            imm: (DMEM_BASE >> 12) as i32,
        },
        Instr::Addi {
            rd: reg::T0,
            rs1: reg::ZERO,
            imm: 20,
        },
        // Loop body: one load, one decrement, one backward branch.
        Instr::Load {
            op: LoadOp::Lw,
            rd: reg::A1,
            rs1: reg::A0,
            offset: 0,
        },
        Instr::Addi {
            rd: reg::T0,
            rs1: reg::T0,
            imm: -1,
        },
        Instr::Branch {
            op: BranchOp::Bne,
            rs1: reg::T0,
            rs2: reg::ZERO,
            offset: -8,
        },
        Instr::Ebreak,
    ];
    let flat = run(&prog, ExecMode::BlockCached, MemoryModel::Flat, true);
    for hot in flat.hottest_blocks(4) {
        assert_eq!(hot.mem_stall_cycles, 0, "flat model never stalls");
    }
    let maupiti = run(&prog, ExecMode::BlockCached, MemoryModel::maupiti(), true);
    let hot = maupiti.hottest_blocks(4);
    let attributed: u64 = hot.iter().map(|h| h.mem_stall_cycles).sum();
    assert_eq!(
        attributed,
        maupiti.mem_stats().stall_cycles(),
        "the profile attributes every stall cycle to a trace"
    );
    assert!(
        hot[0].mem_stall_cycles > 0,
        "the loop trace pays refill stalls"
    );
}

#[test]
fn flat_runs_are_bit_identical_to_the_default_model() {
    let prog = [
        Instr::Addi {
            rd: reg::T0,
            rs1: reg::ZERO,
            imm: 5,
        },
        Instr::Addi {
            rd: reg::T0,
            rs1: reg::T0,
            imm: -1,
        },
        Instr::Branch {
            op: BranchOp::Bne,
            rs1: reg::T0,
            rs2: reg::ZERO,
            offset: -4,
        },
        Instr::Ebreak,
    ];
    for mode in [ExecMode::Simple, ExecMode::BlockCached] {
        let mut default_cpu = Cpu::new_default().with_exec_mode(mode);
        assert!(default_cpu.memory_model().is_flat(), "Flat is the default");
        default_cpu.load_program(&prog).unwrap();
        let rd = default_cpu.run(1_000).unwrap();
        let flat = run(&prog, mode, MemoryModel::Flat, true);
        assert_eq!(rd.cycles, flat.cycles);
        assert_eq!(rd.instructions, flat.instret);
    }
}
