//! Differentiable hardware-cost models for the masked seed network.

use crate::mask::ChannelMask;
use pcount_nn::CnnConfig;

/// Which hardware-cost proxy the regulariser `C(θ)` models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CostTarget {
    /// Number of parameters: a proxy for model memory footprint.
    Params,
    /// Number of multiply-accumulate operations: a proxy for energy/latency.
    Macs,
}

/// Differentiable cost of the masked seed network.
///
/// The cost is a function of the number of alive channels of the three
/// masked layers (conv1, conv2, fc1); the output layer is never masked.
/// Costs are normalised by the seed cost so that the strength `λ`
/// has a comparable meaning across the `Params` and `Macs` targets.
#[derive(Debug, Clone, Copy)]
pub struct MaskedCost {
    cfg: CnnConfig,
    target: CostTarget,
}

impl MaskedCost {
    /// Creates a cost model for the given seed configuration and target.
    pub fn new(cfg: CnnConfig, target: CostTarget) -> Self {
        Self { cfg, target }
    }

    /// The cost target this model optimises.
    pub fn target(&self) -> CostTarget {
        self.target
    }

    /// Absolute (unnormalised) cost for the given alive channel counts.
    pub fn absolute_cost(&self, alive1: f64, alive2: f64, alive3: f64) -> f64 {
        let cin = self.cfg.input_channels as f64;
        let classes = self.cfg.num_classes as f64;
        let pos1 = (self.cfg.input_size * self.cfg.input_size) as f64;
        let pooled = self.cfg.pooled_size();
        let pos2 = (pooled * pooled) as f64;
        match self.target {
            CostTarget::Params => {
                alive1 * (cin * 9.0 + 1.0)
                    + alive2 * (alive1 * 9.0 + 1.0)
                    + alive3 * (alive2 * pos2 + 1.0)
                    + classes * (alive3 + 1.0)
            }
            CostTarget::Macs => {
                alive1 * cin * 9.0 * pos1
                    + alive2 * alive1 * 9.0 * pos2
                    + alive3 * alive2 * pos2
                    + classes * alive3
            }
        }
    }

    /// Absolute cost of the full (unmasked) seed network.
    pub fn seed_cost(&self) -> f64 {
        self.absolute_cost(
            self.cfg.conv1_out as f64,
            self.cfg.conv2_out as f64,
            self.cfg.fc1_out as f64,
        )
    }

    /// Normalised cost (`1.0` for the unmasked seed) given the three masks.
    pub fn cost(&self, m1: &ChannelMask, m2: &ChannelMask, m3: &ChannelMask) -> f64 {
        let a1 = m1.alive_count() as f64;
        let a2 = m2.alive_count() as f64;
        let a3 = m3.alive_count() as f64;
        self.absolute_cost(a1, a2, a3) / self.seed_cost()
    }

    /// Gradient of the normalised cost w.r.t. each mask's `θ` (one value per
    /// mask, identical for all channels under the straight-through
    /// estimator `dH/dθ ≈ 1`).
    pub fn cost_grad(&self, m1: &ChannelMask, m2: &ChannelMask, m3: &ChannelMask) -> [f64; 3] {
        let a1 = m1.alive_count() as f64;
        let a2 = m2.alive_count() as f64;
        let a3 = m3.alive_count() as f64;
        let cin = self.cfg.input_channels as f64;
        let classes = self.cfg.num_classes as f64;
        let pos1 = (self.cfg.input_size * self.cfg.input_size) as f64;
        let pooled = self.cfg.pooled_size();
        let pos2 = (pooled * pooled) as f64;
        let seed = self.seed_cost();
        let raw = match self.target {
            CostTarget::Params => [
                (cin * 9.0 + 1.0) + a2 * 9.0,
                (a1 * 9.0 + 1.0) + a3 * pos2,
                (a2 * pos2 + 1.0) + classes,
            ],
            CostTarget::Macs => [
                cin * 9.0 * pos1 + a2 * 9.0 * pos2,
                a1 * 9.0 * pos2 + a3 * pos2,
                a2 * pos2 + classes,
            ],
        };
        [raw[0] / seed, raw[1] / seed, raw[2] / seed]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mask_with_alive(total: usize, alive: usize) -> ChannelMask {
        let mut m = ChannelMask::new(total);
        for c in 0..total {
            m.theta.data_mut()[c] = if c < alive { 0.5 } else { -0.5 };
        }
        m
    }

    #[test]
    fn seed_cost_matches_config_param_count() {
        let cfg = CnnConfig::seed();
        let cost = MaskedCost::new(cfg, CostTarget::Params);
        assert_eq!(cost.seed_cost() as usize, cfg.num_params());
        let cost = MaskedCost::new(cfg, CostTarget::Macs);
        assert_eq!(cost.seed_cost() as usize, cfg.macs());
    }

    #[test]
    fn full_masks_give_unit_normalised_cost() {
        let cfg = CnnConfig::seed();
        let cost = MaskedCost::new(cfg, CostTarget::Params);
        let m1 = ChannelMask::new(cfg.conv1_out);
        let m2 = ChannelMask::new(cfg.conv2_out);
        let m3 = ChannelMask::new(cfg.fc1_out);
        assert!((cost.cost(&m1, &m2, &m3) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn pruning_channels_reduces_cost_monotonically() {
        let cfg = CnnConfig::seed();
        for target in [CostTarget::Params, CostTarget::Macs] {
            let cost = MaskedCost::new(cfg, target);
            let m3 = mask_with_alive(cfg.fc1_out, 32);
            let mut prev = f64::INFINITY;
            for alive in (8..=64).rev().step_by(8) {
                let m1 = mask_with_alive(cfg.conv1_out, alive);
                let m2 = mask_with_alive(cfg.conv2_out, alive);
                let c = cost.cost(&m1, &m2, &m3);
                assert!(c < prev, "cost should strictly decrease");
                prev = c;
            }
        }
    }

    #[test]
    fn cost_grad_matches_finite_difference_of_alive_counts() {
        let cfg = CnnConfig::seed();
        for target in [CostTarget::Params, CostTarget::Macs] {
            let cost = MaskedCost::new(cfg, target);
            let m1 = mask_with_alive(cfg.conv1_out, 20);
            let m2 = mask_with_alive(cfg.conv2_out, 30);
            let m3 = mask_with_alive(cfg.fc1_out, 10);
            let g = cost.cost_grad(&m1, &m2, &m3);
            let base = cost.absolute_cost(20.0, 30.0, 10.0);
            let seed = cost.seed_cost();
            let d1 = (cost.absolute_cost(21.0, 30.0, 10.0) - base) / seed;
            let d2 = (cost.absolute_cost(20.0, 31.0, 10.0) - base) / seed;
            let d3 = (cost.absolute_cost(20.0, 30.0, 11.0) - base) / seed;
            // The analytic gradient treats other alive counts as constants,
            // so it matches a one-channel finite difference exactly for the
            // linear terms and to first order for the bilinear ones.
            assert!((g[0] - d1).abs() / d1 < 0.35, "{} vs {}", g[0], d1);
            assert!((g[1] - d2).abs() / d2 < 0.35, "{} vs {}", g[1], d2);
            assert!((g[2] - d3).abs() / d3 < 0.35, "{} vs {}", g[2], d3);
        }
    }

    #[test]
    fn grads_are_positive() {
        let cfg = CnnConfig::seed();
        let cost = MaskedCost::new(cfg, CostTarget::Params);
        let m1 = ChannelMask::new(cfg.conv1_out);
        let m2 = ChannelMask::new(cfg.conv2_out);
        let m3 = ChannelMask::new(cfg.fc1_out);
        for g in cost.cost_grad(&m1, &m2, &m3) {
            assert!(g > 0.0);
        }
    }
}
