//! The DNAS training loop, λ sweep and sub-network extraction.

use crate::cost::{CostTarget, MaskedCost};
use crate::model::PitModel;
use pcount_nn::{
    batch_select, Adam, BatchNorm2d, CnnConfig, Conv2d, CrossEntropyLoss, Flatten, Linear,
    MaxPool2d, Mode, Optimizer, Relu, Sequential,
};
use pcount_tensor::Tensor;
use rand::seq::SliceRandom;
use rand::Rng;

/// Hyper-parameters of one DNAS run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NasConfig {
    /// Strength of the cost regulariser (`λ` in the paper).
    pub lambda: f64,
    /// Which hardware cost the regulariser models.
    pub cost_target: CostTarget,
    /// Total search epochs.
    pub epochs: usize,
    /// Epochs at the start during which only the task loss is optimised
    /// (lets the weights settle before pruning pressure is applied).
    pub warmup_epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Adam learning rate (shared by weights and mask parameters).
    pub learning_rate: f32,
    /// Print progress to stderr.
    pub verbose: bool,
}

impl Default for NasConfig {
    fn default() -> Self {
        Self {
            lambda: 0.5,
            cost_target: CostTarget::Params,
            epochs: 16,
            warmup_epochs: 2,
            batch_size: 128,
            learning_rate: 1e-3,
            verbose: false,
        }
    }
}

/// Result of one DNAS run: the discovered architecture plus an extracted,
/// weight-copied sub-network ready for fine-tuning.
pub struct SearchOutcome {
    /// The λ used for this run.
    pub lambda: f64,
    /// The discovered architecture.
    pub config: CnnConfig,
    /// Normalised cost after every epoch.
    pub cost_history: Vec<f64>,
    /// Mean task loss after every epoch.
    pub loss_history: Vec<f32>,
    /// The extracted sub-network with weights copied from the search model.
    pub network: Sequential,
}

impl std::fmt::Debug for SearchOutcome {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SearchOutcome")
            .field("lambda", &self.lambda)
            .field("config", &self.config)
            .finish()
    }
}

/// Summary of one λ-sweep point (used by the Pareto-front plots).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweepPoint {
    /// Regularisation strength.
    pub lambda: f64,
    /// Discovered architecture.
    pub config: CnnConfig,
    /// Parameter count of the discovered architecture.
    pub params: usize,
    /// MAC count of the discovered architecture.
    pub macs: usize,
}

/// Runs one PIT search on the given training data and extracts the result.
pub fn search<R: Rng>(
    seed: CnnConfig,
    x: &Tensor,
    y: &[usize],
    cfg: &NasConfig,
    rng: &mut R,
) -> SearchOutcome {
    let mut model = PitModel::new(seed, rng);
    let cost = MaskedCost::new(seed, cfg.cost_target);
    let mut opt = Adam::new(cfg.learning_rate, 0.0);
    let mut loss_fn = CrossEntropyLoss::new();
    let n = x.shape()[0];
    assert_eq!(n, y.len(), "sample count mismatch");
    let mut order: Vec<usize> = (0..n).collect();
    let mut cost_history = Vec::with_capacity(cfg.epochs);
    let mut loss_history = Vec::with_capacity(cfg.epochs);
    for epoch in 0..cfg.epochs {
        order.shuffle(rng);
        let mut epoch_loss = 0.0f32;
        let mut batches = 0usize;
        for chunk in order.chunks(cfg.batch_size) {
            let xb = batch_select(x, chunk);
            let yb: Vec<usize> = chunk.iter().map(|&i| y[i]).collect();
            model.zero_grad();
            let logits = model.forward(&xb, Mode::Train);
            let loss = loss_fn.forward(&logits, &yb);
            let grad = loss_fn.backward();
            model.backward(&grad);
            if epoch >= cfg.warmup_epochs {
                model.apply_cost_gradient(cfg.lambda, &cost);
            }
            opt.step(model.params_and_grads());
            epoch_loss += loss;
            batches += 1;
        }
        let mean_loss = epoch_loss / batches.max(1) as f32;
        let current_cost = model.current_cost(&cost);
        cost_history.push(current_cost);
        loss_history.push(mean_loss);
        if cfg.verbose {
            eprintln!(
                "nas λ={:.3} epoch {epoch:3} loss {mean_loss:.4} cost {current_cost:.4} arch {:?}",
                cfg.lambda,
                model.alive_config()
            );
        }
    }
    let (config, network) = extract_subnetwork(&model);
    SearchOutcome {
        lambda: cfg.lambda,
        config,
        cost_history,
        loss_history,
        network,
    }
}

/// Runs [`search`] for every λ in `lambdas`, returning the outcomes in the
/// same order.
pub fn lambda_sweep<R: Rng>(
    seed: CnnConfig,
    x: &Tensor,
    y: &[usize],
    lambdas: &[f64],
    base: &NasConfig,
    rng: &mut R,
) -> Vec<SearchOutcome> {
    lambdas
        .iter()
        .map(|&lambda| {
            let cfg = NasConfig { lambda, ..*base };
            search(seed, x, y, &cfg, rng)
        })
        .collect()
}

/// Extracts the sub-network currently selected by the masks of `model`,
/// copying (slicing) weights, biases and batch-norm statistics so the
/// result can be fine-tuned instead of retrained from scratch.
pub fn extract_subnetwork(model: &PitModel) -> (CnnConfig, Sequential) {
    let seed = model.seed_config();
    let [m1, m2, m3] = model.masks();
    let alive1 = m1.alive_indices();
    let alive2 = m2.alive_indices();
    let alive3 = m3.alive_indices();
    let cfg = seed.with_channels(alive1.len(), alive2.len(), alive3.len());
    let (conv1, bn1, conv2, bn2, fc1, fc2) = model.layers();
    let pooled = seed.pooled_size() * seed.pooled_size();

    // conv1: select output channels.
    let new_conv1 = Conv2d::from_parts(
        slice_conv_weight(&conv1.weight, &alive1, None),
        slice_vector(&conv1.bias, &alive1),
        1,
        1,
    );
    let new_bn1 = slice_batchnorm(bn1, &alive1);
    // conv2: select output channels and input channels.
    let new_conv2 = Conv2d::from_parts(
        slice_conv_weight(&conv2.weight, &alive2, Some(&alive1)),
        slice_vector(&conv2.bias, &alive2),
        1,
        1,
    );
    let new_bn2 = slice_batchnorm(bn2, &alive2);
    // fc1: select output features and the input features produced by alive
    // conv2 channels (each channel contributes `pooled` flattened inputs).
    let in_features: Vec<usize> = alive2
        .iter()
        .flat_map(|&c| (0..pooled).map(move |p| c * pooled + p))
        .collect();
    let new_fc1 = Linear::from_parts(
        slice_linear_weight(&fc1.weight, &alive3, &in_features),
        slice_vector(&fc1.bias, &alive3),
    );
    // fc2: keep all outputs, select input features.
    let all_out: Vec<usize> = (0..seed.num_classes).collect();
    let new_fc2 = Linear::from_parts(
        slice_linear_weight(&fc2.weight, &all_out, &alive3),
        fc2.bias.clone(),
    );

    let network = Sequential::new(vec![
        Box::new(new_conv1),
        Box::new(new_bn1),
        Box::new(Relu::new()),
        Box::new(MaxPool2d::new(2, 2)),
        Box::new(new_conv2),
        Box::new(new_bn2),
        Box::new(Relu::new()),
        Box::new(Flatten::new()),
        Box::new(new_fc1),
        Box::new(Relu::new()),
        Box::new(new_fc2),
    ]);
    (cfg, network)
}

fn slice_vector(v: &Tensor, indices: &[usize]) -> Tensor {
    let data: Vec<f32> = indices.iter().map(|&i| v.data()[i]).collect();
    Tensor::from_vec(data, &[indices.len()])
}

fn slice_conv_weight(w: &Tensor, out_idx: &[usize], in_idx: Option<&[usize]>) -> Tensor {
    let shape = w.shape();
    let (out_c, in_c, k) = (shape[0], shape[1], shape[2]);
    let all_in: Vec<usize> = (0..in_c).collect();
    let in_idx = in_idx.unwrap_or(&all_in);
    let mut data = Vec::with_capacity(out_idx.len() * in_idx.len() * k * k);
    for &co in out_idx {
        assert!(co < out_c, "output channel {co} out of bounds");
        for &ci in in_idx {
            assert!(ci < in_c, "input channel {ci} out of bounds");
            let base = (co * in_c + ci) * k * k;
            data.extend_from_slice(&w.data()[base..base + k * k]);
        }
    }
    Tensor::from_vec(data, &[out_idx.len(), in_idx.len(), k, k])
}

fn slice_linear_weight(w: &Tensor, out_idx: &[usize], in_idx: &[usize]) -> Tensor {
    let shape = w.shape();
    let (out_f, in_f) = (shape[0], shape[1]);
    let mut data = Vec::with_capacity(out_idx.len() * in_idx.len());
    for &o in out_idx {
        assert!(o < out_f, "output feature {o} out of bounds");
        for &i in in_idx {
            assert!(i < in_f, "input feature {i} out of bounds");
            data.push(w.data()[o * in_f + i]);
        }
    }
    Tensor::from_vec(data, &[out_idx.len(), in_idx.len()])
}

fn slice_batchnorm(bn: &BatchNorm2d, indices: &[usize]) -> BatchNorm2d {
    let mut out = BatchNorm2d::new(indices.len());
    out.gamma = slice_vector(&bn.gamma, indices);
    out.beta = slice_vector(&bn.beta, indices);
    out.running_mean = slice_vector(&bn.running_mean, indices);
    out.running_var = slice_vector(&bn.running_var, indices);
    out.momentum = bn.momentum;
    out.eps = bn.eps;
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcount_nn::evaluate;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Synthetic quadrant dataset: label = quadrant of the hottest blob.
    fn toy_dataset(n: usize, rng: &mut StdRng) -> (Tensor, Vec<usize>) {
        let mut x = Tensor::zeros(&[n, 1, 8, 8]);
        let mut y = Vec::with_capacity(n);
        for i in 0..n {
            let class = rng.gen_range(0..4usize);
            let (cy, cx) = [(2, 2), (2, 6), (6, 2), (6, 6)][class];
            for dy in 0..2usize {
                for dx in 0..2usize {
                    x.set(&[i, 0, cy + dy - 1, cx + dx - 1], 3.0);
                }
            }
            for h in 0..8 {
                for w in 0..8 {
                    let v = x.at(&[i, 0, h, w]) + rng.gen_range(-0.3..0.3);
                    x.set(&[i, 0, h, w], v);
                }
            }
            y.push(class);
        }
        (x, y)
    }

    #[test]
    fn extraction_without_pruning_preserves_outputs() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut model = PitModel::new(CnnConfig::seed().with_channels(4, 4, 8), &mut rng);
        let x = Tensor::randn(&[3, 1, 8, 8], 1.0, &mut rng);
        let expected = model.forward(&x, Mode::Eval);
        let (cfg, mut net) = extract_subnetwork(&model);
        assert_eq!(cfg.conv1_out, 4);
        let got = net.forward(&x, Mode::Eval);
        assert!(
            expected.approx_eq(&got, 1e-4),
            "extracted full network must reproduce the masked model"
        );
    }

    #[test]
    fn extraction_with_pruning_matches_masked_model() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut model = PitModel::new(CnnConfig::seed().with_channels(6, 5, 10), &mut rng);
        // Prune an assortment of channels across the three masks.
        let [m1, m2, m3] = [0usize, 1, 2];
        let _ = (m1, m2, m3);
        {
            let pg = model.params_and_grads();
            let n = pg.len();
            let _ = n;
        }
        // Use direct mask access through forward/backward-free manipulation.
        let x = Tensor::randn(&[4, 1, 8, 8], 1.0, &mut rng);
        // Disable channels by driving theta negative through the public API:
        // run apply-cost style manual edit via params_and_grads ordering
        // (last three entries are the masks).
        {
            let mut pg = model.params_and_grads();
            let len = pg.len();
            // mask1 theta: disable channel 0 and 3.
            pg[len - 3].0.data_mut()[0] = -1.0;
            pg[len - 3].0.data_mut()[3] = -1.0;
            // mask2 theta: disable channel 2.
            pg[len - 2].0.data_mut()[2] = -1.0;
            // mask3 theta: disable features 1, 4, 7.
            pg[len - 1].0.data_mut()[1] = -1.0;
            pg[len - 1].0.data_mut()[4] = -1.0;
            pg[len - 1].0.data_mut()[7] = -1.0;
        }
        let expected = model.forward(&x, Mode::Eval);
        let (cfg, mut net) = extract_subnetwork(&model);
        assert_eq!(cfg.conv1_out, 4);
        assert_eq!(cfg.conv2_out, 4);
        assert_eq!(cfg.fc1_out, 7);
        let got = net.forward(&x, Mode::Eval);
        assert!(
            expected.approx_eq(&got, 1e-4),
            "pruned extraction must match the masked model output"
        );
    }

    #[test]
    fn high_lambda_prunes_more_than_low_lambda() {
        let mut rng = StdRng::seed_from_u64(2);
        let (x, y) = toy_dataset(160, &mut rng);
        let seed = CnnConfig::seed().with_channels(8, 8, 16);
        let base = NasConfig {
            epochs: 6,
            warmup_epochs: 1,
            batch_size: 32,
            learning_rate: 3e-3,
            ..NasConfig::default()
        };
        let low = search(
            seed,
            &x,
            &y,
            &NasConfig {
                lambda: 0.0,
                ..base
            },
            &mut rng,
        );
        let high = search(
            seed,
            &x,
            &y,
            &NasConfig {
                lambda: 4.0,
                ..base
            },
            &mut rng,
        );
        assert!(
            high.config.num_params() < low.config.num_params(),
            "λ=4 should prune more aggressively ({} vs {})",
            high.config.num_params(),
            low.config.num_params()
        );
    }

    #[test]
    fn searched_network_still_classifies_toy_data() {
        let mut rng = StdRng::seed_from_u64(3);
        let (x, y) = toy_dataset(200, &mut rng);
        let seed = CnnConfig::seed().with_channels(8, 8, 16);
        let cfg = NasConfig {
            lambda: 0.8,
            epochs: 10,
            warmup_epochs: 2,
            batch_size: 32,
            learning_rate: 3e-3,
            ..NasConfig::default()
        };
        let mut outcome = search(seed, &x, &y, &cfg, &mut rng);
        let bas = evaluate(&mut outcome.network, &x, &y, 4);
        assert!(
            bas > 0.6,
            "extracted network should retain most accuracy, got {bas}"
        );
    }

    #[test]
    fn lambda_sweep_returns_one_outcome_per_lambda() {
        let mut rng = StdRng::seed_from_u64(4);
        let (x, y) = toy_dataset(80, &mut rng);
        let seed = CnnConfig::seed().with_channels(4, 4, 8);
        let base = NasConfig {
            epochs: 2,
            warmup_epochs: 0,
            batch_size: 32,
            ..NasConfig::default()
        };
        let outcomes = lambda_sweep(seed, &x, &y, &[0.0, 1.0, 2.0], &base, &mut rng);
        assert_eq!(outcomes.len(), 3);
        assert_eq!(outcomes[1].lambda, 1.0);
    }
}
