//! Trainable channel masks with straight-through Heaviside binarisation.

use pcount_tensor::Tensor;

/// A vector of trainable mask parameters `θ`, one per output channel or
/// feature, binarised with the Heaviside step function `H(θ) = 1 if θ >= 0`.
///
/// During the search the mask multiplies the layer's output activations:
/// a channel whose binary mask is 0 contributes nothing downstream, which
/// is equivalent to pruning its weights (and its batch-norm/bias terms).
/// Gradients flow to `θ` through a straight-through estimator
/// (`dH/dθ ≈ 1`), plus the `λ`-weighted cost gradient added by
/// [`crate::MaskedCost`].
///
/// At least one channel is always kept alive: if every `θ` falls below the
/// threshold the channel with the largest `θ` stays enabled, so the
/// extracted network never collapses to zero width.
#[derive(Debug, Clone)]
pub struct ChannelMask {
    /// Trainable parameters, one per channel.
    pub theta: Tensor,
    /// Accumulated gradient of the loss (task + cost) w.r.t. `theta`.
    pub theta_grad: Tensor,
    cached_input: Option<Tensor>,
    cached_binary: Option<Vec<f32>>,
}

impl ChannelMask {
    /// Initial value of every mask parameter (all channels start alive).
    ///
    /// Kept small so that a modest number of Adam steps under cost pressure
    /// can drive a parameter across the pruning threshold, while the warm-up
    /// epochs (task loss only) push genuinely useful channels safely above
    /// it.
    pub const INIT: f32 = 0.05;

    /// Creates a mask over `channels` channels, all initially alive.
    ///
    /// # Panics
    ///
    /// Panics if `channels` is zero.
    pub fn new(channels: usize) -> Self {
        assert!(channels > 0, "mask needs at least one channel");
        Self {
            theta: Tensor::full(&[channels], Self::INIT),
            theta_grad: Tensor::zeros(&[channels]),
            cached_input: None,
            cached_binary: None,
        }
    }

    /// Number of channels covered by this mask.
    pub fn channels(&self) -> usize {
        self.theta.numel()
    }

    /// The binarised mask, guaranteeing at least one alive channel.
    pub fn binary(&self) -> Vec<f32> {
        let th = self.theta.data();
        let mut bin: Vec<f32> = th
            .iter()
            .map(|&t| if t >= 0.0 { 1.0 } else { 0.0 })
            .collect();
        if bin.iter().all(|&b| b == 0.0) {
            let mut best = 0usize;
            for (i, &t) in th.iter().enumerate() {
                if t > th[best] {
                    best = i;
                }
            }
            bin[best] = 1.0;
        }
        bin
    }

    /// Number of channels currently alive.
    pub fn alive_count(&self) -> usize {
        self.binary().iter().filter(|&&b| b > 0.5).count()
    }

    /// Indices of the alive channels.
    pub fn alive_indices(&self) -> Vec<usize> {
        self.binary()
            .iter()
            .enumerate()
            .filter(|(_, &b)| b > 0.5)
            .map(|(i, _)| i)
            .collect()
    }

    /// Masks channel dimension 1 of `x` (NCHW or `[N, F]`).
    ///
    /// # Panics
    ///
    /// Panics if dimension 1 of `x` does not match the mask length.
    pub fn forward(&mut self, x: &Tensor) -> Tensor {
        let shape = x.shape();
        assert!(shape.len() >= 2, "mask input must have a channel dimension");
        let c = shape[1];
        assert_eq!(c, self.channels(), "mask channel mismatch");
        let bin = self.binary();
        let inner: usize = shape[2..].iter().product();
        let mut out = x.clone();
        {
            let od = out.data_mut();
            let n = shape[0];
            for ni in 0..n {
                #[allow(clippy::needless_range_loop)]
                for ci in 0..c {
                    if bin[ci] == 0.0 {
                        let base = (ni * c + ci) * inner;
                        for v in &mut od[base..base + inner] {
                            *v = 0.0;
                        }
                    }
                }
            }
        }
        self.cached_input = Some(x.clone());
        self.cached_binary = Some(bin);
        out
    }

    /// Back-propagates through the mask: accumulates the straight-through
    /// gradient on `theta` and returns the gradient w.r.t. the input.
    pub fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let x = self
            .cached_input
            .as_ref()
            .expect("backward called before forward");
        let bin = self.cached_binary.as_ref().expect("missing binary cache");
        let shape = x.shape();
        let (n, c) = (shape[0], shape[1]);
        let inner: usize = shape[2..].iter().product();
        let gd = grad_out.data();
        let xd = x.data();
        // STE: dL/dθ_c = Σ_{batch, positions} dL/dy * x   (dH/dθ ≈ 1).
        {
            let tg = self.theta_grad.data_mut();
            for ni in 0..n {
                #[allow(clippy::needless_range_loop)]
                for ci in 0..c {
                    let base = (ni * c + ci) * inner;
                    let mut acc = 0.0f32;
                    for i in 0..inner {
                        acc += gd[base + i] * xd[base + i];
                    }
                    tg[ci] += acc;
                }
            }
        }
        // dL/dx = dL/dy * H(θ).
        let mut grad_in = grad_out.clone();
        {
            let gi = grad_in.data_mut();
            for ni in 0..n {
                #[allow(clippy::needless_range_loop)]
                for ci in 0..c {
                    if bin[ci] == 0.0 {
                        let base = (ni * c + ci) * inner;
                        for v in &mut gi[base..base + inner] {
                            *v = 0.0;
                        }
                    }
                }
            }
        }
        grad_in
    }

    /// Resets the accumulated `theta` gradient.
    pub fn zero_grad(&mut self) {
        self.theta_grad.fill(0.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn all_channels_start_alive() {
        let mask = ChannelMask::new(8);
        assert_eq!(mask.alive_count(), 8);
        assert_eq!(mask.alive_indices(), (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn negative_theta_disables_channel() {
        let mut mask = ChannelMask::new(3);
        mask.theta = Tensor::from_vec(vec![0.5, -0.5, 0.5], &[3]);
        assert_eq!(mask.alive_count(), 2);
        assert_eq!(mask.alive_indices(), vec![0, 2]);
    }

    #[test]
    fn at_least_one_channel_survives() {
        let mut mask = ChannelMask::new(4);
        mask.theta = Tensor::from_vec(vec![-3.0, -1.0, -2.0, -5.0], &[4]);
        assert_eq!(mask.alive_count(), 1);
        assert_eq!(mask.alive_indices(), vec![1]);
    }

    #[test]
    fn forward_zeroes_masked_channels() {
        let mut mask = ChannelMask::new(2);
        mask.theta = Tensor::from_vec(vec![1.0, -1.0], &[2]);
        let x = Tensor::ones(&[1, 2, 2, 2]);
        let y = mask.forward(&x);
        assert_eq!(y.data()[0..4], [1.0; 4]);
        assert_eq!(y.data()[4..8], [0.0; 4]);
    }

    #[test]
    fn backward_blocks_gradients_of_masked_channels() {
        let mut mask = ChannelMask::new(2);
        mask.theta = Tensor::from_vec(vec![1.0, -1.0], &[2]);
        let x = Tensor::ones(&[1, 2, 2, 2]);
        let _ = mask.forward(&x);
        let g = mask.backward(&Tensor::ones(&[1, 2, 2, 2]));
        assert_eq!(g.data()[0..4], [1.0; 4]);
        assert_eq!(g.data()[4..8], [0.0; 4]);
        // Theta gradient is the sum of grad*input per channel (4 positions).
        assert_eq!(mask.theta_grad.data(), &[4.0, 4.0]);
    }

    #[test]
    fn works_on_2d_feature_tensors() {
        let mut mask = ChannelMask::new(3);
        mask.theta = Tensor::from_vec(vec![-1.0, 1.0, 1.0], &[3]);
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let y = mask.forward(&x);
        assert_eq!(y.data(), &[0.0, 2.0, 3.0, 0.0, 5.0, 6.0]);
    }

    proptest! {
        #[test]
        fn alive_count_matches_non_negative_thetas(
            thetas in proptest::collection::vec(-1.0f32..1.0, 1..16)
        ) {
            let mut mask = ChannelMask::new(thetas.len());
            mask.theta = Tensor::from_vec(thetas.clone(), &[thetas.len()]);
            let expected = thetas.iter().filter(|&&t| t >= 0.0).count().max(1);
            prop_assert_eq!(mask.alive_count(), expected);
        }

        #[test]
        fn masking_is_idempotent(
            thetas in proptest::collection::vec(-1.0f32..1.0, 4),
            values in proptest::collection::vec(-5.0f32..5.0, 8),
        ) {
            let mut mask = ChannelMask::new(4);
            mask.theta = Tensor::from_vec(thetas, &[4]);
            let x = Tensor::from_vec(values, &[2, 4]);
            let once = mask.forward(&x);
            let twice = mask.forward(&once);
            prop_assert!(once.approx_eq(&twice, 0.0));
        }
    }
}
