//! The masked seed network trained during the search.

use crate::cost::MaskedCost;
use crate::mask::ChannelMask;
use pcount_nn::{BatchNorm2d, CnnConfig, Conv2d, Flatten, Layer, Linear, MaxPool2d, Mode, Relu};
use pcount_tensor::Tensor;
use rand::Rng;

/// The seed CNN augmented with PIT channel masks on conv1, conv2 and fc1.
///
/// The output layer is never masked (its width equals the number of
/// classes). Masks multiply the post-activation feature maps, which is
/// functionally equivalent to pruning the corresponding output channels
/// (weights, bias and batch-norm terms) of the producing layer.
pub struct PitModel {
    cfg: CnnConfig,
    conv1: Conv2d,
    bn1: BatchNorm2d,
    relu1: Relu,
    mask1: ChannelMask,
    pool: MaxPool2d,
    conv2: Conv2d,
    bn2: BatchNorm2d,
    relu2: Relu,
    mask2: ChannelMask,
    flatten: Flatten,
    fc1: Linear,
    relu3: Relu,
    mask3: ChannelMask,
    fc2: Linear,
}

impl PitModel {
    /// Creates a masked copy of the seed configuration with fresh weights.
    pub fn new<R: Rng>(cfg: CnnConfig, rng: &mut R) -> Self {
        Self {
            cfg,
            conv1: Conv2d::new(cfg.input_channels, cfg.conv1_out, 3, 1, 1, rng),
            bn1: BatchNorm2d::new(cfg.conv1_out),
            relu1: Relu::new(),
            mask1: ChannelMask::new(cfg.conv1_out),
            pool: MaxPool2d::new(2, 2),
            conv2: Conv2d::new(cfg.conv1_out, cfg.conv2_out, 3, 1, 1, rng),
            bn2: BatchNorm2d::new(cfg.conv2_out),
            relu2: Relu::new(),
            mask2: ChannelMask::new(cfg.conv2_out),
            flatten: Flatten::new(),
            fc1: Linear::new(cfg.flatten_features(), cfg.fc1_out, rng),
            relu3: Relu::new(),
            mask3: ChannelMask::new(cfg.fc1_out),
            fc2: Linear::new(cfg.fc1_out, cfg.num_classes, rng),
        }
    }

    /// The seed configuration this model was built from.
    pub fn seed_config(&self) -> CnnConfig {
        self.cfg
    }

    /// The three channel masks in network order (conv1, conv2, fc1).
    pub fn masks(&self) -> [&ChannelMask; 3] {
        [&self.mask1, &self.mask2, &self.mask3]
    }

    /// Forward pass; `mode` controls batch-norm behaviour.
    pub fn forward(&mut self, x: &Tensor, mode: Mode) -> Tensor {
        let x = self.conv1.forward(x, mode);
        let x = self.bn1.forward(&x, mode);
        let x = self.relu1.forward(&x, mode);
        let x = self.mask1.forward(&x);
        let x = self.pool.forward(&x, mode);
        let x = self.conv2.forward(&x, mode);
        let x = self.bn2.forward(&x, mode);
        let x = self.relu2.forward(&x, mode);
        let x = self.mask2.forward(&x);
        let x = self.flatten.forward(&x, mode);
        let x = self.fc1.forward(&x, mode);
        let x = self.relu3.forward(&x, mode);
        let x = self.mask3.forward(&x);
        self.fc2.forward(&x, mode)
    }

    /// Backward pass mirroring [`PitModel::forward`].
    pub fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let g = self.fc2.backward(grad_out);
        let g = self.mask3.backward(&g);
        let g = self.relu3.backward(&g);
        let g = self.fc1.backward(&g);
        let g = self.flatten.backward(&g);
        let g = self.mask2.backward(&g);
        let g = self.relu2.backward(&g);
        let g = self.bn2.backward(&g);
        let g = self.conv2.backward(&g);
        let g = self.pool.backward(&g);
        let g = self.mask1.backward(&g);
        let g = self.relu1.backward(&g);
        let g = self.bn1.backward(&g);
        self.conv1.backward(&g)
    }

    /// Resets all weight, batch-norm and mask gradients.
    pub fn zero_grad(&mut self) {
        self.conv1.zero_grad();
        self.bn1.zero_grad();
        self.conv2.zero_grad();
        self.bn2.zero_grad();
        self.fc1.zero_grad();
        self.fc2.zero_grad();
        self.mask1.zero_grad();
        self.mask2.zero_grad();
        self.mask3.zero_grad();
    }

    /// All `(parameter, gradient)` pairs, weights first, then batch-norm,
    /// then the three mask parameter vectors. The order is stable so a
    /// single optimiser can update everything.
    pub fn params_and_grads(&mut self) -> Vec<(&mut Tensor, &mut Tensor)> {
        let mut out = Vec::new();
        out.extend(self.conv1.params_and_grads());
        out.extend(self.bn1.params_and_grads());
        out.extend(self.conv2.params_and_grads());
        out.extend(self.bn2.params_and_grads());
        out.extend(self.fc1.params_and_grads());
        out.extend(self.fc2.params_and_grads());
        out.push((&mut self.mask1.theta, &mut self.mask1.theta_grad));
        out.push((&mut self.mask2.theta, &mut self.mask2.theta_grad));
        out.push((&mut self.mask3.theta, &mut self.mask3.theta_grad));
        out
    }

    /// Adds `λ · dC/dθ` to the mask gradients (the cost half of the PIT
    /// objective `L + λ·C`).
    pub fn apply_cost_gradient(&mut self, lambda: f64, cost: &MaskedCost) {
        let g = cost.cost_grad(&self.mask1, &self.mask2, &self.mask3);
        for (mask, grad) in [
            (&mut self.mask1, g[0]),
            (&mut self.mask2, g[1]),
            (&mut self.mask3, g[2]),
        ] {
            let delta = (lambda * grad) as f32;
            for v in mask.theta_grad.data_mut() {
                *v += delta;
            }
        }
    }

    /// Normalised cost of the current mask configuration.
    pub fn current_cost(&self, cost: &MaskedCost) -> f64 {
        cost.cost(&self.mask1, &self.mask2, &self.mask3)
    }

    /// The architecture currently selected by the masks.
    pub fn alive_config(&self) -> CnnConfig {
        self.cfg.with_channels(
            self.mask1.alive_count(),
            self.mask2.alive_count(),
            self.mask3.alive_count(),
        )
    }

    /// Predicted class per sample (argmax of the logits) in eval mode.
    pub fn predict(&mut self, x: &Tensor) -> Vec<usize> {
        self.forward(x, Mode::Eval).argmax_rows()
    }

    /// Borrow of the layer weights needed for sub-network extraction:
    /// `(conv1, bn1, conv2, bn2, fc1, fc2)`.
    pub fn layers(
        &self,
    ) -> (
        &Conv2d,
        &BatchNorm2d,
        &Conv2d,
        &BatchNorm2d,
        &Linear,
        &Linear,
    ) {
        (
            &self.conv1,
            &self.bn1,
            &self.conv2,
            &self.bn2,
            &self.fc1,
            &self.fc2,
        )
    }
}

impl std::fmt::Debug for PitModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PitModel")
            .field("seed", &self.cfg)
            .field("alive", &self.alive_config())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::CostTarget;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tiny_model(rng: &mut StdRng) -> PitModel {
        PitModel::new(CnnConfig::seed().with_channels(4, 4, 8), rng)
    }

    #[test]
    fn forward_produces_class_logits() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut model = tiny_model(&mut rng);
        let y = model.forward(&Tensor::zeros(&[2, 1, 8, 8]), Mode::Eval);
        assert_eq!(y.shape(), &[2, 4]);
    }

    #[test]
    fn masked_channels_do_not_affect_output() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut model = tiny_model(&mut rng);
        let x = Tensor::randn(&[2, 1, 8, 8], 1.0, &mut rng);
        let y_full = model.forward(&x, Mode::Eval);
        // Disable half of conv1's channels and verify outputs change, then
        // verify the masked forward equals a forward where those channels'
        // contribution is removed (weights zeroed downstream is implicit).
        model.mask1.theta.data_mut()[0] = -1.0;
        model.mask1.theta.data_mut()[1] = -1.0;
        let y_masked = model.forward(&x, Mode::Eval);
        assert!(!y_full.approx_eq(&y_masked, 1e-6));
    }

    #[test]
    fn gradients_flow_to_masks_and_weights() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut model = tiny_model(&mut rng);
        let x = Tensor::randn(&[4, 1, 8, 8], 1.0, &mut rng);
        model.zero_grad();
        let y = model.forward(&x, Mode::Train);
        let _ = model.backward(&y);
        assert!(model.mask1.theta_grad.data().iter().any(|&g| g != 0.0));
        assert!(model.conv1.weight_grad.data().iter().any(|&g| g != 0.0));
        assert!(model.fc2.weight_grad.data().iter().any(|&g| g != 0.0));
    }

    #[test]
    fn cost_gradient_pushes_thetas_down() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut model = tiny_model(&mut rng);
        let cost = MaskedCost::new(model.seed_config(), CostTarget::Params);
        model.zero_grad();
        model.apply_cost_gradient(1.0, &cost);
        // A pure cost gradient is positive for all thetas (pushes them down
        // once the optimiser subtracts it).
        assert!(model.mask1.theta_grad.data().iter().all(|&g| g > 0.0));
        assert!(model.mask3.theta_grad.data().iter().all(|&g| g > 0.0));
    }

    #[test]
    fn alive_config_tracks_masks() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut model = tiny_model(&mut rng);
        model.mask2.theta.data_mut()[0] = -1.0;
        let cfg = model.alive_config();
        assert_eq!(cfg.conv1_out, 4);
        assert_eq!(cfg.conv2_out, 3);
        assert_eq!(cfg.fc1_out, 8);
    }

    #[test]
    fn params_and_grads_contains_masks() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut model = tiny_model(&mut rng);
        // conv(2) + bn(2) + conv(2) + bn(2) + fc(2) + fc(2) + 3 masks = 15
        assert_eq!(model.params_and_grads().len(), 15);
    }
}
