//! PIT-style mask-based differentiable neural architecture search (DNAS).
//!
//! The paper's architecture-optimisation step uses PIT: every output
//! channel (or linear feature) of the seed CNN is coupled with a trainable
//! mask parameter `θ_c`, binarised with a Heaviside step (straight-through
//! estimator for the gradient). Weights and masks are trained jointly to
//! minimise
//!
//! ```text
//! L(W; θ) + λ · C(θ)
//! ```
//!
//! where `C` is a differentiable model of a hardware cost — the number of
//! parameters (a memory proxy) or the number of multiply-accumulate
//! operations (an energy proxy). Sweeping the strength `λ` yields a set of
//! sub-architectures of the seed, each extracted into a plain
//! [`pcount_nn::CnnConfig`] and fine-tuned.
//!
//! # Example
//!
//! ```
//! use pcount_nas::{ChannelMask};
//!
//! let mask = ChannelMask::new(4);
//! assert_eq!(mask.alive_count(), 4); // all channels start alive
//! ```

mod cost;
mod mask;
mod model;
mod search;

pub use cost::{CostTarget, MaskedCost};
pub use mask::ChannelMask;
pub use model::PitModel;
pub use search::{extract_subnetwork, lambda_sweep, search, NasConfig, SearchOutcome, SweepPoint};
