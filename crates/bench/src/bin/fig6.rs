//! Figure 6: effect of majority-voting post-processing on the Pareto
//! fronts, in both the BAS-vs-memory and BAS-vs-MACs planes, plus a window
//! -length ablation.
//!
//! `PCOUNT_QUICK=1 cargo run --release -p pcount-bench --bin fig6`

use pcount_bench::{experiment_flow_config, format_points};
use pcount_core::{pareto_front_by, run_flow};

fn main() {
    let cfg = experiment_flow_config();
    eprintln!("fig6: running flow ...");
    let result = run_flow(&cfg);

    println!(
        "=== Figure 6: post-processing (majority voting, window = {}) ===\n",
        result.majority_window
    );
    for (plane, use_macs) in [("BAS vs memory", false), ("BAS vs MACs", true)] {
        println!("--- {plane} ---");
        let simple = pareto_front_by(&result.quantized_points(), use_macs);
        let majority = pareto_front_by(&result.majority_points(), use_macs);
        println!(
            "{}",
            format_points("single-frame front (circles):", &simple)
        );
        println!(
            "{}",
            format_points("majority-voted front (squares):", &majority)
        );
    }

    // Iso-cost BAS improvement (paper: up to +6.7 BAS points).
    let mut best_gain = 0.0f64;
    let mut mean_gain = 0.0f64;
    for c in &result.quantized {
        let gain = c.bas_majority - c.bas;
        best_gain = best_gain.max(gain);
        mean_gain += gain;
    }
    mean_gain /= result.quantized.len().max(1) as f64;
    println!(
        "majority-voting BAS gain at iso-memory/iso-MACs: mean {:+.3}, best {:+.3} \
         (paper reports up to +0.067)",
        mean_gain, best_gain
    );
}
