//! Figure 7: comparison against the hand-tuned manual-grid baseline of
//! Xie et al. in the BAS-vs-memory and BAS-vs-MACs planes.
//!
//! `PCOUNT_QUICK=1 cargo run --release -p pcount-bench --bin fig7`

use pcount_bench::{experiment_flow_config, format_points, quick_mode};
use pcount_core::{manual_grid_baseline, pareto_front_by, run_flow, BaselineConfig};

fn main() {
    let flow_cfg = experiment_flow_config();
    let baseline_cfg = if quick_mode() {
        BaselineConfig::quick()
    } else {
        BaselineConfig::default_experiment()
    };
    eprintln!("fig7: running the automated flow ...");
    let result = run_flow(&flow_cfg);
    eprintln!("fig7: running the manual-grid baseline ...");
    let baseline = manual_grid_baseline(&baseline_cfg);

    println!("=== Figure 7: comparison against the hand-tuned SotA baseline ===\n");
    for (plane, use_macs) in [("BAS vs memory", false), ("BAS vs MACs", true)] {
        println!("--- {plane} ---");
        let ours = pareto_front_by(&result.majority_points(), use_macs);
        let sota = pareto_front_by(&baseline, use_macs);
        println!("{}", format_points("this flow (majority voting):", &ours));
        println!("{}", format_points("manual grid baseline [4]:", &sota));
    }

    // Iso-accuracy ratios against the baseline (paper: up to 2.4x smaller /
    // 3.3x fewer MACs above 80% BAS; 4.2x / 2.9x at the small end).
    let ours = pareto_front_by(&result.majority_points(), false);
    let sota = pareto_front_by(&baseline, false);
    if let (Some(small_ours), Some(small_sota)) = (ours.first(), sota.first()) {
        println!(
            "smallest models: ours {} B (BAS {:.3}) vs baseline {} B (BAS {:.3}) -> {:.1}x memory",
            small_ours.memory_bytes,
            small_ours.bas,
            small_sota.memory_bytes,
            small_sota.bas,
            small_sota.memory_bytes as f64 / small_ours.memory_bytes as f64
        );
    }
    let best_ours = ours.iter().map(|p| p.bas).fold(0.0f64, f64::max);
    let best_sota = sota.iter().map(|p| p.bas).fold(0.0f64, f64::max);
    println!(
        "best accuracy: ours {best_ours:.3} vs baseline {best_sota:.3} (paper: baseline +0.009)"
    );
}
