//! Table I: deployment of the Top / −5 % / Mini models on the STM32,
//! vanilla IBEX and MAUPITI targets (code size, data size, latency and
//! energy per inference), plus the SDOTP instruction-mix detail from the
//! simulator trace.
//!
//! `PCOUNT_QUICK=1 cargo run --release -p pcount-bench --bin table1`

use pcount_bench::experiment_flow_config;
use pcount_core::{run_flow, select_table1_models};
use pcount_kernels::Target;
use pcount_platform::{evaluate_on_platforms, format_table1, Table1Row};

fn main() {
    let cfg = experiment_flow_config();
    eprintln!("table1: running flow to obtain the Top / -5% / Mini models ...");
    let result = run_flow(&cfg);
    let Some((top, minus5, mini)) = select_table1_models(&result.quantized) else {
        eprintln!("no candidates produced");
        return;
    };

    println!("=== Table I: deployment results ===\n");
    println!("selected models:");
    for (name, c) in [("Top", &top), ("-5%", &minus5), ("Mini", &mini)] {
        println!(
            "  {name:<4} {}  BAS(majority) {:.3}  {} weight bytes  {} MACs",
            c.label, c.bas_majority, c.memory_bytes, c.macs
        );
    }
    println!();

    let frame = vec![0.5f32; 64];
    let mut rows = Vec::new();
    for (name, candidate) in [("Top", &top), ("-5%", &minus5), ("Mini", &mini)] {
        match evaluate_on_platforms(&candidate.quantized, &frame) {
            Ok(results) => rows.push(Table1Row {
                model: name.to_string(),
                results,
            }),
            Err(err) => eprintln!("skipping {name}: {err}"),
        }
    }
    println!("{}", format_table1(&rows));

    // Instruction-mix detail on MAUPITI vs IBEX for the Top model
    // (replaces the paper's area discussion, which needs silicon).
    for target in [Target::Ibex, Target::Maupiti] {
        if let Ok(dep) = top.deploy(target) {
            if let Ok(run) = dep.run_frame(&frame) {
                println!(
                    "{target}: {} instructions, {} cycles, {} SDOTP ops per inference",
                    run.instructions, run.cycles, run.sdotp
                );
            }
        }
    }
}
