//! Figure 5: architecture and precision search-space exploration.
//!
//! Prints the seed point, the FP32 Pareto front produced by the PIT λ
//! sweep, and the per-precision quantised fronts in the BAS-vs-memory
//! plane, plus the iso-accuracy memory/MAC reduction ratios quoted in
//! Sec. IV-B of the paper.
//!
//! `PCOUNT_QUICK=1 cargo run --release -p pcount-bench --bin fig5` for a
//! fast smoke run.

use pcount_bench::{experiment_flow_config, format_points};
use pcount_core::{pareto_front_by, run_flow};
use std::collections::BTreeMap;

fn main() {
    let cfg = experiment_flow_config();
    eprintln!(
        "fig5: running flow with {} lambdas x {} assignments ...",
        cfg.lambdas.len(),
        cfg.assignments.len()
    );
    let result = run_flow(&cfg);

    println!("=== Figure 5: architecture & precision exploration (BAS vs memory) ===\n");
    println!(
        "seed (blue star): {} bytes, {} MACs, BAS {:.3}\n",
        result.seed_point.memory_bytes, result.seed_point.macs, result.seed_point.bas
    );
    let fp32_front = pareto_front_by(&result.fp32_points, false);
    println!(
        "{}",
        format_points("FP32 PIT front (grey curve):", &fp32_front)
    );

    // Group the quantised candidates by precision assignment, mirroring the
    // per-colour curves of the figure.
    let mut by_assignment: BTreeMap<String, Vec<pcount_core::ParetoPoint>> = BTreeMap::new();
    for c in &result.quantized {
        by_assignment
            .entry(c.assignment.to_string())
            .or_default()
            .push(c.point());
    }
    for (assignment, points) in &by_assignment {
        let mut sorted = points.clone();
        sorted.sort_by_key(|p| p.memory_bytes);
        println!(
            "{}",
            format_points(&format!("{assignment} curve (all λ):"), &sorted)
        );
        let front = pareto_front_by(points, false);
        println!(
            "{}",
            format_points(&format!("{assignment} Pareto front:"), &front)
        );
    }

    // Iso-accuracy reduction ratios (paper: 89x / 26.7x for NAS alone and
    // 147x / 234x after quantisation).
    let seed = &result.seed_point;
    let iso = |points: &[pcount_core::ParetoPoint]| {
        points
            .iter()
            .filter(|p| p.bas >= seed.bas - 0.01)
            .map(|p| {
                (
                    seed.memory_bytes as f64 / p.memory_bytes as f64,
                    seed.macs as f64 / p.macs as f64,
                )
            })
            .fold((1.0f64, 1.0f64), |acc, r| (acc.0.max(r.0), acc.1.max(r.1)))
    };
    let (nas_mem, nas_macs) = iso(&result.fp32_points);
    let all_quant: Vec<_> = result.quantized_points();
    let (q_mem, q_macs) = iso(&all_quant);
    println!("iso-accuracy reductions vs the seed (paper: 89x mem / 26.7x MACs after NAS,");
    println!("147x mem / 234x MACs after NAS+quantisation):");
    println!("  after NAS          : {nas_mem:.1}x memory, {nas_macs:.1}x MACs");
    println!("  after NAS + quant  : {q_mem:.1}x memory, {q_macs:.1}x MACs");
}
