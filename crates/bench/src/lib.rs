//! Shared helpers for the benchmark harness and the experiment binaries
//! that regenerate the paper's figures and tables.
//!
//! Binaries:
//!
//! * `fig5` — architecture + precision search-space exploration
//!   (BAS vs memory, seed / FP32 front / per-precision fronts).
//! * `fig6` — Pareto fronts with and without majority voting
//!   (BAS vs memory and BAS vs MACs).
//! * `fig7` — comparison against the hand-tuned manual-grid baseline.
//! * `table1` — deployment of the Top / −5 % / Mini models on STM32,
//!   IBEX and MAUPITI (code size, data size, latency, energy).
//!
//! Every binary honours the `PCOUNT_QUICK=1` environment variable to run a
//! seconds-scale configuration instead of the minutes-scale default.

use pcount_core::FlowConfig;
use pcount_dataset::{DatasetConfig, IrDataset};
use pcount_nn::{train_classifier, CnnConfig, TrainConfig};
use pcount_quant::{fold_sequential, Precision, PrecisionAssignment, QatCnn, QuantizedCnn};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Returns `true` when the `PCOUNT_QUICK` environment variable asks for the
/// reduced, seconds-scale experiment configuration.
pub fn quick_mode() -> bool {
    std::env::var("PCOUNT_QUICK")
        .map(|v| v == "1")
        .unwrap_or(false)
}

/// The flow configuration selected by [`quick_mode`].
pub fn experiment_flow_config() -> FlowConfig {
    if quick_mode() {
        FlowConfig::quick()
    } else {
        FlowConfig::default_experiment()
    }
}

/// Builds a small trained + quantised model used by the micro-benchmarks
/// (kernel latency, integer inference), without running the full flow.
pub fn demo_quantized_model(
    channels: (usize, usize, usize),
    assignment: PrecisionAssignment,
    seed: u64,
) -> (QuantizedCnn, pcount_tensor::Tensor) {
    let mut rng = StdRng::seed_from_u64(seed);
    let data = IrDataset::generate(&DatasetConfig::tiny(), seed);
    let fold = &data.leave_one_session_out()[0];
    let (x_train, y_train) = data.gather_normalized(fold.train.as_slice());
    let arch = CnnConfig::seed().with_channels(channels.0, channels.1, channels.2);
    let mut net = arch.build(&mut rng);
    let cfg = TrainConfig {
        epochs: 3,
        batch_size: 64,
        learning_rate: 2e-3,
        weight_decay: 0.0,
        verbose: false,
    };
    let _ = train_classifier(&mut net, &x_train, &y_train, &cfg, &mut rng);
    let folded = fold_sequential(arch, &net).expect("canonical layout");
    let mut qat = QatCnn::from_folded(&folded, assignment);
    qat.calibrate(&x_train);
    (QuantizedCnn::from_qat(&qat), x_train)
}

/// A convenient INT8 demo model.
pub fn demo_int8_model(seed: u64) -> (QuantizedCnn, pcount_tensor::Tensor) {
    demo_quantized_model(
        (8, 8, 16),
        PrecisionAssignment::uniform(Precision::Int8),
        seed,
    )
}

/// The git revision stamped into bench reports: the `GIT_REV`
/// environment variable when the driver exports it (CI does), otherwise
/// `git rev-parse --short HEAD` so locally regenerated `BENCH_*.json`
/// files stay attributable instead of reporting `"unknown"`.
fn git_rev() -> String {
    if let Ok(rev) = std::env::var("GIT_REV") {
        if !rev.trim().is_empty() {
            return rev;
        }
    }
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|out| out.status.success())
        .and_then(|out| String::from_utf8(out.stdout).ok())
        .map(|rev| rev.trim().to_string())
        .filter(|rev| !rev.is_empty())
        .unwrap_or_else(|| "unknown".into())
}

/// The host metadata block embedded in every `BENCH_*.json`: hardware
/// thread count, configured worker-pool width, whether the run was a
/// `BENCH_SMOKE=1` smoke pass, and the git revision (from `GIT_REV` or
/// the local `git` checkout).
pub fn host_metadata_json(smoke: bool) -> String {
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let pool_width = pcount_runtime::current().width();
    let git_rev = git_rev();
    // GIT_REV is driver-controlled but untrusted for embedding raw.
    let git_rev: String = git_rev
        .chars()
        .filter(|c| c.is_ascii_alphanumeric() || matches!(c, '-' | '_' | '.'))
        .take(64)
        .collect();
    format!(
        "{{\"threads\": {threads}, \"pool_width\": {pool_width}, \
         \"smoke\": {smoke}, \"git_rev\": \"{git_rev}\"}}"
    )
}

/// Formats a series of Pareto points as an aligned text table.
pub fn format_points(title: &str, points: &[pcount_core::ParetoPoint]) -> String {
    let mut out = format!(
        "{title}\n  {:<34} {:>10} {:>12} {:>8}\n",
        "label", "memory[B]", "MACs", "BAS"
    );
    for p in points {
        out.push_str(&format!(
            "  {:<34} {:>10} {:>12} {:>8.3}\n",
            p.label, p.memory_bytes, p.macs, p.bas
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn demo_model_is_deployable_size() {
        let (model, x) = demo_int8_model(1);
        assert!(model.weight_bytes() < 16 * 1024);
        assert_eq!(x.shape()[2], 8);
    }

    #[test]
    fn host_metadata_is_valid_json() {
        let meta = host_metadata_json(true);
        let parsed = pcount_telemetry::parse_json(&meta).expect("host metadata parses");
        assert!(parsed
            .get("threads")
            .and_then(|v| v.as_f64())
            .is_some_and(|t| t >= 1.0));
        assert!(parsed
            .get("pool_width")
            .and_then(|v| v.as_f64())
            .is_some_and(|w| w >= 1.0));
        assert_eq!(
            parsed.get("smoke").and_then(|v| v.as_f64()),
            None,
            "smoke is a boolean, not a number"
        );
        assert!(parsed.get("git_rev").and_then(|v| v.as_str()).is_some());
    }

    #[test]
    fn format_points_includes_every_point() {
        let points = vec![
            pcount_core::ParetoPoint::new("a", 0.5, 100, 200),
            pcount_core::ParetoPoint::new("b", 0.6, 300, 400),
        ];
        let text = format_points("title", &points);
        assert!(text.contains("title"));
        assert!(text.contains('a'));
        assert!(text.contains("300"));
        assert_eq!(text.lines().count(), 4);
    }
}
