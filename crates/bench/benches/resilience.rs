//! Chaos bench: accuracy-vs-fault-rate curves of the supervised
//! streaming deployment, written to `BENCH_robust.json` at the workspace
//! root so the robustness trajectory stays machine-readable across PRs.
//!
//! Besides the criterion timing of the supervised stream against the
//! plain pooled batch, the bench runs the timing-independent chaos
//! tripwires in every mode (including `BENCH_SMOKE=1`):
//!
//! * zero-intensity supervision is bit-identical to the plain
//!   [`Deployment`] (logits, cycles, instret);
//! * a seeded fault sweep is bit-reproducible run-to-run and across pool
//!   widths 1 and 4 (the CI chaos-smoke gate);
//! * every swept stream completes with fallbacks/holds instead of
//!   aborting, and the end-to-end accuracy degrades boundedly.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use pcount_dataset::{DatasetConfig, IrDataset};
use pcount_kernels::{Deployment, Target};
use pcount_resilience::{
    evaluate_robustness, FaultConfig, FaultPlan, ResilienceConfig, ResilientDeployment, TickStatus,
};
use pcount_tensor::Tensor;

/// Seed of the demo model, the streamed session and the fault plans.
const SEED: u64 = 7;
/// Fault-plan seed of the swept curves (reported in the JSON).
const FAULT_SEED: u64 = 123;
/// Worker threads of the reported sweep.
const POOL_THREADS: usize = 4;
/// Intensity axis of the reported robustness curve.
const INTENSITIES: [f64; 5] = [0.0, 0.05, 0.1, 0.2, 0.4];

fn smoke_mode() -> bool {
    std::env::var("BENCH_SMOKE")
        .map(|v| v == "1")
        .unwrap_or(false)
}

/// The deployed demo model plus a labelled IR frame stream (the first
/// `n` frames of a held-out session, in temporal order).
fn deployed_stream(n: usize) -> (Deployment, Tensor, Vec<usize>) {
    let (model, _) = pcount_bench::demo_int8_model(SEED);
    let deployment = Deployment::new(&model, Target::Maupiti).expect("deploy");
    let data = IrDataset::generate(&DatasetConfig::tiny(), SEED);
    let (x, y) = data.session_stream(data.num_sessions() - 1);
    let n = n.min(y.len());
    let frames = Tensor::from_vec(x.data()[..n * 64].to_vec(), &[n, 1, 8, 8]);
    (deployment, frames, y[..n].to_vec())
}

/// Zero-intensity supervision must add nothing: every tick is `Ok` and
/// bit-identical to the plain pooled batch.
fn check_transparent_when_healthy(d: &Deployment, frames: &Tensor) {
    let stream = FaultPlan::new(FAULT_SEED, FaultConfig::off()).inject(frames);
    let supervised = ResilientDeployment::new(d.clone(), ResilienceConfig::default());
    let plain = d
        .run_batch(frames, &d.make_pool(POOL_THREADS).expect("pool"))
        .expect("plain batch");
    let mut pool = d.make_pool(POOL_THREADS).expect("pool");
    let report = supervised.run_stream(&stream, &mut pool);
    assert_eq!(report.stats.degraded_ticks(), 0, "healthy stream degraded");
    for (i, (outcome, clean)) in report.outcomes.iter().zip(&plain).enumerate() {
        assert_eq!(outcome.status, TickStatus::Ok, "tick {i}");
        assert_eq!(
            outcome.run.as_ref(),
            Some(clean),
            "supervision perturbed tick {i}"
        );
    }
}

fn write_bench_json(lines: &[(&str, String)]) {
    let body: Vec<String> = lines
        .iter()
        .map(|(k, v)| format!("  \"{k}\": {v}"))
        .collect();
    let json = format!("{{\n{}\n}}\n", body.join(",\n"));
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_robust.json");
    if let Err(e) = std::fs::write(path, &json) {
        eprintln!("warning: could not write {path}: {e}");
    } else {
        println!("wrote {path}");
    }
}

fn bench_resilience(c: &mut Criterion) {
    let smoke = smoke_mode();
    let n = if smoke { 16 } else { 48 };
    let (deployment, frames, labels) = deployed_stream(n);

    check_transparent_when_healthy(&deployment, &frames);

    // The reported sweep runs with telemetry on so the SLO counter block
    // of `BENCH_robust.json` is populated; recording never changes any
    // computed result.
    pcount_telemetry::set_enabled(true);
    let report = evaluate_robustness(
        &deployment,
        &frames,
        &labels,
        &ResilienceConfig::default(),
        FAULT_SEED,
        &INTENSITIES,
        POOL_THREADS,
    )
    .expect("sweep");
    let json = report.to_json();

    // Chaos-smoke gate (a): every stream completed — one outcome per
    // tick, faults absorbed as retries/fallbacks/holds, never an abort.
    for p in &report.points {
        assert!(p.ticks > 0, "intensity {} produced no ticks", p.intensity);
        assert!(
            (0.0..=1.0).contains(&p.accuracy),
            "accuracy out of range at intensity {}",
            p.intensity
        );
    }
    let max_point = report.points.last().expect("points");
    assert!(
        max_point.fault_rate > 0.0,
        "top intensity injected no faults"
    );
    assert!(
        report.baseline_accuracy - max_point.accuracy <= 0.5,
        "degradation unbounded: {:.3} -> {:.3}",
        report.baseline_accuracy,
        max_point.accuracy
    );
    // Chaos-smoke gate (b): the seeded sweep is bit-reproducible, and
    // pool width does not leak into any reported number.
    let again = evaluate_robustness(
        &deployment,
        &frames,
        &labels,
        &ResilienceConfig::default(),
        FAULT_SEED,
        &INTENSITIES,
        1,
    )
    .expect("re-sweep");
    pcount_telemetry::set_enabled(false);
    assert_eq!(
        json,
        again.to_json(),
        "sweep not reproducible across runs/pool widths"
    );
    // The SLO counter block is present and accounted (gate (c) parses
    // the written JSON again from CI).
    assert!(json.contains("\"resilience/retries\""));
    assert!(report.slo.total_faults() > 0, "sweep recorded no faults");

    println!("resilience summary (demo INT8 model, seeded faults):");
    println!("  baseline accuracy: {:.3}", report.baseline_accuracy);
    for p in &report.points {
        println!(
            "  intensity {:.2}: fault_rate {:.3}, accuracy {:.3}, \
             {} recovered / {} fallback / {} gap / {} shed, burn {} milli",
            p.intensity,
            p.fault_rate,
            p.accuracy,
            p.recovered,
            p.fallbacks,
            p.gaps,
            p.breaker_skips,
            p.error_budget_burn_milli
        );
    }

    write_bench_json(&[
        ("bench", "\"resilience\"".into()),
        (
            "mode",
            format!("\"{}\"", if smoke { "smoke" } else { "full" }),
        ),
        ("host", pcount_bench::host_metadata_json(smoke)),
        ("frames", n.to_string()),
        ("pool_threads", POOL_THREADS.to_string()),
        ("fault_seed", FAULT_SEED.to_string()),
        ("robustness", json),
    ]);

    if smoke {
        println!("BENCH_SMOKE=1: criterion timing skipped");
        return;
    }
    let supervised = ResilientDeployment::new(deployment.clone(), ResilienceConfig::default());
    let faulted = FaultPlan::new(FAULT_SEED, FaultConfig::uniform(0.1)).inject(&frames);
    let pool = deployment.make_pool(POOL_THREADS).expect("pool");
    let mut group = c.benchmark_group("resilience");
    group.sample_size(10);
    group.bench_function("plain_batch", |b| {
        b.iter(|| {
            deployment
                .run_batch(black_box(&frames), &pool)
                .expect("batch")
        })
    });
    group.bench_function("supervised_stream_intensity_0.1", |b| {
        b.iter(|| {
            let mut pool = deployment.make_pool(POOL_THREADS).expect("pool");
            black_box(supervised.run_stream(black_box(&faulted), &mut pool))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_resilience);
criterion_main!(benches);
