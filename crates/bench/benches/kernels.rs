//! Criterion benches of the deployed kernels on the instruction-set
//! simulator (backing Table I): simulation throughput and, via the
//! reported custom measurements, cycles per inference on MAUPITI vs IBEX.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pcount_bench::demo_quantized_model;
use pcount_kernels::{Deployment, Target};
use pcount_quant::{Precision, PrecisionAssignment};

fn bench_inference_on_targets(c: &mut Criterion) {
    let assignments = [
        ("int8", PrecisionAssignment::uniform(Precision::Int8)),
        (
            "int8-4-4-8",
            PrecisionAssignment::new([
                Precision::Int8,
                Precision::Int4,
                Precision::Int4,
                Precision::Int8,
            ]),
        ),
    ];
    let mut group = c.benchmark_group("deployed_inference");
    group.sample_size(10);
    for (name, assignment) in assignments {
        let (model, x) = demo_quantized_model((8, 8, 16), assignment, 7);
        let frame: Vec<f32> = x.data()[0..64].to_vec();
        for target in [Target::Maupiti, Target::Ibex] {
            let deployment = Deployment::new(&model, target).expect("deploy");
            let cycles = deployment.run_frame(&frame).expect("run").cycles;
            group.bench_with_input(
                BenchmarkId::new(format!("{target}"), format!("{name}/{cycles}cyc")),
                &deployment,
                |b, dep| b.iter(|| dep.run_frame(&frame).expect("run").cycles),
            );
        }
    }
    group.finish();
}

fn bench_golden_integer_model(c: &mut Criterion) {
    let (model, x) =
        demo_quantized_model((8, 8, 16), PrecisionAssignment::uniform(Precision::Int8), 9);
    let frame: Vec<f32> = x.data()[0..64].to_vec();
    let q = model.quantize_input(&frame);
    c.bench_function("golden_integer_forward", |b| {
        b.iter(|| model.forward_int(&q))
    });
}

criterion_group!(
    benches,
    bench_inference_on_targets,
    bench_golden_integer_model
);
criterion_main!(benches);
