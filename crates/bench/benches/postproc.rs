//! Criterion benches of the majority-voting post-processing (backing
//! Fig. 6): per-frame filter cost for several window lengths, confirming
//! the paper's claim that the overhead is negligible compared with an
//! inference.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pcount_postproc::{apply_majority, MajorityVoter};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn bench_majority_voting(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(0);
    let stream: Vec<usize> = (0..10_000).map(|_| rng.gen_range(0..4)).collect();
    let mut group = c.benchmark_group("majority_voting");
    for window in [3usize, 5, 7, 9] {
        group.bench_with_input(
            BenchmarkId::new("stream_10k", window),
            &window,
            |b, &window| b.iter(|| apply_majority(&stream, window)),
        );
    }
    group.finish();

    c.bench_function("single_push_window5", |b| {
        let mut voter = MajorityVoter::new(5);
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 1) % stream.len();
            voter.push(stream[i])
        })
    });
}

criterion_group!(benches, bench_majority_voting);
criterion_main!(benches);
