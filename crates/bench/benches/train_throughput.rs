//! Training-engine throughput: GEMM-backed vs naive nested-loop
//! convolution in images/second (forward + backward, the QAT/NAS hot
//! path), and serial vs parallel per-fold NAS training wall-clock through
//! `pcount_core::FoldTrainJob`.
//!
//! Besides the criterion timings, the bench prints an explicit summary
//! (conv speedup vs the 3x acceptance target, fold-scaling efficiency vs
//! the 0.7 target on >= 4-core hosts) and writes the numbers to
//! `BENCH_train.json` at the workspace root so the perf trajectory stays
//! machine-readable across PRs.
//!
//! `BENCH_SMOKE=1` (used by CI) skips the wall-clock assertions and
//! shrinks every measurement window — the GEMM-vs-naive equivalence checks
//! and the thread-count determinism check still run in full, so training
//! engine regressions fail fast without timing noise.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use pcount_core::FoldTrainJob;
use pcount_dataset::{DatasetConfig, IrDataset};
use pcount_nn::{CnnConfig, Conv2d, Layer, TrainConfig};
use pcount_quant::{Precision, PrecisionAssignment, QatConfig};
use pcount_tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

/// Worker threads used for the parallel-fold measurement.
const PARALLEL_THREADS: usize = 4;

fn smoke_mode() -> bool {
    std::env::var("BENCH_SMOKE")
        .map(|v| v == "1")
        .unwrap_or(false)
}

/// Per-measurement wall-clock budget in seconds.
fn measure_secs() -> f64 {
    if smoke_mode() {
        0.02
    } else {
        1.0
    }
}

/// The convolution workload: conv2 of the paper's scaled-down seed (the
/// widest layer of the deployed CNNs) on a training-sized batch.
struct ConvWorkload {
    conv: Conv2d,
    weight: Tensor,
    x: Tensor,
    batch: usize,
}

impl ConvWorkload {
    fn new(seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let batch = 64;
        let conv = Conv2d::new(16, 24, 3, 1, 1, &mut rng);
        let weight = conv.weight.clone();
        let x = Tensor::randn(&[batch, 16, 8, 8], 1.0, &mut rng);
        Self {
            conv,
            weight,
            x,
            batch,
        }
    }

    /// One GEMM-path training step (forward + backward).
    fn step_gemm(&mut self) {
        self.conv.zero_grad();
        let y = self.conv.forward_with_weight(&self.x, &self.weight);
        black_box(self.conv.backward_with_weight(&y, &self.weight));
    }

    /// One naive-path training step (forward + backward).
    fn step_naive(&mut self) {
        self.conv.zero_grad();
        let y = self.conv.forward_naive_with_weight(&self.x, &self.weight);
        black_box(self.conv.backward_naive_with_weight(&y, &self.weight));
    }
}

/// Sustained images/second of a forward+backward step function.
fn measure_images_per_s(mut step: impl FnMut(), batch: usize) -> f64 {
    step(); // warmup
    let budget = measure_secs();
    let start = Instant::now();
    let mut iters = 0u64;
    loop {
        step();
        iters += 1;
        if start.elapsed().as_secs_f64() >= budget {
            break;
        }
    }
    (iters * batch as u64) as f64 / start.elapsed().as_secs_f64()
}

/// Holds the GEMM conv path to the naive reference on the bench workload;
/// this is the timing-independent engine-regression tripwire that also
/// runs in smoke mode.
fn check_conv_equivalence() {
    let mut w = ConvWorkload::new(11);
    w.conv.zero_grad();
    let y_gemm = w.conv.forward_with_weight(&w.x, &w.weight);
    let gx_gemm = w.conv.backward_with_weight(&y_gemm, &w.weight);
    let wg_gemm = w.conv.weight_grad.clone();
    w.conv.zero_grad();
    let y_naive = w.conv.forward_naive_with_weight(&w.x, &w.weight);
    let gx_naive = w.conv.backward_naive_with_weight(&y_naive, &w.weight);
    for (what, got, want) in [
        ("forward", &y_gemm, &y_naive),
        ("input grad", &gx_gemm, &gx_naive),
        ("weight grad", &wg_gemm, &w.conv.weight_grad),
    ] {
        assert_eq!(got.shape(), want.shape());
        for (i, (&g, &n)) in got.data().iter().zip(want.data().iter()).enumerate() {
            assert!(
                (g - n).abs() <= 1e-4 * 1.0f32.max(n.abs()),
                "conv {what} diverged from naive reference at {i}: {g} vs {n}"
            );
        }
    }
}

/// The per-fold training workload measured for scaling: the quick-flow
/// architecture across every leave-one-session-out fold of the tiny
/// dataset.
struct FoldWorkload {
    dataset: IrDataset,
    network: pcount_nn::Sequential,
    arch: CnnConfig,
    train: TrainConfig,
    qat: QatConfig,
    assignments: Vec<PrecisionAssignment>,
}

impl FoldWorkload {
    fn new(epochs: usize) -> Self {
        let mut rng = StdRng::seed_from_u64(5);
        let dataset = IrDataset::generate(&DatasetConfig::tiny(), 5);
        let arch = CnnConfig::seed().with_channels(6, 6, 12);
        let network = arch.build(&mut rng);
        Self {
            dataset,
            network,
            arch,
            train: TrainConfig {
                epochs,
                batch_size: 64,
                learning_rate: 2e-3,
                weight_decay: 0.0,
                verbose: false,
            },
            qat: QatConfig {
                epochs: 1,
                batch_size: 64,
                learning_rate: 5e-4,
                verbose: false,
            },
            assignments: vec![
                PrecisionAssignment::uniform(Precision::Int8),
                PrecisionAssignment::new([
                    Precision::Int8,
                    Precision::Int4,
                    Precision::Int4,
                    Precision::Int8,
                ]),
            ],
        }
    }

    fn job<'a>(&'a self, folds: &'a [pcount_dataset::CvFold]) -> FoldTrainJob<'a> {
        FoldTrainJob {
            arch: self.arch,
            network: &self.network,
            dataset: &self.dataset,
            folds,
            train: &self.train,
            qat: &self.qat,
            assignments: &self.assignments,
            majority_window: 5,
            rng_seed: 7,
            lambda_index: 0,
        }
    }
}

/// Asserts the fold job returns identical results for every thread count
/// (the per-fold derived-seed determinism contract). Runs in smoke mode.
fn check_fold_determinism() {
    let workload = FoldWorkload::new(1);
    let folds: Vec<_> = workload
        .dataset
        .leave_one_session_out()
        .into_iter()
        .take(2)
        .collect();
    let job = workload.job(&folds);
    let serial = job.run(1);
    let parallel = job.run(PARALLEL_THREADS);
    assert_eq!(serial.len(), parallel.len());
    for (a, b) in serial.iter().zip(parallel.iter()) {
        assert_eq!(
            a.fp32_bas, b.fp32_bas,
            "fold training must be deterministic"
        );
        for (ca, cb) in a.candidates.iter().zip(b.candidates.iter()) {
            assert_eq!(ca.bas, cb.bas, "QAT must be deterministic");
            assert_eq!(ca.bas_majority, cb.bas_majority);
        }
    }
}

fn write_bench_json(lines: &[(&str, String)]) {
    let body: Vec<String> = lines
        .iter()
        .map(|(k, v)| format!("  \"{k}\": {v}"))
        .collect();
    let json = format!("{{\n{}\n}}\n", body.join(",\n"));
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_train.json");
    if let Err(e) = std::fs::write(path, &json) {
        eprintln!("warning: could not write {path}: {e}");
    } else {
        println!("wrote {path}");
    }
}

fn bench_train_throughput(c: &mut Criterion) {
    let smoke = smoke_mode();

    check_conv_equivalence();
    check_fold_determinism();

    if !smoke {
        let mut group = c.benchmark_group("train_throughput");
        group.sample_size(10);
        for name in ["gemm", "naive"] {
            group.bench_with_input(BenchmarkId::new("conv_fwd_bwd", name), &name, |b, &name| {
                let mut w = ConvWorkload::new(3);
                b.iter(|| {
                    if name == "gemm" {
                        w.step_gemm()
                    } else {
                        w.step_naive()
                    }
                })
            });
        }
        group.finish();
    }

    // --- GEMM vs naive conv images/s ------------------------------------
    let mut w = ConvWorkload::new(3);
    let batch = w.batch;
    let ips_naive = measure_images_per_s(|| w.step_naive(), batch);
    let ips_gemm = measure_images_per_s(|| w.step_gemm(), batch);
    let conv_speedup = ips_gemm / ips_naive;

    // --- Serial vs parallel fold wall-clock -----------------------------
    let workload = FoldWorkload::new(if smoke { 1 } else { 8 });
    let folds = workload.dataset.leave_one_session_out();
    let folds: Vec<_> = if smoke {
        folds.into_iter().take(2).collect()
    } else {
        folds
    };
    let job = workload.job(&folds);
    let fold_workers = PARALLEL_THREADS.min(folds.len());
    let start = Instant::now();
    black_box(job.run(1));
    let fold_serial_s = start.elapsed().as_secs_f64();
    let start = Instant::now();
    black_box(job.run(PARALLEL_THREADS));
    let fold_parallel_s = start.elapsed().as_secs_f64();
    let fold_scaling = fold_serial_s / fold_parallel_s;
    let fold_efficiency = fold_scaling / fold_workers as f64;
    let host_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    println!("train_throughput summary (training engine):");
    println!("  conv naive:            {ips_naive:>10.2e} images/s (fwd+bwd, batch {batch})");
    println!("  conv GEMM:             {ips_gemm:>10.2e} images/s");
    println!("  conv speedup:          {conv_speedup:.2}x (acceptance target: >= 3x)");
    println!(
        "  fold training:         serial {fold_serial_s:.2}s vs parallel x{fold_workers} {fold_parallel_s:.2}s ({} folds)",
        folds.len()
    );
    println!(
        "  fold scaling:          {fold_scaling:.2}x, efficiency {fold_efficiency:.2} \
         (target >= 0.7 on >= 4-core hosts; {host_threads} host threads)"
    );

    write_bench_json(&[
        ("bench", "\"train_throughput\"".into()),
        (
            "mode",
            format!("\"{}\"", if smoke { "smoke" } else { "full" }),
        ),
        ("host_threads", host_threads.to_string()),
        ("conv_batch", batch.to_string()),
        ("images_per_s_naive", format!("{ips_naive:.3e}")),
        ("images_per_s_gemm", format!("{ips_gemm:.3e}")),
        ("conv_speedup", format!("{conv_speedup:.3}")),
        ("fold_count", folds.len().to_string()),
        ("fold_workers", fold_workers.to_string()),
        ("fold_serial_s", format!("{fold_serial_s:.3}")),
        ("fold_parallel_s", format!("{fold_parallel_s:.3}")),
        ("fold_scaling", format!("{fold_scaling:.3}")),
        ("fold_efficiency", format!("{fold_efficiency:.3}")),
    ]);

    if smoke {
        println!("BENCH_SMOKE=1: wall-clock assertions skipped");
        return;
    }
    // The GEMM path measures well above the 3x acceptance target on an
    // idle host; the hard guard sits lower because both operands are
    // wall-clock measurements on a possibly loaded machine. A reading
    // under 3x on a quiet machine is a real regression.
    assert!(
        conv_speedup >= 2.0,
        "GEMM conv regressed to {conv_speedup:.2}x the naive reference"
    );
    // Fold scaling needs real cores: on a >= 4-core host the parallel fold
    // loop must deliver most of the linear speedup (0.7 efficiency
    // acceptance target, floor below for wall-clock noise).
    if host_threads >= PARALLEL_THREADS {
        assert!(
            fold_efficiency >= 0.5,
            "parallel fold training efficiency dropped to {fold_efficiency:.2} \
             at {fold_workers} workers"
        );
    }
}

criterion_group!(benches, bench_train_throughput);
criterion_main!(benches);
