//! Training-engine throughput: GEMM-backed vs naive nested-loop
//! convolution in images/second (forward + backward, the QAT/NAS hot
//! path), serial vs pool-parallel GEMM wall-clock on the
//! `pcount-runtime` worker pool, and serial vs parallel per-fold NAS
//! training wall-clock through `pcount_core::FoldTrainJob`.
//!
//! Besides the criterion timings, the bench prints an explicit summary
//! (conv speedup vs the 3x acceptance target, GEMM parallel scaling vs
//! the 1.7x 4-thread floor, fold-scaling efficiency vs the 0.7 target
//! on 4-core-or-wider hosts) and writes the numbers to `BENCH_train.json` at the
//! workspace root so the perf trajectory stays machine-readable across
//! PRs.
//!
//! `BENCH_SMOKE=1` (used by CI) skips the wall-clock assertions and
//! shrinks every measurement window — the GEMM-vs-naive equivalence
//! checks, the parallel-GEMM bit-identity tripwire and the thread-count
//! determinism check still run in full, so training engine regressions
//! fail fast without timing noise.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use pcount_core::FoldTrainJob;
use pcount_dataset::{DatasetConfig, IrDataset};
use pcount_nn::{CnnConfig, Conv2d, Layer, TrainConfig};
use pcount_quant::{Precision, PrecisionAssignment, QatConfig};
use pcount_runtime::{install, Pool};
use pcount_tensor::{gemm, gemm_splits_columns, GemmScratch, SplitMix64, Tensor};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

/// Worker threads used for the parallel-fold measurement.
const PARALLEL_THREADS: usize = 4;

/// Pool width used for the parallel-GEMM scaling measurement.
const GEMM_THREADS: usize = 4;

fn smoke_mode() -> bool {
    std::env::var("BENCH_SMOKE")
        .map(|v| v == "1")
        .unwrap_or(false)
}

/// Per-measurement wall-clock budget in seconds.
fn measure_secs() -> f64 {
    if smoke_mode() {
        0.02
    } else {
        1.0
    }
}

/// The convolution workload: conv2 of the paper's scaled-down seed (the
/// widest layer of the deployed CNNs) on a training-sized batch.
struct ConvWorkload {
    conv: Conv2d,
    weight: Tensor,
    x: Tensor,
    batch: usize,
}

impl ConvWorkload {
    fn new(seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let batch = 64;
        let conv = Conv2d::new(16, 24, 3, 1, 1, &mut rng);
        let weight = conv.weight.clone();
        let x = Tensor::randn(&[batch, 16, 8, 8], 1.0, &mut rng);
        Self {
            conv,
            weight,
            x,
            batch,
        }
    }

    /// One GEMM-path training step (forward + backward).
    fn step_gemm(&mut self) {
        self.conv.zero_grad();
        let y = self.conv.forward_with_weight(&self.x, &self.weight);
        black_box(self.conv.backward_with_weight(&y, &self.weight));
    }

    /// One naive-path training step (forward + backward).
    fn step_naive(&mut self) {
        self.conv.zero_grad();
        let y = self.conv.forward_naive_with_weight(&self.x, &self.weight);
        black_box(self.conv.backward_naive_with_weight(&y, &self.weight));
    }
}

/// Sustained images/second of a forward+backward step function.
fn measure_images_per_s(mut step: impl FnMut(), batch: usize) -> f64 {
    step(); // warmup
    let budget = measure_secs();
    let start = Instant::now();
    let mut iters = 0u64;
    loop {
        step();
        iters += 1;
        if start.elapsed().as_secs_f64() >= budget {
            break;
        }
    }
    (iters * batch as u64) as f64 / start.elapsed().as_secs_f64()
}

/// Holds the GEMM conv path to the naive reference on the bench workload;
/// this is the timing-independent engine-regression tripwire that also
/// runs in smoke mode.
fn check_conv_equivalence() {
    let mut w = ConvWorkload::new(11);
    w.conv.zero_grad();
    let y_gemm = w.conv.forward_with_weight(&w.x, &w.weight);
    let gx_gemm = w.conv.backward_with_weight(&y_gemm, &w.weight);
    let wg_gemm = w.conv.weight_grad.clone();
    w.conv.zero_grad();
    let y_naive = w.conv.forward_naive_with_weight(&w.x, &w.weight);
    let gx_naive = w.conv.backward_naive_with_weight(&y_naive, &w.weight);
    for (what, got, want) in [
        ("forward", &y_gemm, &y_naive),
        ("input grad", &gx_gemm, &gx_naive),
        ("weight grad", &wg_gemm, &w.conv.weight_grad),
    ] {
        assert_eq!(got.shape(), want.shape());
        for (i, (&g, &n)) in got.data().iter().zip(want.data().iter()).enumerate() {
            assert!(
                (g - n).abs() <= 1e-4 * 1.0f32.max(n.abs()),
                "conv {what} diverged from naive reference at {i}: {g} vs {n}"
            );
        }
    }
}

/// The GEMM workload for the pool-scaling measurement: a paper-scale-ish
/// product (wider than any single conv in the flow so the column split
/// has room to scale) that comfortably crosses the parallel threshold.
struct GemmWorkload {
    m: usize,
    n: usize,
    k: usize,
    a: Vec<f32>,
    b: Vec<f32>,
}

impl GemmWorkload {
    fn new(seed: u64) -> Self {
        let (m, n, k) = (256, 768, 256);
        assert!(
            gemm_splits_columns(m, n, k),
            "bench workload must take the parallel path on multi-core pools"
        );
        let mut rng = SplitMix64::new(seed);
        let rand = |len: usize, rng: &mut SplitMix64| -> Vec<f32> {
            (0..len).map(|_| rng.next_f32() * 2.0 - 1.0).collect()
        };
        let a = rand(m * k, &mut rng);
        let b = rand(k * n, &mut rng);
        Self { m, n, k, a, b }
    }

    /// One product under the installed pool, into `c`.
    fn run(&self, c: &mut [f32]) {
        gemm(
            &mut GemmScratch::default(),
            false,
            false,
            self.m,
            self.n,
            self.k,
            &self.a,
            &self.b,
            c,
            false,
        );
    }
}

/// Asserts the pool-parallel GEMM is bit-identical to the serial sweep
/// for 1 / 2 / 4 workers on the bench workload. This is the
/// timing-independent engine-regression tripwire; it always runs, smoke
/// mode included.
fn check_gemm_parallel_bit_identity(w: &GemmWorkload) -> bool {
    let run_with = |width: usize| {
        let pool = Pool::new(width);
        let mut c = vec![0.0f32; w.m * w.n];
        install(&pool, || w.run(&mut c));
        c
    };
    let serial = run_with(1);
    for width in [2, 4] {
        let parallel = run_with(width);
        for (i, (&s, &p)) in serial.iter().zip(parallel.iter()).enumerate() {
            assert_eq!(
                s.to_bits(),
                p.to_bits(),
                "parallel GEMM (width {width}) diverged from serial at element {i}: {p} vs {s}"
            );
        }
    }
    true
}

/// Sustained wall-clock of the bench GEMM under a pool of `width`
/// workers, in products/second.
fn measure_gemm_products_per_s(w: &GemmWorkload, width: usize) -> f64 {
    let pool = Pool::new(width);
    let mut c = vec![0.0f32; w.m * w.n];
    install(&pool, || {
        w.run(&mut c); // warmup (spins the workers up)
        let budget = measure_secs();
        let start = Instant::now();
        let mut iters = 0u64;
        loop {
            w.run(black_box(&mut c));
            iters += 1;
            if start.elapsed().as_secs_f64() >= budget {
                break;
            }
        }
        iters as f64 / start.elapsed().as_secs_f64()
    })
}

/// The per-fold training workload measured for scaling: the quick-flow
/// architecture across every leave-one-session-out fold of the tiny
/// dataset.
struct FoldWorkload {
    dataset: IrDataset,
    network: pcount_nn::Sequential,
    arch: CnnConfig,
    train: TrainConfig,
    qat: QatConfig,
    assignments: Vec<PrecisionAssignment>,
}

impl FoldWorkload {
    fn new(epochs: usize) -> Self {
        let mut rng = StdRng::seed_from_u64(5);
        let dataset = IrDataset::generate(&DatasetConfig::tiny(), 5);
        let arch = CnnConfig::seed().with_channels(6, 6, 12);
        let network = arch.build(&mut rng);
        Self {
            dataset,
            network,
            arch,
            train: TrainConfig {
                epochs,
                batch_size: 64,
                learning_rate: 2e-3,
                weight_decay: 0.0,
                verbose: false,
            },
            qat: QatConfig {
                epochs: 1,
                batch_size: 64,
                learning_rate: 5e-4,
                verbose: false,
            },
            assignments: vec![
                PrecisionAssignment::uniform(Precision::Int8),
                PrecisionAssignment::new([
                    Precision::Int8,
                    Precision::Int4,
                    Precision::Int4,
                    Precision::Int8,
                ]),
            ],
        }
    }

    fn job<'a>(&'a self, folds: &'a [pcount_dataset::CvFold]) -> FoldTrainJob<'a> {
        FoldTrainJob {
            arch: self.arch,
            network: &self.network,
            dataset: &self.dataset,
            folds,
            train: &self.train,
            qat: &self.qat,
            assignments: &self.assignments,
            majority_window: 5,
            rng_seed: 7,
            lambda_index: 0,
        }
    }
}

/// Asserts the fold job returns identical results for every thread count
/// (the per-fold derived-seed determinism contract). Runs in smoke mode.
fn check_fold_determinism() {
    let workload = FoldWorkload::new(1);
    let folds: Vec<_> = workload
        .dataset
        .leave_one_session_out()
        .into_iter()
        .take(2)
        .collect();
    let job = workload.job(&folds);
    let serial = job.run(1);
    let parallel = job.run(PARALLEL_THREADS);
    assert_eq!(serial.len(), parallel.len());
    for (a, b) in serial.iter().zip(parallel.iter()) {
        assert_eq!(
            a.fp32_bas, b.fp32_bas,
            "fold training must be deterministic"
        );
        for (ca, cb) in a.candidates.iter().zip(b.candidates.iter()) {
            assert_eq!(ca.bas, cb.bas, "QAT must be deterministic");
            assert_eq!(ca.bas_majority, cb.bas_majority);
        }
    }
}

fn write_bench_json(lines: &[(&str, String)]) {
    let body: Vec<String> = lines
        .iter()
        .map(|(k, v)| format!("  \"{k}\": {v}"))
        .collect();
    let json = format!("{{\n{}\n}}\n", body.join(",\n"));
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_train.json");
    if let Err(e) = std::fs::write(path, &json) {
        eprintln!("warning: could not write {path}: {e}");
    } else {
        println!("wrote {path}");
    }
}

fn bench_train_throughput(c: &mut Criterion) {
    let smoke = smoke_mode();

    check_conv_equivalence();
    check_fold_determinism();
    let gemm_workload = GemmWorkload::new(13);
    let gemm_bit_identical = check_gemm_parallel_bit_identity(&gemm_workload);

    if !smoke {
        let mut group = c.benchmark_group("train_throughput");
        group.sample_size(10);
        for name in ["gemm", "naive"] {
            group.bench_with_input(BenchmarkId::new("conv_fwd_bwd", name), &name, |b, &name| {
                let mut w = ConvWorkload::new(3);
                b.iter(|| {
                    if name == "gemm" {
                        w.step_gemm()
                    } else {
                        w.step_naive()
                    }
                })
            });
        }
        group.finish();
    }

    // --- GEMM vs naive conv images/s ------------------------------------
    let mut w = ConvWorkload::new(3);
    let batch = w.batch;
    let ips_naive = measure_images_per_s(|| w.step_naive(), batch);
    let ips_gemm = measure_images_per_s(|| w.step_gemm(), batch);
    let conv_speedup = ips_gemm / ips_naive;

    // --- Serial vs pool-parallel GEMM -----------------------------------
    let gemm_serial_pps = measure_gemm_products_per_s(&gemm_workload, 1);
    let gemm_parallel_pps = measure_gemm_products_per_s(&gemm_workload, GEMM_THREADS);
    let gemm_parallel_speedup = gemm_parallel_pps / gemm_serial_pps;

    // --- Serial vs parallel fold wall-clock -----------------------------
    let workload = FoldWorkload::new(if smoke { 1 } else { 8 });
    let folds = workload.dataset.leave_one_session_out();
    let folds: Vec<_> = if smoke {
        folds.into_iter().take(2).collect()
    } else {
        folds
    };
    let job = workload.job(&folds);
    let fold_workers = PARALLEL_THREADS.min(folds.len());
    let start = Instant::now();
    black_box(job.run(1));
    let fold_serial_s = start.elapsed().as_secs_f64();
    let start = Instant::now();
    black_box(job.run(PARALLEL_THREADS));
    let fold_parallel_s = start.elapsed().as_secs_f64();
    let fold_scaling = fold_serial_s / fold_parallel_s;
    let fold_efficiency = fold_scaling / fold_workers as f64;
    let host_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    println!("train_throughput summary (training engine):");
    println!("  conv naive:            {ips_naive:>10.2e} images/s (fwd+bwd, batch {batch})");
    println!("  conv GEMM:             {ips_gemm:>10.2e} images/s");
    println!("  conv speedup:          {conv_speedup:.2}x (acceptance target: >= 3x)");
    println!(
        "  GEMM {}x{}x{}:      serial {gemm_serial_pps:.1}/s vs pool x{GEMM_THREADS} \
         {gemm_parallel_pps:.1}/s",
        gemm_workload.m, gemm_workload.k, gemm_workload.n
    );
    println!(
        "  GEMM parallel scaling: {gemm_parallel_speedup:.2}x at {GEMM_THREADS} workers \
         (floor >= 1.7x on >= 4-core hosts; bit-identical: {gemm_bit_identical})"
    );
    println!(
        "  fold training:         serial {fold_serial_s:.2}s vs parallel x{fold_workers} {fold_parallel_s:.2}s ({} folds)",
        folds.len()
    );
    println!(
        "  fold scaling:          {fold_scaling:.2}x, efficiency {fold_efficiency:.2} \
         (target >= 0.7 on >= 4-core hosts; {host_threads} host threads)"
    );

    // --- Instrumented pool-utilization capture --------------------------
    // Runs after every timed window so enabling telemetry cannot perturb
    // the measurements above; one pooled GEMM with recording on yields the
    // per-worker task/busy breakdown for the report.
    let pool_utilization = {
        pcount_telemetry::set_enabled(true);
        let pool = Pool::new(GEMM_THREADS);
        let mut c = vec![0.0f32; gemm_workload.m * gemm_workload.n];
        install(&pool, || gemm_workload.run(&mut c));
        let util = pool.handle().utilization();
        pcount_telemetry::set_enabled(false);
        util
    };

    write_bench_json(&[
        ("bench", "\"train_throughput\"".into()),
        (
            "mode",
            format!("\"{}\"", if smoke { "smoke" } else { "full" }),
        ),
        ("host", pcount_bench::host_metadata_json(smoke)),
        ("host_threads", host_threads.to_string()),
        ("conv_batch", batch.to_string()),
        ("images_per_s_naive", format!("{ips_naive:.3e}")),
        ("images_per_s_gemm", format!("{ips_gemm:.3e}")),
        ("conv_speedup", format!("{conv_speedup:.3}")),
        ("gemm_threads", GEMM_THREADS.to_string()),
        (
            "gemm_parallel_speedup",
            format!("{gemm_parallel_speedup:.3}"),
        ),
        (
            "gemm_parallel_bit_identical",
            gemm_bit_identical.to_string(),
        ),
        ("fold_count", folds.len().to_string()),
        ("fold_workers", fold_workers.to_string()),
        ("fold_serial_s", format!("{fold_serial_s:.3}")),
        ("fold_parallel_s", format!("{fold_parallel_s:.3}")),
        ("fold_scaling", format!("{fold_scaling:.3}")),
        ("fold_efficiency", format!("{fold_efficiency:.3}")),
        ("pool_utilization", pool_utilization.to_json()),
    ]);

    if smoke {
        println!("BENCH_SMOKE=1: wall-clock assertions skipped");
        return;
    }
    // The GEMM path measures well above the 3x acceptance target on an
    // idle host; the hard guard sits lower because both operands are
    // wall-clock measurements on a possibly loaded machine. A reading
    // under 3x on a quiet machine is a real regression.
    assert!(
        conv_speedup >= 2.0,
        "GEMM conv regressed to {conv_speedup:.2}x the naive reference"
    );
    // Parallel GEMM needs real cores: on a >= 4-core host the NR-aligned
    // column split across 4 pool workers must deliver at least 1.7x over
    // the serial sweep (acceptance target; measured well above on idle
    // multi-core hosts, floor leaves room for wall-clock noise).
    if host_threads >= GEMM_THREADS {
        assert!(
            gemm_parallel_speedup >= 1.7,
            "pool-parallel GEMM scaled only {gemm_parallel_speedup:.2}x \
             at {GEMM_THREADS} workers"
        );
    }
    // Fold scaling needs real cores: on a >= 4-core host the parallel fold
    // loop must deliver most of the linear speedup (0.7 efficiency
    // acceptance target, floor below for wall-clock noise).
    if host_threads >= PARALLEL_THREADS {
        assert!(
            fold_efficiency >= 0.5,
            "parallel fold training efficiency dropped to {fold_efficiency:.2} \
             at {fold_workers} workers"
        );
    }
}

criterion_group!(benches, bench_train_throughput);
criterion_main!(benches);
