//! Criterion benches of the quantisation pipeline (backing Fig. 5's
//! precision exploration): fake-quant QAT forward passes vs pure-integer
//! inference, per-tensor weight quantisation, and BN folding.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pcount_bench::demo_quantized_model;
use pcount_nn::Mode;
use pcount_quant::{fake_quant_tensor, weight_scale, Precision, PrecisionAssignment};
use pcount_tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_integer_vs_batch(c: &mut Criterion) {
    let mut group = c.benchmark_group("inference_paths");
    group.sample_size(20);
    for (name, assignment) in [
        ("int8", PrecisionAssignment::uniform(Precision::Int8)),
        ("int4", {
            PrecisionAssignment::new([
                Precision::Int8,
                Precision::Int4,
                Precision::Int4,
                Precision::Int4,
            ])
        }),
    ] {
        let (model, x) = demo_quantized_model((8, 8, 16), assignment, 11);
        let frame = x.data()[0..64].to_vec();
        let q = model.quantize_input(&frame);
        group.bench_with_input(BenchmarkId::new("integer_forward", name), &model, |b, m| {
            b.iter(|| m.forward_int(&q))
        });
    }
    group.finish();
}

fn bench_fake_quant_forward(c: &mut Criterion) {
    use pcount_dataset::{DatasetConfig, IrDataset};
    use pcount_nn::{CnnConfig, TrainConfig};
    use pcount_quant::{fold_sequential, QatCnn};

    let mut rng = StdRng::seed_from_u64(0);
    let data = IrDataset::generate(&DatasetConfig::tiny(), 0);
    let fold = &data.leave_one_session_out()[0];
    let (x_train, y_train) = data.gather_normalized(fold.train.as_slice());
    let arch = CnnConfig::seed().with_channels(8, 8, 16);
    let mut net = arch.build(&mut rng);
    let _ = pcount_nn::train_classifier(
        &mut net,
        &x_train,
        &y_train,
        &TrainConfig {
            epochs: 1,
            ..TrainConfig::default()
        },
        &mut rng,
    );
    let folded = fold_sequential(arch, &net).expect("fold");
    let mut qat = QatCnn::from_folded(&folded, PrecisionAssignment::uniform(Precision::Int8));
    qat.calibrate(&x_train);
    let batch = pcount_nn::batch_select(&x_train, &(0..32).collect::<Vec<_>>());
    c.bench_function("fake_quant_forward_batch32", |b| {
        b.iter(|| qat.forward(&batch, Mode::Eval))
    });
}

fn bench_weight_quantization(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let weights = Tensor::randn(&[64, 64, 3, 3], 0.1, &mut rng);
    let mut group = c.benchmark_group("weight_quantization");
    for p in [Precision::Int8, Precision::Int4] {
        group.bench_with_input(
            BenchmarkId::new("fake_quant", format!("{p}")),
            &p,
            |b, &p| {
                b.iter(|| {
                    let scale = weight_scale(&weights, p);
                    fake_quant_tensor(&weights, scale, p.qmax())
                })
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_integer_vs_batch,
    bench_fake_quant_forward,
    bench_weight_quantization
);
criterion_main!(benches);
