//! Criterion benches of the PIT DNAS (backing Fig. 5): cost of one search
//! epoch and of the sub-network extraction, for both cost targets
//! (parameters vs MACs ablation).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pcount_dataset::{DatasetConfig, IrDataset};
use pcount_nas::{search, CostTarget, NasConfig};
use pcount_nn::CnnConfig;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_search(c: &mut Criterion) {
    let data = IrDataset::generate(&DatasetConfig::tiny(), 5);
    let s1 = data.session_indices(0);
    let (x, y) = data.gather_normalized(&s1);
    let seed = CnnConfig::seed().with_channels(8, 8, 16);
    let mut group = c.benchmark_group("pit_search");
    group.sample_size(10);
    for target in [CostTarget::Params, CostTarget::Macs] {
        let cfg = NasConfig {
            lambda: 0.5,
            cost_target: target,
            epochs: 1,
            warmup_epochs: 0,
            batch_size: 64,
            learning_rate: 2e-3,
            verbose: false,
        };
        group.bench_with_input(
            BenchmarkId::new("one_epoch", format!("{target:?}")),
            &cfg,
            |b, cfg| {
                b.iter(|| {
                    let mut rng = StdRng::seed_from_u64(0);
                    search(seed, &x, &y, cfg, &mut rng).config
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_search);
criterion_main!(benches);
