//! Simulator throughput: `ExecMode::Simple` vs `ExecMode::BlockCached`
//! (with and without superblock chaining) and serial vs pooled-parallel
//! batch evaluation, in instructions/second on the deployed CNN workload
//! (the program every Table-I / Fig. 5–7 measurement funnels through).
//!
//! Besides the criterion timings, the bench prints an explicit
//! instructions-per-second summary (engine speedup under both memory
//! models, chaining delta, parallel scaling), the Flat-vs-Maupiti
//! memory-hierarchy cycle delta with its stall breakdown, a trace-cache
//! profile of the hottest superblocks (with the per-trace memory-stall
//! column), and writes the numbers to `BENCH_isa.json` at the workspace
//! root so the perf trajectory stays machine-readable across PRs.
//!
//! `BENCH_SMOKE=1` (used by CI) shrinks every measurement window to a
//! handful of iterations and skips the wall-clock assertions — the
//! bit-identity checks across engines, memory models, chaining modes and
//! thread counts still run, so engine regressions fail fast without
//! timing noise.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use pcount_bench::demo_int8_model;
use pcount_kernels::{hot_blocks_json, Deployment, ExecMode, MemoryModel, Target};
use pcount_quant::QuantizedCnn;
use pcount_tensor::Tensor;
use std::time::Instant;

/// Worker threads used for the parallel-batch measurement.
const PARALLEL_THREADS: usize = 4;

fn smoke_mode() -> bool {
    std::env::var("BENCH_SMOKE")
        .map(|v| v == "1")
        .unwrap_or(false)
}

/// Per-measurement wall-clock budget in seconds.
fn measure_secs() -> f64 {
    if smoke_mode() {
        0.02
    } else {
        1.0
    }
}

fn deployment_with_mode(model: &QuantizedCnn, mode: ExecMode, chaining: bool) -> Deployment {
    deployment_with(model, mode, chaining, MemoryModel::Flat)
}

fn deployment_with(
    model: &QuantizedCnn,
    mode: ExecMode,
    chaining: bool,
    mem: MemoryModel,
) -> Deployment {
    let mut deployment = Deployment::new(model, Target::Maupiti).expect("deploy");
    deployment.set_exec_mode(mode);
    deployment.set_superblock_chaining(chaining);
    deployment.set_memory_model(mem);
    deployment
}

/// Measures sustained simulated instructions/second of the serial
/// per-frame path.
fn measure_ips(deployment: &Deployment, frame: &[f32]) -> f64 {
    let per_frame = deployment.run_frame(frame).expect("warmup").instructions;
    let budget = measure_secs();
    let start = Instant::now();
    let mut frames = 0u64;
    loop {
        black_box(deployment.run_frame(black_box(frame)).expect("run"));
        frames += 1;
        if start.elapsed().as_secs_f64() >= budget {
            break;
        }
    }
    (frames * per_frame) as f64 / start.elapsed().as_secs_f64()
}

/// Measures sustained simulated instructions/second of the pooled batch
/// path at the given thread count.
fn measure_batch_ips(deployment: &Deployment, batch: &Tensor, threads: usize) -> f64 {
    let pool = deployment.make_pool(threads).expect("pool");
    // Retired instruction counts are data-dependent (requant clamps,
    // pooling comparisons), so sum the real per-frame counts of the
    // warmup batch instead of extrapolating from one frame.
    let per_batch: u64 = deployment
        .run_batch(batch, &pool)
        .expect("warmup")
        .iter()
        .map(|r| r.instructions)
        .sum();
    let budget = measure_secs();
    let start = Instant::now();
    let mut batches = 0u64;
    loop {
        black_box(
            deployment
                .run_batch(black_box(batch), &pool)
                .expect("batch"),
        );
        batches += 1;
        if start.elapsed().as_secs_f64() >= budget {
            break;
        }
    }
    (batches * per_batch) as f64 / start.elapsed().as_secs_f64()
}

/// Asserts bit-identical logits/instret across every execution strategy;
/// this is the timing-independent engine-regression tripwire that also
/// runs in smoke mode.
fn check_bit_identity(model: &QuantizedCnn, batch: &Tensor) {
    let n = batch.shape()[0];
    let simple = deployment_with_mode(model, ExecMode::Simple, true);
    let chained = deployment_with_mode(model, ExecMode::BlockCached, true);
    let unchained = deployment_with_mode(model, ExecMode::BlockCached, false);
    let mut nofusion = deployment_with_mode(model, ExecMode::BlockCached, true);
    nofusion.set_macro_fusion(false);
    let mut maupiti_nofusion =
        deployment_with(model, ExecMode::BlockCached, true, MemoryModel::maupiti());
    maupiti_nofusion.set_macro_fusion(false);
    let serial: Vec<_> = (0..n)
        .map(|i| {
            chained
                .run_frame(&batch.data()[i * 64..(i + 1) * 64])
                .expect("serial frame")
        })
        .collect();
    let pool = chained.make_pool(PARALLEL_THREADS).expect("pool");
    let parallel = chained.run_batch(batch, &pool).expect("parallel batch");
    assert_eq!(parallel, serial, "parallel batch must be bit-identical");
    let maupiti_simple = deployment_with(model, ExecMode::Simple, true, MemoryModel::maupiti());
    let maupiti_chained =
        deployment_with(model, ExecMode::BlockCached, true, MemoryModel::maupiti());
    for (i, run) in serial.iter().enumerate() {
        let frame = &batch.data()[i * 64..(i + 1) * 64];
        let rs = simple.run_frame(frame).expect("simple frame");
        let ru = unchained.run_frame(frame).expect("unchained frame");
        assert_eq!(run.logits, rs.logits, "engine logits diverged (frame {i})");
        assert_eq!(run.instructions, rs.instructions, "instret diverged");
        assert_eq!(run.logits, ru.logits, "chaining changed logits (frame {i})");
        assert_eq!(run.cycles, ru.cycles, "chaining changed cycle counts");
        // Flat is the default model and must stay free of memory stalls.
        assert_eq!(run.mem, Default::default(), "Flat charged stalls");
        // The Maupiti hierarchy keeps architectural results bit-identical,
        // charges strictly more cycles (exactly its stall breakdown), and
        // both engines agree on that breakdown.
        let rm = maupiti_chained.run_frame(frame).expect("maupiti frame");
        let rms = maupiti_simple.run_frame(frame).expect("maupiti simple");
        assert_eq!(rm.logits, run.logits, "memory model changed logits");
        assert_eq!(rm.instructions, run.instructions);
        assert_eq!(rm.cycles, run.cycles + rm.mem.stall_cycles());
        assert!(rm.mem.fetch_misses > 0, "CNN branches must miss");
        assert_eq!(rm.mem, rms.mem, "engines disagree on the stall model");
        // Macro-op fusion must be invisible down to the stall breakdowns
        // under both memory models (the chained/serial runs above all had
        // fusion enabled — its default).
        let rnf = nofusion.run_frame(frame).expect("no-fusion frame");
        assert_eq!(*run, rnf, "macro-op fusion perturbed the run (frame {i})");
        let rmnf = maupiti_nofusion
            .run_frame(frame)
            .expect("maupiti no-fusion frame");
        assert_eq!(
            rm, rmnf,
            "macro-op fusion perturbed the maupiti run (frame {i})"
        );
    }
}

fn write_bench_json(lines: &[(&str, String)]) {
    let body: Vec<String> = lines
        .iter()
        .map(|(k, v)| format!("  \"{k}\": {v}"))
        .collect();
    let json = format!("{{\n{}\n}}\n", body.join(",\n"));
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_isa.json");
    if let Err(e) = std::fs::write(path, &json) {
        eprintln!("warning: could not write {path}: {e}");
    } else {
        println!("wrote {path}");
    }
}

fn bench_engine_throughput(c: &mut Criterion) {
    let smoke = smoke_mode();
    let (model, x) = demo_int8_model(7);
    let frame: Vec<f32> = x.data()[0..64].to_vec();
    let batch_n = if smoke { 8 } else { 32 };
    let batch = Tensor::from_vec(x.data()[..batch_n * 64].to_vec(), &[batch_n, 1, 8, 8]);

    check_bit_identity(&model, &batch);

    if !smoke {
        let mut group = c.benchmark_group("isa_throughput");
        group.sample_size(10);
        for (name, mode) in [
            ("simple", ExecMode::Simple),
            ("block_cached", ExecMode::BlockCached),
        ] {
            let deployment = deployment_with_mode(&model, mode, true);
            group.bench_with_input(
                BenchmarkId::new("cnn_inference", name),
                &deployment,
                |b, d| b.iter(|| d.run_frame(black_box(&frame)).expect("run")),
            );
        }
        group.finish();
    }

    let simple = deployment_with_mode(&model, ExecMode::Simple, true);
    let chained = deployment_with_mode(&model, ExecMode::BlockCached, true);
    let unchained = deployment_with_mode(&model, ExecMode::BlockCached, false);
    let mut nofusion = deployment_with_mode(&model, ExecMode::BlockCached, true);
    nofusion.set_macro_fusion(false);
    let maupiti_simple = deployment_with(&model, ExecMode::Simple, true, MemoryModel::maupiti());
    let maupiti_chained =
        deployment_with(&model, ExecMode::BlockCached, true, MemoryModel::maupiti());
    let ips_simple = measure_ips(&simple, &frame);
    let ips_unchained = measure_ips(&unchained, &frame);
    let ips_chained = measure_ips(&chained, &frame);
    let ips_nofusion = measure_ips(&nofusion, &frame);
    let ips_maupiti_simple = measure_ips(&maupiti_simple, &frame);
    let ips_maupiti_chained = measure_ips(&maupiti_chained, &frame);
    let ips_parallel = measure_batch_ips(&chained, &batch, PARALLEL_THREADS);
    let speedup = ips_chained / ips_simple;
    let speedup_maupiti = ips_maupiti_chained / ips_maupiti_simple;
    let chaining_delta = ips_chained / ips_unchained;
    let fusion_speedup = ips_chained / ips_nofusion;
    let scaling = ips_parallel / ips_chained;
    let host_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    // Flat-vs-Maupiti cycle delta of one inference: how much the modelled
    // memory hierarchy costs over the ideal memories of the flat model.
    let run_flat = chained.run_frame(&frame).expect("flat run");
    let run_maupiti = maupiti_chained.run_frame(&frame).expect("maupiti run");
    let cycle_delta = run_maupiti.cycles as f64 / run_flat.cycles as f64;

    println!("isa_throughput summary (deployed CNN, MAUPITI target):");
    println!("  simple:                  {ips_simple:>10.2e} instructions/s");
    println!("  block_cached (no chain): {ips_unchained:>10.2e} instructions/s");
    println!("  block_cached (chained):  {ips_chained:>10.2e} instructions/s");
    println!("  parallel x{PARALLEL_THREADS} (chained):   {ips_parallel:>10.2e} instructions/s");
    println!("  engine speedup:          {speedup:.2}x (acceptance target: >= 5x)");
    println!("  engine speedup (maupiti mem model): {speedup_maupiti:.2}x");
    println!("  chaining delta:          {chaining_delta:.3}x single-thread");
    println!(
        "  fusion speedup:          {fusion_speedup:.3}x (macro-op fused loops vs per-instruction)"
    );
    println!("  parallel scaling:        {scaling:.2}x at {PARALLEL_THREADS} threads ({host_threads} host threads)");
    println!(
        "  memory hierarchy:        flat {} cycles -> maupiti {} cycles/inference ({:.3}x, \
         {} imem stall + {} dmem stall)",
        run_flat.cycles,
        run_maupiti.cycles,
        cycle_delta,
        run_maupiti.mem.imem_stall_cycles,
        run_maupiti.mem.dmem_stall_cycles,
    );

    println!("hottest superblock traces (one inference, maupiti mem model):");
    let hot_blocks = maupiti_chained.hottest_blocks(&frame, 8).expect("profile");
    for h in &hot_blocks {
        println!(
            "  pc {:#07x}: {:>9} executions, {:>10} instructions, {:>8} mem-stall cycles, fused {} ({} entries, {} iterations)",
            h.entry_pc,
            h.executions,
            h.instructions,
            h.mem_stall_cycles,
            h.fused_kind.unwrap_or("-"),
            h.fused_entries,
            h.fused_iterations,
        );
    }

    // Per-pattern fusion hit counts over one inference.
    let fusion_profile = chained.fusion_profile(&frame).expect("fusion profile");
    println!("macro-op fusion hits (one inference):");
    for (kind, entries, iterations) in &fusion_profile {
        println!("  {kind:>13}: {entries:>6} fused entries, {iterations:>8} loop iterations");
    }
    assert!(
        fusion_profile
            .iter()
            .any(|&(kind, _, iters)| kind == "mac_sdotp8" && iters > 0),
        "the SDOTP channel loops must run through the fused path"
    );
    let fusion_hits_json = format!(
        "{{{}}}",
        fusion_profile
            .iter()
            .map(|(kind, entries, iterations)| format!(
                "\"{kind}\": {{\"entries\": {entries}, \"iterations\": {iterations}}}"
            ))
            .collect::<Vec<_>>()
            .join(", ")
    );

    write_bench_json(&[
        ("bench", "\"isa_throughput\"".into()),
        (
            "mode",
            format!("\"{}\"", if smoke { "smoke" } else { "full" }),
        ),
        ("host", pcount_bench::host_metadata_json(smoke)),
        ("host_threads", host_threads.to_string()),
        ("parallel_threads", PARALLEL_THREADS.to_string()),
        ("ips_simple", format!("{ips_simple:.3e}")),
        ("ips_block_cached_unchained", format!("{ips_unchained:.3e}")),
        ("ips_block_cached", format!("{ips_chained:.3e}")),
        (
            "ips_simple_maupiti_mem",
            format!("{ips_maupiti_simple:.3e}"),
        ),
        (
            "ips_block_cached_maupiti_mem",
            format!("{ips_maupiti_chained:.3e}"),
        ),
        ("ips_parallel", format!("{ips_parallel:.3e}")),
        ("engine_speedup", format!("{speedup:.3}")),
        (
            "engine_speedup_maupiti_mem",
            format!("{speedup_maupiti:.3}"),
        ),
        ("chaining_delta", format!("{chaining_delta:.3}")),
        ("ips_block_cached_nofusion", format!("{ips_nofusion:.3e}")),
        ("fusion_speedup", format!("{fusion_speedup:.3}")),
        ("fusion_hits", fusion_hits_json),
        ("parallel_scaling", format!("{scaling:.3}")),
        ("cycles_per_inference_flat", run_flat.cycles.to_string()),
        (
            "cycles_per_inference_maupiti",
            run_maupiti.cycles.to_string(),
        ),
        ("maupiti_cycle_delta", format!("{cycle_delta:.4}")),
        (
            "maupiti_imem_stall_cycles",
            run_maupiti.mem.imem_stall_cycles.to_string(),
        ),
        (
            "maupiti_dmem_stall_cycles",
            run_maupiti.mem.dmem_stall_cycles.to_string(),
        ),
        ("hot_blocks", hot_blocks_json(&hot_blocks)),
    ]);

    if smoke {
        println!("BENCH_SMOKE=1: wall-clock assertions skipped");
        return;
    }
    // The engine measures ~7x on an idle host; the hard guard sits lower
    // because both operands are independent wall-clock measurements and a
    // loaded machine can perturb them by tens of percent. A reading under
    // the 5x target on a quiet machine is a real regression.
    assert!(
        speedup >= 3.0,
        "block-cached engine regressed to {speedup:.2}x the reference interpreter"
    );
    // The per-trace memory-model charging must keep the engine fast under
    // the Maupiti hierarchy too — the summaries exist precisely so the
    // model is paid once per trace, not once per instruction.
    assert!(
        speedup_maupiti >= 3.0,
        "block-cached engine under the maupiti memory model regressed to \
         {speedup_maupiti:.2}x the reference interpreter"
    );
    // On the deployed CNN the dispatch memo and self-loop fast path
    // already cover most dispatches, so the chaining delta hovers around
    // 1.0x (it pays off on workloads that ping-pong between traces); the
    // floor guards against chaining ever *costing* throughput, with
    // headroom for wall-clock noise. Measured history: the delta once
    // read 0.970 because every chained transition paid a
    // `Weak::upgrade` (a CAS loop) where the unchained path paid only a
    // direct-indexed snapshot probe; `chain_to!` now probes the local
    // snapshot first and upgrades the cached link only when the snapshot
    // is stale (the cross-thread case chaining exists for), which put
    // the single-thread delta back at ~1.0.
    assert!(
        chaining_delta >= 0.9,
        "superblock chaining regressed single-thread throughput to {chaining_delta:.3}x"
    );
    // Macro-op fusion exists to be a perf win: the fused MAC/memset/copy
    // loops must beat per-instruction dispatch by a clear margin on the
    // deployed CNN. Measured well above 1.5x on an idle host; the floor
    // sits at 1.2x to absorb wall-clock noise on loaded machines.
    assert!(
        fusion_speedup >= 1.2,
        "macro-op fusion regressed to {fusion_speedup:.3}x over per-instruction dispatch"
    );
    // Batch scaling needs real cores; on a >= 4-thread host the pooled
    // path must deliver the acceptance target.
    if host_threads >= PARALLEL_THREADS {
        assert!(
            scaling >= 2.5,
            "parallel batch scaled only {scaling:.2}x at {PARALLEL_THREADS} threads"
        );
    }
}

criterion_group!(benches, bench_engine_throughput);
criterion_main!(benches);
