//! Simulator throughput: `ExecMode::Simple` vs `ExecMode::BlockCached`
//! instructions/second on the deployed CNN workload (the program every
//! Table-I / Fig. 5–7 measurement funnels through).
//!
//! Besides the criterion timings, the bench prints an explicit
//! instructions-per-second summary and the speedup factor, since the
//! block-cache engine's acceptance bar is a >= 5x throughput gain over the
//! reference interpreter on this workload.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use pcount_bench::demo_int8_model;
use pcount_kernels::{Deployment, ExecMode, Target};
use pcount_quant::QuantizedCnn;
use std::time::Instant;

fn deployment_with_mode(model: &QuantizedCnn, mode: ExecMode) -> Deployment {
    let mut deployment = Deployment::new(model, Target::Maupiti).expect("deploy");
    deployment.set_exec_mode(mode);
    deployment
}

/// Measures sustained simulated instructions/second over ~1 s of wall time.
fn measure_ips(deployment: &Deployment, frame: &[f32]) -> f64 {
    let per_frame = deployment.run_frame(frame).expect("warmup").instructions;
    let start = Instant::now();
    let mut frames = 0u64;
    while start.elapsed().as_secs_f64() < 1.0 {
        black_box(deployment.run_frame(black_box(frame)).expect("run"));
        frames += 1;
    }
    (frames * per_frame) as f64 / start.elapsed().as_secs_f64()
}

fn bench_engine_throughput(c: &mut Criterion) {
    let (model, x) = demo_int8_model(7);
    let frame: Vec<f32> = x.data()[0..64].to_vec();

    let mut group = c.benchmark_group("isa_throughput");
    group.sample_size(10);
    for (name, mode) in [
        ("simple", ExecMode::Simple),
        ("block_cached", ExecMode::BlockCached),
    ] {
        let deployment = deployment_with_mode(&model, mode);
        group.bench_with_input(
            BenchmarkId::new("cnn_inference", name),
            &deployment,
            |b, d| b.iter(|| d.run_frame(black_box(&frame)).expect("run")),
        );
    }
    group.finish();

    let simple = deployment_with_mode(&model, ExecMode::Simple);
    let cached = deployment_with_mode(&model, ExecMode::BlockCached);
    let ips_simple = measure_ips(&simple, &frame);
    let ips_cached = measure_ips(&cached, &frame);
    let speedup = ips_cached / ips_simple;
    println!("isa_throughput summary (deployed CNN, MAUPITI target):");
    println!("  simple:       {:>10.2e} instructions/s", ips_simple);
    println!("  block_cached: {:>10.2e} instructions/s", ips_cached);
    println!("  speedup:      {speedup:.2}x (acceptance target: >= 5x)");
    // The engine measures ~6.9x on an idle host; the hard guard sits lower
    // because both operands are independent wall-clock measurements and a
    // loaded machine can perturb them by tens of percent. A reading under
    // the 5x target on a quiet machine is a real regression.
    assert!(
        speedup >= 3.0,
        "block-cached engine regressed to {speedup:.2}x the reference interpreter"
    );
}

criterion_group!(benches, bench_engine_throughput);
criterion_main!(benches);
