//! Fleet serving bench: load ramps and fault storms over the
//! `pcount-fleet` co-simulation, written to `BENCH_serve.json` at the
//! workspace root so the serving-layer trajectory (p50/p99 latency,
//! queue depths, shed/quarantine counts, per-shard error-budget burn)
//! stays machine-readable across PRs.
//!
//! Besides the criterion timing of one full fleet run, the bench runs
//! the timing-independent serve tripwires in every mode (including
//! `BENCH_SMOKE=1`):
//!
//! * a ≥200-node fleet run completes with every delivery slot disposed
//!   of exactly once — no node fault ever aborts the service;
//! * the same fleet seed is bit-reproducible across pool widths 1 and 4
//!   (identical occupancy trajectory digest and report JSON), with and
//!   without shard crashes in the schedule;
//! * the load ramp actually bites: the hardest level sheds or
//!   downsamples, and the bounded queue never exceeds its cap;
//! * a crash storm (half the shards die mid-run and restart from their
//!   checkpoints) conserves every queued frame and reports recovery-time
//!   percentiles, one sample per outage;
//! * burn-driven adaptive admission beats the static watermarks on the
//!   hardest ramp level: fewer frames shed at the queue with p99 latency
//!   inside the static envelope.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use pcount_dataset::{DatasetConfig, IrDataset};
use pcount_fleet::{
    AdaptiveConfig, CrashConfig, FleetConfig, FleetReport, FleetService, StormConfig,
};
use pcount_kernels::{Deployment, Target};

/// Seed of the demo model and the dataset nodes replay.
const SEED: u64 = 7;
/// Fleet seed of every reported run (chaos, phases, skews).
const FLEET_SEED: u64 = 4242;
/// Worker threads of the reported runs.
const POOL_THREADS: usize = 4;

fn smoke_mode() -> bool {
    std::env::var("BENCH_SMOKE")
        .map(|v| v == "1")
        .unwrap_or(false)
}

/// Base fleet configuration of the bench: the smoke fleet keeps the
/// ≥200-node floor but shortens each node's window.
fn base_cfg(smoke: bool) -> FleetConfig {
    let mut cfg = if smoke {
        FleetConfig::smoke()
    } else {
        FleetConfig::default()
    };
    cfg.seed = FLEET_SEED;
    cfg
}

/// The deployed demo model and the dataset.
fn deployed() -> (Deployment, IrDataset) {
    let (model, _) = pcount_bench::demo_int8_model(SEED);
    let deployment = Deployment::new(&model, Target::Maupiti).expect("deploy");
    let data = IrDataset::generate(&DatasetConfig::tiny(), SEED);
    (deployment, data)
}

fn run_fleet(deployment: &Deployment, data: &IrDataset, cfg: FleetConfig) -> FleetReport {
    let svc = FleetService::new(deployment.clone(), cfg, data).expect("fleet");
    let mut pool = svc.make_pool(POOL_THREADS).expect("pool");
    svc.run(&mut pool)
}

/// Serve-smoke gate: the run completed, conserved every frame, and its
/// latency block is populated.
fn check_complete(report: &FleetReport, what: &str) {
    assert!(
        report.conservation_holds(),
        "{what}: front-end algebra violated"
    );
    assert!(
        report.nodes >= 200,
        "{what}: fleet below the 200-node floor"
    );
    assert!(
        report.totals.admitted > 0 && report.latency.count > 0,
        "{what}: no admitted frames / empty latency block"
    );
    assert!(
        report.latency.p50 > 0 && report.latency.p99 >= report.latency.p50,
        "{what}: degenerate latency percentiles"
    );
}

/// Always-on bit-reproducibility tripwire: same fleet seed, pool width
/// 1 vs 4 ⇒ identical occupancy trajectory and report.
fn check_reproducible(deployment: &Deployment, data: &IrDataset, cfg: &FleetConfig) -> String {
    let svc = FleetService::new(deployment.clone(), cfg.clone(), data).expect("fleet");
    let mut narrow = svc.make_pool(1).expect("pool");
    let mut wide = svc.make_pool(4).expect("pool");
    let a = svc.run(&mut narrow);
    let b = svc.run(&mut wide);
    assert_eq!(
        a.occupancy.hash, b.occupancy.hash,
        "occupancy trajectory diverged across pool widths"
    );
    assert_eq!(
        a.to_json(),
        b.to_json(),
        "fleet report diverged across pool widths"
    );
    a.occupancy.hash_hex()
}

fn write_bench_json(lines: &[(&str, String)]) {
    let body: Vec<String> = lines
        .iter()
        .map(|(k, v)| format!("  \"{k}\": {v}"))
        .collect();
    let json = format!("{{\n{}\n}}\n", body.join(",\n"));
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serve.json");
    if let Err(e) = std::fs::write(path, &json) {
        eprintln!("warning: could not write {path}: {e}");
    } else {
        println!("wrote {path}");
    }
}

fn bench_serve(c: &mut Criterion) {
    let smoke = smoke_mode();
    let (deployment, data) = deployed();

    // The reported runs record telemetry so the global fleet/* surface
    // is exercised too; recording never changes any computed result.
    pcount_telemetry::set_enabled(true);

    // Load ramp: sweep the sensor frame period down (offered load up)
    // at a fixed fleet. The hardest level oversubscribes the shards.
    let periods_ms: &[u32] = if smoke {
        &[100, 25]
    } else {
        &[150, 100, 50, 25]
    };
    let mut ramp_entries = Vec::new();
    for (i, &period) in periods_ms.iter().enumerate() {
        let cfg = FleetConfig {
            frame_period_ms: period,
            ..base_cfg(smoke)
        };
        let queue_cap = cfg.queue_cap as u64;
        let report = run_fleet(&deployment, &data, cfg);
        check_complete(&report, &format!("ramp period {period} ms"));
        assert!(
            report.queue_depth_peak <= queue_cap,
            "ramp period {period} ms: queue overran its cap"
        );
        if i == periods_ms.len() - 1 {
            assert!(
                report.totals.shed + report.totals.downsampled > 0,
                "hardest ramp level triggered no load shedding at all"
            );
        }
        println!(
            "serve ramp {period:>3} ms: admitted {} shed {} downsampled {} \
             p50 {} us p99 {} us peak-depth {} worst-burn {} milli",
            report.totals.admitted,
            report.totals.shed,
            report.totals.downsampled,
            report.latency.p50 / 1_000,
            report.latency.p99 / 1_000,
            report.queue_depth_peak,
            report.worst_shard_burn_milli,
        );
        ramp_entries.push(format!(
            "{{\"frame_period_ms\":{period},\"report\":{}}}",
            report.to_json()
        ));
    }

    // Fault storm: a third of the fleet at intensity 0.6 for the middle
    // half of the run, on top of the baseline chaos.
    let storm_cfg = FleetConfig {
        storm: Some(StormConfig::default()),
        ..base_cfg(smoke)
    };
    let storm_report = run_fleet(&deployment, &data, storm_cfg.clone());
    check_complete(&storm_report, "fault storm");
    let storm_faults: u64 = storm_report
        .node_reports
        .iter()
        .map(|n| n.gaps + n.fallback + n.retries)
        .sum();
    assert!(storm_faults > 0, "storm injected no faults");
    println!(
        "serve storm: {} faults, {} quarantine trips, {} readmissions, worst burn {} milli",
        storm_faults,
        storm_report.totals.quarantine_trips,
        storm_report.totals.readmissions,
        storm_report.worst_shard_burn_milli,
    );

    // Crash storm: every other shard dies mid-run and restarts from its
    // checkpoint. The hardest ramp period keeps the queues backed up, so
    // each outage strands a real backlog for the disposal policy.
    let crash_cfg = FleetConfig {
        frame_period_ms: 25,
        // A slowed service clock against a small queue keeps a real
        // backlog queued at the crash instant for the disposal policy.
        service_clock_hz: 50_000_000,
        queue_cap: 32,
        high_watermark: 24,
        low_watermark: 8,
        crash: Some(CrashConfig::default()),
        // Several checkpoint boundaries fit even the short smoke run, so
        // the restarts genuinely recover from checkpointed state.
        checkpoint_period_ms: 25,
        ..base_cfg(smoke)
    };
    let crash_report = run_fleet(&deployment, &data, crash_cfg.clone());
    check_complete(&crash_report, "crash storm");
    assert!(crash_report.totals.crashes > 0, "crash storm never fired");
    assert_eq!(
        crash_report.crash_reports.len() as u64,
        crash_report.totals.crashes,
        "one outage report per crash"
    );
    assert_eq!(
        crash_report.recovery.count, crash_report.totals.crashes,
        "one recovery sample per crash"
    );
    assert!(
        crash_report.recovery.p50 > 0,
        "recovery percentiles must be populated"
    );
    let mut stranded = 0;
    for c in &crash_report.crash_reports {
        assert_eq!(
            c.queued_at_crash,
            c.crash_lost + c.rerouted + c.held,
            "shard {} outage leaked part of its queue",
            c.shard
        );
        stranded += c.queued_at_crash;
    }
    assert!(stranded > 0, "no crash found a backlog to dispose of");
    assert!(
        crash_report.totals.rerouted > 0,
        "reroute policy moved no traffic to the survivors"
    );
    println!(
        "serve crash storm: {} crashes, {} frames lost vs {} rerouted, \
         recovery p50 {} us p99 {} us, {} checkpoints {} migrations",
        crash_report.totals.crashes,
        crash_report.totals.crash_lost,
        crash_report.totals.rerouted,
        crash_report.recovery.p50 / 1_000,
        crash_report.recovery.p99 / 1_000,
        crash_report.totals.checkpoints,
        crash_report.totals.migrations,
    );

    // Adaptive admission vs the static watermarks, same overload: the
    // burn-driven controller must shed fewer frames at the queue while
    // keeping p99 latency inside the static envelope.
    // Saturating front-end: a slowed service clock against a small queue
    // makes the static watermarks shed hard at the cap.
    let static_cfg = FleetConfig {
        frame_period_ms: 25,
        service_clock_hz: 50_000_000,
        queue_cap: 32,
        high_watermark: 24,
        low_watermark: 8,
        ..base_cfg(smoke)
    };
    let adaptive_cfg = FleetConfig {
        adaptive: Some(AdaptiveConfig::default()),
        ..static_cfg.clone()
    };
    let static_report = run_fleet(&deployment, &data, static_cfg);
    let adaptive_report = run_fleet(&deployment, &data, adaptive_cfg);
    check_complete(&static_report, "static admission");
    check_complete(&adaptive_report, "adaptive admission");
    let tightens: u64 = adaptive_report
        .shard_reports
        .iter()
        .map(|s| s.adaptive_tightens)
        .sum();
    assert!(tightens > 0, "overload never tightened the watermarks");
    assert!(
        adaptive_report.totals.shed < static_report.totals.shed,
        "adaptive shed {} >= static shed {}",
        adaptive_report.totals.shed,
        static_report.totals.shed
    );
    assert!(
        adaptive_report.latency.p99 <= static_report.latency.p99 * 5 / 4,
        "adaptive p99 {} ns escaped the static envelope ({} ns)",
        adaptive_report.latency.p99,
        static_report.latency.p99
    );
    println!(
        "serve adaptive: shed {} vs static {} (downsampled {} vs {}), \
         p99 {} us vs {} us, {} tightens {} relaxes",
        adaptive_report.totals.shed,
        static_report.totals.shed,
        adaptive_report.totals.downsampled,
        static_report.totals.downsampled,
        adaptive_report.latency.p99 / 1_000,
        static_report.latency.p99 / 1_000,
        tightens,
        adaptive_report
            .shard_reports
            .iter()
            .map(|s| s.adaptive_relaxes)
            .sum::<u64>(),
    );

    // Always-on determinism tripwires (the CI serve-smoke gate): once
    // plain, once with the crash schedule in play.
    let occupancy_hash = check_reproducible(&deployment, &data, &base_cfg(smoke));
    let failover_hash = check_reproducible(&deployment, &data, &crash_cfg);
    pcount_telemetry::set_enabled(false);

    write_bench_json(&[
        ("bench", "\"serve\"".into()),
        (
            "mode",
            format!("\"{}\"", if smoke { "smoke" } else { "full" }),
        ),
        ("host", pcount_bench::host_metadata_json(smoke)),
        ("fleet_seed", FLEET_SEED.to_string()),
        ("pool_threads", POOL_THREADS.to_string()),
        (
            "serve",
            format!(
                "{{\"ramp\":[{}],\"storm\":{},\"crash_storm\":{},\
                 \"adaptive\":{{\"static\":{},\"adaptive\":{}}},\"determinism\":{{\
                 \"occupancy_hash\":\"{}\",\"failover_occupancy_hash\":\"{}\",\
                 \"pool_widths\":[1,4],\"bit_identical\":true}}}}",
                ramp_entries.join(","),
                storm_report.to_json(),
                crash_report.to_json(),
                static_report.to_json(),
                adaptive_report.to_json(),
                occupancy_hash,
                failover_hash,
            ),
        ),
    ]);

    if smoke {
        println!("BENCH_SMOKE=1: criterion timing skipped");
        return;
    }
    let svc = FleetService::new(deployment.clone(), base_cfg(false), &data).expect("fleet");
    let mut group = c.benchmark_group("serve");
    group.sample_size(10);
    group.bench_function("fleet_run_240_nodes", |b| {
        b.iter(|| {
            let mut pool = svc.make_pool(POOL_THREADS).expect("pool");
            black_box(svc.run(&mut pool))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_serve);
criterion_main!(benches);
