//! The hand-tuned state-of-the-art baseline of Xie et al. (Fig. 7).
//!
//! The paper compares its automated flow against a *manual, coarse-grained*
//! grid of CNN configurations deployed at INT8. This module reproduces
//! that baseline: a small menu of channel counts explored exhaustively,
//! each trained, folded and quantised uniformly to INT8 (the MCU toolchain
//! used by the baseline does not support mixed precision), evaluated with
//! the same cross-validation protocol.

use crate::pareto::ParetoPoint;
use pcount_dataset::{DatasetConfig, IrDataset};
use pcount_nn::{balanced_accuracy, train_classifier, CnnConfig, TrainConfig};
use pcount_postproc::apply_majority;
use pcount_quant::{
    fold_sequential, qat_finetune, Precision, PrecisionAssignment, QatCnn, QatConfig,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Configuration of the manual-grid baseline run.
#[derive(Debug, Clone)]
pub struct BaselineConfig {
    /// Channel menu for the two convolutions (the grid is the cross
    /// product of this list with itself).
    pub conv_channels: Vec<usize>,
    /// Hidden-feature menu for the first linear layer.
    pub fc_features: Vec<usize>,
    /// Dataset configuration (should match the flow's for a fair Fig. 7).
    pub dataset: DatasetConfig,
    /// Dataset generation seed.
    pub dataset_seed: u64,
    /// Training randomness seed.
    pub rng_seed: u64,
    /// Training hyper-parameters.
    pub train: TrainConfig,
    /// INT8 QAT hyper-parameters.
    pub qat: QatConfig,
    /// Number of cross-validation folds to use.
    pub max_folds: usize,
    /// Majority window (the baseline paper also evaluates repeated
    /// inference; window 1 disables it).
    pub majority_window: usize,
}

impl BaselineConfig {
    /// The default coarse grid: a handful of channel counts, mirroring the
    /// coarse manual exploration of the baseline paper.
    pub fn default_experiment() -> Self {
        Self {
            conv_channels: vec![8, 16, 32],
            fc_features: vec![16, 32],
            dataset: DatasetConfig::challenging().scaled(0.35),
            dataset_seed: 2024,
            rng_seed: 7,
            train: TrainConfig {
                epochs: 10,
                batch_size: 128,
                learning_rate: 1e-3,
                weight_decay: 1e-4,
                verbose: false,
            },
            qat: QatConfig {
                epochs: 2,
                batch_size: 128,
                learning_rate: 5e-4,
                verbose: false,
            },
            max_folds: 1,
            majority_window: 1,
        }
    }

    /// A tiny grid for tests.
    pub fn quick() -> Self {
        Self {
            conv_channels: vec![4, 8],
            fc_features: vec![8],
            dataset: DatasetConfig::tiny(),
            dataset_seed: 1,
            rng_seed: 1,
            train: TrainConfig {
                epochs: 3,
                batch_size: 64,
                learning_rate: 2e-3,
                weight_decay: 0.0,
                verbose: false,
            },
            qat: QatConfig {
                epochs: 1,
                batch_size: 64,
                learning_rate: 5e-4,
                verbose: false,
            },
            max_folds: 1,
            majority_window: 1,
        }
    }
}

/// Trains and evaluates every configuration of the manual grid at INT8 and
/// returns one Pareto point per configuration.
pub fn manual_grid_baseline(cfg: &BaselineConfig) -> Vec<ParetoPoint> {
    let mut rng = StdRng::seed_from_u64(cfg.rng_seed);
    let dataset = IrDataset::generate(&cfg.dataset, cfg.dataset_seed);
    let num_classes = dataset.num_classes();
    let folds: Vec<_> = dataset
        .leave_one_session_out()
        .into_iter()
        .take(cfg.max_folds.max(1))
        .collect();
    let int8 = PrecisionAssignment::uniform(Precision::Int8);
    let mut points = Vec::new();
    for &c1 in &cfg.conv_channels {
        for &c2 in &cfg.conv_channels {
            for &f1 in &cfg.fc_features {
                let arch = CnnConfig::seed().with_channels(c1, c2, f1);
                let mut bas_sum = 0.0;
                for fold in &folds {
                    let (x_train, y_train) = dataset.gather_normalized(fold.train.as_slice());
                    let (x_test, y_test) = dataset.gather_normalized(fold.test.as_slice());
                    let mut net = arch.build(&mut rng);
                    let _ = train_classifier(&mut net, &x_train, &y_train, &cfg.train, &mut rng);
                    let folded = fold_sequential(arch, &net).expect("canonical layout");
                    let mut qat = QatCnn::from_folded(&folded, int8);
                    let _ = qat_finetune(&mut qat, &x_train, &y_train, &cfg.qat, &mut rng);
                    let preds = {
                        let mut preds = Vec::new();
                        let n = x_test.shape()[0];
                        let mut start = 0usize;
                        while start < n {
                            let end = (start + 256).min(n);
                            let idx: Vec<usize> = (start..end).collect();
                            preds.extend(qat.predict(&pcount_nn::batch_select(&x_test, &idx)));
                            start = end;
                        }
                        preds
                    };
                    let smoothed = apply_majority(&preds, cfg.majority_window.max(1));
                    bas_sum += balanced_accuracy(&smoothed, &y_test, num_classes);
                }
                points.push(ParetoPoint::new(
                    format!("manual {c1}-{c2}-{f1} INT8"),
                    bas_sum / folds.len() as f64,
                    int8.memory_bytes(&arch),
                    arch.macs(),
                ));
            }
        }
    }
    points
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_baseline_covers_the_whole_grid() {
        let cfg = BaselineConfig::quick();
        let points = manual_grid_baseline(&cfg);
        assert_eq!(
            points.len(),
            cfg.conv_channels.len() * cfg.conv_channels.len() * cfg.fc_features.len()
        );
        for p in &points {
            assert!((0.0..=1.0).contains(&p.bas));
            assert!(p.memory_bytes > 0);
        }
        // Larger configurations cost more memory.
        let small = points.iter().map(|p| p.memory_bytes).min().unwrap();
        let large = points.iter().map(|p| p.memory_bytes).max().unwrap();
        assert!(large > small);
    }
}
