//! The full-stack optimisation flow of the paper (Fig. 1) as a library.
//!
//! The flow chains the individual crates together:
//!
//! 1. generate (or load) the dataset and its leave-one-session-out folds
//!    (`pcount-dataset`),
//! 2. train the floating-point seed CNN (`pcount-nn`),
//! 3. run the PIT mask-based DNAS for a sweep of strengths `λ`
//!    (`pcount-nas`),
//! 4. quantise every discovered architecture with layer-wise INT4/INT8
//!    mixed precision and QAT (`pcount-quant`),
//! 5. apply majority-voting post-processing (`pcount-postproc`),
//! 6. assemble the Pareto fronts of Figs. 5–7 and deploy the selected
//!    models on MAUPITI / IBEX / STM32 for Table I
//!    (`pcount-kernels` + `pcount-platform`).
//!
//! # Example
//!
//! ```no_run
//! use pcount_core::{run_flow, FlowConfig};
//!
//! let result = run_flow(&FlowConfig::quick());
//! println!("{} quantized candidates", result.quantized.len());
//! ```

mod baseline;
mod flow;
mod pareto;

pub use baseline::{manual_grid_baseline, BaselineConfig};
pub use flow::{
    run_flow, select_table1_models, CandidateEval, CandidateModel, DeployedCost, FlowConfig,
    FlowResult, FoldOutcome, FoldTrainJob, TelemetryReport,
};
pub use pareto::{pareto_front_by, ParetoPoint};
