//! Pareto-front utilities for the accuracy-vs-cost planes of Figs. 5–7.

/// One point in the Balanced-Accuracy vs hardware-cost space.
#[derive(Debug, Clone, PartialEq)]
pub struct ParetoPoint {
    /// Human-readable label (architecture + precision).
    pub label: String,
    /// Balanced accuracy (0..1).
    pub bas: f64,
    /// Model memory footprint in bytes.
    pub memory_bytes: usize,
    /// Multiply-accumulate operations per inference.
    pub macs: usize,
}

impl ParetoPoint {
    /// Creates a point.
    pub fn new(label: impl Into<String>, bas: f64, memory_bytes: usize, macs: usize) -> Self {
        Self {
            label: label.into(),
            bas,
            memory_bytes,
            macs,
        }
    }
}

/// Extracts the Pareto-optimal subset of `points`: maximise BAS, minimise
/// the chosen cost (`memory_bytes` or `macs`). The result is sorted by
/// increasing cost.
pub fn pareto_front_by(points: &[ParetoPoint], use_macs: bool) -> Vec<ParetoPoint> {
    let cost = |p: &ParetoPoint| if use_macs { p.macs } else { p.memory_bytes };
    let mut front: Vec<ParetoPoint> = Vec::new();
    for candidate in points {
        let dominated = points.iter().any(|other| {
            (other.bas > candidate.bas && cost(other) <= cost(candidate))
                || (other.bas >= candidate.bas && cost(other) < cost(candidate))
        });
        if !dominated {
            front.push(candidate.clone());
        }
    }
    front.sort_by_key(|a| cost(a));
    front.dedup_by(|a, b| a.bas == b.bas && cost(a) == cost(b));
    front
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn p(bas: f64, mem: usize, macs: usize) -> ParetoPoint {
        ParetoPoint::new(format!("{bas}-{mem}"), bas, mem, macs)
    }

    #[test]
    fn dominated_points_are_removed() {
        let points = vec![p(0.9, 1000, 10), p(0.8, 1000, 10), p(0.85, 2000, 20)];
        let front = pareto_front_by(&points, false);
        assert_eq!(front.len(), 1);
        assert_eq!(front[0].bas, 0.9);
    }

    #[test]
    fn incomparable_points_all_survive() {
        let points = vec![p(0.7, 100, 1), p(0.8, 200, 2), p(0.9, 300, 3)];
        let front = pareto_front_by(&points, false);
        assert_eq!(front.len(), 3);
        // Sorted by cost.
        assert!(front
            .windows(2)
            .all(|w| w[0].memory_bytes <= w[1].memory_bytes));
    }

    #[test]
    fn memory_and_mac_fronts_can_differ() {
        // Point A: small memory, many MACs. Point B: large memory, few MACs.
        let points = vec![p(0.8, 100, 1000), p(0.8, 1000, 100)];
        let mem_front = pareto_front_by(&points, false);
        let mac_front = pareto_front_by(&points, true);
        assert_eq!(mem_front.len(), 1);
        assert_eq!(mem_front[0].memory_bytes, 100);
        assert_eq!(mac_front.len(), 1);
        assert_eq!(mac_front[0].macs, 100);
    }

    proptest! {
        #[test]
        fn front_points_are_mutually_non_dominated(
            raw in proptest::collection::vec((0.0f64..1.0, 1usize..10_000, 1usize..10_000), 1..40)
        ) {
            let points: Vec<ParetoPoint> =
                raw.iter().map(|&(b, m, c)| p(b, m, c)).collect();
            let front = pareto_front_by(&points, false);
            prop_assert!(!front.is_empty());
            for a in &front {
                for b in &front {
                    let strictly_dominates = b.bas >= a.bas
                        && b.memory_bytes <= a.memory_bytes
                        && (b.bas > a.bas || b.memory_bytes < a.memory_bytes);
                    prop_assert!(!strictly_dominates, "front contains dominated point");
                }
            }
        }

        #[test]
        fn best_accuracy_point_is_always_on_the_front(
            raw in proptest::collection::vec((0.0f64..1.0, 1usize..10_000), 1..40)
        ) {
            let points: Vec<ParetoPoint> =
                raw.iter().map(|&(b, m)| p(b, m, m)).collect();
            let best = points
                .iter()
                .cloned()
                .max_by(|a, b| a.bas.partial_cmp(&b.bas).unwrap())
                .unwrap();
            let front = pareto_front_by(&points, false);
            prop_assert!(front.iter().any(|q| (q.bas - best.bas).abs() < 1e-12));
        }
    }
}
