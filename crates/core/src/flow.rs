//! The end-to-end optimisation flow.

use crate::pareto::ParetoPoint;
use pcount_dataset::{CvFold, DatasetConfig, IrDataset};
use pcount_kernels::{
    hot_blocks_json, DeployError, Deployment, HotBlock, MemStats, MemoryModel, PipelineStats,
    Target,
};
use pcount_nas::{search, CostTarget, NasConfig};
use pcount_nn::{
    balanced_accuracy, evaluate, train_classifier, CnnConfig, Sequential, TrainConfig,
};
use pcount_platform::{result_from_report, EnergyBreakdown, PlatformSpec};
use pcount_postproc::apply_majority;
use pcount_quant::{
    fold_sequential, qat_finetune, Precision, PrecisionAssignment, QatCnn, QatConfig, QuantizedCnn,
};
use pcount_telemetry::{HistogramSummary, PoolUtilization, SloBaseline, SloSnapshot};
use pcount_tensor::{SplitMix64, Tensor};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

/// Configuration of a full flow run.
#[derive(Debug, Clone)]
pub struct FlowConfig {
    /// The seed architecture the DNAS starts from.
    pub seed_architecture: CnnConfig,
    /// Synthetic dataset configuration.
    pub dataset: DatasetConfig,
    /// Seed for dataset generation.
    pub dataset_seed: u64,
    /// Seed for training/search randomness.
    pub rng_seed: u64,
    /// DNAS strength sweep.
    pub lambdas: Vec<f64>,
    /// DNAS hyper-parameters (the `lambda` field is overridden per sweep
    /// point).
    pub nas: NasConfig,
    /// Seed-training / fine-tuning hyper-parameters.
    pub train: TrainConfig,
    /// QAT fine-tuning hyper-parameters.
    pub qat: QatConfig,
    /// Precision assignments to explore for every discovered architecture.
    pub assignments: Vec<PrecisionAssignment>,
    /// Majority-voting window length.
    pub majority_window: usize,
    /// How many cross-validation folds to evaluate (1..=4).
    pub max_folds: usize,
    /// Concurrency cap for the post-sweep deployment evaluation (`0` =
    /// the runtime pool's width). Results are identical for any value —
    /// candidates are independent and collected in order.
    pub deploy_threads: usize,
    /// Concurrency cap for the λ-sweep and fold-loop fan-outs (`0` = the
    /// runtime pool's width). Both levels draw from the single
    /// persistent `pcount-runtime` pool (sized by `POOL_THREADS`), so
    /// the budget is shared across levels rather than multiplied. Note
    /// this caps only those two scheduling groups — the GEMM column
    /// strips underneath use whatever pool workers are free — so the
    /// hard bound on total CPU use is always the pool width
    /// (`POOL_THREADS`), not this knob. Every (phase, λ, fold) work item
    /// draws from its own RNG stream derived via SplitMix64 from
    /// [`FlowConfig::rng_seed`], so results are identical for any cap
    /// and any pool size — work items are independent and collected in
    /// order. (The switch from one shared RNG stream to per-item derived
    /// streams was a one-time results change; see the README's
    /// training-engine notes.)
    pub train_threads: usize,
    /// The memory-hierarchy model the deployment sweep charges cycles
    /// through. The default [`MemoryModel::Flat`] reproduces the
    /// historical cycle/energy numbers bit-identically;
    /// [`MemoryModel::maupiti`] adds prefetch-refill and SRAM-contention
    /// stalls and fills the per-component breakdown of
    /// [`DeployedCost::mem`] / [`DeployedCost::energy`].
    pub mem_model: MemoryModel,
}

impl FlowConfig {
    /// A minutes-scale configuration used by the experiment binaries.
    ///
    /// The seed is scaled down from the paper's 64-64-64 configuration and
    /// the precision sweep is restricted to the four assignments the paper
    /// plots in Fig. 5, so that every figure regenerates in CPU-minutes;
    /// widen `lambdas`, `assignments`, `max_folds` and the dataset scale
    /// for a closer (but slower) reproduction.
    pub fn default_experiment() -> Self {
        Self {
            seed_architecture: CnnConfig::seed().with_channels(24, 24, 32),
            dataset: DatasetConfig::challenging().scaled(0.35),
            dataset_seed: 2024,
            rng_seed: 7,
            lambdas: vec![0.3, 1.5, 5.0],
            nas: NasConfig {
                cost_target: CostTarget::Params,
                epochs: 8,
                warmup_epochs: 2,
                batch_size: 128,
                learning_rate: 2e-3,
                verbose: false,
                lambda: 0.0,
            },
            train: TrainConfig {
                epochs: 8,
                batch_size: 128,
                learning_rate: 1e-3,
                weight_decay: 1e-4,
                verbose: false,
            },
            qat: QatConfig {
                epochs: 2,
                batch_size: 128,
                learning_rate: 5e-4,
                verbose: false,
            },
            assignments: vec![
                PrecisionAssignment::uniform(Precision::Int8),
                PrecisionAssignment::new([
                    Precision::Int8,
                    Precision::Int4,
                    Precision::Int8,
                    Precision::Int8,
                ]),
                PrecisionAssignment::new([
                    Precision::Int8,
                    Precision::Int4,
                    Precision::Int4,
                    Precision::Int8,
                ]),
                PrecisionAssignment::new([
                    Precision::Int8,
                    Precision::Int4,
                    Precision::Int4,
                    Precision::Int4,
                ]),
            ],
            majority_window: 5,
            max_folds: 1,
            deploy_threads: 0,
            train_threads: 0,
            mem_model: MemoryModel::Flat,
        }
    }

    /// A seconds-scale configuration used by tests and doc examples.
    pub fn quick() -> Self {
        Self {
            seed_architecture: CnnConfig::seed().with_channels(6, 6, 12),
            dataset: DatasetConfig::tiny(),
            dataset_seed: 1,
            rng_seed: 1,
            lambdas: vec![0.2, 2.0],
            nas: NasConfig {
                cost_target: CostTarget::Params,
                epochs: 4,
                warmup_epochs: 1,
                batch_size: 64,
                learning_rate: 3e-3,
                verbose: false,
                lambda: 0.0,
            },
            train: TrainConfig {
                epochs: 4,
                batch_size: 64,
                learning_rate: 2e-3,
                weight_decay: 0.0,
                verbose: false,
            },
            qat: QatConfig {
                epochs: 2,
                batch_size: 64,
                learning_rate: 5e-4,
                verbose: false,
            },
            assignments: vec![
                PrecisionAssignment::uniform(Precision::Int8),
                PrecisionAssignment::new([
                    Precision::Int8,
                    Precision::Int4,
                    Precision::Int4,
                    Precision::Int8,
                ]),
                PrecisionAssignment::new([
                    Precision::Int8,
                    Precision::Int4,
                    Precision::Int4,
                    Precision::Int4,
                ]),
            ],
            majority_window: 5,
            max_folds: 1,
            deploy_threads: 0,
            train_threads: 0,
            mem_model: MemoryModel::Flat,
        }
    }
}

/// One quantised candidate produced by the flow (architecture + precision
/// assignment), with its cross-validated accuracy and cost metrics.
#[derive(Debug, Clone)]
pub struct CandidateModel {
    /// Human-readable label, e.g. `"λ=0.3 INT 8-4-4-8"`.
    pub label: String,
    /// Architecture discovered by the DNAS.
    pub config: CnnConfig,
    /// Precision assignment.
    pub assignment: PrecisionAssignment,
    /// Cross-validated single-frame balanced accuracy.
    pub bas: f64,
    /// Cross-validated balanced accuracy with majority voting.
    pub bas_majority: f64,
    /// Model memory (packed weights + 32-bit biases) in bytes.
    pub memory_bytes: usize,
    /// MAC operations per inference.
    pub macs: usize,
    /// Integer model from the last evaluated fold, ready for deployment.
    pub quantized: QuantizedCnn,
    /// Measured on-simulator deployment cost (`None` when the candidate
    /// does not fit the 16 KB on-chip memories).
    pub deployed: Option<DeployedCost>,
}

/// Per-inference cost of a candidate measured on the simulated sensor
/// node (Table I axes), produced by the deployment sweep at the end of
/// [`run_flow`].
#[derive(Debug, Clone, PartialEq)]
pub struct DeployedCost {
    /// The execution target the candidate was compiled for.
    pub target: Target,
    /// Program size in bytes.
    pub code_bytes: usize,
    /// Data memory usage in bytes.
    pub data_bytes: usize,
    /// Cycles per inference on the pipelined IBEX timing model.
    pub cycles: u64,
    /// Instructions retired per inference.
    pub instructions: u64,
    /// SDOTP instructions per inference.
    pub sdotp: u64,
    /// Latency per inference in milliseconds at the platform clock.
    pub latency_ms: f64,
    /// Energy per inference in microjoules.
    pub energy_uj: f64,
    /// Per-cause memory stall breakdown of the measured inference (all
    /// zero under [`MemoryModel::Flat`]).
    pub mem: MemStats,
    /// The per-inference energy split into core / imem / dmem components
    /// along the stall breakdown.
    pub energy: EnergyBreakdown,
    /// Pipeline stall/flush counters of the measured inference.
    pub pipeline: PipelineStats,
}

impl CandidateModel {
    /// The candidate as a Pareto point using its single-frame accuracy.
    pub fn point(&self) -> ParetoPoint {
        ParetoPoint::new(self.label.clone(), self.bas, self.memory_bytes, self.macs)
    }

    /// The candidate as a Pareto point using its majority-voted accuracy.
    pub fn majority_point(&self) -> ParetoPoint {
        ParetoPoint::new(
            format!("{} +maj", self.label),
            self.bas_majority,
            self.memory_bytes,
            self.macs,
        )
    }

    /// Compiles the candidate's integer model for `target` and loads it
    /// into the simulated on-chip memories, ready to measure per-inference
    /// cycles, energy and footprint (Table I). Inferences run on the
    /// simulator's block-cached engine with the pipelined IBEX timing
    /// model.
    ///
    /// # Errors
    ///
    /// Returns [`DeployError`] when the candidate does not fit the 16 KB
    /// instruction / 16 KB data memories.
    pub fn deploy(&self, target: Target) -> Result<Deployment, DeployError> {
        Deployment::new(&self.quantized, target)
    }
}

/// Unified observability report of one [`run_flow`] invocation, folding
/// the phase wall times, the per-frame inference latency distribution,
/// the worker-pool utilisation and the deployment-sweep cost breakdowns
/// ([`MemStats`], [`PipelineStats`], [`EnergyBreakdown`], [`HotBlock`])
/// into one exportable structure.
///
/// Phase wall times are always measured (two `Instant` reads per phase).
/// The telemetry-backed sections — the latency histogram, the frame
/// counters and the pool report — are only populated while
/// `pcount-telemetry` recording is on (`PCOUNT_TRACE` or
/// [`pcount_telemetry::set_enabled`]); with telemetry off they are zero
/// and [`TelemetryReport::enabled`] is `false`. None of this ever
/// changes the flow's computed results.
#[derive(Debug, Clone, Default)]
pub struct TelemetryReport {
    /// Whether telemetry recording was on when the flow finished.
    pub enabled: bool,
    /// `(phase name, wall seconds)` for the flow's three phases, in
    /// execution order: `flow/seed_eval`, `flow/lambda_sweep`,
    /// `flow/deploy_sweep`.
    pub phases: Vec<(&'static str, f64)>,
    /// Host-side per-frame inference latency over this flow run (the
    /// window of `deploy/frame_latency_ns` recorded between flow start
    /// and end), with p50/p90/p99 in nanoseconds.
    pub inference_latency_ns: HistogramSummary,
    /// Simulator frames run during this flow (windowed
    /// `deploy/frames`).
    pub frames: u64,
    /// Simulator faults hit during this flow (windowed
    /// `deploy/frame_faults`; 0 on a healthy run).
    pub frame_faults: u64,
    /// Worker-pool utilisation of the pool the flow ran on.
    pub pool: PoolUtilization,
    /// Memory-hierarchy stall breakdown summed over the deployed rows.
    pub mem: MemStats,
    /// Pipeline stall/flush counters summed over the deployed rows.
    pub pipeline: PipelineStats,
    /// Energy breakdown summed over the deployed rows (µJ).
    pub energy: EnergyBreakdown,
    /// Trace-cache profile of the first deployed candidate: its five
    /// hottest superblocks by retired instructions. Empty when no
    /// candidate fits on-chip.
    pub hot_blocks: Vec<HotBlock>,
    /// Windowed `resilience/*` SLO metrics (fault-class counters,
    /// retries, fallbacks, error-budget burn, recovery latency). All
    /// zero unless a `pcount-resilience` stream ran during this flow
    /// with telemetry on.
    pub slo: SloSnapshot,
}

impl TelemetryReport {
    /// The report as a JSON object string, for the bench emitters
    /// (`BENCH_train.json`) and any external dashboard.
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut phases = String::from("{");
        for (i, (name, secs)) in self.phases.iter().enumerate() {
            if i > 0 {
                phases.push(',');
            }
            let _ = write!(phases, "\"{name}\":{secs:.6}");
        }
        phases.push('}');
        format!(
            concat!(
                "{{\"enabled\":{},\"phases\":{},\"inference_latency_ns\":{},",
                "\"frames\":{},\"frame_faults\":{},\"pool\":{},",
                "\"mem\":{{\"fetch_misses\":{},\"imem_stall_cycles\":{},",
                "\"contended_accesses\":{},\"dmem_stall_cycles\":{}}},",
                "\"pipeline\":{{\"instructions\":{},\"load_use_stalls\":{},",
                "\"flush_cycles\":{}}},",
                "\"energy_uj\":{{\"core\":{:.4},\"imem\":{:.4},\"dmem\":{:.4}}},",
                "\"hot_blocks\":{},\"slo\":{}}}"
            ),
            self.enabled,
            phases,
            self.inference_latency_ns.to_json(),
            self.frames,
            self.frame_faults,
            self.pool.to_json(),
            self.mem.fetch_misses,
            self.mem.imem_stall_cycles,
            self.mem.contended_accesses,
            self.mem.dmem_stall_cycles,
            self.pipeline.instructions,
            self.pipeline.load_use_stalls,
            self.pipeline.flush_cycles,
            self.energy.core_uj,
            self.energy.imem_uj,
            self.energy.dmem_uj,
            hot_blocks_json(&self.hot_blocks),
            self.slo.to_json(),
        )
    }
}

/// The output of [`run_flow`].
#[derive(Debug, Clone)]
pub struct FlowResult {
    /// The floating-point seed network (blue star of Fig. 5).
    pub seed_point: ParetoPoint,
    /// The FP32 architectures found by the λ sweep (grey front of Fig. 5).
    pub fp32_points: Vec<ParetoPoint>,
    /// Every (architecture, precision) candidate after QAT.
    pub quantized: Vec<CandidateModel>,
    /// Majority-voting window used for the post-processed metrics.
    pub majority_window: usize,
    /// Observability report of this run (phase wall times, inference
    /// latency percentiles, pool utilisation, cost breakdowns). Purely
    /// observational — never feeds back into any computed result.
    pub telemetry: TelemetryReport,
}

impl FlowResult {
    /// Pareto points of all quantised candidates (single-frame accuracy).
    pub fn quantized_points(&self) -> Vec<ParetoPoint> {
        self.quantized.iter().map(CandidateModel::point).collect()
    }

    /// Pareto points of all quantised candidates after majority voting.
    pub fn majority_points(&self) -> Vec<ParetoPoint> {
        self.quantized
            .iter()
            .map(CandidateModel::majority_point)
            .collect()
    }

    /// Every candidate that fits the on-chip memories, paired with its
    /// measured deployment cost — the latency/energy axes of the Fig. 7
    /// variant and Table I. Candidate order is preserved.
    pub fn deployed_rows(&self) -> Vec<(&CandidateModel, &DeployedCost)> {
        self.quantized
            .iter()
            .filter_map(|c| c.deployed.as_ref().map(|d| (c, d)))
            .collect()
    }
}

/// Snapshot of all trainable parameters of a network.
#[cfg(test)]
fn snapshot_params(net: &mut Sequential) -> Vec<Tensor> {
    net.params_and_grads()
        .into_iter()
        .map(|(p, _)| p.clone())
        .collect()
}

/// Restores a parameter snapshot taken with [`snapshot_params`].
#[cfg(test)]
fn restore_params(net: &mut Sequential, snapshot: &[Tensor]) {
    let params = net.params_and_grads();
    assert_eq!(params.len(), snapshot.len(), "parameter count changed");
    for ((p, _), saved) in params.into_iter().zip(snapshot.iter()) {
        *p = saved.clone();
    }
}

/// RNG stream tags for [`derive_seed`]: one namespace per flow phase.
const STREAM_SEED_EVAL: u64 = 1;
const STREAM_SEARCH: u64 = 2;
const STREAM_FOLD: u64 = 3;

/// Derives the deterministic seed of one training work item from the
/// flow's root seed via SplitMix64.
///
/// Every (phase, λ index, fold index) triple owns an independent stream,
/// so work items can run on any thread in any order and still consume
/// exactly the same random numbers — this is what makes
/// [`FlowConfig::train_threads`] a pure performance knob.
fn derive_seed(root: u64, phase: u64, lambda_index: u64, fold: u64) -> u64 {
    let stream = (phase << 48) ^ (lambda_index << 24) ^ fold;
    let mut sm = SplitMix64::new(root ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    sm.next_u64()
}

/// Runs `f(0..n)` across the persistent `pcount-runtime` worker pool
/// with at most `threads` concurrent workers (`0` = the pool's width),
/// returning the results in index order. Jobs are independent per index
/// and collected in order, so the output is identical for any thread
/// count and any `POOL_THREADS` pool size. Nested fan-outs (the fold
/// loops under a λ sweep point, the GEMMs under a fold) draw from the
/// same pool, so the worker budget is shared across levels instead of
/// multiplying.
fn parallel_map_folds<T, F>(n: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    pcount_runtime::current().map_limited(n, threads, f)
}

/// One quantised candidate's metrics on a single cross-validation fold.
#[derive(Debug, Clone)]
pub struct CandidateEval {
    /// Single-frame balanced accuracy on the fold's test split.
    pub bas: f64,
    /// Balanced accuracy after majority voting.
    pub bas_majority: f64,
    /// The QAT-fine-tuned integer model.
    pub quantized: QuantizedCnn,
}

/// Per-fold result of [`FoldTrainJob::run`]: the FP32 fine-tuning score
/// plus one [`CandidateEval`] per precision assignment.
#[derive(Debug, Clone)]
pub struct FoldOutcome {
    /// FP32 balanced accuracy of the fine-tuned network on this fold.
    pub fp32_bas: f64,
    /// Per-assignment QAT results, in `assignments` order.
    pub candidates: Vec<CandidateEval>,
}

/// The per-fold fine-tuning + QAT workload of one λ-sweep point.
///
/// [`run_flow`] builds one job per discovered architecture; the
/// `train_throughput` bench drives the same type directly to measure
/// serial vs parallel fold wall-clock. Folds are embarrassingly parallel:
/// each one clones `network`, trains it on the fold's training split with
/// a fold-private RNG stream (see [`FlowConfig::train_threads`]) and QATs
/// every precision assignment, so [`FoldTrainJob::run`] returns identical
/// results for any thread count.
#[derive(Debug, Clone, Copy)]
pub struct FoldTrainJob<'a> {
    /// Architecture discovered by the search.
    pub arch: CnnConfig,
    /// The post-search network fine-tuning starts from (cloned per fold).
    pub network: &'a Sequential,
    /// Dataset the fold indices point into.
    pub dataset: &'a IrDataset,
    /// The cross-validation folds to evaluate.
    pub folds: &'a [CvFold],
    /// FP32 fine-tuning hyper-parameters.
    pub train: &'a TrainConfig,
    /// QAT fine-tuning hyper-parameters.
    pub qat: &'a QatConfig,
    /// Precision assignments to QAT on every fold.
    pub assignments: &'a [PrecisionAssignment],
    /// Majority-voting window for the post-processed metric.
    pub majority_window: usize,
    /// Root seed the per-fold streams are derived from.
    pub rng_seed: u64,
    /// λ index (salts the per-fold seed streams per sweep point).
    pub lambda_index: usize,
}

impl FoldTrainJob<'_> {
    /// Evaluates every fold across `threads` workers (`0` = auto) and
    /// returns the outcomes in fold order. Results are identical for any
    /// thread count.
    pub fn run(&self, threads: usize) -> Vec<FoldOutcome> {
        let num_classes = self.dataset.num_classes();
        parallel_map_folds(self.folds.len(), threads, |fi| {
            let _span = pcount_telemetry::span("flow/lambda_sweep/fold_train");
            let fold = &self.folds[fi];
            let mut rng = StdRng::seed_from_u64(derive_seed(
                self.rng_seed,
                STREAM_FOLD,
                self.lambda_index as u64,
                fi as u64,
            ));
            let (x_train, y_train) = self.dataset.gather_normalized(fold.train.as_slice());
            let (x_test, y_test) = self.dataset.gather_normalized(fold.test.as_slice());
            let mut net = self.network.clone();
            let _ = train_classifier(&mut net, &x_train, &y_train, self.train, &mut rng);
            let fp32_bas = evaluate(&mut net, &x_test, &y_test, num_classes);
            let folded = fold_sequential(self.arch, &net)
                .expect("NAS-extracted networks always have the canonical layout");
            let candidates = self
                .assignments
                .iter()
                .map(|&assignment| {
                    let mut qat = QatCnn::from_folded(&folded, assignment);
                    let _ = qat_finetune(&mut qat, &x_train, &y_train, self.qat, &mut rng);
                    let preds = batched_predict(&mut qat, &x_test);
                    let bas = balanced_accuracy(&preds, &y_test, num_classes);
                    let smoothed = apply_majority(&preds, self.majority_window);
                    let bas_majority = balanced_accuracy(&smoothed, &y_test, num_classes);
                    CandidateEval {
                        bas,
                        bas_majority,
                        quantized: QuantizedCnn::from_qat(&qat),
                    }
                })
                .collect();
            FoldOutcome {
                fp32_bas,
                candidates,
            }
        })
    }
}

/// Runs the complete optimisation flow.
///
/// When the `PCOUNT_TRACE` environment variable names a file, telemetry
/// recording is enabled for the run and the accumulated trace is flushed
/// there on completion (chrome://tracing JSON, or JSONL for a `.jsonl`
/// suffix). The returned [`FlowResult::telemetry`] report carries phase
/// wall times, inference-latency percentiles and pool utilisation either
/// way; all computed results are bit-identical with telemetry on or off.
pub fn run_flow(cfg: &FlowConfig) -> FlowResult {
    pcount_telemetry::init_from_env();
    // Windowed baselines: the flow report subtracts these so a process
    // running several flows attributes frames/latency to the right run.
    let latency_baseline = pcount_telemetry::histogram("deploy/frame_latency_ns").counts();
    let frames_baseline = pcount_telemetry::counter("deploy/frames").value();
    let faults_baseline = pcount_telemetry::counter("deploy/frame_faults").value();
    let slo_baseline = SloBaseline::capture();
    let mut phases: Vec<(&'static str, f64)> = Vec::with_capacity(3);

    let dataset = IrDataset::generate(&cfg.dataset, cfg.dataset_seed);
    let num_classes = dataset.num_classes();
    let folds: Vec<_> = dataset
        .leave_one_session_out()
        .into_iter()
        .take(cfg.max_folds.max(1))
        .collect();
    // Search data: session 1 (index 0) only, as in the paper.
    let s1 = dataset.session_indices(0);
    let (x_s1, y_s1) = dataset.gather_normalized(&s1);

    // --- Seed evaluation (parallel across folds) -------------------------
    let phase_start = Instant::now();
    let seed_span = pcount_telemetry::span("flow/seed_eval");
    let seed_scores = parallel_map_folds(folds.len(), cfg.train_threads, |fi| {
        let fold = &folds[fi];
        let mut rng =
            StdRng::seed_from_u64(derive_seed(cfg.rng_seed, STREAM_SEED_EVAL, 0, fi as u64));
        let (x_train, y_train) = dataset.gather_normalized(fold.train.as_slice());
        let (x_test, y_test) = dataset.gather_normalized(fold.test.as_slice());
        let mut seed_net = cfg.seed_architecture.build(&mut rng);
        let _ = train_classifier(&mut seed_net, &x_train, &y_train, &cfg.train, &mut rng);
        evaluate(&mut seed_net, &x_test, &y_test, num_classes)
    });
    drop(seed_span);
    phases.push(("flow/seed_eval", phase_start.elapsed().as_secs_f64()));
    let seed_point = ParetoPoint::new(
        "seed FP32",
        seed_scores.iter().sum::<f64>() / folds.len() as f64,
        cfg.seed_architecture.memory_bytes_fp32(),
        cfg.seed_architecture.macs(),
    );

    // --- λ sweep: DNAS + fine-tuning + mixed-precision QAT ---------------
    // Sweep points are independent (each owns derived RNG streams for its
    // search and folds), so they fan out over the shared runtime pool
    // like the fold loops underneath. Both levels submit to the *same*
    // pool, so the worker budget can never multiply: a fold job queued by
    // one sweep point simply runs on whichever worker frees up first
    // (formerly the budget was split `train_threads / λ-workers` per
    // level, which oversubscribed whenever both levels fanned out).
    // Results are identical for any `train_threads` value and land in λ
    // order.
    let phase_start = Instant::now();
    let sweep_span = pcount_telemetry::span("flow/lambda_sweep");
    let sweeps = parallel_map_folds(cfg.lambdas.len(), cfg.train_threads, |li| {
        let lambda = cfg.lambdas[li];
        let nas_cfg = NasConfig { lambda, ..cfg.nas };
        let mut rng = StdRng::seed_from_u64(derive_seed(cfg.rng_seed, STREAM_SEARCH, li as u64, 0));
        let outcome = search(cfg.seed_architecture, &x_s1, &y_s1, &nas_cfg, &mut rng);
        let arch = outcome.config;

        let job = FoldTrainJob {
            arch,
            network: &outcome.network,
            dataset: &dataset,
            folds: &folds,
            train: &cfg.train,
            qat: &cfg.qat,
            assignments: &cfg.assignments,
            majority_window: cfg.majority_window,
            rng_seed: cfg.rng_seed,
            lambda_index: li,
        };
        let mut outcomes = job.run(cfg.train_threads);

        let nf = folds.len() as f64;
        let fp32_point = ParetoPoint::new(
            format!("λ={lambda} FP32 {arch:?}"),
            outcomes.iter().map(|o| o.fp32_bas).sum::<f64>() / nf,
            arch.memory_bytes_fp32(),
            arch.macs(),
        );
        let sums: Vec<(f64, f64)> = (0..cfg.assignments.len())
            .map(|ai| {
                (
                    outcomes.iter().map(|o| o.candidates[ai].bas).sum::<f64>(),
                    outcomes
                        .iter()
                        .map(|o| o.candidates[ai].bas_majority)
                        .sum::<f64>(),
                )
            })
            .collect();
        // Keep the last fold's integer models (as before the parallel
        // refactor), moving them out instead of cloning.
        let last = outcomes.pop().expect("at least one fold ran");
        drop(outcomes);
        let candidates: Vec<CandidateModel> = cfg
            .assignments
            .iter()
            .zip(last.candidates)
            .zip(sums)
            .map(|((&assignment, eval), (bas_sum, maj_sum))| CandidateModel {
                label: format!("λ={lambda} {assignment}"),
                config: arch,
                assignment,
                bas: bas_sum / nf,
                bas_majority: maj_sum / nf,
                memory_bytes: assignment.memory_bytes(&arch),
                macs: arch.macs(),
                quantized: eval.quantized,
                deployed: None,
            })
            .collect();
        (fp32_point, candidates)
    });
    drop(sweep_span);
    phases.push(("flow/lambda_sweep", phase_start.elapsed().as_secs_f64()));
    let mut fp32_points = Vec::with_capacity(cfg.lambdas.len());
    let mut quantized = Vec::new();
    for (point, candidates) in sweeps {
        fp32_points.push(point);
        quantized.extend(candidates);
    }

    // --- Deployment sweep: measure every candidate on the simulator ------
    // Candidates are independent, so the compile + inference runs fan out
    // across threads (the simulator CPU is `Send`); results land in
    // candidate order either way.
    let sample_frame = &x_s1.data()[..x_s1.shape()[1..].iter().product()];
    let phase_start = Instant::now();
    let deploy_span = pcount_telemetry::span("flow/deploy_sweep");
    evaluate_deployments(
        &mut quantized,
        sample_frame,
        cfg.mem_model,
        cfg.deploy_threads,
    );
    drop(deploy_span);
    phases.push(("flow/deploy_sweep", phase_start.elapsed().as_secs_f64()));

    let telemetry = assemble_telemetry(
        phases,
        &quantized,
        sample_frame,
        &TelemetryBaselines {
            latency: latency_baseline,
            frames: frames_baseline,
            faults: faults_baseline,
            slo: slo_baseline,
        },
    );
    if let Err(err) = pcount_telemetry::flush_env_trace() {
        eprintln!("warning: failed to write PCOUNT_TRACE file: {err}");
    }

    FlowResult {
        seed_point,
        fp32_points,
        quantized,
        majority_window: cfg.majority_window,
        telemetry,
    }
}

/// Telemetry registry values sampled at flow start, so the flow report
/// covers only this run's window.
struct TelemetryBaselines {
    latency: pcount_telemetry::HistogramCounts,
    frames: u64,
    faults: u64,
    slo: SloBaseline,
}

/// Folds the run's telemetry window, the pool report and the deployment
/// cost breakdowns into the [`TelemetryReport`] attached to the flow
/// result.
fn assemble_telemetry(
    phases: Vec<(&'static str, f64)>,
    quantized: &[CandidateModel],
    sample_frame: &[f32],
    baselines: &TelemetryBaselines,
) -> TelemetryReport {
    let mut mem = MemStats::default();
    let mut pipeline = PipelineStats::default();
    let mut energy = EnergyBreakdown::default();
    for cost in quantized.iter().filter_map(|c| c.deployed.as_ref()) {
        mem.fetch_misses += cost.mem.fetch_misses;
        mem.imem_stall_cycles += cost.mem.imem_stall_cycles;
        mem.contended_accesses += cost.mem.contended_accesses;
        mem.dmem_stall_cycles += cost.mem.dmem_stall_cycles;
        pipeline.instructions += cost.pipeline.instructions;
        pipeline.load_use_stalls += cost.pipeline.load_use_stalls;
        pipeline.flush_cycles += cost.pipeline.flush_cycles;
        energy.core_uj += cost.energy.core_uj;
        energy.imem_uj += cost.energy.imem_uj;
        energy.dmem_uj += cost.energy.dmem_uj;
    }
    // Trace-cache profile of the first candidate that fits on-chip (one
    // extra profiling inference; deterministic, so it never perturbs the
    // flow's reported results).
    let hot_blocks = quantized
        .iter()
        .find(|c| c.deployed.is_some())
        .and_then(|c| c.deploy(Target::Maupiti).ok())
        .and_then(|d| d.hottest_blocks(sample_frame, 5).ok())
        .unwrap_or_default();
    TelemetryReport {
        enabled: pcount_telemetry::enabled(),
        phases,
        inference_latency_ns: pcount_telemetry::histogram("deploy/frame_latency_ns")
            .summary_since(&baselines.latency),
        frames: pcount_telemetry::counter("deploy/frames")
            .value()
            .saturating_sub(baselines.frames),
        frame_faults: pcount_telemetry::counter("deploy/frame_faults")
            .value()
            .saturating_sub(baselines.faults),
        pool: pcount_runtime::current().utilization(),
        mem,
        pipeline,
        energy,
        hot_blocks,
        slo: SloSnapshot::capture_since(&baselines.slo),
    }
}

/// Deploys every candidate to MAUPITI and measures per-inference cycles,
/// latency and energy on `sample_frame` under the given memory-hierarchy
/// `model`, in parallel across `threads` workers (`0` = auto). Candidates
/// that do not fit on-chip keep `deployed = None`. [`run_flow`] calls
/// this with [`FlowConfig::mem_model`]; it is public so results can be
/// re-measured under a different hierarchy without re-training.
pub fn evaluate_deployments(
    candidates: &mut [CandidateModel],
    sample_frame: &[f32],
    model: MemoryModel,
    threads: usize,
) {
    let costs = parallel_map_folds(candidates.len(), threads, |i| {
        measure_deployment(&candidates[i], sample_frame, model)
    });
    for (candidate, cost) in candidates.iter_mut().zip(costs) {
        candidate.deployed = cost;
    }
}

/// Compiles and measures one candidate on the MAUPITI target.
fn measure_deployment(
    candidate: &CandidateModel,
    sample_frame: &[f32],
    model: MemoryModel,
) -> Option<DeployedCost> {
    let mut deployment = candidate.deploy(Target::Maupiti).ok()?;
    deployment.set_memory_model(model);
    let report = deployment.report(sample_frame).ok()?;
    let platform = result_from_report(PlatformSpec::MAUPITI, &report);
    Some(DeployedCost {
        target: Target::Maupiti,
        code_bytes: platform.code_bytes,
        data_bytes: platform.data_bytes,
        cycles: platform.cycles,
        instructions: report.instructions,
        sdotp: report.sdotp,
        latency_ms: platform.latency_ms,
        energy_uj: platform.energy_uj,
        mem: report.mem,
        energy: platform.energy,
        pipeline: report.pipeline,
    })
}

fn batched_predict(qat: &mut QatCnn, x: &Tensor) -> Vec<usize> {
    let n = x.shape()[0];
    let mut preds = Vec::with_capacity(n);
    let mut start = 0usize;
    while start < n {
        let end = (start + 256).min(n);
        let idx: Vec<usize> = (start..end).collect();
        let xb = pcount_nn::batch_select(x, &idx);
        preds.extend(qat.predict(&xb));
        start = end;
    }
    preds
}

/// Selects the three models deployed in Table I from the quantised
/// candidates: the most accurate (`Top`), the smallest within 5 BAS points
/// of the top (`-5%`) and the smallest overall (`Mini`).
///
/// Returns `None` if `candidates` is empty.
pub fn select_table1_models(
    candidates: &[CandidateModel],
) -> Option<(CandidateModel, CandidateModel, CandidateModel)> {
    if candidates.is_empty() {
        return None;
    }
    let top = candidates
        .iter()
        .max_by(|a, b| a.bas_majority.partial_cmp(&b.bas_majority).expect("finite"))?
        .clone();
    let mini = candidates.iter().min_by_key(|c| c.memory_bytes)?.clone();
    let minus5 = candidates
        .iter()
        .filter(|c| c.bas_majority >= top.bas_majority - 0.05)
        .min_by_key(|c| c.memory_bytes)?
        .clone();
    Some((top, minus5, mini))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pareto::pareto_front_by;

    #[test]
    fn quick_flow_produces_consistent_results() {
        let cfg = FlowConfig::quick();
        let result = run_flow(&cfg);
        assert_eq!(result.fp32_points.len(), cfg.lambdas.len());
        assert_eq!(
            result.quantized.len(),
            cfg.lambdas.len() * cfg.assignments.len()
        );
        // Accuracies are probabilities.
        for p in result
            .fp32_points
            .iter()
            .chain(std::iter::once(&result.seed_point))
        {
            assert!((0.0..=1.0).contains(&p.bas));
        }
        for c in &result.quantized {
            assert!((0.0..=1.0).contains(&c.bas));
            assert!((0.0..=1.0).contains(&c.bas_majority));
            assert!(c.memory_bytes > 0);
            assert!(c.macs > 0);
            // Quantised models are never larger than the FP32 seed.
            assert!(c.memory_bytes < cfg.seed_architecture.memory_bytes_fp32());
        }
        // The Pareto front of the quantised candidates is non-empty.
        let front = pareto_front_by(&result.quantized_points(), false);
        assert!(!front.is_empty());
        // Table-I model selection works.
        let (top, minus5, mini) = select_table1_models(&result.quantized).expect("models");
        assert!(top.bas_majority >= minus5.bas_majority - 1e-9);
        assert!(mini.memory_bytes <= minus5.memory_bytes);
        // The smallest candidate deploys onto the simulated sensor and
        // produces a real cycle measurement on the block-cached engine.
        let deployment = mini.deploy(Target::Maupiti).expect("mini fits on-chip");
        let report = deployment.report(&vec![0.5f32; 64]).expect("inference");
        assert!(report.cycles > 0);
        assert!(report.code_bytes <= 16 * 1024);
        // The deployment sweep measured cycle/energy numbers for every
        // candidate that fits on-chip, independent of the thread count.
        let rows = result.deployed_rows();
        assert!(!rows.is_empty(), "quick-flow candidates fit on-chip");
        for (candidate, cost) in &rows {
            assert_eq!(cost.target, Target::Maupiti);
            assert!(cost.cycles > 0);
            assert!(cost.instructions > 0);
            assert!(cost.latency_ms > 0.0);
            assert!(cost.energy_uj > 0.0);
            assert!(cost.code_bytes <= 16 * 1024);
            assert!(
                candidate.deployed.is_some(),
                "rows only list deployed candidates"
            );
        }
        // Under the default flat memory model the stall breakdown is
        // zero and all energy is core energy.
        for (_, cost) in &rows {
            assert_eq!(cost.mem, Default::default());
            assert_eq!(cost.energy.imem_uj, 0.0);
            assert_eq!(cost.energy.dmem_uj, 0.0);
        }
        // Deterministic across worker counts: a serial re-sweep measures
        // the exact same numbers.
        let mut serial = result.quantized.clone();
        // Match the sample frame run_flow used (the first search frame).
        let dataset = IrDataset::generate(&cfg.dataset, cfg.dataset_seed);
        let s1 = dataset.session_indices(0);
        let (x_s1, _) = dataset.gather_normalized(&s1);
        evaluate_deployments(&mut serial, &x_s1.data()[..64], cfg.mem_model, 1);
        for (a, b) in result.quantized.iter().zip(serial.iter()) {
            assert_eq!(
                a.deployed, b.deployed,
                "deployment sweep must be deterministic"
            );
        }
        // Re-measuring the same candidates under the Maupiti hierarchy
        // keeps every static metric but surfaces strictly higher cycle
        // counts with a non-zero stall breakdown in the deployed rows.
        let flat_costs: Vec<DeployedCost> = rows.iter().map(|&(_, cost)| cost.clone()).collect();
        let mut result = result;
        evaluate_deployments(
            &mut result.quantized,
            &x_s1.data()[..64],
            MemoryModel::maupiti(),
            1,
        );
        let maupiti_rows = result.deployed_rows();
        assert_eq!(maupiti_rows.len(), flat_costs.len());
        for (flat, (_, hier)) in flat_costs.iter().zip(maupiti_rows.iter()) {
            assert_eq!(flat.instructions, hier.instructions);
            assert_eq!(flat.code_bytes, hier.code_bytes);
            assert!(hier.cycles > flat.cycles, "stalls must cost cycles");
            assert!(hier.mem.fetch_misses > 0);
            assert!(hier.mem.contended_accesses > 0);
            assert_eq!(
                hier.cycles - flat.cycles,
                hier.mem.stall_cycles(),
                "the cycle delta is exactly the stall breakdown"
            );
            assert!(hier.energy.imem_uj > 0.0);
            assert!(hier.energy.dmem_uj > 0.0);
            assert!(hier.energy_uj > flat.energy_uj);
            assert!((hier.energy.total_uj() - hier.energy_uj).abs() < 1e-9);
        }
    }

    /// Asserts two flow results are identical in every observable metric.
    fn assert_flow_results_identical(a: &FlowResult, b: &FlowResult) {
        assert_eq!(a.seed_point, b.seed_point, "seed point diverged");
        assert_eq!(a.fp32_points, b.fp32_points, "fp32 front diverged");
        assert_eq!(a.majority_window, b.majority_window);
        assert_eq!(a.quantized.len(), b.quantized.len());
        for (ca, cb) in a.quantized.iter().zip(b.quantized.iter()) {
            assert_eq!(ca.label, cb.label);
            assert_eq!(ca.bas, cb.bas, "bas diverged for {}", ca.label);
            assert_eq!(
                ca.bas_majority, cb.bas_majority,
                "majority bas diverged for {}",
                ca.label
            );
            assert_eq!(ca.memory_bytes, cb.memory_bytes);
            assert_eq!(ca.macs, cb.macs);
            assert_eq!(ca.deployed, cb.deployed, "deployment diverged");
        }
    }

    #[test]
    fn run_flow_is_deterministic_across_train_thread_counts() {
        // Per-(λ, fold) derived RNG streams make the parallel λ sweep and
        // the parallel fold loops underneath consume exactly the same
        // randomness as the serial schedule, so `run_flow` must produce
        // bit-identical results for any `train_threads`. Two λ points and
        // two folds exercise both fan-out levels at once.
        let mut cfg = FlowConfig::quick();
        cfg.max_folds = 2;
        cfg.lambdas = vec![0.5, 2.0];
        cfg.assignments.truncate(2);
        cfg.nas.epochs = 2;
        cfg.nas.warmup_epochs = 1;
        cfg.train.epochs = 2;
        cfg.qat.epochs = 1;

        cfg.train_threads = 1;
        let serial = run_flow(&cfg);
        cfg.train_threads = 4;
        let parallel = run_flow(&cfg);
        assert_flow_results_identical(&serial, &parallel);
    }

    #[test]
    fn run_flow_is_deterministic_across_pool_sizes() {
        // The `POOL_THREADS` knob sizes the persistent runtime pool every
        // fan-out in the flow draws from (λ sweep, fold loops, GEMM
        // column strips, deployment sweep). Running the same flow under
        // explicitly installed pools of different widths must produce
        // identical results in every observable metric — the pool size is
        // a pure performance knob.
        let mut cfg = FlowConfig::quick();
        cfg.max_folds = 2;
        cfg.lambdas = vec![0.5, 2.0];
        cfg.assignments.truncate(2);
        cfg.nas.epochs = 2;
        cfg.nas.warmup_epochs = 1;
        cfg.train.epochs = 2;
        cfg.qat.epochs = 1;

        let serial_pool = pcount_runtime::Pool::new(1);
        let serial = pcount_runtime::install(&serial_pool, || run_flow(&cfg));
        let wide_pool = pcount_runtime::Pool::new(3);
        let parallel = pcount_runtime::install(&wide_pool, || run_flow(&cfg));
        assert_flow_results_identical(&serial, &parallel);
    }

    #[test]
    fn telemetry_is_observational_and_exports_a_valid_trace() {
        // The tentpole tripwire: enabling telemetry must never change any
        // computed result — logits, cycles, accuracies — only observe
        // them. Run the same flow with recording off and on, on the same
        // installed pool, and require bit-identical outputs.
        let mut cfg = FlowConfig::quick();
        cfg.assignments.truncate(1);
        cfg.nas.epochs = 2;
        cfg.nas.warmup_epochs = 1;
        cfg.train.epochs = 2;
        cfg.qat.epochs = 1;

        let pool = pcount_runtime::Pool::new(2);
        let baseline = pcount_runtime::install(&pool, || run_flow(&cfg));
        pcount_telemetry::set_enabled(true);
        let traced = pcount_runtime::install(&pool, || run_flow(&cfg));
        pcount_telemetry::set_enabled(false);
        assert_flow_results_identical(&baseline, &traced);

        // The traced run's report is fully populated.
        let t = &traced.telemetry;
        assert!(t.enabled);
        assert_eq!(
            t.phases.iter().map(|&(n, _)| n).collect::<Vec<_>>(),
            ["flow/seed_eval", "flow/lambda_sweep", "flow/deploy_sweep"],
        );
        assert!(t.phases.iter().all(|&(_, secs)| secs >= 0.0));
        assert!(t.inference_latency_ns.count > 0, "frames were timed");
        assert!(t.frames > 0);
        assert_eq!(t.frame_faults, 0, "healthy run has no simulator faults");
        assert!(t.pool.width >= 1);
        assert!(t.pool.total_tasks() > 0);
        assert!(!t.hot_blocks.is_empty(), "a candidate fits on-chip");
        assert!(t.pipeline.instructions > 0);
        pcount_telemetry::parse_json(&t.to_json()).expect("flow telemetry report is valid JSON");

        // The accumulated chrome trace parses and covers every flow
        // phase plus the pool and kernel spans underneath.
        let trace = pcount_telemetry::chrome_trace_json();
        let parsed = pcount_telemetry::parse_json(&trace).expect("chrome trace is valid JSON");
        let events = parsed
            .get("traceEvents")
            .and_then(|v| v.as_array())
            .expect("traceEvents array");
        assert!(!events.is_empty());
        let names: std::collections::HashSet<&str> = events
            .iter()
            .filter_map(|e| e.get("name").and_then(|n| n.as_str()))
            .collect();
        for required in [
            "flow/seed_eval",
            "flow/lambda_sweep",
            "flow/lambda_sweep/fold_train",
            "flow/deploy_sweep",
            "pool/task",
            "gemm",
            "conv_fwd",
        ] {
            assert!(names.contains(required), "trace missing span {required}");
        }
        assert!(parsed.get("counters").is_some());
        assert!(parsed.get("histograms").is_some());
    }

    #[test]
    fn snapshot_restore_round_trips_parameters() {
        let mut rng = StdRng::seed_from_u64(0);
        let cfg = CnnConfig::seed().with_channels(2, 2, 4);
        let mut net = cfg.build(&mut rng);
        let snapshot = snapshot_params(&mut net);
        // Perturb all parameters, then restore.
        for (p, _) in net.params_and_grads() {
            p.map_inplace(|v| v + 1.0);
        }
        restore_params(&mut net, &snapshot);
        let now = snapshot_params(&mut net);
        for (a, b) in now.iter().zip(snapshot.iter()) {
            assert!(a.approx_eq(b, 0.0));
        }
    }

    #[test]
    fn table1_selection_handles_empty_input() {
        assert!(select_table1_models(&[]).is_none());
    }
}
