//! Robustness measurement: accuracy-vs-fault-rate sweeps.
//!
//! [`evaluate_robustness`] injects a [`FaultPlan`] at a monotone sequence
//! of intensities, supervises each injected stream through a
//! [`ResilientDeployment`] and reports, per swept point, the realised
//! fault rate, the end-to-end accuracy of the *emitted* (smoothed/held)
//! predictions against the clean labels, and the recovery statistics.
//! The report serialises to the `BENCH_robust.json` schema.

use crate::deploy::{ResilienceConfig, ResilientDeployment};
use crate::fault::{FaultConfig, FaultPlan};
use pcount_isa::SimError;
use pcount_kernels::Deployment;
use pcount_telemetry::{SloBaseline, SloSnapshot};
use pcount_tensor::Tensor;

/// One swept intensity point of a robustness curve.
#[derive(Debug, Clone, PartialEq)]
pub struct RobustnessPoint {
    /// The intensity knob handed to [`FaultConfig::uniform`].
    pub intensity: f64,
    /// Realised fraction of ticks touched by at least one fault.
    pub fault_rate: f64,
    /// Ticks in the injected stream (drops keep slots, duplicates add).
    pub ticks: usize,
    /// Emitted-prediction accuracy against the clean per-source labels.
    pub accuracy: f64,
    /// Ticks recovered by a retry.
    pub recovered: usize,
    /// Ticks degraded to a fallback prediction.
    pub fallbacks: usize,
    /// Dropped-frame ticks.
    pub gaps: usize,
    /// Ticks shed by the circuit breaker.
    pub breaker_skips: usize,
    /// Circuit-breaker trips.
    pub breaker_trips: usize,
    /// Retry attempts beyond first tries.
    pub retries: u64,
    /// Error-budget burn of the stream (milli-units).
    pub error_budget_burn_milli: i64,
    /// Mean simulated recovery latency over faulted ticks, in
    /// milliseconds (backoff plus wasted core cycles; `0` when nothing
    /// faulted).
    pub mean_recovery_ms: f64,
}

impl RobustnessPoint {
    /// The point as a JSON object string.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"intensity\":{:.4},\"fault_rate\":{:.4},\"ticks\":{},\"accuracy\":{:.4},\
             \"recovered\":{},\"fallbacks\":{},\"gaps\":{},\"breaker_skips\":{},\
             \"breaker_trips\":{},\"retries\":{},\"error_budget_burn_milli\":{},\
             \"mean_recovery_ms\":{:.3}}}",
            self.intensity,
            self.fault_rate,
            self.ticks,
            self.accuracy,
            self.recovered,
            self.fallbacks,
            self.gaps,
            self.breaker_skips,
            self.breaker_trips,
            self.retries,
            self.error_budget_burn_milli,
            self.mean_recovery_ms
        )
    }
}

/// A full robustness sweep: one point per intensity (reported along the
/// monotone intensity axis) plus the SLO telemetry window of the sweep.
#[derive(Debug, Clone)]
pub struct RobustnessReport {
    /// Swept points, in strictly increasing intensity order.
    pub points: Vec<RobustnessPoint>,
    /// Accuracy of the zero-fault supervised stream (the floor faults
    /// degrade from).
    pub baseline_accuracy: f64,
    /// The `resilience/*` telemetry window over the whole sweep.
    pub slo: SloSnapshot,
}

impl RobustnessReport {
    /// The report as a JSON object string (the payload of
    /// `BENCH_robust.json`).
    pub fn to_json(&self) -> String {
        let points = self
            .points
            .iter()
            .map(RobustnessPoint::to_json)
            .collect::<Vec<_>>()
            .join(",");
        format!(
            "{{\"baseline_accuracy\":{:.4},\"points\":[{points}],\"slo\":{}}}",
            self.baseline_accuracy,
            self.slo.to_json()
        )
    }
}

/// Sweeps fault intensity over `frames`/`labels` and measures the
/// supervised stream at each point.
///
/// `intensities` must be strictly increasing (the curve is reported
/// along a monotone axis) and should start at `0.0` to anchor the
/// baseline; when it does not, the baseline point is measured anyway
/// (but not reported as a sweep point). Faults at every point are drawn
/// from `fault_seed`, so the whole sweep is reproducible.
///
/// # Errors
///
/// Propagates pool-warmup simulator faults ([`Deployment::make_pool`]);
/// the supervised streams themselves never abort.
///
/// # Panics
///
/// Panics if `intensities` is not strictly increasing or `labels` does
/// not match `frames`.
pub fn evaluate_robustness(
    deployment: &Deployment,
    frames: &Tensor,
    labels: &[usize],
    cfg: &ResilienceConfig,
    fault_seed: u64,
    intensities: &[f64],
    pool_threads: usize,
) -> Result<RobustnessReport, SimError> {
    assert_eq!(frames.shape()[0], labels.len(), "one label per frame");
    assert!(
        intensities.windows(2).all(|w| w[0] < w[1]),
        "intensities must be strictly increasing"
    );
    let sweep_baseline = SloBaseline::capture();
    let supervised = ResilientDeployment::new(deployment.clone(), cfg.clone());
    let run_point = |intensity: f64| -> Result<RobustnessPoint, SimError> {
        let plan = FaultPlan::new(fault_seed, FaultConfig::uniform(intensity));
        let stream = plan.inject(frames);
        let mut pool = deployment.make_pool(pool_threads)?;
        let report = supervised.run_stream(&stream, &mut pool);
        let correct = report
            .outcomes
            .iter()
            .filter(|o| o.emitted == labels[o.source_index])
            .count();
        let accuracy = if report.outcomes.is_empty() {
            0.0
        } else {
            correct as f64 / report.outcomes.len() as f64
        };
        let faulted = report.stats.recovered_ticks + report.stats.fallback_ticks;
        let mean_recovery_ms = if faulted == 0 {
            0.0
        } else {
            (report.stats.total_backoff_ms as f64
                + report.stats.wasted_cycles as f64 / cfg.clock_hz.max(1) as f64 * 1_000.0)
                / faulted as f64
        };
        Ok(RobustnessPoint {
            intensity,
            fault_rate: stream.fault_rate(),
            ticks: stream.ticks.len(),
            accuracy,
            recovered: report.stats.recovered_ticks,
            fallbacks: report.stats.fallback_ticks,
            gaps: report.stats.gap_ticks,
            breaker_skips: report.stats.breaker_skips,
            breaker_trips: report.stats.breaker_trips,
            retries: report.stats.retries,
            error_budget_burn_milli: report.error_budget_burn_milli,
            mean_recovery_ms,
        })
    };
    let baseline_accuracy = if intensities.first() == Some(&0.0) {
        // Reuse the first sweep point below; computed there.
        None
    } else {
        Some(run_point(0.0)?.accuracy)
    };
    let mut points = Vec::with_capacity(intensities.len());
    for &intensity in intensities {
        points.push(run_point(intensity)?);
    }
    let baseline_accuracy =
        baseline_accuracy.unwrap_or_else(|| points.first().map_or(0.0, |p| p.accuracy));
    Ok(RobustnessReport {
        points,
        baseline_accuracy,
        slo: SloSnapshot::capture_since(&sweep_baseline),
    })
}
