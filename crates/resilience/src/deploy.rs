//! Supervised streaming deployment: watchdog, retry/backoff, circuit
//! breaker, graceful degradation and pooled-CPU quarantine.
//!
//! [`ResilientDeployment`] wraps a [`Deployment`] and runs a
//! [`FaultyStream`] end to end without ever aborting: every tick yields a
//! [`FrameOutcome`], faulted inferences are retried under exponential
//! backoff with deterministic jitter, a circuit breaker sheds load after
//! consecutive unrecoverable faults, and unrecoverable ticks degrade to a
//! gap-aware hold-last-good prediction through [`MajorityVoter`] instead
//! of killing the stream.
//!
//! # Determinism
//!
//! The whole supervisor is deterministic and pool-width independent:
//!
//! * The breaker schedule is computed serially from the (deterministic)
//!   fault plan before any inference runs, so which ticks are shed never
//!   depends on execution timing.
//! * Each tick's inference attempts run on a pooled CPU that is restored
//!   from the pristine base before every attempt
//!   ([`pcount_isa::Cpu::restore_from`]), so a tick's result depends only
//!   on its own data — never on which worker ran it or on what faulted
//!   before it.
//! * Backoff jitter is drawn from per-`(tick, attempt)` `SplitMix64`
//!   streams, and the waits are *virtual* (recorded in simulated time,
//!   never slept), so wall clocks never enter any result.
//!
//! With fault injection disabled the per-tick [`InferenceRun`]s are
//! bit-identical to [`Deployment::run_frame`] (asserted by the chaos
//! suite).

use crate::fault::{FaultyStream, StallFault, Tick};
use pcount_isa::Cpu;
use pcount_kernels::{CpuPool, Deployment, InferenceRun, INSTRUCTION_BUDGET};
use pcount_postproc::MajorityVoter;
use pcount_telemetry::slo;
use pcount_telemetry::{ErrorBudget, SloBaseline, SloSnapshot};
use pcount_tensor::SplitMix64;

/// Bounded retry with exponential backoff and deterministic jitter.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Maximum retries after the first attempt (total attempts =
    /// `max_retries + 1`).
    pub max_retries: u32,
    /// Backoff before the first retry, in milliseconds.
    pub backoff_base_ms: u32,
    /// Backoff ceiling, in milliseconds.
    pub backoff_max_ms: u32,
    /// Jitter fraction: each wait is scaled by `1 + U[0, jitter_frac)`.
    pub jitter_frac: f32,
}

impl Default for RetryPolicy {
    /// Two retries, 50 ms base doubling to a 400 ms cap, 25% jitter.
    fn default() -> Self {
        Self {
            max_retries: 2,
            backoff_base_ms: 50,
            backoff_max_ms: 400,
            jitter_frac: 0.25,
        }
    }
}

impl RetryPolicy {
    /// Total attempts a tick is allowed (first try + retries).
    pub fn attempts_allowed(&self) -> u32 {
        self.max_retries + 1
    }
}

/// Circuit breaker: trips after a run of consecutive unrecoverable
/// faults, then sheds (skips) ticks for a cooldown window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BreakerConfig {
    /// Consecutive unrecoverable ticks that trip the breaker (`0`
    /// disables the breaker).
    pub trip_threshold: u32,
    /// Ticks shed after a trip before the breaker half-opens.
    pub cooldown_ticks: u32,
}

impl Default for BreakerConfig {
    /// Trip after 4 consecutive unrecoverable ticks, shed 8 ticks.
    fn default() -> Self {
        Self {
            trip_threshold: 4,
            cooldown_ticks: 8,
        }
    }
}

/// Configuration of a [`ResilientDeployment`].
#[derive(Debug, Clone, PartialEq)]
pub struct ResilienceConfig {
    /// Per-attempt watchdog budget in retired instructions (healthy
    /// attempts run under this; injected stalls reduce it per attempt).
    pub budget: u64,
    /// Retry/backoff policy.
    pub retry: RetryPolicy,
    /// Circuit-breaker policy.
    pub breaker: BreakerConfig,
    /// Majority-voter window of the degradation path.
    pub voter_window: usize,
    /// Error budget the stream is graded against.
    pub error_budget: ErrorBudget,
    /// Simulated core clock (Hz), converting wasted cycles to recovery
    /// latency. MAUPITI runs at 20 MHz.
    pub clock_hz: u64,
    /// Seed of the backoff-jitter streams.
    pub seed: u64,
}

impl Default for ResilienceConfig {
    fn default() -> Self {
        Self {
            budget: INSTRUCTION_BUDGET,
            retry: RetryPolicy::default(),
            breaker: BreakerConfig::default(),
            voter_window: 5,
            error_budget: ErrorBudget::default(),
            clock_hz: 20_000_000,
            seed: 0,
        }
    }
}

/// How one tick of a supervised stream ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TickStatus {
    /// First attempt succeeded.
    Ok,
    /// Succeeded after `failed_attempts` faulted attempts.
    Recovered {
        /// Attempts that faulted before the success.
        failed_attempts: u32,
    },
    /// Every attempt faulted; a degraded prediction was emitted.
    Fallback,
    /// The circuit breaker was open; the tick was shed unattempted.
    BreakerOpen,
    /// The frame never arrived (injected drop).
    Gap,
}

/// The supervised result of one stream tick.
#[derive(Debug, Clone, PartialEq)]
pub struct FrameOutcome {
    /// Tick index in the stream.
    pub tick: usize,
    /// Clean source frame this tick derived from.
    pub source_index: usize,
    /// How the tick ended.
    pub status: TickStatus,
    /// The successful inference, when one happened (`Ok`/`Recovered`).
    /// With faults disabled this is bit-identical to
    /// [`Deployment::run_frame`] on the same frame.
    pub run: Option<InferenceRun>,
    /// The prediction emitted downstream: the gap-aware majority vote on
    /// success, the hold-last-good value on degradation.
    pub emitted: usize,
    /// Virtual backoff waited across this tick's retries (ms).
    pub backoff_ms: u64,
}

/// Aggregate recovery statistics of one supervised stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RecoveryStats {
    /// Total ticks supervised.
    pub ticks: usize,
    /// Ticks whose first attempt succeeded.
    pub ok_ticks: usize,
    /// Ticks recovered by a retry.
    pub recovered_ticks: usize,
    /// Ticks that exhausted retries and fell back.
    pub fallback_ticks: usize,
    /// Dropped-frame ticks.
    pub gap_ticks: usize,
    /// Ticks shed by the open breaker.
    pub breaker_skips: usize,
    /// Times the breaker tripped.
    pub breaker_trips: usize,
    /// Retry attempts beyond first tries.
    pub retries: u64,
    /// Pooled-CPU resets forced by a faulted attempt.
    pub quarantines: u64,
    /// Total virtual backoff (ms).
    pub total_backoff_ms: u64,
    /// Simulated cycles burned by faulted attempts.
    pub wasted_cycles: u64,
}

impl RecoveryStats {
    /// Ticks that produced no fresh trusted prediction (gap, fallback or
    /// shed) — the frames graded against the error budget.
    pub fn degraded_ticks(&self) -> usize {
        self.gap_ticks + self.fallback_ticks + self.breaker_skips
    }
}

/// The full result of supervising one stream.
#[derive(Debug, Clone)]
pub struct StreamReport {
    /// Per-tick outcomes, in stream order.
    pub outcomes: Vec<FrameOutcome>,
    /// Aggregate recovery statistics.
    pub stats: RecoveryStats,
    /// Error-budget burn of this stream, in milli-units.
    pub error_budget_burn_milli: i64,
    /// The `resilience/*` telemetry window of this run (all zero when
    /// telemetry is disabled).
    pub slo: SloSnapshot,
}

/// What the serial pre-pass decided for a tick.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Planned {
    /// Dropped frame: nothing to run.
    Gap,
    /// Shed by the open breaker: nothing to run.
    Shed,
    /// Attempt the inference (with the tick's stall, if any).
    Run(Option<StallFault>),
}

/// Raw execution result of one frame's attempt loop
/// ([`ResilientDeployment::attempt_frame`]), before the serial fold turns
/// it into a [`FrameOutcome`]. Public so higher layers (the fleet serving
/// simulation) can reuse the supervised attempt loop per admitted frame
/// and do their own folding.
#[derive(Debug, Clone)]
pub struct AttemptOutcome {
    /// The successful inference, if any attempt succeeded.
    pub run: Option<InferenceRun>,
    /// Attempts that faulted (each forced a pooled-CPU restore).
    pub failed_attempts: u32,
    /// Simulated cycles burned by the faulted attempts.
    pub wasted_cycles: u64,
}

/// A [`Deployment`] wrapped in the resilience supervisor.
#[derive(Debug, Clone)]
pub struct ResilientDeployment {
    inner: Deployment,
    cfg: ResilienceConfig,
}

impl ResilientDeployment {
    /// Wraps `inner` with the supervisor policy `cfg`.
    pub fn new(inner: Deployment, cfg: ResilienceConfig) -> Self {
        Self { inner, cfg }
    }

    /// The wrapped deployment.
    pub fn inner(&self) -> &Deployment {
        &self.inner
    }

    /// The supervisor configuration.
    pub fn config(&self) -> &ResilienceConfig {
        &self.cfg
    }

    /// Supervises `stream` across `pool`, returning one outcome per tick.
    ///
    /// Never aborts: injected drops become gaps, unrecoverable faults
    /// become fallbacks, breaker-shed ticks hold the last good
    /// prediction. Results are bit-identical for every pool width.
    pub fn run_stream(&self, stream: &FaultyStream, pool: &mut CpuPool) -> StreamReport {
        let baseline = SloBaseline::capture();
        let (planned, planned_trips) = self.plan_breaker(&stream.ticks);
        let execs = self.execute(stream, &planned, pool);
        self.fold(stream, &planned, execs, planned_trips, &baseline)
    }

    /// Serial pre-pass: decides which ticks the breaker sheds. Operates
    /// on the *planned* fault schedule (a tick is unrecoverable when its
    /// injected stall outlasts every allowed attempt), so the schedule is
    /// a pure function of the plan and identical for every pool width.
    fn plan_breaker(&self, ticks: &[Tick]) -> (Vec<Planned>, usize) {
        let attempts_allowed = self.cfg.retry.attempts_allowed();
        let threshold = self.cfg.breaker.trip_threshold;
        let mut planned = Vec::with_capacity(ticks.len());
        let mut consecutive = 0u32;
        let mut cooldown = 0u32;
        let mut trips = 0usize;
        for tick in ticks {
            if tick.frame.is_none() {
                // A sensor gap is not a compute fault: it neither trips
                // nor heals the breaker.
                planned.push(Planned::Gap);
                continue;
            }
            if cooldown > 0 {
                cooldown -= 1;
                planned.push(Planned::Shed);
                continue;
            }
            planned.push(Planned::Run(tick.stall));
            let unrecoverable = tick
                .stall
                .is_some_and(|s| s.persistence >= attempts_allowed);
            if unrecoverable {
                consecutive += 1;
                if threshold > 0 && consecutive >= threshold {
                    trips += 1;
                    cooldown = self.cfg.breaker.cooldown_ticks;
                    consecutive = 0;
                }
            } else {
                consecutive = 0;
            }
        }
        (planned, trips)
    }

    /// Parallel phase: runs every scheduled tick's attempt loop across
    /// the pool. Tick `i` always executes on pool slot `i / chunk`, with
    /// the slot's CPU restored from the pristine base before every
    /// attempt, so each result is a pure function of the tick alone.
    fn execute(
        &self,
        stream: &FaultyStream,
        planned: &[Planned],
        pool: &mut CpuPool,
    ) -> Vec<Option<AttemptOutcome>> {
        let n = stream.ticks.len();
        let mut out: Vec<Option<AttemptOutcome>> = (0..n).map(|_| None).collect();
        if n == 0 {
            return out;
        }
        let (base, cpus) = pool.split_mut();
        let workers = cpus.len().max(1);
        let chunk = n.div_ceil(workers);
        let slots = pcount_runtime::SendPtr::new(out.as_mut_ptr());
        pcount_runtime::current().par_chunks_mut(cpus, 1, 0, |w, cpu_slot| {
            let cpu = &mut cpu_slot[0];
            let hi = ((w + 1) * chunk).min(n);
            for (i, plan) in planned.iter().enumerate().take(hi).skip(w * chunk) {
                let exec = match *plan {
                    Planned::Gap | Planned::Shed => None,
                    Planned::Run(stall) => {
                        let frame = stream.ticks[i]
                            .frame
                            .as_deref()
                            .expect("Run ticks carry data");
                        Some(self.attempt_frame(cpu, base, frame, stall))
                    }
                };
                // SAFETY: worker ranges are disjoint by construction, so
                // every slot has exactly one writer, and `out` is not
                // read until the pool group completes.
                unsafe { *slots.ptr().add(i) = exec };
            }
        });
        out
    }

    /// One frame's attempt loop on one pooled CPU. The CPU is restored
    /// from `base` before *every* attempt — a faulted attempt leaves a
    /// torn memory image and mid-program PC behind, and even a successful
    /// one leaves the CPU halted — so no architectural state ever leaks
    /// between attempts or frames. The result is a pure function of
    /// `(frame, stall)` and the retry policy: callers (including the
    /// fleet serving layer) may run many of these in parallel on disjoint
    /// pool slots and still fold deterministically.
    pub fn attempt_frame(
        &self,
        cpu: &mut Cpu,
        base: &Cpu,
        frame: &[f32],
        stall: Option<StallFault>,
    ) -> AttemptOutcome {
        let attempts_allowed = self.cfg.retry.attempts_allowed();
        let mut failed_attempts = 0u32;
        let mut wasted_cycles = 0u64;
        for attempt in 0..attempts_allowed {
            cpu.restore_from(base);
            let budget = match stall {
                Some(s) if attempt < s.persistence => s.budget.min(self.cfg.budget),
                _ => self.cfg.budget,
            };
            let before = cpu.cycles;
            match self.inner.run_frame_with_budget(cpu, frame, budget) {
                Ok(run) => {
                    return AttemptOutcome {
                        run: Some(run),
                        failed_attempts,
                        wasted_cycles,
                    };
                }
                Err(_) => {
                    failed_attempts += 1;
                    wasted_cycles += cpu.cycles.wrapping_sub(before);
                }
            }
        }
        AttemptOutcome {
            run: None,
            failed_attempts,
            wasted_cycles,
        }
    }

    /// Serial post-pass: folds raw executions into outcomes through the
    /// gap-aware voter, computes backoff/recovery accounting and records
    /// the SLO telemetry.
    fn fold(
        &self,
        stream: &FaultyStream,
        planned: &[Planned],
        execs: Vec<Option<AttemptOutcome>>,
        planned_trips: usize,
        baseline: &SloBaseline,
    ) -> StreamReport {
        let mut voter = MajorityVoter::new(self.cfg.voter_window.max(1));
        let mut last_good: Option<usize> = None;
        let mut stats = RecoveryStats {
            ticks: stream.ticks.len(),
            breaker_trips: planned_trips,
            ..Default::default()
        };
        let mut outcomes = Vec::with_capacity(stream.ticks.len());
        for (i, (tick, exec)) in stream.ticks.iter().zip(execs).enumerate() {
            for &class in &tick.faults {
                pcount_telemetry::counter(class.counter_name()).add(1);
            }
            let held = |voter: &mut MajorityVoter, last_good: Option<usize>| {
                voter.push_missing().or(last_good).unwrap_or(0)
            };
            let (status, run, emitted, backoff_ms) = match planned[i] {
                Planned::Gap => {
                    stats.gap_ticks += 1;
                    (TickStatus::Gap, None, held(&mut voter, last_good), 0)
                }
                Planned::Shed => {
                    stats.breaker_skips += 1;
                    pcount_telemetry::counter(slo::BREAKER_SKIPS).add(1);
                    (
                        TickStatus::BreakerOpen,
                        None,
                        held(&mut voter, last_good),
                        0,
                    )
                }
                Planned::Run(_) => {
                    let exec = exec.expect("Run ticks executed");
                    let retries = exec.failed_attempts.min(self.cfg.retry.max_retries);
                    let backoff_ms = self.total_backoff_ms(i, retries);
                    stats.retries += retries as u64;
                    stats.quarantines += exec.failed_attempts as u64;
                    stats.total_backoff_ms += backoff_ms;
                    stats.wasted_cycles += exec.wasted_cycles;
                    if retries > 0 {
                        pcount_telemetry::counter(slo::RETRIES).add(retries as u64);
                    }
                    if exec.failed_attempts > 0 {
                        pcount_telemetry::counter(slo::QUARANTINES)
                            .add(exec.failed_attempts as u64);
                        let recovery_ns = exec.wasted_cycles.saturating_mul(1_000_000_000)
                            / self.cfg.clock_hz.max(1)
                            + backoff_ms * 1_000_000;
                        pcount_telemetry::histogram(slo::RECOVERY_LATENCY).record(recovery_ns);
                    }
                    match exec.run {
                        Some(run) => {
                            let emitted = voter.push(run.prediction);
                            last_good = Some(emitted);
                            if exec.failed_attempts == 0 {
                                stats.ok_ticks += 1;
                                (TickStatus::Ok, Some(run), emitted, backoff_ms)
                            } else {
                                stats.recovered_ticks += 1;
                                (
                                    TickStatus::Recovered {
                                        failed_attempts: exec.failed_attempts,
                                    },
                                    Some(run),
                                    emitted,
                                    backoff_ms,
                                )
                            }
                        }
                        None => {
                            stats.fallback_ticks += 1;
                            pcount_telemetry::counter(slo::FALLBACK_FRAMES).add(1);
                            (
                                TickStatus::Fallback,
                                None,
                                held(&mut voter, last_good),
                                backoff_ms,
                            )
                        }
                    }
                }
            };
            outcomes.push(FrameOutcome {
                tick: i,
                source_index: tick.source_index,
                status,
                run,
                emitted,
                backoff_ms,
            });
        }
        if planned_trips > 0 {
            pcount_telemetry::counter(slo::BREAKER_TRIPS).add(planned_trips as u64);
        }
        let burn = self
            .cfg
            .error_budget
            .burn_milli(stats.degraded_ticks() as u64, stats.ticks as u64);
        pcount_telemetry::gauge(slo::ERROR_BUDGET_BURN).set(burn);
        StreamReport {
            outcomes,
            stats,
            error_budget_burn_milli: burn,
            slo: SloSnapshot::capture_since(baseline),
        }
    }

    /// Total virtual backoff of `retries` retry waits on tick `i`:
    /// exponential from the base, capped, with deterministic per-attempt
    /// jitter — recorded in simulated time, never slept. Public so the
    /// fleet layer can charge the same deterministic backoff to frames it
    /// retried through [`Self::attempt_frame`].
    pub fn total_backoff_ms(&self, tick: usize, retries: u32) -> u64 {
        let policy = &self.cfg.retry;
        let mut total = 0u64;
        for attempt in 1..=retries {
            let exp = policy
                .backoff_base_ms
                .saturating_mul(1u32.checked_shl(attempt - 1).unwrap_or(u32::MAX))
                .min(policy.backoff_max_ms) as f64;
            let mut rng = SplitMix64::new(
                self.cfg.seed
                    ^ (tick as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    ^ (attempt as u64).wrapping_mul(0xBF58_476D_1CE4_E5B9),
            );
            let jitter = 1.0 + policy.jitter_frac as f64 * rng.next_f32() as f64;
            total += (exp * jitter).round() as u64;
        }
        total
    }
}

/// The emitted (smoothed/held) prediction sequence of a report.
pub fn emitted_predictions(report: &StreamReport) -> Vec<usize> {
    report.outcomes.iter().map(|o| o.emitted).collect()
}
