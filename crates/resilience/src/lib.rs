//! Deterministic fault injection and supervised streaming deployment
//! (`pcount-resilience`).
//!
//! The paper's pipeline assumes a clean 10 FPS IR stream; real fleets
//! drop frames, saturate, jitter their clocks and stall. This crate makes
//! that failure surface first-class, in three layers:
//!
//! 1. **Fault injection** ([`FaultPlan`]): a seeded, pure transform that
//!    corrupts a clean frame tensor into a [`FaultyStream`] — dropped and
//!    duplicated frames, stuck/dead pixels, saturation bursts, additive
//!    noise, clock jitter and injected simulator stalls — reproducible
//!    bit-for-bit at any thread count.
//! 2. **Supervision** ([`ResilientDeployment`]): wraps a
//!    [`pcount_kernels::Deployment`] with a per-frame watchdog budget,
//!    bounded retry with exponential backoff and deterministic jitter, a
//!    circuit breaker, gap-aware hold-last-good degradation through
//!    [`pcount_postproc::MajorityVoter`], and quarantine (pristine-state
//!    restore) of every pooled CPU a fault touched. A supervised stream
//!    never aborts, and with faults disabled its per-tick inferences are
//!    bit-identical to the unwrapped deployment.
//! 3. **Measurement** ([`evaluate_robustness`]): sweeps fault intensity
//!    into accuracy-vs-fault-rate curves plus recovery statistics (the
//!    `BENCH_robust.json` payload), recording the
//!    `pcount_telemetry::slo` counters along the way.

mod deploy;
mod fault;
mod robustness;

pub use deploy::{
    emitted_predictions, AttemptOutcome, BreakerConfig, FrameOutcome, RecoveryStats,
    ResilienceConfig, ResilientDeployment, RetryPolicy, StreamReport, TickStatus,
};
pub use fault::{FaultClass, FaultConfig, FaultPlan, FaultyStream, StallFault, Tick};
pub use robustness::{evaluate_robustness, RobustnessPoint, RobustnessReport};
