//! Deterministic fault injection over an IR frame stream.
//!
//! A [`FaultPlan`] is a pure, seeded transform: given the same seed,
//! configuration and clean frame tensor it always produces the same
//! [`FaultyStream`], regardless of thread count or call site — the same
//! reproducibility discipline as the rest of the flow (per-decision
//! `SplitMix64` streams derived from one root seed). Every fault class
//! draws from its own per-frame stream, so enabling one class never
//! shifts the random decisions of another.

use pcount_tensor::{SplitMix64, Tensor};

/// The multiplier of the per-frame stream derivation (the same golden
///-ratio constant the flow's `derive_seed` uses).
const STREAM_MUL: u64 = 0x9E37_79B9_7F4A_7C15;

/// The fault classes the injector can apply to a stream.
///
/// The discriminant order matches
/// [`pcount_telemetry::slo::FAULT_CLASS_COUNTERS`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultClass {
    /// The frame never arrives (sensor dropped it).
    Drop,
    /// The frame arrives twice (sensor/link re-delivery).
    Duplicate,
    /// A handful of pixels read a dead constant.
    StuckPixels,
    /// A burst of pixels clips at the sensor's saturation level.
    Saturation,
    /// Additive wide-band noise over the whole frame.
    NoiseBurst,
    /// The frame's timestamp jitters off the nominal clock grid.
    ClockJitter,
    /// The simulated core stalls: the inference exceeds a reduced
    /// instruction budget and times out (transiently).
    Stall,
}

impl FaultClass {
    /// Every class, in discriminant order.
    pub const ALL: [FaultClass; 7] = [
        FaultClass::Drop,
        FaultClass::Duplicate,
        FaultClass::StuckPixels,
        FaultClass::Saturation,
        FaultClass::NoiseBurst,
        FaultClass::ClockJitter,
        FaultClass::Stall,
    ];

    /// Stable lowercase name (JSON keys, counter names).
    pub fn name(self) -> &'static str {
        match self {
            FaultClass::Drop => "drop",
            FaultClass::Duplicate => "duplicate",
            FaultClass::StuckPixels => "stuck_pixels",
            FaultClass::Saturation => "saturation",
            FaultClass::NoiseBurst => "noise_burst",
            FaultClass::ClockJitter => "clock_jitter",
            FaultClass::Stall => "stall",
        }
    }

    /// The telemetry counter this class increments per injected event.
    pub fn counter_name(self) -> &'static str {
        pcount_telemetry::slo::FAULT_CLASS_COUNTERS[self.index()]
    }

    /// The class's position in [`FaultClass::ALL`].
    pub fn index(self) -> usize {
        FaultClass::ALL
            .iter()
            .position(|&c| c == self)
            .expect("class in ALL")
    }
}

/// Per-class fault rates and magnitudes of a [`FaultPlan`].
///
/// Rates are per-frame probabilities in `[0, 1]`; magnitudes have units
/// noted per field. [`FaultConfig::off`] disables everything;
/// [`FaultConfig::uniform`] scales all classes from one intensity knob
/// (the axis `evaluate_robustness` sweeps).
#[derive(Debug, Clone, PartialEq)]
pub struct FaultConfig {
    /// Probability a frame is dropped.
    pub drop_rate: f64,
    /// Probability a frame is delivered twice.
    pub duplicate_rate: f64,
    /// Probability a frame carries stuck/dead pixels.
    pub stuck_rate: f64,
    /// Probability a frame carries a saturation burst.
    pub saturation_rate: f64,
    /// Probability a frame carries an additive noise burst.
    pub noise_rate: f64,
    /// Probability a frame's timestamp jitters.
    pub jitter_rate: f64,
    /// Probability a frame's inference stalls on the core.
    pub stall_rate: f64,
    /// Pixels frozen per stuck-pixel event.
    pub stuck_pixels: usize,
    /// Value saturated pixels clip to (normalised frame units; people
    /// blobs peak around 3).
    pub saturation_level: f32,
    /// Standard deviation of the additive noise (normalised units).
    pub noise_sigma: f32,
    /// Maximum timestamp jitter magnitude, in milliseconds.
    pub jitter_ms: u32,
    /// Instruction budget while a stall is active — far below a healthy
    /// inference, so stalled attempts end in `SimError::Timeout`.
    pub stall_budget: u64,
    /// Maximum number of consecutive attempts a stall persists for (the
    /// actual persistence of each event is drawn in `1..=max`).
    pub stall_persistence_max: u32,
}

impl FaultConfig {
    /// No faults at all: the injected stream is the clean stream.
    pub fn off() -> Self {
        Self {
            drop_rate: 0.0,
            duplicate_rate: 0.0,
            stuck_rate: 0.0,
            saturation_rate: 0.0,
            noise_rate: 0.0,
            jitter_rate: 0.0,
            stall_rate: 0.0,
            ..Self::uniform(0.0)
        }
    }

    /// All classes scaled from one `intensity` knob in `[0, 1]`: each
    /// class rate is `intensity` times a fixed per-class weight, with the
    /// default magnitudes. `uniform(0.0)` equals [`FaultConfig::off`].
    pub fn uniform(intensity: f64) -> Self {
        Self {
            drop_rate: 0.5 * intensity,
            duplicate_rate: 0.3 * intensity,
            stuck_rate: 0.4 * intensity,
            saturation_rate: 0.3 * intensity,
            noise_rate: 0.6 * intensity,
            jitter_rate: 0.8 * intensity,
            stall_rate: 0.4 * intensity,
            stuck_pixels: 6,
            saturation_level: 4.0,
            noise_sigma: 0.8,
            jitter_ms: 40,
            stall_budget: 20_000,
            stall_persistence_max: 2,
        }
    }

    /// `true` when every class rate is zero.
    pub fn is_off(&self) -> bool {
        FaultClass::ALL.iter().all(|&c| self.rate(c) == 0.0)
    }

    /// The per-frame rate of `class`.
    pub fn rate(&self, class: FaultClass) -> f64 {
        match class {
            FaultClass::Drop => self.drop_rate,
            FaultClass::Duplicate => self.duplicate_rate,
            FaultClass::StuckPixels => self.stuck_rate,
            FaultClass::Saturation => self.saturation_rate,
            FaultClass::NoiseBurst => self.noise_rate,
            FaultClass::ClockJitter => self.jitter_rate,
            FaultClass::Stall => self.stall_rate,
        }
    }
}

/// An injected transient core stall attached to a tick: attempts made
/// while the stall persists run under the reduced [`StallFault::budget`]
/// and time out; the stall clears after [`StallFault::persistence`]
/// attempts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StallFault {
    /// Instruction budget of a stalled attempt.
    pub budget: u64,
    /// Number of attempts the stall outlasts (1 = only the first attempt
    /// stalls; a retry then succeeds).
    pub persistence: u32,
}

/// One delivery slot of a faulty stream.
#[derive(Debug, Clone, PartialEq)]
pub struct Tick {
    /// Index of the clean source frame this tick was derived from.
    pub source_index: usize,
    /// Delivery timestamp in milliseconds (nominal grid plus any jitter).
    pub timestamp_ms: i64,
    /// The (possibly corrupted) frame data, or `None` for a dropped
    /// frame.
    pub frame: Option<Vec<f32>>,
    /// Injected core stall, if any.
    pub stall: Option<StallFault>,
    /// The fault classes applied to this tick (empty = clean delivery).
    pub faults: Vec<FaultClass>,
}

impl Tick {
    /// `true` when no fault touched this tick.
    pub fn is_clean(&self) -> bool {
        self.faults.is_empty()
    }
}

/// The result of injecting a [`FaultPlan`] into a clean frame stream.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultyStream {
    /// Delivery slots in temporal order. Drops keep their slot (with no
    /// data); duplicates add a slot.
    pub ticks: Vec<Tick>,
    /// Nominal frame period of the stream, in milliseconds.
    pub frame_period_ms: u32,
}

impl FaultyStream {
    /// Fraction of ticks touched by at least one fault.
    pub fn fault_rate(&self) -> f64 {
        if self.ticks.is_empty() {
            return 0.0;
        }
        let faulted = self.ticks.iter().filter(|t| !t.is_clean()).count();
        faulted as f64 / self.ticks.len() as f64
    }

    /// Per-class injected event counts, in [`FaultClass::ALL`] order.
    pub fn fault_counts(&self) -> [u64; 7] {
        let mut counts = [0u64; 7];
        for tick in &self.ticks {
            for &class in &tick.faults {
                counts[class.index()] += 1;
            }
        }
        counts
    }
}

/// A seeded, pure fault-injection plan over an IR frame stream.
///
/// Determinism guarantee: `inject` is a function of `(seed, config,
/// frames)` alone. Each `(frame, class)` pair draws from its own derived
/// `SplitMix64` stream, so the decision for one frame or class never
/// perturbs any other — the injection is reproducible at any thread
/// count and composable with the flow's seed discipline.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    seed: u64,
    cfg: FaultConfig,
}

impl FaultPlan {
    /// A plan applying `cfg` with randomness derived from `seed`.
    pub fn new(seed: u64, cfg: FaultConfig) -> Self {
        Self { seed, cfg }
    }

    /// The plan's configuration.
    pub fn config(&self) -> &FaultConfig {
        &self.cfg
    }

    /// The plan's root seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The independent random stream of `(frame, class)`.
    fn stream(&self, frame: usize, class: FaultClass) -> SplitMix64 {
        SplitMix64::new(
            self.seed
                ^ (frame as u64 + 1).wrapping_mul(STREAM_MUL)
                ^ (class.index() as u64 + 1).wrapping_mul(0xD1B5_4A32_D192_ED03),
        )
    }

    /// Whether `class` fires on `frame`; on `true` the stream is left
    /// positioned after the trigger draw, ready for magnitude draws.
    fn fires(&self, frame: usize, class: FaultClass) -> Option<SplitMix64> {
        let rate = self.cfg.rate(class);
        if rate <= 0.0 {
            return None;
        }
        let mut rng = self.stream(frame, class);
        if (rng.next_f32() as f64) < rate {
            Some(rng)
        } else {
            None
        }
    }

    /// Applies the plan to a clean `[N, 1, H, W]` frame tensor at the
    /// default 10 FPS (100 ms frame period).
    pub fn inject(&self, frames: &Tensor) -> FaultyStream {
        self.inject_with_period(frames, 100)
    }

    /// [`FaultPlan::inject`] with an explicit nominal frame period.
    pub fn inject_with_period(&self, frames: &Tensor, frame_period_ms: u32) -> FaultyStream {
        let n = frames.shape()[0];
        let pixels: usize = frames.shape()[1..].iter().product();
        let mut ticks = Vec::with_capacity(n);
        for i in 0..n {
            let source = &frames.data()[i * pixels..(i + 1) * pixels];
            let mut faults = Vec::new();
            let mut timestamp_ms = i as i64 * frame_period_ms as i64;
            if let Some(mut rng) = self.fires(i, FaultClass::ClockJitter) {
                faults.push(FaultClass::ClockJitter);
                let span = 2 * self.cfg.jitter_ms as i64 + 1;
                timestamp_ms += (rng.next_u64() % span as u64) as i64 - self.cfg.jitter_ms as i64;
            }
            if self.fires(i, FaultClass::Drop).is_some() {
                faults.push(FaultClass::Drop);
                ticks.push(Tick {
                    source_index: i,
                    timestamp_ms,
                    frame: None,
                    stall: None,
                    faults,
                });
                continue;
            }
            let mut data = source.to_vec();
            if let Some(mut rng) = self.fires(i, FaultClass::StuckPixels) {
                faults.push(FaultClass::StuckPixels);
                for _ in 0..self.cfg.stuck_pixels.min(pixels) {
                    let p = (rng.next_u64() % pixels as u64) as usize;
                    data[p] = 0.0;
                }
            }
            if let Some(mut rng) = self.fires(i, FaultClass::Saturation) {
                faults.push(FaultClass::Saturation);
                // A contiguous burst of hot pixels, as a blinding heat
                // source sweeping the array would produce.
                let len = 1 + (rng.next_u64() % (pixels as u64 / 2).max(1)) as usize;
                let start = (rng.next_u64() % pixels as u64) as usize;
                for k in 0..len {
                    data[(start + k) % pixels] = self.cfg.saturation_level;
                }
            }
            if let Some(mut rng) = self.fires(i, FaultClass::NoiseBurst) {
                faults.push(FaultClass::NoiseBurst);
                for v in data.iter_mut() {
                    *v += rng.next_normal() * self.cfg.noise_sigma;
                }
            }
            let stall = self.fires(i, FaultClass::Stall).map(|mut rng| {
                faults.push(FaultClass::Stall);
                StallFault {
                    budget: self.cfg.stall_budget,
                    persistence: 1
                        + (rng.next_u64() % self.cfg.stall_persistence_max.max(1) as u64) as u32,
                }
            });
            let duplicate = self.fires(i, FaultClass::Duplicate).is_some();
            ticks.push(Tick {
                source_index: i,
                timestamp_ms,
                frame: Some(data.clone()),
                stall,
                faults: faults.clone(),
            });
            if duplicate {
                // The re-delivered copy is its own tick, half a period
                // later, and carries the Duplicate marker (the original
                // delivery above does not).
                ticks.push(Tick {
                    source_index: i,
                    timestamp_ms: timestamp_ms + frame_period_ms as i64 / 2,
                    frame: Some(data),
                    stall: None,
                    faults: vec![FaultClass::Duplicate],
                });
            }
        }
        FaultyStream {
            ticks,
            frame_period_ms,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frames(n: usize) -> Tensor {
        let mut data = Vec::with_capacity(n * 64);
        for i in 0..n {
            for p in 0..64 {
                data.push(((i * 64 + p) % 7) as f32 * 0.3 - 0.9);
            }
        }
        Tensor::from_vec(data, &[n, 1, 8, 8])
    }

    #[test]
    fn off_plan_is_the_identity_transform() {
        let x = frames(12);
        let stream = FaultPlan::new(42, FaultConfig::off()).inject(&x);
        assert_eq!(stream.ticks.len(), 12);
        assert_eq!(stream.fault_rate(), 0.0);
        for (i, tick) in stream.ticks.iter().enumerate() {
            assert_eq!(tick.source_index, i);
            assert_eq!(tick.timestamp_ms, i as i64 * 100);
            assert_eq!(tick.frame.as_deref(), Some(&x.data()[i * 64..(i + 1) * 64]));
            assert!(tick.stall.is_none());
            assert!(tick.is_clean());
        }
    }

    #[test]
    fn injection_is_bit_reproducible() {
        let x = frames(40);
        let plan = FaultPlan::new(7, FaultConfig::uniform(0.3));
        assert_eq!(plan.inject(&x), plan.inject(&x));
    }

    #[test]
    fn different_seeds_differ() {
        let x = frames(40);
        let cfg = FaultConfig::uniform(0.3);
        let a = FaultPlan::new(1, cfg.clone()).inject(&x);
        let b = FaultPlan::new(2, cfg).inject(&x);
        assert_ne!(a, b);
    }

    #[test]
    fn every_class_fires_at_full_intensity() {
        let x = frames(200);
        let stream = FaultPlan::new(3, FaultConfig::uniform(1.0)).inject(&x);
        let counts = stream.fault_counts();
        for (class, &count) in FaultClass::ALL.iter().zip(counts.iter()) {
            assert!(count > 0, "{} never fired over 200 frames", class.name());
        }
        assert!(stream.fault_rate() > 0.5);
    }

    #[test]
    fn enabling_one_class_does_not_shift_another() {
        // Stall decisions must be identical whether or not drops are
        // enabled: each class draws from its own stream.
        let x = frames(60);
        let mut only_stall = FaultConfig::off();
        only_stall.stall_rate = 0.5;
        let mut both = only_stall.clone();
        both.drop_rate = 0.5;
        let a = FaultPlan::new(9, only_stall).inject(&x);
        let b = FaultPlan::new(9, both).inject(&x);
        for (ta, tb) in a
            .ticks
            .iter()
            .zip(b.ticks.iter().filter(|t| t.frame.is_some()))
        {
            // Among surviving (non-dropped) ticks of the same source
            // frame, the stall decision matches.
            if ta.source_index == tb.source_index {
                assert_eq!(ta.stall, tb.stall, "frame {}", ta.source_index);
            }
        }
    }

    #[test]
    fn drops_keep_their_slot_and_duplicates_add_one() {
        let x = frames(100);
        let mut cfg = FaultConfig::off();
        cfg.drop_rate = 0.3;
        cfg.duplicate_rate = 0.3;
        let stream = FaultPlan::new(5, cfg).inject(&x);
        let counts = stream.fault_counts();
        let drops = counts[FaultClass::Drop.index()];
        let dups = counts[FaultClass::Duplicate.index()];
        assert!(drops > 0 && dups > 0);
        assert_eq!(stream.ticks.len() as u64, 100 + dups);
        let gaps = stream.ticks.iter().filter(|t| t.frame.is_none()).count();
        assert_eq!(gaps as u64, drops);
        // Source indices stay sorted (temporal order survives).
        let sources: Vec<usize> = stream.ticks.iter().map(|t| t.source_index).collect();
        assert!(sources.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn stall_persistence_is_within_the_configured_bound() {
        let x = frames(120);
        let mut cfg = FaultConfig::off();
        cfg.stall_rate = 0.8;
        cfg.stall_persistence_max = 3;
        let stream = FaultPlan::new(11, cfg).inject(&x);
        let stalls: Vec<StallFault> = stream.ticks.iter().filter_map(|t| t.stall).collect();
        assert!(!stalls.is_empty());
        assert!(stalls.iter().all(|s| (1..=3).contains(&s.persistence)));
        assert!(stalls.iter().all(|s| s.budget == 20_000));
    }
}
