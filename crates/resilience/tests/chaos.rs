//! Chaos suite for the resilience layer.
//!
//! The acceptance bar of the robustness subsystem: with fault injection
//! disabled the supervised stream is bit-identical to the plain
//! [`Deployment`]; with faults at a fixed seed the results reproduce
//! across pool widths 1 and 4; no injected fault class can abort the
//! stream; and a faulted frame can never leak corrupted CPU state into a
//! later frame's logits.

use pcount_kernels::{Deployment, Target};
use pcount_nn::{CnnConfig, TrainConfig};
use pcount_quant::{fold_sequential, Precision, PrecisionAssignment, QatCnn, QuantizedCnn};
use pcount_resilience::{
    evaluate_robustness, FaultClass, FaultConfig, FaultPlan, ResilienceConfig, ResilientDeployment,
    StallFault, TickStatus,
};
use pcount_tensor::Tensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A small trained + quantised CNN and a batch of sample frames.
fn deployed_model(seed: u64, n: usize) -> (QuantizedCnn, Tensor, Vec<usize>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut x = Tensor::zeros(&[n, 1, 8, 8]);
    let mut y = Vec::with_capacity(n);
    for i in 0..n {
        let class = rng.gen_range(0..4usize);
        x.set(&[i, 0, 2 + class, 3], 3.0);
        for h in 0..8 {
            for w in 0..8 {
                let v = x.at(&[i, 0, h, w]) + rng.gen_range(-0.2..0.2);
                x.set(&[i, 0, h, w], v);
            }
        }
        y.push(class);
    }
    let cfg = CnnConfig::seed().with_channels(6, 6, 12);
    let mut net = cfg.build(&mut rng);
    let tc = TrainConfig {
        epochs: 2,
        batch_size: 12,
        learning_rate: 2e-3,
        weight_decay: 0.0,
        verbose: false,
    };
    let _ = pcount_nn::train_classifier(&mut net, &x, &y, &tc, &mut rng);
    let folded = fold_sequential(cfg, &net).expect("fold");
    let mut qat = QatCnn::from_folded(&folded, PrecisionAssignment::uniform(Precision::Int8));
    qat.calibrate(&x);
    (QuantizedCnn::from_qat(&qat), x, y)
}

fn frame(x: &Tensor, i: usize) -> &[f32] {
    &x.data()[i * 64..(i + 1) * 64]
}

#[test]
fn faults_off_is_bit_identical_to_the_plain_deployment() {
    let (model, x, _) = deployed_model(30, 16);
    let d = Deployment::new(&model, Target::Maupiti).expect("deploy");
    let stream = FaultPlan::new(99, FaultConfig::off()).inject(&x);
    let supervised = ResilientDeployment::new(d.clone(), ResilienceConfig::default());
    let mut pool = d.make_pool(2).expect("pool");
    let report = supervised.run_stream(&stream, &mut pool);
    assert_eq!(report.outcomes.len(), 16);
    assert_eq!(report.stats.degraded_ticks(), 0);
    assert_eq!(report.error_budget_burn_milli, 0);
    for (i, outcome) in report.outcomes.iter().enumerate() {
        assert_eq!(outcome.status, TickStatus::Ok);
        assert_eq!(outcome.backoff_ms, 0);
        let clean = d.run_frame(frame(&x, i)).expect("clean run");
        // Bit-identical: logits, prediction, cycles, instret, sdotp,
        // pipeline and memory stats all compare equal.
        assert_eq!(outcome.run.as_ref(), Some(&clean), "tick {i}");
    }
}

#[test]
fn fixed_seed_faults_reproduce_across_pool_widths_1_and_4() {
    let (model, x, _) = deployed_model(31, 20);
    let d = Deployment::new(&model, Target::Maupiti).expect("deploy");
    let stream = FaultPlan::new(5, FaultConfig::uniform(0.35)).inject(&x);
    // The injection itself is bit-reproducible across runs.
    assert_eq!(
        stream,
        FaultPlan::new(5, FaultConfig::uniform(0.35)).inject(&x)
    );
    let supervised = ResilientDeployment::new(d.clone(), ResilienceConfig::default());
    let mut reports = Vec::new();
    for width in [1usize, 4] {
        let runtime_pool = pcount_runtime::Pool::new(width);
        let report = pcount_runtime::install(&runtime_pool, || {
            let mut pool = d.make_pool(width).expect("pool");
            supervised.run_stream(&stream, &mut pool)
        });
        reports.push(report);
    }
    let (a, b) = (&reports[0], &reports[1]);
    assert_eq!(a.outcomes, b.outcomes, "outcomes diverged across widths");
    assert_eq!(a.stats, b.stats, "stats diverged across widths");
    assert_eq!(a.error_budget_burn_milli, b.error_budget_burn_milli);
}

#[test]
fn no_single_fault_class_can_abort_the_stream() {
    let (model, x, _) = deployed_model(32, 12);
    let d = Deployment::new(&model, Target::Maupiti).expect("deploy");
    let supervised = ResilientDeployment::new(d.clone(), ResilienceConfig::default());
    for class in FaultClass::ALL {
        let mut cfg = FaultConfig::off();
        match class {
            FaultClass::Drop => cfg.drop_rate = 0.9,
            FaultClass::Duplicate => cfg.duplicate_rate = 0.9,
            FaultClass::StuckPixels => cfg.stuck_rate = 0.9,
            FaultClass::Saturation => cfg.saturation_rate = 0.9,
            FaultClass::NoiseBurst => cfg.noise_rate = 0.9,
            FaultClass::ClockJitter => cfg.jitter_rate = 0.9,
            FaultClass::Stall => {
                cfg.stall_rate = 0.9;
                cfg.stall_persistence_max = 5; // often unrecoverable
            }
        }
        let stream = FaultPlan::new(17, cfg).inject(&x);
        let mut pool = d.make_pool(2).expect("pool");
        let report = supervised.run_stream(&stream, &mut pool);
        // The stream ran to completion and emitted a prediction per tick.
        assert_eq!(
            report.outcomes.len(),
            stream.ticks.len(),
            "{} stream aborted early",
            class.name()
        );
        assert!(
            report.stats.ok_ticks
                + report.stats.recovered_ticks
                + report.stats.fallback_ticks
                + report.stats.gap_ticks
                + report.stats.breaker_skips
                == report.stats.ticks,
            "{} outcome accounting leaks ticks",
            class.name()
        );
    }
}

#[test]
fn a_faulted_frame_cannot_perturb_the_next_frames_logits() {
    let (model, x, _) = deployed_model(33, 8);
    let d = Deployment::new(&model, Target::Maupiti).expect("deploy");
    // Hand-craft a stream: frame 3 carries an unrecoverable stall (its
    // every attempt times out mid-inference, leaving torn CPU state
    // behind each time); every other frame is clean.
    let mut stream = FaultPlan::new(0, FaultConfig::off()).inject(&x);
    stream.ticks[3].stall = Some(StallFault {
        budget: 20_000,
        persistence: u32::MAX,
    });
    stream.ticks[3].faults.push(FaultClass::Stall);
    let supervised = ResilientDeployment::new(d.clone(), ResilienceConfig::default());
    // Width 1 forces every tick through the *same* pooled CPU — the
    // worst case for state leakage out of the faulted frame.
    let runtime_pool = pcount_runtime::Pool::new(1);
    let report = pcount_runtime::install(&runtime_pool, || {
        let mut pool = d.make_pool(1).expect("pool");
        supervised.run_stream(&stream, &mut pool)
    });
    assert_eq!(report.outcomes[3].status, TickStatus::Fallback);
    assert!(report.stats.quarantines > 0, "faulted CPU was never reset");
    for i in (0..8).filter(|&i| i != 3) {
        let clean = d.run_frame(frame(&x, i)).expect("clean run");
        assert_eq!(
            report.outcomes[i].run.as_ref(),
            Some(&clean),
            "frame {i} perturbed by the fault on frame 3"
        );
    }
}

#[test]
fn transient_stalls_recover_through_retries() {
    let (model, x, _) = deployed_model(34, 6);
    let d = Deployment::new(&model, Target::Maupiti).expect("deploy");
    let mut stream = FaultPlan::new(0, FaultConfig::off()).inject(&x);
    // Persistence 1 < allowed attempts (3): the first retry succeeds.
    stream.ticks[2].stall = Some(StallFault {
        budget: 10_000,
        persistence: 1,
    });
    stream.ticks[2].faults.push(FaultClass::Stall);
    let supervised = ResilientDeployment::new(d.clone(), ResilienceConfig::default());
    let mut pool = d.make_pool(2).expect("pool");
    let report = supervised.run_stream(&stream, &mut pool);
    assert_eq!(
        report.outcomes[2].status,
        TickStatus::Recovered { failed_attempts: 1 }
    );
    assert!(report.outcomes[2].backoff_ms > 0, "no backoff recorded");
    assert_eq!(report.stats.retries, 1);
    assert_eq!(report.stats.fallback_ticks, 0);
    // The recovered inference is still the bit-exact clean result.
    let clean = d.run_frame(frame(&x, 2)).expect("clean run");
    assert_eq!(report.outcomes[2].run.as_ref(), Some(&clean));
}

#[test]
fn consecutive_unrecoverable_faults_trip_the_breaker() {
    let (model, x, _) = deployed_model(35, 24);
    let d = Deployment::new(&model, Target::Maupiti).expect("deploy");
    let mut stream = FaultPlan::new(0, FaultConfig::off()).inject(&x);
    // Ticks 4..12 all carry unrecoverable stalls: with the default
    // threshold of 4 the breaker trips and sheds the following ticks.
    for i in 4..12 {
        stream.ticks[i].stall = Some(StallFault {
            budget: 10_000,
            persistence: u32::MAX,
        });
        stream.ticks[i].faults.push(FaultClass::Stall);
    }
    let supervised = ResilientDeployment::new(d.clone(), ResilienceConfig::default());
    let mut pool = d.make_pool(2).expect("pool");
    let report = supervised.run_stream(&stream, &mut pool);
    assert!(report.stats.breaker_trips > 0, "breaker never tripped");
    assert!(report.stats.breaker_skips > 0, "breaker shed nothing");
    assert!(report
        .outcomes
        .iter()
        .any(|o| o.status == TickStatus::BreakerOpen));
    // Shedding keeps emitting held predictions; after the faulty window
    // the stream recovers to fresh inferences.
    assert_eq!(report.outcomes.len(), 24);
    assert!(report.outcomes[20..]
        .iter()
        .all(|o| o.status == TickStatus::Ok));
    assert!(report.error_budget_burn_milli > 0);
}

#[test]
fn dropped_frames_hold_the_last_good_prediction() {
    let (model, x, _) = deployed_model(36, 10);
    let d = Deployment::new(&model, Target::Maupiti).expect("deploy");
    let mut cfg = FaultConfig::off();
    cfg.drop_rate = 0.5;
    let stream = FaultPlan::new(21, cfg).inject(&x);
    let gaps = stream.ticks.iter().filter(|t| t.frame.is_none()).count();
    assert!(gaps > 0, "seed produced no drops");
    let supervised = ResilientDeployment::new(d.clone(), ResilienceConfig::default());
    let mut pool = d.make_pool(2).expect("pool");
    let report = supervised.run_stream(&stream, &mut pool);
    assert_eq!(report.stats.gap_ticks, gaps);
    for outcome in &report.outcomes {
        if outcome.status == TickStatus::Gap {
            assert!(outcome.run.is_none());
            // The emitted value is always defined (hold-last-good or the
            // empty-room default) — a gap never kills the output stream.
            assert!(outcome.emitted < 4);
        }
    }
}

#[test]
fn robustness_sweep_reports_monotone_intensities_and_bounded_degradation() {
    let (model, x, y) = deployed_model(37, 18);
    let d = Deployment::new(&model, Target::Maupiti).expect("deploy");
    let report = evaluate_robustness(
        &d,
        &x,
        &y,
        &ResilienceConfig::default(),
        123,
        &[0.0, 0.2, 0.5],
        2,
    )
    .expect("sweep");
    assert_eq!(report.points.len(), 3);
    assert!(report
        .points
        .windows(2)
        .all(|w| w[0].intensity < w[1].intensity));
    assert_eq!(report.points[0].fault_rate, 0.0);
    assert!(report.points[1].fault_rate <= report.points[2].fault_rate);
    assert_eq!(report.baseline_accuracy, report.points[0].accuracy);
    for p in &report.points {
        assert!((0.0..=1.0).contains(&p.accuracy), "accuracy out of range");
    }
    let json = report.to_json();
    assert!(json.contains("\"baseline_accuracy\""));
    assert!(json.contains("\"points\""));
    assert!(json.contains("\"slo\""));
    assert!(json.contains("\"error_budget_burn_milli\""));
    // Reproducible: the identical sweep serialises identically.
    let again = evaluate_robustness(
        &d,
        &x,
        &y,
        &ResilienceConfig::default(),
        123,
        &[0.0, 0.2, 0.5],
        4,
    )
    .expect("sweep");
    assert_eq!(json, again.to_json());
}
