//! Quantisation precisions and elementary quantisation helpers.

use pcount_tensor::Tensor;

/// A supported integer precision: the MAUPITI core provides 8x8-bit and
/// 4x4-bit SDOTP instructions only, so these are the only two options.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Precision {
    /// 4-bit signed integers (values in `[-7, 7]`).
    Int4,
    /// 8-bit signed integers (values in `[-127, 127]`).
    Int8,
}

impl Precision {
    /// Number of bits.
    pub fn bits(self) -> u32 {
        match self {
            Precision::Int4 => 4,
            Precision::Int8 => 8,
        }
    }

    /// Largest representable magnitude under symmetric quantisation
    /// (the most negative code is unused so the range is symmetric).
    pub fn qmax(self) -> i32 {
        match self {
            Precision::Int4 => 7,
            Precision::Int8 => 127,
        }
    }

    /// How many values of this precision fit in one byte.
    pub fn values_per_byte(self) -> usize {
        match self {
            Precision::Int4 => 2,
            Precision::Int8 => 1,
        }
    }

    /// Bytes needed to store `count` values at this precision.
    pub fn storage_bytes(self, count: usize) -> usize {
        count.div_ceil(self.values_per_byte())
    }

    /// Short label used in precision-assignment strings ("4" or "8").
    pub fn label(self) -> &'static str {
        match self {
            Precision::Int4 => "4",
            Precision::Int8 => "8",
        }
    }
}

impl std::fmt::Display for Precision {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "INT{}", self.bits())
    }
}

/// Quantises a single value symmetrically: `clamp(round(v / scale))`.
pub fn quantize_value(value: f32, scale: f32, qmax: i32) -> i32 {
    let q = (value / scale).round();
    (q as i32).clamp(-qmax, qmax)
}

/// Range-based symmetric per-tensor weight scale: `max|w| / qmax`.
///
/// Returns a small positive floor if the tensor is all zeros so division by
/// the scale never produces NaN.
pub fn weight_scale(weights: &Tensor, precision: Precision) -> f32 {
    let max_abs = weights
        .data()
        .iter()
        .fold(0.0f32, |acc, &v| acc.max(v.abs()));
    (max_abs / precision.qmax() as f32).max(1e-8)
}

/// Quantise-dequantise a slice in place: `v ← round(v / scale)·scale`,
/// clamped to `±qmax` codes.
///
/// This is the shared vectorised kernel under all QAT fake quantisation:
/// the clamp bounds and scales are hoisted out of the loop and the body is
/// branch-free, so the compiler turns it into straight SIMD. For inputs
/// whose codes fit in `i32` (always true for weights and clipped
/// activations, whose scale is derived from their own maximum) the results
/// are bit-identical to the scalar [`quantize_value`] path.
pub fn fake_quant_slice(values: &mut [f32], scale: f32, qmax: i32) {
    let qmax_f = qmax as f32;
    for v in values {
        *v = (*v / scale).round().clamp(-qmax_f, qmax_f) * scale;
    }
}

/// Quantises and immediately dequantises a tensor ("fake quantisation"),
/// the operation simulated during QAT. Rides [`fake_quant_slice`].
pub fn fake_quant_tensor(t: &Tensor, scale: f32, qmax: i32) -> Tensor {
    let mut out = t.clone();
    fake_quant_slice(out.data_mut(), scale, qmax);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn precision_constants_match_bit_widths() {
        assert_eq!(Precision::Int4.bits(), 4);
        assert_eq!(Precision::Int8.bits(), 8);
        assert_eq!(Precision::Int4.qmax(), 7);
        assert_eq!(Precision::Int8.qmax(), 127);
        assert_eq!(Precision::Int4.to_string(), "INT4");
    }

    #[test]
    fn storage_bytes_packs_nibbles() {
        assert_eq!(Precision::Int4.storage_bytes(9), 5);
        assert_eq!(Precision::Int4.storage_bytes(8), 4);
        assert_eq!(Precision::Int8.storage_bytes(9), 9);
        assert_eq!(Precision::Int8.storage_bytes(0), 0);
    }

    #[test]
    fn quantize_value_clamps_to_range() {
        assert_eq!(quantize_value(100.0, 1.0, 7), 7);
        assert_eq!(quantize_value(-100.0, 1.0, 7), -7);
        assert_eq!(quantize_value(0.6, 1.0, 7), 1);
        assert_eq!(quantize_value(-0.6, 1.0, 7), -1);
        assert_eq!(quantize_value(0.0, 1.0, 7), 0);
    }

    #[test]
    fn weight_scale_covers_extremes() {
        let w = Tensor::from_vec(vec![-2.0, 0.5, 1.0], &[3]);
        let s8 = weight_scale(&w, Precision::Int8);
        assert!((s8 - 2.0 / 127.0).abs() < 1e-7);
        let s4 = weight_scale(&w, Precision::Int4);
        assert!((s4 - 2.0 / 7.0).abs() < 1e-7);
    }

    #[test]
    fn weight_scale_of_zero_tensor_is_positive() {
        let w = Tensor::zeros(&[4]);
        assert!(weight_scale(&w, Precision::Int8) > 0.0);
    }

    #[test]
    fn fake_quant_is_idempotent() {
        let t = Tensor::from_vec(vec![-1.0, -0.3, 0.0, 0.7, 2.0], &[5]);
        let scale = weight_scale(&t, Precision::Int4);
        let once = fake_quant_tensor(&t, scale, 7);
        let twice = fake_quant_tensor(&once, scale, 7);
        assert!(once.approx_eq(&twice, 1e-6));
    }

    proptest! {
        #[test]
        fn int8_fake_quant_error_is_bounded_by_half_scale(
            vals in proptest::collection::vec(-10.0f32..10.0, 1..64)
        ) {
            let n = vals.len();
            let t = Tensor::from_vec(vals, &[n]);
            let scale = weight_scale(&t, Precision::Int8);
            let fq = fake_quant_tensor(&t, scale, 127);
            for (a, b) in t.data().iter().zip(fq.data().iter()) {
                prop_assert!((a - b).abs() <= scale * 0.5 + 1e-6);
            }
        }

        #[test]
        fn quantized_codes_stay_in_range(v in -100.0f32..100.0, scale in 0.01f32..5.0) {
            for p in [Precision::Int4, Precision::Int8] {
                let q = quantize_value(v, scale, p.qmax());
                prop_assert!(q.abs() <= p.qmax());
            }
        }
    }
}
