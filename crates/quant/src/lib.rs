//! Mixed-precision quantisation for the MAUPITI people-counting CNN.
//!
//! This crate implements the precision-optimisation step of the paper's
//! flow:
//!
//! 1. **Batch-norm folding** into the preceding convolution
//!    ([`fold_sequential`]).
//! 2. **Quantisation-aware training** with range-based symmetric weight
//!    quantisation and learnable-clipping (PACT-style) activation
//!    quantisation ([`QatCnn`]).
//! 3. **Layer-wise mixed precision**: every layer picks INT4 or INT8 for
//!    its weights *and* input activations jointly (MAUPITI only supports
//!    4x4-bit and 8x8-bit SDOTP), with the first layer pinned at INT8
//!    ([`PrecisionAssignment`]).
//! 4. **Integer conversion**: a pure-integer inference model
//!    ([`QuantizedCnn`]) that is bit-exact with the RISC-V kernels in
//!    `pcount-kernels` and serves as their golden reference.
//!
//! ## Simplification relative to the paper
//!
//! Both weights and activations use *symmetric signed* quantisation
//! (zero-point 0). Post-ReLU activations therefore only occupy the
//! non-negative half of the code space; QAT compensates for the small
//! resolution loss. This keeps the SDOTP kernels free of zero-point
//! bookkeeping while preserving the INT8-vs-INT4 accuracy/memory trade-off
//! shape the paper reports.

mod fake;
mod fold;
mod int;
mod mixed;
mod qat;
mod qparams;

pub use fake::FakeQuantAct;
pub use fold::{fold_conv_bn, fold_sequential, FoldError, FoldedCnn};
pub use int::{QuantizedCnn, QuantizedLayer, RequantParams};
pub use mixed::{explore_precisions, MixedPrecisionResult, PrecisionAssignment};
pub use qat::{qat_finetune, QatCnn, QatConfig};
pub use qparams::{fake_quant_slice, fake_quant_tensor, quantize_value, weight_scale, Precision};
