//! Fake (simulated) quantisation of activations with a learnable clipping
//! range, in the spirit of PACT.

use crate::qparams::Precision;
use pcount_tensor::Tensor;

/// Learnable-clipping activation fake-quantiser.
///
/// Forward: `y = round(clamp(x, -α, α) / s) * s` with `s = α / qmax`.
/// Backward (straight-through estimator):
/// `dL/dx = dL/dy` where `|x| < α`, 0 elsewhere;
/// `dL/dα = Σ dL/dy · sign(x)` over the clipped positions.
///
/// `α` is stored as a 1-element [`Tensor`] so the standard optimisers can
/// update it together with the weights.
#[derive(Debug, Clone)]
pub struct FakeQuantAct {
    /// Precision of the produced activation codes.
    pub precision: Precision,
    /// Learnable clipping threshold (1-element tensor).
    pub alpha: Tensor,
    /// Accumulated gradient of `alpha`.
    pub alpha_grad: Tensor,
    /// When `false` the layer is a pass-through recording the maximum
    /// absolute activation into `observed_max` (calibration mode).
    pub enabled: bool,
    /// Largest absolute input observed while calibrating.
    pub observed_max: f32,
    cached_input: Option<Tensor>,
}

impl FakeQuantAct {
    /// Creates a quantiser with an initial clipping range.
    pub fn new(precision: Precision, initial_alpha: f32) -> Self {
        Self {
            precision,
            alpha: Tensor::from_vec(vec![initial_alpha.max(1e-3)], &[1]),
            alpha_grad: Tensor::zeros(&[1]),
            enabled: true,
            observed_max: 0.0,
            cached_input: None,
        }
    }

    /// Current clipping threshold.
    pub fn alpha_value(&self) -> f32 {
        self.alpha.data()[0].max(1e-3)
    }

    /// Current quantisation scale `α / qmax`.
    pub fn scale(&self) -> f32 {
        self.alpha_value() / self.precision.qmax() as f32
    }

    /// Adopts the observed calibration maximum as the clipping threshold.
    pub fn adopt_calibration(&mut self) {
        if self.observed_max > 0.0 {
            self.alpha.data_mut()[0] = self.observed_max;
        }
    }

    /// Forward pass (fake quantisation or calibration pass-through).
    ///
    /// The quantisation runs as one in-place slice sweep with all
    /// constants hoisted (clip, divide-round, re-scale) — branch-free, so
    /// it vectorises; QAT spends a large share of its forward time here.
    pub fn forward(&mut self, x: &Tensor) -> Tensor {
        if !self.enabled {
            let max_abs = x.data().iter().fold(0.0f32, |m, &v| m.max(v.abs()));
            self.observed_max = self.observed_max.max(max_abs);
            return x.clone();
        }
        self.cached_input = Some(x.clone());
        let alpha = self.alpha_value();
        let scale = self.scale();
        let qmax = self.precision.qmax();
        let mut out = x.clone();
        for v in out.data_mut() {
            *v = v.clamp(-alpha, alpha);
        }
        crate::qparams::fake_quant_slice(out.data_mut(), scale, qmax);
        out
    }

    /// Backward pass; accumulates the `α` gradient and returns `dL/dx`.
    ///
    /// The straight-through estimator is computed branchlessly over the
    /// slice: per element, a ±1/0 clip indicator both masks the input
    /// gradient and weights the `α` gradient contribution, so the loop has
    /// no data-dependent branches and vectorises.
    pub fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        if !self.enabled {
            return grad_out.clone();
        }
        let x = self
            .cached_input
            .as_ref()
            .expect("backward called before forward");
        let alpha = self.alpha_value();
        let mut grad_in = grad_out.clone();
        let mut alpha_g = 0.0f32;
        {
            let gi = grad_in.data_mut();
            for (g, &v) in gi.iter_mut().zip(x.data().iter()) {
                // +1 above the clip range, -1 below, 0 inside.
                let clip = (v >= alpha) as i32 - (v <= -alpha) as i32;
                alpha_g += clip as f32 * *g;
                *g *= (clip == 0) as i32 as f32;
            }
        }
        self.alpha_grad.data_mut()[0] += alpha_g;
        grad_in
    }

    /// Resets the accumulated `α` gradient.
    pub fn zero_grad(&mut self) {
        self.alpha_grad.fill(0.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn values_inside_range_are_quantised_to_grid() {
        let mut fq = FakeQuantAct::new(Precision::Int8, 1.0);
        let x = Tensor::from_vec(vec![0.5, -0.25, 0.0], &[3]);
        let y = fq.forward(&x);
        let scale = fq.scale();
        for (&orig, &q) in x.data().iter().zip(y.data().iter()) {
            assert!((orig - q).abs() <= scale * 0.5 + 1e-6);
            // The output is an integer multiple of the scale.
            let code = q / scale;
            assert!((code - code.round()).abs() < 1e-3);
        }
    }

    #[test]
    fn values_outside_range_are_clipped() {
        let mut fq = FakeQuantAct::new(Precision::Int4, 1.0);
        let y = fq.forward(&Tensor::from_vec(vec![5.0, -5.0], &[2]));
        assert!((y.data()[0] - 1.0).abs() < 1e-6);
        assert!((y.data()[1] + 1.0).abs() < 1e-6);
    }

    #[test]
    fn int4_is_coarser_than_int8() {
        let x = Tensor::from_vec((0..100).map(|i| i as f32 / 100.0).collect(), &[100]);
        let mut q4 = FakeQuantAct::new(Precision::Int4, 1.0);
        let mut q8 = FakeQuantAct::new(Precision::Int8, 1.0);
        let e4: f32 = q4.forward(&x).sub(&x).map(f32::abs).sum();
        let e8: f32 = q8.forward(&x).sub(&x).map(f32::abs).sum();
        assert!(
            e4 > e8 * 4.0,
            "int4 error {e4} should dwarf int8 error {e8}"
        );
    }

    #[test]
    fn gradient_is_blocked_outside_clip_range_and_flows_to_alpha() {
        let mut fq = FakeQuantAct::new(Precision::Int8, 1.0);
        let x = Tensor::from_vec(vec![0.5, 2.0, -3.0], &[3]);
        let _ = fq.forward(&x);
        let g = fq.backward(&Tensor::ones(&[3]));
        assert_eq!(g.data(), &[1.0, 0.0, 0.0]);
        // alpha grad = +1 (from 2.0) - 1 (from -3.0) = 0? No: sign convention
        // dL/dα = Σ g·sign(x) over clipped = 1*1 + 1*(-1) = 0.
        assert_eq!(fq.alpha_grad.data()[0], 0.0);
        fq.zero_grad();
        let _ = fq.forward(&x);
        let g = fq.backward(&Tensor::from_vec(vec![1.0, 1.0, -1.0], &[3]));
        assert_eq!(g.data(), &[1.0, 0.0, 0.0]);
        assert_eq!(fq.alpha_grad.data()[0], 2.0);
    }

    #[test]
    fn calibration_records_maximum_and_passes_through() {
        let mut fq = FakeQuantAct::new(Precision::Int8, 1.0);
        fq.enabled = false;
        let x = Tensor::from_vec(vec![0.5, -4.5, 2.0], &[3]);
        let y = fq.forward(&x);
        assert!(y.approx_eq(&x, 0.0));
        assert_eq!(fq.observed_max, 4.5);
        fq.adopt_calibration();
        assert_eq!(fq.alpha_value(), 4.5);
    }
}
