//! Layer-wise mixed-precision assignments and their exhaustive exploration.

use crate::fold::FoldedCnn;
use crate::qat::{qat_finetune, QatCnn, QatConfig};
use crate::qparams::Precision;
use pcount_nn::CnnConfig;
use pcount_tensor::Tensor;
use rand::Rng;

/// A per-layer precision assignment for the four parameterised layers
/// (conv1, conv2, fc1, fc2).
///
/// MAUPITI only supports 4x4-bit and 8x8-bit SDOTP operations, so weights
/// and input activations of a layer always share the layer's precision.
/// The paper additionally pins the first layer to INT8 because quantising
/// the sensor input to 4 bits destroys accuracy.
///
/// # Example
///
/// ```
/// use pcount_quant::{Precision, PrecisionAssignment};
/// let a = PrecisionAssignment::new([
///     Precision::Int8, Precision::Int4, Precision::Int4, Precision::Int8,
/// ]);
/// assert_eq!(a.to_string(), "INT 8-4-4-8");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PrecisionAssignment([Precision; 4]);

impl PrecisionAssignment {
    /// Creates an assignment from the four per-layer precisions.
    pub fn new(layers: [Precision; 4]) -> Self {
        Self(layers)
    }

    /// All layers at the same precision.
    pub fn uniform(p: Precision) -> Self {
        Self([p; 4])
    }

    /// The per-layer precisions in network order.
    pub fn layers(&self) -> [Precision; 4] {
        self.0
    }

    /// Every assignment with the first layer pinned at INT8 (the search
    /// space explored exhaustively by the paper): 8 combinations.
    pub fn first_layer_int8_combinations() -> Vec<Self> {
        let opts = [Precision::Int8, Precision::Int4];
        let mut out = Vec::with_capacity(8);
        for &p2 in &opts {
            for &p3 in &opts {
                for &p4 in &opts {
                    out.push(Self([Precision::Int8, p2, p3, p4]));
                }
            }
        }
        out
    }

    /// Model weight memory in bytes for `config` under this assignment:
    /// packed sub-byte weights plus 32-bit biases per layer.
    pub fn memory_bytes(&self, config: &CnnConfig) -> usize {
        config
            .layer_dims()
            .iter()
            .zip(self.0.iter())
            .map(|(dims, p)| p.storage_bytes(dims.weight_count()) + dims.out_features * 4)
            .sum()
    }

    /// Mean bit-width across layers, weighted by weight count (useful for
    /// reporting).
    pub fn mean_weight_bits(&self, config: &CnnConfig) -> f64 {
        let dims = config.layer_dims();
        let total: usize = dims.iter().map(|d| d.weight_count()).sum();
        let weighted: f64 = dims
            .iter()
            .zip(self.0.iter())
            .map(|(d, p)| d.weight_count() as f64 * p.bits() as f64)
            .sum();
        weighted / total.max(1) as f64
    }
}

impl std::fmt::Display for PrecisionAssignment {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "INT {}-{}-{}-{}",
            self.0[0].label(),
            self.0[1].label(),
            self.0[2].label(),
            self.0[3].label()
        )
    }
}

/// Outcome of fine-tuning and evaluating one precision assignment.
#[derive(Debug, Clone)]
pub struct MixedPrecisionResult {
    /// The evaluated assignment.
    pub assignment: PrecisionAssignment,
    /// Balanced accuracy on the evaluation split.
    pub bas: f64,
    /// Model weight memory in bytes.
    pub memory_bytes: usize,
    /// MAC count of the architecture (independent of precision).
    pub macs: usize,
    /// The fine-tuned fake-quantised network.
    pub network: QatCnn,
}

/// Runs QAT fine-tuning for every assignment in `assignments` and evaluates
/// each on `(x_eval, y_eval)`.
#[allow(clippy::too_many_arguments)]
pub fn explore_precisions<R: Rng>(
    folded: &FoldedCnn,
    assignments: &[PrecisionAssignment],
    x_train: &Tensor,
    y_train: &[usize],
    x_eval: &Tensor,
    y_eval: &[usize],
    cfg: &QatConfig,
    rng: &mut R,
) -> Vec<MixedPrecisionResult> {
    let num_classes = folded.config.num_classes;
    assignments
        .iter()
        .map(|&assignment| {
            let mut qat = QatCnn::from_folded(folded, assignment);
            let _ = qat_finetune(&mut qat, x_train, y_train, cfg, rng);
            let bas = qat.evaluate(x_eval, y_eval, num_classes);
            MixedPrecisionResult {
                assignment,
                bas,
                memory_bytes: assignment.memory_bytes(&folded.config),
                macs: folded.config.macs(),
                network: qat,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn combination_space_has_eight_entries_with_int8_first_layer() {
        let all = PrecisionAssignment::first_layer_int8_combinations();
        assert_eq!(all.len(), 8);
        assert!(all.iter().all(|a| a.layers()[0] == Precision::Int8));
        // All combinations are distinct.
        for (i, a) in all.iter().enumerate() {
            for b in &all[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }

    #[test]
    fn labels_follow_paper_notation() {
        assert_eq!(
            PrecisionAssignment::uniform(Precision::Int8).to_string(),
            "INT 8-8-8-8"
        );
        assert_eq!(
            PrecisionAssignment::new([
                Precision::Int8,
                Precision::Int4,
                Precision::Int4,
                Precision::Int4
            ])
            .to_string(),
            "INT 8-4-4-4"
        );
    }

    #[test]
    fn memory_decreases_with_lower_precision() {
        let cfg = CnnConfig::seed();
        let m8 = PrecisionAssignment::uniform(Precision::Int8).memory_bytes(&cfg);
        let m4 = PrecisionAssignment::uniform(Precision::Int4).memory_bytes(&cfg);
        let mixed = PrecisionAssignment::new([
            Precision::Int8,
            Precision::Int4,
            Precision::Int4,
            Precision::Int8,
        ])
        .memory_bytes(&cfg);
        assert!(m4 < mixed && mixed < m8);
        // INT8 memory is weights + 4-byte biases.
        assert_eq!(
            m8,
            cfg.layer_dims()
                .iter()
                .map(|d| d.weight_count() + d.out_features * 4)
                .sum::<usize>()
        );
    }

    #[test]
    fn mean_weight_bits_interpolates_between_4_and_8() {
        let cfg = CnnConfig::seed();
        assert_eq!(
            PrecisionAssignment::uniform(Precision::Int8).mean_weight_bits(&cfg),
            8.0
        );
        assert_eq!(
            PrecisionAssignment::uniform(Precision::Int4).mean_weight_bits(&cfg),
            4.0
        );
        let mixed = PrecisionAssignment::new([
            Precision::Int8,
            Precision::Int4,
            Precision::Int8,
            Precision::Int8,
        ])
        .mean_weight_bits(&cfg);
        assert!(mixed > 4.0 && mixed < 8.0);
    }
}
