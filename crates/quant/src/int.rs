//! Pure-integer inference: the golden reference the RISC-V kernels must
//! reproduce bit-exactly.

use crate::mixed::PrecisionAssignment;
use crate::qat::QatCnn;
use crate::qparams::{weight_scale, Precision};
use pcount_nn::balanced_accuracy;
use pcount_tensor::Tensor;

/// Fixed-point requantisation parameters: `out = round((acc * mult) >> SHIFT)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RequantParams {
    /// Fixed-point multiplier.
    pub mult: i32,
    /// Right shift applied after the multiplication.
    pub shift: u32,
}

impl RequantParams {
    /// The shift used throughout the deployment flow (Q16 fixed point).
    pub const SHIFT: u32 = 16;

    /// Builds requantisation parameters mapping an accumulator at scale
    /// `acc_scale` to an output at scale `out_scale`.
    pub fn from_scales(acc_scale: f32, out_scale: f32) -> Self {
        let ratio = (acc_scale / out_scale) as f64;
        let mult = (ratio * f64::from(1u32 << Self::SHIFT)).round();
        Self {
            mult: mult.clamp(1.0, i32::MAX as f64) as i32,
            shift: Self::SHIFT,
        }
    }

    /// Applies the requantisation with the exact bit-level arithmetic the
    /// RISC-V kernels use: a 32x32 -> 64-bit multiplication split into
    /// high/low words, a 16-bit funnel shift and a round-to-nearest bit.
    pub fn apply(&self, acc: i32) -> i32 {
        let prod = i64::from(acc) * i64::from(self.mult);
        let hi = (prod >> 32) as i32;
        let lo = prod as u32;
        let shifted = (hi << (32 - self.shift)) | (lo >> self.shift) as i32;
        shifted + ((lo >> (self.shift - 1)) & 1) as i32
    }
}

/// One integer-quantised parameterised layer (convolution or linear).
#[derive(Debug, Clone)]
pub struct QuantizedLayer {
    /// Precision of this layer's weights and input activations.
    pub precision: Precision,
    /// Output channels / features.
    pub out_features: usize,
    /// Input channels / features.
    pub in_features: usize,
    /// Square kernel size (1 for linear layers).
    pub kernel: usize,
    /// Quantised weights, `[out][in][k][k]` row-major.
    pub weight_q: Vec<i8>,
    /// 32-bit bias at the accumulator scale.
    pub bias_q: Vec<i32>,
    /// Requantisation to the next layer's input scale (`None` for the
    /// output layer, whose raw accumulators are the logits).
    pub requant: Option<RequantParams>,
    /// Precision of the produced activations (`None` for the output layer).
    pub out_precision: Option<Precision>,
    /// Whether a ReLU follows (clamps requantised outputs at zero).
    pub relu: bool,
    /// Input activation scale.
    pub in_scale: f32,
    /// Weight scale.
    pub w_scale: f32,
    /// Output activation scale (accumulator scale for the output layer).
    pub out_scale: f32,
}

impl QuantizedLayer {
    /// Number of weights.
    pub fn weight_count(&self) -> usize {
        self.out_features * self.in_features * self.kernel * self.kernel
    }

    /// Bytes of packed weights plus 32-bit biases and requant parameters.
    pub fn storage_bytes(&self) -> usize {
        self.precision.storage_bytes(self.weight_count()) + self.out_features * 4 + 8
    }

    /// Requantises, applies the optional ReLU and clamps to the output
    /// precision's representable range.
    pub fn requantize(&self, acc: i32) -> i32 {
        match (self.requant, self.out_precision) {
            (Some(rq), Some(outp)) => {
                let mut v = rq.apply(acc);
                if self.relu {
                    v = v.max(0);
                }
                v.clamp(-outp.qmax(), outp.qmax())
            }
            _ => acc,
        }
    }
}

/// The fully integer-quantised people-counting CNN.
///
/// Activations and weights are symmetric signed integers; accumulators are
/// 32-bit. The forward pass performs exactly the operations the MAUPITI
/// kernels execute (including the fixed-point requantisation), so it serves
/// as the bit-exact golden model for `pcount-kernels`.
#[derive(Debug, Clone)]
pub struct QuantizedCnn {
    /// Architecture hyper-parameters.
    pub config: pcount_nn::CnnConfig,
    /// Per-layer precision assignment.
    pub assignment: PrecisionAssignment,
    /// Scale of the quantised sensor input.
    pub input_scale: f32,
    /// The four parameterised layers: conv1, conv2, fc1, fc2.
    pub layers: Vec<QuantizedLayer>,
}

impl QuantizedCnn {
    /// Converts a calibrated / fine-tuned [`QatCnn`] to integers.
    pub fn from_qat(qat: &QatCnn) -> Self {
        let p = qat.assignment.layers();
        let s_in1 = qat.input_q.scale();
        let s_act2 = qat.act_q2.scale();
        let s_act3 = qat.act_q3.scale();
        let s_act4 = qat.act_q4.scale();

        let conv1 = quantize_layer(
            &qat.conv1.weight,
            &qat.conv1.bias,
            p[0],
            3,
            s_in1,
            Some((s_act2, p[1])),
            true,
        );
        let conv2 = quantize_layer(
            &qat.conv2.weight,
            &qat.conv2.bias,
            p[1],
            3,
            s_act2,
            Some((s_act3, p[2])),
            true,
        );
        let fc1 = quantize_layer(
            &qat.fc1.weight,
            &qat.fc1.bias,
            p[2],
            1,
            s_act3,
            Some((s_act4, p[3])),
            true,
        );
        let fc2 = quantize_layer(&qat.fc2.weight, &qat.fc2.bias, p[3], 1, s_act4, None, false);

        Self {
            config: qat.config,
            assignment: qat.assignment,
            input_scale: s_in1,
            layers: vec![conv1, conv2, fc1, fc2],
        }
    }

    /// Quantises one raw 8x8 frame (already ambient-normalised) to the
    /// input precision.
    pub fn quantize_input(&self, frame: &[f32]) -> Vec<i8> {
        let qmax = self.layers[0].precision.qmax();
        frame
            .iter()
            .map(|&v| ((v / self.input_scale).round() as i32).clamp(-qmax, qmax) as i8)
            .collect()
    }

    /// Runs integer inference on a quantised input frame (`[1, 8, 8]` in
    /// CHW order) and returns the raw 32-bit logits.
    ///
    /// # Panics
    ///
    /// Panics if the input length does not match the expected frame size.
    pub fn forward_int(&self, input_q: &[i8]) -> Vec<i32> {
        let cfg = &self.config;
        let hw = cfg.input_size;
        assert_eq!(
            input_q.len(),
            cfg.input_channels * hw * hw,
            "bad input size"
        );
        // Layer 1: conv 3x3, pad 1, stride 1 on 8x8, then ReLU+requant, then
        // 2x2 max pool.
        let l1 = &self.layers[0];
        let conv1_out = conv2d_int(input_q, cfg.input_channels, hw, hw, l1);
        let pooled = maxpool2x2_int(&conv1_out, l1.out_features, hw, hw);
        let ph = hw / 2;
        // Layer 2: conv 3x3 pad 1 on 4x4.
        let l2 = &self.layers[1];
        let conv2_out = conv2d_int(&pooled, l1.out_features, ph, ph, l2);
        // Layer 3: fully connected over the flattened activations.
        let l3 = &self.layers[2];
        let fc1_out: Vec<i8> = linear_int_raw(&conv2_out, l3)
            .iter()
            .map(|&acc| l3.requantize(acc) as i8)
            .collect();
        // Layer 4: output layer, raw 32-bit accumulators are the logits.
        let l4 = &self.layers[3];
        linear_int_raw(&fc1_out, l4)
    }

    /// Predicts the class of one raw frame.
    pub fn predict_frame(&self, frame: &[f32]) -> usize {
        let q = self.quantize_input(frame);
        let logits = self.forward_int(&q);
        argmax_i32(&logits)
    }

    /// Predicts classes for a `[N, 1, 8, 8]` batch of raw frames.
    pub fn predict_batch(&self, x: &Tensor) -> Vec<usize> {
        let n = x.shape()[0];
        let pixels: usize = x.shape()[1..].iter().product();
        (0..n)
            .map(|i| self.predict_frame(&x.data()[i * pixels..(i + 1) * pixels]))
            .collect()
    }

    /// Balanced accuracy of the integer model on a labelled batch.
    pub fn evaluate(&self, x: &Tensor, y: &[usize], num_classes: usize) -> f64 {
        balanced_accuracy(&self.predict_batch(x), y, num_classes)
    }

    /// Total bytes of weights, biases and requantisation constants.
    pub fn weight_bytes(&self) -> usize {
        self.layers.iter().map(QuantizedLayer::storage_bytes).sum()
    }

    /// Total multiply-accumulate operations per inference.
    pub fn macs(&self) -> usize {
        self.config.macs()
    }
}

fn quantize_layer(
    weight: &Tensor,
    bias: &Tensor,
    precision: Precision,
    kernel: usize,
    in_scale: f32,
    output: Option<(f32, Precision)>,
    relu: bool,
) -> QuantizedLayer {
    let w_scale = weight_scale(weight, precision);
    let qmax = precision.qmax();
    let weight_q: Vec<i8> = weight
        .data()
        .iter()
        .map(|&v| ((v / w_scale).round() as i32).clamp(-qmax, qmax) as i8)
        .collect();
    let acc_scale = in_scale * w_scale;
    let bias_q: Vec<i32> = bias
        .data()
        .iter()
        .map(|&v| (v / acc_scale).round() as i32)
        .collect();
    let shape = weight.shape();
    let (out_features, in_features) = (shape[0], shape[1]);
    let (requant, out_precision, out_scale) = match output {
        Some((s_out, p_out)) => (
            Some(RequantParams::from_scales(acc_scale, s_out)),
            Some(p_out),
            s_out,
        ),
        None => (None, None, acc_scale),
    };
    QuantizedLayer {
        precision,
        out_features,
        in_features,
        kernel,
        weight_q,
        bias_q,
        requant,
        out_precision,
        relu,
        in_scale,
        w_scale,
        out_scale,
    }
}

/// 3x3, pad-1, stride-1 integer convolution over a CHW `i8` activation map.
fn conv2d_int(input: &[i8], in_ch: usize, h: usize, w: usize, layer: &QuantizedLayer) -> Vec<i8> {
    assert_eq!(layer.kernel, 3, "conv kernel must be 3");
    assert_eq!(layer.in_features, in_ch, "channel mismatch");
    let k = 3usize;
    let mut out = vec![0i8; layer.out_features * h * w];
    for co in 0..layer.out_features {
        let wbase_co = co * in_ch * k * k;
        for oy in 0..h {
            for ox in 0..w {
                let mut acc: i32 = layer.bias_q[co];
                for ci in 0..in_ch {
                    let ibase = ci * h * w;
                    let wbase = wbase_co + ci * k * k;
                    for ky in 0..k {
                        let iy = oy as isize + ky as isize - 1;
                        if iy < 0 || iy >= h as isize {
                            continue;
                        }
                        for kx in 0..k {
                            let ix = ox as isize + kx as isize - 1;
                            if ix < 0 || ix >= w as isize {
                                continue;
                            }
                            let xv = input[ibase + iy as usize * w + ix as usize] as i32;
                            let wv = layer.weight_q[wbase + ky * k + kx] as i32;
                            acc += xv * wv;
                        }
                    }
                }
                out[co * h * w + oy * w + ox] = layer.requantize(acc) as i8;
            }
        }
    }
    out
}

/// 2x2 stride-2 max pooling over a CHW `i8` map.
fn maxpool2x2_int(input: &[i8], ch: usize, h: usize, w: usize) -> Vec<i8> {
    let (ho, wo) = (h / 2, w / 2);
    let mut out = vec![0i8; ch * ho * wo];
    for c in 0..ch {
        for oy in 0..ho {
            for ox in 0..wo {
                let mut best = i8::MIN;
                for ky in 0..2 {
                    for kx in 0..2 {
                        let v = input[c * h * w + (oy * 2 + ky) * w + ox * 2 + kx];
                        best = best.max(v);
                    }
                }
                out[c * ho * wo + oy * wo + ox] = best;
            }
        }
    }
    out
}

/// Integer fully connected layer over an `i8` activation vector, returning
/// the raw 32-bit accumulators (bias included, no requantisation).
fn linear_int_raw(input: &[i8], layer: &QuantizedLayer) -> Vec<i32> {
    assert_eq!(layer.kernel, 1, "linear layers are 1x1");
    assert_eq!(input.len(), layer.in_features, "feature mismatch");
    let mut raw = vec![0i32; layer.out_features];
    for (o, acc_out) in raw.iter_mut().enumerate() {
        let mut acc = layer.bias_q[o];
        let base = o * layer.in_features;
        for (i, &x) in input.iter().enumerate() {
            acc += x as i32 * layer.weight_q[base + i] as i32;
        }
        *acc_out = acc;
    }
    raw
}

fn argmax_i32(v: &[i32]) -> usize {
    let mut best = 0usize;
    for (i, &x) in v.iter().enumerate() {
        if x > v[best] {
            best = i;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fold::fold_sequential;
    use crate::qat::{qat_finetune, QatConfig};
    use pcount_nn::{CnnConfig, TrainConfig};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn requant_params_apply_matches_float_rescaling() {
        let rq = RequantParams::from_scales(0.001, 0.05);
        for acc in [-100_000i32, -1234, 0, 17, 999, 250_000] {
            let expected = (acc as f64 * 0.001 / 0.05).round() as i32;
            let got = rq.apply(acc);
            assert!(
                (expected - got).abs() <= 1,
                "acc {acc}: expected ~{expected}, got {got}"
            );
        }
    }

    #[test]
    fn requant_rounding_is_to_nearest() {
        // mult = 2^15 -> effective scale 0.5 with SHIFT=16.
        let rq = RequantParams {
            mult: 1 << 15,
            shift: RequantParams::SHIFT,
        };
        assert_eq!(rq.apply(2), 1);
        assert_eq!(rq.apply(3), 2); // 1.5 rounds up
        assert_eq!(rq.apply(-2), -1);
    }

    fn toy_dataset(n: usize, rng: &mut StdRng) -> (Tensor, Vec<usize>) {
        let mut x = Tensor::zeros(&[n, 1, 8, 8]);
        let mut y = Vec::with_capacity(n);
        for i in 0..n {
            let class = rng.gen_range(0..4usize);
            let (cy, cx) = [(2, 2), (2, 6), (6, 2), (6, 6)][class];
            for dy in 0..2usize {
                for dx in 0..2usize {
                    x.set(&[i, 0, cy + dy - 1, cx + dx - 1], 3.0);
                }
            }
            y.push(class);
        }
        (x, y)
    }

    fn trained_quantized(
        assignment: PrecisionAssignment,
        rng: &mut StdRng,
    ) -> (QuantizedCnn, QatCnn, Tensor, Vec<usize>) {
        let (x, y) = toy_dataset(160, rng);
        let cfg = CnnConfig::seed().with_channels(4, 4, 8);
        let mut net = cfg.build(rng);
        let tc = TrainConfig {
            epochs: 8,
            batch_size: 32,
            learning_rate: 3e-3,
            weight_decay: 0.0,
            verbose: false,
        };
        let _ = pcount_nn::train_classifier(&mut net, &x, &y, &tc, rng);
        let folded = fold_sequential(cfg, &net).expect("fold");
        let mut qat = QatCnn::from_folded(&folded, assignment);
        let qc = QatConfig {
            epochs: 3,
            batch_size: 32,
            learning_rate: 5e-4,
            verbose: false,
        };
        let _ = qat_finetune(&mut qat, &x, &y, &qc, rng);
        (QuantizedCnn::from_qat(&qat), qat, x, y)
    }

    #[test]
    fn integer_model_agrees_with_fake_quant_model() {
        let mut rng = StdRng::seed_from_u64(0);
        let assignment = PrecisionAssignment::uniform(Precision::Int8);
        let (int_model, mut qat, x, _y) = trained_quantized(assignment, &mut rng);
        let fake_preds = qat.predict(&x);
        let int_preds = int_model.predict_batch(&x);
        let agree = fake_preds
            .iter()
            .zip(int_preds.iter())
            .filter(|(a, b)| a == b)
            .count();
        let ratio = agree as f64 / fake_preds.len() as f64;
        assert!(
            ratio > 0.9,
            "integer and fake-quant predictions agree on only {:.0}% of frames",
            ratio * 100.0
        );
    }

    #[test]
    fn integer_model_keeps_accuracy_on_toy_data() {
        let mut rng = StdRng::seed_from_u64(1);
        let assignment = PrecisionAssignment::new([
            Precision::Int8,
            Precision::Int4,
            Precision::Int4,
            Precision::Int8,
        ]);
        let (int_model, _qat, x, y) = trained_quantized(assignment, &mut rng);
        let bas = int_model.evaluate(&x, &y, 4);
        assert!(bas > 0.7, "integer BAS too low: {bas}");
    }

    #[test]
    fn weight_codes_respect_precision_range() {
        let mut rng = StdRng::seed_from_u64(2);
        let assignment = PrecisionAssignment::new([
            Precision::Int8,
            Precision::Int4,
            Precision::Int4,
            Precision::Int4,
        ]);
        let (int_model, _qat, _x, _y) = trained_quantized(assignment, &mut rng);
        for (layer, p) in int_model.layers.iter().zip(assignment.layers()) {
            let qmax = p.qmax() as i8;
            assert!(layer.weight_q.iter().all(|&w| w.abs() <= qmax));
        }
    }

    #[test]
    fn int4_weight_bytes_are_smaller_than_int8() {
        let mut rng = StdRng::seed_from_u64(3);
        let (m8, _, _, _) =
            trained_quantized(PrecisionAssignment::uniform(Precision::Int8), &mut rng);
        let mut rng = StdRng::seed_from_u64(3);
        let (m4, _, _, _) =
            trained_quantized(PrecisionAssignment::uniform(Precision::Int4), &mut rng);
        assert!(m4.weight_bytes() < m8.weight_bytes());
    }

    #[test]
    fn quantize_input_saturates() {
        let mut rng = StdRng::seed_from_u64(4);
        let (m, _, _, _) =
            trained_quantized(PrecisionAssignment::uniform(Precision::Int8), &mut rng);
        let frame = vec![1000.0f32; 64];
        let q = m.quantize_input(&frame);
        assert!(q.iter().all(|&v| v == 127));
    }
}
