//! Quantisation-aware training of the folded network.

use crate::fake::FakeQuantAct;
use crate::fold::FoldedCnn;
use crate::mixed::PrecisionAssignment;
use crate::qparams::{fake_quant_tensor, weight_scale};
use pcount_nn::{
    balanced_accuracy, batch_select, Adam, CnnConfig, Conv2d, CrossEntropyLoss, Flatten, Layer,
    Linear, MaxPool2d, Mode, Optimizer, Relu,
};
use pcount_tensor::Tensor;
use rand::seq::SliceRandom;
use rand::Rng;

/// Hyper-parameters of a QAT fine-tuning run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QatConfig {
    /// Fine-tuning epochs.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Adam learning rate (typically lower than the FP32 training rate).
    pub learning_rate: f32,
    /// Print progress to stderr.
    pub verbose: bool,
}

impl Default for QatConfig {
    fn default() -> Self {
        Self {
            epochs: 8,
            batch_size: 128,
            learning_rate: 5e-4,
            verbose: false,
        }
    }
}

/// The folded CNN with fake-quantised weights and activations, trainable
/// with straight-through gradients.
///
/// Layer-wise precision follows the paper's constraint: weights and input
/// activations of a layer share one precision, chosen per layer from
/// {INT4, INT8}.
#[derive(Debug, Clone)]
pub struct QatCnn {
    /// Architecture hyper-parameters.
    pub config: CnnConfig,
    /// Per-layer precision assignment.
    pub assignment: PrecisionAssignment,
    /// Quantiser of the network input (precision of layer 1).
    pub input_q: FakeQuantAct,
    /// First convolution (BN already folded).
    pub conv1: Conv2d,
    /// Quantiser of conv2's input (precision of layer 2).
    pub act_q2: FakeQuantAct,
    /// Second convolution.
    pub conv2: Conv2d,
    /// Quantiser of fc1's input (precision of layer 3).
    pub act_q3: FakeQuantAct,
    /// Hidden linear layer.
    pub fc1: Linear,
    /// Quantiser of fc2's input (precision of layer 4).
    pub act_q4: FakeQuantAct,
    /// Output linear layer.
    pub fc2: Linear,
    relu1: Relu,
    relu2: Relu,
    relu3: Relu,
    pool: MaxPool2d,
    flatten: Flatten,
    cached_wq: [Option<Tensor>; 4],
}

impl QatCnn {
    /// Wraps a folded network with fake quantisation at the given per-layer
    /// precisions. Call [`QatCnn::calibrate`] (or [`qat_finetune`], which
    /// does it for you) before training so the activation clipping ranges
    /// start from observed statistics.
    pub fn from_folded(folded: &FoldedCnn, assignment: PrecisionAssignment) -> Self {
        let p = assignment.layers();
        Self {
            config: folded.config,
            assignment,
            input_q: FakeQuantAct::new(p[0], 4.0),
            conv1: folded.conv1.clone(),
            act_q2: FakeQuantAct::new(p[1], 4.0),
            conv2: folded.conv2.clone(),
            act_q3: FakeQuantAct::new(p[2], 4.0),
            fc1: Linear::from_parts(folded.fc1.weight.clone(), folded.fc1.bias.clone()),
            act_q4: FakeQuantAct::new(p[3], 4.0),
            fc2: Linear::from_parts(folded.fc2.weight.clone(), folded.fc2.bias.clone()),
            relu1: Relu::new(),
            relu2: Relu::new(),
            relu3: Relu::new(),
            pool: MaxPool2d::new(2, 2),
            flatten: Flatten::new(),
            cached_wq: [None, None, None, None],
        }
    }

    /// Runs `x` through the network without quantisation, recording the
    /// observed activation ranges, and adopts them as clipping thresholds.
    pub fn calibrate(&mut self, x: &Tensor) {
        for q in [
            &mut self.input_q,
            &mut self.act_q2,
            &mut self.act_q3,
            &mut self.act_q4,
        ] {
            q.enabled = false;
            q.observed_max = 0.0;
        }
        let _ = self.forward(x, Mode::Eval);
        for q in [
            &mut self.input_q,
            &mut self.act_q2,
            &mut self.act_q3,
            &mut self.act_q4,
        ] {
            q.adopt_calibration();
            q.enabled = true;
        }
    }

    fn quantised_weight(weight: &Tensor, precision: crate::Precision) -> Tensor {
        let scale = weight_scale(weight, precision);
        fake_quant_tensor(weight, scale, precision.qmax())
    }

    /// Forward pass with fake-quantised weights and activations.
    pub fn forward(&mut self, x: &Tensor, mode: Mode) -> Tensor {
        let p = self.assignment.layers();
        let x = self.input_q.forward(x);
        let wq1 = Self::quantised_weight(&self.conv1.weight, p[0]);
        let x = self.conv1.forward_with_weight(&x, &wq1);
        self.cached_wq[0] = Some(wq1);
        let x = self.relu1.forward(&x, mode);
        let x = self.pool.forward(&x, mode);
        let x = self.act_q2.forward(&x);
        let wq2 = Self::quantised_weight(&self.conv2.weight, p[1]);
        let x = self.conv2.forward_with_weight(&x, &wq2);
        self.cached_wq[1] = Some(wq2);
        let x = self.relu2.forward(&x, mode);
        let x = self.act_q3.forward(&x);
        let x = self.flatten.forward(&x, mode);
        let wq3 = Self::quantised_weight(&self.fc1.weight, p[2]);
        let x = self.fc1.forward_with_weight(&x, &wq3);
        self.cached_wq[2] = Some(wq3);
        let x = self.relu3.forward(&x, mode);
        let x = self.act_q4.forward(&x);
        let wq4 = Self::quantised_weight(&self.fc2.weight, p[3]);
        let out = self.fc2.forward_with_weight(&x, &wq4);
        self.cached_wq[3] = Some(wq4);
        out
    }

    /// Backward pass with straight-through weight gradients.
    pub fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let wq4 = self.cached_wq[3].clone().expect("backward before forward");
        let g = self.fc2.backward_with_weight(grad_out, &wq4);
        let g = self.act_q4.backward(&g);
        let g = self.relu3.backward(&g);
        let wq3 = self.cached_wq[2].clone().expect("missing cached weights");
        let g = self.fc1.backward_with_weight(&g, &wq3);
        let g = self.flatten.backward(&g);
        let g = self.act_q3.backward(&g);
        let g = self.relu2.backward(&g);
        let wq2 = self.cached_wq[1].clone().expect("missing cached weights");
        let g = self.conv2.backward_with_weight(&g, &wq2);
        let g = self.act_q2.backward(&g);
        let g = self.pool.backward(&g);
        let g = self.relu1.backward(&g);
        let wq1 = self.cached_wq[0].clone().expect("missing cached weights");
        let g = self.conv1.backward_with_weight(&g, &wq1);
        self.input_q.backward(&g)
    }

    /// Resets all gradients.
    pub fn zero_grad(&mut self) {
        self.conv1.zero_grad();
        self.conv2.zero_grad();
        self.fc1.zero_grad();
        self.fc2.zero_grad();
        self.input_q.zero_grad();
        self.act_q2.zero_grad();
        self.act_q3.zero_grad();
        self.act_q4.zero_grad();
    }

    /// `(parameter, gradient)` pairs: layer weights/biases followed by the
    /// four activation clipping thresholds.
    pub fn params_and_grads(&mut self) -> Vec<(&mut Tensor, &mut Tensor)> {
        let mut out = Vec::new();
        out.extend(self.conv1.params_and_grads());
        out.extend(self.conv2.params_and_grads());
        out.extend(self.fc1.params_and_grads());
        out.extend(self.fc2.params_and_grads());
        out.push((&mut self.input_q.alpha, &mut self.input_q.alpha_grad));
        out.push((&mut self.act_q2.alpha, &mut self.act_q2.alpha_grad));
        out.push((&mut self.act_q3.alpha, &mut self.act_q3.alpha_grad));
        out.push((&mut self.act_q4.alpha, &mut self.act_q4.alpha_grad));
        out
    }

    /// Predicted class per sample in eval mode.
    pub fn predict(&mut self, x: &Tensor) -> Vec<usize> {
        self.forward(x, Mode::Eval).argmax_rows()
    }

    /// Balanced accuracy of the fake-quantised network.
    pub fn evaluate(&mut self, x: &Tensor, y: &[usize], num_classes: usize) -> f64 {
        let n = x.shape()[0];
        let mut preds = Vec::with_capacity(n);
        let mut start = 0;
        while start < n {
            let end = (start + 256).min(n);
            let idx: Vec<usize> = (start..end).collect();
            let xb = batch_select(x, &idx);
            preds.extend(self.predict(&xb));
            start = end;
        }
        balanced_accuracy(&preds, y, num_classes)
    }

    /// Model weight memory in bytes under this precision assignment
    /// (packed sub-byte weights, 32-bit biases).
    pub fn memory_bytes(&self) -> usize {
        self.assignment.memory_bytes(&self.config)
    }
}

/// Calibrates and fine-tunes a [`QatCnn`] with Adam and cross-entropy.
///
/// Returns the per-epoch mean loss.
pub fn qat_finetune<R: Rng>(
    qat: &mut QatCnn,
    x: &Tensor,
    y: &[usize],
    cfg: &QatConfig,
    rng: &mut R,
) -> Vec<f32> {
    let n = x.shape()[0];
    assert_eq!(n, y.len(), "sample count mismatch");
    // Calibrate activation ranges on a prefix of the training data.
    let calib_n = n.min(256);
    let calib_idx: Vec<usize> = (0..calib_n).collect();
    qat.calibrate(&batch_select(x, &calib_idx));

    let mut opt = Adam::new(cfg.learning_rate, 0.0);
    let mut loss_fn = CrossEntropyLoss::new();
    let mut order: Vec<usize> = (0..n).collect();
    let mut history = Vec::with_capacity(cfg.epochs);
    for epoch in 0..cfg.epochs {
        order.shuffle(rng);
        let mut epoch_loss = 0.0f32;
        let mut batches = 0usize;
        for chunk in order.chunks(cfg.batch_size) {
            let xb = batch_select(x, chunk);
            let yb: Vec<usize> = chunk.iter().map(|&i| y[i]).collect();
            qat.zero_grad();
            let logits = qat.forward(&xb, Mode::Train);
            let loss = loss_fn.forward(&logits, &yb);
            let grad = loss_fn.backward();
            qat.backward(&grad);
            opt.step(qat.params_and_grads());
            epoch_loss += loss;
            batches += 1;
        }
        let mean = epoch_loss / batches.max(1) as f32;
        history.push(mean);
        if cfg.verbose {
            eprintln!("qat {} epoch {epoch:3} loss {mean:.4}", qat.assignment);
        }
    }
    history
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fold::fold_sequential;
    use crate::Precision;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn toy_dataset(n: usize, rng: &mut StdRng) -> (Tensor, Vec<usize>) {
        let mut x = Tensor::zeros(&[n, 1, 8, 8]);
        let mut y = Vec::with_capacity(n);
        for i in 0..n {
            let class = rng.gen_range(0..4usize);
            let (cy, cx) = [(2, 2), (2, 6), (6, 2), (6, 6)][class];
            for dy in 0..2usize {
                for dx in 0..2usize {
                    x.set(&[i, 0, cy + dy - 1, cx + dx - 1], 3.0);
                }
            }
            y.push(class);
        }
        (x, y)
    }

    fn trained_folded(rng: &mut StdRng) -> (FoldedCnn, Tensor, Vec<usize>) {
        let (x, y) = toy_dataset(200, rng);
        let cfg = CnnConfig::seed().with_channels(4, 6, 12);
        let mut net = cfg.build(rng);
        let tc = pcount_nn::TrainConfig {
            epochs: 10,
            batch_size: 32,
            learning_rate: 3e-3,
            weight_decay: 0.0,
            verbose: false,
        };
        let _ = pcount_nn::train_classifier(&mut net, &x, &y, &tc, rng);
        (fold_sequential(cfg, &net).expect("fold"), x, y)
    }

    #[test]
    fn int8_qat_network_stays_close_to_float_network() {
        let mut rng = StdRng::seed_from_u64(0);
        let (mut folded, x, y) = trained_folded(&mut rng);
        let float_bas = {
            let preds = folded.predict(&x);
            balanced_accuracy(&preds, &y, 4)
        };
        let mut qat = QatCnn::from_folded(&folded, PrecisionAssignment::uniform(Precision::Int8));
        qat.calibrate(&x);
        let q_bas = qat.evaluate(&x, &y, 4);
        assert!(
            q_bas >= float_bas - 0.1,
            "int8 fake quantisation should not lose more than 10 BAS points \
             (float {float_bas:.3}, int8 {q_bas:.3})"
        );
    }

    #[test]
    fn qat_finetune_reduces_loss() {
        let mut rng = StdRng::seed_from_u64(1);
        let (folded, x, y) = trained_folded(&mut rng);
        let assignment = PrecisionAssignment::new([
            Precision::Int8,
            Precision::Int4,
            Precision::Int4,
            Precision::Int8,
        ]);
        let mut qat = QatCnn::from_folded(&folded, assignment);
        let cfg = QatConfig {
            epochs: 4,
            batch_size: 32,
            learning_rate: 1e-3,
            verbose: false,
        };
        let losses = qat_finetune(&mut qat, &x, &y, &cfg, &mut rng);
        assert_eq!(losses.len(), 4);
        assert!(
            losses.last().unwrap() <= losses.first().unwrap(),
            "QAT fine-tuning should not increase the loss ({losses:?})"
        );
    }

    #[test]
    fn int4_memory_is_roughly_half_of_int8() {
        let mut rng = StdRng::seed_from_u64(2);
        let (folded, _x, _y) = trained_folded(&mut rng);
        let q8 = QatCnn::from_folded(&folded, PrecisionAssignment::uniform(Precision::Int8));
        let q4 = QatCnn::from_folded(&folded, PrecisionAssignment::uniform(Precision::Int4));
        let m8 = q8.memory_bytes();
        let m4 = q4.memory_bytes();
        assert!(m4 < m8);
        // Weights halve; biases stay 32-bit, so the ratio is below 2 but
        // clearly above 1.5 for these layer shapes.
        assert!(
            (m8 as f64 / m4 as f64) > 1.5,
            "ratio {}",
            m8 as f64 / m4 as f64
        );
    }

    #[test]
    fn calibration_sets_alpha_from_data() {
        let mut rng = StdRng::seed_from_u64(3);
        let (folded, x, _y) = trained_folded(&mut rng);
        let mut qat = QatCnn::from_folded(&folded, PrecisionAssignment::uniform(Precision::Int8));
        let before = qat.act_q2.alpha_value();
        qat.calibrate(&x);
        let after = qat.act_q2.alpha_value();
        assert_ne!(before, after);
        assert!(after > 0.0);
    }
}
