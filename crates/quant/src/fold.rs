//! Batch-norm folding into the preceding convolution.

use pcount_nn::{BatchNorm2d, CnnConfig, Conv2d, Linear, MaxPool2d, Mode, Relu, Sequential};
use pcount_tensor::Tensor;
use std::fmt;

/// Error returned when a network does not have the expected
/// conv-bn-relu-pool-conv-bn-relu-flatten-fc-relu-fc layout.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FoldError {
    /// Description of the structural mismatch.
    pub message: String,
}

impl fmt::Display for FoldError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cannot fold network: {}", self.message)
    }
}

impl std::error::Error for FoldError {}

/// Folds a batch-norm layer into the convolution that feeds it, producing a
/// convolution with adjusted weights and bias whose eval-mode output equals
/// `bn(conv(x))`.
pub fn fold_conv_bn(conv: &Conv2d, bn: &BatchNorm2d) -> Conv2d {
    assert_eq!(
        conv.out_channels, bn.channels,
        "conv/bn channel mismatch ({} vs {})",
        conv.out_channels, bn.channels
    );
    let k = conv.kernel;
    let per_channel = conv.in_channels * k * k;
    let mut weight = conv.weight.clone();
    let mut bias = conv.bias.clone();
    for c in 0..conv.out_channels {
        let std_inv = 1.0 / (bn.running_var.data()[c] + bn.eps).sqrt();
        let scale = bn.gamma.data()[c] * std_inv;
        for i in 0..per_channel {
            let idx = c * per_channel + i;
            weight.data_mut()[idx] *= scale;
        }
        bias.data_mut()[c] =
            (conv.bias.data()[c] - bn.running_mean.data()[c]) * scale + bn.beta.data()[c];
    }
    Conv2d::from_parts(weight, bias, conv.stride, conv.padding)
}

/// The people-counting CNN with batch-norm folded away: four parameterised
/// layers (two convolutions, two linear layers) plus the fixed ReLU /
/// max-pool / flatten structure.
#[derive(Debug, Clone)]
pub struct FoldedCnn {
    /// Architecture hyper-parameters of the folded network.
    pub config: CnnConfig,
    /// First convolution (batch-norm folded in).
    pub conv1: Conv2d,
    /// Second convolution (batch-norm folded in).
    pub conv2: Conv2d,
    /// Hidden linear layer.
    pub fc1: Linear,
    /// Output linear layer.
    pub fc2: Linear,
}

impl FoldedCnn {
    /// Evaluation-mode forward pass (float reference).
    pub fn forward(&mut self, x: &Tensor) -> Tensor {
        use pcount_nn::Layer;
        let mut relu = Relu::new();
        let mut pool = MaxPool2d::new(2, 2);
        let x = self.conv1.forward(x, Mode::Eval);
        let x = relu.forward(&x, Mode::Eval);
        let x = pool.forward(&x, Mode::Eval);
        let x = self.conv2.forward(&x, Mode::Eval);
        let x = relu.forward(&x, Mode::Eval);
        let n = x.shape()[0];
        let flat: usize = x.shape()[1..].iter().product();
        let x = x.reshape(&[n, flat]);
        let x = self.fc1.forward(&x, Mode::Eval);
        let x = relu.forward(&x, Mode::Eval);
        self.fc2.forward(&x, Mode::Eval)
    }

    /// Predicted class per sample.
    pub fn predict(&mut self, x: &Tensor) -> Vec<usize> {
        self.forward(x).argmax_rows()
    }
}

/// Folds the batch-norm layers of a network built by
/// [`CnnConfig::build`] (or extracted by the NAS) into its convolutions.
///
/// # Errors
///
/// Returns [`FoldError`] if the network does not have the expected
/// 11-layer structure.
pub fn fold_sequential(config: CnnConfig, net: &Sequential) -> Result<FoldedCnn, FoldError> {
    let layers = net.layers();
    if layers.len() != 11 {
        return Err(FoldError {
            message: format!("expected 11 layers, found {}", layers.len()),
        });
    }
    let conv1 = downcast::<Conv2d>(layers[0].as_ref().as_any(), "layer 0 (conv1)")?;
    let bn1 = downcast::<BatchNorm2d>(layers[1].as_ref().as_any(), "layer 1 (bn1)")?;
    let conv2 = downcast::<Conv2d>(layers[4].as_ref().as_any(), "layer 4 (conv2)")?;
    let bn2 = downcast::<BatchNorm2d>(layers[5].as_ref().as_any(), "layer 5 (bn2)")?;
    let fc1 = downcast::<Linear>(layers[8].as_ref().as_any(), "layer 8 (fc1)")?;
    let fc2 = downcast::<Linear>(layers[10].as_ref().as_any(), "layer 10 (fc2)")?;
    Ok(FoldedCnn {
        config,
        conv1: fold_conv_bn(conv1, bn1),
        conv2: fold_conv_bn(conv2, bn2),
        fc1: Linear::from_parts(fc1.weight.clone(), fc1.bias.clone()),
        fc2: Linear::from_parts(fc2.weight.clone(), fc2.bias.clone()),
    })
}

fn downcast<'a, T: 'static>(layer: &'a dyn std::any::Any, what: &str) -> Result<&'a T, FoldError> {
    layer.downcast_ref::<T>().ok_or_else(|| FoldError {
        message: format!("{what} has an unexpected type"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcount_nn::Layer;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn folded_conv_matches_conv_then_bn_in_eval_mode() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut conv = Conv2d::new(2, 3, 3, 1, 1, &mut rng);
        let mut bn = BatchNorm2d::new(3);
        // Give the batch-norm non-trivial statistics and affine parameters.
        bn.running_mean = Tensor::from_vec(vec![0.3, -0.1, 0.5], &[3]);
        bn.running_var = Tensor::from_vec(vec![1.5, 0.8, 2.0], &[3]);
        bn.gamma = Tensor::from_vec(vec![1.2, 0.7, -0.4], &[3]);
        bn.beta = Tensor::from_vec(vec![0.1, -0.2, 0.3], &[3]);
        let x = Tensor::randn(&[2, 2, 6, 6], 1.0, &mut rng);
        let expected = bn.forward(&conv.forward(&x, Mode::Eval), Mode::Eval);
        let mut folded = fold_conv_bn(&conv, &bn);
        let got = folded.forward(&x, Mode::Eval);
        assert!(expected.approx_eq(&got, 1e-4));
    }

    #[test]
    fn fold_sequential_preserves_eval_outputs() {
        let mut rng = StdRng::seed_from_u64(1);
        let cfg = CnnConfig::seed().with_channels(4, 4, 8);
        let mut net = cfg.build(&mut rng);
        // Run a couple of train-mode passes so running stats are non-trivial.
        let warm = Tensor::randn(&[8, 1, 8, 8], 1.0, &mut rng);
        for _ in 0..3 {
            let _ = net.forward(&warm, Mode::Train);
        }
        let x = Tensor::randn(&[5, 1, 8, 8], 1.0, &mut rng);
        let expected = net.forward(&x, Mode::Eval);
        let mut folded = fold_sequential(cfg, &net).expect("fold");
        let got = folded.forward(&x);
        assert!(
            expected.approx_eq(&got, 1e-3),
            "folded network must match the original in eval mode"
        );
    }

    #[test]
    fn fold_sequential_rejects_wrong_structure() {
        let net = Sequential::new(vec![Box::new(Relu::new())]);
        let err = fold_sequential(CnnConfig::seed(), &net).unwrap_err();
        assert!(err.to_string().contains("expected 11 layers"));
    }
}
