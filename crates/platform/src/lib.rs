//! Platform cost models and the Table-I deployment comparison.
//!
//! Three execution targets are modelled, mirroring the paper's Table I:
//!
//! * **MAUPITI** — the paper's smart-sensor chip: IBEX + SDOTP at 20 MHz,
//!   ~0.9 mW digital power plus a 2.2 % post-synthesis power overhead for
//!   the SDOTP unit. Code/data/cycles come from actually running the
//!   generated kernels on the instruction-set simulator
//!   (`pcount-kernels` + `pcount-isa`, block-cached engine with the
//!   pipelined IBEX timing model, so cycle counts include load-use
//!   interlock and branch-flush stalls).
//! * **IBEX** — the same chip without the custom instructions: scalar
//!   kernels on the simulator, 0.9 mW, 20 MHz.
//! * **STM32L4R5 + X-CUBE-AI** — an off-the-shelf Cortex-M MCU at 120 MHz
//!   with a vendor inference runtime. This target cannot be simulated
//!   cycle-accurately here, so it is modelled analytically with constants
//!   calibrated to the paper: ~22.5 KB of runtime code, 8-bit-only
//!   weights, 13.2x the MAUPITI power and roughly 9x lower latency.
//!
//! Energy per inference is always `cycles / f_clk * P_active`.

use pcount_kernels::{Deployment, DeploymentReport, MemStats, Target};
use pcount_quant::{Precision, QuantizedCnn};

/// Static description of an execution platform.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlatformSpec {
    /// Human-readable name.
    pub name: &'static str,
    /// Core clock in Hz.
    pub clock_hz: f64,
    /// Active power during inference in watts.
    pub active_power_w: f64,
}

impl PlatformSpec {
    /// The MAUPITI chip: 20 MHz, 0.9 mW digital block plus 2.2 % SDOTP
    /// power overhead.
    pub const MAUPITI: PlatformSpec = PlatformSpec {
        name: "MAUPITI",
        clock_hz: 20.0e6,
        active_power_w: 0.9e-3 * 1.022,
    };

    /// The unmodified IBEX digital block: 20 MHz, 0.9 mW.
    pub const IBEX: PlatformSpec = PlatformSpec {
        name: "IBEX",
        clock_hz: 20.0e6,
        active_power_w: 0.9e-3,
    };

    /// STM32L4R5 at 120 MHz; the paper reports a 13.2x power increase over
    /// the MAUPITI digital block.
    pub const STM32: PlatformSpec = PlatformSpec {
        name: "STM32",
        clock_hz: 120.0e6,
        active_power_w: 13.2 * 0.9e-3,
    };

    /// Energy in microjoules for a number of cycles on this platform.
    pub fn energy_uj(&self, cycles: u64) -> f64 {
        cycles as f64 / self.clock_hz * self.active_power_w * 1e6
    }

    /// Splits the per-inference energy into the cycles the core spent
    /// doing useful work versus the cycles it burned stalled on the
    /// instruction-fetch path (prefetch-buffer refills) and on the data
    /// SRAM port (structural contention), using the memory-hierarchy
    /// stall breakdown measured by the simulator. Under the flat memory
    /// model everything lands in the core component.
    pub fn energy_breakdown(&self, cycles: u64, mem: &MemStats) -> EnergyBreakdown {
        // Clamp the stall components into the cycle budget so the three
        // components always sum to `energy_uj(cycles)`, even if a caller
        // pairs one run's cycles with counters accumulated over more.
        let imem = mem.imem_stall_cycles.min(cycles);
        let dmem = mem.dmem_stall_cycles.min(cycles - imem);
        EnergyBreakdown {
            core_uj: self.energy_uj(cycles - imem - dmem),
            imem_uj: self.energy_uj(imem),
            dmem_uj: self.energy_uj(dmem),
        }
    }

    /// Latency in milliseconds for a number of cycles on this platform.
    pub fn latency_ms(&self, cycles: u64) -> f64 {
        cycles as f64 / self.clock_hz * 1e3
    }
}

/// Per-inference energy split by the component the cycles were spent on
/// (all in microjoules; the sum equals the total `energy_uj`).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EnergyBreakdown {
    /// Energy of cycles the core spent executing instructions.
    pub core_uj: f64,
    /// Energy of cycles stalled refilling the instruction prefetch
    /// buffer.
    pub imem_uj: f64,
    /// Energy of cycles stalled on data-SRAM port contention.
    pub dmem_uj: f64,
}

impl EnergyBreakdown {
    /// Total energy across the three components.
    pub fn total_uj(&self) -> f64 {
        self.core_uj + self.imem_uj + self.dmem_uj
    }
}

/// Deployment metrics of one model on one platform (one Table-I cell row).
#[derive(Debug, Clone, PartialEq)]
pub struct PlatformResult {
    /// Platform name.
    pub platform: &'static str,
    /// Code size in bytes.
    pub code_bytes: usize,
    /// Data size in bytes.
    pub data_bytes: usize,
    /// Cycles per inference.
    pub cycles: u64,
    /// Latency per inference in milliseconds.
    pub latency_ms: f64,
    /// Energy per inference in microjoules.
    pub energy_uj: f64,
    /// The same energy split into core / imem / dmem components (the
    /// memory components are zero when the cycles were measured under the
    /// flat memory model or estimated analytically).
    pub energy: EnergyBreakdown,
}

/// Analytical model of the STM32L4R5 + X-CUBE-AI deployment.
///
/// X-CUBE-AI does not support mixed precision, so all weights are deployed
/// at 8 bits; the runtime adds a large fixed code footprint and some
/// per-layer bookkeeping data.
#[derive(Debug, Clone, Copy, Default)]
pub struct Stm32Model;

impl Stm32Model {
    /// Fixed X-CUBE-AI runtime code footprint (bytes).
    pub const RUNTIME_CODE_BYTES: usize = 22_500;
    /// Per-layer code overhead (bytes).
    pub const PER_LAYER_CODE_BYTES: usize = 90;
    /// Fixed runtime data overhead (bytes).
    pub const RUNTIME_DATA_BYTES: usize = 1_024;
    /// Average cycles per MAC of the vendor int8 kernels on a Cortex-M4
    /// (X-CUBE-AI convolutions without DSP SIMD run in the high single
    /// digits of cycles per MAC on these small geometries).
    pub const CYCLES_PER_MAC: f64 = 10.0;
    /// Fixed per-inference overhead cycles (scheduling, I/O).
    pub const OVERHEAD_CYCLES: u64 = 30_000;

    /// Code size of the deployed model.
    pub fn code_bytes(model: &QuantizedCnn) -> usize {
        Self::RUNTIME_CODE_BYTES + Self::PER_LAYER_CODE_BYTES * model.layers.len()
    }

    /// Data size (8-bit weights, 32-bit biases, 8-bit activations, runtime
    /// overhead).
    pub fn data_bytes(model: &QuantizedCnn) -> usize {
        let weights: usize = model
            .layers
            .iter()
            .map(|l| Precision::Int8.storage_bytes(l.weight_count()) + l.out_features * 4)
            .sum();
        let cfg = &model.config;
        let act = cfg.input_size * cfg.input_size * cfg.conv1_out
            + cfg.pooled_size() * cfg.pooled_size() * cfg.conv2_out.max(cfg.conv1_out);
        weights + act + Self::RUNTIME_DATA_BYTES
    }

    /// Cycles per inference.
    pub fn cycles(model: &QuantizedCnn) -> u64 {
        (model.macs() as f64 * Self::CYCLES_PER_MAC) as u64 + Self::OVERHEAD_CYCLES
    }

    /// Full platform result.
    pub fn evaluate(model: &QuantizedCnn) -> PlatformResult {
        let cycles = Self::cycles(model);
        let spec = PlatformSpec::STM32;
        PlatformResult {
            platform: spec.name,
            code_bytes: Self::code_bytes(model),
            data_bytes: Self::data_bytes(model),
            cycles,
            latency_ms: spec.latency_ms(cycles),
            energy_uj: spec.energy_uj(cycles),
            energy: spec.energy_breakdown(cycles, &MemStats::default()),
        }
    }
}

/// Converts a simulator deployment report into a [`PlatformResult`],
/// splitting the energy along the report's memory-stall breakdown.
pub fn result_from_report(spec: PlatformSpec, report: &DeploymentReport) -> PlatformResult {
    PlatformResult {
        platform: spec.name,
        code_bytes: report.code_bytes,
        data_bytes: report.data_bytes,
        cycles: report.cycles,
        latency_ms: spec.latency_ms(report.cycles),
        energy_uj: spec.energy_uj(report.cycles),
        energy: spec.energy_breakdown(report.cycles, &report.mem),
    }
}

/// Deploys `model` on all three platforms (MAUPITI and IBEX on the
/// simulator, STM32 analytically) and measures each with `frame`.
///
/// # Errors
///
/// Returns a human-readable error if the model does not fit the on-chip
/// memories or the simulation faults.
pub fn evaluate_on_platforms(
    model: &QuantizedCnn,
    frame: &[f32],
) -> Result<Vec<PlatformResult>, String> {
    let mut results = Vec::with_capacity(3);
    results.push(Stm32Model::evaluate(model));
    for (target, spec) in [
        (Target::Ibex, PlatformSpec::IBEX),
        (Target::Maupiti, PlatformSpec::MAUPITI),
    ] {
        let deployment = Deployment::new(model, target).map_err(|e| e.to_string())?;
        let report = deployment.report(frame).map_err(|e| e.to_string())?;
        results.push(result_from_report(spec, &report));
    }
    Ok(results)
}

/// One row of the paper's Table I.
#[derive(Debug, Clone, PartialEq)]
pub struct Table1Row {
    /// Model label ("Top", "-5%", "Mini").
    pub model: String,
    /// Per-platform results (STM32, IBEX, MAUPITI).
    pub results: Vec<PlatformResult>,
}

/// Renders Table I in the same layout as the paper.
pub fn format_table1(rows: &[Table1Row]) -> String {
    let mut out =
        String::from("Model    Platform  Code [B]  Data [B]  Latency [ms]  Energy [uJ]\n");
    for row in rows {
        for (i, r) in row.results.iter().enumerate() {
            let label = if i == 0 { row.model.as_str() } else { "" };
            out.push_str(&format!(
                "{label:<8} {:<9} {:>8} {:>9} {:>13.3} {:>12.3}\n",
                r.platform, r.code_bytes, r.data_bytes, r.latency_ms, r.energy_uj
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcount_nn::{CnnConfig, TrainConfig};
    use pcount_quant::{fold_sequential, PrecisionAssignment, QatCnn};
    use pcount_tensor::Tensor;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn small_model(rng: &mut StdRng) -> (QuantizedCnn, Vec<f32>) {
        let mut x = Tensor::zeros(&[60, 1, 8, 8]);
        let mut y = Vec::new();
        for i in 0..60 {
            let class = rng.gen_range(0..4usize);
            x.set(&[i, 0, 2 + class, 3], 3.0);
            y.push(class);
        }
        let cfg = CnnConfig::seed().with_channels(8, 8, 16);
        let mut net = cfg.build(rng);
        let tc = TrainConfig {
            epochs: 2,
            batch_size: 32,
            learning_rate: 1e-3,
            weight_decay: 0.0,
            verbose: false,
        };
        let _ = pcount_nn::train_classifier(&mut net, &x, &y, &tc, rng);
        let folded = fold_sequential(cfg, &net).unwrap();
        let mut qat = QatCnn::from_folded(&folded, PrecisionAssignment::uniform(Precision::Int8));
        qat.calibrate(&x);
        (QuantizedCnn::from_qat(&qat), x.data()[0..64].to_vec())
    }

    #[test]
    fn energy_scales_linearly_with_cycles() {
        let spec = PlatformSpec::MAUPITI;
        let e1 = spec.energy_uj(10_000);
        let e2 = spec.energy_uj(20_000);
        assert!((e2 - 2.0 * e1).abs() < 1e-9);
        // 20k cycles at 20 MHz = 1 ms at ~0.92 mW -> ~0.92 uJ.
        assert!((e2 - 0.9198).abs() < 0.01, "e2 = {e2}");
    }

    #[test]
    fn energy_breakdown_follows_the_memory_model() {
        use pcount_kernels::MemoryModel;
        let mut rng = StdRng::seed_from_u64(11);
        let (model, frame) = small_model(&mut rng);
        // Flat (default) model: ideal memories, all energy is core energy.
        let flat = Deployment::new(&model, Target::Maupiti).expect("deploy");
        assert!(flat.memory_model().is_flat());
        let flat_report = flat.report(&frame).expect("report");
        let flat_result = result_from_report(PlatformSpec::MAUPITI, &flat_report);
        assert_eq!(flat_result.energy.imem_uj, 0.0);
        assert_eq!(flat_result.energy.dmem_uj, 0.0);
        assert!((flat_result.energy.total_uj() - flat_result.energy_uj).abs() < 1e-9);
        // Maupiti model: same logits/instret, more cycles, and the stall
        // breakdown shows up as imem/dmem energy components.
        let mut hier = Deployment::new(&model, Target::Maupiti).expect("deploy");
        hier.set_memory_model(MemoryModel::maupiti());
        let hier_report = hier.report(&frame).expect("report");
        assert_eq!(hier_report.instructions, flat_report.instructions);
        assert!(hier_report.cycles > flat_report.cycles);
        assert_eq!(
            hier_report.cycles - flat_report.cycles,
            hier_report.mem.stall_cycles(),
            "extra cycles are exactly the memory stalls"
        );
        let hier_result = result_from_report(PlatformSpec::MAUPITI, &hier_report);
        assert!(hier_result.energy.imem_uj > 0.0);
        assert!(hier_result.energy.dmem_uj > 0.0);
        assert!((hier_result.energy.total_uj() - hier_result.energy_uj).abs() < 1e-9);
        assert!(hier_result.energy.core_uj > hier_result.energy.imem_uj);
    }

    #[test]
    fn stm32_is_faster_but_less_efficient_than_maupiti() {
        let mut rng = StdRng::seed_from_u64(0);
        let (model, frame) = small_model(&mut rng);
        let results = evaluate_on_platforms(&model, &frame).expect("platforms");
        assert_eq!(results.len(), 3);
        let stm = &results[0];
        let ibex = &results[1];
        let maupiti = &results[2];
        assert_eq!(stm.platform, "STM32");
        assert_eq!(maupiti.platform, "MAUPITI");
        // Latency: STM32 is fastest (120 MHz + vendor kernels).
        assert!(stm.latency_ms < maupiti.latency_ms);
        // Energy: MAUPITI is the most efficient, then IBEX, then STM32.
        assert!(maupiti.energy_uj < ibex.energy_uj);
        assert!(maupiti.energy_uj < stm.energy_uj);
        // Code size: the vendor runtime dwarfs the bare-metal kernels.
        assert!(stm.code_bytes > 5 * maupiti.code_bytes);
    }

    #[test]
    fn platform_cycles_come_from_the_block_cached_engine() {
        use pcount_kernels::{Deployment, ExecMode, Target};
        let mut rng = StdRng::seed_from_u64(4);
        let (model, frame) = small_model(&mut rng);
        let deployment = Deployment::new(&model, Target::Maupiti).expect("deploy");
        assert_eq!(deployment.exec_mode(), ExecMode::BlockCached);
        // The Table-I cycle numbers include the pipeline stalls the flat
        // model cannot see, so re-measuring on the reference interpreter
        // must never yield more cycles.
        let cached_cycles = deployment.report(&frame).expect("report").cycles;
        let mut simple = deployment;
        simple.set_exec_mode(ExecMode::Simple);
        let simple_cycles = simple.report(&frame).expect("report").cycles;
        assert!(cached_cycles >= simple_cycles);
    }

    #[test]
    fn maupiti_code_is_slightly_larger_than_ibex_but_data_identical() {
        let mut rng = StdRng::seed_from_u64(1);
        let (model, frame) = small_model(&mut rng);
        let results = evaluate_on_platforms(&model, &frame).expect("platforms");
        let ibex = &results[1];
        let maupiti = &results[2];
        assert_eq!(ibex.data_bytes, maupiti.data_bytes);
        // The SIMD kernels differ in size from the scalar ones but both fit
        // comfortably in the 16 KB instruction memory.
        assert!(maupiti.code_bytes <= 16 * 1024);
        assert!(ibex.code_bytes <= 16 * 1024);
    }

    #[test]
    fn table_formatting_contains_all_rows() {
        let mut rng = StdRng::seed_from_u64(2);
        let (model, frame) = small_model(&mut rng);
        let results = evaluate_on_platforms(&model, &frame).expect("platforms");
        let rows = vec![Table1Row {
            model: "Mini".to_string(),
            results,
        }];
        let table = format_table1(&rows);
        assert!(table.contains("Mini"));
        assert!(table.contains("MAUPITI"));
        assert!(table.contains("STM32"));
        assert!(table.contains("IBEX"));
        assert_eq!(table.lines().count(), 4);
    }

    #[test]
    fn stm32_model_penalises_larger_networks() {
        let mut rng = StdRng::seed_from_u64(3);
        let (small, _) = small_model(&mut rng);
        // Same pipeline but with more channels => more MACs and data.
        let cfg = CnnConfig::seed().with_channels(16, 16, 32);
        let mut net = cfg.build(&mut rng);
        let folded = fold_sequential(cfg, &net).unwrap();
        let _ = &mut net;
        let qat = QatCnn::from_folded(&folded, PrecisionAssignment::uniform(Precision::Int8));
        let big = QuantizedCnn::from_qat(&qat);
        assert!(Stm32Model::cycles(&big) > Stm32Model::cycles(&small));
        assert!(Stm32Model::data_bytes(&big) > Stm32Model::data_bytes(&small));
        assert_eq!(Stm32Model::code_bytes(&big), Stm32Model::code_bytes(&small));
    }
}
