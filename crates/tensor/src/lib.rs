//! Dense row-major `f32` tensors and shape utilities.
//!
//! This crate is the numerical substrate of the MAUPITI people-counting
//! stack: a deliberately small, dependency-light n-dimensional array with
//! exactly the operations the training stack ([`pcount-nn`]), the NAS
//! ([`pcount-nas`]) and the quantization flow ([`pcount-quant`]) need.
//!
//! # Example
//!
//! ```
//! use pcount_tensor::Tensor;
//!
//! let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
//! let b = Tensor::full(&[2, 2], 0.5);
//! let c = a.matmul(&b);
//! assert_eq!(c.shape(), &[2, 2]);
//! assert!((c.at(&[0, 0]) - 1.5).abs() < 1e-6);
//! ```
//!
//! [`pcount-nn`]: https://docs.rs/pcount-nn
//! [`pcount-nas`]: https://docs.rs/pcount-nas
//! [`pcount-quant`]: https://docs.rs/pcount-quant

mod gemm;
mod shape;
mod tensor;

pub use gemm::{col2im, gemm, gemm_splits_columns, im2col, GemmScratch};
pub use shape::{broadcast_shapes, numel, strides_for, Shape, ShapeError};
pub use tensor::Tensor;

/// Deterministic xorshift-based pseudo random number generator used for
/// reproducible weight initialisation and data generation in tests.
///
/// The training crates use [`rand`] for heavy lifting; `SplitMix64` exists so
/// that low-level tensor tests do not depend on a particular `rand` version
/// and remain bit-reproducible across releases.
///
/// # Example
///
/// ```
/// use pcount_tensor::SplitMix64;
/// let mut rng = SplitMix64::new(42);
/// let a = rng.next_u64();
/// let b = rng.next_u64();
/// assert_ne!(a, b);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a new generator from a seed.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Returns the next 64-bit pseudo random value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Returns a uniform `f32` in `[0, 1)`.
    pub fn next_f32(&mut self) -> f32 {
        (self.next_u64() >> 40) as f32 / (1u64 << 24) as f32
    }

    /// Returns an approximately standard-normal `f32` (sum of 12 uniforms).
    pub fn next_normal(&mut self) -> f32 {
        let mut acc = 0.0f32;
        for _ in 0..12 {
            acc += self.next_f32();
        }
        acc - 6.0
    }
}

impl Default for SplitMix64 {
    fn default() -> Self {
        Self::new(0x5EED_5EED_5EED_5EED)
    }
}

#[cfg(test)]
mod rng_tests {
    use super::SplitMix64;

    #[test]
    fn splitmix_is_deterministic() {
        let mut a = SplitMix64::new(7);
        let mut b = SplitMix64::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn uniform_is_in_unit_interval() {
        let mut rng = SplitMix64::new(3);
        for _ in 0..1000 {
            let x = rng.next_f32();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn normal_has_reasonable_moments() {
        let mut rng = SplitMix64::new(11);
        let n = 20_000;
        let mut sum = 0.0f64;
        let mut sq = 0.0f64;
        for _ in 0..n {
            let x = rng.next_normal() as f64;
            sum += x;
            sq += x * x;
        }
        let mean = sum / n as f64;
        let var = sq / n as f64 - mean * mean;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }
}
