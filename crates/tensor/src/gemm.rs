//! Cache-blocked GEMM with a register-blocked micro-kernel, plus
//! `im2col`/`col2im` packing for convolution lowering.
//!
//! This module is the training hot path of the whole reproduction: every
//! `Conv2d` and `Linear` forward/backward in `pcount-nn` lowers to calls
//! into [`gemm`], and the QAT sweep in `pcount-core` rides the same code.
//! The design is the classic three-level blocking of Goto-style GEMMs,
//! scaled down for the model sizes of this paper (matrices up to a few
//! hundred on a side):
//!
//! * the innermost **micro-kernel** keeps an `MR x NR` accumulator tile in
//!   registers and streams packed panels of A and B through it (the `NR`
//!   dimension auto-vectorises);
//! * operands are **packed** into panel-major buffers once per cache
//!   block, which makes transposed operands free (packing reads through
//!   strides) and keeps the micro-kernel's memory traffic unit-stride;
//! * packing buffers live in a caller-owned [`GemmScratch`] **arena** so a
//!   training loop that issues thousands of small GEMMs per epoch performs
//!   zero allocations after warm-up.
//!
//! Accumulation order is fixed by the blocking (k is swept in `KC` chunks,
//! innermost), so results are deterministic across runs and threads —
//! parallel fold training in `pcount-core` relies on this.
//!
//! Large products additionally fan out over the persistent
//! [`pcount_runtime`] worker pool: the N dimension is split into
//! [`NR`]-aligned column strips, one strip per task, each packed and
//! multiplied with a per-worker thread-local arena. Because `c[i][j]`
//! only ever involves row `i` of A and column `j` of B, and the k sweep
//! inside a strip is the exact serial schedule, **every output element
//! sees the same accumulation order for any pool size** — parallel GEMM
//! is bit-identical to serial GEMM (asserted by proptests and the
//! `train_throughput` bench tripwire).

use pcount_runtime::SendPtr;

/// Rows of the register tile (accumulator height).
const MR: usize = 4;
/// Columns of the register tile; 16 f32 lanes vectorise to 2–4 SIMD
/// registers per accumulator row.
const NR: usize = 16;
/// k-dimension cache block: one packed A panel column stays in L1/L2.
const KC: usize = 256;
/// m-dimension cache block (multiple of [`MR`]).
const MC: usize = 128;
/// n-dimension cache block (multiple of [`NR`]).
const NC: usize = 1024;
/// Minimum `m * n * k` MAC count before a GEMM fans out over the worker
/// pool; below this the submit/park round-trip outweighs the win.
const PAR_MIN_MACS: usize = 1 << 20;
/// Column-strip tasks created per pool worker (slack for load balance;
/// the split never affects results, only scheduling).
const PAR_TASKS_PER_WORKER: usize = 2;

/// Reusable packing arena for [`gemm`].
///
/// Holds the panel-major copies of the current A and B cache blocks. Create
/// one per training thread (it is cheap when empty) and pass it to every
/// GEMM call; buffers grow to the high-water mark of the workload and are
/// never shrunk, so steady-state training performs no allocation.
///
/// # Example
///
/// ```
/// use pcount_tensor::{gemm, GemmScratch};
/// let (a, b) = (vec![1.0f32; 6], vec![1.0f32; 6]);
/// let mut c = vec![0.0f32; 4];
/// let mut scratch = GemmScratch::default();
/// // C[2x2] = A[2x3] * B[3x2]
/// gemm(&mut scratch, false, false, 2, 2, 3, &a, &b, &mut c, false);
/// assert_eq!(c, vec![3.0; 4]);
/// ```
#[derive(Debug, Default)]
pub struct GemmScratch {
    packed_a: Vec<f32>,
    packed_b: Vec<f32>,
    /// Reusable auxiliary buffers (see [`GemmScratch::take_aux`]).
    aux: Vec<Vec<f32>>,
}

impl GemmScratch {
    /// Borrows a reusable auxiliary buffer out of the arena (empty, but
    /// with whatever capacity earlier uses grew it to). `pcount-nn`
    /// stages its im2col column matrices, column gradients and per-image
    /// gradient partials in these so the training grad path performs no
    /// steady-state allocation; return the buffer with
    /// [`GemmScratch::give_aux`] when done.
    pub fn take_aux(&mut self) -> Vec<f32> {
        self.aux.pop().unwrap_or_default()
    }

    /// Returns a buffer obtained from [`GemmScratch::take_aux`] to the
    /// arena for reuse.
    pub fn give_aux(&mut self, mut buf: Vec<f32>) {
        buf.clear();
        self.aux.push(buf);
    }
}

impl Clone for GemmScratch {
    /// Clones are fresh arenas: packed panels are transient per-call state
    /// and copying them would only waste memory.
    fn clone(&self) -> Self {
        Self::default()
    }
}

/// `C[m x n] = A_eff[m x k] · B_eff[k x n]` (`+=` when `accumulate`).
///
/// `A_eff` is `a` interpreted as row-major `[m, k]`, or as the transpose
/// of row-major `[k, m]` when `trans_a` is set; `B_eff` likewise is
/// `[k, n]` or the transpose of `[n, k]` when `trans_b` is set. `c` is
/// always row-major `[m, n]` and is overwritten unless `accumulate` asks
/// for `C += A·B` (used to accumulate weight gradients in place).
///
/// # Panics
///
/// Panics if any slice is shorter than its shape implies.
#[allow(clippy::too_many_arguments)]
pub fn gemm(
    scratch: &mut GemmScratch,
    trans_a: bool,
    trans_b: bool,
    m: usize,
    n: usize,
    k: usize,
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    accumulate: bool,
) {
    assert!(a.len() >= m * k, "gemm: A too short for {m}x{k}");
    assert!(b.len() >= k * n, "gemm: B too short for {k}x{n}");
    assert!(c.len() >= m * n, "gemm: C too short for {m}x{n}");
    if m == 0 || n == 0 {
        return;
    }
    if k == 0 {
        if !accumulate {
            c[..m * n].fill(0.0);
        }
        return;
    }
    // Observability only: one relaxed atomic load while telemetry is
    // disabled, a scoped "gemm" span otherwise. Results are unaffected.
    let _span = pcount_telemetry::span("gemm");
    // Element (r, c) of an effective operand lives at `r*rs + c*cs`.
    let (rs_a, cs_a) = if trans_a { (1, m) } else { (k, 1) };
    let (rs_b, cs_b) = if trans_b { (1, k) } else { (n, 1) };

    let pool = pcount_runtime::current();
    if pool.width() > 1 && gemm_splits_columns(m, n, k) {
        // Fan the NR-aligned column strips out over the persistent pool.
        // Each task runs the full serial k/m blocking restricted to its
        // strip with a per-worker thread-local arena, so results are
        // bit-identical to the serial sweep for any pool size (c[i][j]
        // never depends on which strip j landed in).
        thread_local! {
            static PAR_SCRATCH: std::cell::RefCell<GemmScratch> =
                RefCell::new(GemmScratch::default());
        }
        use std::cell::RefCell;
        let panels = n.div_ceil(NR);
        let max_tasks = pool.width() * PAR_TASKS_PER_WORKER;
        let strip_cols = panels.div_ceil(max_tasks).max(1) * NR;
        let tasks = n.div_ceil(strip_cols);
        let cp = SendPtr::new(c.as_mut_ptr());
        pool.run(tasks, |t| {
            let j_lo = t * strip_cols;
            let j_hi = (j_lo + strip_cols).min(n);
            PAR_SCRATCH.with(|s| {
                gemm_cols(
                    &mut s.borrow_mut(),
                    m,
                    n,
                    k,
                    a,
                    b,
                    &cp,
                    (rs_a, cs_a),
                    (rs_b, cs_b),
                    j_lo,
                    j_hi,
                    accumulate,
                );
            });
        });
        return;
    }
    let cp = SendPtr::new(c.as_mut_ptr());
    gemm_cols(
        scratch,
        m,
        n,
        k,
        a,
        b,
        &cp,
        (rs_a, cs_a),
        (rs_b, cs_b),
        0,
        n,
        accumulate,
    );
}

/// True when a `[m x k] · [k x n]` product is large enough for [`gemm`]
/// to fan its column strips out over the worker pool (it still runs
/// serially when the current pool has width 1). Results never depend on
/// the answer — the split is bit-identical — so this exists only for
/// tests and benches to confirm they exercise the parallel path.
pub fn gemm_splits_columns(m: usize, n: usize, k: usize) -> bool {
    n >= 2 * NR && m.saturating_mul(n).saturating_mul(k) >= PAR_MIN_MACS
}

/// The serial Goto blocking restricted to the output columns
/// `[j_lo, j_hi)`: exactly the historical `gemm` loop nest with the `jc`
/// sweep clipped to the strip. Every task of a parallel GEMM runs this
/// over its own strip; the serial path runs it once over `[0, n)`.
#[allow(clippy::too_many_arguments)]
fn gemm_cols(
    scratch: &mut GemmScratch,
    m: usize,
    n: usize,
    k: usize,
    a: &[f32],
    b: &[f32],
    c: &SendPtr<f32>,
    (rs_a, cs_a): (usize, usize),
    (rs_b, cs_b): (usize, usize),
    j_lo: usize,
    j_hi: usize,
    accumulate: bool,
) {
    for pc in (0..k).step_by(KC) {
        let kc = KC.min(k - pc);
        let first_k_block = pc == 0;
        let mut jc = j_lo;
        while jc < j_hi {
            let nc = NC.min(j_hi - jc);
            pack_b(scratch, b, pc, jc, kc, nc, rs_b, cs_b);
            for ic in (0..m).step_by(MC) {
                let mc = MC.min(m - ic);
                pack_a(scratch, a, ic, pc, mc, kc, rs_a, cs_a);
                multiply_block(
                    scratch,
                    c,
                    n,
                    ic,
                    jc,
                    mc,
                    nc,
                    kc,
                    accumulate || !first_k_block,
                );
            }
            jc += nc;
        }
    }
}

/// Packs the `mc x kc` block of A starting at `(ic, pc)` into panels of
/// [`MR`] rows, zero-padding the ragged last panel.
#[allow(clippy::too_many_arguments)]
fn pack_a(
    scratch: &mut GemmScratch,
    a: &[f32],
    ic: usize,
    pc: usize,
    mc: usize,
    kc: usize,
    rs: usize,
    cs: usize,
) {
    let panels = mc.div_ceil(MR);
    scratch.packed_a.resize(panels * kc * MR, 0.0);
    for pi in 0..panels {
        let row0 = ic + pi * MR;
        let rows = MR.min(ic + mc - row0);
        let dst = &mut scratch.packed_a[pi * kc * MR..(pi + 1) * kc * MR];
        if rows < MR {
            dst.fill(0.0);
        }
        for (p, out) in dst.chunks_exact_mut(MR).enumerate() {
            let col = pc + p;
            for (i, slot) in out[..rows].iter_mut().enumerate() {
                *slot = a[(row0 + i) * rs + col * cs];
            }
        }
    }
}

/// Packs the `kc x nc` block of B starting at `(pc, jc)` into panels of
/// [`NR`] columns, zero-padding the ragged last panel.
#[allow(clippy::too_many_arguments)]
fn pack_b(
    scratch: &mut GemmScratch,
    b: &[f32],
    pc: usize,
    jc: usize,
    kc: usize,
    nc: usize,
    rs: usize,
    cs: usize,
) {
    let panels = nc.div_ceil(NR);
    scratch.packed_b.resize(panels * kc * NR, 0.0);
    for pj in 0..panels {
        let col0 = jc + pj * NR;
        let cols = NR.min(jc + nc - col0);
        let dst = &mut scratch.packed_b[pj * kc * NR..(pj + 1) * kc * NR];
        if cols < NR {
            dst.fill(0.0);
        }
        for (p, out) in dst.chunks_exact_mut(NR).enumerate() {
            let row = pc + p;
            if cs == 1 {
                // Contiguous source row: straight copy (the common
                // non-transposed case vectorises to memcpy).
                let base = row * rs + col0;
                out[..cols].copy_from_slice(&b[base..base + cols]);
            } else {
                for (j, slot) in out[..cols].iter_mut().enumerate() {
                    *slot = b[row * rs + (col0 + j) * cs];
                }
            }
        }
    }
}

/// Multiplies the packed A block by the packed B block into the `C` tile
/// at `(ic, jc)`, storing through the shared raw-pointer writer (column
/// strips of one GEMM may be running on other workers; this tile's
/// columns are exclusively ours).
#[allow(clippy::too_many_arguments)]
fn multiply_block(
    scratch: &GemmScratch,
    c: &SendPtr<f32>,
    ldc: usize,
    ic: usize,
    jc: usize,
    mc: usize,
    nc: usize,
    kc: usize,
    accumulate: bool,
) {
    let m_panels = mc.div_ceil(MR);
    let n_panels = nc.div_ceil(NR);
    for pj in 0..n_panels {
        let pb = &scratch.packed_b[pj * kc * NR..(pj + 1) * kc * NR];
        let cols = NR.min(nc - pj * NR);
        for pi in 0..m_panels {
            let pa = &scratch.packed_a[pi * kc * MR..(pi + 1) * kc * MR];
            let rows = MR.min(mc - pi * MR);
            let mut acc = [[0.0f32; NR]; MR];
            microkernel(kc, pa, pb, &mut acc);
            let c_row0 = ic + pi * MR;
            let c_col0 = jc + pj * NR;
            for (i, acc_row) in acc.iter().enumerate().take(rows) {
                // SAFETY: the tile's rows stay inside the caller-checked
                // `m x ldc` bounds of C, and no other strip writes the
                // columns [c_col0, c_col0 + cols).
                unsafe {
                    let dst = c.ptr().add((c_row0 + i) * ldc + c_col0);
                    if accumulate {
                        for (j, &v) in acc_row.iter().enumerate().take(cols) {
                            *dst.add(j) += v;
                        }
                    } else {
                        std::ptr::copy_nonoverlapping(acc_row.as_ptr(), dst, cols);
                    }
                }
            }
        }
    }
}

/// The register-blocked inner kernel: `acc[MR][NR] += pa ⊗ pb` over `kc`
/// rank-1 updates. `pa`/`pb` are panel-major, so every iteration reads
/// `MR + NR` contiguous floats; the `NR` loop vectorises.
#[inline(always)]
fn microkernel(kc: usize, pa: &[f32], pb: &[f32], acc: &mut [[f32; NR]; MR]) {
    for (a, b) in pa.chunks_exact(MR).zip(pb.chunks_exact(NR)).take(kc) {
        for (i, acc_row) in acc.iter_mut().enumerate() {
            let ai = a[i];
            for (j, slot) in acc_row.iter_mut().enumerate() {
                *slot += ai * b[j];
            }
        }
    }
}

/// Lowers one `[c, h, w]` image into a `[c*k*k, ho*wo]` column matrix for
/// a `k x k` convolution with the given stride and zero padding, writing
/// into `col` (resized, previous contents discarded).
///
/// Row `(ci*k + ky)*k + kx` of the column matrix holds, for every output
/// position `(oy, ox)`, the input value under kernel tap `(ky, kx)` of
/// channel `ci` — zero where the tap falls into the padding. A convolution
/// then becomes `out[co][oy*wo+ox] = Σ W[co][row] · col[row][oy*wo+ox]`,
/// i.e. one GEMM per image.
///
/// Returns `(ho, wo)`.
///
/// # Panics
///
/// Panics if `src` is shorter than `c*h*w` or the geometry yields an empty
/// output.
#[allow(clippy::too_many_arguments)]
pub fn im2col(
    src: &[f32],
    c: usize,
    h: usize,
    w: usize,
    k: usize,
    stride: usize,
    padding: usize,
    col: &mut Vec<f32>,
) -> (usize, usize) {
    assert!(src.len() >= c * h * w, "im2col: image too short");
    assert!(stride > 0 && k > 0, "im2col: degenerate geometry");
    let ho = (h + 2 * padding - k) / stride + 1;
    let wo = (w + 2 * padding - k) / stride + 1;
    col.resize(c * k * k * ho * wo, 0.0);
    for ci in 0..c {
        let img = &src[ci * h * w..(ci + 1) * h * w];
        for ky in 0..k {
            for kx in 0..k {
                let row = (ci * k + ky) * k + kx;
                let dst = &mut col[row * ho * wo..(row + 1) * ho * wo];
                for oy in 0..ho {
                    let iy = (oy * stride + ky) as isize - padding as isize;
                    let line = &mut dst[oy * wo..(oy + 1) * wo];
                    if iy < 0 || iy >= h as isize {
                        line.fill(0.0);
                        continue;
                    }
                    let src_line = &img[iy as usize * w..(iy as usize + 1) * w];
                    // Valid ox range: 0 <= ox*stride + kx - padding < w.
                    let (lo, hi) = valid_range(wo, w, kx, stride, padding);
                    line[..lo].fill(0.0);
                    line[hi..].fill(0.0);
                    if lo >= hi {
                        // The tap never lands in-bounds on this row (the
                        // kernel overhangs the full width); everything is
                        // already zero-filled and the copy offset below
                        // would underflow.
                        continue;
                    }
                    if stride == 1 {
                        // For stride 1 the inner gather is a straight copy
                        // (a non-empty range pins lo + kx >= padding).
                        let start = lo + kx - padding;
                        line[lo..hi].copy_from_slice(&src_line[start..start + (hi - lo)]);
                    } else {
                        for (ox, slot) in line[lo..hi].iter_mut().enumerate() {
                            let ix = ((lo + ox) * stride + kx) as isize - padding as isize;
                            *slot = src_line[ix as usize];
                        }
                    }
                }
            }
        }
    }
    (ho, wo)
}

/// Scatter-adds a `[c*k*k, ho*wo]` column-matrix gradient back onto the
/// `[c, h, w]` image gradient (`dst += col2im(col)`): the exact adjoint of
/// [`im2col`], used for the convolution input gradient.
///
/// # Panics
///
/// Panics if the slices are shorter than their shapes imply.
#[allow(clippy::too_many_arguments)]
pub fn col2im(
    col: &[f32],
    c: usize,
    h: usize,
    w: usize,
    k: usize,
    stride: usize,
    padding: usize,
    dst: &mut [f32],
) {
    assert!(dst.len() >= c * h * w, "col2im: image too short");
    assert!(stride > 0 && k > 0, "col2im: degenerate geometry");
    let ho = (h + 2 * padding - k) / stride + 1;
    let wo = (w + 2 * padding - k) / stride + 1;
    assert!(col.len() >= c * k * k * ho * wo, "col2im: column too short");
    for ci in 0..c {
        let img = &mut dst[ci * h * w..(ci + 1) * h * w];
        for ky in 0..k {
            for kx in 0..k {
                let row = (ci * k + ky) * k + kx;
                let src = &col[row * ho * wo..(row + 1) * ho * wo];
                for oy in 0..ho {
                    let iy = (oy * stride + ky) as isize - padding as isize;
                    if iy < 0 || iy >= h as isize {
                        continue;
                    }
                    let line = &src[oy * wo..(oy + 1) * wo];
                    let img_line = &mut img[iy as usize * w..(iy as usize + 1) * w];
                    let (lo, hi) = valid_range(wo, w, kx, stride, padding);
                    for (ox, &v) in line[lo..hi].iter().enumerate() {
                        let ix = ((lo + ox) * stride + kx) as isize - padding as isize;
                        img_line[ix as usize] += v;
                    }
                }
            }
        }
    }
}

/// Output-column range `[lo, hi)` whose kernel tap `kx` lands inside
/// `[0, w)` for the given stride/padding.
fn valid_range(wo: usize, w: usize, kx: usize, stride: usize, padding: usize) -> (usize, usize) {
    let lo = padding.saturating_sub(kx).div_ceil(stride).min(wo);
    // Largest ox with ox*stride + kx - padding <= w - 1.
    let hi = if w + padding > kx {
        ((w + padding - 1 - kx) / stride + 1).min(wo)
    } else {
        0
    };
    (lo, hi.max(lo))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SplitMix64;

    fn random_vec(n: usize, rng: &mut SplitMix64) -> Vec<f32> {
        (0..n).map(|_| rng.next_f32() * 2.0 - 1.0).collect()
    }

    /// Naive reference: C = A_eff · B_eff with the same effective-operand
    /// convention as [`gemm`].
    #[allow(clippy::too_many_arguments)]
    fn reference(
        trans_a: bool,
        trans_b: bool,
        m: usize,
        n: usize,
        k: usize,
        a: &[f32],
        b: &[f32],
    ) -> Vec<f32> {
        let a_at = |i: usize, p: usize| if trans_a { a[p * m + i] } else { a[i * k + p] };
        let b_at = |p: usize, j: usize| if trans_b { b[j * k + p] } else { b[p * n + j] };
        let mut c = vec![0.0f32; m * n];
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0f64;
                for p in 0..k {
                    acc += (a_at(i, p) * b_at(p, j)) as f64;
                }
                c[i * n + j] = acc as f32;
            }
        }
        c
    }

    fn assert_close(got: &[f32], want: &[f32], tol: f32) {
        assert_eq!(got.len(), want.len());
        for (i, (&g, &w)) in got.iter().zip(want.iter()).enumerate() {
            let scale = 1.0f32.max(w.abs());
            assert!(
                (g - w).abs() <= tol * scale,
                "element {i}: got {g}, want {w}"
            );
        }
    }

    #[test]
    fn gemm_matches_reference_across_shapes_and_transposes() {
        let mut rng = SplitMix64::new(1);
        for &(m, n, k) in &[
            (1, 1, 1),
            (3, 5, 7),
            (4, 16, 8),
            (5, 17, 9),
            (MR, NR, KC),
            (MR + 1, NR + 1, KC + 1),
            (33, 70, 41),
            (130, 65, 260),
        ] {
            for &(ta, tb) in &[(false, false), (true, false), (false, true), (true, true)] {
                let a = random_vec(m * k, &mut rng);
                let b = random_vec(k * n, &mut rng);
                let mut c = vec![f32::NAN; m * n];
                let mut scratch = GemmScratch::default();
                gemm(&mut scratch, ta, tb, m, n, k, &a, &b, &mut c, false);
                let want = reference(ta, tb, m, n, k, &a, &b);
                assert_close(&c, &want, 1e-5);
            }
        }
    }

    #[test]
    fn gemm_accumulate_adds_onto_existing_c() {
        let mut rng = SplitMix64::new(2);
        let (m, n, k) = (7, 19, 300);
        let a = random_vec(m * k, &mut rng);
        let b = random_vec(k * n, &mut rng);
        let init = random_vec(m * n, &mut rng);
        let mut c = init.clone();
        let mut scratch = GemmScratch::default();
        gemm(&mut scratch, false, false, m, n, k, &a, &b, &mut c, true);
        let mut want = reference(false, false, m, n, k, &a, &b);
        for (w, &i) in want.iter_mut().zip(init.iter()) {
            *w += i;
        }
        assert_close(&c, &want, 1e-4);
    }

    #[test]
    fn gemm_with_zero_k_clears_or_preserves_c() {
        let mut scratch = GemmScratch::default();
        let mut c = vec![3.0f32; 4];
        gemm(&mut scratch, false, false, 2, 2, 0, &[], &[], &mut c, false);
        assert_eq!(c, vec![0.0; 4]);
        let mut c = vec![3.0f32; 4];
        gemm(&mut scratch, false, false, 2, 2, 0, &[], &[], &mut c, true);
        assert_eq!(c, vec![3.0; 4]);
    }

    #[test]
    fn gemm_is_deterministic_across_calls_and_scratch_reuse() {
        let mut rng = SplitMix64::new(3);
        let (m, n, k) = (31, 47, 129);
        let a = random_vec(m * k, &mut rng);
        let b = random_vec(k * n, &mut rng);
        let mut scratch = GemmScratch::default();
        let mut c1 = vec![0.0f32; m * n];
        gemm(&mut scratch, false, false, m, n, k, &a, &b, &mut c1, false);
        let mut c2 = vec![0.0f32; m * n];
        gemm(&mut scratch, false, false, m, n, k, &a, &b, &mut c2, false);
        let mut c3 = vec![0.0f32; m * n];
        gemm(
            &mut GemmScratch::default(),
            false,
            false,
            m,
            n,
            k,
            &a,
            &b,
            &mut c3,
            false,
        );
        assert_eq!(c1, c2, "scratch reuse must not change results");
        assert_eq!(c1, c3, "fresh scratch must not change results");
    }

    /// Direct per-element convolution used as the im2col oracle.
    #[allow(clippy::too_many_arguments)]
    fn conv_reference(
        src: &[f32],
        weight: &[f32],
        c: usize,
        h: usize,
        w: usize,
        co: usize,
        k: usize,
        stride: usize,
        padding: usize,
    ) -> Vec<f32> {
        let ho = (h + 2 * padding - k) / stride + 1;
        let wo = (w + 2 * padding - k) / stride + 1;
        let mut out = vec![0.0f32; co * ho * wo];
        for o in 0..co {
            for oy in 0..ho {
                for ox in 0..wo {
                    let mut acc = 0.0f32;
                    for ci in 0..c {
                        for ky in 0..k {
                            for kx in 0..k {
                                let iy = (oy * stride + ky) as isize - padding as isize;
                                let ix = (ox * stride + kx) as isize - padding as isize;
                                if iy < 0 || iy >= h as isize || ix < 0 || ix >= w as isize {
                                    continue;
                                }
                                acc += src[(ci * h + iy as usize) * w + ix as usize]
                                    * weight[((o * c + ci) * k + ky) * k + kx];
                            }
                        }
                    }
                    out[(o * ho + oy) * wo + ox] = acc;
                }
            }
        }
        out
    }

    #[test]
    fn im2col_gemm_equals_direct_convolution() {
        let mut rng = SplitMix64::new(4);
        for &(c, h, w, co, k, stride, padding) in &[
            (1, 8, 8, 4, 3, 1, 1),
            (3, 8, 8, 5, 3, 1, 1),
            (2, 9, 7, 3, 3, 2, 1),
            (2, 8, 8, 3, 1, 1, 0),
            (1, 5, 5, 2, 5, 1, 2),
            (2, 6, 6, 4, 3, 3, 0),
        ] {
            let src = random_vec(c * h * w, &mut rng);
            let weight = random_vec(co * c * k * k, &mut rng);
            let mut col = Vec::new();
            let (ho, wo) = im2col(&src, c, h, w, k, stride, padding, &mut col);
            let mut out = vec![0.0f32; co * ho * wo];
            let mut scratch = GemmScratch::default();
            gemm(
                &mut scratch,
                false,
                false,
                co,
                ho * wo,
                c * k * k,
                &weight,
                &col,
                &mut out,
                false,
            );
            let want = conv_reference(&src, &weight, c, h, w, co, k, stride, padding);
            assert_close(&out, &want, 1e-5);
        }
    }

    #[test]
    fn col2im_is_the_adjoint_of_im2col() {
        // <im2col(x), y> == <x, col2im(y)> for random x, y: the defining
        // property of an adjoint pair, which is exactly what the conv
        // backward pass needs.
        let mut rng = SplitMix64::new(5);
        for &(c, h, w, k, stride, padding) in &[
            (2, 8, 8, 3, 1, 1),
            (1, 7, 9, 3, 2, 1),
            (3, 5, 5, 1, 1, 0),
            (1, 6, 6, 3, 3, 0),
        ] {
            let x = random_vec(c * h * w, &mut rng);
            let mut col = Vec::new();
            let (ho, wo) = im2col(&x, c, h, w, k, stride, padding, &mut col);
            let y = random_vec(c * k * k * ho * wo, &mut rng);
            let lhs: f64 = col
                .iter()
                .zip(y.iter())
                .map(|(&a, &b)| (a * b) as f64)
                .sum();
            let mut back = vec![0.0f32; c * h * w];
            col2im(&y, c, h, w, k, stride, padding, &mut back);
            let rhs: f64 = x
                .iter()
                .zip(back.iter())
                .map(|(&a, &b)| (a * b) as f64)
                .sum();
            assert!(
                (lhs - rhs).abs() <= 1e-3 * lhs.abs().max(1.0),
                "adjoint mismatch: {lhs} vs {rhs}"
            );
        }
    }

    #[test]
    fn im2col_handles_kernels_overhanging_the_full_width() {
        // k > w: some kernel taps never land in-bounds on any output
        // column — their rows must come back all-zero instead of
        // panicking on an underflowed copy offset (regression test).
        let (c, h, w, k, stride, padding) = (1, 6, 2, 6, 1, 2);
        let src: Vec<f32> = (0..c * h * w).map(|i| i as f32 + 1.0).collect();
        let mut col = Vec::new();
        let (ho, wo) = im2col(&src, c, h, w, k, stride, padding, &mut col);
        assert_eq!((ho, wo), (5, 1));
        // Tap kx=5 needs ix = 0*1 + 5 - 2 = 3 >= w for every ox: all zero.
        for ky in 0..k {
            let row = (ky * k + 5) * ho * wo;
            assert!(col[row..row + ho * wo].iter().all(|&v| v == 0.0));
        }
        // And the whole matrix still matches the direct convolution.
        let weight = vec![1.0f32; k * k];
        let mut out = vec![0.0f32; ho * wo];
        let mut scratch = GemmScratch::default();
        gemm(
            &mut scratch,
            false,
            false,
            1,
            ho * wo,
            c * k * k,
            &weight,
            &col,
            &mut out,
            false,
        );
        let want = conv_reference(&src, &weight, c, h, w, 1, k, stride, padding);
        assert_close(&out, &want, 1e-5);
    }

    #[test]
    fn col2im_accumulates_into_existing_gradient() {
        let (c, h, w, k) = (1, 4, 4, 3);
        let x = vec![1.0f32; c * h * w];
        let mut col = Vec::new();
        let _ = im2col(&x, c, h, w, k, 1, 1, &mut col);
        let ones = vec![1.0f32; col.len()];
        let mut dst = vec![10.0f32; c * h * w];
        col2im(&ones, c, h, w, k, 1, 1, &mut dst);
        // Every interior pixel is covered by k*k = 9 taps; corners by 4.
        assert_eq!(dst[5], 19.0);
        assert_eq!(dst[0], 14.0);
    }
}
