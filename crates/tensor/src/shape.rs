//! Shape arithmetic shared by all tensor operations.

use std::fmt;

/// A tensor shape: the length of each dimension, outermost first.
pub type Shape = Vec<usize>;

/// Error returned when two shapes are incompatible for an operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShapeError {
    /// Human-readable description of the mismatch.
    pub message: String,
}

impl fmt::Display for ShapeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "shape error: {}", self.message)
    }
}

impl std::error::Error for ShapeError {}

impl ShapeError {
    /// Creates a new error with the given message.
    pub fn new(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }
}

/// Returns the number of elements described by `shape`.
///
/// An empty shape describes a scalar and has one element.
///
/// # Example
///
/// ```
/// assert_eq!(pcount_tensor::numel(&[2, 3, 4]), 24);
/// assert_eq!(pcount_tensor::numel(&[]), 1);
/// ```
pub fn numel(shape: &[usize]) -> usize {
    shape.iter().product()
}

/// Returns row-major strides for `shape`.
///
/// # Example
///
/// ```
/// assert_eq!(pcount_tensor::strides_for(&[2, 3, 4]), vec![12, 4, 1]);
/// ```
pub fn strides_for(shape: &[usize]) -> Vec<usize> {
    let mut strides = vec![1usize; shape.len()];
    for i in (0..shape.len().saturating_sub(1)).rev() {
        strides[i] = strides[i + 1] * shape[i + 1];
    }
    strides
}

/// Computes the broadcast of two shapes following NumPy semantics
/// (trailing dimensions must be equal or one of them must be 1).
///
/// # Errors
///
/// Returns [`ShapeError`] if the shapes cannot be broadcast together.
///
/// # Example
///
/// ```
/// let out = pcount_tensor::broadcast_shapes(&[4, 1, 3], &[2, 3]).unwrap();
/// assert_eq!(out, vec![4, 2, 3]);
/// ```
pub fn broadcast_shapes(a: &[usize], b: &[usize]) -> Result<Shape, ShapeError> {
    let rank = a.len().max(b.len());
    let mut out = vec![0usize; rank];
    for i in 0..rank {
        let da = if i < rank - a.len() {
            1
        } else {
            a[i - (rank - a.len())]
        };
        let db = if i < rank - b.len() {
            1
        } else {
            b[i - (rank - b.len())]
        };
        out[i] = if da == db || db == 1 {
            da
        } else if da == 1 {
            db
        } else {
            return Err(ShapeError::new(format!(
                "cannot broadcast {a:?} with {b:?} (dim {i}: {da} vs {db})"
            )));
        };
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numel_of_scalar_is_one() {
        assert_eq!(numel(&[]), 1);
    }

    #[test]
    fn numel_with_zero_dim_is_zero() {
        assert_eq!(numel(&[3, 0, 2]), 0);
    }

    #[test]
    fn strides_are_row_major() {
        assert_eq!(strides_for(&[5]), vec![1]);
        assert_eq!(strides_for(&[2, 3]), vec![3, 1]);
        assert_eq!(strides_for(&[2, 3, 4, 5]), vec![60, 20, 5, 1]);
    }

    #[test]
    fn broadcast_equal_shapes() {
        assert_eq!(broadcast_shapes(&[2, 3], &[2, 3]).unwrap(), vec![2, 3]);
    }

    #[test]
    fn broadcast_with_ones() {
        assert_eq!(broadcast_shapes(&[2, 1], &[1, 3]).unwrap(), vec![2, 3]);
        assert_eq!(broadcast_shapes(&[3], &[4, 3]).unwrap(), vec![4, 3]);
    }

    #[test]
    fn broadcast_mismatch_errors() {
        let err = broadcast_shapes(&[2, 3], &[4, 3]).unwrap_err();
        assert!(err.to_string().contains("cannot broadcast"));
    }
}
