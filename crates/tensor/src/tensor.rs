//! The dense row-major tensor type.

use crate::shape::{numel, strides_for, Shape};
use rand::Rng;

/// A dense, row-major, heap-allocated `f32` tensor.
///
/// `Tensor` is intentionally simple: data is always contiguous, operations
/// allocate their result, and all indexing is bounds-checked. The people
/// counting models are tiny (8x8 inputs, tens of thousands of parameters)
/// so clarity wins over zero-copy tricks.
///
/// # Example
///
/// ```
/// use pcount_tensor::Tensor;
/// let x = Tensor::zeros(&[1, 1, 8, 8]);
/// assert_eq!(x.numel(), 64);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor {
    data: Vec<f32>,
    shape: Shape,
    strides: Vec<usize>,
}

impl Tensor {
    /// Creates a tensor filled with zeros.
    pub fn zeros(shape: &[usize]) -> Self {
        Self::full(shape, 0.0)
    }

    /// Creates a tensor filled with ones.
    pub fn ones(shape: &[usize]) -> Self {
        Self::full(shape, 1.0)
    }

    /// Creates a tensor filled with `value`.
    pub fn full(shape: &[usize], value: f32) -> Self {
        Self {
            data: vec![value; numel(shape)],
            shape: shape.to_vec(),
            strides: strides_for(shape),
        }
    }

    /// Creates a tensor from a flat row-major vector.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` does not match the number of elements implied
    /// by `shape`.
    pub fn from_vec(data: Vec<f32>, shape: &[usize]) -> Self {
        assert_eq!(
            data.len(),
            numel(shape),
            "data length {} does not match shape {:?}",
            data.len(),
            shape
        );
        Self {
            data,
            shape: shape.to_vec(),
            strides: strides_for(shape),
        }
    }

    /// Creates a tensor with elements drawn from a normal distribution
    /// `N(0, std^2)` using the provided random number generator.
    pub fn randn<R: Rng>(shape: &[usize], std: f32, rng: &mut R) -> Self {
        let n = numel(shape);
        let mut data = Vec::with_capacity(n);
        for _ in 0..n {
            // Box-Muller transform.
            let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
            let u2: f32 = rng.gen_range(0.0..1.0);
            let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos();
            data.push(z * std);
        }
        Self::from_vec(data, shape)
    }

    /// Creates a tensor with elements drawn uniformly from `[lo, hi)`.
    pub fn rand_uniform<R: Rng>(shape: &[usize], lo: f32, hi: f32, rng: &mut R) -> Self {
        let n = numel(shape);
        let mut data = Vec::with_capacity(n);
        for _ in 0..n {
            data.push(rng.gen_range(lo..hi));
        }
        Self::from_vec(data, shape)
    }

    /// Returns the shape.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Returns the row-major strides.
    pub fn strides(&self) -> &[usize] {
        &self.strides
    }

    /// Returns the number of elements.
    pub fn numel(&self) -> usize {
        self.data.len()
    }

    /// Returns a view of the underlying flat data.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Returns a mutable view of the underlying flat data.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor and returns its flat data.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Returns a copy with a new shape describing the same number of
    /// elements.
    ///
    /// # Panics
    ///
    /// Panics if the new shape has a different number of elements.
    pub fn reshape(&self, shape: &[usize]) -> Self {
        assert_eq!(
            self.numel(),
            numel(shape),
            "cannot reshape {:?} ({}) into {:?} ({})",
            self.shape,
            self.numel(),
            shape,
            numel(shape)
        );
        Self::from_vec(self.data.clone(), shape)
    }

    /// Flat offset of a multi-dimensional index.
    ///
    /// # Panics
    ///
    /// Panics if `index` has the wrong rank or is out of bounds.
    pub fn offset(&self, index: &[usize]) -> usize {
        assert_eq!(index.len(), self.shape.len(), "index rank mismatch");
        let mut off = 0usize;
        for (i, (&idx, &dim)) in index.iter().zip(self.shape.iter()).enumerate() {
            assert!(idx < dim, "index {idx} out of bounds for dim {i} ({dim})");
            off += idx * self.strides[i];
        }
        off
    }

    /// Returns the element at a multi-dimensional index.
    pub fn at(&self, index: &[usize]) -> f32 {
        self.data[self.offset(index)]
    }

    /// Sets the element at a multi-dimensional index.
    pub fn set(&mut self, index: &[usize], value: f32) {
        let off = self.offset(index);
        self.data[off] = value;
    }

    /// Element-wise map into a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Self {
        Self::from_vec(self.data.iter().map(|&x| f(x)).collect(), &self.shape)
    }

    /// Element-wise in-place map.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for x in &mut self.data {
            *x = f(*x);
        }
    }

    /// Element-wise binary op with another tensor of identical shape.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn zip(&self, other: &Self, f: impl Fn(f32, f32) -> f32) -> Self {
        assert_eq!(
            self.shape, other.shape,
            "zip requires identical shapes ({:?} vs {:?})",
            self.shape, other.shape
        );
        Self::from_vec(
            self.data
                .iter()
                .zip(other.data.iter())
                .map(|(&a, &b)| f(a, b))
                .collect(),
            &self.shape,
        )
    }

    /// Element-wise addition.
    pub fn add(&self, other: &Self) -> Self {
        self.zip(other, |a, b| a + b)
    }

    /// Element-wise subtraction.
    pub fn sub(&self, other: &Self) -> Self {
        self.zip(other, |a, b| a - b)
    }

    /// Element-wise multiplication (Hadamard product).
    pub fn mul(&self, other: &Self) -> Self {
        self.zip(other, |a, b| a * b)
    }

    /// Multiplies every element by a scalar.
    pub fn scale(&self, s: f32) -> Self {
        self.map(|x| x * s)
    }

    /// In-place `self += other * alpha` (axpy). Shapes must match.
    pub fn axpy(&mut self, alpha: f32, other: &Self) {
        assert_eq!(self.shape, other.shape, "axpy shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += alpha * b;
        }
    }

    /// Fills the tensor with a constant.
    pub fn fill(&mut self, value: f32) {
        for x in &mut self.data {
            *x = value;
        }
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all elements (0 for an empty tensor).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Maximum element (negative infinity for an empty tensor).
    pub fn max(&self) -> f32 {
        self.data.iter().copied().fold(f32::NEG_INFINITY, f32::max)
    }

    /// Minimum element (positive infinity for an empty tensor).
    pub fn min(&self) -> f32 {
        self.data.iter().copied().fold(f32::INFINITY, f32::min)
    }

    /// Squared L2 norm of all elements.
    pub fn sq_norm(&self) -> f32 {
        self.data.iter().map(|&x| x * x).sum()
    }

    /// 2-D matrix multiplication: `self [m, k] x other [k, n] -> [m, n]`.
    ///
    /// Runs on the cache-blocked [`crate::gemm`] engine with a thread-local
    /// packing arena, so repeated products allocate nothing beyond the
    /// result tensor.
    ///
    /// # Panics
    ///
    /// Panics if either operand is not 2-D or the inner dimensions differ.
    pub fn matmul(&self, other: &Self) -> Self {
        use std::cell::RefCell;
        thread_local! {
            static SCRATCH: RefCell<crate::GemmScratch> =
                RefCell::new(crate::GemmScratch::default());
        }
        assert_eq!(self.shape.len(), 2, "matmul lhs must be 2-D");
        assert_eq!(other.shape.len(), 2, "matmul rhs must be 2-D");
        let (m, k) = (self.shape[0], self.shape[1]);
        let (k2, n) = (other.shape[0], other.shape[1]);
        assert_eq!(k, k2, "matmul inner dimension mismatch ({k} vs {k2})");
        let mut out = vec![0.0f32; m * n];
        SCRATCH.with(|scratch| {
            crate::gemm(
                &mut scratch.borrow_mut(),
                false,
                false,
                m,
                n,
                k,
                &self.data,
                &other.data,
                &mut out,
                false,
            );
        });
        Self::from_vec(out, &[m, n])
    }

    /// Transpose of a 2-D tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not 2-D.
    pub fn transpose(&self) -> Self {
        assert_eq!(self.shape.len(), 2, "transpose requires a 2-D tensor");
        let (m, n) = (self.shape[0], self.shape[1]);
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            for j in 0..n {
                out[j * m + i] = self.data[i * n + j];
            }
        }
        Self::from_vec(out, &[n, m])
    }

    /// Adds a 1-D bias of length `n` to every row of a 2-D `[m, n]` tensor.
    ///
    /// # Panics
    ///
    /// Panics if shapes are incompatible.
    pub fn add_row_bias(&self, bias: &Self) -> Self {
        assert_eq!(self.shape.len(), 2, "add_row_bias requires a 2-D tensor");
        assert_eq!(bias.shape.len(), 1, "bias must be 1-D");
        assert_eq!(self.shape[1], bias.shape[0], "bias length mismatch");
        let (m, n) = (self.shape[0], self.shape[1]);
        let mut out = self.data.clone();
        for i in 0..m {
            for j in 0..n {
                out[i * n + j] += bias.data[j];
            }
        }
        Self::from_vec(out, &[m, n])
    }

    /// Index of the maximum value along the last axis of a 2-D tensor,
    /// returned per row.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not 2-D or has zero columns.
    pub fn argmax_rows(&self) -> Vec<usize> {
        assert_eq!(self.shape.len(), 2, "argmax_rows requires a 2-D tensor");
        let (m, n) = (self.shape[0], self.shape[1]);
        assert!(n > 0, "argmax_rows requires at least one column");
        (0..m)
            .map(|i| {
                let row = &self.data[i * n..(i + 1) * n];
                let mut best = 0usize;
                for (j, &v) in row.iter().enumerate() {
                    if v > row[best] {
                        best = j;
                    }
                }
                best
            })
            .collect()
    }

    /// Returns `true` if every element differs from `other` by at most `tol`.
    pub fn approx_eq(&self, other: &Self, tol: f32) -> bool {
        self.shape == other.shape
            && self
                .data
                .iter()
                .zip(other.data.iter())
                .all(|(&a, &b)| (a - b).abs() <= tol)
    }
}

impl Default for Tensor {
    fn default() -> Self {
        Self::zeros(&[0])
    }
}

impl std::fmt::Display for Tensor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Tensor{:?}", self.shape)?;
        if self.numel() <= 16 {
            write!(f, " {:?}", self.data)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn constructors_have_expected_contents() {
        assert!(Tensor::zeros(&[3, 3]).data().iter().all(|&x| x == 0.0));
        assert!(Tensor::ones(&[3]).data().iter().all(|&x| x == 1.0));
        assert!(Tensor::full(&[2, 2], 7.5).data().iter().all(|&x| x == 7.5));
    }

    #[test]
    #[should_panic(expected = "data length")]
    fn from_vec_rejects_bad_length() {
        let _ = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[2, 2]);
    }

    #[test]
    fn indexing_round_trips() {
        let mut t = Tensor::zeros(&[2, 3, 4]);
        t.set(&[1, 2, 3], 9.0);
        assert_eq!(t.at(&[1, 2, 3]), 9.0);
        assert_eq!(t.offset(&[1, 2, 3]), 23);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn indexing_out_of_bounds_panics() {
        let t = Tensor::zeros(&[2, 2]);
        let _ = t.at(&[2, 0]);
    }

    #[test]
    fn matmul_matches_hand_computation() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let b = Tensor::from_vec(vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0], &[3, 2]);
        let c = a.matmul(&b);
        assert_eq!(c.shape(), &[2, 2]);
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_identity_is_noop() {
        let mut rng = StdRng::seed_from_u64(1);
        let a = Tensor::randn(&[4, 4], 1.0, &mut rng);
        let mut eye = Tensor::zeros(&[4, 4]);
        for i in 0..4 {
            eye.set(&[i, i], 1.0);
        }
        assert!(a.matmul(&eye).approx_eq(&a, 1e-6));
    }

    #[test]
    fn transpose_twice_is_identity() {
        let mut rng = StdRng::seed_from_u64(2);
        let a = Tensor::randn(&[3, 5], 1.0, &mut rng);
        assert!(a.transpose().transpose().approx_eq(&a, 0.0));
    }

    #[test]
    fn add_row_bias_adds_per_column() {
        let a = Tensor::zeros(&[2, 3]);
        let bias = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]);
        let out = a.add_row_bias(&bias);
        assert_eq!(out.data(), &[1.0, 2.0, 3.0, 1.0, 2.0, 3.0]);
    }

    #[test]
    fn argmax_rows_picks_largest() {
        let a = Tensor::from_vec(vec![0.1, 0.9, 0.0, 3.0, -1.0, 2.0], &[2, 3]);
        assert_eq!(a.argmax_rows(), vec![1, 0]);
    }

    #[test]
    fn reductions_are_consistent() {
        let a = Tensor::from_vec(vec![1.0, -2.0, 3.0, 4.0], &[4]);
        assert_eq!(a.sum(), 6.0);
        assert_eq!(a.mean(), 1.5);
        assert_eq!(a.max(), 4.0);
        assert_eq!(a.min(), -2.0);
        assert_eq!(a.sq_norm(), 1.0 + 4.0 + 9.0 + 16.0);
    }

    #[test]
    fn axpy_accumulates() {
        let mut a = Tensor::ones(&[3]);
        let b = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]);
        a.axpy(0.5, &b);
        assert_eq!(a.data(), &[1.5, 2.0, 2.5]);
    }

    #[test]
    fn randn_statistics_are_sane() {
        let mut rng = StdRng::seed_from_u64(3);
        let t = Tensor::randn(&[10_000], 2.0, &mut rng);
        assert!(t.mean().abs() < 0.1);
        let var = t.map(|x| x * x).mean() - t.mean() * t.mean();
        assert!((var - 4.0).abs() < 0.3, "var {var}");
    }

    proptest! {
        #[test]
        fn reshape_preserves_data(v in proptest::collection::vec(-100.0f32..100.0, 1..64)) {
            let n = v.len();
            let t = Tensor::from_vec(v.clone(), &[n]);
            let r = t.reshape(&[1, n]);
            prop_assert_eq!(r.data(), &v[..]);
            prop_assert_eq!(r.shape(), &[1, n]);
        }

        #[test]
        fn zip_add_commutes(
            v in proptest::collection::vec(-100.0f32..100.0, 8),
            w in proptest::collection::vec(-100.0f32..100.0, 8),
        ) {
            let a = Tensor::from_vec(v, &[2, 4]);
            let b = Tensor::from_vec(w, &[2, 4]);
            prop_assert!(a.add(&b).approx_eq(&b.add(&a), 1e-5));
        }

        #[test]
        fn offset_is_bijective_for_3d(
            i in 0usize..3, j in 0usize..4, k in 0usize..5,
        ) {
            let t = Tensor::zeros(&[3, 4, 5]);
            let off = t.offset(&[i, j, k]);
            prop_assert_eq!(off, i * 20 + j * 5 + k);
            prop_assert!(off < t.numel());
        }
    }
}
