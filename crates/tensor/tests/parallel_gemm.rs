//! Bit-identity of the pool-parallel GEMM against the serial engine.
//!
//! The blocked GEMM fans NR-aligned column strips out over the
//! `pcount-runtime` pool once products cross the size threshold. Because
//! every output element keeps the exact serial accumulation order inside
//! its strip, parallel results must be **bit-identical** — not merely
//! close — to the single-threaded sweep for any pool width, any
//! transpose combination and any N (including odd N not divisible by the
//! register panel width). These tests pin that contract.

use pcount_runtime::{install, Pool};
use pcount_tensor::{gemm, gemm_splits_columns, GemmScratch, SplitMix64};
use proptest::prelude::*;
use std::sync::OnceLock;

/// One shared pool per tested width; building threads once keeps the
/// proptest cases fast.
fn pool(width: usize) -> &'static Pool {
    static POOLS: OnceLock<Vec<Pool>> = OnceLock::new();
    let pools = POOLS.get_or_init(|| [1, 2, 4].into_iter().map(Pool::new).collect());
    match width {
        1 => &pools[0],
        2 => &pools[1],
        4 => &pools[2],
        _ => unreachable!("untested width"),
    }
}

fn random_vec(n: usize, rng: &mut SplitMix64) -> Vec<f32> {
    (0..n).map(|_| rng.next_f32() * 2.0 - 1.0).collect()
}

/// Runs the same GEMM under pools of width 1 / 2 / 4 and asserts the
/// three outputs are bit-identical.
#[allow(clippy::too_many_arguments)]
fn check_bit_identity(
    seed: u64,
    trans_a: bool,
    trans_b: bool,
    m: usize,
    n: usize,
    k: usize,
    accumulate: bool,
) {
    assert!(
        gemm_splits_columns(m, n, k),
        "test shape {m}x{n}x{k} must be large enough to take the parallel path"
    );
    let mut rng = SplitMix64::new(seed);
    let a = random_vec(m * k, &mut rng);
    let b = random_vec(k * n, &mut rng);
    let init = random_vec(m * n, &mut rng);
    let run = |width: usize| {
        let mut c = init.clone();
        install(pool(width), || {
            gemm(
                &mut GemmScratch::default(),
                trans_a,
                trans_b,
                m,
                n,
                k,
                &a,
                &b,
                &mut c,
                accumulate,
            );
        });
        c
    };
    let serial = run(1);
    for width in [2, 4] {
        let parallel = run(width);
        for (i, (&s, &p)) in serial.iter().zip(parallel.iter()).enumerate() {
            assert_eq!(
                s.to_bits(),
                p.to_bits(),
                "width {width}: element {i} diverged from serial ({s} vs {p})"
            );
        }
    }
}

proptest! {
    #[test]
    fn parallel_gemm_is_bit_identical_across_worker_counts(
        seed in 0u64..1_000_000,
        trans_a in any::<bool>(),
        trans_b in any::<bool>(),
        m in 17usize..64,
        // Odd offsets guarantee plenty of N values not divisible by the
        // NR = 16 register panel (ragged last strip and ragged panel).
        n_extra in 0usize..48,
        accumulate in any::<bool>(),
    ) {
        let n = 257 + n_extra;
        // k chosen so m*n*k crosses the parallel threshold for every m.
        let k = 256;
        check_bit_identity(seed, trans_a, trans_b, m, n, k, accumulate);
    }
}

#[test]
fn odd_n_exactly_one_panel_past_alignment() {
    // n = 2*NR + 1 = 33 is the smallest column count the splitter
    // accepts; k scaled up so the MAC threshold is still crossed.
    check_bit_identity(7, false, false, 64, 33, 512, false);
    check_bit_identity(8, true, true, 64, 33, 512, true);
}

#[test]
fn k_dimension_spanning_multiple_cache_blocks() {
    // k > KC = 256 exercises multi-block accumulation (`c += acc` per k
    // block), the part of the schedule most sensitive to ordering.
    check_bit_identity(9, false, true, 32, 272, 600, false);
}
