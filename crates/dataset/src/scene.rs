//! Thermal scene simulation: ambient field, people as warm blobs, sensor
//! noise, temporal dynamics.

use rand::Rng;

/// Side length of the IR array (8x8, like the LINAIGE sensor).
pub const GRID_SIZE: usize = 8;

/// Maximum number of simultaneously present people (labels are 0..=3).
pub const MAX_PEOPLE: usize = 3;

/// Per-session generation parameters.
///
/// Sessions differ in ambient temperature, noise level and the thermal
/// contrast of people, reproducing the environment-to-environment domain
/// shift of the real LINAIGE sessions.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionConfig {
    /// Number of frames to generate for this session.
    pub num_frames: usize,
    /// Mean ambient temperature in °C.
    pub ambient_temp: f32,
    /// Standard deviation of the slowly varying ambient field.
    pub ambient_drift: f32,
    /// Per-pixel sensor noise standard deviation.
    pub sensor_noise: f32,
    /// Minimum person-over-ambient temperature contrast.
    pub person_contrast_min: f32,
    /// Maximum person-over-ambient temperature contrast.
    pub person_contrast_max: f32,
    /// Gaussian blob radius (in pixels) of a person's thermal footprint.
    pub person_sigma: f32,
    /// Probability that the person count changes between consecutive frames.
    pub count_change_prob: f64,
    /// Minimum number of frames the person count persists after a change.
    ///
    /// Real occupancy states last for seconds while the IR array samples at
    /// a few frames per second, so the label stream is strongly temporally
    /// correlated — the property the paper's majority-voting post-processing
    /// exploits. Without a dwell floor the simulator can emit one- or
    /// two-frame occupancy blips that no temporal filter could preserve.
    pub min_dwell_frames: usize,
    /// Per-class prior used when the count changes, `MAX_PEOPLE + 1` values.
    pub class_prior: [f64; MAX_PEOPLE + 1],
}

impl SessionConfig {
    /// A session preset resembling the paper's largest session.
    pub fn preset(session: usize, num_frames: usize) -> Self {
        // Each session gets a slightly different environment.
        let ambient = [21.0, 23.5, 19.5, 25.0, 22.0][session % 5];
        let noise = [0.25, 0.35, 0.30, 0.40, 0.28][session % 5];
        let contrast = [3.5, 2.8, 3.2, 2.5, 3.0][session % 5];
        Self {
            num_frames,
            ambient_temp: ambient,
            ambient_drift: 0.4,
            sensor_noise: noise,
            person_contrast_min: contrast,
            person_contrast_max: contrast + 2.0,
            person_sigma: 1.0,
            count_change_prob: 0.06,
            min_dwell_frames: 6,
            class_prior: [0.42, 0.30, 0.18, 0.10],
        }
    }
}

/// Full dataset generation configuration: one [`SessionConfig`] per session.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetConfig {
    /// Ordered session configurations; index 0 is the paper's "Session 1"
    /// (the largest, always kept in the training set).
    pub sessions: Vec<SessionConfig>,
}

impl DatasetConfig {
    /// Default configuration: 5 sessions with LINAIGE-like relative sizes
    /// (a few thousand frames in total, scaled down from the real 25110 so
    /// CPU training stays fast).
    pub fn standard() -> Self {
        Self {
            sessions: vec![
                SessionConfig::preset(0, 1600),
                SessionConfig::preset(1, 450),
                SessionConfig::preset(2, 450),
                SessionConfig::preset(3, 450),
                SessionConfig::preset(4, 450),
            ],
        }
    }

    /// A tiny configuration for unit tests and doc examples.
    pub fn tiny() -> Self {
        Self {
            sessions: vec![
                SessionConfig::preset(0, 200),
                SessionConfig::preset(1, 80),
                SessionConfig::preset(2, 80),
                SessionConfig::preset(3, 80),
                SessionConfig::preset(4, 80),
            ],
        }
    }

    /// A harder variant of [`DatasetConfig::standard`]: noisier sensors and
    /// weaker person-over-ambient contrast, so single-frame classifiers top
    /// out well below 100 % balanced accuracy (as on the real LINAIGE
    /// recordings) and temporal post-processing has headroom to help.
    pub fn challenging() -> Self {
        let mut cfg = Self::standard();
        for s in &mut cfg.sessions {
            s.sensor_noise *= 2.4;
            s.person_contrast_min *= 0.55;
            s.person_contrast_max *= 0.60;
            s.ambient_drift *= 1.5;
        }
        cfg
    }

    /// Scales every session's frame count by `factor` (at least 8 frames).
    pub fn scaled(mut self, factor: f64) -> Self {
        for s in &mut self.sessions {
            s.num_frames = ((s.num_frames as f64 * factor).round() as usize).max(8);
        }
        self
    }
}

impl Default for DatasetConfig {
    fn default() -> Self {
        Self::standard()
    }
}

/// A simulated person: position in pixel coordinates, thermal contrast.
#[derive(Debug, Clone, Copy)]
struct Person {
    x: f32,
    y: f32,
    contrast: f32,
}

/// Stateful per-session simulator producing temporally correlated frames.
#[derive(Debug, Clone)]
pub(crate) struct SessionSimulator {
    cfg: SessionConfig,
    people: Vec<Person>,
    ambient_offset: f32,
    frames_since_change: usize,
}

impl SessionSimulator {
    pub(crate) fn new<R: Rng>(cfg: SessionConfig, rng: &mut R) -> Self {
        let initial_count = sample_class(&cfg.class_prior, rng);
        let mut sim = Self {
            cfg,
            people: Vec::new(),
            ambient_offset: 0.0,
            frames_since_change: 0,
        };
        sim.set_count(initial_count, rng);
        sim
    }

    fn spawn_person<R: Rng>(&self, rng: &mut R) -> Person {
        Person {
            x: rng.gen_range(1.0..(GRID_SIZE as f32 - 1.0)),
            y: rng.gen_range(1.0..(GRID_SIZE as f32 - 1.0)),
            contrast: rng.gen_range(self.cfg.person_contrast_min..self.cfg.person_contrast_max),
        }
    }

    fn set_count<R: Rng>(&mut self, count: usize, rng: &mut R) {
        while self.people.len() > count {
            self.people.pop();
        }
        while self.people.len() < count {
            let p = self.spawn_person(rng);
            self.people.push(p);
        }
    }

    /// Advances the simulation by one frame and renders it.
    pub(crate) fn next_frame<R: Rng>(&mut self, rng: &mut R) -> (Vec<f32>, usize) {
        // Occasionally change the number of people, but never before the
        // current occupancy has dwelt for the configured minimum.
        if rng.gen_bool(self.cfg.count_change_prob)
            && self.frames_since_change >= self.cfg.min_dwell_frames
        {
            let new_count = sample_class(&self.cfg.class_prior, rng);
            if new_count != self.people.len() {
                self.frames_since_change = 0;
            }
            self.set_count(new_count, rng);
        }
        self.frames_since_change += 1;
        // People take a small random-walk step and stay inside the array.
        for p in &mut self.people {
            p.x = (p.x + rng.gen_range(-0.5..0.5)).clamp(0.0, GRID_SIZE as f32 - 1.0);
            p.y = (p.y + rng.gen_range(-0.5..0.5)).clamp(0.0, GRID_SIZE as f32 - 1.0);
        }
        // Slowly drifting ambient offset.
        self.ambient_offset = 0.95 * self.ambient_offset
            + rng.gen_range(-self.cfg.ambient_drift..self.cfg.ambient_drift) * 0.05;

        let mut frame = vec![self.cfg.ambient_temp + self.ambient_offset; GRID_SIZE * GRID_SIZE];
        let two_sigma_sq = 2.0 * self.cfg.person_sigma * self.cfg.person_sigma;
        for p in &self.people {
            for gy in 0..GRID_SIZE {
                for gx in 0..GRID_SIZE {
                    let dx = gx as f32 - p.x;
                    let dy = gy as f32 - p.y;
                    let blob = p.contrast * (-(dx * dx + dy * dy) / two_sigma_sq).exp();
                    frame[gy * GRID_SIZE + gx] += blob;
                }
            }
        }
        for v in &mut frame {
            // Box-Muller noise.
            let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
            let u2: f32 = rng.gen_range(0.0..1.0);
            let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos();
            *v += z * self.cfg.sensor_noise;
        }
        (frame, self.people.len())
    }
}

fn sample_class<R: Rng>(prior: &[f64; MAX_PEOPLE + 1], rng: &mut R) -> usize {
    let total: f64 = prior.iter().sum();
    let mut u = rng.gen_range(0.0..total);
    for (i, &p) in prior.iter().enumerate() {
        if u < p {
            return i;
        }
        u -= p;
    }
    MAX_PEOPLE
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn presets_differ_across_sessions() {
        let a = SessionConfig::preset(0, 10);
        let b = SessionConfig::preset(1, 10);
        assert_ne!(a.ambient_temp, b.ambient_temp);
    }

    #[test]
    fn challenging_config_is_noisier_than_standard() {
        let std_cfg = DatasetConfig::standard();
        let hard = DatasetConfig::challenging();
        for (a, b) in std_cfg.sessions.iter().zip(hard.sessions.iter()) {
            assert!(b.sensor_noise > a.sensor_noise);
            assert!(b.person_contrast_min < a.person_contrast_min);
        }
    }

    #[test]
    fn scaled_config_changes_frame_counts() {
        let cfg = DatasetConfig::standard().scaled(0.5);
        assert_eq!(cfg.sessions[0].num_frames, 800);
        let tiny = DatasetConfig::tiny().scaled(0.0);
        assert!(tiny.sessions.iter().all(|s| s.num_frames >= 8));
    }

    #[test]
    fn simulator_count_matches_people_rendered() {
        let mut rng = StdRng::seed_from_u64(0);
        let cfg = SessionConfig::preset(0, 10);
        let mut sim = SessionSimulator::new(cfg, &mut rng);
        for _ in 0..50 {
            let (frame, count) = sim.next_frame(&mut rng);
            assert_eq!(frame.len(), 64);
            assert!(count <= MAX_PEOPLE);
            assert!(frame.iter().all(|v| v.is_finite()));
        }
    }

    #[test]
    fn class_sampling_respects_prior_support() {
        let mut rng = StdRng::seed_from_u64(1);
        let prior = [0.0, 1.0, 0.0, 0.0];
        for _ in 0..100 {
            assert_eq!(sample_class(&prior, &mut rng), 1);
        }
    }

    #[test]
    fn occupancy_dwells_for_the_configured_minimum() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut cfg = SessionConfig::preset(0, 10);
        cfg.count_change_prob = 1.0;
        cfg.min_dwell_frames = 5;
        let mut sim = SessionSimulator::new(cfg, &mut rng);
        let counts: Vec<usize> = (0..300).map(|_| sim.next_frame(&mut rng).1).collect();
        let mut run = 1usize;
        let mut changes = 0usize;
        for w in counts.windows(2) {
            if w[0] == w[1] {
                run += 1;
            } else {
                assert!(run >= 5, "occupancy changed after only {run} frames");
                run = 1;
                changes += 1;
            }
        }
        assert!(changes > 10, "the stream should still change ({changes})");
    }

    #[test]
    fn frames_stay_near_ambient_when_empty() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut cfg = SessionConfig::preset(0, 10);
        cfg.class_prior = [1.0, 0.0, 0.0, 0.0];
        cfg.count_change_prob = 1.0;
        let mut sim = SessionSimulator::new(cfg.clone(), &mut rng);
        let (frame, count) = sim.next_frame(&mut rng);
        assert_eq!(count, 0);
        for v in frame {
            assert!((v - cfg.ambient_temp).abs() < 3.0);
        }
    }
}
