//! Cross-validation split bookkeeping.

/// A list of sample indices belonging to one side of a split.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SplitIndices(pub Vec<usize>);

impl SplitIndices {
    /// Number of samples in this split.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Returns `true` if the split is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// The indices as a slice.
    pub fn as_slice(&self) -> &[usize] {
        &self.0
    }
}

impl From<Vec<usize>> for SplitIndices {
    fn from(v: Vec<usize>) -> Self {
        Self(v)
    }
}

impl AsRef<[usize]> for SplitIndices {
    fn as_ref(&self) -> &[usize] {
        &self.0
    }
}

/// One leave-one-session-out cross-validation fold.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CvFold {
    /// Session index used as the held-out test set.
    pub test_session: usize,
    /// Training sample indices (all other sessions).
    pub train: SplitIndices,
    /// Test sample indices (the held-out session, temporal order preserved).
    pub test: SplitIndices,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_indices_basic_accessors() {
        let s = SplitIndices::from(vec![3, 1, 2]);
        assert_eq!(s.len(), 3);
        assert!(!s.is_empty());
        assert_eq!(s.as_slice(), &[3, 1, 2]);
        assert_eq!(s.as_ref(), &[3, 1, 2]);
        assert!(SplitIndices::default().is_empty());
    }

    #[test]
    fn cv_fold_holds_session_and_splits() {
        let fold = CvFold {
            test_session: 2,
            train: vec![0, 1].into(),
            test: vec![2, 3].into(),
        };
        assert_eq!(fold.test_session, 2);
        assert_eq!(fold.train.len() + fold.test.len(), 4);
    }
}
