//! Synthetic LINAIGE-like infrared people-counting dataset.
//!
//! The paper evaluates on LINAIGE: 25110 labelled 8x8 thermal frames split
//! into 5 recording sessions, each frame annotated with the number of
//! people (0–3) in the field of view. The real recordings are not
//! redistributable, so this crate generates a synthetic replacement that
//! preserves the four properties the optimisation flow relies on:
//!
//! 1. ultra-low-resolution single-channel inputs (8x8),
//! 2. a 4-class counting label with a skewed class prior,
//! 3. session-level domain shift (different ambient temperature, noise and
//!    person "thermal signature" per session),
//! 4. temporal correlation between consecutive frames (people move with a
//!    random walk and the count changes rarely), which is what the
//!    majority-voting post-processing exploits.
//!
//! # Example
//!
//! ```
//! use pcount_dataset::{DatasetConfig, IrDataset};
//!
//! let data = IrDataset::generate(&DatasetConfig::tiny(), 42);
//! assert_eq!(data.num_sessions(), 5);
//! let folds = data.leave_one_session_out();
//! assert_eq!(folds.len(), 4); // session 1 is always kept for training
//! ```

mod cv;
mod scene;

pub use cv::{CvFold, SplitIndices};
pub use scene::{DatasetConfig, SessionConfig, GRID_SIZE, MAX_PEOPLE};

use pcount_tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;
use scene::SessionSimulator;

/// An in-memory labelled IR dataset with session structure and preserved
/// temporal frame ordering.
#[derive(Debug, Clone)]
pub struct IrDataset {
    frames: Tensor,
    labels: Vec<usize>,
    sessions: Vec<usize>,
    session_sizes: Vec<usize>,
}

impl IrDataset {
    /// Generates a synthetic dataset according to `config`, deterministically
    /// from `seed`.
    pub fn generate(config: &DatasetConfig, seed: u64) -> Self {
        let mut frames_data = Vec::new();
        let mut labels = Vec::new();
        let mut sessions = Vec::new();
        let mut session_sizes = Vec::new();
        for (s, session_cfg) in config.sessions.iter().enumerate() {
            let mut rng = StdRng::seed_from_u64(seed ^ (0x9E37 + s as u64 * 0x1000));
            let mut sim = SessionSimulator::new(session_cfg.clone(), &mut rng);
            for _ in 0..session_cfg.num_frames {
                let (frame, count) = sim.next_frame(&mut rng);
                frames_data.extend_from_slice(&frame);
                labels.push(count);
                sessions.push(s);
            }
            session_sizes.push(session_cfg.num_frames);
        }
        let n = labels.len();
        let frames = Tensor::from_vec(frames_data, &[n, 1, GRID_SIZE, GRID_SIZE]);
        Self {
            frames,
            labels,
            sessions,
            session_sizes,
        }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Returns `true` if the dataset holds no samples.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Number of recording sessions.
    pub fn num_sessions(&self) -> usize {
        self.session_sizes.len()
    }

    /// Number of classes (always `MAX_PEOPLE + 1`).
    pub fn num_classes(&self) -> usize {
        MAX_PEOPLE + 1
    }

    /// All frames as an `[N, 1, 8, 8]` tensor (raw, unnormalised).
    pub fn frames(&self) -> &Tensor {
        &self.frames
    }

    /// The people-count label of every frame.
    pub fn labels(&self) -> &[usize] {
        &self.labels
    }

    /// The session index of every frame.
    pub fn sessions(&self) -> &[usize] {
        &self.sessions
    }

    /// Indices of all frames of one session, in temporal order.
    pub fn session_indices(&self, session: usize) -> Vec<usize> {
        (0..self.len())
            .filter(|&i| self.sessions[i] == session)
            .collect()
    }

    /// Class histogram over the whole dataset.
    pub fn class_histogram(&self) -> Vec<usize> {
        let mut hist = vec![0usize; self.num_classes()];
        for &l in &self.labels {
            hist[l] += 1;
        }
        hist
    }

    /// Gathers the frames at `indices` into a new `[M, 1, 8, 8]` tensor and
    /// matching label vector, normalising each frame by subtracting its own
    /// spatial mean (a cheap ambient-temperature compensation that a real
    /// sensor node would perform before inference).
    pub fn gather_normalized(&self, indices: &[usize]) -> (Tensor, Vec<usize>) {
        let pixels = GRID_SIZE * GRID_SIZE;
        let mut data = Vec::with_capacity(indices.len() * pixels);
        let mut labels = Vec::with_capacity(indices.len());
        for &i in indices {
            assert!(i < self.len(), "index {i} out of bounds");
            let frame = &self.frames.data()[i * pixels..(i + 1) * pixels];
            let mean: f32 = frame.iter().sum::<f32>() / pixels as f32;
            data.extend(frame.iter().map(|&v| v - mean));
            labels.push(self.labels[i]);
        }
        (
            Tensor::from_vec(data, &[indices.len(), 1, GRID_SIZE, GRID_SIZE]),
            labels,
        )
    }

    /// One session as a temporally ordered stream: the normalised frames
    /// (`[M, 1, 8, 8]`, per-frame mean subtracted exactly like
    /// [`IrDataset::gather_normalized`]) and their labels, in recording
    /// order. This is the input shape of the streaming/resilience layer,
    /// which consumes one session as one continuous sensor feed.
    pub fn session_stream(&self, session: usize) -> (Tensor, Vec<usize>) {
        self.gather_normalized(&self.session_indices(session))
    }

    /// A `len`-frame window of one session's stream starting at frame
    /// `start` *modulo the session length* — the window wraps around, so
    /// any `(start, len)` yields exactly `len` frames. This is how the
    /// fleet layer hands each simulated node its own slice of a recorded
    /// session: hundreds of nodes can replay the same session at
    /// different phases without ever running out of frames.
    ///
    /// Panics if the session is empty or `len` is zero.
    pub fn session_stream_window(
        &self,
        session: usize,
        start: usize,
        len: usize,
    ) -> (Tensor, Vec<usize>) {
        let idx = self.session_indices(session);
        assert!(!idx.is_empty(), "session {session} has no frames");
        assert!(len > 0, "window length must be positive");
        let window: Vec<usize> = (0..len).map(|k| idx[(start + k) % idx.len()]).collect();
        self.gather_normalized(&window)
    }

    /// Leave-one-session-out cross-validation folds as used by the paper:
    /// session 0 (the largest, "Session 1" in the paper) is always part of
    /// the training set; every other session is rotated as the test set.
    pub fn leave_one_session_out(&self) -> Vec<CvFold> {
        let mut folds = Vec::new();
        for test_session in 1..self.num_sessions() {
            let mut train = Vec::new();
            let mut test = Vec::new();
            for i in 0..self.len() {
                if self.sessions[i] == test_session {
                    test.push(i);
                } else {
                    train.push(i);
                }
            }
            folds.push(CvFold {
                test_session,
                train: SplitIndices(train),
                test: SplitIndices(test),
            });
        }
        folds
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let cfg = DatasetConfig::tiny();
        let a = IrDataset::generate(&cfg, 7);
        let b = IrDataset::generate(&cfg, 7);
        assert_eq!(a.labels(), b.labels());
        assert!(a.frames().approx_eq(b.frames(), 0.0));
    }

    #[test]
    fn different_seeds_differ() {
        let cfg = DatasetConfig::tiny();
        let a = IrDataset::generate(&cfg, 1);
        let b = IrDataset::generate(&cfg, 2);
        assert!(!a.frames().approx_eq(b.frames(), 1e-6));
    }

    #[test]
    fn sizes_match_configuration() {
        let cfg = DatasetConfig::tiny();
        let data = IrDataset::generate(&cfg, 0);
        let expected: usize = cfg.sessions.iter().map(|s| s.num_frames).sum();
        assert_eq!(data.len(), expected);
        assert_eq!(data.num_sessions(), cfg.sessions.len());
        assert_eq!(data.frames().shape(), &[expected, 1, 8, 8]);
    }

    #[test]
    fn labels_are_within_class_range() {
        let data = IrDataset::generate(&DatasetConfig::tiny(), 3);
        assert!(data.labels().iter().all(|&l| l <= MAX_PEOPLE));
        let hist = data.class_histogram();
        assert_eq!(hist.iter().sum::<usize>(), data.len());
        // The skewed prior means empty rooms are the most frequent class.
        assert!(hist[0] >= hist[MAX_PEOPLE]);
    }

    #[test]
    fn occupied_frames_are_warmer_than_empty_ones() {
        let data = IrDataset::generate(&DatasetConfig::tiny(), 5);
        let pixels = GRID_SIZE * GRID_SIZE;
        let mut empty_max = Vec::new();
        let mut full_max = Vec::new();
        for i in 0..data.len() {
            let frame = &data.frames().data()[i * pixels..(i + 1) * pixels];
            let peak = frame.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            if data.labels()[i] == 0 {
                empty_max.push(peak);
            } else if data.labels()[i] == 3 {
                full_max.push(peak);
            }
        }
        let mean = |v: &[f32]| v.iter().sum::<f32>() / v.len().max(1) as f32;
        assert!(
            mean(&full_max) > mean(&empty_max) + 1.0,
            "3-person frames should have clearly hotter peaks"
        );
    }

    #[test]
    fn gather_normalized_centres_each_frame() {
        let data = IrDataset::generate(&DatasetConfig::tiny(), 9);
        let idx: Vec<usize> = (0..16).collect();
        let (x, y) = data.gather_normalized(&idx);
        assert_eq!(x.shape(), &[16, 1, 8, 8]);
        assert_eq!(y.len(), 16);
        for i in 0..16 {
            let frame = &x.data()[i * 64..(i + 1) * 64];
            let mean: f32 = frame.iter().sum::<f32>() / 64.0;
            assert!(mean.abs() < 1e-4);
        }
    }

    #[test]
    fn leave_one_session_out_keeps_session_one_in_training() {
        let data = IrDataset::generate(&DatasetConfig::tiny(), 11);
        let folds = data.leave_one_session_out();
        assert_eq!(folds.len(), data.num_sessions() - 1);
        for fold in &folds {
            assert!(fold.test_session != 0);
            // No overlap between train and test.
            for &i in fold.test.as_slice() {
                assert_eq!(data.sessions()[i], fold.test_session);
            }
            for &i in fold.train.as_slice() {
                assert_ne!(data.sessions()[i], fold.test_session);
            }
            assert_eq!(fold.train.len() + fold.test.len(), data.len());
            // Session 0 frames are always in training.
            assert!(fold
                .train
                .as_slice()
                .iter()
                .any(|&i| data.sessions()[i] == 0));
        }
    }

    #[test]
    fn session_stream_matches_gather_normalized_in_temporal_order() {
        let data = IrDataset::generate(&DatasetConfig::tiny(), 11);
        let idx = data.session_indices(1);
        let (x_ref, y_ref) = data.gather_normalized(&idx);
        let (x, y) = data.session_stream(1);
        assert_eq!(x.data(), x_ref.data());
        assert_eq!(y, y_ref);
        assert_eq!(x.shape()[0], idx.len());
    }

    #[test]
    fn temporal_correlation_labels_change_rarely() {
        let data = IrDataset::generate(&DatasetConfig::tiny(), 13);
        let idx = data.session_indices(1);
        let labels: Vec<usize> = idx.iter().map(|&i| data.labels()[i]).collect();
        let changes = labels.windows(2).filter(|w| w[0] != w[1]).count();
        // Counts change on far fewer than half of the transitions.
        assert!(
            changes * 3 < labels.len(),
            "labels changed {changes} times over {} frames",
            labels.len()
        );
    }
}
