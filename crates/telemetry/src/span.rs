//! Scoped span timers recording into per-thread ring buffers.
//!
//! A span is opened with [`span`] and closed by dropping the returned
//! guard; the completed `(name, start, duration)` triple lands in the
//! calling thread's ring buffer. Rings are bounded ([`RING_CAPACITY`]
//! events per thread) and overwrite their oldest events when full, so a
//! long telemetry-enabled run keeps the most recent window instead of
//! growing without bound; the exporter reports how many events each
//! thread overwrote.
//!
//! Span names are `&'static str` phase paths with `/` hierarchy
//! (`flow/lambda_sweep/fold_train`, `pool/task`, `gemm`, …). Nesting in
//! the chrome trace comes from the timestamps: two spans on the same
//! thread whose intervals contain each other render as a stack.
//!
//! Structural `flow/*` phase spans are rare but long, and a run emits
//! tens of thousands of leaf spans (`gemm`, `conv_*`) per phase — enough
//! to cycle the bulk ring several times over. So each thread keeps a
//! second, small ring ([`COARSE_CAPACITY`]) reserved for `flow/*` names:
//! leaf churn can never evict the phase skeleton of the trace.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Maximum retained span events per thread (a ring; oldest events are
/// overwritten once a thread exceeds this).
pub(crate) const RING_CAPACITY: usize = 1 << 15;

/// Maximum retained structural `flow/*` events per thread (their own
/// ring, so high-frequency leaf spans cannot evict the phase skeleton).
pub(crate) const COARSE_CAPACITY: usize = 1 << 10;

/// One completed span.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanEvent {
    /// Static phase path, e.g. `"flow/seed_eval"`.
    pub name: &'static str,
    /// Start time in nanoseconds since the process telemetry epoch.
    pub start_ns: u64,
    /// Span duration in nanoseconds.
    pub dur_ns: u64,
}

/// One thread's span ring.
pub(crate) struct ThreadRing {
    /// Stable export identifier of the owning thread (assigned in
    /// registration order).
    pub(crate) tid: usize,
    /// The bulk ring storage (append until full, then overwrite oldest).
    pub(crate) events: Vec<SpanEvent>,
    /// Total bulk events ever recorded; `total - events.len()` were
    /// overwritten.
    pub(crate) total: u64,
    /// The structural ring reserved for `flow/*` phase spans.
    pub(crate) coarse: Vec<SpanEvent>,
    /// Total structural events ever recorded.
    pub(crate) coarse_total: u64,
}

impl ThreadRing {
    fn record(&mut self, ev: SpanEvent) {
        let (ring, total, capacity) = if ev.name.starts_with("flow/") {
            (&mut self.coarse, &mut self.coarse_total, COARSE_CAPACITY)
        } else {
            (&mut self.events, &mut self.total, RING_CAPACITY)
        };
        if ring.len() < capacity {
            ring.push(ev);
        } else {
            let slot = (*total % capacity as u64) as usize;
            ring[slot] = ev;
        }
        *total += 1;
    }

    /// How many events this thread has overwritten across both rings.
    fn overwritten(&self) -> u64 {
        (self.total - self.events.len() as u64) + (self.coarse_total - self.coarse.len() as u64)
    }
}

/// Registry of every thread's ring. Rings are `Arc`-shared between the
/// owning thread (via its thread-local) and the exporter, so spans from
/// exited threads stay exportable.
fn rings() -> &'static Mutex<Vec<Arc<Mutex<ThreadRing>>>> {
    static RINGS: OnceLock<Mutex<Vec<Arc<Mutex<ThreadRing>>>>> = OnceLock::new();
    RINGS.get_or_init(|| Mutex::new(Vec::new()))
}

static NEXT_TID: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static LOCAL_RING: Arc<Mutex<ThreadRing>> = {
        let ring = Arc::new(Mutex::new(ThreadRing {
            tid: NEXT_TID.fetch_add(1, Ordering::Relaxed),
            events: Vec::new(),
            total: 0,
            coarse: Vec::new(),
            coarse_total: 0,
        }));
        rings().lock().expect("span ring registry lock").push(Arc::clone(&ring));
        ring
    };
}

/// The process-wide telemetry time origin: all span timestamps are
/// nanoseconds since the first call into the clock.
fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Nanoseconds since the telemetry epoch (the first clock use in this
/// process). Monotonic; shared by spans and the pool instrumentation so
/// every exported timestamp lives on one axis.
pub fn now_ns() -> u64 {
    epoch().elapsed().as_nanos() as u64
}

/// An open span; records one [`SpanEvent`] into the calling thread's
/// ring when dropped.
#[must_use = "a span measures the scope it is bound to; dropping it immediately records nothing useful"]
pub struct SpanGuard {
    name: &'static str,
    start_ns: u64,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let dur_ns = now_ns().saturating_sub(self.start_ns);
        let ev = SpanEvent {
            name: self.name,
            start_ns: self.start_ns,
            dur_ns,
        };
        LOCAL_RING.with(|ring| ring.lock().expect("span ring lock").record(ev));
    }
}

/// Opens a scoped span timer named `name` (a static phase path like
/// `"flow/seed_eval"`). Returns `None` while telemetry is disabled — the
/// disabled-mode cost is the single relaxed atomic load inside
/// [`crate::enabled`]. Bind the result (`let _span = span("gemm");`) so
/// the guard drops at scope exit.
#[inline]
pub fn span(name: &'static str) -> Option<SpanGuard> {
    if !crate::enabled() {
        return None;
    }
    Some(SpanGuard {
        name,
        start_ns: now_ns(),
    })
}

/// A span event tagged with the id of the thread that recorded it.
pub(crate) type TaggedEvent = (usize, SpanEvent);

/// Copies every thread's events out of the rings, sorted by start time,
/// together with per-thread overwrite counts `(tid, overwritten)`.
pub(crate) fn collect_events() -> (Vec<TaggedEvent>, Vec<(usize, u64)>) {
    let rings = rings().lock().expect("span ring registry lock");
    let mut events = Vec::new();
    let mut dropped = Vec::new();
    for ring in rings.iter() {
        let ring = ring.lock().expect("span ring lock");
        events.extend(ring.events.iter().map(|&ev| (ring.tid, ev)));
        events.extend(ring.coarse.iter().map(|&ev| (ring.tid, ev)));
        let overwritten = ring.overwritten();
        if overwritten > 0 {
            dropped.push((ring.tid, overwritten));
        }
    }
    events.sort_by_key(|&(tid, ev)| (ev.start_ns, tid, ev.dur_ns));
    (events, dropped)
}

/// Clears every ring (threads keep their tids).
pub(crate) fn reset_rings() {
    let rings = rings().lock().expect("span ring registry lock");
    for ring in rings.iter() {
        let mut ring = ring.lock().expect("span ring lock");
        ring.events.clear();
        ring.total = 0;
        ring.coarse.clear();
        ring.coarse_total = 0;
    }
}
