//! The global metrics registry: sharded atomic counters, gauges and
//! HDR-style log-bucketed histograms.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};

/// Number of per-thread shards of every counter and histogram. A power of
/// two; threads are striped across shards by a monotonically assigned
/// thread index, so two pool workers practically never bounce the same
/// cache line on hot-path increments.
const COUNTER_SHARDS: usize = 16;

/// Histograms are bulkier than counters (hundreds of buckets per shard),
/// and record at a far lower rate (per frame / per group, not per
/// instruction), so they stripe across fewer shards.
const HISTOGRAM_SHARDS: usize = 4;

/// Monotonic thread index used to pick a shard.
static NEXT_THREAD_INDEX: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static THREAD_INDEX: usize = NEXT_THREAD_INDEX.fetch_add(1, Ordering::Relaxed);
}

/// This thread's shard stripe index.
#[inline]
fn thread_index() -> usize {
    THREAD_INDEX.with(|i| *i)
}

/// One cache-line-isolated counter cell. 64-byte alignment keeps two
/// shards from sharing a line, so relaxed increments from different
/// threads never invalidate each other.
#[repr(align(64))]
#[derive(Default)]
struct PaddedU64(AtomicU64);

/// A monotonically increasing event counter, sharded per thread.
///
/// Obtain one with [`counter`]; increments are dropped while telemetry is
/// disabled (one relaxed atomic load), and [`Counter::value`] folds the
/// shards at read time.
#[derive(Default)]
pub struct Counter {
    shards: [PaddedU64; COUNTER_SHARDS],
}

impl Counter {
    /// Adds `n` to the counter (no-op while telemetry is disabled).
    #[inline]
    pub fn add(&self, n: u64) {
        if !crate::enabled() {
            return;
        }
        self.shards[thread_index() % COUNTER_SHARDS]
            .0
            .fetch_add(n, Ordering::Relaxed);
    }

    /// The current total across all shards.
    pub fn value(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.0.load(Ordering::Relaxed))
            .sum()
    }

    fn reset(&self) {
        for s in &self.shards {
            s.0.store(0, Ordering::Relaxed);
        }
    }
}

/// A last-value instrument (pool width, queue depth, …). Unlike
/// [`Counter`] a gauge is set, not accumulated, so it is a single atomic
/// cell rather than a sharded array.
#[derive(Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// Sets the gauge (no-op while telemetry is disabled).
    #[inline]
    pub fn set(&self, v: i64) {
        if !crate::enabled() {
            return;
        }
        self.value.store(v, Ordering::Relaxed);
    }

    /// Adds `delta` to the gauge (no-op while telemetry is disabled).
    #[inline]
    pub fn add(&self, delta: i64) {
        if !crate::enabled() {
            return;
        }
        self.value.fetch_add(delta, Ordering::Relaxed);
    }

    /// The current gauge value.
    pub fn value(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }

    fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

/// Sub-bucket precision of the histogram: 2^4 = 16 linear sub-buckets per
/// power-of-two octave, bounding the relative quantisation error of any
/// recorded value by 1/16 ≈ 6.25%.
const SUB_BUCKET_BITS: u32 = 4;
const SUB_BUCKETS: usize = 1 << SUB_BUCKET_BITS;

/// Values below [`SUB_BUCKETS`] get one exact bucket each; values at or
/// above stripe 16 sub-buckets per octave up to `u64::MAX`, giving
/// `16 + (64 - 4) * 16` buckets total.
const NUM_BUCKETS: usize = SUB_BUCKETS + (64 - SUB_BUCKET_BITS as usize) * SUB_BUCKETS;

/// The bucket a value lands in. Exact for `v < 16`; HDR-style
/// (exponent, 4-bit mantissa) above.
#[inline]
pub(crate) fn bucket_index(v: u64) -> usize {
    if v < SUB_BUCKETS as u64 {
        v as usize
    } else {
        let exp = 63 - v.leading_zeros();
        let sub = ((v >> (exp - SUB_BUCKET_BITS)) & (SUB_BUCKETS as u64 - 1)) as usize;
        SUB_BUCKETS + (exp - SUB_BUCKET_BITS) as usize * SUB_BUCKETS + sub
    }
}

/// The smallest value that lands in bucket `index` — the value percentile
/// queries report, making them deterministic lower bounds with at most
/// 1/16 relative error.
pub(crate) fn bucket_lower_bound(index: usize) -> u64 {
    if index < SUB_BUCKETS {
        index as u64
    } else {
        let exp = SUB_BUCKET_BITS + ((index - SUB_BUCKETS) / SUB_BUCKETS) as u32;
        let sub = ((index - SUB_BUCKETS) % SUB_BUCKETS) as u64;
        (1u64 << exp) + (sub << (exp - SUB_BUCKET_BITS))
    }
}

/// One histogram shard: the log-bucket array plus exact sum/max/count for
/// the summary statistics.
struct HistogramShard {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for HistogramShard {
    fn default() -> Self {
        Self {
            buckets: (0..NUM_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

/// A fixed-bucket latency histogram with HDR-style logarithmic buckets
/// (16 sub-buckets per power-of-two octave, ≤ 6.25% relative error over
/// the full `u64` range), sharded per thread like [`Counter`].
///
/// Values are dimensionless `u64`s; the workspace records nanoseconds.
/// Percentiles ([`Histogram::summary`]) report the lower bound of the
/// bucket holding the requested rank, so they are deterministic and never
/// overestimate.
#[derive(Default)]
pub struct Histogram {
    shards: [HistogramShard; HISTOGRAM_SHARDS],
}

impl Histogram {
    /// Records one value (no-op while telemetry is disabled).
    #[inline]
    pub fn record(&self, v: u64) {
        if !crate::enabled() {
            return;
        }
        let shard = &self.shards[thread_index() % HISTOGRAM_SHARDS];
        shard.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        shard.count.fetch_add(1, Ordering::Relaxed);
        shard.sum.fetch_add(v, Ordering::Relaxed);
        shard.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Total recorded values.
    pub fn count(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.count.load(Ordering::Relaxed))
            .sum()
    }

    /// A merged snapshot of the per-shard bucket counts, usable as the
    /// baseline of a windowed summary ([`Histogram::summary_since`]).
    pub fn counts(&self) -> HistogramCounts {
        let mut merged = vec![0u64; NUM_BUCKETS];
        let mut sum = 0u64;
        let mut max = 0u64;
        for shard in &self.shards {
            for (m, b) in merged.iter_mut().zip(shard.buckets.iter()) {
                *m += b.load(Ordering::Relaxed);
            }
            sum = sum.wrapping_add(shard.sum.load(Ordering::Relaxed));
            max = max.max(shard.max.load(Ordering::Relaxed));
        }
        HistogramCounts {
            buckets: merged,
            sum,
            max,
        }
    }

    /// Summary statistics (count, mean, p50/p90/p99, max) over everything
    /// recorded so far.
    pub fn summary(&self) -> HistogramSummary {
        self.counts().summarize()
    }

    /// Summary statistics over the window since `baseline` was snapshot
    /// with [`Histogram::counts`]. The max is the all-time max (bucket
    /// counts subtract exactly; the max register does not), which is the
    /// conservative choice for latency reporting.
    pub fn summary_since(&self, baseline: &HistogramCounts) -> HistogramSummary {
        self.counts().diff(baseline).summarize()
    }

    fn reset(&self) {
        for shard in &self.shards {
            for b in &shard.buckets {
                b.store(0, Ordering::Relaxed);
            }
            shard.count.store(0, Ordering::Relaxed);
            shard.sum.store(0, Ordering::Relaxed);
            shard.max.store(0, Ordering::Relaxed);
        }
    }
}

/// A merged, point-in-time copy of a histogram's bucket counts. Obtained
/// from [`Histogram::counts`] (or built up value-by-value with
/// [`HistogramCounts::record`]); subtracting two snapshots yields the
/// distribution of one measurement window, and adding two
/// ([`HistogramCounts::merge`]) folds independent windows into one.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramCounts {
    buckets: Vec<u64>,
    sum: u64,
    max: u64,
}

impl Default for HistogramCounts {
    fn default() -> Self {
        Self::empty()
    }
}

impl HistogramCounts {
    /// An empty distribution (no recorded values). The identity element of
    /// [`HistogramCounts::merge`].
    pub fn empty() -> Self {
        Self {
            buckets: vec![0u64; NUM_BUCKETS],
            sum: 0,
            max: 0,
        }
    }

    /// Records one value into this local (non-atomic) distribution. The
    /// same bucketing as [`Histogram::record`], but without touching the
    /// global registry — used by callers that keep per-entity (per-node,
    /// per-shard) distributions and fold them later with
    /// [`HistogramCounts::merge`].
    pub fn record(&mut self, v: u64) {
        self.buckets[bucket_index(v)] += 1;
        self.sum = self.sum.wrapping_add(v);
        self.max = self.max.max(v);
    }

    /// Total recorded values.
    pub fn total(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// The bucket-wise sum `self + other`: the distribution of the union
    /// of both windows. Associative and commutative (bucket counts and
    /// sums are plain integer additions, the max is a max), so folding any
    /// number of windows gives the same result in any order.
    pub fn merge(&self, other: &HistogramCounts) -> HistogramCounts {
        HistogramCounts {
            buckets: self
                .buckets
                .iter()
                .zip(other.buckets.iter())
                .map(|(a, b)| a + b)
                .collect(),
            sum: self.sum.wrapping_add(other.sum),
            max: self.max.max(other.max),
        }
    }

    /// The bucket-wise difference `self - baseline` (saturating, so a
    /// racing increment during the snapshot can never underflow).
    pub fn diff(&self, baseline: &HistogramCounts) -> HistogramCounts {
        HistogramCounts {
            buckets: self
                .buckets
                .iter()
                .zip(baseline.buckets.iter())
                .map(|(a, b)| a.saturating_sub(*b))
                .collect(),
            sum: self.sum.wrapping_sub(baseline.sum),
            max: self.max,
        }
    }

    /// Folds the counts into summary statistics.
    pub fn summarize(&self) -> HistogramSummary {
        let count: u64 = self.buckets.iter().sum();
        let percentile = |q: f64| -> u64 {
            if count == 0 {
                return 0;
            }
            let rank = ((q * count as f64).ceil() as u64).clamp(1, count);
            let mut cumulative = 0u64;
            for (index, &c) in self.buckets.iter().enumerate() {
                cumulative += c;
                if cumulative >= rank {
                    return bucket_lower_bound(index);
                }
            }
            bucket_lower_bound(NUM_BUCKETS - 1)
        };
        HistogramSummary {
            count,
            mean: if count == 0 {
                0.0
            } else {
                self.sum as f64 / count as f64
            },
            p50: percentile(0.50),
            p90: percentile(0.90),
            p99: percentile(0.99),
            max: if count == 0 { 0 } else { self.max },
        }
    }
}

/// Percentile summary of a [`Histogram`] (values in the histogram's unit,
/// nanoseconds throughout the workspace). Percentiles are bucket lower
/// bounds (≤ 6.25% below the true value); `mean` and `max` are exact.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct HistogramSummary {
    /// Number of recorded values.
    pub count: u64,
    /// Exact arithmetic mean of the recorded values.
    pub mean: f64,
    /// 50th-percentile bucket lower bound.
    pub p50: u64,
    /// 90th-percentile bucket lower bound.
    pub p90: u64,
    /// 99th-percentile bucket lower bound.
    pub p99: u64,
    /// Exact maximum recorded value.
    pub max: u64,
}

impl HistogramSummary {
    /// `self` as a JSON object string (used by the exporters, the flow
    /// report and the bench emitters).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"count\":{},\"mean\":{:.1},\"p50\":{},\"p90\":{},\"p99\":{},\"max\":{}}}",
            self.count, self.mean, self.p50, self.p90, self.p99, self.max
        )
    }
}

/// The three metric namespaces of the global registry.
#[derive(Default)]
struct Registry {
    counters: BTreeMap<&'static str, &'static Counter>,
    gauges: BTreeMap<&'static str, &'static Gauge>,
    histograms: BTreeMap<&'static str, &'static Histogram>,
}

fn registry() -> &'static Mutex<Registry> {
    static REGISTRY: OnceLock<Mutex<Registry>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Registry::default()))
}

/// The globally registered counter named `name`, created on first use.
/// The returned handle is `'static`: hot paths should look it up once
/// (e.g. in a `OnceLock`) instead of per increment.
pub fn counter(name: &'static str) -> &'static Counter {
    let mut reg = registry().lock().expect("metrics registry lock");
    reg.counters
        .entry(name)
        .or_insert_with(|| Box::leak(Box::new(Counter::default())))
}

/// The globally registered gauge named `name`, created on first use.
pub fn gauge(name: &'static str) -> &'static Gauge {
    let mut reg = registry().lock().expect("metrics registry lock");
    reg.gauges
        .entry(name)
        .or_insert_with(|| Box::leak(Box::new(Gauge::default())))
}

/// The globally registered histogram named `name`, created on first use.
pub fn histogram(name: &'static str) -> &'static Histogram {
    let mut reg = registry().lock().expect("metrics registry lock");
    reg.histograms
        .entry(name)
        .or_insert_with(|| Box::leak(Box::new(Histogram::default())))
}

/// Every registered counter and its current value, sorted by name.
pub fn counters_snapshot() -> Vec<(&'static str, u64)> {
    let reg = registry().lock().expect("metrics registry lock");
    reg.counters
        .iter()
        .map(|(&name, c)| (name, c.value()))
        .collect()
}

/// Every registered gauge and its current value, sorted by name.
pub fn gauges_snapshot() -> Vec<(&'static str, i64)> {
    let reg = registry().lock().expect("metrics registry lock");
    reg.gauges
        .iter()
        .map(|(&name, g)| (name, g.value()))
        .collect()
}

/// Every registered histogram and its summary, sorted by name.
pub fn histograms_snapshot() -> Vec<(&'static str, HistogramSummary)> {
    let reg = registry().lock().expect("metrics registry lock");
    reg.histograms
        .iter()
        .map(|(&name, h)| (name, h.summary()))
        .collect()
}

/// Zeroes every registered metric (names stay registered).
pub(crate) fn reset_metrics() {
    let reg = registry().lock().expect("metrics registry lock");
    for c in reg.counters.values() {
        c.reset();
    }
    for g in reg.gauges.values() {
        g.reset();
    }
    for h in reg.histograms.values() {
        h.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_exact_below_sixteen() {
        for v in 0..SUB_BUCKETS as u64 {
            assert_eq!(bucket_index(v), v as usize);
            assert_eq!(bucket_lower_bound(v as usize), v);
        }
    }

    #[test]
    fn bucket_lower_bound_inverts_bucket_index() {
        // The lower bound of a value's bucket must land back in the same
        // bucket, and must never exceed the value.
        for &v in &[
            16u64,
            17,
            31,
            32,
            100,
            999,
            1_000_000,
            u64::MAX / 2,
            u64::MAX,
        ] {
            let idx = bucket_index(v);
            let lo = bucket_lower_bound(idx);
            assert!(lo <= v, "lower bound {lo} above value {v}");
            assert_eq!(bucket_index(lo), idx, "lower bound of {v} changed bucket");
        }
    }

    #[test]
    fn bucket_boundaries_are_monotonic_and_tight() {
        // Consecutive buckets have strictly increasing lower bounds, and
        // the relative quantisation error is bounded by 1/16.
        for idx in 0..NUM_BUCKETS - 1 {
            let lo = bucket_lower_bound(idx);
            let hi = bucket_lower_bound(idx + 1);
            assert!(hi > lo, "bucket {idx} not monotonic");
            if lo >= SUB_BUCKETS as u64 {
                let width = hi - lo;
                assert!(
                    width as f64 / lo as f64 <= 1.0 / SUB_BUCKETS as f64 + 1e-12,
                    "bucket {idx} wider than 1/16 relative ({lo}..{hi})"
                );
            }
        }
    }

    #[test]
    fn percentiles_report_bucket_lower_bounds_at_the_requested_rank() {
        let _guard = crate::test_guard();
        let h = Histogram::default();
        crate::set_enabled(true);
        // 1..=100 one each: p50's rank-50 value is 50, p90's is 90, p99's
        // is 99; reported as bucket lower bounds (≤ 6.25% low).
        for v in 1..=100u64 {
            h.record(v);
        }
        crate::set_enabled(false);
        let s = h.summary();
        assert_eq!(s.count, 100);
        assert_eq!(s.max, 100);
        assert!((s.mean - 50.5).abs() < 1e-9);
        for (p, exact) in [(s.p50, 50u64), (s.p90, 90), (s.p99, 99)] {
            assert!(p <= exact, "percentile overestimated: {p} > {exact}");
            assert!(
                p as f64 >= exact as f64 * (1.0 - 1.0 / SUB_BUCKETS as f64),
                "percentile {p} more than 6.25% below {exact}"
            );
        }
    }

    #[test]
    fn empty_and_windowed_summaries() {
        let _guard = crate::test_guard();
        let h = Histogram::default();
        assert_eq!(h.summary(), HistogramSummary::default());
        crate::set_enabled(true);
        h.record(10);
        let baseline = h.counts();
        h.record(1_000);
        h.record(2_000);
        crate::set_enabled(false);
        let windowed = h.summary_since(&baseline);
        assert_eq!(windowed.count, 2, "window excludes the baseline sample");
        assert!(windowed.p50 >= 900, "baseline sample leaked into window");
    }
}
