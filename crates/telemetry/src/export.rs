//! Trace and metrics exporters: chrome://tracing JSON, JSONL, and the
//! [`PoolUtilization`] report assembled by `pcount-runtime`.

use std::fmt::Write as _;
use std::io;

use crate::json::{escape_into, quote};
use crate::metrics::{counters_snapshot, gauges_snapshot, histograms_snapshot, HistogramSummary};
use crate::span::{collect_events, SpanEvent};

/// A point-in-time copy of everything telemetry has recorded: every span
/// from every thread's ring (sorted by start time), every registered
/// counter, gauge and histogram summary, and per-thread overwrite counts
/// for rings that wrapped.
pub struct TraceSnapshot {
    /// `(thread id, event)` pairs sorted by `(start_ns, tid)`.
    pub spans: Vec<(usize, SpanEvent)>,
    /// `(thread id, overwritten event count)` for rings that wrapped.
    pub dropped: Vec<(usize, u64)>,
    /// Registered counters and their totals, sorted by name.
    pub counters: Vec<(&'static str, u64)>,
    /// Registered gauges and their values, sorted by name.
    pub gauges: Vec<(&'static str, i64)>,
    /// Registered histograms and their summaries, sorted by name.
    pub histograms: Vec<(&'static str, HistogramSummary)>,
}

impl TraceSnapshot {
    /// Captures the current telemetry state. Cheap relative to a flow run
    /// (copies the rings under their locks); safe to call while other
    /// threads keep recording.
    pub fn capture() -> Self {
        let (spans, dropped) = collect_events();
        Self {
            spans,
            dropped,
            counters: counters_snapshot(),
            gauges: gauges_snapshot(),
            histograms: histograms_snapshot(),
        }
    }
}

/// Serialises the current telemetry state as chrome://tracing JSON
/// (load the file at `chrome://tracing` or <https://ui.perfetto.dev>).
///
/// Span events become `ph:"X"` complete events (`ts`/`dur` in
/// microseconds, fractional to keep nanosecond precision); counter
/// totals become one trailing `ph:"C"` sample per counter. Top-level
/// `"counters"`, `"gauges"` and `"histograms"` sections carry the full
/// registry snapshot, and `"droppedSpans"` reports per-thread ring
/// overwrites.
pub fn chrome_trace_json() -> String {
    let snapshot = TraceSnapshot::capture();
    let mut out = String::with_capacity(snapshot.spans.len() * 96 + 1024);
    out.push_str("{\n\"traceEvents\": [");
    let mut first = true;
    for &(tid, ev) in &snapshot.spans {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str("\n  {\"name\": ");
        out.push_str(&quote(ev.name));
        let cat = ev.name.split('/').next().unwrap_or(ev.name);
        let _ = write!(
            out,
            ", \"cat\": {}, \"ph\": \"X\", \"ts\": {:.3}, \"dur\": {:.3}, \"pid\": 1, \"tid\": {}}}",
            quote(cat),
            ev.start_ns as f64 / 1_000.0,
            ev.dur_ns as f64 / 1_000.0,
            tid
        );
    }
    // One trailing counter sample per registered counter so the totals
    // show up on the trace timeline too.
    let end_ts = snapshot
        .spans
        .iter()
        .map(|(_, ev)| ev.start_ns + ev.dur_ns)
        .max()
        .unwrap_or(0) as f64
        / 1_000.0;
    for &(name, value) in &snapshot.counters {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(
            out,
            "\n  {{\"name\": {}, \"ph\": \"C\", \"ts\": {end_ts:.3}, \"pid\": 1, \"args\": {{\"value\": {value}}}}}",
            quote(name)
        );
    }
    out.push_str("\n],\n\"counters\": {");
    for (i, &(name, value)) in snapshot.counters.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\n  {}: {value}", quote(name));
    }
    out.push_str("\n},\n\"gauges\": {");
    for (i, &(name, value)) in snapshot.gauges.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\n  {}: {value}", quote(name));
    }
    out.push_str("\n},\n\"histograms\": {");
    for (i, (name, summary)) in snapshot.histograms.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\n  {}: {}", quote(name), summary.to_json());
    }
    out.push_str("\n},\n\"droppedSpans\": {");
    for (i, &(tid, n)) in snapshot.dropped.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\n  \"{tid}\": {n}");
    }
    out.push_str("\n},\n\"displayTimeUnit\": \"ms\"\n}\n");
    out
}

/// Writes [`chrome_trace_json`] to `path`.
///
/// # Errors
///
/// Propagates I/O errors from creating or writing the file.
pub fn write_chrome_trace(path: &str) -> io::Result<()> {
    std::fs::write(path, chrome_trace_json())
}

/// Serialises the current telemetry state as JSONL: one JSON object per
/// line, each with a `"kind"` discriminator (`span`, `counter`, `gauge`,
/// `histogram`, `dropped_spans`). Easier to grep and stream-process than
/// the chrome trace; selected by a `.jsonl` suffix on `PCOUNT_TRACE`.
pub fn jsonl() -> String {
    let snapshot = TraceSnapshot::capture();
    let mut out = String::with_capacity(snapshot.spans.len() * 96 + 1024);
    for &(tid, ev) in &snapshot.spans {
        out.push_str("{\"kind\":\"span\",\"name\":\"");
        escape_into(&mut out, ev.name);
        let _ = writeln!(
            out,
            "\",\"tid\":{},\"start_ns\":{},\"dur_ns\":{}}}",
            tid, ev.start_ns, ev.dur_ns
        );
    }
    for &(name, value) in &snapshot.counters {
        out.push_str("{\"kind\":\"counter\",\"name\":\"");
        escape_into(&mut out, name);
        let _ = writeln!(out, "\",\"value\":{value}}}");
    }
    for &(name, value) in &snapshot.gauges {
        out.push_str("{\"kind\":\"gauge\",\"name\":\"");
        escape_into(&mut out, name);
        let _ = writeln!(out, "\",\"value\":{value}}}");
    }
    for (name, summary) in &snapshot.histograms {
        out.push_str("{\"kind\":\"histogram\",\"name\":\"");
        escape_into(&mut out, name);
        let _ = writeln!(out, "\",\"summary\":{}}}", summary.to_json());
    }
    for &(tid, n) in &snapshot.dropped {
        let _ = writeln!(
            out,
            "{{\"kind\":\"dropped_spans\",\"tid\":{tid},\"overwritten\":{n}}}"
        );
    }
    out
}

/// Writes [`jsonl`] to `path`.
///
/// # Errors
///
/// Propagates I/O errors from creating or writing the file.
pub fn write_jsonl(path: &str) -> io::Result<()> {
    std::fs::write(path, jsonl())
}

/// Worker-pool utilisation report, assembled by `pcount-runtime` from its
/// per-worker instrumentation. Slot 0 aggregates every *submitting*
/// thread (callers that participate in their own groups); slots
/// `1..width` are the persistent pool workers.
///
/// The struct lives here (rather than in `pcount-runtime`) because the
/// telemetry crate is the workspace's dependency root: the flow report
/// and the benches consume it without depending on the runtime's
/// internals.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PoolUtilization {
    /// Pool width: 1 (submitter aggregate) + persistent worker count.
    pub width: usize,
    /// Tasks (claimed chunk indices) executed per slot; `len() == width`.
    pub worker_tasks: Vec<u64>,
    /// Busy nanoseconds per slot (time inside `Group::work`);
    /// `len() == width`.
    pub worker_busy_ns: Vec<u64>,
    /// Total groups drained through the pool.
    pub groups: u64,
    /// Queue wait: submission to first worker claim, per group.
    pub queue_wait_ns: HistogramSummary,
    /// Drain latency: submission to completion, per group.
    pub drain_ns: HistogramSummary,
}

impl PoolUtilization {
    /// Total tasks executed across all slots.
    pub fn total_tasks(&self) -> u64 {
        self.worker_tasks.iter().sum()
    }

    /// `self` as a JSON object string (used by the flow report and the
    /// bench emitters).
    pub fn to_json(&self) -> String {
        let list = |xs: &[u64]| {
            let mut s = String::from("[");
            for (i, x) in xs.iter().enumerate() {
                if i > 0 {
                    s.push(',');
                }
                let _ = write!(s, "{x}");
            }
            s.push(']');
            s
        };
        format!(
            "{{\"width\":{},\"worker_tasks\":{},\"worker_busy_ns\":{},\"groups\":{},\"queue_wait_ns\":{},\"drain_ns\":{}}}",
            self.width,
            list(&self.worker_tasks),
            list(&self.worker_busy_ns),
            self.groups,
            self.queue_wait_ns.to_json(),
            self.drain_ns.to_json(),
        )
    }
}
