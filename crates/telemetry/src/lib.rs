//! Unified tracing, metrics and profiling substrate for the MAUPITI
//! stack (`pcount-telemetry`).
//!
//! Every performance-critical subsystem of the workspace — the
//! block-cache ISA engine, the GEMM training engine, the worker-pool
//! runtime, the deployment simulator and the NAS flow — records into the
//! primitives of this crate:
//!
//! * a **global metrics registry** of atomic [`Counter`]s, [`Gauge`]s and
//!   HDR-style log-bucketed latency [`Histogram`]s (p50/p90/p99 via
//!   [`HistogramSummary`]), sharded per thread so hot-path increments
//!   never contend on one cache line;
//! * **scoped span timers** ([`span`]) with a hierarchical phase model
//!   (`flow/seed_eval`, `flow/lambda_sweep/fold_train`, `gemm`,
//!   `conv_fwd`, `pool/task`, `deploy/run_batch`, …) recording into
//!   per-thread ring buffers;
//! * **exporters**: chrome://tracing-compatible JSON
//!   ([`write_chrome_trace`]), JSONL ([`write_jsonl`]) and a
//!   [`PoolUtilization`] report assembled by `pcount-runtime`.
//!
//! # Gating and disabled-mode cost
//!
//! Telemetry is **off by default**. Every recording call site first loads
//! one global `AtomicBool` with `Ordering::Relaxed` and returns
//! immediately when it reads `false` — the disabled-mode cost of a span
//! or counter increment is exactly that single relaxed atomic load (a
//! fraction of a nanosecond on any modern host; the
//! `disabled_span_cost_is_a_single_relaxed_load` test measures it and
//! asserts a generous ceiling). Enabling telemetry never changes any
//! computed result — logits, cycles, instret and accuracies are
//! bit-identical with telemetry on and off (asserted by flow-level
//! tripwire tests in `pcount-core`).
//!
//! The `off` cargo feature additionally compiles the gate to a constant
//! `false`, letting the optimizer delete every call site outright for
//! builds that must not carry the instrumentation at all.
//!
//! # Environment
//!
//! `PCOUNT_TRACE=<path>` (read by [`init_from_env`], which `run_flow`,
//! the examples and the benches call on entry) enables telemetry and
//! selects the trace output path: a `.jsonl` suffix selects the JSONL
//! exporter, anything else gets chrome://tracing JSON — open it at
//! `chrome://tracing` or <https://ui.perfetto.dev>. [`flush_env_trace`]
//! writes the file.
//!
//! # Example
//!
//! ```
//! pcount_telemetry::set_enabled(true);
//! {
//!     let _span = pcount_telemetry::span("gemm");
//!     pcount_telemetry::counter("gemm/calls").add(1);
//! }
//! pcount_telemetry::histogram("deploy/frame_latency_ns").record(1_250);
//! let json = pcount_telemetry::chrome_trace_json();
//! assert!(json.contains("\"gemm\""));
//! pcount_telemetry::set_enabled(false);
//! ```

mod export;
mod json;
mod metrics;
pub mod slo;
mod span;

pub use export::{
    chrome_trace_json, jsonl, write_chrome_trace, write_jsonl, PoolUtilization, TraceSnapshot,
};
pub use json::{parse_json, JsonValue};
pub use metrics::{
    counter, counters_snapshot, gauge, gauges_snapshot, histogram, histograms_snapshot, Counter,
    Gauge, Histogram, HistogramCounts, HistogramSummary,
};
pub use slo::{ErrorBudget, SloBaseline, SloSnapshot};
pub use span::{now_ns, span, SpanEvent, SpanGuard};

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;

/// The single global telemetry gate every recording call site checks.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// Whether telemetry is currently recording.
///
/// This is the *only* cost a disabled call site pays: one relaxed atomic
/// load. With the `off` cargo feature the function is a constant `false`
/// and the optimizer removes the call sites entirely.
#[inline(always)]
pub fn enabled() -> bool {
    #[cfg(feature = "off")]
    {
        false
    }
    #[cfg(not(feature = "off"))]
    {
        ENABLED.load(Ordering::Relaxed)
    }
}

/// Turns telemetry recording on or off.
///
/// Enabling is observational only: spans, counters and histograms start
/// recording, but no computed result anywhere in the workspace changes
/// (the flow-level bit-identity tests assert this).
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// The trace path captured from `PCOUNT_TRACE` by the first
/// [`init_from_env`] call (`None` when the variable was unset or empty).
static TRACE_PATH: OnceLock<Option<String>> = OnceLock::new();

/// Reads `PCOUNT_TRACE` once, enables telemetry when it names a path and
/// returns that path. Safe to call from multiple entry points (`run_flow`,
/// examples, benches): only the first call samples the environment.
pub fn init_from_env() -> Option<&'static str> {
    let path =
        TRACE_PATH.get_or_init(|| std::env::var("PCOUNT_TRACE").ok().filter(|p| !p.is_empty()));
    if let Some(path) = path {
        set_enabled(true);
        Some(path.as_str())
    } else {
        None
    }
}

/// Writes the accumulated trace to the `PCOUNT_TRACE` path captured by
/// [`init_from_env`]: JSONL when the path ends in `.jsonl`, chrome trace
/// JSON otherwise. Returns the path written, or `None` when `PCOUNT_TRACE`
/// was never set. Call sites may flush repeatedly (e.g. once per flow run
/// and once at program exit); later flushes overwrite the file with a
/// superset of the earlier events.
///
/// # Errors
///
/// Propagates I/O errors from writing the trace file.
pub fn flush_env_trace() -> std::io::Result<Option<&'static str>> {
    let Some(Some(path)) = TRACE_PATH.get() else {
        return Ok(None);
    };
    if path.ends_with(".jsonl") {
        write_jsonl(path)?;
    } else {
        write_chrome_trace(path)?;
    }
    Ok(Some(path.as_str()))
}

/// Clears every span ring buffer, counter, gauge and histogram back to
/// zero (the registry keeps its registered names). Intended for tests
/// that need an isolated telemetry window; production code never needs
/// it.
pub fn reset() {
    span::reset_rings();
    metrics::reset_metrics();
}

/// Serialises unit tests that toggle the global [`set_enabled`] flag so
/// they cannot race each other's measurement windows.
#[cfg(test)]
pub(crate) fn test_guard() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_by_default_and_toggleable() {
        let _guard = test_guard();
        let was = enabled();
        set_enabled(true);
        assert!(enabled());
        set_enabled(false);
        assert!(!enabled());
        set_enabled(was);
    }
}
