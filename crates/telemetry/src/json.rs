//! Minimal JSON support: string escaping for the exporters and a small
//! recursive-descent parser used by tests and smoke gates to validate
//! emitted traces. Zero dependencies, no serde.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Escapes `s` as the body of a JSON string literal (no surrounding
/// quotes).
pub(crate) fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// `s` as a quoted, escaped JSON string literal.
pub(crate) fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    escape_into(&mut out, s);
    out.push('"');
    out
}

/// A parsed JSON value (see [`parse_json`]).
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (parsed as `f64`).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object (insertion order is not preserved; keys are sorted).
    Object(BTreeMap<String, JsonValue>),
}

impl JsonValue {
    /// The member `key` of an object, if this is an object containing it.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(map) => map.get(key),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(n) => Some(*n),
            _ => None,
        }
    }
}

/// Parses a complete JSON document, rejecting trailing garbage.
///
/// This is a strict but minimal parser meant for validating the traces
/// and bench files this crate emits (tests, CI smoke gates) — not a
/// general-purpose library. Unicode escapes outside the BMP
/// (surrogate pairs) are supported.
///
/// # Errors
///
/// Returns a human-readable description with a byte offset on malformed
/// input.
pub fn parse_json(input: &str) -> Result<JsonValue, String> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::String(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn literal(&mut self, text: &str, value: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(format!("malformed literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(JsonValue::Number)
            .ok_or_else(|| format!("malformed number at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let first = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&first) {
                                // Surrogate pair: a \uXXXX low half must
                                // follow immediately.
                                if self.peek() != Some(b'\\') {
                                    return Err("lone high surrogate".into());
                                }
                                self.pos += 1;
                                if self.peek() != Some(b'u') {
                                    return Err("lone high surrogate".into());
                                }
                                self.pos += 1;
                                let second = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&second) {
                                    return Err("invalid low surrogate".into());
                                }
                                let cp = 0x10000 + ((first - 0xD800) << 10) + (second - 0xDC00);
                                char::from_u32(cp).ok_or("invalid surrogate pair")?
                            } else {
                                char::from_u32(first).ok_or("invalid \\u escape")?
                            };
                            out.push(c);
                            continue;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume the whole unescaped run in one slice — one
                    // UTF-8 validation per run, not per character (the
                    // latter is quadratic on megabyte traces).
                    let start = self.pos;
                    while !matches!(self.peek(), None | Some(b'"') | Some(b'\\')) {
                        self.pos += 1;
                    }
                    let run = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| "invalid utf-8".to_string())?;
                    out.push_str(run);
                }
            }
        }
    }

    /// Reads exactly four hex digits (the body of a `\u` escape).
    fn hex4(&mut self) -> Result<u32, String> {
        if self.pos + 4 > self.bytes.len() {
            return Err("truncated \\u escape".into());
        }
        let digits = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| "invalid \\u escape".to_string())?;
        let v = u32::from_str_radix(digits, 16).map_err(|_| "invalid \\u escape".to_string())?;
        // Caller handles the closing position bump for the escape intro;
        // we consume the four digits here, minus the one generic bump the
        // escape loop would apply (we `continue` instead).
        self.pos += 4;
        Ok(v)
    }

    fn array(&mut self) -> Result<JsonValue, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<JsonValue, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(map));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}
