//! SLO primitives for the resilience layer: canonical metric names,
//! error-budget accounting and a windowed snapshot of the
//! `resilience/*` registry slice.
//!
//! The fleet-scale north star (ROADMAP item 1) needs service-level
//! indicators, not just raw counters: how many frames fell back to the
//! hold-last-good path, how much of the per-stream *error budget* those
//! fallbacks burned, and how long recovery took. This module pins down
//! the metric names every producer and consumer agrees on (the
//! `pcount-resilience` crate records them, the flow report and
//! `BENCH_robust.json` export them) and folds them into one
//! [`SloSnapshot`] with a deterministic JSON shape.

use crate::metrics::{counter, gauge, histogram, HistogramCounts, HistogramSummary};

/// Counter: retry attempts beyond the first try of a frame.
pub const RETRIES: &str = "resilience/retries";
/// Counter: frames that exhausted retries and emitted a fallback.
pub const FALLBACK_FRAMES: &str = "resilience/fallback_frames";
/// Counter: pooled CPUs reset to the pristine base after a fault.
pub const QUARANTINES: &str = "resilience/quarantines";
/// Counter: circuit-breaker trips (consecutive-fault threshold crossed).
pub const BREAKER_TRIPS: &str = "resilience/breaker_trips";
/// Counter: frames short-circuited while the circuit breaker was open.
pub const BREAKER_SKIPS: &str = "resilience/breaker_skips";
/// Histogram: simulated time from a frame's first fault to its recovery
/// (success after retry, or fallback emission), in nanoseconds.
pub const RECOVERY_LATENCY: &str = "resilience/recovery_latency_ns";
/// Gauge: error-budget burn of the most recent stream, in milli-units of
/// the budget (1000 = the whole budget consumed). See [`ErrorBudget`].
pub const ERROR_BUDGET_BURN: &str = "resilience/error_budget_burn_milli";

/// Per-fault-class counters, in the canonical order used by every
/// exporter. The names match `resilience::FaultClass` variants.
pub const FAULT_CLASS_COUNTERS: [&str; 7] = [
    "resilience/fault/drop",
    "resilience/fault/duplicate",
    "resilience/fault/stuck_pixels",
    "resilience/fault/saturation",
    "resilience/fault/noise_burst",
    "resilience/fault/clock_jitter",
    "resilience/fault/stall",
];

/// Every SLO counter name, fault classes first, in snapshot order.
pub fn slo_counter_names() -> Vec<&'static str> {
    let mut names = FAULT_CLASS_COUNTERS.to_vec();
    names.extend([
        RETRIES,
        FALLBACK_FRAMES,
        QUARANTINES,
        BREAKER_TRIPS,
        BREAKER_SKIPS,
    ]);
    names
}

// --- Fleet-serving endpoint metrics -----------------------------------
//
// The `fleet/*` namespace is the per-endpoint SLO surface of the
// multi-node serving layer (`pcount-fleet`): request/admission counters,
// queue instruments and the end-to-end request-latency histogram. The
// fleet simulation keeps its authoritative (deterministic, per-shard)
// accounting in its own report and mirrors these global instruments so
// traces and flow reports see the serving layer next to everything else.

/// Counter: frames offered to the service front-end (requests).
pub const FLEET_REQUESTS: &str = "fleet/requests";
/// Counter: requests admitted past admission control into a shard queue.
pub const FLEET_ADMITTED: &str = "fleet/admitted";
/// Counter: requests shed by admission control (bounded queue full).
pub const FLEET_SHED: &str = "fleet/shed";
/// Counter: frames a backpressured node downsampled at the source.
pub const FLEET_DOWNSAMPLED: &str = "fleet/downsampled";
/// Counter: sensor gaps (dropped frames that never reached the service).
pub const FLEET_GAPS: &str = "fleet/gaps";
/// Counter: executed frames whose prediction reached room fusion.
pub const FLEET_FUSED: &str = "fleet/fused_frames";
/// Counter: executed frames withheld from fusion because their node was
/// quarantined at delivery time.
pub const FLEET_QUARANTINED_FRAMES: &str = "fleet/quarantined_frames";
/// Counter: sick-node quarantine trips.
pub const FLEET_QUARANTINE_TRIPS: &str = "fleet/quarantine_trips";
/// Counter: quarantined nodes readmitted after a clean streak.
pub const FLEET_READMISSIONS: &str = "fleet/readmissions";
/// Gauge: highest shard-queue depth observed in the most recent run.
pub const FLEET_QUEUE_DEPTH_PEAK: &str = "fleet/queue_depth_peak";
/// Gauge: worst per-shard error-budget burn of the most recent run
/// (milli-units, see [`ErrorBudget`]).
pub const FLEET_ERROR_BUDGET_BURN: &str = "fleet/error_budget_burn_milli";
/// Histogram: end-to-end request latency (arrival to completion) in
/// simulated nanoseconds.
pub const FLEET_REQUEST_LATENCY: &str = "fleet/request_latency_ns";
/// Histogram: shard queue depth sampled at every arrival.
pub const FLEET_QUEUE_DEPTH: &str = "fleet/queue_depth";

// The `fleet/failover_*` and `fleet/adaptive_*` names cover the shard
// crash/recovery drill and the burn-driven admission controller.

/// Counter: planned shard crashes executed during the run.
pub const FLEET_CRASHES: &str = "fleet/failover_crashes";
/// Counter: frames lost in a shard crash (queued at the crash instant
/// and disposed of without ever executing).
pub const FLEET_CRASH_LOST: &str = "fleet/failover_crash_lost";
/// Counter: frames re-routed off a crashing shard (either live from its
/// queue or admitted to a failover shard while the home shard was down).
pub const FLEET_REROUTED: &str = "fleet/failover_rerouted";
/// Counter: room migrations performed by crash/restart rebalancing.
pub const FLEET_MIGRATIONS: &str = "fleet/failover_migrations";
/// Counter: periodic shard checkpoints taken.
pub const FLEET_CHECKPOINTS: &str = "fleet/failover_checkpoints";
/// Counter: adaptive-admission tighten steps (watermarks down, stride
/// up) across all shards.
pub const FLEET_ADAPTIVE_TIGHTENS: &str = "fleet/adaptive_tightens";
/// Counter: adaptive-admission relax steps back toward the configured
/// knobs.
pub const FLEET_ADAPTIVE_RELAXES: &str = "fleet/adaptive_relaxes";
/// Histogram: shard recovery time (crash to first post-restart fused
/// delivery) in simulated nanoseconds.
pub const FLEET_RECOVERY_LATENCY: &str = "fleet/failover_recovery_ns";
/// Gauge: tightest effective high watermark any shard ended the most
/// recent run with (== the configured watermark when static).
pub const FLEET_ADAPTIVE_HIGH_WATERMARK: &str = "fleet/adaptive_high_watermark";
/// Gauge: widest downsample stride any shard ended the most recent run
/// with (2 = the static every-other-frame policy).
pub const FLEET_ADAPTIVE_DOWNSAMPLE_STRIDE: &str = "fleet/adaptive_downsample_stride";

/// Every fleet-serving counter name, in canonical export order.
pub fn fleet_counter_names() -> Vec<&'static str> {
    vec![
        FLEET_REQUESTS,
        FLEET_ADMITTED,
        FLEET_SHED,
        FLEET_DOWNSAMPLED,
        FLEET_GAPS,
        FLEET_FUSED,
        FLEET_QUARANTINED_FRAMES,
        FLEET_QUARANTINE_TRIPS,
        FLEET_READMISSIONS,
        FLEET_CRASHES,
        FLEET_CRASH_LOST,
        FLEET_REROUTED,
        FLEET_MIGRATIONS,
        FLEET_CHECKPOINTS,
        FLEET_ADAPTIVE_TIGHTENS,
        FLEET_ADAPTIVE_RELAXES,
    ]
}

/// An error budget: the fraction of frames a stream is allowed to degrade
/// (fallback or drop) before its SLO is considered spent.
///
/// Burn is reported in milli-units of the budget: `0` = untouched,
/// `1000` = exactly spent, above = blown. The milli scale keeps the gauge
/// integral (the registry has no float instrument) while resolving
/// fractions of a percent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ErrorBudget {
    /// Allowed degraded frames per 1000 frames (e.g. `50` = 5%).
    pub allowed_bad_per_mille: u64,
}

impl ErrorBudget {
    /// The budget burn, in milli-units, of `bad` degraded frames out of
    /// `total`. Zero-size streams and zero budgets burn `0` and the whole
    /// scale (`1000` per allowed fraction consumed) respectively.
    pub fn burn_milli(&self, bad: u64, total: u64) -> i64 {
        if total == 0 {
            return 0;
        }
        let allowed = total as f64 * self.allowed_bad_per_mille as f64 / 1000.0;
        if allowed <= 0.0 {
            // No budget at all: any degraded frame blows it outright.
            return if bad == 0 { 0 } else { i64::MAX };
        }
        (bad as f64 / allowed * 1000.0).round() as i64
    }

    /// Aggregate burn of many `(bad, total)` windows graded against one
    /// budget: the windows are pooled (bads and totals summed) before the
    /// burn is computed, so every frame weighs the same regardless of how
    /// the windows partition them. This is how a shard folds its nodes'
    /// windows into one per-shard burn — averaging per-node burns would
    /// let a large healthy node mask a small sick one.
    pub fn burn_milli_total<I: IntoIterator<Item = (u64, u64)>>(&self, windows: I) -> i64 {
        let (bad, total) = windows.into_iter().fold((0u64, 0u64), |(b, t), (wb, wt)| {
            (b.saturating_add(wb), t.saturating_add(wt))
        });
        self.burn_milli(bad, total)
    }
}

impl Default for ErrorBudget {
    /// 5% of frames may degrade — a lenient single-node default; fleet
    /// deployments will tighten this per stream.
    fn default() -> Self {
        Self {
            allowed_bad_per_mille: 50,
        }
    }
}

/// A point-in-time baseline of the SLO registry slice, taken before a
/// measurement window (one flow run, one stream) so concurrently running
/// streams don't leak into each other's snapshots.
#[derive(Debug, Clone)]
pub struct SloBaseline {
    counters: Vec<(&'static str, u64)>,
    recovery: HistogramCounts,
}

impl SloBaseline {
    /// Snapshots the current SLO counter values and the recovery-latency
    /// histogram counts.
    pub fn capture() -> Self {
        Self {
            counters: slo_counter_names()
                .into_iter()
                .map(|name| (name, counter(name).value()))
                .collect(),
            recovery: histogram(RECOVERY_LATENCY).counts(),
        }
    }
}

/// The SLO metrics of one measurement window: per-counter deltas since a
/// [`SloBaseline`], the current error-budget burn gauge and the windowed
/// recovery-latency summary.
///
/// The `Default` value is an empty window (no counters, zero burn), the
/// shape a flow report carries when no resilience layer ran.
#[derive(Debug, Clone, Default)]
pub struct SloSnapshot {
    /// `(name, delta)` for every SLO counter, in [`slo_counter_names`]
    /// order.
    pub counters: Vec<(&'static str, u64)>,
    /// Current value of the [`ERROR_BUDGET_BURN`] gauge (milli-units).
    pub error_budget_burn_milli: i64,
    /// Recovery-latency distribution of the window (simulated ns).
    pub recovery_latency: HistogramSummary,
    /// Raw bucket counts behind [`SloSnapshot::recovery_latency`]. Kept so
    /// snapshots [`merge`](SloSnapshot::merge) exactly: percentiles of a
    /// union cannot be derived from two summaries, but they can from the
    /// summed buckets.
    pub recovery_counts: HistogramCounts,
}

impl SloSnapshot {
    /// Captures the window since `baseline`.
    pub fn capture_since(baseline: &SloBaseline) -> Self {
        let recovery_counts = histogram(RECOVERY_LATENCY)
            .counts()
            .diff(&baseline.recovery);
        Self {
            counters: baseline
                .counters
                .iter()
                .map(|&(name, before)| (name, counter(name).value().saturating_sub(before)))
                .collect(),
            error_budget_burn_milli: gauge(ERROR_BUDGET_BURN).value(),
            recovery_latency: recovery_counts.summarize(),
            recovery_counts,
        }
    }

    /// Folds two windows into one: counters are summed by name (the union
    /// of both name sets, in `self`-then-new order), the recovery-latency
    /// distribution is the bucket-wise sum of both windows (summary
    /// recomputed from the merged buckets, so merged percentiles are as
    /// exact as any single capture's), and the budget burn is the **worst**
    /// of the two — a gauge of the most-degraded window, not an average a
    /// healthy sibling could dilute. (Pooled cross-window burn is computed
    /// from raw `(bad, total)` windows via
    /// [`ErrorBudget::burn_milli_total`], which a summed gauge cannot
    /// reconstruct.)
    ///
    /// Merging is associative and order-independent up to counter order,
    /// and [`SloSnapshot::default`] is its identity — so shards can fold
    /// any number of node snapshots in any grouping and agree on every
    /// number (property-tested in `tests/slo_merge.rs`).
    pub fn merge(&self, other: &SloSnapshot) -> SloSnapshot {
        let mut counters = self.counters.clone();
        for &(name, v) in &other.counters {
            match counters.iter_mut().find(|(n, _)| *n == name) {
                Some((_, total)) => *total += v,
                None => counters.push((name, v)),
            }
        }
        let recovery_counts = self.recovery_counts.merge(&other.recovery_counts);
        SloSnapshot {
            counters,
            error_budget_burn_milli: self
                .error_budget_burn_milli
                .max(other.error_budget_burn_milli),
            recovery_latency: recovery_counts.summarize(),
            recovery_counts,
        }
    }

    /// Sum of the per-fault-class counter deltas (injected fault events).
    pub fn total_faults(&self) -> u64 {
        self.counters
            .iter()
            .filter(|(name, _)| name.starts_with("resilience/fault/"))
            .map(|&(_, v)| v)
            .sum()
    }

    /// The snapshot as a JSON object string, the `"slo"` block of the
    /// flow telemetry report and of `BENCH_robust.json`.
    pub fn to_json(&self) -> String {
        let counters = self
            .counters
            .iter()
            .map(|(name, v)| format!("\"{name}\":{v}"))
            .collect::<Vec<_>>()
            .join(",");
        format!(
            "{{\"counters\":{{{counters}}},\"error_budget_burn_milli\":{},\"recovery_latency_ns\":{}}}",
            self.error_budget_burn_milli,
            self.recovery_latency.to_json()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_budget_burn_scales_in_milli_units() {
        let budget = ErrorBudget {
            allowed_bad_per_mille: 50, // 5%
        };
        // 5 bad of 100 frames = exactly the budget.
        assert_eq!(budget.burn_milli(5, 100), 1000);
        // Half / double the allowance.
        assert_eq!(budget.burn_milli(5, 200), 500);
        assert_eq!(budget.burn_milli(10, 100), 2000);
        // Edges.
        assert_eq!(budget.burn_milli(0, 100), 0);
        assert_eq!(budget.burn_milli(0, 0), 0);
        let none = ErrorBudget {
            allowed_bad_per_mille: 0,
        };
        assert_eq!(none.burn_milli(0, 10), 0);
        assert_eq!(none.burn_milli(1, 10), i64::MAX);
    }

    #[test]
    fn snapshot_windows_the_slo_counters() {
        let _guard = crate::test_guard();
        crate::set_enabled(true);
        counter(RETRIES).add(2);
        let baseline = SloBaseline::capture();
        counter(RETRIES).add(3);
        counter(FAULT_CLASS_COUNTERS[0]).add(1);
        histogram(RECOVERY_LATENCY).record(1_000);
        gauge(ERROR_BUDGET_BURN).set(250);
        let snap = SloSnapshot::capture_since(&baseline);
        crate::set_enabled(false);
        let get = |name: &str| {
            snap.counters
                .iter()
                .find(|(n, _)| *n == name)
                .map(|&(_, v)| v)
                .expect("counter present")
        };
        assert_eq!(get(RETRIES), 3, "window excludes the baseline increments");
        assert_eq!(get(FAULT_CLASS_COUNTERS[0]), 1);
        assert_eq!(snap.total_faults(), 1);
        assert_eq!(snap.error_budget_burn_milli, 250);
        assert!(snap.recovery_latency.count >= 1);
        let json = snap.to_json();
        assert!(json.contains("\"resilience/retries\":3"));
        assert!(json.contains("\"error_budget_burn_milli\":250"));
        assert!(json.contains("\"recovery_latency_ns\""));
    }
}
