//! Property tests of the [`SloSnapshot::merge`] algebra: shards fold node
//! snapshots in whatever grouping the fleet's shard map produces, so the
//! fold must be associative and order-independent, with the default
//! (empty) snapshot as identity — otherwise two reports over the same
//! fleet could disagree depending on node enumeration order.

use pcount_telemetry::slo::slo_counter_names;
use pcount_telemetry::{ErrorBudget, HistogramCounts, SloSnapshot};
use proptest::prelude::*;

/// A random snapshot with counters in canonical [`slo_counter_names`]
/// order (every producer in the workspace emits them in this order, so
/// merged counter vectors are directly comparable).
fn snapshot_strategy() -> impl Strategy<Value = SloSnapshot> {
    (
        collection::vec(0u64..50, slo_counter_names().len()),
        // burn_milli is never negative (see ErrorBudget::burn_milli), and
        // the identity law below relies on that: max(0, burn) == burn.
        0i64..5000,
        collection::vec(0u64..50_000_000, 0..12),
    )
        .prop_map(|(counts, burn, latencies)| {
            let mut recovery_counts = HistogramCounts::empty();
            for v in latencies {
                recovery_counts.record(v);
            }
            SloSnapshot {
                counters: slo_counter_names().into_iter().zip(counts).collect(),
                error_budget_burn_milli: burn,
                recovery_latency: recovery_counts.summarize(),
                recovery_counts,
            }
        })
}

/// Structural equality of everything `merge` is specified over.
fn assert_snapshots_equal(a: &SloSnapshot, b: &SloSnapshot, what: &str) {
    assert_eq!(a.counters, b.counters, "{what}: counters");
    assert_eq!(
        a.error_budget_burn_milli, b.error_budget_burn_milli,
        "{what}: burn"
    );
    assert_eq!(a.recovery_counts, b.recovery_counts, "{what}: counts");
    assert_eq!(a.recovery_latency, b.recovery_latency, "{what}: summary");
    assert_eq!(a.to_json(), b.to_json(), "{what}: json");
}

proptest! {
    #[test]
    fn merge_is_associative(
        abc in (snapshot_strategy(), snapshot_strategy(), snapshot_strategy()),
    ) {
        let (a, b, c) = abc;
        assert_snapshots_equal(&a.merge(&b).merge(&c), &a.merge(&b.merge(&c)), "associativity");
    }

    #[test]
    fn merge_is_order_independent(
        ab in (snapshot_strategy(), snapshot_strategy()),
    ) {
        let (a, b) = ab;
        assert_snapshots_equal(&a.merge(&b), &b.merge(&a), "commutativity");
    }

    #[test]
    fn default_is_the_merge_identity(a in snapshot_strategy()) {
        // Default has no counters, so merging it on the left must still
        // reproduce `a` exactly (union keeps `a`'s names and values).
        assert_snapshots_equal(&SloSnapshot::default().merge(&a), &a, "left identity");
        assert_snapshots_equal(&a.merge(&SloSnapshot::default()), &a, "right identity");
    }

    #[test]
    fn merged_summary_matches_a_single_capture_of_the_union(
        xs_ys in (
            collection::vec(1u64..10_000_000, 1..10),
            collection::vec(1u64..10_000_000, 1..10),
        ),
    ) {
        let (xs, ys) = xs_ys;
        // Percentiles of the merged snapshot equal percentiles of one
        // distribution holding every value — merge loses nothing.
        let record_all = |values: &[u64]| {
            let mut counts = HistogramCounts::empty();
            for &v in values {
                counts.record(v);
            }
            counts
        };
        let merged = record_all(&xs).merge(&record_all(&ys));
        let mut all = xs.clone();
        all.extend_from_slice(&ys);
        prop_assert_eq!(merged, record_all(&all));
    }

    #[test]
    fn pooled_burn_weighs_every_frame_equally(
        window_pair in (0u64..40, 0u64..200, 0u64..40, 0u64..200),
    ) {
        let (bad_a, extra_a, bad_b, extra_b) = window_pair;
        let budget = ErrorBudget::default();
        let windows = [(bad_a, bad_a + extra_a), (bad_b, bad_b + extra_b)];
        let pooled = budget.burn_milli_total(windows);
        let direct = budget.burn_milli(bad_a + bad_b, bad_a + extra_a + bad_b + extra_b);
        prop_assert_eq!(pooled, direct);
    }
}

#[test]
fn merge_sums_counters_by_name() {
    let names = slo_counter_names();
    let snap = |v: u64| SloSnapshot {
        counters: names.iter().map(|&n| (n, v)).collect(),
        error_budget_burn_milli: v as i64,
        ..Default::default()
    };
    let merged = snap(2).merge(&snap(3));
    assert!(merged.counters.iter().all(|&(_, v)| v == 5));
    assert_eq!(merged.error_budget_burn_milli, 3, "burn is worst-of");
    assert_eq!(merged.counters.len(), names.len(), "no duplicate names");
}
