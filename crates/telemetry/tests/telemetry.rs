//! Integration tests of the telemetry crate's public contract: the
//! disabled mode is a no-op with single-atomic-load cost, and the
//! exporters emit well-formed, parseable traces.

use std::sync::{Mutex, MutexGuard, PoisonError};

use pcount_telemetry::{
    chrome_trace_json, counter, gauge, histogram, jsonl, parse_json, set_enabled, span,
    PoolUtilization,
};

/// Serialises tests that toggle the global enable flag.
fn guard() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(PoisonError::into_inner)
}

#[test]
fn disabled_mode_records_nothing() {
    let _guard = guard();
    set_enabled(false);
    let c = counter("test/disabled_counter");
    let g = gauge("test/disabled_gauge");
    let h = histogram("test/disabled_histogram");
    let before = (c.value(), g.value(), h.count());
    for _ in 0..1000 {
        c.add(1);
        g.set(42);
        g.add(1);
        h.record(123);
        assert!(span("test/disabled_span").is_none(), "span gated off");
    }
    assert_eq!(
        (c.value(), g.value(), h.count()),
        before,
        "disabled instruments must not move"
    );
}

#[test]
fn disabled_span_cost_is_a_single_relaxed_load() {
    let _guard = guard();
    set_enabled(false);
    // Warm up, then measure the disabled fast path. The documented cost
    // is one relaxed atomic load; the ceiling here is two orders of
    // magnitude above that so the assertion never flakes on a loaded CI
    // host — it exists to catch an accidental slow path (allocation,
    // lock, syscall), not to benchmark.
    const ITERS: u32 = 1_000_000;
    for _ in 0..1000 {
        std::hint::black_box(span("test/cost_span"));
    }
    let start = std::time::Instant::now();
    for _ in 0..ITERS {
        std::hint::black_box(span("test/cost_span"));
    }
    let per_op_ns = start.elapsed().as_nanos() as f64 / f64::from(ITERS);
    assert!(
        per_op_ns < 1_000.0,
        "disabled span cost {per_op_ns:.1} ns/op — slow path on the disabled branch?"
    );
}

#[test]
fn chrome_trace_is_well_formed_json_with_spans_and_counters() {
    let _guard = guard();
    set_enabled(true);
    {
        let _outer = span("test/outer");
        let _inner = span("test/outer/inner");
        counter("test/trace_counter").add(7);
        histogram("test/trace_hist_ns").record(1_500);
    }
    set_enabled(false);

    let trace = chrome_trace_json();
    let parsed = parse_json(&trace).expect("chrome trace must parse as JSON");
    let events = parsed
        .get("traceEvents")
        .and_then(|v| v.as_array())
        .expect("traceEvents is an array");
    let mut saw_outer = false;
    let mut saw_inner = false;
    for event in events {
        // Every duration event carries the chrome-trace required keys.
        if event.get("ph").and_then(|p| p.as_str()) == Some("X") {
            assert!(event.get("ts").and_then(|v| v.as_f64()).is_some());
            assert!(event.get("dur").and_then(|v| v.as_f64()).is_some());
            assert!(event.get("tid").is_some());
        }
        match event.get("name").and_then(|n| n.as_str()) {
            Some("test/outer") => saw_outer = true,
            Some("test/outer/inner") => saw_inner = true,
            _ => {}
        }
    }
    assert!(saw_outer && saw_inner, "both spans exported");
    let counters = parsed.get("counters").expect("counters section");
    assert!(
        counters
            .get("test/trace_counter")
            .and_then(|v| v.as_f64())
            .is_some_and(|v| v >= 7.0),
        "counter exported with its value"
    );
    let hist = parsed
        .get("histograms")
        .and_then(|h| h.get("test/trace_hist_ns"))
        .expect("histogram summary exported");
    assert!(hist.get("p50").is_some() && hist.get("p99").is_some());
}

#[test]
fn leaf_span_churn_cannot_evict_flow_phase_spans() {
    let _guard = guard();
    set_enabled(true);
    // One structural phase span first, then enough leaf spans to cycle
    // the bulk ring (32768 events) twice over.
    drop(span("flow/evict_probe"));
    for _ in 0..70_000 {
        drop(span("leaf/churn"));
    }
    set_enabled(false);

    let trace = chrome_trace_json();
    let parsed = parse_json(&trace).expect("trace parses");
    let names: std::collections::HashSet<_> = parsed
        .get("traceEvents")
        .and_then(|v| v.as_array())
        .expect("traceEvents")
        .iter()
        .filter_map(|e| e.get("name").and_then(|n| n.as_str()))
        .collect();
    assert!(
        names.contains("flow/evict_probe"),
        "leaf churn evicted the structural flow span"
    );
    let dropped = parsed.get("droppedSpans").expect("droppedSpans section");
    assert!(
        matches!(dropped, pcount_telemetry::JsonValue::Object(o) if !o.is_empty()),
        "overwrites must be reported"
    );
}

#[test]
fn jsonl_export_parses_line_by_line() {
    let _guard = guard();
    set_enabled(true);
    {
        let _span = span("test/jsonl_span");
        counter("test/jsonl_counter").add(1);
    }
    set_enabled(false);

    let out = jsonl();
    assert!(!out.is_empty());
    let mut kinds = std::collections::HashSet::new();
    for line in out.lines() {
        let value = parse_json(line).expect("every JSONL line parses");
        let kind = value
            .get("kind")
            .and_then(|k| k.as_str())
            .expect("kind discriminator")
            .to_string();
        kinds.insert(kind);
    }
    assert!(kinds.contains("span"));
    assert!(kinds.contains("counter"));
}

#[test]
fn pool_utilization_serialises_to_valid_json() {
    let report = PoolUtilization {
        width: 2,
        worker_tasks: vec![3, 5],
        worker_busy_ns: vec![100, 200],
        groups: 4,
        ..PoolUtilization::default()
    };
    assert_eq!(report.total_tasks(), 8);
    let parsed = parse_json(&report.to_json()).expect("valid JSON");
    assert_eq!(parsed.get("width").and_then(|v| v.as_f64()), Some(2.0));
    assert_eq!(
        parsed
            .get("worker_tasks")
            .and_then(|v| v.as_array())
            .map(<[_]>::len),
        Some(2)
    );
}

#[test]
fn json_parser_rejects_malformed_documents() {
    for bad in ["", "{", "[1,]", "{\"a\":}", "tru", "\"unterminated", "1 2"] {
        assert!(parse_json(bad).is_err(), "accepted malformed input {bad:?}");
    }
    // And accepts escapes and nesting.
    let ok = parse_json("{\"a\\n\": [1, 2.5, null, true, \"\\u00e9\\ud83d\\ude00\"]}")
        .expect("valid document");
    assert!(ok.get("a\n").is_some());
}
