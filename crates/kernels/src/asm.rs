//! A small macro-assembler with labels and pseudo-instructions.

use pcount_isa::{BranchOp, Instr, LoadOp, StoreOp};
use std::collections::HashMap;

#[derive(Debug, Clone)]
enum Item {
    Fixed(Instr),
    BranchTo {
        op: BranchOp,
        rs1: u8,
        rs2: u8,
        label: String,
    },
    JumpTo {
        rd: u8,
        label: String,
    },
}

/// A two-pass assembler: emit instructions and symbolic branches, then
/// resolve label offsets with [`Assembler::assemble`].
///
/// # Example
///
/// ```
/// use pcount_isa::reg;
/// use pcount_kernels::Assembler;
///
/// let mut asm = Assembler::new();
/// asm.li(reg::A0, 3);
/// asm.label("loop");
/// asm.addi(reg::A0, reg::A0, -1);
/// asm.bne(reg::A0, reg::ZERO, "loop");
/// asm.ebreak();
/// let program = asm.assemble().unwrap();
/// assert!(program.len() >= 4);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Assembler {
    items: Vec<Item>,
    labels: HashMap<String, usize>,
}

impl Assembler {
    /// Creates an empty assembler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of instructions emitted so far.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Returns `true` if nothing has been emitted.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Defines a label at the current position.
    ///
    /// # Panics
    ///
    /// Panics if the label was already defined.
    pub fn label(&mut self, name: impl Into<String>) {
        let name = name.into();
        let previous = self.labels.insert(name.clone(), self.items.len());
        assert!(previous.is_none(), "label `{name}` defined twice");
    }

    /// Emits a raw instruction.
    pub fn emit(&mut self, instr: Instr) {
        self.items.push(Item::Fixed(instr));
    }

    /// Loads a 32-bit constant (expands to `addi` or `lui`+`addi`).
    pub fn li(&mut self, rd: u8, value: i32) {
        if (-2048..2048).contains(&value) {
            self.emit(Instr::Addi {
                rd,
                rs1: 0,
                imm: value,
            });
        } else {
            // Split into upper 20 / lower 12 bits compensating for the sign
            // extension of the addi immediate.
            let lo = ((value << 20) >> 20) as i64;
            let hi = ((value as i64 - lo) >> 12) as i32 & 0xF_FFFF;
            self.emit(Instr::Lui { rd, imm: hi });
            if lo != 0 {
                self.emit(Instr::Addi {
                    rd,
                    rs1: rd,
                    imm: lo as i32,
                });
            }
        }
    }

    /// Register move (`addi rd, rs, 0`).
    pub fn mv(&mut self, rd: u8, rs: u8) {
        self.emit(Instr::Addi {
            rd,
            rs1: rs,
            imm: 0,
        });
    }

    /// `addi` convenience wrapper.
    pub fn addi(&mut self, rd: u8, rs1: u8, imm: i32) {
        self.emit(Instr::Addi { rd, rs1, imm });
    }

    /// `add` convenience wrapper.
    pub fn add(&mut self, rd: u8, rs1: u8, rs2: u8) {
        self.emit(Instr::Add { rd, rs1, rs2 });
    }

    /// `sub` convenience wrapper.
    pub fn sub(&mut self, rd: u8, rs1: u8, rs2: u8) {
        self.emit(Instr::Sub { rd, rs1, rs2 });
    }

    /// `mul` convenience wrapper.
    pub fn mul(&mut self, rd: u8, rs1: u8, rs2: u8) {
        self.emit(Instr::Mul { rd, rs1, rs2 });
    }

    /// `slli` convenience wrapper.
    pub fn slli(&mut self, rd: u8, rs1: u8, shamt: u8) {
        self.emit(Instr::Slli { rd, rs1, shamt });
    }

    /// `srli` convenience wrapper.
    pub fn srli(&mut self, rd: u8, rs1: u8, shamt: u8) {
        self.emit(Instr::Srli { rd, rs1, shamt });
    }

    /// `srai` convenience wrapper.
    pub fn srai(&mut self, rd: u8, rs1: u8, shamt: u8) {
        self.emit(Instr::Srai { rd, rs1, shamt });
    }

    /// `andi` convenience wrapper.
    pub fn andi(&mut self, rd: u8, rs1: u8, imm: i32) {
        self.emit(Instr::Andi { rd, rs1, imm });
    }

    /// `or` convenience wrapper.
    pub fn or(&mut self, rd: u8, rs1: u8, rs2: u8) {
        self.emit(Instr::Or { rd, rs1, rs2 });
    }

    /// Byte load (signed).
    pub fn lb(&mut self, rd: u8, rs1: u8, offset: i32) {
        self.emit(Instr::Load {
            op: LoadOp::Lb,
            rd,
            rs1,
            offset,
        });
    }

    /// Byte load (unsigned).
    pub fn lbu(&mut self, rd: u8, rs1: u8, offset: i32) {
        self.emit(Instr::Load {
            op: LoadOp::Lbu,
            rd,
            rs1,
            offset,
        });
    }

    /// Word load.
    pub fn lw(&mut self, rd: u8, rs1: u8, offset: i32) {
        self.emit(Instr::Load {
            op: LoadOp::Lw,
            rd,
            rs1,
            offset,
        });
    }

    /// Byte store.
    pub fn sb(&mut self, rs2: u8, rs1: u8, offset: i32) {
        self.emit(Instr::Store {
            op: StoreOp::Sb,
            rs1,
            rs2,
            offset,
        });
    }

    /// Word store.
    pub fn sw(&mut self, rs2: u8, rs1: u8, offset: i32) {
        self.emit(Instr::Store {
            op: StoreOp::Sw,
            rs1,
            rs2,
            offset,
        });
    }

    /// `sdotp8` (MAUPITI extension).
    pub fn sdotp8(&mut self, rd: u8, rs1: u8, rs2: u8) {
        self.emit(Instr::Sdotp8 { rd, rs1, rs2 });
    }

    /// `sdotp4` (MAUPITI extension).
    pub fn sdotp4(&mut self, rd: u8, rs1: u8, rs2: u8) {
        self.emit(Instr::Sdotp4 { rd, rs1, rs2 });
    }

    /// `mulh` convenience wrapper.
    pub fn mulh(&mut self, rd: u8, rs1: u8, rs2: u8) {
        self.emit(Instr::Mulh { rd, rs1, rs2 });
    }

    /// Conditional branch to a label.
    pub fn branch(&mut self, op: BranchOp, rs1: u8, rs2: u8, label: impl Into<String>) {
        self.items.push(Item::BranchTo {
            op,
            rs1,
            rs2,
            label: label.into(),
        });
    }

    /// `beq` to a label.
    pub fn beq(&mut self, rs1: u8, rs2: u8, label: impl Into<String>) {
        self.branch(BranchOp::Beq, rs1, rs2, label);
    }

    /// `bne` to a label.
    pub fn bne(&mut self, rs1: u8, rs2: u8, label: impl Into<String>) {
        self.branch(BranchOp::Bne, rs1, rs2, label);
    }

    /// `blt` (signed) to a label.
    pub fn blt(&mut self, rs1: u8, rs2: u8, label: impl Into<String>) {
        self.branch(BranchOp::Blt, rs1, rs2, label);
    }

    /// `bge` (signed) to a label.
    pub fn bge(&mut self, rs1: u8, rs2: u8, label: impl Into<String>) {
        self.branch(BranchOp::Bge, rs1, rs2, label);
    }

    /// Unconditional jump to a label (`jal x0, label`).
    pub fn jump(&mut self, label: impl Into<String>) {
        self.items.push(Item::JumpTo {
            rd: 0,
            label: label.into(),
        });
    }

    /// Call a label (`jal ra, label`).
    pub fn call(&mut self, label: impl Into<String>) {
        self.items.push(Item::JumpTo {
            rd: 1,
            label: label.into(),
        });
    }

    /// Return from a call (`jalr x0, ra, 0`).
    pub fn ret(&mut self) {
        self.emit(Instr::Jalr {
            rd: 0,
            rs1: 1,
            offset: 0,
        });
    }

    /// Halt the core.
    pub fn ebreak(&mut self) {
        self.emit(Instr::Ebreak);
    }

    /// Resolves labels and returns the final instruction sequence.
    ///
    /// # Errors
    ///
    /// Returns the name of the first undefined label referenced by a branch
    /// or jump.
    pub fn assemble(&self) -> Result<Vec<Instr>, String> {
        let mut out = Vec::with_capacity(self.items.len());
        for (index, item) in self.items.iter().enumerate() {
            let instr = match item {
                Item::Fixed(i) => *i,
                Item::BranchTo {
                    op,
                    rs1,
                    rs2,
                    label,
                } => {
                    let target = *self
                        .labels
                        .get(label)
                        .ok_or_else(|| format!("undefined label `{label}`"))?;
                    let offset = (target as i64 - index as i64) * 4;
                    Instr::Branch {
                        op: *op,
                        rs1: *rs1,
                        rs2: *rs2,
                        offset: offset as i32,
                    }
                }
                Item::JumpTo { rd, label } => {
                    let target = *self
                        .labels
                        .get(label)
                        .ok_or_else(|| format!("undefined label `{label}`"))?;
                    let offset = (target as i64 - index as i64) * 4;
                    Instr::Jal {
                        rd: *rd,
                        offset: offset as i32,
                    }
                }
            };
            out.push(instr);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcount_isa::{reg, Cpu};

    fn run(asm: &Assembler) -> Cpu {
        let program = asm.assemble().expect("assemble");
        let mut cpu = Cpu::new_default();
        cpu.load_program(&program).unwrap();
        cpu.run(1_000_000).unwrap();
        cpu
    }

    #[test]
    fn li_handles_small_large_and_negative_constants() {
        for &value in &[
            0i32,
            1,
            -1,
            2047,
            -2048,
            2048,
            0x1234_5678,
            -123_456,
            i32::MIN,
            i32::MAX,
        ] {
            let mut asm = Assembler::new();
            asm.li(reg::A0, value);
            asm.ebreak();
            let cpu = run(&asm);
            assert_eq!(cpu.reg(reg::A0) as i32, value, "li {value}");
        }
    }

    #[test]
    fn loops_with_labels_execute_correctly() {
        // Compute 7! iteratively.
        let mut asm = Assembler::new();
        asm.li(reg::A0, 1);
        asm.li(reg::T0, 7);
        asm.label("loop");
        asm.mul(reg::A0, reg::A0, reg::T0);
        asm.addi(reg::T0, reg::T0, -1);
        asm.bne(reg::T0, reg::ZERO, "loop");
        asm.ebreak();
        let cpu = run(&asm);
        assert_eq!(cpu.reg(reg::A0), 5040);
    }

    #[test]
    fn call_and_ret_implement_subroutines() {
        let mut asm = Assembler::new();
        asm.li(reg::A0, 5);
        asm.call("double");
        asm.call("double");
        asm.ebreak();
        asm.label("double");
        asm.add(reg::A0, reg::A0, reg::A0);
        asm.ret();
        let cpu = run(&asm);
        assert_eq!(cpu.reg(reg::A0), 20);
    }

    #[test]
    fn forward_and_backward_jumps_resolve() {
        let mut asm = Assembler::new();
        asm.li(reg::A1, 0);
        asm.jump("skip");
        asm.li(reg::A1, 99); // never executed
        asm.label("skip");
        asm.li(reg::A0, 42);
        asm.ebreak();
        let cpu = run(&asm);
        assert_eq!(cpu.reg(reg::A0), 42);
        assert_eq!(cpu.reg(reg::A1), 0);
    }

    #[test]
    fn undefined_labels_are_reported() {
        let mut asm = Assembler::new();
        asm.jump("nowhere");
        assert!(asm.assemble().unwrap_err().contains("nowhere"));
    }

    #[test]
    #[should_panic(expected = "defined twice")]
    fn duplicate_labels_panic() {
        let mut asm = Assembler::new();
        asm.label("x");
        asm.label("x");
    }
}
