//! A pool of warmed simulator CPUs for parallel frame evaluation.
//!
//! The block-cached engine shares its decoded-trace cache between CPU
//! clones through `Arc` snapshots ([`pcount_isa::Cpu`] is `Send`), so one
//! warmup inference decodes the whole deployed program once and every
//! pooled CPU — on any thread — dispatches fully pre-decoded, chained
//! superblocks from the first frame.
//!
//! [`Deployment::run_batch`][crate::Deployment::run_batch] drives the
//! pool through the persistent `pcount-runtime` worker pool: the batch is
//! split into one contiguous frame range per pooled CPU and each range
//! runs as one runtime job, so no threads are spawned per batch and the
//! collected results are deterministic and order-preserving —
//! bit-identical to the serial [`run_frame`][crate::Deployment::run_frame]
//! loop regardless of the worker count.

use pcount_isa::Cpu;

/// Upper bound on auto-sized CPU pools: every pooled CPU clones the full
/// deployed memory image, and flow batch sizes are modest, so cloning
/// one per hardware thread on a many-core host would only waste memory.
const MAX_AUTO_CPUS: usize = 8;

/// A fixed set of warmed, pristine CPUs, one per concurrent frame range.
///
/// Created by [`Deployment::make_pool`][crate::Deployment::make_pool];
/// every CPU is a clone of the deployment's base CPU taken *after* a
/// warmup inference populated the shared block cache.
#[derive(Debug, Clone)]
pub struct CpuPool {
    pub(crate) cpus: Vec<Cpu>,
}

impl CpuPool {
    /// Builds a pool of `threads` clones of `base` (`0` = auto: the
    /// runtime pool's width, capped at [`MAX_AUTO_CPUS`] — each pooled
    /// CPU carries a full memory image, and the flow's batch sizes never
    /// keep more ranges busy).
    pub(crate) fn from_base(base: &Cpu, threads: usize) -> Self {
        let threads = resolve_cpu_pool_threads(threads);
        Self {
            cpus: (0..threads).map(|_| base.clone()).collect(),
        }
    }

    /// Number of concurrent frame ranges this pool supports.
    pub fn threads(&self) -> usize {
        self.cpus.len()
    }
}

pub use pcount_runtime::resolve_threads;

/// The `0 = auto` knob for CPU-pool sizing specifically: explicit values
/// pass through, `0` becomes the runtime pool's width capped at
/// [`MAX_AUTO_CPUS`]. Every `make_pool`-style surface resolves through
/// this so the memory cap cannot be bypassed by resolving the generic
/// knob first.
pub(crate) fn resolve_cpu_pool_threads(threads: usize) -> usize {
    if threads > 0 {
        threads
    } else {
        resolve_threads(0).min(MAX_AUTO_CPUS)
    }
}
