//! A pool of warmed simulator CPUs for parallel frame evaluation.
//!
//! The block-cached engine shares its decoded-trace cache between CPU
//! clones through `Arc` snapshots ([`pcount_isa::Cpu`] is `Send`), so one
//! warmup inference decodes the whole deployed program once and every
//! pooled CPU — on any thread — dispatches fully pre-decoded, chained
//! superblocks from the first frame.
//!
//! [`Deployment::run_batch`][crate::Deployment::run_batch] drives the pool
//! with `std::thread::scope`: each worker owns one pooled CPU, processes a
//! contiguous range of frame indices and writes results into its own slice
//! of the output, so the collected batch is deterministic and
//! order-preserving — bit-identical to the serial
//! [`run_frame`][crate::Deployment::run_frame] loop regardless of the
//! thread count.

use pcount_isa::Cpu;

/// Default upper bound on auto-selected worker threads; batch sizes in the
/// flow are modest and clone/join overhead dominates beyond this.
const MAX_AUTO_THREADS: usize = 8;

/// A fixed set of warmed, pristine CPUs, one per worker thread.
///
/// Created by [`Deployment::make_pool`][crate::Deployment::make_pool];
/// every CPU is a clone of the deployment's base CPU taken *after* a
/// warmup inference populated the shared block cache.
#[derive(Debug, Clone)]
pub struct CpuPool {
    pub(crate) cpus: Vec<Cpu>,
}

impl CpuPool {
    /// Builds a pool of `threads` clones of `base` (`0` = auto: the host's
    /// available parallelism, capped at 8).
    pub(crate) fn from_base(base: &Cpu, threads: usize) -> Self {
        let threads = resolve_threads(threads);
        Self {
            cpus: (0..threads).map(|_| base.clone()).collect(),
        }
    }

    /// Number of worker threads this pool drives.
    pub fn threads(&self) -> usize {
        self.cpus.len()
    }
}

/// Maps the `0 = auto` thread-count knob to a concrete worker count:
/// explicit values pass through, `0` becomes the host's available
/// parallelism capped at 8. Shared by every parallel evaluation surface
/// (`predict_batch`, the flow's deployment sweep) so the knob means the
/// same thing everywhere.
pub fn resolve_threads(threads: usize) -> usize {
    if threads > 0 {
        threads
    } else {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .min(MAX_AUTO_THREADS)
    }
}
