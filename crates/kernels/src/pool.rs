//! A pool of warmed simulator CPUs for parallel frame evaluation.
//!
//! The block-cached engine shares its decoded-trace cache between CPU
//! clones through `Arc` snapshots ([`pcount_isa::Cpu`] is `Send`), so one
//! warmup inference decodes the whole deployed program once and every
//! pooled CPU — on any thread — dispatches fully pre-decoded, chained
//! superblocks from the first frame.
//!
//! [`Deployment::run_batch`][crate::Deployment::run_batch] drives the
//! pool through the persistent `pcount-runtime` worker pool: the batch is
//! split into one contiguous frame range per pooled CPU and each range
//! runs as one runtime job, so no threads are spawned per batch and the
//! collected results are deterministic and order-preserving —
//! bit-identical to the serial [`run_frame`][crate::Deployment::run_frame]
//! loop regardless of the worker count.

use pcount_isa::Cpu;

/// Upper bound on auto-sized CPU pools: every pooled CPU clones the full
/// deployed memory image, and flow batch sizes are modest, so cloning
/// one per hardware thread on a many-core host would only waste memory.
const MAX_AUTO_CPUS: usize = 8;

/// A fixed set of warmed, pristine CPUs, one per concurrent frame range,
/// plus the pristine base they were cloned from.
///
/// Created by [`Deployment::make_pool`][crate::Deployment::make_pool];
/// every CPU is a clone of the deployment's base CPU taken *after* a
/// warmup inference populated the shared block cache. The base is kept so
/// a pooled CPU that faulted mid-inference (torn memory image,
/// mid-program PC) can be [`quarantined`][CpuPool::quarantine] — reset to
/// the pristine state — before it is ever reused; corrupted architectural
/// state must never leak into a later frame's inference.
#[derive(Debug, Clone)]
pub struct CpuPool {
    base: Cpu,
    pub(crate) cpus: Vec<Cpu>,
}

impl CpuPool {
    /// Builds a pool of `threads` clones of `base` (`0` = auto: the
    /// runtime pool's width, capped at [`MAX_AUTO_CPUS`] — each pooled
    /// CPU carries a full memory image, and the flow's batch sizes never
    /// keep more ranges busy).
    pub(crate) fn from_base(base: &Cpu, threads: usize) -> Self {
        let threads = resolve_cpu_pool_threads(threads);
        Self {
            base: base.clone(),
            cpus: (0..threads).map(|_| base.clone()).collect(),
        }
    }

    /// Number of concurrent frame ranges this pool supports.
    pub fn threads(&self) -> usize {
        self.cpus.len()
    }

    /// The pristine warmed CPU every pool slot was cloned from.
    pub fn base(&self) -> &Cpu {
        &self.base
    }

    /// Shared reference to pool slot `w` (used by the batch fan-out,
    /// which clones it per frame).
    pub fn cpu(&self, w: usize) -> &Cpu {
        &self.cpus[w]
    }

    /// Splits the pool into the pristine base and the mutable CPU slots,
    /// for streaming paths that run frames *in place* on a slot
    /// (restoring architectural state from the base between frames)
    /// instead of cloning a fresh CPU per frame.
    pub fn split_mut(&mut self) -> (&Cpu, &mut [Cpu]) {
        let Self { base, cpus } = self;
        (base, cpus)
    }

    /// Quarantines pool slot `w`: restores its architectural and memory
    /// state from the pristine base (see `Cpu::restore_from`). Must be
    /// called on any slot whose inference faulted before the slot is
    /// reused — a timed-out or faulted frame leaves a torn memory image
    /// and a mid-program PC behind, and reusing that state would perturb
    /// the next frame's logits.
    pub fn quarantine(&mut self, w: usize) {
        let Self { base, cpus } = self;
        cpus[w].restore_from(base);
    }
}

pub use pcount_runtime::resolve_threads;

/// The `0 = auto` knob for CPU-pool sizing specifically: explicit values
/// pass through, `0` becomes the runtime pool's width capped at
/// [`MAX_AUTO_CPUS`]. Every `make_pool`-style surface resolves through
/// this so the memory cap cannot be bypassed by resolving the generic
/// knob first.
pub(crate) fn resolve_cpu_pool_threads(threads: usize) -> usize {
    if threads > 0 {
        threads
    } else {
        resolve_threads(0).min(MAX_AUTO_CPUS)
    }
}
