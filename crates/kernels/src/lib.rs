//! RISC-V DNN kernels and deployment of quantized models onto the MAUPITI
//! instruction-set simulator.
//!
//! This crate is the reproduction of the paper's deployment toolchain
//! (Sec. III-B3): a macro-assembler targeting the RV32IM + SDOTP
//! instruction set of `pcount-isa`, a minimal library of DNN kernels
//! (3x3 convolution with requantisation, 2x2 max pooling and
//! fully-connected layers) generated in both SDOTP (MAUPITI) and scalar
//! (vanilla IBEX) flavours, and a [`Deployment`] that packs a
//! [`pcount_quant::QuantizedCnn`] into the 16 KB data memory, emits the
//! per-layer call sequence and runs inference on the simulator, reporting
//! code size, data size and cycles.
//!
//! ## Activation / weight layout
//!
//! Activations and weights are stored channel-last (HWC) with the channel
//! count padded to a SIMD-friendly multiple (4 values for INT8, 8 for
//! INT4), so the inner channel loop of every kernel is a sequence of
//! aligned 32-bit loads feeding SDOTP instructions. Padding lanes hold
//! zero weights, so they never affect results. INT4 tensors pack two
//! values per byte, low nibble first.

mod asm;
mod deploy;
mod kernels;
mod layout;
mod pool;

pub use asm::Assembler;
pub use deploy::{
    DeployError, Deployment, DeploymentReport, InferenceRun, Target, INSTRUCTION_BUDGET,
};
pub use kernels::{emit_conv3x3, emit_fc, emit_maxpool2x2, KernelVariant, OutputFormat};
pub use layout::{lane_count, pack_values, pad_channels, MemoryPlan};
pub use pcount_isa::{
    hot_blocks_json, ExecMode, HotBlock, MaupitiMemConfig, MemStats, MemoryModel, PipelineStats,
    SimError,
};
pub use pool::{resolve_threads, CpuPool};
